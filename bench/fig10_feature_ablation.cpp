/**
 * @file
 * Reproduces Figure 10: the performance impact of removing each
 * feature of the Table 1(a) set, measured as normalized weighted
 * speedup on the multi-programmed workloads (the paper runs the
 * single-thread-developed set on the 900 mixes; individual features
 * contribute small deltas, and at least one removal *helps* —
 * insert(17,1) in the paper — showing the set is not minimal).
 */

#include "bench_util.hpp"
#include "core/feature_sets.hpp"
#include "core/mpppb.hpp"

int
main()
{
    using namespace mrp;
    const unsigned n_mixes = bench::mixCount(8);
    const auto suite = bench::makeSuiteRegions(bench::multiCoreInsts());
    const auto split = trace::makeMixSplit(16, n_mixes);
    const sim::MultiCoreConfig cfg;
    const auto single_ipc = bench::standaloneIpcTable(suite, cfg);

    // Figure 10 analyzes the Table 1(a) single-thread set running on
    // the multi-programmed workloads, over the SRRIP substrate.
    core::MpppbConfig base_cfg = core::multiCoreMpppbConfig();
    base_cfg.predictor.features = core::featureSetTable1A();

    std::vector<double> lru_ws;
    for (const auto& mix : split.test) {
        const auto traces = bench::mixTraces(suite, mix);
        std::array<double, 4> single{};
        for (unsigned c = 0; c < 4; ++c)
            single[c] = single_ipc[mix.benchmarks[c]];
        lru_ws.push_back(
            sim::runMultiCore(traces, sim::makePolicyFactory("LRU"), cfg)
                .weightedSpeedup(single));
    }

    auto evaluate = [&](const core::MpppbConfig& mcfg) {
        std::vector<double> ws;
        for (std::size_t m = 0; m < split.test.size(); ++m) {
            const auto traces = bench::mixTraces(suite, split.test[m]);
            std::array<double, 4> single{};
            for (unsigned c = 0; c < 4; ++c)
                single[c] = single_ipc[split.test[m].benchmarks[c]];
            const auto r = sim::runMultiCore(
                traces, sim::makeMpppbFactory(mcfg), cfg);
            ws.push_back(r.weightedSpeedup(single) / lru_ws[m]);
        }
        return geomean(ws);
    };

    std::printf("# Figure 10: leave-one-feature-out over Table 1(a), "
                "4-core (%zu mixes)\n",
                split.test.size());
    const double original = evaluate(base_cfg);
    std::printf("%-20s %20s %10s\n", "omitted", "norm.weighted.speedup",
                "delta");
    std::printf("%-20s %20.4f %10s\n", "(none)", original, "-");
    for (std::size_t f = 0; f < base_cfg.predictor.features.size();
         ++f) {
        core::MpppbConfig mcfg = base_cfg;
        mcfg.predictor.features =
            core::without(base_cfg.predictor.features, f);
        // The confidence sum shrinks with the feature count; scale the
        // thresholds so the decision operating point stays comparable.
        const double scale =
            static_cast<double>(mcfg.predictor.features.size()) /
            static_cast<double>(base_cfg.predictor.features.size());
        mcfg.thresholds.tauBypass = static_cast<int>(
            mcfg.thresholds.tauBypass * scale);
        for (auto& t : mcfg.thresholds.tau)
            t = static_cast<int>(t * scale);
        mcfg.thresholds.tauNoPromote = static_cast<int>(
            mcfg.thresholds.tauNoPromote * scale);
        const double ws = evaluate(mcfg);
        std::printf("%-20s %20.4f %+10.4f\n",
                    base_cfg.predictor.features[f].toString().c_str(),
                    ws, ws - original);
        std::fflush(stdout);
    }
    return 0;
}
