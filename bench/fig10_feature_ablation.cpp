/**
 * @file
 * Reproduces Figure 10: the performance impact of removing each
 * feature of the Table 1(a) set, measured as normalized weighted
 * speedup on the multi-programmed workloads (the paper runs the
 * single-thread-developed set on the 900 mixes; individual features
 * contribute small deltas, and at least one removal *helps* —
 * insert(17,1) in the paper — showing the set is not minimal).
 *
 * The leave-one-out candidates are enumerated as one ListStrategy
 * study over a bench-local weighted-speedup objective, so every
 * configuration is simulated through the sweep subsystem's shared
 * evaluation path and the mixes of each candidate fan out on the
 * ExperimentRunner (--jobs N or MRP_BENCH_JOBS).
 */

#include "bench_util.hpp"
#include "core/feature_sets.hpp"
#include "core/mpppb.hpp"
#include "sweep/study.hpp"

namespace {

using namespace mrp;

/**
 * Geomean LRU-normalized weighted speedup of an MPPPB configuration
 * over a fixed mix list (higher is better; the paper's Fig. 10
 * metric). Traces are borrowed from the bench's pre-generated suite.
 */
class AblationObjective : public sweep::Objective
{
  public:
    AblationObjective(const std::vector<trace::Trace>& suite,
                      const std::vector<trace::Mix>& mixes,
                      const std::vector<double>& single_ipc,
                      std::vector<double> lru_ws,
                      sim::MultiCoreConfig cfg)
        : suite_(suite), mixes_(mixes), singleIpc_(single_ipc),
          lruWs_(std::move(lru_ws)), cfg_(std::move(cfg))
    {
    }

    std::string name() const override { return "fig10-norm-ws"; }

    std::vector<runner::RunRequest>
    requests(const core::MpppbConfig& mcfg,
             InstCount budget_insts) override
    {
        (void)budget_insts; // mixes have one fixed region length
        const auto factory = sim::makeMpppbFactory(mcfg);
        std::vector<runner::RunRequest> out;
        out.reserve(mixes_.size());
        for (const auto& mix : mixes_)
            out.push_back(runner::RunRequest::multiCore(
                bench::mixSpecs(suite_, mix),
                runner::PolicySpec::custom("MPPPB", factory), cfg_));
        return out;
    }

    sweep::Score
    score(const std::vector<const runner::RunResult*>& results) override
    {
        std::vector<double> ws;
        std::vector<double> mpkis;
        ws.reserve(results.size());
        for (std::size_t m = 0; m < results.size(); ++m) {
            double w = 0.0;
            for (unsigned c = 0; c < 4; ++c)
                w += results[m]->coreIpc[c] /
                     singleIpc_[mixes_[m].benchmarks[c]];
            ws.push_back(w / lruWs_[m]);
            mpkis.push_back(results[m]->mpki);
        }
        return {geomean(ws), mean(mpkis)};
    }

  private:
    const std::vector<trace::Trace>& suite_;
    const std::vector<trace::Mix>& mixes_;
    const std::vector<double>& singleIpc_;
    std::vector<double> lruWs_;
    sim::MultiCoreConfig cfg_;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace mrp;
    const unsigned n_mixes = bench::mixCount(8);
    const unsigned jobs = bench::jobsFromArgs(argc, argv);
    const auto suite = bench::makeSuiteRegions(bench::multiCoreInsts());
    const auto split = trace::makeMixSplit(16, n_mixes);
    const sim::MultiCoreConfig cfg;
    const auto single_ipc = bench::standaloneIpcTable(suite, cfg);

    // Figure 10 analyzes the Table 1(a) single-thread set running on
    // the multi-programmed workloads, over the SRRIP substrate.
    core::MpppbConfig base_cfg = core::multiCoreMpppbConfig();
    base_cfg.predictor.features = core::featureSetTable1A();

    std::vector<double> lru_ws;
    for (const auto& mix : split.test) {
        const bench::MixSources sources(suite, mix);
        std::vector<double> single(4, 0.0);
        for (unsigned c = 0; c < 4; ++c)
            single[c] = single_ipc[mix.benchmarks[c]];
        lru_ws.push_back(
            sim::runMultiCore(sources.ptrs(),
                              sim::makePolicyFactory("LRU"), cfg)
                .weightedSpeedup(single));
    }

    // The ablation candidates, encoded into a threshold-searching
    // space over the multi-core base (the scaled thresholds of each
    // leave-one-out variant are part of its genome).
    sweep::SearchSpace space;
    space.searchThresholds = true;
    space.base = base_cfg;

    std::vector<sweep::Candidate> candidates;
    candidates.push_back({space.encode(base_cfg), 0});
    for (std::size_t f = 0; f < base_cfg.predictor.features.size();
         ++f) {
        core::MpppbConfig mcfg = base_cfg;
        mcfg.predictor.features =
            core::without(base_cfg.predictor.features, f);
        // The confidence sum shrinks with the feature count; scale the
        // thresholds so the decision operating point stays comparable.
        const double scale =
            static_cast<double>(mcfg.predictor.features.size()) /
            static_cast<double>(base_cfg.predictor.features.size());
        mcfg.thresholds.tauBypass = static_cast<int>(
            mcfg.thresholds.tauBypass * scale);
        for (auto& t : mcfg.thresholds.tau)
            t = static_cast<int>(t * scale);
        mcfg.thresholds.tauNoPromote = static_cast<int>(
            mcfg.thresholds.tauNoPromote * scale);
        candidates.push_back({space.encode(mcfg), 0});
    }

    AblationObjective objective(suite, split.test, single_ipc,
                                std::move(lru_ws), cfg);
    sweep::ListStrategy strategy(std::move(candidates));
    sweep::StudyConfig scfg;
    scfg.name = "fig10-ablation";
    scfg.jobs = jobs;
    sweep::Study study(space, strategy, objective, scfg);
    const auto result = study.run();

    std::printf("# Figure 10: leave-one-feature-out over Table 1(a), "
                "4-core (%zu mixes)\n",
                split.test.size());
    fatalIf(result.candidates.empty() || !result.candidates[0].ok,
            "baseline candidate failed");
    const double original = result.candidates[0].fitness;
    std::printf("%-20s %20s %10s\n", "omitted", "norm.weighted.speedup",
                "delta");
    std::printf("%-20s %20.4f %10s\n", "(none)", original, "-");
    for (std::size_t f = 0; f < base_cfg.predictor.features.size();
         ++f) {
        const auto& o = result.candidates[f + 1];
        fatalIf(!o.ok, "ablation candidate failed: " + o.error);
        std::printf("%-20s %20.4f %+10.4f\n",
                    base_cfg.predictor.features[f].toString().c_str(),
                    o.fitness, o.fitness - original);
        std::fflush(stdout);
    }
    return 0;
}
