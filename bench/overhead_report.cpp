/**
 * @file
 * Reproduces the §4.4 hardware-budget accounting: per-structure bit
 * costs of the single-thread and multi-core MPPPB configurations (the
 * paper reports 27.5KB single-core — sampler 20.67KB, tables 2.64KB,
 * feature vector 0.44KB, MDPP 3.75KB — and 104KB for 4 cores,
 * both ~1.3% of their LLC's capacity).
 *
 * Also reports the *host* overhead of the self-profiling subsystem:
 * min-of-N user CPU time of the same simulation with and without an
 * attached prof::Profiler (the detached cost is a thread-local load
 * and branch per scope; the attached cost is two TSC reads and a
 * child-array index). Scale with MRP_BENCH_INSTS / MRP_BENCH_REPS.
 */

#include <algorithm>
#include <cstdio>

#include <sys/resource.h>

#include "bench_util.hpp"
#include "core/mpppb.hpp"
#include "prof/profiler.hpp"
#include "runner/experiment_runner.hpp"
#include "util/bitfield.hpp"

namespace {

using namespace mrp;

struct Budget
{
    double samplerKB;
    double tablesKB;
    double vectorKB;
    double substrateKB;

    double
    totalKB() const
    {
        return samplerKB + tablesKB + vectorKB + substrateKB;
    }
};

Budget
budgetOf(const core::MpppbConfig& cfg, unsigned cores, Addr llc_bytes,
         std::uint32_t llc_ways)
{
    const auto& feats = cfg.predictor.features;

    // Index-vector bits per sampler entry: one index per feature,
    // log2(tableSize) bits each (§3.3 item 3).
    unsigned index_bits = 0;
    std::size_t table_weights = 0;
    for (const auto& f : feats) {
        index_bits += log2Ceil(f.tableSize());
        table_weights += f.tableSize();
    }

    // Sampler entry: 16-bit partial tag + 9-bit confidence + 4-bit
    // LRU position + the index vector (§4.4).
    const unsigned entry_bits = 16 + 9 + 4 + index_bits;
    const std::uint64_t entries =
        static_cast<std::uint64_t>(cfg.predictor.sampledSetsPerCore) *
        cores * cfg.predictor.samplerAssoc;

    Budget b;
    b.samplerKB = static_cast<double>(entries) * entry_bits / 8.0 / 1024;
    b.tablesKB = static_cast<double>(table_weights) *
                 cfg.predictor.weightBits / 8.0 / 1024;
    // Per-core feature-value vector: bounded by one 64-bit value per
    // feature per core (PC history entries are shared).
    b.vectorKB = static_cast<double>(feats.size()) * 64 * cores / 8.0 /
                 1024;
    const std::uint64_t sets = llc_bytes / 64 / llc_ways;
    if (cfg.substrate == core::Substrate::Mdpp)
        b.substrateKB =
            static_cast<double>(sets) * (llc_ways - 1) / 8.0 / 1024;
    else
        b.substrateKB =
            static_cast<double>(sets) * llc_ways * 2 / 8.0 / 1024;
    return b;
}

void
report(const char* name, const core::MpppbConfig& cfg, unsigned cores,
       Addr llc_bytes, std::uint32_t ways)
{
    const Budget b = budgetOf(cfg, cores, llc_bytes, ways);
    unsigned index_bits = 0;
    for (const auto& f : cfg.predictor.features)
        index_bits += log2Ceil(f.tableSize());
    std::printf("%s (%u core(s), %.0fMB LLC):\n", name, cores,
                llc_bytes / 1024.0 / 1024.0);
    std::printf("  index vector bits/entry : %u\n", index_bits);
    std::printf("  sampler                 : %8.2f KB\n", b.samplerKB);
    std::printf("  prediction tables       : %8.2f KB\n", b.tablesKB);
    std::printf("  feature-value vectors   : %8.2f KB\n", b.vectorKB);
    std::printf("  default policy state    : %8.2f KB\n",
                b.substrateKB);
    std::printf("  total                   : %8.2f KB (%.2f%% of LLC)\n\n",
                b.totalKB(),
                100.0 * b.totalKB() * 1024 /
                    static_cast<double>(llc_bytes));
}

double
processUserSeconds()
{
    rusage ru{};
    ::getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_utime.tv_sec) +
           static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
}

/** Min-of-N user CPU seconds for one simulated run. */
double
minUserSeconds(const trace::Trace& t, unsigned reps, bool profiled)
{
    runner::RunnerOptions ropts;
    ropts.profile = profiled;
    const auto req = runner::RunRequest::singleCore(
        trace::TraceSpec::borrowed(t),
        runner::PolicySpec::byName("MPPPB"));
    double best = 0.0;
    for (unsigned i = 0; i < reps; ++i) {
        const double before = processUserSeconds();
        const auto r = runner::ExperimentRunner::runOne(req, 0, ropts);
        const double user = processUserSeconds() - before;
        panicIf(!r.ok(), "overhead-measurement run failed: " + r.error);
        best = i == 0 ? user : std::min(best, user);
    }
    return best;
}

void
reportProfilerOverhead()
{
    const auto insts = static_cast<InstCount>(
        bench::envCount("MRP_BENCH_INSTS", 400000));
    const auto reps = static_cast<unsigned>(
        bench::envCount("MRP_BENCH_REPS", 3));
    const trace::Trace t = [&] {
        for (unsigned i = 0; i < trace::suiteSize(); ++i)
            if (trace::suiteName(i) == "thrash.2x")
                return trace::makeSuiteTrace(i, insts);
        panicIf(true, "thrash.2x missing from the suite");
        return trace::makeSuiteTrace(0, insts);
    }();

    // Warm once (allocators, site registry) before timing.
    minUserSeconds(t, 1, true);
    const double detached = minUserSeconds(t, reps, false);
    const double attached = minUserSeconds(t, reps, true);
    const double pct =
        detached > 0.0 ? (attached / detached - 1.0) * 100.0 : 0.0;
    std::printf("# Profiler host overhead (thrash.2x, %llu insts, "
                "min of %u)\n",
                static_cast<unsigned long long>(insts), reps);
    std::printf("  detached user time      : %8.3f s\n", detached);
    std::printf("  attached user time      : %8.3f s\n", attached);
    std::printf("  attached overhead       : %+8.1f %%\n", pct);
}

} // namespace

int
main()
{
    std::printf("# Hardware budget accounting (paper §4.4: 27.5KB "
                "single-core, 104KB for 4 cores, each ~1.3%% of LLC)\n\n");
    report("single-thread MPPPB", core::singleThreadMpppbConfig(), 1,
           2 * 1024 * 1024, 16);
    report("multi-core MPPPB", core::multiCoreMpppbConfig(), 4,
           8 * 1024 * 1024, 16);
    reportProfilerOverhead();
    return 0;
}
