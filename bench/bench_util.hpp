/**
 * @file
 * Shared plumbing for the figure/table reproduction benches: scale
 * knobs from the environment and common run helpers.
 *
 * Every bench accepts MRP_BENCH_INSTS (single-thread trace length),
 * MRP_BENCH_MIXES (number of 4-core mixes), and MRP_BENCH_SETS
 * (feature-search candidates) so the paper-scale experiment can be
 * approached on bigger machines while defaults finish in minutes.
 */

#ifndef MRP_BENCH_BENCH_UTIL_HPP
#define MRP_BENCH_BENCH_UTIL_HPP

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "prof/clock.hpp"
#include "runner/experiment_runner.hpp"
#include "sim/multi_core.hpp"
#include "sim/single_core.hpp"
#include "trace/mix.hpp"
#include "trace/spec.hpp"
#include "trace/workloads.hpp"
#include "util/math_util.hpp"

namespace mrp::bench {

inline std::uint64_t
envCount(const char* name, std::uint64_t fallback)
{
    if (const char* s = std::getenv(name))
        return std::strtoull(s, nullptr, 10);
    return fallback;
}

inline InstCount
singleThreadInsts()
{
    return envCount("MRP_BENCH_INSTS", 2500000);
}

inline InstCount
multiCoreInsts()
{
    return envCount("MRP_BENCH_MC_INSTS", 800000);
}

inline unsigned
mixCount(unsigned fallback)
{
    return static_cast<unsigned>(envCount("MRP_BENCH_MIXES", fallback));
}

/**
 * Worker-thread count for a bench: `--jobs N` on the command line,
 * else MRP_BENCH_JOBS, else 0 (ExperimentRunner picks the hardware
 * concurrency).
 */
inline unsigned
jobsFromArgs(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--jobs") == 0)
            return static_cast<unsigned>(
                std::strtoul(argv[i + 1], nullptr, 10));
    return static_cast<unsigned>(envCount("MRP_BENCH_JOBS", 0));
}

/** Pre-generate the single-thread traces of the whole suite. */
inline std::vector<trace::Trace>
makeSuiteTraces(InstCount insts)
{
    std::vector<trace::Trace> out;
    out.reserve(trace::suiteSize());
    for (unsigned i = 0; i < trace::suiteSize(); ++i)
        out.push_back(trace::makeSuiteTrace(i, insts));
    return out;
}

/** Report one batch's execution metrics on stderr. */
inline void
reportBatch(const runner::RunSet& set)
{
    InstCount insts = 0;
    for (const auto& r : set.results)
        insts += r.instructions;
    std::fprintf(stderr,
                 "# batch: %zu runs, %u worker(s), %.2fs wall, "
                 "%.0f simulated insts/sec\n",
                 set.results.size(), set.jobs, set.wallSeconds,
                 prof::ratePerSecond(insts, set.wallSeconds));
}

/** Pre-generate the multi-core region traces of the whole suite. */
inline std::vector<trace::Trace>
makeSuiteRegions(InstCount insts)
{
    std::vector<trace::Trace> out;
    out.reserve(trace::suiteSize());
    for (unsigned i = 0; i < trace::suiteSize(); ++i)
        out.push_back(trace::makeSuiteTrace(i, insts));
    return out;
}

/** Borrowed TraceSpecs of one mix (for RunRequest::multiCore). */
inline std::array<trace::TraceSpec, 4>
mixSpecs(const std::vector<trace::Trace>& suite, const trace::Mix& mix)
{
    return {trace::TraceSpec::borrowed(suite[mix.benchmarks[0]]),
            trace::TraceSpec::borrowed(suite[mix.benchmarks[1]]),
            trace::TraceSpec::borrowed(suite[mix.benchmarks[2]]),
            trace::TraceSpec::borrowed(suite[mix.benchmarks[3]])};
}

/**
 * Fresh sources over one mix's traces. Sources are single-consumer,
 * so each sim::runMultiCore call opens its own set — even when the
 * same benchmark appears in several slots of the mix.
 */
class MixSources
{
  public:
    MixSources(const std::vector<trace::Trace>& suite,
               const trace::Mix& mix)
    {
        for (unsigned c = 0; c < 4; ++c)
            owned_[c] =
                std::make_unique<trace::MaterializedTraceSource>(
                    suite[mix.benchmarks[c]]);
    }

    std::array<trace::TraceSource*, 4>
    ptrs() const
    {
        return {owned_[0].get(), owned_[1].get(), owned_[2].get(),
                owned_[3].get()};
    }

  private:
    std::array<std::unique_ptr<trace::MaterializedTraceSource>, 4>
        owned_;
};

/**
 * Standalone LRU IPC for every benchmark of the suite (SingleIPC_i of
 * §4.5), computed once and indexed by benchmark id.
 */
inline std::vector<double>
standaloneIpcTable(const std::vector<trace::Trace>& suite,
                   const sim::MultiCoreConfig& cfg)
{
    std::vector<double> out;
    out.reserve(suite.size());
    for (const auto& t : suite) {
        trace::MaterializedTraceSource src(t);
        out.push_back(sim::standaloneIpc(src, cfg));
    }
    return out;
}

/** Normalized weighted speedups of one policy over a mix list. */
struct MultiCorePolicyResult
{
    std::string policy;
    std::vector<double> normalizedWs; //!< per mix, vs LRU
    std::vector<double> mpki;         //!< per mix
};

} // namespace mrp::bench

#endif // MRP_BENCH_BENCH_UTIL_HPP
