/**
 * @file
 * Reproduces Figure 7: single-thread LLC demand MPKI per benchmark
 * for LRU, Hawkeye, Perceptron, MPPPB, and MIN (paper means: LRU >
 * Hawkeye 3.8 > Perceptron 3.7 > MPPPB 3.5 > MIN; our synthetic suite
 * is more memory-intensive so absolute values are higher — the
 * ordering is the target).
 */

#include "bench_util.hpp"

int
main()
{
    using namespace mrp;
    const InstCount insts = bench::singleThreadInsts();
    const std::vector<std::string> policies = {"LRU", "Hawkeye",
                                               "Perceptron", "MPPPB"};

    std::printf("# Figure 7: LLC demand MPKI, single-thread, 2MB LLC\n");
    std::printf("%-16s", "benchmark");
    for (const auto& p : policies)
        std::printf(" %10s", p.c_str());
    std::printf(" %10s\n", "MIN");

    std::vector<std::vector<double>> mpkis(policies.size() + 1);
    for (unsigned b = 0; b < trace::suiteSize(); ++b) {
        const auto tr = trace::makeSuiteTrace(b, insts);
        std::printf("%-16s", tr.name().c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const double m =
                sim::runSingleCore(tr,
                                   sim::makePolicyFactory(policies[p]),
                                   {})
                    .mpki;
            mpkis[p].push_back(m);
            std::printf(" %10.2f", m);
        }
        const double m = sim::runSingleCoreMin(tr, {}).mpki;
        mpkis.back().push_back(m);
        std::printf(" %10.2f\n", m);
        std::fflush(stdout);
    }

    std::printf("%-16s", "arith.mean");
    for (const auto& col : mpkis)
        std::printf(" %10.2f", mean(col));
    std::printf("\n");
    return 0;
}
