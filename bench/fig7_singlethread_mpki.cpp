/**
 * @file
 * Reproduces Figure 7: single-thread LLC demand MPKI per benchmark
 * for LRU, Hawkeye, Perceptron, MPPPB, and MIN (paper means: LRU >
 * Hawkeye 3.8 > Perceptron 3.7 > MPPPB 3.5 > MIN; our synthetic suite
 * is more memory-intensive so absolute values are higher — the
 * ordering is the target).
 *
 * The benchmark × policy product runs through the parallel
 * ExperimentRunner (--jobs N / MRP_BENCH_JOBS).
 */

#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace mrp;
    const InstCount insts = bench::singleThreadInsts();
    const std::vector<std::string> policies = {
        "LRU", "Hawkeye", "Perceptron", "MPPPB", "MIN"};

    const auto suite = bench::makeSuiteTraces(insts);
    std::vector<runner::RunRequest> batch;
    batch.reserve(suite.size() * policies.size());
    for (const auto& tr : suite)
        for (const auto& p : policies)
            batch.push_back(runner::RunRequest::singleCore(
                trace::TraceSpec::borrowed(tr),
                runner::PolicySpec::byName(p)));

    const runner::ExperimentRunner pool(bench::jobsFromArgs(argc, argv));
    const auto set = pool.run(batch);
    bench::reportBatch(set);

    std::printf("# Figure 7: LLC demand MPKI, single-thread, 2MB LLC\n");
    std::printf("%-16s", "benchmark");
    for (const auto& p : policies)
        std::printf(" %10s", p.c_str());
    std::printf("\n");

    const std::size_t stride = policies.size();
    std::vector<std::vector<double>> mpkis(policies.size());
    for (unsigned b = 0; b < trace::suiteSize(); ++b) {
        std::printf("%-16s", suite[b].name().c_str());
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const double m = set.results[b * stride + p].mpki;
            mpkis[p].push_back(m);
            std::printf(" %10.2f", m);
        }
        std::printf("\n");
    }

    std::printf("%-16s", "arith.mean");
    for (const auto& col : mpkis)
        std::printf(" %10.2f", mean(col));
    std::printf("\n");
    return 0;
}
