/**
 * @file
 * Reproduces Figures 1 and 8: receiver operating characteristic
 * curves for SDBP, Perceptron, and the multiperspective predictor.
 *
 * Each predictor runs in measurement-only mode against an LRU LLC (no
 * decisions applied), its confidences resolved against ground truth
 * (reused-before-eviction vs evicted-untouched); curves are averaged
 * over the single-thread suite. The paper's headline claim is that in
 * the bypass-relevant false-positive band (25%..31%) multiperspective
 * sits above both prior predictors.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/feature_sets.hpp"
#include "core/predictor.hpp"
#include "policy/perceptron.hpp"
#include "policy/sdbp.hpp"
#include "sim/roc_probe.hpp"
#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

namespace {

mrp::InstCount
envInsts()
{
    if (const char* s = std::getenv("MRP_BENCH_INSTS"))
        return std::strtoull(s, nullptr, 10);
    return 2000000;
}

} // namespace

int
main()
{
    using namespace mrp;

    const InstCount insts = envInsts();
    const sim::SingleCoreConfig scfg;
    const cache::CacheGeometry geom(scfg.hierarchy.llcBytes,
                                    scfg.hierarchy.llcWays);

    // Averaged curves: accumulate per-benchmark (TPR, FPR) curves by
    // pooling all resolved predictions (the per-threshold pooled rates
    // are the access-weighted average of per-benchmark curves).
    std::vector<std::unique_ptr<sim::RocProbe>> probes;
    const char* names[3] = {"SDBP", "Perceptron", "Multiperspective"};

    std::vector<std::unique_ptr<policy::ReusePredictor>> preds;
    core::MultiperspectiveConfig mcfg;
    mcfg.features = core::featureSetTable1A();
    preds.push_back(
        std::make_unique<policy::SdbpPredictor>(geom, 1));
    preds.push_back(
        std::make_unique<policy::PerceptronPredictor>(geom, 1));
    preds.push_back(
        std::make_unique<core::MultiperspectivePredictor>(geom, 1, mcfg));
    auto probe = std::make_unique<sim::RocProbe>(geom, std::move(preds));

    const auto lru = sim::makePolicyFactory("LRU");
    for (unsigned b = 0; b < trace::suiteSize(); ++b) {
        const auto tr = trace::makeSuiteTrace(b, insts);
        trace::MaterializedTraceSource src(tr);
        sim::runSingleCoreObserved(src, lru, scfg, probe.get());
        std::fprintf(stderr, "# measured %s\n", tr.name().c_str());
    }

    std::printf("# Figure 8: ROC curves (pooled over %u benchmarks)\n",
                trace::suiteSize());
    std::printf("# %-18s %12s %12s %12s\n", "predictor", "threshold",
                "FPR", "TPR");
    for (std::size_t p = 0; p < probe->predictorCount(); ++p) {
        const auto curve = probe->roc(p).curve();
        // Thin the curve to ~64 printed points.
        const std::size_t step =
            curve.size() > 64 ? curve.size() / 64 : 1;
        for (std::size_t i = 0; i < curve.size(); i += step)
            std::printf("%-20s %12d %12.4f %12.4f\n", names[p],
                        curve[i].threshold,
                        curve[i].falsePositiveRate,
                        curve[i].truePositiveRate);
    }

    std::printf("\n# TPR at bypass-relevant FPR operating points\n");
    std::printf("# %-18s", "predictor");
    const double fprs[] = {0.20, 0.25, 0.28, 0.31, 0.40};
    for (const double f : fprs)
        std::printf(" TPR@%.2f", f);
    std::printf("\n");
    for (std::size_t p = 0; p < probe->predictorCount(); ++p) {
        std::printf("%-20s", names[p]);
        for (const double f : fprs)
            std::printf(" %8.4f", probe->roc(p).tprAtFpr(f));
        std::printf("\n");
    }
    return 0;
}
