/**
 * @file
 * Reproduces Figure 5: misses per 1000 instructions for the 4-core
 * multi-programmed workloads under LRU, Perceptron, Hawkeye, and
 * MPPPB, printed as a worst-to-best S-curve plus arithmetic means
 * (paper: LRU 14.1 > Perceptron 12.49 > Hawkeye 11.72 > MPPPB 10.97).
 */

#include <algorithm>

#include "bench_util.hpp"

int
main()
{
    using namespace mrp;
    const unsigned n_mixes = bench::mixCount(32);
    const auto suite = bench::makeSuiteRegions(bench::multiCoreInsts());
    const auto split = trace::makeMixSplit(16, n_mixes);
    const sim::MultiCoreConfig cfg;

    const std::vector<std::string> policies = {"LRU", "Perceptron",
                                               "Hawkeye", "MPPPB-MC"};
    std::vector<std::vector<double>> mpki(policies.size());

    for (const auto& mix : split.test) {
        const bench::MixSources sources(suite, mix);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto r = sim::runMultiCore(
                sources.ptrs(), sim::makePolicyFactory(policies[p]),
                cfg);
            mpki[p].push_back(r.mpki);
        }
        std::fprintf(stderr, "# done %s\n", mix.name().c_str());
    }

    std::printf("# Figure 5: LLC demand MPKI, 4-core, 8MB LLC, %zu "
                "test mixes (sorted descending per policy)\n",
                split.test.size());
    std::printf("%-8s", "rank");
    for (const auto& p : policies)
        std::printf(" %12s", p.c_str());
    std::printf("\n");
    for (auto& col : mpki)
        std::sort(col.begin(), col.end(), std::greater<double>());
    for (std::size_t i = 0; i < split.test.size(); ++i) {
        std::printf("%-8zu", i);
        for (const auto& col : mpki)
            std::printf(" %12.3f", col[i]);
        std::printf("\n");
    }
    std::printf("%-8s", "mean");
    for (const auto& col : mpki)
        std::printf(" %12.3f", mean(col));
    std::printf("\n");
    return 0;
}
