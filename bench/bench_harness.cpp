/**
 * @file
 * Canonical benchmark harness: run a small, fixed set of profiled
 * simulations and emit the BENCH_<name>.json artifact that
 * tools/bench_guard diffs against a committed baseline.
 *
 * Two profiles are captured per invocation:
 *  - a harness-level profile on the main thread covering setup
 *    (trace generation), reported as the "harness" run; and
 *  - one per-simulation profile (phase tree, user/sys split, RSS,
 *    throughput) per (benchmark, policy) cell, reported under
 *    "<benchmark>/<policy>".
 *
 * The default workload set is deliberately LLC-heavy (thrashing,
 * random-access, and mixed-locality generators whose accesses fall
 * through L1/L2), so the `llc.*` phases dominate the measured window
 * and the phase tree actually attributes where simulation time goes.
 *
 * Usage:
 *   bench_harness [--name NAME] [--out FILE] [--insts N]
 *                 [--benchmark NAME[,NAME...]]
 *                 [--policy NAME[,NAME...]] [--mrc]
 *
 * Defaults: name "smoke", out "BENCH_<name>.json", 400k instructions
 * (or MRP_BENCH_INSTS), benchmarks thrash.2x,gups.2x,mixpc.hi,
 * policies LRU,MPPPB. Prints per-run throughput and llc.* coverage of
 * the measured window, and exits nonzero if any run fails.
 *
 * --mrc switches the cell axis from replacement policies to
 * miss-ratio-curve construction: one profiled src/mrc pass per
 * (benchmark, mode) cell over exact/shards/shards-adj, throughput =
 * trace instructions consumed per second. The artifact (default name
 * "mrc" -> BENCH_mrc.json) guards the one-pass engine's cost the same
 * way the simulation cells guard the simulator's.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mrc/engine.hpp"
#include "prof/export.hpp"
#include "prof/profiler.hpp"
#include "runner/report.hpp"
#include "trace/source.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

std::vector<std::string>
splitCommas(const std::string& s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const auto comma = s.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

unsigned
suiteIndexOf(const std::string& name)
{
    for (unsigned i = 0; i < trace::suiteSize(); ++i)
        if (trace::suiteName(i) == name)
            return i;
    fatalIf(true, ErrorCode::Config,
            "unknown suite benchmark: " + name);
    return 0; // unreachable
}

/** One profiled MRC pass per (trace, mode) cell; appends BenchRuns. */
bool
runMrcCells(const std::vector<trace::Trace>& traces,
            std::vector<prof::BenchRun>& bench_runs)
{
    for (const auto& t : traces) {
        for (const auto mode :
             {mrc::MrcMode::Exact, mrc::MrcMode::Shards,
              mrc::MrcMode::ShardsAdj}) {
            mrc::MrcConfig cfg;
            cfg.mode = mode;
            trace::MaterializedTraceSource src(t);
            prof::Profiler profiler;
            mrc::MrcProfile p;
            {
                const prof::Attach attach(profiler);
                p = mrc::buildProfile(src, cfg);
            }
            const std::string label =
                t.name() + "/mrc-" + mrc::mrcModeName(mode);
            prof::BenchRun br;
            br.label = label;
            br.benchmark = t.name();
            br.policy = std::string("mrc-") + mrc::mrcModeName(mode);
            br.profile = profiler.finish();
            br.profile.setThroughput(t.instructions(),
                                     p.demandSamples);
            std::printf("%-24s %12.0f %12.0f %10s\n", label.c_str(),
                        br.profile.instsPerSecond,
                        br.profile.accessesPerSecond, "-");
            bench_runs.push_back(std::move(br));
        }
    }
    return false; // a failed pass throws FatalError instead
}

int
runHarness(int argc, char** argv)
{
    std::string name = "smoke";
    bool mrc_cells = false;
    std::string out_path;
    auto insts =
        static_cast<InstCount>(bench::envCount("MRP_BENCH_INSTS",
                                               400000));
    std::string benchmarks = "thrash.2x,gups.2x,mixpc.hi";
    std::string policies = "LRU,MPPPB";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--name") {
            name = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--insts") {
            insts = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--benchmark") {
            benchmarks = next();
        } else if (arg == "--policy") {
            policies = next();
        } else if (arg == "--mrc") {
            mrc_cells = true;
        } else {
            std::fprintf(stderr,
                         "usage: bench_harness [--name NAME] "
                         "[--out FILE] [--insts N]\n"
                         "                     [--benchmark LIST] "
                         "[--policy LIST] [--mrc]\n");
            return 2;
        }
    }
    if (mrc_cells && name == "smoke")
        name = "mrc";
    if (out_path.empty())
        out_path = "BENCH_" + name + ".json";

    std::vector<prof::BenchRun> bench_runs;

    // Harness-level profile: setup work (trace generation) on the
    // main thread, so BENCH documents also track fixture cost.
    prof::Profiler harness_prof;
    std::vector<trace::Trace> traces;
    InstCount generated = 0;
    {
        prof::Attach attach(harness_prof);
        for (const auto& b : splitCommas(benchmarks)) {
            traces.push_back(
                trace::makeSuiteTrace(suiteIndexOf(b), insts));
            generated += traces.back().instructions();
        }
    }
    {
        prof::BenchRun hr;
        hr.label = "harness";
        hr.benchmark = "setup";
        hr.policy = "-";
        hr.profile = harness_prof.finish();
        hr.profile.setThroughput(generated, 0);
        bench_runs.push_back(std::move(hr));
    }

    // One profiled simulation per (benchmark, policy) cell, executed
    // sequentially on this thread so cells never contend for the core
    // and the numbers stay comparable run to run.
    runner::RunnerOptions ropts;
    ropts.profile = true;
    std::printf("%-24s %12s %12s %10s\n", "run", "insts/sec",
                "accesses/sec", "llc cover");
    bool failed = false;
    if (mrc_cells) {
        failed = runMrcCells(traces, bench_runs);
        runner::writeFile(out_path,
                          prof::benchJson(name, bench_runs,
                                          prof::machineInfo(),
                                          prof::gitSha()));
        std::fprintf(stderr, "wrote %s (%zu runs)\n",
                     out_path.c_str(), bench_runs.size());
        return failed ? 1 : 0;
    }
    std::size_t index = 0;
    for (const auto& t : traces) {
        for (const auto& p : splitCommas(policies)) {
            const auto req = runner::RunRequest::singleCore(
                trace::TraceSpec::borrowed(t),
                runner::PolicySpec::byName(p));
            const auto r =
                runner::ExperimentRunner::runOne(req, index++, ropts);
            const std::string label = t.name() + "/" + p;
            if (!r.ok()) {
                std::printf("%-24s FAILED [%s]: %s\n", label.c_str(),
                            errorCodeName(r.errorCode),
                            r.error.c_str());
                failed = true;
                continue;
            }
            panicIf(!r.profile, "profiled run returned no profile");
            const double cover = prof::llcCoverage(r.profile->root);
            std::printf("%-24s %12.0f %12.0f %9.1f%%\n", label.c_str(),
                        r.profile->instsPerSecond,
                        r.profile->accessesPerSecond, cover * 100.0);
            prof::BenchRun br;
            br.label = label;
            br.benchmark = t.name();
            br.policy = p;
            br.profile = *r.profile;
            bench_runs.push_back(std::move(br));
        }
    }

    runner::writeFile(out_path,
                      prof::benchJson(name, bench_runs,
                                      prof::machineInfo(),
                                      prof::gitSha()));
    std::fprintf(stderr, "wrote %s (%zu runs)\n", out_path.c_str(),
                 bench_runs.size());
    return failed ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return runHarness(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "bench_harness: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
