/**
 * @file
 * Reproduces Figure 4: normalized weighted speedup over LRU for
 * 4-core multi-programmed workloads under Perceptron, Hawkeye, and
 * MPPPB (SRRIP substrate, Table 2 features, 8MB shared LLC), printed
 * as an ascending S-curve plus geometric means (paper: Perceptron
 * +5.8%, Hawkeye +5.2%, MPPPB +8.3%).
 *
 * The paper evaluates 900 test mixes; the default here is a scaled
 * sample (MRP_BENCH_MIXES to enlarge). Mixes come from the same
 * train/test split machinery the paper uses — the first mixes are
 * reserved for training and never measured here.
 */

#include <algorithm>

#include "bench_util.hpp"

int
main()
{
    using namespace mrp;
    const unsigned n_mixes = bench::mixCount(32);
    const auto suite = bench::makeSuiteRegions(bench::multiCoreInsts());
    const auto split = trace::makeMixSplit(16, n_mixes);
    const sim::MultiCoreConfig cfg;
    const auto single_ipc = bench::standaloneIpcTable(suite, cfg);

    const std::vector<std::string> policies = {"Perceptron", "Hawkeye",
                                               "MPPPB-MC"};
    std::vector<std::vector<double>> ws(policies.size());

    for (const auto& mix : split.test) {
        const bench::MixSources sources(suite, mix);
        std::vector<double> single(4, 0.0);
        for (unsigned c = 0; c < 4; ++c)
            single[c] = single_ipc[mix.benchmarks[c]];
        const double lru_ws =
            sim::runMultiCore(sources.ptrs(),
                              sim::makePolicyFactory("LRU"), cfg)
                .weightedSpeedup(single);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto r = sim::runMultiCore(
                sources.ptrs(), sim::makePolicyFactory(policies[p]),
                cfg);
            ws[p].push_back(r.weightedSpeedup(single) / lru_ws);
        }
        std::fprintf(stderr, "# done %s\n", mix.name().c_str());
    }

    std::printf("# Figure 4: normalized weighted speedup over LRU, "
                "4-core, 8MB LLC, %zu test mixes\n",
                split.test.size());
    std::printf("%-8s", "rank");
    for (const auto& p : policies)
        std::printf(" %12s", p.c_str());
    std::printf("\n");
    for (auto& col : ws)
        std::sort(col.begin(), col.end());
    for (std::size_t i = 0; i < split.test.size(); ++i) {
        std::printf("%-8zu", i);
        for (const auto& col : ws)
            std::printf(" %12.4f", col[i]);
        std::printf("\n");
    }
    std::printf("%-8s", "geomean");
    for (const auto& col : ws)
        std::printf(" %12.4f", geomean(col));
    std::printf("\n");

    // The paper also reports how many mixes fall below LRU
    // (Hawkeye 18, Perceptron 201, MPPPB 115 of 900).
    std::printf("\n# mixes below LRU:");
    for (std::size_t p = 0; p < policies.size(); ++p) {
        const auto below = std::count_if(ws[p].begin(), ws[p].end(),
                                         [](double v) { return v < 1.0; });
        std::printf(" %s=%ld", policies[p].c_str(),
                    static_cast<long>(below));
    }
    std::printf("\n");
    return 0;
}
