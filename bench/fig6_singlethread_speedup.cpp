/**
 * @file
 * Reproduces Figure 6: single-thread speedup over LRU per benchmark
 * for Hawkeye, Perceptron, MPPPB, and MIN on the 2MB-LLC
 * configuration, sorted by MPPPB speedup as in the paper, with
 * geometric means (paper: Hawkeye 5.1%, Perceptron 6.3%, MPPPB 9.0%,
 * MIN 13.6% — our substrate is synthetic, so the *ordering* and
 * MPPPB's ~2/3-of-MIN share are the reproduction targets).
 *
 * The benchmark × policy product runs through the parallel
 * ExperimentRunner (--jobs N / MRP_BENCH_JOBS).
 */

#include <algorithm>

#include "bench_util.hpp"

int
main(int argc, char** argv)
{
    using namespace mrp;
    const InstCount insts = bench::singleThreadInsts();
    const std::vector<std::string> policies = {
        "LRU", "Hawkeye", "Perceptron", "MPPPB", "MIN"};

    const auto suite = bench::makeSuiteTraces(insts);
    std::vector<runner::RunRequest> batch;
    batch.reserve(suite.size() * policies.size());
    for (const auto& tr : suite)
        for (const auto& p : policies)
            batch.push_back(runner::RunRequest::singleCore(
                trace::TraceSpec::borrowed(tr),
                runner::PolicySpec::byName(p)));

    const runner::ExperimentRunner pool(bench::jobsFromArgs(argc, argv));
    const auto set = pool.run(batch);
    bench::reportBatch(set);

    struct Row
    {
        std::string benchmark;
        double hawkeye, perceptron, mpppb, min;
    };
    std::vector<Row> rows;
    const std::size_t stride = policies.size();
    for (unsigned b = 0; b < trace::suiteSize(); ++b) {
        const std::size_t base = b * stride;
        Row row;
        row.benchmark = set.results[base].benchmark;
        row.hawkeye = set.speedupOver(base + 1, "LRU");
        row.perceptron = set.speedupOver(base + 2, "LRU");
        row.mpppb = set.speedupOver(base + 3, "LRU");
        row.min = set.speedupOver(base + 4, "LRU");
        rows.push_back(row);
    }

    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.mpppb < b.mpppb; });

    std::printf("# Figure 6: speedup over LRU, single-thread, 2MB LLC\n");
    std::printf("%-16s %10s %10s %10s %10s\n", "benchmark", "Hawkeye",
                "Perceptron", "MPPPB", "MIN");
    std::vector<double> gh, gp, gm, gmin;
    for (const auto& r : rows) {
        std::printf("%-16s %10.3f %10.3f %10.3f %10.3f\n",
                    r.benchmark.c_str(), r.hawkeye, r.perceptron,
                    r.mpppb, r.min);
        gh.push_back(r.hawkeye);
        gp.push_back(r.perceptron);
        gm.push_back(r.mpppb);
        gmin.push_back(r.min);
    }
    std::printf("%-16s %10.3f %10.3f %10.3f %10.3f\n", "geomean",
                geomean(gh), geomean(gp), geomean(gm), geomean(gmin));

    // Paper-shape checks reported for EXPERIMENTS.md.
    unsigned mpppb_best = 0, above_lru = 0;
    double worst = 1e9;
    for (const auto& r : rows) {
        if (r.mpppb >= r.hawkeye && r.mpppb >= r.perceptron)
            ++mpppb_best;
        if (r.mpppb > 1.0)
            ++above_lru;
        worst = std::min(worst, r.mpppb);
    }
    std::printf("\n# MPPPB best-or-tied of realistic policies on %u/%u "
                "benchmarks; above LRU on %u; worst case %.3f of LRU\n",
                mpppb_best, trace::suiteSize(), above_lru, worst);
    std::printf("# MPPPB share of MIN headroom: %.2f (paper: 0.66)\n",
                (geomean(gm) - 1.0) / (geomean(gmin) - 1.0));
    return 0;
}
