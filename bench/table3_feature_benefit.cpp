/**
 * @file
 * Reproduces Table 3: for each held-out workload (standing in for the
 * SPEC CPU 2017 simpoints that arrived after the feature design), run
 * MPPPB with the Table 1(b) features 17 times — full set, then
 * leave-one-out per feature — and report, per workload, the feature
 * whose removal increases MPKI the most (the workload's dominant
 * feature), with the MPKI with/without it and the percent increase.
 *
 * The workload × feature-ablation product runs through the parallel
 * ExperimentRunner (--jobs N / MRP_BENCH_JOBS).
 */

#include "bench_util.hpp"
#include "core/feature_sets.hpp"
#include "core/mpppb.hpp"

int
main(int argc, char** argv)
{
    using namespace mrp;
    const InstCount insts = bench::envCount("MRP_BENCH_INSTS", 1500000);

    core::MpppbConfig base_cfg = core::singleThreadMpppbConfig();
    base_cfg.predictor.features = core::featureSetTable1B();
    const auto& features = base_cfg.predictor.features;

    /** Leave-one-out config with thresholds scaled to the smaller sum
     * of feature outputs. */
    const auto ablated = [&](std::size_t f) {
        core::MpppbConfig mcfg = base_cfg;
        mcfg.predictor.features = core::without(features, f);
        const double scale =
            static_cast<double>(mcfg.predictor.features.size()) /
            static_cast<double>(features.size());
        mcfg.thresholds.tauBypass =
            static_cast<int>(mcfg.thresholds.tauBypass * scale);
        for (auto& t : mcfg.thresholds.tau)
            t = static_cast<int>(t * scale);
        mcfg.thresholds.tauNoPromote =
            static_cast<int>(mcfg.thresholds.tauNoPromote * scale);
        return mcfg;
    };

    std::vector<trace::Trace> held_out;
    held_out.reserve(trace::heldOutSize());
    for (unsigned w = 0; w < trace::heldOutSize(); ++w)
        held_out.push_back(trace::makeHeldOutTrace(w, insts));

    // Per workload: the full set, then one leave-one-out per feature.
    std::vector<runner::RunRequest> batch;
    batch.reserve(held_out.size() * (features.size() + 1));
    for (const auto& tr : held_out) {
        batch.push_back(runner::RunRequest::singleCore(
            trace::TraceSpec::borrowed(tr),
            runner::PolicySpec::custom(
                "MPPPB-1B", sim::makeMpppbFactory(base_cfg))));
        for (std::size_t f = 0; f < features.size(); ++f)
            batch.push_back(runner::RunRequest::singleCore(
                trace::TraceSpec::borrowed(tr),
                runner::PolicySpec::custom(
                    "MPPPB-1B-w/o-" + features[f].toString(),
                    sim::makeMpppbFactory(ablated(f)))));
    }

    const runner::ExperimentRunner pool(bench::jobsFromArgs(argc, argv));
    const auto set = pool.run(batch);
    bench::reportBatch(set);

    std::printf("# Table 3: dominant feature per held-out workload "
                "(Table 1(b) set)\n");
    std::printf("%-18s %-20s %10s %10s %9s\n", "workload", "feature",
                "without", "with", "increase");

    const std::size_t stride = features.size() + 1;
    for (unsigned w = 0; w < trace::heldOutSize(); ++w) {
        const std::size_t base = w * stride;
        const double with_all = set.results[base].mpki;
        double worst_without = with_all;
        std::size_t dominant = 0;
        for (std::size_t f = 0; f < features.size(); ++f) {
            const double m = set.results[base + 1 + f].mpki;
            if (m > worst_without) {
                worst_without = m;
                dominant = f;
            }
        }
        const double pct =
            with_all > 0.0
                ? 100.0 * (worst_without - with_all) / with_all
                : 0.0;
        std::printf("%-18s %-20s %10.2f %10.2f %8.2f%%\n",
                    held_out[w].name().c_str(),
                    worst_without > with_all
                        ? features[dominant].toString().c_str()
                        : "(none helps)",
                    worst_without, with_all, pct);
    }
    return 0;
}
