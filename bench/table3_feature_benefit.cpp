/**
 * @file
 * Reproduces Table 3: for each held-out workload (standing in for the
 * SPEC CPU 2017 simpoints that arrived after the feature design), run
 * MPPPB with the Table 1(b) features 17 times — full set, then
 * leave-one-out per feature — and report, per workload, the feature
 * whose removal increases MPKI the most (the workload's dominant
 * feature), with the MPKI with/without it and the percent increase.
 */

#include "bench_util.hpp"
#include "core/feature_sets.hpp"
#include "core/mpppb.hpp"

int
main()
{
    using namespace mrp;
    const InstCount insts = bench::envCount("MRP_BENCH_INSTS", 1500000);

    core::MpppbConfig base_cfg = core::singleThreadMpppbConfig();
    base_cfg.predictor.features = core::featureSetTable1B();
    const auto& features = base_cfg.predictor.features;

    std::printf("# Table 3: dominant feature per held-out workload "
                "(Table 1(b) set)\n");
    std::printf("%-18s %-20s %10s %10s %9s\n", "workload", "feature",
                "without", "with", "increase");

    for (unsigned w = 0; w < trace::heldOutSize(); ++w) {
        const auto tr = trace::makeHeldOutTrace(w, insts);
        const double with_all =
            sim::runSingleCore(tr, sim::makeMpppbFactory(base_cfg), {})
                .mpki;
        double worst_without = with_all;
        std::size_t dominant = 0;
        for (std::size_t f = 0; f < features.size(); ++f) {
            core::MpppbConfig mcfg = base_cfg;
            mcfg.predictor.features = core::without(features, f);
            const double scale =
                static_cast<double>(mcfg.predictor.features.size()) /
                static_cast<double>(features.size());
            mcfg.thresholds.tauBypass = static_cast<int>(
                mcfg.thresholds.tauBypass * scale);
            for (auto& t : mcfg.thresholds.tau)
                t = static_cast<int>(t * scale);
            mcfg.thresholds.tauNoPromote = static_cast<int>(
                mcfg.thresholds.tauNoPromote * scale);
            const double m =
                sim::runSingleCore(tr, sim::makeMpppbFactory(mcfg), {})
                    .mpki;
            if (m > worst_without) {
                worst_without = m;
                dominant = f;
            }
        }
        const double pct =
            with_all > 0.0
                ? 100.0 * (worst_without - with_all) / with_all
                : 0.0;
        std::printf("%-18s %-20s %10.2f %10.2f %8.2f%%\n",
                    tr.name().c_str(),
                    worst_without > with_all
                        ? features[dominant].toString().c_str()
                        : "(none helps)",
                    worst_without, with_all, pct);
        std::fflush(stdout);
    }
    return 0;
}
