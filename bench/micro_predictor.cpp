/**
 * @file
 * Microbenchmarks (google-benchmark) of the predictor and policy hot
 * paths: multiperspective observe (lookup + sampler training),
 * baseline predictor observes, tree-PLRU placement, and SRRIP victim
 * selection. These guard the simulator's throughput, which every
 * figure bench depends on.
 */

#include <benchmark/benchmark.h>

#include "core/feature_sets.hpp"
#include "core/predictor.hpp"
#include "policy/perceptron.hpp"
#include "policy/sdbp.hpp"
#include "policy/srrip.hpp"
#include "policy/tree_plru.hpp"
#include "util/rng.hpp"

namespace {

using namespace mrp;

cache::CacheGeometry
llcGeom()
{
    return cache::CacheGeometry(2 * 1024 * 1024, 16);
}

cache::AccessInfo
randomAccess(Rng& rng)
{
    cache::AccessInfo info;
    info.pc = 0x400000 + 4 * rng.below(256);
    info.addr = rng.below(1ull << 32);
    info.type = cache::AccessType::Load;
    return info;
}

void
BM_MultiperspectiveObserve(benchmark::State& state)
{
    core::MultiperspectiveConfig cfg;
    cfg.features = core::featureSetTable1A();
    core::MultiperspectivePredictor pred(llcGeom(), 1, cfg);
    Rng rng(1);
    std::uint32_t set = 0;
    for (auto _ : state) {
        const auto info = randomAccess(rng);
        benchmark::DoNotOptimize(
            pred.observe(info, set, rng.chance(0.4)));
        set = (set + 32) & 2047; // alternate over sampled sets
    }
}
BENCHMARK(BM_MultiperspectiveObserve);

void
BM_MultiperspectiveObserveUnsampled(benchmark::State& state)
{
    core::MultiperspectiveConfig cfg;
    cfg.features = core::featureSetTable1A();
    core::MultiperspectivePredictor pred(llcGeom(), 1, cfg);
    Rng rng(1);
    for (auto _ : state) {
        const auto info = randomAccess(rng);
        benchmark::DoNotOptimize(pred.observe(info, 1, true));
    }
}
BENCHMARK(BM_MultiperspectiveObserveUnsampled);

void
BM_SdbpObserve(benchmark::State& state)
{
    policy::SdbpPredictor pred(llcGeom(), 1);
    Rng rng(2);
    for (auto _ : state) {
        const auto info = randomAccess(rng);
        benchmark::DoNotOptimize(pred.observe(info, 0, false));
    }
}
BENCHMARK(BM_SdbpObserve);

void
BM_PerceptronObserve(benchmark::State& state)
{
    policy::PerceptronPredictor pred(llcGeom(), 1);
    Rng rng(3);
    for (auto _ : state) {
        const auto info = randomAccess(rng);
        benchmark::DoNotOptimize(pred.observe(info, 0, false));
    }
}
BENCHMARK(BM_PerceptronObserve);

void
BM_TreePlruSetPosition(benchmark::State& state)
{
    policy::TreePlru tree(2048, 16);
    Rng rng(4);
    for (auto _ : state) {
        tree.setPosition(static_cast<std::uint32_t>(rng.below(2048)),
                         static_cast<std::uint32_t>(rng.below(16)),
                         static_cast<std::uint32_t>(rng.below(16)));
        benchmark::DoNotOptimize(tree);
    }
}
BENCHMARK(BM_TreePlruSetPosition);

void
BM_SrripVictim(benchmark::State& state)
{
    policy::SrripPolicy rrip(llcGeom());
    Rng rng(5);
    cache::AccessInfo info;
    for (auto _ : state) {
        const auto set = static_cast<std::uint32_t>(rng.below(2048));
        benchmark::DoNotOptimize(rrip.victimWay(info, set));
        rrip.setRrpv(set, static_cast<std::uint32_t>(rng.below(16)), 0);
    }
}
BENCHMARK(BM_SrripVictim);

} // namespace

BENCHMARK_MAIN();
