/**
 * @file
 * Reproduces Figure 3: the distribution of average MPKI over randomly
 * chosen sets of 16 features, sorted descending, with the LRU and MIN
 * reference lines and the hill-climbed result. The paper evaluates
 * 4,000 random sets on 99 segments (10 CPU-years of search); the
 * default here is a scaled sample (MRP_BENCH_SETS, MRP_BENCH_INSTS to
 * enlarge). The reproduction target is the *shape*: random sets span
 * from worse-than-LRU to roughly halfway between LRU and MIN, and
 * hill-climbing adds a modest further improvement.
 */

#include <algorithm>

#include "bench_util.hpp"
#include "core/feature_sets.hpp"
#include "search/feature_search.hpp"

int
main()
{
    using namespace mrp;
    const auto n_sets = static_cast<unsigned>(
        bench::envCount("MRP_BENCH_SETS", 48));
    const auto climb_iters = static_cast<unsigned>(
        bench::envCount("MRP_BENCH_CLIMB", 48));

    search::SearchConfig cfg;
    cfg.workloads = {2, 7, 9, 12, 14, 16, 18, 21, 25, 30};
    cfg.traceInstructions = bench::envCount("MRP_BENCH_INSTS", 600000);
    cfg.baseConfig = core::singleThreadMpppbConfig();

    search::FeatureSetEvaluator eval(cfg);
    const double lru = eval.lruMpki();
    const double min = eval.minMpki();

    auto randoms = search::randomSearch(eval, cfg, n_sets, 0xF16);
    std::sort(randoms.begin(), randoms.end(),
              [](const auto& a, const auto& b) {
                  return a.averageMpki > b.averageMpki;
              });

    // Hill-climb from the best random set (§5.1).
    search::Candidate best = randoms.back();
    best = search::hillClimb(eval, cfg, best, climb_iters, 0xC1B);

    std::printf("# Figure 3: random feature sets sorted by MPKI "
                "(%u sets, %u climb steps)\n",
                n_sets, climb_iters);
    std::printf("%-8s %12s %12s %12s %12s\n", "rank", "random", "LRU",
                "MIN", "hillclimbed");
    for (std::size_t i = 0; i < randoms.size(); ++i)
        std::printf("%-8zu %12.3f %12.3f %12.3f %12.3f\n", i,
                    randoms[i].averageMpki, lru, min, best.averageMpki);

    std::printf("\n# LRU %.3f | best random %.3f | hill-climbed %.3f | "
                "MIN %.3f\n",
                lru, randoms.back().averageMpki, best.averageMpki, min);
    std::printf("# hill-climbed feature set:\n%s",
                core::formatFeatureSet(best.features).c_str());
    return 0;
}
