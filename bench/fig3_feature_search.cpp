/**
 * @file
 * Reproduces Figure 3: the distribution of average MPKI over randomly
 * chosen sets of 16 features, sorted descending, with the LRU and MIN
 * reference lines and the refined result. The paper evaluates 4,000
 * random sets on 99 segments (10 CPU-years of search); the default
 * here is a scaled sample (MRP_BENCH_SETS, MRP_BENCH_INSTS to
 * enlarge). The reproduction target is the *shape*: random sets span
 * from worse-than-LRU to roughly halfway between LRU and MIN, and
 * refinement adds a modest further improvement.
 *
 * Runs as two sweep studies on the shared corpus evaluator: a
 * one-generation list study of random 16-feature sets drawn the
 * paper's way (every slot populated via FeatureSpec::random — a plain
 * RandomStrategy draw would disable about half the slots and collapse
 * the scatter), then a genetic refinement seeded with the best random
 * genome (elitism makes the refined result monotone — it can only
 * match or beat the seed, like the paper's hill-climb). Candidates
 * fan out on the ExperimentRunner (--jobs N or MRP_BENCH_JOBS).
 */

#include <algorithm>

#include "bench_util.hpp"
#include "core/feature_sets.hpp"
#include "sweep/study.hpp"

int
main(int argc, char** argv)
{
    using namespace mrp;
    const auto n_sets = static_cast<unsigned>(
        bench::envCount("MRP_BENCH_SETS", 48));
    const auto refine_evals = static_cast<unsigned>(
        bench::envCount("MRP_BENCH_CLIMB", 48));
    const unsigned jobs = bench::jobsFromArgs(argc, argv);

    sweep::CorpusConfig corpus;
    corpus.workloads = {2, 7, 9, 12, 14, 16, 18, 21, 25, 30};
    corpus.fullInstructions =
        bench::envCount("MRP_BENCH_INSTS", 600000);
    corpus.jobs = jobs;
    const auto evaluator =
        std::make_shared<sweep::CorpusEvaluator>(corpus);
    const double lru = mean(evaluator->policyMpkis("LRU"));
    const double min = mean(evaluator->policyMpkis("MIN"));

    sweep::SearchSpace space; // 16 feature slots, paper-default base
    sweep::CorpusMpkiObjective objective(
        evaluator, sweep::CorpusMpkiObjective::Aggregate::Mean);

    // Stage 1: the random scatter — n_sets full 16-feature sets (the
    // paper's §5.1 draw), as one single-generation list study.
    Rng rng(0xF16);
    std::vector<sweep::Candidate> random_sets;
    random_sets.reserve(n_sets);
    for (unsigned i = 0; i < n_sets; ++i) {
        core::MpppbConfig mcfg = space.base;
        mcfg.predictor.features.clear();
        for (unsigned f = 0; f < space.featureSlots; ++f)
            mcfg.predictor.features.push_back(
                core::FeatureSpec::random(rng));
        random_sets.push_back({space.encodeClamped(mcfg), 0});
    }
    sweep::ListStrategy random_strategy(std::move(random_sets));
    sweep::StudyConfig rcfg;
    rcfg.name = "fig3-random";
    rcfg.seed = 0xF16;
    rcfg.jobs = jobs;
    sweep::Study random_study(space, random_strategy, objective, rcfg);
    const auto random_result = random_study.run();
    fatalIf(!random_result.hasBest, "random stage produced no result");
    const auto& seed_candidate =
        random_result.candidates[random_result.bestId];

    std::vector<double> scatter;
    for (const auto& o : random_result.candidates)
        if (o.ok)
            scatter.push_back(o.mpki);
    std::sort(scatter.begin(), scatter.end(), std::greater<double>());

    // Stage 2: genetic refinement from the best random genome.
    const unsigned population = 8;
    sweep::GeneticStrategy::Config gc;
    gc.population = population;
    gc.generations = std::max(1u, refine_evals / population);
    gc.seeds.push_back(seed_candidate.candidate.genome);
    sweep::GeneticStrategy genetic(space, gc, 0xC1B);
    sweep::StudyConfig gcfg;
    gcfg.name = "fig3-refine";
    gcfg.seed = 0xC1B;
    gcfg.jobs = jobs;
    sweep::Study refine_study(space, genetic, objective, gcfg);
    const auto refine_result = refine_study.run();
    fatalIf(!refine_result.hasBest, "refinement produced no result");
    const auto& refined =
        refine_result.candidates[refine_result.bestId];

    std::printf("# Figure 3: random feature sets sorted by MPKI "
                "(%u sets, %zu refinement evals)\n",
                n_sets, refine_result.candidates.size());
    std::printf("%-8s %12s %12s %12s %12s\n", "rank", "random", "LRU",
                "MIN", "refined");
    for (std::size_t i = 0; i < scatter.size(); ++i)
        std::printf("%-8zu %12.3f %12.3f %12.3f %12.3f\n", i,
                    scatter[i], lru, min, refined.mpki);

    std::printf("\n# LRU %.3f | best random %.3f | refined %.3f | "
                "MIN %.3f\n",
                lru, seed_candidate.mpki, refined.mpki, min);
    const auto best_cfg = space.decode(refined.candidate.genome);
    std::printf("# refined feature set:\n%s",
                core::formatFeatureSet(best_cfg.predictor.features)
                    .c_str());
    return 0;
}
