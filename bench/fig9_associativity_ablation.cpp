/**
 * @file
 * Reproduces Figure 9: the impact of per-feature associativity.
 * For A = 1..18, every feature of the multi-core set has its
 * associativity forced to A; the original set keeps its per-feature
 * values. The paper finds uniform A=1 ≈ +6.4%, uniform A=18 ≈ +7.8%,
 * and the original variable associativities ≈ +8.0% on 900 mixes; the
 * target shape is a rising curve with the original on top.
 */

#include "bench_util.hpp"
#include "core/feature_sets.hpp"
#include "core/mpppb.hpp"

int
main()
{
    using namespace mrp;
    const unsigned n_mixes = bench::mixCount(8);
    const auto suite = bench::makeSuiteRegions(bench::multiCoreInsts());
    const auto split = trace::makeMixSplit(16, n_mixes);
    const sim::MultiCoreConfig cfg;
    const auto single_ipc = bench::standaloneIpcTable(suite, cfg);

    const auto base_cfg = core::multiCoreMpppbConfig();

    // Precompute per-mix LRU weighted speedups.
    std::vector<double> lru_ws;
    for (const auto& mix : split.test) {
        const bench::MixSources sources(suite, mix);
        std::vector<double> single(4, 0.0);
        for (unsigned c = 0; c < 4; ++c)
            single[c] = single_ipc[mix.benchmarks[c]];
        lru_ws.push_back(
            sim::runMultiCore(sources.ptrs(),
                              sim::makePolicyFactory("LRU"), cfg)
                .weightedSpeedup(single));
    }

    auto evaluate = [&](const core::MpppbConfig& mcfg) {
        std::vector<double> ws;
        for (std::size_t m = 0; m < split.test.size(); ++m) {
            const bench::MixSources sources(suite, split.test[m]);
            std::vector<double> single(4, 0.0);
            for (unsigned c = 0; c < 4; ++c)
                single[c] = single_ipc[split.test[m].benchmarks[c]];
            const auto r = sim::runMultiCore(
                sources.ptrs(), sim::makeMpppbFactory(mcfg), cfg);
            ws.push_back(r.weightedSpeedup(single) / lru_ws[m]);
        }
        return geomean(ws);
    };

    std::printf("# Figure 9: uniform feature associativity vs the "
                "original per-feature values (%zu mixes)\n",
                split.test.size());
    std::printf("%-12s %20s\n", "assoc", "norm.weighted.speedup");
    for (unsigned a = 1; a <= core::kMaxFeatureAssoc; ++a) {
        core::MpppbConfig mcfg = base_cfg;
        mcfg.predictor.features =
            core::withUniformAssociativity(base_cfg.predictor.features, a);
        std::printf("%-12u %20.4f\n", a, evaluate(mcfg));
        std::fflush(stdout);
    }
    std::printf("%-12s %20.4f\n", "original", evaluate(base_cfg));
    return 0;
}
