file(REMOVE_RECURSE
  "CMakeFiles/mrp_trace.dir/generators.cpp.o"
  "CMakeFiles/mrp_trace.dir/generators.cpp.o.d"
  "CMakeFiles/mrp_trace.dir/mix.cpp.o"
  "CMakeFiles/mrp_trace.dir/mix.cpp.o.d"
  "CMakeFiles/mrp_trace.dir/trace_io.cpp.o"
  "CMakeFiles/mrp_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/mrp_trace.dir/workloads.cpp.o"
  "CMakeFiles/mrp_trace.dir/workloads.cpp.o.d"
  "libmrp_trace.a"
  "libmrp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
