# Empty dependencies file for mrp_trace.
# This may be replaced when dependencies are built.
