file(REMOVE_RECURSE
  "libmrp_trace.a"
)
