# Empty dependencies file for mrp_cache.
# This may be replaced when dependencies are built.
