file(REMOVE_RECURSE
  "CMakeFiles/mrp_cache.dir/basic_cache.cpp.o"
  "CMakeFiles/mrp_cache.dir/basic_cache.cpp.o.d"
  "CMakeFiles/mrp_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/mrp_cache.dir/hierarchy.cpp.o.d"
  "CMakeFiles/mrp_cache.dir/policy_cache.cpp.o"
  "CMakeFiles/mrp_cache.dir/policy_cache.cpp.o.d"
  "libmrp_cache.a"
  "libmrp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
