file(REMOVE_RECURSE
  "libmrp_cache.a"
)
