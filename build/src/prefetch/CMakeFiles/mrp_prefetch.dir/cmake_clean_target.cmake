file(REMOVE_RECURSE
  "libmrp_prefetch.a"
)
