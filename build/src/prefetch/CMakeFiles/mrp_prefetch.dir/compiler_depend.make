# Empty compiler generated dependencies file for mrp_prefetch.
# This may be replaced when dependencies are built.
