file(REMOVE_RECURSE
  "CMakeFiles/mrp_prefetch.dir/stream_prefetcher.cpp.o"
  "CMakeFiles/mrp_prefetch.dir/stream_prefetcher.cpp.o.d"
  "libmrp_prefetch.a"
  "libmrp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
