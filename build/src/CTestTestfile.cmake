# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("trace")
subdirs("cache")
subdirs("prefetch")
subdirs("cpu")
subdirs("policy")
subdirs("core")
subdirs("sim")
subdirs("runner")
subdirs("search")
