file(REMOVE_RECURSE
  "libmrp_runner.a"
)
