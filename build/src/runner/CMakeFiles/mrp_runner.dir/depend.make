# Empty dependencies file for mrp_runner.
# This may be replaced when dependencies are built.
