file(REMOVE_RECURSE
  "CMakeFiles/mrp_runner.dir/experiment_runner.cpp.o"
  "CMakeFiles/mrp_runner.dir/experiment_runner.cpp.o.d"
  "CMakeFiles/mrp_runner.dir/report.cpp.o"
  "CMakeFiles/mrp_runner.dir/report.cpp.o.d"
  "CMakeFiles/mrp_runner.dir/run_set.cpp.o"
  "CMakeFiles/mrp_runner.dir/run_set.cpp.o.d"
  "libmrp_runner.a"
  "libmrp_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
