file(REMOVE_RECURSE
  "CMakeFiles/mrp_search.dir/feature_search.cpp.o"
  "CMakeFiles/mrp_search.dir/feature_search.cpp.o.d"
  "libmrp_search.a"
  "libmrp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
