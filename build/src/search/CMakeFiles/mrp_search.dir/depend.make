# Empty dependencies file for mrp_search.
# This may be replaced when dependencies are built.
