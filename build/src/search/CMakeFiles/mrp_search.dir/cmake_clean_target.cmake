file(REMOVE_RECURSE
  "libmrp_search.a"
)
