# Empty dependencies file for mrp_core.
# This may be replaced when dependencies are built.
