
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feature.cpp" "src/core/CMakeFiles/mrp_core.dir/feature.cpp.o" "gcc" "src/core/CMakeFiles/mrp_core.dir/feature.cpp.o.d"
  "/root/repo/src/core/feature_sets.cpp" "src/core/CMakeFiles/mrp_core.dir/feature_sets.cpp.o" "gcc" "src/core/CMakeFiles/mrp_core.dir/feature_sets.cpp.o.d"
  "/root/repo/src/core/mpppb.cpp" "src/core/CMakeFiles/mrp_core.dir/mpppb.cpp.o" "gcc" "src/core/CMakeFiles/mrp_core.dir/mpppb.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/mrp_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/mrp_core.dir/predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/mrp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mrp_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mrp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/mrp_prefetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
