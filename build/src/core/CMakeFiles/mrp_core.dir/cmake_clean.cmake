file(REMOVE_RECURSE
  "CMakeFiles/mrp_core.dir/feature.cpp.o"
  "CMakeFiles/mrp_core.dir/feature.cpp.o.d"
  "CMakeFiles/mrp_core.dir/feature_sets.cpp.o"
  "CMakeFiles/mrp_core.dir/feature_sets.cpp.o.d"
  "CMakeFiles/mrp_core.dir/mpppb.cpp.o"
  "CMakeFiles/mrp_core.dir/mpppb.cpp.o.d"
  "CMakeFiles/mrp_core.dir/predictor.cpp.o"
  "CMakeFiles/mrp_core.dir/predictor.cpp.o.d"
  "libmrp_core.a"
  "libmrp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
