file(REMOVE_RECURSE
  "libmrp_core.a"
)
