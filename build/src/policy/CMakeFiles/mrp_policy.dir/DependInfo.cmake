
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/hawkeye.cpp" "src/policy/CMakeFiles/mrp_policy.dir/hawkeye.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/hawkeye.cpp.o.d"
  "/root/repo/src/policy/lru.cpp" "src/policy/CMakeFiles/mrp_policy.dir/lru.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/lru.cpp.o.d"
  "/root/repo/src/policy/min.cpp" "src/policy/CMakeFiles/mrp_policy.dir/min.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/min.cpp.o.d"
  "/root/repo/src/policy/perceptron.cpp" "src/policy/CMakeFiles/mrp_policy.dir/perceptron.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/perceptron.cpp.o.d"
  "/root/repo/src/policy/sdbp.cpp" "src/policy/CMakeFiles/mrp_policy.dir/sdbp.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/sdbp.cpp.o.d"
  "/root/repo/src/policy/ship.cpp" "src/policy/CMakeFiles/mrp_policy.dir/ship.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/ship.cpp.o.d"
  "/root/repo/src/policy/srrip.cpp" "src/policy/CMakeFiles/mrp_policy.dir/srrip.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/srrip.cpp.o.d"
  "/root/repo/src/policy/tree_plru.cpp" "src/policy/CMakeFiles/mrp_policy.dir/tree_plru.cpp.o" "gcc" "src/policy/CMakeFiles/mrp_policy.dir/tree_plru.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/mrp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/mrp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/mrp_prefetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
