file(REMOVE_RECURSE
  "CMakeFiles/mrp_policy.dir/hawkeye.cpp.o"
  "CMakeFiles/mrp_policy.dir/hawkeye.cpp.o.d"
  "CMakeFiles/mrp_policy.dir/lru.cpp.o"
  "CMakeFiles/mrp_policy.dir/lru.cpp.o.d"
  "CMakeFiles/mrp_policy.dir/min.cpp.o"
  "CMakeFiles/mrp_policy.dir/min.cpp.o.d"
  "CMakeFiles/mrp_policy.dir/perceptron.cpp.o"
  "CMakeFiles/mrp_policy.dir/perceptron.cpp.o.d"
  "CMakeFiles/mrp_policy.dir/sdbp.cpp.o"
  "CMakeFiles/mrp_policy.dir/sdbp.cpp.o.d"
  "CMakeFiles/mrp_policy.dir/ship.cpp.o"
  "CMakeFiles/mrp_policy.dir/ship.cpp.o.d"
  "CMakeFiles/mrp_policy.dir/srrip.cpp.o"
  "CMakeFiles/mrp_policy.dir/srrip.cpp.o.d"
  "CMakeFiles/mrp_policy.dir/tree_plru.cpp.o"
  "CMakeFiles/mrp_policy.dir/tree_plru.cpp.o.d"
  "libmrp_policy.a"
  "libmrp_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
