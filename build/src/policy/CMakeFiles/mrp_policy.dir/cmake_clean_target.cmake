file(REMOVE_RECURSE
  "libmrp_policy.a"
)
