# Empty dependencies file for mrp_policy.
# This may be replaced when dependencies are built.
