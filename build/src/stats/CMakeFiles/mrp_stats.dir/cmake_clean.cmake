file(REMOVE_RECURSE
  "CMakeFiles/mrp_stats.dir/roc.cpp.o"
  "CMakeFiles/mrp_stats.dir/roc.cpp.o.d"
  "libmrp_stats.a"
  "libmrp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
