# Empty dependencies file for mrp_stats.
# This may be replaced when dependencies are built.
