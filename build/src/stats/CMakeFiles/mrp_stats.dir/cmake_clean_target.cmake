file(REMOVE_RECURSE
  "libmrp_stats.a"
)
