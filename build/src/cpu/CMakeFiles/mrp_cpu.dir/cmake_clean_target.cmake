file(REMOVE_RECURSE
  "libmrp_cpu.a"
)
