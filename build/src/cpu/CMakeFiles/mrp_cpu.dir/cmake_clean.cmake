file(REMOVE_RECURSE
  "CMakeFiles/mrp_cpu.dir/core_model.cpp.o"
  "CMakeFiles/mrp_cpu.dir/core_model.cpp.o.d"
  "libmrp_cpu.a"
  "libmrp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
