# Empty compiler generated dependencies file for mrp_cpu.
# This may be replaced when dependencies are built.
