file(REMOVE_RECURSE
  "CMakeFiles/mrp_sim.dir/multi_core.cpp.o"
  "CMakeFiles/mrp_sim.dir/multi_core.cpp.o.d"
  "CMakeFiles/mrp_sim.dir/policies.cpp.o"
  "CMakeFiles/mrp_sim.dir/policies.cpp.o.d"
  "CMakeFiles/mrp_sim.dir/roc_probe.cpp.o"
  "CMakeFiles/mrp_sim.dir/roc_probe.cpp.o.d"
  "CMakeFiles/mrp_sim.dir/single_core.cpp.o"
  "CMakeFiles/mrp_sim.dir/single_core.cpp.o.d"
  "libmrp_sim.a"
  "libmrp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
