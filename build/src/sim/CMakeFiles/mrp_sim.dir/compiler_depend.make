# Empty compiler generated dependencies file for mrp_sim.
# This may be replaced when dependencies are built.
