
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_roc.cpp" "bench/CMakeFiles/fig8_roc.dir/fig8_roc.cpp.o" "gcc" "bench/CMakeFiles/fig8_roc.dir/fig8_roc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/mrp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mrp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mrp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/mrp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mrp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/mrp_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runner/CMakeFiles/mrp_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/mrp_search.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
