file(REMOVE_RECURSE
  "CMakeFiles/fig8_roc.dir/fig8_roc.cpp.o"
  "CMakeFiles/fig8_roc.dir/fig8_roc.cpp.o.d"
  "fig8_roc"
  "fig8_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
