# Empty dependencies file for fig8_roc.
# This may be replaced when dependencies are built.
