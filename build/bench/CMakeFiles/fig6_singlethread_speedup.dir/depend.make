# Empty dependencies file for fig6_singlethread_speedup.
# This may be replaced when dependencies are built.
