file(REMOVE_RECURSE
  "CMakeFiles/overhead_report.dir/overhead_report.cpp.o"
  "CMakeFiles/overhead_report.dir/overhead_report.cpp.o.d"
  "overhead_report"
  "overhead_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
