# Empty compiler generated dependencies file for overhead_report.
# This may be replaced when dependencies are built.
