file(REMOVE_RECURSE
  "CMakeFiles/fig3_feature_search.dir/fig3_feature_search.cpp.o"
  "CMakeFiles/fig3_feature_search.dir/fig3_feature_search.cpp.o.d"
  "fig3_feature_search"
  "fig3_feature_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_feature_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
