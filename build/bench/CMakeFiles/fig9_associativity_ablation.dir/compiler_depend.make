# Empty compiler generated dependencies file for fig9_associativity_ablation.
# This may be replaced when dependencies are built.
