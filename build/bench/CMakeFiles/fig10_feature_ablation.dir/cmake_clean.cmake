file(REMOVE_RECURSE
  "CMakeFiles/fig10_feature_ablation.dir/fig10_feature_ablation.cpp.o"
  "CMakeFiles/fig10_feature_ablation.dir/fig10_feature_ablation.cpp.o.d"
  "fig10_feature_ablation"
  "fig10_feature_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_feature_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
