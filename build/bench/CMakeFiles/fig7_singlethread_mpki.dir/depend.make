# Empty dependencies file for fig7_singlethread_mpki.
# This may be replaced when dependencies are built.
