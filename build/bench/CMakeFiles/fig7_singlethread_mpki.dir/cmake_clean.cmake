file(REMOVE_RECURSE
  "CMakeFiles/fig7_singlethread_mpki.dir/fig7_singlethread_mpki.cpp.o"
  "CMakeFiles/fig7_singlethread_mpki.dir/fig7_singlethread_mpki.cpp.o.d"
  "fig7_singlethread_mpki"
  "fig7_singlethread_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_singlethread_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
