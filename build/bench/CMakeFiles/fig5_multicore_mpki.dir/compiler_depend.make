# Empty compiler generated dependencies file for fig5_multicore_mpki.
# This may be replaced when dependencies are built.
