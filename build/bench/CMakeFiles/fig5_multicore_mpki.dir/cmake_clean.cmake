file(REMOVE_RECURSE
  "CMakeFiles/fig5_multicore_mpki.dir/fig5_multicore_mpki.cpp.o"
  "CMakeFiles/fig5_multicore_mpki.dir/fig5_multicore_mpki.cpp.o.d"
  "fig5_multicore_mpki"
  "fig5_multicore_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_multicore_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
