file(REMOVE_RECURSE
  "CMakeFiles/table3_feature_benefit.dir/table3_feature_benefit.cpp.o"
  "CMakeFiles/table3_feature_benefit.dir/table3_feature_benefit.cpp.o.d"
  "table3_feature_benefit"
  "table3_feature_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_feature_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
