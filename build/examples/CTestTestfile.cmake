# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_batch_jobs2 "/root/repo/build/examples/mrp_sim_cli" "--benchmark" "scan.a" "--insts" "120000" "--policy" "LRU,SRRIP,DRRIP,MDPP" "--jobs" "2")
set_tests_properties(cli_batch_jobs2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
