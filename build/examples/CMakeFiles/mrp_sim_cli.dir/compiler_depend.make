# Empty compiler generated dependencies file for mrp_sim_cli.
# This may be replaced when dependencies are built.
