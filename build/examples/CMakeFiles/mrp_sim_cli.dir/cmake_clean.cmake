file(REMOVE_RECURSE
  "CMakeFiles/mrp_sim_cli.dir/mrp_sim_cli.cpp.o"
  "CMakeFiles/mrp_sim_cli.dir/mrp_sim_cli.cpp.o.d"
  "mrp_sim_cli"
  "mrp_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrp_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
