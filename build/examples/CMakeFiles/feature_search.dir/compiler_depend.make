# Empty compiler generated dependencies file for feature_search.
# This may be replaced when dependencies are built.
