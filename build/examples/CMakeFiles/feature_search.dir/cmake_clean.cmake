file(REMOVE_RECURSE
  "CMakeFiles/feature_search.dir/feature_search.cpp.o"
  "CMakeFiles/feature_search.dir/feature_search.cpp.o.d"
  "feature_search"
  "feature_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
