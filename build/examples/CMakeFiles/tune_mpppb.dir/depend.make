# Empty dependencies file for tune_mpppb.
# This may be replaced when dependencies are built.
