file(REMOVE_RECURSE
  "CMakeFiles/tune_mpppb.dir/tune_mpppb.cpp.o"
  "CMakeFiles/tune_mpppb.dir/tune_mpppb.cpp.o.d"
  "tune_mpppb"
  "tune_mpppb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_mpppb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
