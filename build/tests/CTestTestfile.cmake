# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_policy_basic[1]_include.cmake")
include("/root/repo/build/tests/test_min[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_feature[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_mpppb[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_roc[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_workload_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_mpppb_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_sampling_stats[1]_include.cmake")
include("/root/repo/build/tests/test_policy_properties[1]_include.cmake")
include("/root/repo/build/tests/test_ship[1]_include.cmake")
include("/root/repo/build/tests/test_drrip_behavior[1]_include.cmake")
include("/root/repo/build/tests/test_multicore_properties[1]_include.cmake")
include("/root/repo/build/tests/test_policy_registry[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
