# Empty dependencies file for test_workload_semantics.
# This may be replaced when dependencies are built.
