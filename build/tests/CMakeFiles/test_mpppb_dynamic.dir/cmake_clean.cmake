file(REMOVE_RECURSE
  "CMakeFiles/test_mpppb_dynamic.dir/test_mpppb_dynamic.cpp.o"
  "CMakeFiles/test_mpppb_dynamic.dir/test_mpppb_dynamic.cpp.o.d"
  "test_mpppb_dynamic"
  "test_mpppb_dynamic.pdb"
  "test_mpppb_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpppb_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
