# Empty dependencies file for test_ship.
# This may be replaced when dependencies are built.
