file(REMOVE_RECURSE
  "CMakeFiles/test_ship.dir/test_ship.cpp.o"
  "CMakeFiles/test_ship.dir/test_ship.cpp.o.d"
  "test_ship"
  "test_ship.pdb"
  "test_ship[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
