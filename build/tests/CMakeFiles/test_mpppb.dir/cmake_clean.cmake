file(REMOVE_RECURSE
  "CMakeFiles/test_mpppb.dir/test_mpppb.cpp.o"
  "CMakeFiles/test_mpppb.dir/test_mpppb.cpp.o.d"
  "test_mpppb"
  "test_mpppb.pdb"
  "test_mpppb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpppb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
