file(REMOVE_RECURSE
  "CMakeFiles/test_min.dir/test_min.cpp.o"
  "CMakeFiles/test_min.dir/test_min.cpp.o.d"
  "test_min"
  "test_min.pdb"
  "test_min[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
