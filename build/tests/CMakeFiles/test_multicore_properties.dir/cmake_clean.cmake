file(REMOVE_RECURSE
  "CMakeFiles/test_multicore_properties.dir/test_multicore_properties.cpp.o"
  "CMakeFiles/test_multicore_properties.dir/test_multicore_properties.cpp.o.d"
  "test_multicore_properties"
  "test_multicore_properties.pdb"
  "test_multicore_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicore_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
