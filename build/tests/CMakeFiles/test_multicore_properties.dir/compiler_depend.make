# Empty compiler generated dependencies file for test_multicore_properties.
# This may be replaced when dependencies are built.
