file(REMOVE_RECURSE
  "CMakeFiles/test_drrip_behavior.dir/test_drrip_behavior.cpp.o"
  "CMakeFiles/test_drrip_behavior.dir/test_drrip_behavior.cpp.o.d"
  "test_drrip_behavior"
  "test_drrip_behavior.pdb"
  "test_drrip_behavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_drrip_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
