/**
 * @file
 * Streaming-trace conformance suite: the TraceSource contract
 * (chunking invariance, reset replay), the chunked v3 file format
 * (round trips, per-chunk CRC localization, atomic writes), the
 * decode-ahead wrapper (equivalence, fault position, abandonment), and
 * the generator families (exact budgets, Zipf skew sanity).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "trace/spec.hpp"
#include "trace/stream_gen.hpp"
#include "trace/stream_reader.hpp"
#include "trace/trace_io.hpp"
#include "trace/wire_format.hpp"
#include "trace/workloads.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace mrp;
using trace::Record;

/** Pull @p source dry; returns every record in delivery order. */
std::vector<Record>
drain(trace::TraceSource& source)
{
    std::vector<Record> out;
    for (;;) {
        const auto chunk = source.nextChunk();
        if (chunk.empty())
            return out;
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
}

InstCount
sumInsts(const std::vector<Record>& records)
{
    InstCount n = 0;
    for (const auto& r : records)
        n += r.count();
    return n;
}

/** Records are 16-byte PODs without padding; bytewise equality is
 * exactly record equality. */
bool
sameRecords(const std::vector<Record>& a, const std::vector<Record>& b)
{
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(Record)) == 0);
}

trace::ZipfParams
smallZipf(InstCount insts = 200000)
{
    trace::ZipfParams p;
    p.instructions = insts;
    p.keys = 1u << 14;
    return p;
}

class TempTraceFile
{
  public:
    explicit TempTraceFile(const std::string& tag)
        : path_("stream_test_" + tag + "_" +
                std::to_string(::getpid()) + ".mrpt")
    {
    }
    ~TempTraceFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

class StreamSourceTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::disarmAll(); }
};

// ---------------------------------------------------------------------
// TraceSource contract

TEST_F(StreamSourceTest, ChunkSizeNeverChangesTheRecordSequence)
{
    const auto reference = [&] {
        auto s = trace::makeZipfSource(smallZipf());
        return drain(*s);
    }();
    ASSERT_FALSE(reference.empty());
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{63},
                                    std::size_t{4096}}) {
        auto p = smallZipf();
        p.chunkRecords = chunk;
        auto s = trace::makeZipfSource(p);
        EXPECT_TRUE(sameRecords(reference, drain(*s)))
            << "diverged at chunkRecords=" << chunk;
    }
}

TEST_F(StreamSourceTest, ResetReplaysTheIdenticalStream)
{
    trace::BlockIoParams p;
    p.instructions = 150000;
    auto s = trace::makeBlockIoSource(p);
    const auto first = drain(*s);
    s->reset();
    EXPECT_TRUE(sameRecords(first, drain(*s)));

    // A reset mid-stream also restarts from the beginning.
    s->reset();
    (void)s->nextChunk();
    s->reset();
    EXPECT_TRUE(sameRecords(first, drain(*s)));
}

TEST_F(StreamSourceTest, GeneratorsHitTheInstructionBudgetExactly)
{
    // Deliberately not a multiple of any chunk or phase size.
    const InstCount target = 123457;
    trace::ZipfParams zp = smallZipf(target);
    trace::BlockIoParams bp;
    bp.instructions = target;
    std::vector<trace::TraceSpec> kids;
    kids.push_back(trace::TraceSpec::zipf(zp));
    kids.push_back(trace::TraceSpec::blockIo(bp));
    const auto mix = trace::TraceSpec::phaseMix("mix", target, 10000,
                                                std::move(kids));

    for (const auto& spec :
         {trace::TraceSpec::zipf(zp), trace::TraceSpec::blockIo(bp),
          mix}) {
        auto s = spec.open();
        EXPECT_EQ(s->instructions(), target);
        EXPECT_EQ(sumInsts(drain(*s)), target)
            << spec.displayName();
    }
}

TEST_F(StreamSourceTest, MaterializeRoundsTripsIdentityAndTotals)
{
    const auto spec = trace::TraceSpec::zipf(smallZipf());
    const auto t = trace::materialize(*spec.open());
    EXPECT_EQ(t.name(), spec.displayName());
    EXPECT_EQ(t.instructions(), spec.instructions());

    // A materialized source over the trace replays the same records
    // at any chunk granularity.
    trace::MaterializedTraceSource m(t, 77);
    EXPECT_TRUE(sameRecords(t.records(), drain(m)));
}

// ---------------------------------------------------------------------
// Chunked v3 files

TEST_F(StreamSourceTest, FileRoundTripsInBothModesAndViaLoadTrace)
{
    TempTraceFile file("roundtrip");
    const auto spec = trace::TraceSpec::zipf(smallZipf());
    const auto reference = drain(*spec.open());
    {
        trace::ChunkedTraceWriter writer(file.path(),
                                         spec.displayName(), 1000);
        auto s = spec.open();
        writer.appendAll(*s);
        writer.finish();
        EXPECT_EQ(writer.instructions(), spec.instructions());
    }

    for (const auto mode :
         {trace::FileMode::Buffered, trace::FileMode::Mmap}) {
        trace::FileTraceSource s(file.path(), mode);
        EXPECT_EQ(s.name(), spec.displayName());
        EXPECT_EQ(s.instructions(), spec.instructions());
        const auto got = drain(s);
        EXPECT_TRUE(sameRecords(reference, got));
        EXPECT_GT(s.stats().chunksDecoded, 1u);

        // reset() rewinds the file cursor, not just generators.
        s.reset();
        EXPECT_TRUE(sameRecords(reference, drain(s)));
    }

    // The monolithic loader sees the same trace (v3 is the default
    // trace_io format, not a side universe).
    const auto loaded = trace::loadTrace(file.path());
    EXPECT_EQ(loaded.name(), spec.displayName());
    EXPECT_TRUE(sameRecords(reference, loaded.records()));
}

TEST_F(StreamSourceTest, WriterChunkSizeChangesBytesNotRecords)
{
    TempTraceFile small("chunk_small");
    TempTraceFile large("chunk_large");
    const auto spec = trace::TraceSpec::zipf(smallZipf(60000));
    for (const auto* f : {&small, &large}) {
        trace::ChunkedTraceWriter writer(f->path(),
                                         spec.displayName(),
                                         f == &small ? 128 : 1 << 16);
        auto s = spec.open();
        writer.appendAll(*s);
        writer.finish();
    }
    trace::FileTraceSource a(small.path(), trace::FileMode::Buffered);
    trace::FileTraceSource b(large.path(), trace::FileMode::Buffered);
    EXPECT_TRUE(sameRecords(drain(a), drain(b)));
}

TEST_F(StreamSourceTest, MidChunkCorruptionIsRejectedWithByteOffset)
{
    TempTraceFile file("crc");
    {
        trace::ChunkedTraceWriter writer(file.path(), "t", 500);
        auto s = trace::makeZipfSource(smallZipf(60000));
        writer.appendAll(*s);
        writer.finish();
    }
    // First chunk's payload starts at v3PayloadStart(1) + the 16-byte
    // chunk header; flip one byte inside the first record.
    const auto payload =
        trace::wire::v3PayloadStart(1) + trace::wire::kChunkHeaderBytes;
    {
        std::fstream f(file.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(payload + 5));
        char byte = 0;
        f.seekg(static_cast<std::streamoff>(payload + 5));
        f.get(byte);
        byte = static_cast<char>(byte ^ 0x10);
        f.seekp(static_cast<std::streamoff>(payload + 5));
        f.put(byte);
    }
    trace::FileTraceSource s(file.path(), trace::FileMode::Buffered);
    try {
        drain(s);
        FAIL() << "corrupted chunk was accepted";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptInput);
        EXPECT_NE(std::string(e.what()).find("CRC mismatch"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(StreamSourceTest, CorruptionIsLocalizedToItsChunk)
{
    TempTraceFile file("crc_local");
    {
        trace::ChunkedTraceWriter writer(file.path(), "t", 200);
        auto s = trace::makeZipfSource(smallZipf(60000));
        writer.appendAll(*s);
        writer.finish();
    }
    // Flip a byte ~80% into the file: every chunk before it still
    // decodes; the stream fails only when the damaged chunk is
    // reached.
    std::uint64_t size = 0;
    {
        std::ifstream f(file.path(), std::ios::binary);
        f.seekg(0, std::ios::end);
        size = static_cast<std::uint64_t>(f.tellg());
    }
    {
        std::fstream f(file.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        const auto pos = static_cast<std::streamoff>(size * 4 / 5);
        f.seekg(pos);
        char byte = 0;
        f.get(byte);
        byte = static_cast<char>(byte ^ 0x01);
        f.seekp(pos);
        f.put(byte);
    }
    trace::FileTraceSource s(file.path(), trace::FileMode::Buffered);
    std::size_t good_chunks = 0;
    try {
        for (;;) {
            const auto chunk = s.nextChunk();
            ASSERT_FALSE(chunk.empty())
                << "corruption was never detected";
            ++good_chunks;
        }
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptInput);
    }
    EXPECT_GT(good_chunks, 3u);
}

TEST_F(StreamSourceTest, TruncatedFileIsRejected)
{
    TempTraceFile file("trunc");
    {
        trace::ChunkedTraceWriter writer(file.path(), "t", 500);
        auto s = trace::makeZipfSource(smallZipf(60000));
        writer.appendAll(*s);
        writer.finish();
    }
    std::string bytes;
    {
        std::ifstream f(file.path(), std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
    }
    {
        std::ofstream f(file.path(),
                        std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() - 9));
    }
    // Depending on where the cut lands the header validation (chunks
    // no longer fit the payload) or the chunk reader itself objects —
    // either way the answer is a typed error, never silent truncation.
    EXPECT_THROW(
        {
            trace::FileTraceSource s(file.path(),
                                     trace::FileMode::Buffered);
            drain(s);
        },
        FatalError);
}

TEST_F(StreamSourceTest, WriterFinishFaultLeavesNoTmpAndOldFileIntact)
{
    TempTraceFile file("atomic");
    const std::string sentinel = "previous contents";
    {
        std::ofstream f(file.path(), std::ios::binary);
        f << sentinel;
    }
    const std::string tmp =
        file.path() + ".tmp." + std::to_string(::getpid());
    {
        fault::Scoped f("stream.write.finish", fault::Spec{});
        trace::ChunkedTraceWriter writer(file.path(), "t", 500);
        auto s = trace::makeZipfSource(smallZipf(30000));
        writer.appendAll(*s);
        EXPECT_THROW(writer.finish(), FatalError);
    }
    EXPECT_FALSE(std::ifstream(tmp).good())
        << "tmp file survived a failed finish";
    std::ifstream f(file.path(), std::ios::binary);
    const std::string contents{std::istreambuf_iterator<char>(f),
                               std::istreambuf_iterator<char>()};
    EXPECT_EQ(contents, sentinel);
}

TEST_F(StreamSourceTest, AbandonedWriterRemovesItsTmp)
{
    TempTraceFile file("abandon");
    const std::string tmp =
        file.path() + ".tmp." + std::to_string(::getpid());
    {
        trace::ChunkedTraceWriter writer(file.path(), "t", 500);
        auto s = trace::makeZipfSource(smallZipf(30000));
        writer.appendAll(*s);
        // destroyed without finish()
    }
    EXPECT_FALSE(std::ifstream(tmp).good());
    EXPECT_FALSE(std::ifstream(file.path()).good());
}

// ---------------------------------------------------------------------
// Decode-ahead

TEST_F(StreamSourceTest, DecodeAheadDeliversTheSameStream)
{
    TempTraceFile file("da");
    const auto spec = trace::TraceSpec::zipf(smallZipf());
    {
        trace::ChunkedTraceWriter writer(file.path(),
                                         spec.displayName(), 1000);
        auto s = spec.open();
        writer.appendAll(*s);
        writer.finish();
    }
    const auto reference = drain(*spec.open());
    trace::DecodeAheadSource da(
        std::make_unique<trace::FileTraceSource>(
            file.path(), trace::FileMode::Buffered),
        2);
    EXPECT_EQ(da.name(), spec.displayName());
    EXPECT_EQ(da.instructions(), spec.instructions());
    EXPECT_TRUE(sameRecords(reference, drain(da)));
    EXPECT_GE(da.stats().maxQueueDepth, 1u);

    da.reset();
    EXPECT_TRUE(sameRecords(reference, drain(da)));
}

TEST_F(StreamSourceTest, DecodeAheadFaultSurfacesAtTheFailingChunk)
{
    TempTraceFile file("da_fault");
    {
        trace::ChunkedTraceWriter writer(file.path(), "t", 200);
        auto s = trace::makeZipfSource(smallZipf(100000));
        writer.appendAll(*s);
        writer.finish();
    }
    fault::Spec spec;
    spec.firstHit = 3; // chunks 1 and 2 decode, chunk 3 fails
    fault::Scoped f("stream.read", spec);
    trace::DecodeAheadSource da(
        std::make_unique<trace::FileTraceSource>(
            file.path(), trace::FileMode::Buffered),
        2);
    std::size_t delivered = 0;
    try {
        for (;;) {
            const auto chunk = da.nextChunk();
            ASSERT_FALSE(chunk.empty()) << "fault never surfaced";
            ++delivered;
        }
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
    }
    // The error arrives exactly where the failing chunk would have
    // been served, after every good chunk queued before it.
    EXPECT_EQ(delivered, 2u);
}

TEST_F(StreamSourceTest, DecodeAheadAbandonedMidStreamShutsDownCleanly)
{
    auto p = smallZipf(400000);
    p.chunkRecords = 64; // many chunks, worker far ahead of consumer
    trace::DecodeAheadSource da(trace::makeZipfSource(p), 4);
    (void)da.nextChunk();
    (void)da.nextChunk();
    // destructor must join the worker without draining the stream
}

// ---------------------------------------------------------------------
// Generator families

TEST_F(StreamSourceTest, ZipfTopRanksDrawTheirAnalyticShare)
{
    const std::uint64_t keys = 100000;
    const trace::ZipfDistribution dist(keys, 0.99);
    const double analytic = dist.topShare(keys / 100);
    EXPECT_GT(analytic, 0.4);
    EXPECT_LT(analytic, 0.9);

    Rng rng(7);
    const std::uint64_t draws = 200000;
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < draws; ++i)
        if (dist.sample(rng) < keys / 100)
            ++hits;
    const double empirical =
        static_cast<double>(hits) / static_cast<double>(draws);
    EXPECT_NEAR(empirical, analytic, 0.02);
}

TEST_F(StreamSourceTest, ZipfStreamConcentratesOnItsHotKeys)
{
    // The trace-level check: the top 1% of observed addresses must
    // carry roughly the analytic share (rank->key scattering permutes
    // identities, not popularity mass).
    trace::ZipfParams p;
    p.instructions = 400000;
    p.keys = 4096;
    const trace::ZipfDistribution dist(p.keys, p.theta);
    auto s = trace::makeZipfSource(p);
    std::unordered_map<Addr, std::uint64_t> counts;
    std::uint64_t total = 0;
    for (const auto& r : drain(*s)) {
        if (!r.isMem())
            continue;
        ++counts[r.addr()];
        ++total;
    }
    ASSERT_GT(total, 10000u);
    std::vector<std::uint64_t> freqs;
    freqs.reserve(counts.size());
    for (const auto& [addr, n] : counts)
        freqs.push_back(n);
    std::sort(freqs.begin(), freqs.end(), std::greater<>());
    const std::size_t top = p.keys / 100;
    std::uint64_t topHits = 0;
    for (std::size_t i = 0; i < top && i < freqs.size(); ++i)
        topHits += freqs[i];
    const double share =
        static_cast<double>(topHits) / static_cast<double>(total);
    EXPECT_NEAR(share, dist.topShare(top), 0.05);
}

TEST_F(StreamSourceTest, PhaseMixAlternatesBetweenChildStreams)
{
    trace::ZipfParams zp = smallZipf(400000);
    trace::BlockIoParams bp;
    bp.instructions = 400000;
    std::vector<trace::TraceSpec> kids;
    kids.push_back(trace::TraceSpec::zipf(zp));
    kids.push_back(trace::TraceSpec::blockIo(bp));
    const auto spec = trace::TraceSpec::phaseMix(
        "mix", 400000, 50000, std::move(kids));
    auto s = spec.open();
    // The two families use disjoint code regions, so PCs show which
    // child produced each record; both must appear.
    bool saw_zipf = false, saw_blkio = false;
    for (const auto& r : drain(*s)) {
        if (!r.isMem())
            continue;
        (r.pc() < 0x4100000 ? saw_zipf : saw_blkio) = true;
    }
    EXPECT_TRUE(saw_zipf);
    EXPECT_TRUE(saw_blkio);
}

// ---------------------------------------------------------------------
// TraceSpec

TEST_F(StreamSourceTest, SpecIdentityMatchesTheOpenedSource)
{
    TempTraceFile file("spec_id");
    {
        trace::ChunkedTraceWriter writer(file.path(), "filetrace",
                                         500);
        auto s = trace::makeZipfSource(smallZipf(50000));
        writer.appendAll(*s);
        writer.finish();
    }
    const auto suite_trace = trace::makeSuiteTrace(0, 40000);
    const std::vector<trace::TraceSpec> specs = {
        trace::TraceSpec::borrowed(suite_trace),
        trace::TraceSpec::suite(0, 40000),
        trace::TraceSpec::file(file.path()),
        trace::TraceSpec::zipf(smallZipf(50000)),
    };
    for (const auto& spec : specs) {
        const auto src = spec.open();
        EXPECT_EQ(src->name(), spec.displayName());
        if (spec.kind() == trace::TraceSpec::Kind::Suite ||
            spec.kind() == trace::TraceSpec::Kind::HeldOut) {
            // The legacy simpoint generators land within one loop
            // iteration of the target, not exactly on it.
            EXPECT_NEAR(
                static_cast<double>(src->instructions()),
                static_cast<double>(spec.instructions()), 64.0);
        } else {
            EXPECT_EQ(src->instructions(), spec.instructions());
        }
    }
}

TEST_F(StreamSourceTest, WithInstructionsRegeneratesNotTruncates)
{
    const auto full = trace::TraceSpec::zipf(smallZipf(200000));
    const auto rung = full.withInstructions(50000);
    EXPECT_EQ(rung.instructions(), 50000u);
    EXPECT_EQ(sumInsts(drain(*rung.open())), 50000u);

    TempTraceFile file("resize");
    {
        trace::ChunkedTraceWriter writer(file.path(), "t", 500);
        auto s = trace::makeZipfSource(smallZipf(30000));
        writer.appendAll(*s);
        writer.finish();
    }
    EXPECT_THROW(trace::TraceSpec::file(file.path())
                     .withInstructions(1000),
                 FatalError);
}

TEST_F(StreamSourceTest, PhaseMixRejectsBorrowedChildren)
{
    const auto t = trace::makeSuiteTrace(0, 10000);
    std::vector<trace::TraceSpec> kids;
    kids.push_back(trace::TraceSpec::borrowed(t));
    EXPECT_THROW(trace::TraceSpec::phaseMix("bad", 10000, 1000,
                                            std::move(kids)),
                 FatalError);
}

TEST_F(StreamSourceTest, OpenFaultSitesSurfaceTypedErrors)
{
    TempTraceFile file("open_fault");
    {
        trace::ChunkedTraceWriter writer(file.path(), "t", 500);
        auto s = trace::makeZipfSource(smallZipf(30000));
        writer.appendAll(*s);
        writer.finish();
    }
    {
        fault::Scoped f("stream.open", fault::Spec{});
        EXPECT_THROW(trace::FileTraceSource(file.path(),
                                            trace::FileMode::Buffered),
                     FatalError);
    }
    {
        fault::Scoped f("stream.mmap", fault::Spec{});
        EXPECT_THROW(trace::FileTraceSource(file.path(),
                                            trace::FileMode::Mmap),
                     FatalError);
    }
    {
        fault::Spec spec;
        spec.kind = fault::Kind::AllocFail;
        fault::Scoped f("stream.read.alloc", spec);
        trace::FileTraceSource s(file.path(),
                                 trace::FileMode::Buffered);
        try {
            drain(s);
            FAIL() << "alloc fault never surfaced";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Resource);
        }
    }
}

} // namespace
