/**
 * @file
 * Tests for the recency-based baseline policies: LRU ranks, SRRIP,
 * DRRIP set-dueling, tree-PLRU positional placement, and MDPP.
 */

#include <gtest/gtest.h>

#include "cache/policy_cache.hpp"
#include "policy/lru.hpp"
#include "policy/srrip.hpp"
#include "policy/tree_plru.hpp"

namespace mrp::policy {
namespace {

cache::AccessInfo
demand(Addr a)
{
    cache::AccessInfo info;
    info.pc = 0x400000;
    info.addr = a;
    info.type = cache::AccessType::Load;
    return info;
}

TEST(LruPolicyTest, RanksFollowTouchOrder)
{
    const cache::CacheGeometry g(1024, 4); // 4 sets x 4 ways
    LruPolicy lru(g);
    const cache::AccessInfo info = demand(0);
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.onFill(info, 0, w);
    // Way 3 filled last: rank 0 (MRU); way 0 rank 3 (LRU).
    EXPECT_EQ(lru.rankOf(0, 3), 0u);
    EXPECT_EQ(lru.rankOf(0, 0), 3u);
    EXPECT_EQ(lru.victimWay(info, 0), 0u);
    lru.onHit(info, 0, 0);
    EXPECT_EQ(lru.rankOf(0, 0), 0u);
    EXPECT_EQ(lru.victimWay(info, 0), 1u);
}

TEST(SrripTest, InsertionAndPromotion)
{
    const cache::CacheGeometry g(1024, 4);
    SrripPolicy rrip(g);
    const cache::AccessInfo info = demand(0);
    EXPECT_EQ(rrip.maxRrpv(), 3u);
    rrip.onFill(info, 0, 1);
    EXPECT_EQ(rrip.rrpvOf(0, 1), 2u); // long re-reference insertion
    rrip.onHit(info, 0, 1);
    EXPECT_EQ(rrip.rrpvOf(0, 1), 0u); // near-immediate after hit
}

TEST(SrripTest, VictimAgesAndPicksOldest)
{
    const cache::CacheGeometry g(1024, 4);
    SrripPolicy rrip(g);
    const cache::AccessInfo info = demand(0);
    rrip.setRrpv(0, 0, 1);
    rrip.setRrpv(0, 1, 2);
    rrip.setRrpv(0, 2, 0);
    rrip.setRrpv(0, 3, 2);
    // Oldest (first max after aging) must be way 1; all aged by 1.
    EXPECT_EQ(rrip.victimWay(info, 0), 1u);
    EXPECT_EQ(rrip.rrpvOf(0, 0), 2u);
    EXPECT_EQ(rrip.rrpvOf(0, 2), 1u);
}

TEST(SrripTest, ScanResistanceBeatsLruOnMixedSet)
{
    // A small direct test: blocks inserted at RRPV 2 can't displace a
    // hot block that keeps getting promoted to 0 until they age.
    const cache::CacheGeometry g(256, 4); // 1 set
    cache::PolicyCache c(256, 4, std::make_unique<SrripPolicy>(g), 1);
    const Addr hot = 0;
    c.access(demand(hot));
    c.access(demand(hot));
    std::uint64_t hits = 0;
    for (std::uint64_t i = 1; i <= 64; ++i) {
        c.access(demand(i * 256)); // scan through the set
        if (c.access(demand(hot)).hit)
            ++hits;
    }
    EXPECT_GT(hits, 60u); // hot block survives the scan
}

TEST(DrripTest, FollowersTrackLeaderMisses)
{
    const cache::CacheGeometry g(64 * 1024, 4); // 256 sets
    DrripPolicy drrip(g);
    // Behavioural smoke: dueling machinery runs without fault and
    // fills/hits keep rrpv state consistent.
    for (std::uint64_t i = 0; i < 4096; ++i) {
        const Addr a = (i % 512) * 64;
        cache::AccessInfo info = demand(a);
        const std::uint32_t set = g.setIndex(a);
        drrip.onMiss(info, set);
        drrip.onFill(info, set, static_cast<std::uint32_t>(i % 4));
    }
    SUCCEED();
}

// ---------------------------------------------------------------------
// Tree PLRU / MDPP

TEST(TreePlruTest, VictimStartsAtWayZero)
{
    TreePlru t(1, 16);
    EXPECT_EQ(t.victim(0), 0u); // all bits zero -> leftmost leaf
}

TEST(TreePlruTest, PositionRoundTripsThroughSetPosition)
{
    TreePlru t(1, 16);
    for (std::uint32_t way = 0; way < 16; ++way) {
        for (std::uint32_t pos = 0; pos < 16; ++pos) {
            t.setPosition(0, way, pos);
            EXPECT_EQ(t.position(0, way), pos)
                << "way " << way << " pos " << pos;
        }
    }
}

TEST(TreePlruTest, PositionFifteenIsTheVictim)
{
    TreePlru t(1, 16);
    for (std::uint32_t way = 0; way < 16; ++way) {
        t.setPosition(0, way, 15);
        EXPECT_EQ(t.victim(0), way);
    }
}

TEST(TreePlruTest, MruInsertionProtects)
{
    TreePlru t(1, 8);
    t.setPosition(0, 3, 0);
    EXPECT_NE(t.victim(0), 3u);
    EXPECT_EQ(t.position(0, 3), 0u);
}

TEST(TreePlruTest, SetsAreIndependent)
{
    TreePlru t(4, 8);
    t.setPosition(1, 5, 7);
    EXPECT_EQ(t.victim(1), 5u);
    EXPECT_EQ(t.victim(0), 0u);
    EXPECT_EQ(t.victim(2), 0u);
}

TEST(TreePlruTest, RejectsNonPowerOfTwoWays)
{
    EXPECT_THROW(TreePlru(1, 12), FatalError);
    EXPECT_THROW(TreePlru(1, 1), FatalError);
}

/** Property: repeated MRU promotion cycles every way to the victim. */
TEST(TreePlruTest, PromotionRotatesVictims)
{
    TreePlru t(1, 8);
    std::set<std::uint32_t> victims;
    for (int i = 0; i < 64; ++i) {
        const std::uint32_t v = t.victim(0);
        victims.insert(v);
        t.setPosition(0, v, 0); // "fill" the victim at MRU
    }
    EXPECT_EQ(victims.size(), 8u); // true pseudo-LRU rotation
}

TEST(MdppTest, InsertionLandsAtConfiguredPosition)
{
    const cache::CacheGeometry g(4096, 16); // 4 sets
    MdppConfig cfg;
    cfg.insertPos = 11;
    MdppPolicy mdpp(g, cfg);
    const cache::AccessInfo info = demand(0);
    mdpp.onFill(info, 2, 6);
    EXPECT_EQ(mdpp.tree().position(2, 6), 11u);
    mdpp.onHit(info, 2, 6);
    EXPECT_EQ(mdpp.tree().position(2, 6), 0u);
}

TEST(MdppTest, WritebackHitsDoNotPromote)
{
    const cache::CacheGeometry g(4096, 16);
    MdppPolicy mdpp(g);
    cache::AccessInfo wb = demand(0);
    wb.type = cache::AccessType::Writeback;
    mdpp.onFill(demand(0), 0, 3);
    const auto pos = mdpp.tree().position(0, 3);
    mdpp.onHit(wb, 0, 3);
    EXPECT_EQ(mdpp.tree().position(0, 3), pos);
}

TEST(MdppTest, RejectsOutOfRangePositions)
{
    const cache::CacheGeometry g(4096, 16);
    MdppConfig cfg;
    cfg.insertPos = 16;
    EXPECT_THROW(MdppPolicy(g, cfg), FatalError);
}

} // namespace
} // namespace mrp::policy
