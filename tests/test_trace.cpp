/**
 * @file
 * Tests for the trace substrate: record packing, the builder, the
 * workload registry, and mix generation.
 */

#include <gtest/gtest.h>

#include <set>

#include "trace/builder.hpp"
#include "trace/mix.hpp"
#include "trace/record.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace mrp::trace {
namespace {

TEST(RecordTest, PacksAndUnpacksMemOps)
{
    const Addr a = 0x0000123456789ABCull;
    const Record r = Record::memOp(0x400100, Op::Load, a, true);
    EXPECT_EQ(r.pc(), 0x400100u);
    EXPECT_EQ(r.op(), Op::Load);
    EXPECT_EQ(r.addr(), a);
    EXPECT_TRUE(r.dependsOnPrevLoad());
    EXPECT_TRUE(r.isMem());
    EXPECT_EQ(r.count(), 1u);

    const Record s = Record::memOp(0x400104, Op::Store, 0x40, false);
    EXPECT_EQ(s.op(), Op::Store);
    EXPECT_FALSE(s.dependsOnPrevLoad());
}

TEST(RecordTest, NonMemCarriesCount)
{
    const Record r = Record::nonMem(0x400200, 17);
    EXPECT_FALSE(r.isMem());
    EXPECT_EQ(r.count(), 17u);
    EXPECT_THROW(r.addr(), PanicError);
    EXPECT_THROW(Record::nonMem(0x400200, 0), PanicError);
}

TEST(RecordTest, RecordIs16Bytes)
{
    EXPECT_EQ(sizeof(Record), 16u);
}

TEST(BuilderTest, CountsInstructions)
{
    TraceBuilder b("t", 0x400000, 1);
    b.load(1, 0x1000);
    b.pad(10);
    b.store(2, 0x2000);
    EXPECT_EQ(b.instructions(), 12u);
    const Trace t = std::move(b).build();
    EXPECT_EQ(t.instructions(), 12u);
    EXPECT_EQ(t.memOps(), 2u);
    EXPECT_EQ(t.records().size(), 3u);
}

TEST(BuilderTest, SitesAreStablePcs)
{
    TraceBuilder b("t", 0x400000, 1);
    EXPECT_EQ(b.site(0), 0x400000u);
    EXPECT_EQ(b.site(3), 0x40000Cu);
}

TEST(WorkloadsTest, SuiteHas33Benchmarks)
{
    EXPECT_EQ(suiteSize(), 33u); // the paper's benchmark count
    EXPECT_EQ(heldOutSize(), 15u);
}

TEST(WorkloadsTest, NamesAreUnique)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < suiteSize(); ++i)
        names.insert(suiteName(i));
    for (unsigned i = 0; i < heldOutSize(); ++i)
        names.insert(heldOutName(i));
    EXPECT_EQ(names.size(), suiteSize() + heldOutSize());
}

TEST(WorkloadsTest, GenerationIsDeterministic)
{
    const Trace a = makeSuiteTrace(7, 20000);
    const Trace b = makeSuiteTrace(7, 20000);
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        EXPECT_EQ(a.records()[i].pc(), b.records()[i].pc());
        EXPECT_EQ(a.records()[i].op(), b.records()[i].op());
    }
}

TEST(WorkloadsTest, RejectsOutOfRangeIndices)
{
    EXPECT_THROW(makeSuiteTrace(suiteSize(), 1000), FatalError);
    EXPECT_THROW(makeHeldOutTrace(heldOutSize(), 1000), FatalError);
    EXPECT_THROW(suiteName(suiteSize()), FatalError);
}

/** Property sweep: every benchmark generates a sane trace. */
class EverySuiteBenchmark : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EverySuiteBenchmark, GeneratesCloseToTargetLength)
{
    const InstCount target = 30000;
    const Trace t = makeSuiteTrace(GetParam(), target);
    EXPECT_GE(t.instructions(), target);
    EXPECT_LE(t.instructions(), target + 2000);
    EXPECT_GT(t.memOps(), 0u);
}

TEST_P(EverySuiteBenchmark, AddressesStayInPrivateRegion)
{
    const unsigned idx = GetParam();
    const Trace t = makeSuiteTrace(idx, 20000);
    const Addr base = 0x100000000ull + idx * 0x40000000ull;
    for (const auto& r : t.records()) {
        if (!r.isMem())
            continue;
        EXPECT_GE(r.addr(), base);
        EXPECT_LT(r.addr(), base + 0x40000000ull);
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, EverySuiteBenchmark,
                         ::testing::Range(0u, 33u),
                         [](const auto& info) {
                             std::string n = suiteName(info.param) + "_" +
                                             std::to_string(info.param);
                             for (char& c : n)
                                 if (c == '.')
                                     c = '_';
                             return n;
                         });

class EveryHeldOutBenchmark : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EveryHeldOutBenchmark, Generates)
{
    const Trace t = makeHeldOutTrace(GetParam(), 20000);
    EXPECT_GE(t.instructions(), 20000u);
    EXPECT_GT(t.memOps(), 0u);
}

INSTANTIATE_TEST_SUITE_P(HeldOut, EveryHeldOutBenchmark,
                         ::testing::Range(0u, 15u));

TEST(MixTest, MixesDrawWithoutReplacement)
{
    const auto mixes = makeMixes(200);
    EXPECT_EQ(mixes.size(), 200u);
    for (const auto& m : mixes) {
        std::set<unsigned> uniq(m.benchmarks.begin(),
                                m.benchmarks.end());
        EXPECT_EQ(uniq.size(), 4u);
        for (const unsigned b : m.benchmarks)
            EXPECT_LT(b, suiteSize());
    }
}

TEST(MixTest, Deterministic)
{
    const auto a = makeMixes(50, 99);
    const auto b = makeMixes(50, 99);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].benchmarks, b[i].benchmarks);
}

TEST(MixTest, SplitIsDisjointPrefix)
{
    const auto split = makeMixSplit(10, 30);
    EXPECT_EQ(split.train.size(), 10u);
    EXPECT_EQ(split.test.size(), 30u);
    const auto all = makeMixes(40);
    EXPECT_EQ(split.train[0].benchmarks, all[0].benchmarks);
    EXPECT_EQ(split.test[0].benchmarks, all[10].benchmarks);
}

TEST(MixTest, NameJoinsBenchmarks)
{
    Mix m{{0, 1, 2, 3}};
    const auto n = m.name();
    EXPECT_NE(n.find(suiteName(0)), std::string::npos);
    EXPECT_NE(n.find('+'), std::string::npos);
}

TEST(MixTest, MixesCoverTheSuite)
{
    // With hundreds of mixes, every benchmark should appear somewhere.
    const auto mixes = makeMixes(300);
    std::set<unsigned> seen;
    for (const auto& m : mixes)
        for (const unsigned b : m.benchmarks)
            seen.insert(b);
    EXPECT_EQ(seen.size(), suiteSize());
}

} // namespace
} // namespace mrp::trace
