/**
 * @file
 * Semantic property tests of the synthetic workload generators: the
 * reuse-correlation structure each family is documented to exhibit
 * (DESIGN.md §4) actually holds in the emitted traces.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/generators.hpp"
#include "trace/workloads.hpp"

namespace mrp::trace {
namespace {

GenParams
params(InstCount insts)
{
    GenParams p;
    p.name = "t";
    p.instructions = insts;
    p.seed = 42;
    p.dataBase = 0x100000000ull;
    p.codeBase = 0x400000;
    return p;
}

/** Collect per-block touch counts of a trace. */
std::map<Addr, unsigned>
touchCounts(const Trace& t)
{
    std::map<Addr, unsigned> counts;
    for (const auto& r : t.records())
        if (r.isMem())
            ++counts[blockAddr(r.addr())];
    return counts;
}

TEST(GeneratorSemantics, CyclicThrashHasUniformReuseDistance)
{
    const Addr ws = 1 * 1024 * 1024;
    const auto t = makeCyclicThrash(params(400000), ws, 3);
    // Every block address appears, and the gap between consecutive
    // appearances of any block equals the working-set size in blocks.
    std::map<Addr, std::vector<std::size_t>> positions;
    std::size_t idx = 0;
    for (const auto& r : t.records()) {
        if (!r.isMem())
            continue;
        positions[blockAddr(r.addr())].push_back(idx);
        ++idx;
    }
    const Addr nblocks = ws / kBlockBytes;
    EXPECT_EQ(positions.size(), nblocks);
    for (const auto& [blk, pos] : positions)
        for (std::size_t i = 1; i < pos.size(); ++i)
            EXPECT_EQ(pos[i] - pos[i - 1], nblocks);
}

TEST(GeneratorSemantics, StreamNeverRevisitsWithinAPass)
{
    const auto t = makeStream(params(100000), 64 * 1024 * 1024, 4);
    const auto counts = touchCounts(t);
    // Working set far exceeds the trace: every block touched at most
    // twice (load + the occasional paired store).
    for (const auto& [blk, n] : counts)
        EXPECT_LE(n, 2u);
}

TEST(GeneratorSemantics, PointerChaseIsFullyDependent)
{
    const auto t = makePointerChase(params(60000), 2 * 1024 * 1024, 3);
    unsigned dependent = 0, loads = 0;
    for (const auto& r : t.records()) {
        if (!r.isMem())
            continue;
        ++loads;
        if (r.dependsOnPrevLoad())
            ++dependent;
    }
    // Every chase hop (half the loads; the rest is the aux structure)
    // is data-dependent.
    EXPECT_GT(dependent, loads / 3);
}

TEST(GeneratorSemantics, PointerChaseVisitsWholeCycle)
{
    const Addr ws = 256 * 1024; // 4096 blocks
    const auto t = makePointerChase(params(120000), ws, 0);
    std::set<Addr> chased;
    for (const auto& r : t.records())
        if (r.isMem() && r.dependsOnPrevLoad())
            chased.insert(blockAddr(r.addr()));
    // Sattolo's cycle: the chase reaches every block of the region.
    EXPECT_EQ(chased.size(), ws / kBlockBytes);
}

TEST(GeneratorSemantics, FieldAccessSeparatesOffsets)
{
    const auto t =
        makeFieldAccess(params(100000), 4 * 1024 * 1024, 512 * 1024,
                        0.5, 2);
    unsigned header = 0, payload = 0;
    for (const auto& r : t.records()) {
        if (!r.isMem())
            continue;
        if (blockOffset(r.addr()) == 0)
            ++header;
        else
            ++payload;
    }
    // Both populations are present in force.
    EXPECT_GT(header, 10000u);
    EXPECT_GT(payload, 10000u);
}

TEST(GeneratorSemantics, SamePcMixedUsesOneLoadSite)
{
    const auto t = makeSamePcMixed(params(80000), 512 * 1024,
                                   8 * 1024 * 1024, 0.5, 3);
    std::set<Pc> pcs;
    for (const auto& r : t.records())
        if (r.isMem())
            pcs.insert(r.pc());
    EXPECT_EQ(pcs.size(), 1u); // PC carries no signal by design
}

TEST(GeneratorSemantics, ProducerConsumerWritesBeforeReads)
{
    const auto t =
        makeProducerConsumer(params(120000), 64 * 1024, 4, 1);
    // Every consumed (loaded) block must have been stored earlier.
    std::set<Addr> written;
    for (const auto& r : t.records()) {
        if (!r.isMem())
            continue;
        if (r.op() == Op::Store)
            written.insert(blockAddr(r.addr()));
        else
            EXPECT_TRUE(written.count(blockAddr(r.addr())))
                << "read before write at block "
                << blockAddr(r.addr());
    }
}

TEST(GeneratorSemantics, HotColdSetsUsesDoubleStrideStream)
{
    const auto t = makeHotColdSets(params(60000), 256 * 1024,
                                   4 * 1024 * 1024, 2);
    // The streaming region blocks all have even block indices
    // relative to the stream base (128-byte stride).
    std::set<Addr> stream_blocks;
    for (const auto& r : t.records())
        if (r.isMem() && blockAddr(r.addr()) > (0x100000000ull >> 6) * 4)
            stream_blocks.insert(blockAddr(r.addr()));
    unsigned odd = 0;
    for (const Addr b : stream_blocks)
        odd += b & 1;
    // All stream blocks share parity (hot region is far below them).
    EXPECT_TRUE(odd == 0 || odd == stream_blocks.size());
}

TEST(GeneratorSemantics, PhasedAlternatesRegions)
{
    const auto t = makePhased(params(200000), 256 * 1024,
                              1024 * 1024, 20000, 2);
    // Identify phase changes by code site: site 1 = friendly loop,
    // site 2 = thrash loop; both must appear repeatedly.
    unsigned transitions = 0;
    Pc last_pc = 0;
    for (const auto& r : t.records()) {
        if (!r.isMem())
            continue;
        if (last_pc != 0 && r.pc() != last_pc)
            ++transitions;
        last_pc = r.pc();
    }
    EXPECT_GE(transitions, 8u); // several phase flips in the trace
}

TEST(GeneratorSemantics, BurstSecondTouchFollowsGap)
{
    const auto t = makeBurst(params(300000), 2 * 1024 * 1024,
                             128 * 1024, 4, 1);
    // Blocks of the live stream (offset != 0, below the dead region)
    // are touched exactly twice, far apart.
    std::map<Addr, std::vector<std::size_t>> touches;
    std::size_t idx = 0;
    for (const auto& r : t.records()) {
        if (!r.isMem())
            continue;
        touches[blockAddr(r.addr())].push_back(idx);
        ++idx;
    }
    unsigned two_touch_far = 0;
    for (const auto& [blk, pos] : touches)
        if (pos.size() == 2 && pos[1] - pos[0] > 1000)
            ++two_touch_far;
    EXPECT_GT(two_touch_far, 500u);
}

} // namespace
} // namespace mrp::trace
