/**
 * @file
 * Tests for binary trace serialization: v1/v2 round trips, the CRC-32
 * footer, and a fuzz-style corrupt-input suite (truncation at header
 * boundaries, bit flips, oversized length fields) driven through the
 * fault injector. Every rejection must be a typed FatalError — no
 * crash, no unbounded allocation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <unistd.h>

#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::trace {
namespace {

void
expectEqualTraces(const Trace& a, const Trace& b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.instructions(), b.instructions());
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        EXPECT_EQ(a.records()[i].pc(), b.records()[i].pc());
        EXPECT_EQ(a.records()[i].op(), b.records()[i].op());
        EXPECT_EQ(a.records()[i].count(), b.records()[i].count());
        if (a.records()[i].isMem()) {
            EXPECT_EQ(a.records()[i].addr(), b.records()[i].addr());
            EXPECT_EQ(a.records()[i].dependsOnPrevLoad(),
                      b.records()[i].dependsOnPrevLoad());
        }
    }
}

TEST(TraceIoTest, RoundTripsThroughStream)
{
    const Trace original = makeSuiteTrace(22, 30000); // pointer chase
    std::stringstream ss;
    writeTrace(ss, original);
    const Trace loaded = readTrace(ss);
    expectEqualTraces(original, loaded);
}

TEST(TraceIoTest, RoundTripsThroughFile)
{
    const Trace original = makeSuiteTrace(9, 20000);
    const std::string path = "/tmp/mrp_trace_io_test.mrpt";
    saveTrace(path, original);
    const Trace loaded = loadTrace(path);
    expectEqualTraces(original, loaded);
    std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOPE and more bytes to be safe";
    EXPECT_THROW(readTrace(ss), FatalError);
}

TEST(TraceIoTest, RejectsTruncation)
{
    const Trace original = makeSuiteTrace(0, 5000);
    std::stringstream full;
    writeTrace(full, original);
    const std::string bytes = full.str();
    std::stringstream cut;
    cut << bytes.substr(0, bytes.size() / 2);
    EXPECT_THROW(readTrace(cut), FatalError);
}

TEST(TraceIoTest, RejectsCorruptInstructionCount)
{
    const Trace original = makeSuiteTrace(0, 5000);
    std::stringstream full;
    writeTrace(full, original);
    std::string bytes = full.str();
    bytes[8] ^= 0x5A; // flip bits in the instruction-count field
    std::stringstream bad;
    bad << bytes;
    EXPECT_THROW(readTrace(bad), FatalError);
}

TEST(TraceIoTest, MissingFile)
{
    EXPECT_THROW(loadTrace("/nonexistent/path/to.mrpt"), FatalError);
}

/** Serialized image of @p trace in @p format. */
std::string
bytesOf(const Trace& trace, TraceFormat format)
{
    std::stringstream ss;
    writeTrace(ss, trace, format);
    return ss.str();
}

/** Code of the FatalError readTrace raises on @p bytes; None if it
 * parses cleanly. */
ErrorCode
readCode(const std::string& bytes)
{
    std::stringstream ss;
    ss << bytes;
    try {
        readTrace(ss);
    } catch (const FatalError& e) {
        return e.code();
    }
    return ErrorCode::None;
}

TEST(TraceIoTest, V1RoundTripsWithoutFooter)
{
    const Trace original = makeSuiteTrace(3, 10000);
    const std::string v1 = bytesOf(original, TraceFormat::V1);
    const std::string v2 = bytesOf(original, TraceFormat::V2);
    EXPECT_EQ(v2.size(), v1.size() + 4); // v2 = v1 + CRC footer
    std::stringstream ss;
    ss << v1;
    expectEqualTraces(original, readTrace(ss));
}

TEST(TraceIoTest, RejectsTruncationAtEveryHeaderBoundary)
{
    const Trace original = makeSuiteTrace(0, 5000);
    const std::string bytes = bytesOf(original, TraceFormat::V2);
    const std::size_t name_end = 32 + original.name().size();
    // Every cut inside the header and name, a sample of cuts through
    // the record payload, and every cut through the CRC footer.
    std::vector<std::size_t> cuts;
    for (std::size_t c = 0; c <= name_end; ++c)
        cuts.push_back(c);
    for (std::size_t c = name_end; c < bytes.size();
         c += (bytes.size() - name_end) / 16 + 1)
        cuts.push_back(c);
    for (std::size_t back = 1; back <= 5; ++back)
        cuts.push_back(bytes.size() - back);
    for (const std::size_t cut : cuts) {
        const ErrorCode code = readCode(bytes.substr(0, cut));
        EXPECT_TRUE(code == ErrorCode::CorruptInput ||
                    code == ErrorCode::Io)
            << "cut at " << cut << " gave code "
            << errorCodeName(code);
    }
}

TEST(TraceIoTest, TruncationDiagnosticsReportOffsets)
{
    const Trace original = makeSuiteTrace(0, 5000);
    const std::string bytes = bytesOf(original, TraceFormat::V2);
    try {
        std::stringstream cut;
        cut << bytes.substr(0, 40 + original.name().size());
        readTrace(cut);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptInput);
        EXPECT_NE(std::string(e.what()).find("offset"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceIoTest, RejectsBitFlippedCrcFooter)
{
    const Trace original = makeSuiteTrace(1, 5000);
    std::string bytes = bytesOf(original, TraceFormat::V2);
    bytes[bytes.size() - 2] ^= 0x10;
    try {
        std::stringstream ss;
        ss << bytes;
        readTrace(ss);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptInput);
        EXPECT_NE(std::string(e.what()).find("CRC"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceIoTest, CrcCatchesPayloadBitFlips)
{
    const Trace original = makeSuiteTrace(1, 5000);
    std::string bytes = bytesOf(original, TraceFormat::V2);
    // Flip a bit in the middle of the record payload — a corruption
    // the v1 header checks could never see.
    bytes[bytes.size() / 2] ^= 0x04;
    EXPECT_EQ(readCode(bytes), ErrorCode::CorruptInput);
}

TEST(TraceIoTest, RejectsOversizedNameLength)
{
    const Trace original = makeSuiteTrace(0, 5000);
    std::string bytes = bytesOf(original, TraceFormat::V2);
    const std::uint32_t huge = 0xFFFFFFF0u;
    std::memcpy(&bytes[28], &huge, sizeof(huge));
    EXPECT_EQ(readCode(bytes), ErrorCode::CorruptInput);
}

TEST(TraceIoTest, RejectsOversizedRecordCountWithoutAllocating)
{
    const Trace original = makeSuiteTrace(0, 5000);
    for (const auto format : {TraceFormat::V1, TraceFormat::V2}) {
        std::string bytes = bytesOf(original, format);
        // A corrupt u64 record count claiming ~16 TiB of records must
        // be rejected from the stream bounds, not attempted.
        const std::uint64_t huge = 1ull << 40;
        std::memcpy(&bytes[16], &huge, sizeof(huge));
        EXPECT_EQ(readCode(bytes), ErrorCode::CorruptInput);
    }
}

TEST(TraceIoTest, RejectsPlausibleButWrongRecordCount)
{
    const Trace original = makeSuiteTrace(0, 5000);
    std::string bytes = bytesOf(original, TraceFormat::V2);
    std::uint64_t count = 0;
    std::memcpy(&count, &bytes[16], sizeof(count));
    count -= 1; // fewer records than present: CRC/alignment must catch
    std::memcpy(&bytes[16], &count, sizeof(count));
    EXPECT_EQ(readCode(bytes), ErrorCode::CorruptInput);
}

TEST(TraceIoTest, V3RoundTripsExplicitly)
{
    const Trace original = makeSuiteTrace(22, 30000); // pointer chase
    std::stringstream ss;
    writeTrace(ss, original, TraceFormat::V3);
    expectEqualTraces(original, readTrace(ss));
}

TEST(TraceIoTest, V3RejectsTrailingGarbage)
{
    // A chunked payload knows exactly where it ends; stray bytes after
    // the last chunk mean the file is not what its header claims.
    const Trace original = makeSuiteTrace(1, 5000);
    std::string bytes = bytesOf(original, TraceFormat::V3);
    bytes += "stray";
    EXPECT_EQ(readCode(bytes), ErrorCode::CorruptInput);
}

TEST(TraceIoTest, V3CrcCatchesPayloadBitFlips)
{
    const Trace original = makeSuiteTrace(1, 5000);
    std::string bytes = bytesOf(original, TraceFormat::V3);
    bytes[bytes.size() / 2] ^= 0x04;
    EXPECT_EQ(readCode(bytes), ErrorCode::CorruptInput);
}

TEST(TraceIoTest, V3RejectsHeaderBitFlips)
{
    // v3 seals the header with its own CRC, so even a flipped bit in
    // a field that still parses (the name) is caught up front.
    const Trace original = makeSuiteTrace(1, 5000);
    std::string bytes = bytesOf(original, TraceFormat::V3);
    bytes[34] ^= 0x01; // second byte of the trace name
    EXPECT_EQ(readCode(bytes), ErrorCode::CorruptInput);
}

class TraceIoFaultTest : public ::testing::Test
{
  protected:
    void TearDown() override { fault::disarmAll(); }
};

TEST_F(TraceIoFaultTest, InjectedWriteCorruptionIsAlwaysDetected)
{
    const Trace original = makeSuiteTrace(2, 5000);
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        fault::Spec spec;
        spec.kind = fault::Kind::CorruptByte;
        spec.seed = seed;
        fault::Scoped f("trace_io.write", spec);
        const std::string bytes = bytesOf(original, TraceFormat::V2);
        EXPECT_NE(readCode(bytes), ErrorCode::None)
            << "seed " << seed << " corrupted a byte the reader "
            << "failed to notice";
    }
}

TEST_F(TraceIoFaultTest, InjectedAllocFailureIsTypedResourceError)
{
    const Trace original = makeSuiteTrace(2, 5000);
    const std::string bytes = bytesOf(original, TraceFormat::V2);
    fault::Spec spec;
    spec.kind = fault::Kind::AllocFail;
    fault::Scoped f("trace_io.read.alloc", spec);
    EXPECT_EQ(readCode(bytes), ErrorCode::Resource);
}

TEST_F(TraceIoFaultTest, InjectedIoFailuresAreTypedIoErrors)
{
    const Trace original = makeSuiteTrace(2, 5000);
    const std::string path = "/tmp/mrp_trace_io_fault_test.mrpt";
    {
        fault::Scoped f("trace_io.save.open", fault::Spec{});
        try {
            saveTrace(path, original);
            FAIL() << "expected FatalError";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Io);
        }
    }
    {
        fault::Scoped f("trace_io.write.io", fault::Spec{});
        std::stringstream ss;
        try {
            writeTrace(ss, original);
            FAIL() << "expected FatalError";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Io);
        }
    }
    saveTrace(path, original);
    {
        fault::Scoped f("trace_io.load.open", fault::Spec{});
        try {
            loadTrace(path);
            FAIL() << "expected FatalError";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Io);
        }
    }
    {
        fault::Scoped f("trace_io.read", fault::Spec{});
        EXPECT_EQ(readCode(bytesOf(original, TraceFormat::V2)),
                  ErrorCode::Io);
    }
    expectEqualTraces(original, loadTrace(path)); // all disarmed
    std::remove(path.c_str());
}

TEST_F(TraceIoFaultTest, FailedSaveLeavesTargetAndNoTmpBehind)
{
    const Trace original = makeSuiteTrace(2, 5000);
    const std::string path = "/tmp/mrp_trace_io_atomic_test.mrpt";
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    saveTrace(path, original);
    {
        // Fault the serializer: the save must abort before the
        // filesystem is touched, leaving the previous file intact.
        fault::Scoped f("trace_io.write.io", fault::Spec{});
        EXPECT_THROW(saveTrace(path, original), FatalError);
    }
    EXPECT_EQ(std::remove(tmp.c_str()), -1)
        << "a tmp file survived a failed save";
    expectEqualTraces(original, loadTrace(path));

    // A successful save also cleans up after itself.
    saveTrace(path, original);
    EXPECT_EQ(std::remove(tmp.c_str()), -1);
    std::remove(path.c_str());
}

} // namespace
} // namespace mrp::trace
