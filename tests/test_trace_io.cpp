/**
 * @file
 * Tests for binary trace serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace_io.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace mrp::trace {
namespace {

void
expectEqualTraces(const Trace& a, const Trace& b)
{
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.instructions(), b.instructions());
    ASSERT_EQ(a.records().size(), b.records().size());
    for (std::size_t i = 0; i < a.records().size(); ++i) {
        EXPECT_EQ(a.records()[i].pc(), b.records()[i].pc());
        EXPECT_EQ(a.records()[i].op(), b.records()[i].op());
        EXPECT_EQ(a.records()[i].count(), b.records()[i].count());
        if (a.records()[i].isMem()) {
            EXPECT_EQ(a.records()[i].addr(), b.records()[i].addr());
            EXPECT_EQ(a.records()[i].dependsOnPrevLoad(),
                      b.records()[i].dependsOnPrevLoad());
        }
    }
}

TEST(TraceIoTest, RoundTripsThroughStream)
{
    const Trace original = makeSuiteTrace(22, 30000); // pointer chase
    std::stringstream ss;
    writeTrace(ss, original);
    const Trace loaded = readTrace(ss);
    expectEqualTraces(original, loaded);
}

TEST(TraceIoTest, RoundTripsThroughFile)
{
    const Trace original = makeSuiteTrace(9, 20000);
    const std::string path = "/tmp/mrp_trace_io_test.mrpt";
    saveTrace(path, original);
    const Trace loaded = loadTrace(path);
    expectEqualTraces(original, loaded);
    std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOPE and more bytes to be safe";
    EXPECT_THROW(readTrace(ss), FatalError);
}

TEST(TraceIoTest, RejectsTruncation)
{
    const Trace original = makeSuiteTrace(0, 5000);
    std::stringstream full;
    writeTrace(full, original);
    const std::string bytes = full.str();
    std::stringstream cut;
    cut << bytes.substr(0, bytes.size() / 2);
    EXPECT_THROW(readTrace(cut), FatalError);
}

TEST(TraceIoTest, RejectsCorruptInstructionCount)
{
    const Trace original = makeSuiteTrace(0, 5000);
    std::stringstream full;
    writeTrace(full, original);
    std::string bytes = full.str();
    bytes[8] ^= 0x5A; // flip bits in the instruction-count field
    std::stringstream bad;
    bad << bytes;
    EXPECT_THROW(readTrace(bad), FatalError);
}

TEST(TraceIoTest, MissingFile)
{
    EXPECT_THROW(loadTrace("/nonexistent/path/to.mrpt"), FatalError);
}

} // namespace
} // namespace mrp::trace
