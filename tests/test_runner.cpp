/**
 * @file
 * Tests for the parallel experiment runner: deterministic results and
 * byte-identical reports across worker counts, request-index result
 * ordering, multi-core and MIN dispatch, per-run error capture, and
 * the RunSet aggregation helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "sim/multi_core.hpp"
#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/spec.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace mrp::runner {
namespace {

/** Requests borrow the traces: callers keep them alive. */
std::vector<RunRequest>
smallBatch(std::initializer_list<const trace::Trace*> traces)
{
    std::vector<RunRequest> batch;
    for (const auto* tr : traces)
        for (const char* p : {"LRU", "SRRIP", "MPPPB"})
            batch.push_back(RunRequest::singleCore(
                trace::TraceSpec::borrowed(*tr),
                PolicySpec::byName(p)));
    return batch;
}

TEST(ExperimentRunnerTest, ResultsKeyedByRequestIndex)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const auto batch = smallBatch({&t0, &t1});
    const auto set = ExperimentRunner(2).run(batch);
    ASSERT_EQ(set.results.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(set.results[i].index, i);
        EXPECT_EQ(set.results[i].policy, batch[i].policy.name);
        EXPECT_EQ(set.results[i].benchmark,
                  batch[i].sources[0].displayName());
        EXPECT_TRUE(set.results[i].ok()) << set.results[i].error;
        EXPECT_GT(set.results[i].ipc, 0.0);
    }
}

TEST(ExperimentRunnerTest, DeterministicAcrossWorkerCounts)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const auto t2 = trace::makeSuiteTrace(14, 60000);
    const auto batch = smallBatch({&t0, &t1, &t2});

    const auto s1 = ExperimentRunner(1).run(batch);
    const auto s2 = ExperimentRunner(2).run(batch);
    const auto s8 = ExperimentRunner(8).run(batch);
    EXPECT_EQ(s1.jobs, 1u);
    EXPECT_EQ(s2.jobs, 2u);
    EXPECT_EQ(s8.jobs, 8u);

    // The default (timing-free) reports must be byte-identical.
    EXPECT_EQ(toJson(s1), toJson(s2));
    EXPECT_EQ(toJson(s1), toJson(s8));
    EXPECT_EQ(toCsv(s1), toCsv(s2));
    EXPECT_EQ(toCsv(s1), toCsv(s8));

    // And the underlying metrics bit-identical run by run.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        EXPECT_EQ(s1.results[i].ipc, s8.results[i].ipc) << i;
        EXPECT_EQ(s1.results[i].llcDemandMisses,
                  s8.results[i].llcDemandMisses)
            << i;
    }
}

TEST(ExperimentRunnerTest, MatchesDirectSingleCoreRun)
{
    const auto tr = trace::makeSuiteTrace(7, 60000);
    trace::MaterializedTraceSource src(tr);
    const auto direct =
        sim::runSingleCore(src, sim::makePolicyFactory("MPPPB"), {});
    const auto viaRunner = ExperimentRunner::runOne(
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("MPPPB")));
    EXPECT_EQ(viaRunner.ipc, direct.ipc);
    EXPECT_EQ(viaRunner.llcDemandMisses, direct.llcDemandMisses);
    EXPECT_EQ(viaRunner.instructions, direct.instructions);
    EXPECT_GT(viaRunner.wallSeconds, 0.0);
    EXPECT_GT(viaRunner.instsPerSecond, 0.0);
}

TEST(ExperimentRunnerTest, MinDispatchesToTwoPassOracle)
{
    const auto tr = trace::makeSuiteTrace(6, 120000);
    trace::MaterializedTraceSource src(tr);
    const auto direct = sim::runSingleCoreMin(src, {});
    const auto viaRunner = ExperimentRunner::runOne(
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("MIN")));
    EXPECT_EQ(viaRunner.policy, "MIN");
    EXPECT_EQ(viaRunner.ipc, direct.ipc);
    EXPECT_EQ(viaRunner.llcDemandMisses, direct.llcDemandMisses);
}

TEST(ExperimentRunnerTest, MultiCoreRequestMatchesDirectRun)
{
    const auto t0 = trace::makeSuiteTrace(0, 60000);
    const auto t1 = trace::makeSuiteTrace(4, 60000);
    const auto t2 = trace::makeSuiteTrace(7, 60000);
    const auto t3 = trace::makeSuiteTrace(25, 60000);
    // Sources are single-consumer: one per slot for the direct run.
    trace::MaterializedTraceSource s0(t0), s1(t1), s2(t2), s3(t3);
    const std::array<trace::TraceSource*, 4> mix = {&s0, &s1, &s2,
                                                    &s3};
    sim::MultiCoreConfig cfg;
    cfg.warmupInstructions = 40000;
    cfg.measureCycles = 50000;
    const auto direct =
        sim::runMultiCore(mix, sim::makePolicyFactory("LRU"), cfg);
    const std::array<trace::TraceSpec, 4> specs = {
        trace::TraceSpec::borrowed(t0), trace::TraceSpec::borrowed(t1),
        trace::TraceSpec::borrowed(t2), trace::TraceSpec::borrowed(t3)};
    const auto viaRunner = ExperimentRunner::runOne(
        RunRequest::multiCore(specs, PolicySpec::byName("LRU"), cfg));
    ASSERT_TRUE(viaRunner.ok()) << viaRunner.error;
    EXPECT_TRUE(viaRunner.multiCore);
    ASSERT_EQ(viaRunner.coreIpc.size(), 4u);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(viaRunner.coreIpc[c], direct.ipc[c]) << c;
    EXPECT_EQ(viaRunner.mpki, direct.mpki);
    EXPECT_EQ(viaRunner.benchmark, direct.mixName);
}

TEST(ExperimentRunnerTest, UnknownPolicyCapturedPerRun)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    std::vector<RunRequest> batch = {
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("LRU")),
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("NoSuchPolicy")),
    };
    const auto set = ExperimentRunner(2).run(batch);
    EXPECT_TRUE(set.results[0].ok());
    EXPECT_FALSE(set.results[1].ok());
    EXPECT_NE(set.results[1].error.find("NoSuchPolicy"),
              std::string::npos);
    EXPECT_EQ(set.results[1].ipc, 0.0);
}

TEST(ExperimentRunnerTest, MinOnMultiCoreIsARunError)
{
    const auto t0 = trace::makeSuiteTrace(0, 60000);
    // Specs may share a trace: the runner opens one source per slot.
    const std::array<trace::TraceSpec, 4> mix = {
        trace::TraceSpec::borrowed(t0), trace::TraceSpec::borrowed(t0),
        trace::TraceSpec::borrowed(t0), trace::TraceSpec::borrowed(t0)};
    sim::MultiCoreConfig cfg;
    cfg.warmupInstructions = 40000;
    cfg.measureCycles = 50000;
    const auto r = ExperimentRunner::runOne(
        RunRequest::multiCore(mix, PolicySpec::byName("MIN"), cfg));
    EXPECT_FALSE(r.ok());
}

TEST(ExperimentRunnerTest, MalformedRequestThrowsEagerly)
{
    const auto tr = trace::makeSuiteTrace(0, 60000);
    RunRequest bad = RunRequest::singleCore(
        trace::TraceSpec::borrowed(tr), PolicySpec::byName("LRU"));
    // 2 sources on a single-core config
    bad.sources.push_back(trace::TraceSpec::borrowed(tr));
    EXPECT_THROW(ExperimentRunner(1).run({bad}), FatalError);

    RunRequest no_policy = RunRequest::singleCore(
        trace::TraceSpec::borrowed(tr), PolicySpec::byName(""));
    EXPECT_THROW(ExperimentRunner(1).run({no_policy}), FatalError);
}

TEST(ExperimentRunnerTest, CustomFactorySpecRuns)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    auto spec = PolicySpec::custom(
        "my-lru", sim::PolicyRegistry::make("LRU"));
    const auto r = ExperimentRunner::runOne(RunRequest::singleCore(
        trace::TraceSpec::borrowed(tr), std::move(spec)));
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_GT(r.ipc, 0.0);
}

TEST(RunSetTest, PolicySummariesAggregateByPolicy)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const auto set = ExperimentRunner(2).run(smallBatch({&t0, &t1}));
    const auto summaries = set.policySummaries();
    ASSERT_EQ(summaries.size(), 3u); // LRU, SRRIP, MPPPB
    EXPECT_EQ(summaries[0].policy, "LRU");
    EXPECT_EQ(summaries[0].runs, 2u);
    const double expect_geomean = std::sqrt(set.results[0].ipc *
                                            set.results[3].ipc);
    EXPECT_NEAR(summaries[0].geomeanIpc, expect_geomean, 1e-12);
    const double expect_mean =
        0.5 * (set.results[0].mpki + set.results[3].mpki);
    EXPECT_NEAR(summaries[0].meanMpki, expect_mean, 1e-12);
}

TEST(RunSetTest, SpeedupOverFindsSameBenchmarkBaseline)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const auto set = ExperimentRunner(2).run(smallBatch({&t0, &t1}));
    // Request 4 is t1/SRRIP; its LRU baseline is request 3, not 0.
    EXPECT_DOUBLE_EQ(set.speedupOver(4, "LRU"),
                     set.results[4].ipc / set.results[3].ipc);
    EXPECT_DOUBLE_EQ(set.speedupOver(0, "LRU"), 1.0);
    EXPECT_THROW(set.speedupOver(0, "Hawkeye"), FatalError);
}

TEST(ReportTest, JsonShapeAndErrorEscaping)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    std::vector<RunRequest> batch = {
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("LRU")),
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("Nope")),
    };
    const auto set = ExperimentRunner(1).run(batch);
    const auto json = toJson(set);
    EXPECT_NE(json.find("\"runs\": ["), std::string::npos);
    EXPECT_NE(json.find("\"summary\": ["), std::string::npos);
    EXPECT_NE(json.find("\"policy\": \"LRU\""), std::string::npos);
    EXPECT_NE(json.find("\"error\": \""), std::string::npos);
    // Timing fields only appear when requested.
    EXPECT_EQ(json.find("wallSeconds"), std::string::npos);
    const auto timed = toJson(set, {/*timing=*/true});
    EXPECT_NE(timed.find("\"jobs\": 1"), std::string::npos);
    EXPECT_NE(timed.find("wallSeconds"), std::string::npos);

    const auto csv = toCsv(set);
    EXPECT_EQ(csv.find("wall_seconds"), std::string::npos);
    EXPECT_NE(csv.find("index,benchmark,policy"), std::string::npos);
    // Header + one line per run.
    std::size_t lines = 0;
    for (const char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, 1 + set.results.size());
}

TEST(ExperimentRunnerTest, EmptyBatchYieldsEmptySet)
{
    const auto set = ExperimentRunner(4).run({});
    EXPECT_TRUE(set.results.empty());
    EXPECT_TRUE(set.policySummaries().empty());
}

TEST(ExperimentRunnerTest, ZeroJobsResolvesToHardware)
{
    EXPECT_GE(ExperimentRunner(0).jobs(), 1u);
    EXPECT_EQ(ExperimentRunner(3).jobs(), 3u);
}

} // namespace
} // namespace mrp::runner
