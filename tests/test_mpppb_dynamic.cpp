/**
 * @file
 * Tests for the set-dueling dynamic-bypass extension of MPPPB.
 */

#include <gtest/gtest.h>

#include "cache/policy_cache.hpp"
#include "core/mpppb.hpp"

namespace mrp::core {
namespace {

cache::CacheGeometry
geom()
{
    return cache::CacheGeometry(2 * 1024 * 1024, 16);
}

cache::AccessInfo
access(Pc pc, Addr addr)
{
    cache::AccessInfo info;
    info.pc = pc;
    info.addr = addr;
    info.type = cache::AccessType::Load;
    return info;
}

MpppbConfig
dynConfig()
{
    auto cfg = singleThreadMpppbConfig();
    cfg.dynamicBypass = true;
    return cfg;
}

TEST(MpppbDynamicTest, ConfigValidation)
{
    auto cfg = dynConfig();
    cfg.duelingPeriod = 1;
    EXPECT_THROW(MpppbPolicy(geom(), 1, cfg), FatalError);
    cfg.duelingPeriod = 1 << 20; // more than the set count
    EXPECT_THROW(MpppbPolicy(geom(), 1, cfg), FatalError);
}

TEST(MpppbDynamicTest, NoBypassLeaderSetsNeverBypass)
{
    auto cfg = dynConfig();
    MpppbPolicy pol(geom(), 1, cfg);
    // Saturate the predictor toward "dead" via a sampled set.
    for (int i = 0; i < 200000; ++i) {
        const auto info =
            access(0x400000, (static_cast<Addr>(i) * 2048) * 64);
        pol.onMiss(info, 0);
    }
    // Set 33 is the no-bypass leader (period 64 => 64/2+1).
    const auto info = access(0x400000, 33ull * 64);
    pol.onMiss(info, 33);
    EXPECT_FALSE(pol.shouldBypass(info, 33));
    // Set 0 is a bypass leader and must honor the threshold.
    pol.onMiss(access(0x400000, 0), 0);
    EXPECT_TRUE(pol.shouldBypass(access(0x400000, 0), 0));
}

TEST(MpppbDynamicTest, FollowersTrackTheWinningLeaders)
{
    auto cfg = dynConfig();
    MpppbPolicy pol(geom(), 1, cfg);
    // Drive misses only into bypass-leader sets: psel rises, bypass
    // becomes unfavored for followers.
    for (int i = 0; i < 2000; ++i)
        pol.onMiss(access(0x400000, (static_cast<Addr>(i) * 2048) * 64),
                   /*set=*/64 * (i % 8)); // all roles: BypassLeader
    EXPECT_FALSE(pol.bypassFavored());
    // Now drive misses into no-bypass leaders: psel falls back.
    for (int i = 0; i < 4000; ++i)
        pol.onMiss(access(0x400000, (static_cast<Addr>(i) * 2048) * 64),
                   /*set=*/64 * (i % 8) + 33);
    EXPECT_TRUE(pol.bypassFavored());
}

TEST(MpppbDynamicTest, StaticConfigurationAlwaysFavorsBypass)
{
    auto cfg = singleThreadMpppbConfig();
    ASSERT_FALSE(cfg.dynamicBypass);
    MpppbPolicy pol(geom(), 1, cfg);
    EXPECT_TRUE(pol.bypassFavored());
}

TEST(MpppbDynamicTest, EndToEndNoWorseThanStaticOnDeadStream)
{
    // On a pure dead stream the dueling should settle on bypassing
    // (leaders that bypass miss no more than those that do not).
    auto run = [&](bool dynamic) {
        auto cfg = singleThreadMpppbConfig();
        cfg.dynamicBypass = dynamic;
        auto pol = std::make_unique<MpppbPolicy>(geom(), 1, cfg);
        cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
        for (int i = 0; i < 300000; ++i)
            llc.access(access(0x400000, static_cast<Addr>(i) * 64 * 7));
        return llc.stats().bypasses;
    };
    const auto dynamic_bypasses = run(true);
    const auto static_bypasses = run(false);
    EXPECT_GT(dynamic_bypasses, static_bypasses / 2);
}

} // namespace
} // namespace mrp::core
