/**
 * @file
 * Fleet observability tests (src/obs): span id derivation, the OBS
 * wire payload and every fromJson reader behind it (telemetry
 * snapshots, phase trees — all malformed input must be typed
 * CorruptInput), the telemetry::mergeInto fleet aggregation
 * semantics, the FleetCollector's merged Chrome trace_event export
 * against a golden file (scripted clock, 2 workers, a lease expiry
 * mid-scenario), straggler analytics, and — against real mrp_worker
 * processes — the headline determinism contract: study reports are
 * byte-identical with fleet observability on or off, including
 * through a SIGKILLed worker, while the collector's per-worker
 * queue.* sums stay equal to the broker registry's totals.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/fleet_collector.hpp"
#include "obs/payload.hpp"
#include "obs/span.hpp"
#include "prof/export.hpp"
#include "queue/broker.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "util/json_reader.hpp"
#include "util/logging.hpp"

#ifndef MRP_WORKER_BIN
#define MRP_WORKER_BIN "mrp_worker"
#endif

namespace mrp::obs {
namespace {

// ---------------------------------------------------------------- //
// Span context

TEST(SpanTest, Hex16RoundTrips)
{
    EXPECT_EQ(hex16(0), "0000000000000000");
    EXPECT_EQ(hex16(0xdeadbeef), "00000000deadbeef");
    for (const std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1},
          std::uint64_t{0x0123456789abcdefull}, ~std::uint64_t{0}}) {
        const auto back = parseHex16(hex16(v));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, v);
    }
}

TEST(SpanTest, ParseHex16RejectsAnythingButExact16LowerHex)
{
    EXPECT_FALSE(parseHex16(""));
    EXPECT_FALSE(parseHex16("0123456789abcde"));   // 15 digits
    EXPECT_FALSE(parseHex16("0123456789abcdef0")); // 17 digits
    EXPECT_FALSE(parseHex16("0123456789ABCDEF"));  // uppercase
    EXPECT_FALSE(parseHex16("0123456789abcdeg"));  // non-hex
    EXPECT_FALSE(parseHex16(" 123456789abcdef"));
}

TEST(SpanTest, DerivedIdsAreStableDistinctAndNonZero)
{
    const auto t1 = deriveTraceId("study-fingerprint-a");
    EXPECT_NE(t1, 0u);
    EXPECT_EQ(t1, deriveTraceId("study-fingerprint-a"));
    EXPECT_NE(t1, deriveTraceId("study-fingerprint-b"));
    EXPECT_NE(deriveTraceId(""), 0u);

    const auto s = deriveSpanId(t1, 0, 1, 1);
    EXPECT_NE(s, 0u);
    EXPECT_EQ(s, deriveSpanId(t1, 0, 1, 1));
    // Each salt must separate spans: batch, job, attempt, trace.
    EXPECT_NE(s, deriveSpanId(t1, 1, 1, 1));
    EXPECT_NE(s, deriveSpanId(t1, 0, 2, 1));
    EXPECT_NE(s, deriveSpanId(t1, 0, 1, 2));
    EXPECT_NE(s, deriveSpanId(deriveTraceId("b"), 0, 1, 1));
}

// ---------------------------------------------------------------- //
// Telemetry snapshot reader + merge semantics

/** Entries are name-sorted, like every registry snapshot (mergeInto
 * relies on that invariant). */
telemetry::Snapshot
sampleSnapshot()
{
    using Kind = telemetry::MetricSnapshot::Kind;
    telemetry::Snapshot s;
    telemetry::MetricSnapshot c;
    c.name = "llc.demand_hits";
    c.kind = Kind::Counter;
    c.counter = 42;
    s.metrics.push_back(c);
    telemetry::MetricSnapshot h;
    h.name = "llc.reuse_distance";
    h.kind = Kind::Histogram;
    h.histogram.bounds = {1, 2, 4};
    h.histogram.counts = {3, 0, 5};
    h.histogram.overflow = 2;
    h.histogram.total = 10;
    h.histogram.sum = 37;
    s.metrics.push_back(h);
    telemetry::MetricSnapshot g;
    g.name = "mpppb.confidence";
    g.kind = Kind::Gauge;
    g.gauge = 0.625;
    s.metrics.push_back(g);
    return s;
}

TEST(SnapshotReaderTest, RoundTripsByteIdentically)
{
    const auto s = sampleSnapshot();
    const std::string text = telemetry::snapshotJson(s, "  ");
    const auto back = telemetry::snapshotFromJson(
        json::parseJson(text, "snap"), "snap");
    EXPECT_EQ(telemetry::snapshotJson(back, "  "), text);
}

TEST(SnapshotReaderTest, MalformedSnapshotIsCorruptInput)
{
    const auto expectCorrupt = [](const std::string& text) {
        try {
            telemetry::snapshotFromJson(json::parseJson(text, "t"),
                                        "t");
            FAIL() << "accepted: " << text;
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::CorruptInput) << text;
        }
    };
    expectCorrupt("[]"); // not an object
    expectCorrupt("{}"); // sections missing
    expectCorrupt("{\"counters\": {}, \"gauges\": {}}");
    expectCorrupt("{\"counters\": 3, \"gauges\": {}, "
                  "\"histograms\": {}}");
    expectCorrupt("{\"counters\": {\"a\": \"x\"}, \"gauges\": {}, "
                  "\"histograms\": {}}");
    // bounds/counts length mismatch
    expectCorrupt(
        "{\"counters\": {}, \"gauges\": {}, \"histograms\": "
        "{\"h\": {\"bounds\": [1, 2], \"counts\": [1], "
        "\"overflow\": 0, \"total\": 1, \"sum\": 1}}}");
}

TEST(MergeTest, CountersAddGaugesMaxHistogramsAddBucketwise)
{
    auto into = sampleSnapshot();
    auto from = sampleSnapshot();
    from.metrics[2].gauge = 0.25; // lower gauge must lose
    telemetry::mergeInto(into, from);

    const auto* c = into.find("llc.demand_hits");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->counter, 84);
    const auto* g = into.find("mpppb.confidence");
    ASSERT_NE(g, nullptr);
    EXPECT_DOUBLE_EQ(g->gauge, 0.625);
    const auto* h = into.find("llc.reuse_distance");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->histogram.counts,
              (std::vector<std::uint64_t>{6, 0, 10}));
    EXPECT_EQ(h->histogram.overflow, 4u);
    EXPECT_EQ(h->histogram.total, 20u);
    EXPECT_EQ(h->histogram.sum, 74);
}

TEST(MergeTest, DisjointNamesAreKeptAndFoldIsOrderIndependent)
{
    using Kind = telemetry::MetricSnapshot::Kind;
    telemetry::MetricSnapshot only;
    only.name = "worker.only";
    only.kind = Kind::Counter;
    only.counter = 7;

    auto a = sampleSnapshot();
    telemetry::Snapshot b;
    b.metrics.push_back(only);
    telemetry::Snapshot ab;
    telemetry::mergeInto(ab, a);
    telemetry::mergeInto(ab, b);
    telemetry::Snapshot ba;
    telemetry::mergeInto(ba, b);
    telemetry::mergeInto(ba, a);
    EXPECT_EQ(telemetry::snapshotJson(ab, ""),
              telemetry::snapshotJson(ba, ""));
    ASSERT_NE(ab.find("worker.only"), nullptr);
    EXPECT_EQ(ab.find("worker.only")->counter, 7);
}

TEST(MergeTest, MismatchedHistogramBoundsAreCorruptInput)
{
    auto into = sampleSnapshot();
    auto from = sampleSnapshot();
    from.metrics[1].histogram.bounds = {1, 2, 8};
    try {
        telemetry::mergeInto(into, from);
        FAIL() << "merged histograms with different ladders";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptInput);
    }
}

TEST(MergeTest, MismatchedKindsAreCorruptInput)
{
    auto into = sampleSnapshot();
    auto from = sampleSnapshot();
    from.metrics[0].kind = telemetry::MetricSnapshot::Kind::Gauge;
    try {
        telemetry::mergeInto(into, from);
        FAIL() << "merged one name with two kinds";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptInput);
    }
}

// ---------------------------------------------------------------- //
// Phase tree reader

prof::PhaseStat
samplePhases()
{
    prof::PhaseStat sim;
    sim.label = "simulate";
    sim.count = 1;
    sim.inclusiveSeconds = 0.008;
    sim.exclusiveSeconds = 0.008;
    prof::PhaseStat root;
    root.label = "run";
    root.count = 1;
    root.inclusiveSeconds = 0.01;
    root.exclusiveSeconds = 0.002;
    root.children.push_back(sim);
    return root;
}

TEST(PhaseTreeReaderTest, RoundTripsByteIdentically)
{
    const auto p = samplePhases();
    const std::string text = prof::phaseTreeJson(p, 4);
    const auto back =
        prof::phaseTreeFromJson(json::parseJson(text, "p"), "p");
    EXPECT_EQ(prof::phaseTreeJson(back, 4), text);
}

TEST(PhaseTreeReaderTest, MalformedTreeIsCorruptInput)
{
    const auto expectCorrupt = [](const std::string& text) {
        try {
            prof::phaseTreeFromJson(json::parseJson(text, "t"), "t");
            FAIL() << "accepted: " << text;
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::CorruptInput) << text;
        }
    };
    expectCorrupt("7");
    expectCorrupt("{}"); // label missing
    expectCorrupt("{\"label\": \"x\", \"count\": 1, "
                  "\"inclusiveSeconds\": 0, "
                  "\"exclusiveSeconds\": 0, \"children\": 3}");
    // Malformed grandchild: the reader must recurse.
    expectCorrupt("{\"label\": \"x\", \"count\": 1, "
                  "\"inclusiveSeconds\": 0, "
                  "\"exclusiveSeconds\": 0, \"children\": [{}]}");
}

// ---------------------------------------------------------------- //
// OBS wire payload

TEST(PayloadTest, FullPayloadRoundTripsByteIdentically)
{
    WorkerRunObs o;
    o.label = "suite1/LRU";
    o.wallSeconds = 0.0125;
    o.accesses = 40000;
    o.metrics = sampleSnapshot();
    o.phases = samplePhases();
    const std::string text = workerObsJson(o);
    // The payload rides a line protocol: one raw newline would shear
    // it into unparsable fragments on the pipe.
    EXPECT_EQ(text.find('\n'), std::string::npos);
    const auto back = workerObsFromJson(text, "obs");
    EXPECT_EQ(workerObsJson(back), text);
    EXPECT_EQ(back.label, o.label);
    ASSERT_TRUE(back.metrics.has_value());
    ASSERT_TRUE(back.phases.has_value());
    EXPECT_FALSE(back.truncated);
}

TEST(PayloadTest, TruncatedStubRoundTripsWithoutBulkSections)
{
    WorkerRunObs o;
    o.label = "big";
    o.wallSeconds = 1.5;
    o.accesses = 9;
    o.truncated = true;
    const std::string text = workerObsJson(o);
    const auto back = workerObsFromJson(text, "obs");
    EXPECT_EQ(workerObsJson(back), text);
    EXPECT_TRUE(back.truncated);
    EXPECT_FALSE(back.metrics.has_value());
    EXPECT_FALSE(back.phases.has_value());
}

TEST(PayloadTest, MalformedPayloadIsCorruptInput)
{
    const auto expectCorrupt = [](const std::string& text) {
        try {
            workerObsFromJson(text, "obs");
            FAIL() << "accepted: " << text;
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::CorruptInput) << text;
        }
    };
    expectCorrupt("[]");
    expectCorrupt("{\"label\": \"x\"}"); // scalars missing
    expectCorrupt("{\"label\": 3, \"wallSeconds\": 0, "
                  "\"accesses\": 0, \"truncated\": false}");
    expectCorrupt("{\"label\": \"x\", \"wallSeconds\": 0, "
                  "\"accesses\": 0, \"truncated\": false, "
                  "\"metrics\": []}");
    expectCorrupt("{\"label\": \"x\", \"wallSeconds\": 0, "
                  "\"accesses\": 0, \"truncated\": false, "
                  "\"phases\": 3}");
    expectCorrupt("not json at all");
}

// ---------------------------------------------------------------- //
// FleetCollector with a scripted clock

/** The golden scenario: 2 workers, 2 jobs; worker 1's first lease
 * dies to a heartbeat timeout and the job is re-leased to worker 0.
 * Every timestamp is scripted, so the trace is fully deterministic. */
class ScriptedFleet
{
  public:
    ScriptedFleet()
    {
        FleetConfig cfg;
        cfg.clock = [this] { return now_; };
        collector = std::make_unique<FleetCollector>(cfg);
    }

    void
    play()
    {
        auto& col = *collector;
        const std::uint64_t batch = col.batchStarted("golden-fp");
        const std::uint64_t trace = col.traceId();
        spanA = deriveSpanId(trace, batch, 1, 1);
        spanB = deriveSpanId(trace, batch, 2, 1);
        spanC = deriveSpanId(trace, batch, 2, 2);

        col.workerStarted(0, 101);
        col.workerStarted(1, 202);
        at(0.010), col.leaseGranted(0, 1, spanA, 1, "suite1/LRU");
        at(0.012), col.leaseGranted(1, 2, spanB, 1, "suite2/SRRIP");
        at(0.020), col.heartbeat(0, spanA);
        at(0.022), col.heartbeat(1, spanB);
        at(0.030);
        {
            WorkerRunObs o;
            o.label = "suite1/LRU";
            o.wallSeconds = 0.018;
            o.accesses = 40000;
            o.metrics = sampleSnapshot();
            o.phases = samplePhases();
            col.workerObs(0, spanA, std::move(o));
        }
        at(0.032), col.spanClosed(0, spanA, "ok");
        // Worker 1 goes silent; the broker expires the lease.
        at(0.040);
        col.spanClosed(1, spanB, "lease_expired",
                       "heartbeat-timeout");
        col.leaseExpired(1);
        col.requeued(1);
        col.workerRestarted(1, 203);
        at(0.050), col.leaseGranted(0, 2, spanC, 2, "suite2/SRRIP");
        at(0.055), col.heartbeat(0, spanC);
        at(0.060);
        {
            WorkerRunObs o;
            o.label = "suite2/SRRIP";
            o.wallSeconds = 0.009;
            o.accesses = 40000;
            o.truncated = true; // as if it blew --obs-max-bytes
            col.workerObs(0, spanC, std::move(o));
        }
        at(0.062), col.spanClosed(0, spanC, "ok");
    }

    void at(double t) { now_ = t; }

    std::unique_ptr<FleetCollector> collector;
    std::uint64_t spanA = 0, spanB = 0, spanC = 0;

  private:
    double now_ = 0.0;
};

TEST(FleetCollectorTest, MergedTraceMatchesGoldenFile)
{
    ScriptedFleet fleet;
    fleet.play();
    const std::string got = fleet.collector->traceJson();

    const auto golden_path =
        std::filesystem::path(__FILE__).parent_path() / "golden" /
        "fleet_trace.json";
    if (std::getenv("MRP_UPDATE_GOLDEN") != nullptr) {
        std::ofstream(golden_path) << got;
        GTEST_SKIP() << "regenerated " << golden_path;
    }
    std::ifstream f(golden_path);
    ASSERT_TRUE(f) << "missing golden file: " << golden_path
                   << " (regenerate with MRP_UPDATE_GOLDEN=1)";
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(got, want.str());
}

TEST(FleetCollectorTest, FleetSnapshotCountsTheScenario)
{
    ScriptedFleet fleet;
    fleet.play();
    const auto snap = fleet.collector->fleetSnapshot();

    const auto counter = [&](const std::string& name) {
        const auto* m = snap.find(name);
        return m ? static_cast<std::int64_t>(m->counter)
                 : std::int64_t{-1};
    };
    EXPECT_EQ(counter("queue.jobs.worker0"), 2);
    EXPECT_EQ(counter("queue.jobs.worker1"), 0);
    EXPECT_EQ(counter("queue.heartbeats.worker0"), 2);
    EXPECT_EQ(counter("queue.heartbeats.worker1"), 1);
    EXPECT_EQ(counter("queue.lease_expired.worker0"), 0);
    EXPECT_EQ(counter("queue.lease_expired.worker1"), 1);
    EXPECT_EQ(counter("queue.requeued.worker1"), 1);
    EXPECT_EQ(counter("queue.worker_restarts.worker1"), 1);
    EXPECT_EQ(counter("queue.requeue_exhausted.worker1"), 0);

    const auto* lat = snap.find("queue.lease_latency_ms.worker0");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->histogram.total, 2u); // 22 ms + 12 ms
    const auto* thr =
        snap.find("queue.throughput_jobs_per_s.worker0");
    ASSERT_NE(thr, nullptr);
    // 2 jobs over [0.010, 0.062] s.
    EXPECT_NEAR(thr->gauge, 2.0 / 0.052, 1e-9);

    // The shipped snapshots merged once (span C was truncated).
    const auto runs = fleet.collector->mergedWorkerSnapshot();
    const auto* hits = runs.find("llc.demand_hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(hits->counter, 42);
}

TEST(FleetCollectorTest, MetricsJsonEmbedsBrokerSnapshotAndParses)
{
    ScriptedFleet fleet;
    fleet.play();
    telemetry::MetricsRegistry reg;
    reg.counter("queue.requeued").add(1);
    const auto broker_snap = reg.snapshot();
    const std::string text =
        fleet.collector->metricsJson(&broker_snap) + "\n";
    const auto doc = json::parseJson(text, "fleet-metrics");
    EXPECT_EQ(doc.require("doc", json::Value::Type::String, "d")
                  .string,
              "mrp-fleet-metrics-v1");
    EXPECT_NE(doc.get("fleet"), nullptr);
    EXPECT_NE(doc.get("workerRuns"), nullptr);
    EXPECT_NE(doc.get("broker"), nullptr);
    EXPECT_NE(doc.get("stragglers"), nullptr);
    // Both sides of the counter-sum equality live in one document.
    const auto fleet_side = telemetry::snapshotFromJson(
        *doc.get("fleet"), "fleet");
    ASSERT_NE(fleet_side.find("queue.requeued.worker1"), nullptr);
    EXPECT_EQ(fleet_side.find("queue.requeued.worker1")->counter, 1);
}

TEST(FleetCollectorTest, UnclosedSpanExportsAsOpen)
{
    FleetConfig cfg;
    double now = 0.0;
    cfg.clock = [&now] { return now; };
    FleetCollector col(cfg);
    const auto batch = col.batchStarted("fp");
    const auto span = deriveSpanId(col.traceId(), batch, 1, 1);
    col.workerStarted(0, 11);
    now = 0.5;
    col.leaseGranted(0, 1, span, 1, "left-open");
    now = 0.6;
    col.heartbeat(0, span);
    const std::string trace = col.traceJson();
    EXPECT_NE(trace.find("\"outcome\": \"open\""), std::string::npos);
}

TEST(FleetCollectorTest, StragglerFlaggedBeyondKMads)
{
    FleetConfig cfg;
    double now = 0.0;
    cfg.clock = [&now] { return now; };
    FleetCollector col(cfg);
    const auto batch = col.batchStarted("fp");
    std::uint64_t job = 1;
    const auto runJob = [&](unsigned slot, double service_s) {
        const auto span =
            deriveSpanId(col.traceId(), batch, job, 1);
        col.leaseGranted(slot, job, span, 1, "j");
        now += service_s;
        col.spanClosed(slot, span, "ok");
        ++job;
    };
    // Worker 0: 10, 10, 12, 12 ms. Worker 1: one 100 ms job.
    // Fleet median 12 ms, MAD 2 ms -> worker 1 sits 44 MADs out.
    runJob(0, 0.010);
    runJob(0, 0.010);
    runJob(0, 0.012);
    runJob(0, 0.012);
    runJob(1, 0.100);

    const auto rep = col.stragglerReport();
    // Service times come out of clock subtraction, so compare with a
    // float tolerance, not exactly.
    EXPECT_NEAR(rep.fleetMedianMs, 12.0, 1e-9);
    EXPECT_NEAR(rep.madMs, 2.0, 1e-9);
    ASSERT_EQ(rep.workers.size(), 2u);
    EXPECT_FALSE(rep.workers[0].flagged);
    EXPECT_TRUE(rep.workers[1].flagged);
    EXPECT_NEAR(rep.workers[1].deviationMads, 44.0, 1e-6);
    EXPECT_NE(col.stragglerText().find("** STRAGGLER **"),
              std::string::npos);
}

TEST(FleetCollectorTest, NoJobsMeansNoStragglers)
{
    FleetCollector col;
    const auto rep = col.stragglerReport();
    EXPECT_TRUE(rep.workers.empty());
    EXPECT_EQ(rep.madMs, 0.0);
}

// ---------------------------------------------------------------- //
// Against real workers: the determinism contract

class FleetObsTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        for (const auto& p : temp_paths_)
            std::remove(p.c_str());
    }

    std::string
    tempPath(const std::string& name)
    {
        const std::string p = "/tmp/mrp_obs_" + name;
        std::remove(p.c_str());
        temp_paths_.push_back(p);
        return p;
    }

    std::vector<std::string> temp_paths_;
};

queue::BrokerConfig
obsBrokerConfig(const std::string& queue_path, unsigned workers)
{
    queue::BrokerConfig cfg;
    cfg.workerBin = MRP_WORKER_BIN;
    cfg.workers = workers;
    cfg.queuePath = queue_path;
    cfg.heartbeatMs = 10;
    cfg.heartbeatTimeoutMs = 400;
    cfg.backoffSeconds = 0.001;
    return cfg;
}

runner::RunRequest
obsRequest(unsigned index, const char* policy)
{
    sim::SingleCoreConfig cfg;
    cfg.hierarchy.llcBytes = 128 * 1024;
    return runner::RunRequest::singleCore(
        trace::TraceSpec::suite(index, 40000),
        runner::PolicySpec::byName(policy), cfg);
}

std::vector<runner::RunRequest>
obsBatch()
{
    std::vector<runner::RunRequest> batch;
    for (unsigned w : {1u, 2u, 3u})
        for (const char* p : {"LRU", "SRRIP"})
            batch.push_back(obsRequest(w, p));
    return batch;
}

/** Sum of a fleet counter over every .worker<i> suffix. */
std::int64_t
workerSum(const telemetry::Snapshot& snap, const std::string& leaf)
{
    std::int64_t sum = 0;
    for (const auto& m : snap.metrics)
        if (m.name.rfind(leaf + ".worker", 0) == 0)
            sum += m.counter;
    return sum;
}

TEST_F(FleetObsTest, ReportsAreByteIdenticalWithObservabilityOn)
{
    const auto batch = obsBatch();
    const auto reference = runner::ExperimentRunner(1).run(batch);
    const std::string want = runner::toJson(reference);

    for (const unsigned workers : {1u, 2u}) {
        FleetCollector collector;
        auto cfg = obsBrokerConfig(
            tempPath("det" + std::to_string(workers) + ".jsonl"),
            workers);
        cfg.collector = &collector;
        const queue::Broker broker(cfg);
        const auto set = broker.run(batch);
        EXPECT_EQ(runner::toJson(set), want)
            << "report changed with obs on at --workers " << workers;

        // Every job produced exactly one ok span carrying a shipped
        // payload with the run's telemetry.
        const auto snap = collector.fleetSnapshot();
        EXPECT_EQ(workerSum(snap, "queue.jobs"),
                  static_cast<std::int64_t>(batch.size()));
        const auto runs = collector.mergedWorkerSnapshot();
        EXPECT_FALSE(runs.metrics.empty())
            << "workers shipped no OBS payloads";
        const std::string trace = collector.traceJson();
        EXPECT_NE(trace.find("\"outcome\": \"ok\""),
                  std::string::npos);
        EXPECT_NE(trace.find(hex16(collector.traceId())),
                  std::string::npos);
    }
}

TEST_F(FleetObsTest, SigkilledWorkerClosesSpansAsLeaseExpired)
{
    const auto batch = obsBatch();
    const auto reference = runner::ExperimentRunner(1).run(batch);

    telemetry::MetricsRegistry metrics;
    FleetCollector collector;
    auto cfg = obsBrokerConfig(tempPath("kill.jsonl"), 2);
    cfg.metrics = &metrics;
    cfg.collector = &collector;
    cfg.killWorkerAfterLeases = 2; // SIGKILL the 2nd lease's holder
    const queue::Broker broker(cfg);

    const auto set = broker.run(batch);
    EXPECT_EQ(runner::toJson(set), runner::toJson(reference));

    const std::string trace = collector.traceJson();
    EXPECT_NE(trace.find("\"outcome\": \"lease_expired\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"reason\": "), std::string::npos);

    // The mirroring contract: per-worker sums equal the broker
    // registry's totals, chaos included.
    const auto snap = collector.fleetSnapshot();
    for (const char* leaf :
         {"queue.requeued", "queue.lease_expired",
          "queue.worker_restarts", "queue.requeue_exhausted"}) {
        EXPECT_EQ(workerSum(snap, leaf),
                  metrics.counter(leaf).value())
            << leaf;
    }
    EXPECT_GE(workerSum(snap, "queue.requeued"), 1);
    EXPECT_GE(workerSum(snap, "queue.worker_restarts"), 1);
}

} // namespace
} // namespace mrp::obs
