/**
 * @file
 * Tests for the sweep orchestration subsystem: genome encode/decode
 * and canonicalization, strategy determinism, the study's fitness
 * cache (logical and physical), crash-safe kill/resume, and the
 * genetic refinement's convergence against the greedy feature search.
 *
 * The simulation-backed tests use the differentiating tiny corpus
 * (drift.slow + gups.fit at a 128KB LLC with threshold search
 * enabled); at the default 2MB LLC the short synthetic traces are
 * cold-miss dominated and every candidate scores the same, which
 * would make cache/convergence assertions vacuous.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "search/feature_search.hpp"
#include "sweep/study.hpp"
#include "util/fault_injection.hpp"
#include "util/json_reader.hpp"

namespace mrp::sweep {
namespace {

// Per-slot gene order (the SearchSpace contract): enabled, kind,
// assoc, begin, end, depth, xorPc.
constexpr std::size_t kEnabled = 0;
constexpr std::size_t kKind = 1;
constexpr std::size_t kAssoc = 2;
constexpr std::size_t kBegin = 3;
constexpr std::size_t kEnd = 4;
constexpr std::size_t kDepth = 5;
constexpr std::size_t kXorPc = 6;

SearchSpace
tinySpace(unsigned slots)
{
    SearchSpace space;
    space.featureSlots = slots;
    space.searchThresholds = true;
    return space;
}

/** The {drift.slow, gups.fit} corpus at a 128KB LLC, where feature
 * and threshold choices actually move MPKI. */
std::shared_ptr<CorpusEvaluator>
tinyCorpus(std::vector<unsigned> workloads, InstCount insts)
{
    CorpusConfig cc;
    cc.workloads = std::move(workloads);
    cc.fullInstructions = insts;
    cc.sim.hierarchy.llcBytes = 128 * 1024;
    return std::make_shared<CorpusEvaluator>(cc);
}

/** Deterministic stand-in fitness for driving strategies without a
 * simulator. */
double
synthFitness(const Genome& g)
{
    double f = 0.0;
    for (std::size_t i = 0; i < g.size(); ++i)
        f += static_cast<double>(g[i]) *
             static_cast<double>(i % 5 + 1);
    return f;
}

/** Run a strategy's full ask/tell loop against synthFitness. */
std::vector<std::vector<Candidate>>
driveSynthetic(Strategy& strategy)
{
    std::vector<std::vector<Candidate>> generations;
    for (int guard = 0; guard < 100; ++guard) {
        auto cands = strategy.ask();
        if (cands.empty())
            break;
        std::vector<Evaluated> results;
        results.reserve(cands.size());
        for (const auto& c : cands)
            results.push_back(
                {c, synthFitness(c.genome), 0.0, true});
        strategy.tell(results);
        generations.push_back(std::move(cands));
    }
    return generations;
}

bool
sameCandidates(const std::vector<std::vector<Candidate>>& a,
               const std::vector<std::vector<Candidate>>& b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t g = 0; g < a.size(); ++g) {
        if (a[g].size() != b[g].size())
            return false;
        for (std::size_t i = 0; i < a[g].size(); ++i)
            if (a[g][i].genome != b[g][i].genome ||
                a[g][i].budgetInsts != b[g][i].budgetInsts)
                return false;
    }
    return true;
}

TEST(SearchSpaceTest, EncodeDecodeRoundTrips)
{
    SearchSpace space;
    space.searchThresholds = true;
    space.searchSampler = true;
    const core::MpppbConfig cfg = core::singleThreadMpppbConfig();
    space.samplerSets = {cfg.predictor.sampledSetsPerCore,
                         2 * cfg.predictor.sampledSetsPerCore};

    const Genome g = space.encode(cfg);
    EXPECT_EQ(g.size(), space.genomeSize());
    EXPECT_EQ(space.clamp(g), g); // canonical

    const core::MpppbConfig back = space.decode(g);
    EXPECT_EQ(back.predictor.features, cfg.predictor.features);
    EXPECT_EQ(back.thresholds.tauBypass, cfg.thresholds.tauBypass);
    EXPECT_EQ(back.thresholds.tau, cfg.thresholds.tau);
    EXPECT_EQ(back.thresholds.tauNoPromote,
              cfg.thresholds.tauNoPromote);
    EXPECT_EQ(back.predictor.sampledSetsPerCore,
              cfg.predictor.sampledSetsPerCore);

    EXPECT_EQ(space.encode(back), g);
}

TEST(SearchSpaceTest, ClampBoundsAndCanonicalizes)
{
    const SearchSpace space = tinySpace(3);
    const auto specs = space.genes();

    // Wildly out-of-bounds values land inside every gene's bounds and
    // clamp is a fixed point (canonical genomes stay put).
    Genome wild(space.genomeSize(), 0);
    for (std::size_t i = 0; i < wild.size(); ++i)
        wild[i] = (i % 2) ? 100000 : -100000;
    const Genome c = space.clamp(wild);
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_GE(c[i], specs[i].min) << specs[i].name;
        EXPECT_LE(c[i], specs[i].max) << specs[i].name;
    }
    EXPECT_EQ(space.clamp(c), c);

    // begin > end swaps rather than producing an invalid feature.
    Genome swapped(space.genomeSize(), 0);
    swapped[kEnabled] = 1; // slot 0: pc feature
    swapped[kBegin] = 9;
    swapped[kEnd] = 3;
    const Genome s = space.clamp(swapped);
    EXPECT_LE(s[kBegin], s[kEnd]);

    // An all-disabled genome is repaired to enable one feature, so
    // every canonical genome decodes.
    const Genome none = space.clamp(Genome(space.genomeSize(), 0));
    const core::MpppbConfig cfg = space.decode(none);
    EXPECT_GE(cfg.predictor.features.size(), 1u);

    // The placement ladder stays sorted descending.
    EXPECT_GE(cfg.thresholds.tau[0], cfg.thresholds.tau[1]);
    EXPECT_GE(cfg.thresholds.tau[1], cfg.thresholds.tau[2]);

    // Dormant genes are canonicalized away: two genomes differing
    // only inside a disabled slot are the same candidate.
    Genome a(space.genomeSize(), 0);
    Genome b = a;
    b[kGenesPerSlot + kAssoc] = 5; // slot 1 stays disabled
    b[kGenesPerSlot + kBegin] = 4;
    EXPECT_EQ(space.genomeKey(space.clamp(a)),
              space.genomeKey(space.clamp(b)));
}

TEST(SearchSpaceTest, GenomeJsonRoundTrips)
{
    const SearchSpace space = tinySpace(4);
    Rng rng(123);
    const Genome g = space.randomGenome(rng);
    const auto v = json::parseJson(space.genomeJson(g), "genome");
    EXPECT_EQ(space.genomeFromJson(v), g);
}

TEST(StrategyTest, GeneticReplaysIdenticallyUnderSameSeed)
{
    const SearchSpace space = tinySpace(3);
    GeneticStrategy::Config gc;
    gc.population = 6;
    gc.generations = 4;
    gc.elites = 1;

    GeneticStrategy s1(space, gc, 7);
    GeneticStrategy s2(space, gc, 7);
    const auto g1 = driveSynthetic(s1);
    const auto g2 = driveSynthetic(s2);
    ASSERT_EQ(g1.size(), 4u);
    EXPECT_TRUE(sameCandidates(g1, g2));

    GeneticStrategy s3(space, gc, 8);
    const auto g3 = driveSynthetic(s3);
    EXPECT_FALSE(sameCandidates(g1, g3));
}

TEST(StrategyTest, GeneticElitismKeepsBestMonotone)
{
    const SearchSpace space = tinySpace(3);
    GeneticStrategy::Config gc;
    gc.population = 8;
    gc.generations = 6;
    gc.elites = 2;

    GeneticStrategy strategy(space, gc, 99);
    const auto generations = driveSynthetic(strategy);
    ASSERT_EQ(generations.size(), 6u);
    double best = -1e300;
    for (const auto& gen : generations) {
        double gen_best = -1e300;
        for (const auto& c : gen)
            gen_best = std::max(gen_best, synthFitness(c.genome));
        EXPECT_GE(gen_best, best);
        best = std::max(best, gen_best);
    }
}

TEST(StrategyTest, HalvingPromotesTopSurvivorsUpTheBudgetLadder)
{
    const SearchSpace space = tinySpace(3);
    HalvingStrategy::Config hc;
    hc.initial = 8;
    hc.eta = 2;
    hc.rungs = 3;
    hc.fullInstructions = 800;

    HalvingStrategy strategy(space, hc, 21);
    const auto rungs = driveSynthetic(strategy);
    ASSERT_EQ(rungs.size(), 3u);
    ASSERT_EQ(rungs[0].size(), 8u);
    ASSERT_EQ(rungs[1].size(), 4u);
    ASSERT_EQ(rungs[2].size(), 2u);
    EXPECT_EQ(rungs[0][0].budgetInsts, 200u); // full / eta^2
    EXPECT_EQ(rungs[1][0].budgetInsts, 400u); // full / eta
    EXPECT_EQ(rungs[2][0].budgetInsts, 0u);   // full length

    // Rung 1 holds exactly the top half of rung 0 by fitness, in
    // rank order (ties by ask order).
    std::vector<std::size_t> order(rungs[0].size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return synthFitness(rungs[0][a].genome) >
                                synthFitness(rungs[0][b].genome);
                     });
    for (std::size_t i = 0; i < rungs[1].size(); ++i)
        EXPECT_EQ(rungs[1][i].genome, rungs[0][order[i]].genome);
}

TEST(StudyTest, GridDuplicatesSimulateExactlyOnce)
{
    SearchSpace space = tinySpace(2);
    const std::size_t tau_base = 2 * kGenesPerSlot;

    // tau1/tau2 axes {10,20} x {10,20}: (20,10) and (10,20)
    // canonicalize to the same descending ladder, so the 4-point grid
    // has 3 unique genomes.
    GridStrategy strategy(
        space, Genome(space.genomeSize(), 0),
        {{tau_base + 1, {10, 20}}, {tau_base + 2, {10, 20}}});

    auto evaluator = tinyCorpus({3}, 60000);
    CorpusMpkiObjective objective(
        evaluator, CorpusMpkiObjective::Aggregate::Mean);
    StudyConfig cfg;
    cfg.name = "grid-dupes";
    Study study(space, strategy, objective, cfg);

    // Odometer: an armed-but-never-firing fault site counts how many
    // runs the runner physically executes.
    fault::Spec spec;
    spec.kind = fault::Kind::IoError;
    spec.firstHit = 1000000000;
    fault::arm("runner.execute", spec);
    const StudyResult result = study.run();
    const std::uint64_t executed = fault::hits("runner.execute");
    fault::disarmAll();

    ASSERT_EQ(result.candidates.size(), 4u);
    ASSERT_EQ(result.generations.size(), 1u);
    EXPECT_EQ(result.generations[0].evaluations, 4u);
    EXPECT_EQ(result.generations[0].simulations, 3u);
    EXPECT_EQ(result.generations[0].cacheHits, 1u);
    // One workload per candidate: 3 unique genomes -> 3 runs, ever.
    EXPECT_EQ(executed, 3u);

    // The duplicate pair really is the same canonical genome, flagged
    // cached on its second appearance, with identical fitness.
    std::size_t dupe = 0;
    for (std::size_t i = 1; i < result.candidates.size(); ++i)
        if (result.candidates[i].cached)
            dupe = i;
    ASSERT_NE(dupe, 0u);
    bool found_original = false;
    for (std::size_t i = 0; i < dupe; ++i)
        if (result.candidates[i].candidate.genome ==
            result.candidates[dupe].candidate.genome) {
            found_original = true;
            EXPECT_FALSE(result.candidates[i].cached);
            EXPECT_EQ(result.candidates[i].fitness,
                      result.candidates[dupe].fitness);
        }
    EXPECT_TRUE(found_original);

    // The run counts are in the report, as the acceptance check reads
    // them.
    const std::string report = study.reportJson(result);
    EXPECT_NE(report.find("\"simulations\": 3"), std::string::npos);
    EXPECT_NE(report.find("\"cacheHits\": 1"), std::string::npos);
}

TEST(StudyTest, KillAndResumeReportsAreByteIdentical)
{
    const SearchSpace space = tinySpace(3);
    auto evaluator = tinyCorpus({3, 4}, 60000);
    CorpusMpkiObjective objective(
        evaluator, CorpusMpkiObjective::Aggregate::Mean);

    GeneticStrategy::Config gc;
    gc.population = 4;
    gc.generations = 2;
    gc.tournament = 2;
    gc.elites = 1;
    const std::uint64_t strategy_seed = 5;

    const auto report_for = [&](unsigned jobs,
                                const std::string& journal,
                                bool resume) {
        GeneticStrategy strategy(space, gc, strategy_seed);
        StudyConfig cfg;
        cfg.name = "resume-test";
        cfg.seed = 11;
        cfg.jobs = jobs;
        cfg.journalPath = journal;
        cfg.resume = resume;
        Study study(space, strategy, objective, cfg);
        return study.reportJson(study.run());
    };

    // The undisturbed reference, identical at any worker count.
    const std::string reference = report_for(1, "", false);
    EXPECT_EQ(report_for(2, "", false), reference);

    for (const unsigned jobs : {1u, 2u}) {
        const std::string journal =
            std::string(::testing::TempDir()) +
            "test_sweep_resume_" + std::to_string(jobs) + ".ckpt";
        const std::string raw = journal + ".runs";
        std::remove(journal.c_str());
        std::remove(raw.c_str());

        // Kill the study mid-generation-0: raw-run journal appends
        // start failing at the 5th write (of 8), so part of the
        // generation is durable and the rest is lost.
        {
            GeneticStrategy strategy(space, gc, strategy_seed);
            StudyConfig cfg;
            cfg.name = "resume-test";
            cfg.seed = 11;
            cfg.jobs = jobs;
            cfg.journalPath = journal;
            Study study(space, strategy, objective, cfg);
            fault::Spec spec;
            spec.kind = fault::Kind::IoError;
            spec.firstHit = 5;
            spec.maxFires = -1;
            fault::arm("runner.journal.write", spec);
            EXPECT_THROW(study.run(), FatalError);
            fault::disarmAll();
        }

        // Resume replays the journaled work and finishes; the report
        // is byte-identical to the never-killed study's.
        fault::Spec odo;
        odo.kind = fault::Kind::IoError;
        odo.firstHit = 1000000000;
        fault::arm("runner.execute", odo);
        EXPECT_EQ(report_for(jobs, journal, true), reference);
        const std::uint64_t resumed_runs =
            fault::hits("runner.execute");
        fault::disarmAll();

        // The restored raw runs were not re-simulated: a full study
        // is 8 + 4 runs (4 candidates x 2 workloads, then 3 fresh
        // offspring + 1 elite cache hit), and at least the 4 journaled
        // runs came back from disk.
        EXPECT_LT(resumed_runs, 12u);

        std::remove(journal.c_str());
        std::remove(raw.c_str());
    }
}

TEST(StudyTest, GeneticRefinementNeverLosesToGreedySeed)
{
    // The greedy §5.1 search (random seeding + hill climb), on the
    // shared corpus evaluator.
    search::SearchConfig scfg;
    scfg.featuresPerSet = 4;
    scfg.workloads = {3, 4};
    scfg.traceInstructions = 120000;
    scfg.sim.hierarchy.llcBytes = 128 * 1024;
    scfg.baseConfig = core::singleThreadMpppbConfig();
    search::FeatureSetEvaluator eval(scfg);

    const auto seeds = search::randomSearch(eval, scfg, 2, 0xBEEF);
    const auto start = *std::min_element(
        seeds.begin(), seeds.end(),
        [](const search::Candidate& a, const search::Candidate& b) {
            return a.averageMpki < b.averageMpki;
        });
    const auto greedy =
        search::hillClimb(eval, scfg, start, 2, 0xCAFE);

    // Encode the greedy winner (its features plus the base
    // thresholds) as the genetic seed, via clamp so the raw gene
    // vector canonicalizes.
    SearchSpace space;
    space.featureSlots = scfg.featuresPerSet;
    space.searchThresholds = true;
    space.base = scfg.baseConfig;
    Genome raw(space.genomeSize(), 0);
    for (std::size_t s = 0; s < greedy.features.size(); ++s) {
        int* slot = raw.data() + s * kGenesPerSlot;
        const auto& f = greedy.features[s];
        slot[kEnabled] = 1;
        slot[kKind] = static_cast<int>(f.kind);
        slot[kAssoc] = static_cast<int>(f.assoc);
        slot[kBegin] = static_cast<int>(f.begin);
        slot[kEnd] = static_cast<int>(f.end);
        slot[kDepth] = static_cast<int>(f.depth);
        slot[kXorPc] = f.xorPc ? 1 : 0;
    }
    const std::size_t pos = space.featureSlots * kGenesPerSlot;
    raw[pos + 0] = scfg.baseConfig.thresholds.tauBypass;
    raw[pos + 1] = scfg.baseConfig.thresholds.tau[0];
    raw[pos + 2] = scfg.baseConfig.thresholds.tau[1];
    raw[pos + 3] = scfg.baseConfig.thresholds.tau[2];
    raw[pos + 4] = scfg.baseConfig.thresholds.tauNoPromote;
    const Genome seed = space.clamp(raw);

    // The bar: the canonicalized greedy set's own corpus MPKI (what
    // the seed candidate evaluates to in generation 0).
    const double greedy_mpki =
        eval.averageMpki(space.decode(seed).predictor.features);

    CorpusMpkiObjective objective(
        eval.corpus(), CorpusMpkiObjective::Aggregate::Mean);
    GeneticStrategy::Config gc;
    gc.population = 8;
    gc.generations = 5;
    gc.seeds = {seed};
    GeneticStrategy strategy(space, gc, 0xABCD);
    StudyConfig cfg;
    cfg.name = "convergence";
    cfg.seed = 0xABCD;
    Study study(space, strategy, objective, cfg);
    const StudyResult result = study.run();

    ASSERT_TRUE(result.hasBest);
    EXPECT_LE(result.candidates[result.bestId].mpki,
              greedy_mpki + 1e-9);

    // Elitism: the per-generation best fitness never regresses, and
    // the re-asked elites come back from the fitness cache.
    ASSERT_EQ(result.generations.size(), 5u);
    for (std::size_t g = 1; g < result.generations.size(); ++g) {
        EXPECT_GE(result.generations[g].bestFitness,
                  result.generations[g - 1].bestFitness);
        EXPECT_GE(result.generations[g].cacheHits, 1u);
    }
}

} // namespace
} // namespace mrp::sweep
