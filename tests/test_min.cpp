/**
 * @file
 * Tests for Belady's MIN with optimal bypass: next-use computation,
 * optimal victim choice, the bypass rule, and the property that MIN
 * never misses more than LRU on the same reference stream.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/policy_cache.hpp"
#include "policy/lru.hpp"
#include "policy/min.hpp"
#include "util/rng.hpp"

namespace mrp::policy {
namespace {

cache::AccessInfo
demand(Addr block)
{
    cache::AccessInfo info;
    info.pc = 0x400000;
    info.addr = block << kBlockShift;
    info.type = cache::AccessType::Load;
    return info;
}

TEST(NextUseTest, ComputesForwardDistances)
{
    const std::vector<Addr> seq = {1, 2, 1, 3, 2, 1};
    const auto next = computeNextUse(seq);
    EXPECT_EQ(next[0], 2u);
    EXPECT_EQ(next[1], 4u);
    EXPECT_EQ(next[2], 5u);
    EXPECT_EQ(next[3], kNeverUsed);
    EXPECT_EQ(next[4], kNeverUsed);
    EXPECT_EQ(next[5], kNeverUsed);
}

TEST(NextUseTest, EmptySequence)
{
    EXPECT_TRUE(computeNextUse({}).empty());
}

/** Run a block-address stream through a tiny single-set cache. */
std::uint64_t
missesUnder(const std::vector<Addr>& blocks,
            std::unique_ptr<cache::LlcPolicy> pol, std::uint32_t ways)
{
    cache::PolicyCache c(static_cast<Addr>(ways) * kBlockBytes, ways,
                         std::move(pol), 1);
    for (const Addr b : blocks)
        c.access(demand(b));
    return c.stats().demandMisses;
}

std::vector<Addr>
toLlcStream(const std::vector<Addr>& blocks)
{
    std::vector<Addr> out;
    for (const Addr b : blocks)
        out.push_back(blockAddr(b << kBlockShift));
    return out;
}

TEST(MinPolicyTest, ClassicBeladyExample)
{
    // 3-way cache, the canonical page-replacement teaching sequence.
    const std::vector<Addr> seq = {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
    const cache::CacheGeometry g(3 * kBlockBytes, 3);
    auto min = std::make_unique<MinPolicy>(
        g, computeNextUse(toLlcStream(seq)));
    // Textbook OPT takes 7 faults on this sequence with 3 frames;
    // optional bypass cannot do worse.
    EXPECT_LE(missesUnder(seq, std::move(min), 3), 7u);
}

TEST(MinPolicyTest, BypassesNeverReusedBlocks)
{
    // Fill 2 ways with reused blocks, then a one-shot block: with
    // bypass, the one-shot must not evict anything.
    const std::vector<Addr> seq = {1, 2, 99, 1, 2};
    const cache::CacheGeometry g(2 * kBlockBytes, 2);
    auto min = std::make_unique<MinPolicy>(
        g, computeNextUse(toLlcStream(seq)));
    // Misses: 1, 2, 99 (bypassed). Then 1 and 2 hit.
    EXPECT_EQ(missesUnder(seq, std::move(min), 2), 3u);
}

TEST(MinPolicyTest, DetectsStreamMisalignment)
{
    const cache::CacheGeometry g(2 * kBlockBytes, 2);
    MinPolicy min(g, computeNextUse({1, 2}));
    min.onMiss(demand(1), 0);
    min.onMiss(demand(2), 0);
    EXPECT_THROW(min.onMiss(demand(3), 0), FatalError);
}

/** Property sweep: MIN never misses more than LRU or Random. */
class MinOptimality : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MinOptimality, NeverWorseThanLruOnRandomStreams)
{
    Rng rng(GetParam());
    const std::uint32_t ways = 4;
    // Single-set stream over a small block population with skewed
    // popularity so there is real locality to exploit.
    std::vector<Addr> seq;
    for (int i = 0; i < 800; ++i) {
        const Addr hot = rng.below(4);
        const Addr cold = 4 + rng.below(16);
        seq.push_back(rng.chance(0.6) ? hot : cold);
    }
    const cache::CacheGeometry g(ways * kBlockBytes, ways);
    const auto lru_misses =
        missesUnder(seq, std::make_unique<LruPolicy>(g), ways);
    const auto min_misses = missesUnder(
        seq,
        std::make_unique<MinPolicy>(g, computeNextUse(toLlcStream(seq))),
        ways);
    EXPECT_LE(min_misses, lru_misses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinOptimality,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(MinPolicyTest, VictimIsFarthestNextUse)
{
    const std::vector<Addr> seq = {1, 2, 3, /*miss forces victim*/ 4,
                                   1, 2, 3};
    const cache::CacheGeometry g(3 * kBlockBytes, 3);
    cache::PolicyCache c(3 * kBlockBytes, 3,
                         std::make_unique<MinPolicy>(
                             g, computeNextUse(toLlcStream(seq))),
                         1);
    for (std::size_t i = 0; i < 4; ++i)
        c.access(demand(seq[i]));
    // Block 4 is never reused: MIN bypasses it, so 1,2,3 all hit.
    EXPECT_TRUE(c.access(demand(1)).hit);
    EXPECT_TRUE(c.access(demand(2)).hit);
    EXPECT_TRUE(c.access(demand(3)).hit);
}

} // namespace
} // namespace mrp::policy
