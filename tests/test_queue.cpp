/**
 * @file
 * Tests for the distributed work-queue substrate: wire serialization
 * round-trips and refusals, the protocol line codecs, WorkQueue
 * durability and lease state machine (replay, refusal of foreign
 * journals, torn-tail healing, injected journal I/O failures), and
 * broker runs against the real mrp_worker binary exercising the
 * requeue and bounded-retry-exhaustion paths with injected faults.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "queue/broker.hpp"
#include "queue/wire.hpp"
#include "queue/work_queue.hpp"
#include "runner/checkpoint.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "trace/workloads.hpp"
#include "util/fault_injection.hpp"
#include "util/journal.hpp"
#include "util/json_reader.hpp"
#include "util/logging.hpp"

#ifndef MRP_WORKER_BIN
#define MRP_WORKER_BIN "mrp_worker"
#endif

namespace mrp::queue {
namespace {

class QueueTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        fault::disarmAll();
        for (const auto& p : temp_paths_)
            std::remove(p.c_str());
    }

    std::string
    tempPath(const std::string& name)
    {
        const std::string p = "/tmp/mrp_queue_" + name;
        std::remove(p.c_str());
        temp_paths_.push_back(p);
        return p;
    }

    std::vector<std::string> temp_paths_;
};

std::string
readFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
writeFileRaw(const std::string& path, const std::string& content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
}

runner::RunRequest
suiteRequest(unsigned index, const char* policy = "LRU")
{
    sim::SingleCoreConfig cfg;
    cfg.hierarchy.llcBytes = 128 * 1024;
    cfg.seed = 5;
    return runner::RunRequest::singleCore(
        trace::TraceSpec::suite(index, 40000),
        runner::PolicySpec::byName(policy), cfg);
}

// --- wire serialization ---------------------------------------------

TEST_F(QueueTest, RequestJsonRoundTripsSingleCore)
{
    auto req = suiteRequest(3, "SRRIP");
    req.label = "my-label";
    req.config = [&] {
        auto c = std::get<sim::SingleCoreConfig>(req.config);
        c.warmupFraction = 0.125;
        c.warmupInstructions = 2000;
        c.hierarchy.prefetcher.streams = 3;
        return c;
    }();

    const std::string j = requestJson(req);
    const auto back = requestFromJson(j, "test");
    EXPECT_EQ(back.label, "my-label");
    EXPECT_EQ(back.policy.name, "SRRIP");
    ASSERT_EQ(back.sources.size(), 1u);
    EXPECT_EQ(back.sources[0].displayName(),
              req.sources[0].displayName());
    const auto& c = std::get<sim::SingleCoreConfig>(back.config);
    EXPECT_EQ(c.hierarchy.llcBytes, 128u * 1024u);
    EXPECT_EQ(c.warmupInstructions, 2000u);
    EXPECT_EQ(c.seed, 5u);
    EXPECT_EQ(c.hierarchy.prefetcher.streams, 3u);
    // Canonical form: serialize(parse(x)) == x.
    EXPECT_EQ(requestJson(back), j);
}

TEST_F(QueueTest, RequestJsonRoundTripsMpppbPayloadAndMultiCore)
{
    core::MpppbConfig mc;
    mc.thresholds.tauBypass = -7;
    mc.bypassEnabled = false;
    std::array<trace::TraceSpec, 4> mix = {
        trace::TraceSpec::suite(1, 30000),
        trace::TraceSpec::suite(2, 30000),
        trace::TraceSpec::suite(3, 30000),
        trace::TraceSpec::suite(4, 30000),
    };
    sim::MultiCoreConfig cfg;
    cfg.measureCycles = 123456;
    auto req = runner::RunRequest::multiCore(
        std::move(mix), runner::PolicySpec::mpppb(mc), cfg);

    const std::string j = requestJson(req);
    const auto back = requestFromJson(j, "test");
    ASSERT_EQ(back.sources.size(), 4u);
    ASSERT_TRUE(back.isMultiCore());
    ASSERT_NE(back.policy.mpppbConfig, nullptr);
    EXPECT_EQ(back.policy.mpppbConfig->thresholds.tauBypass, -7);
    EXPECT_FALSE(back.policy.mpppbConfig->bypassEnabled);
    EXPECT_EQ(std::get<sim::MultiCoreConfig>(back.config).measureCycles,
              123456u);
    EXPECT_EQ(requestJson(back), j);
}

TEST_F(QueueTest, RequestJsonRefusesWhatCannotCrossTheWire)
{
    // Factory policies are closures.
    auto factory_req = suiteRequest(1);
    factory_req.policy = runner::PolicySpec::custom(
        "X", [](const cache::CacheGeometry&, unsigned) {
            return std::unique_ptr<cache::LlcPolicy>();
        });
    try {
        requestJson(factory_req);
        FAIL() << "factory policy must be refused";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }

    // Telemetry-enabled configs are process-local object graphs.
    auto telem_req = suiteRequest(1);
    telem_req.config = [&] {
        auto c = std::get<sim::SingleCoreConfig>(telem_req.config);
        c.telemetry.enabled = true;
        return c;
    }();
    try {
        requestJson(telem_req);
        FAIL() << "telemetry config must be refused";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }

    // Borrowed specs point into this process's memory.
    const auto t = trace::makeSuiteTrace(2, 20000);
    auto borrowed_req = runner::RunRequest::singleCore(
        trace::TraceSpec::borrowed(t), runner::PolicySpec::byName("LRU"));
    try {
        requestJson(borrowed_req);
        FAIL() << "borrowed spec must be refused";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

// --- protocol lines --------------------------------------------------

TEST_F(QueueTest, ProtocolLinesRoundTrip)
{
    const auto hello = parseHello(helloLine(4242));
    ASSERT_TRUE(hello.has_value());
    EXPECT_EQ(hello->pid, 4242u);
    EXPECT_EQ(hello->schema, kWireSchemaVersion);

    const auto hb = parseHeartbeat(heartbeatLine(7, 0xabcdu, 19));
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(hb->jobId, 7u);
    EXPECT_EQ(hb->spanId, 0xabcdu);
    EXPECT_EQ(hb->seq, 19u);

    const std::string payload = "{\"k\": [1, 2]}";
    const obs::SpanContext ctx{0x1122334455667788ull, 0x99aabbccddeeff00ull};
    const auto job = parseJob(jobLine(3, ctx, payload));
    ASSERT_TRUE(job.has_value());
    EXPECT_EQ(job->jobId, 3u);
    EXPECT_EQ(job->traceId, ctx.traceId);
    EXPECT_EQ(job->spanId, ctx.spanId);
    EXPECT_EQ(job->json, payload);

    const auto res = parseResult(resultLine(9, ctx.spanId, payload));
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->jobId, 9u);
    EXPECT_EQ(res->spanId, ctx.spanId);
    EXPECT_EQ(res->json, payload);

    const auto ob = parseObs(obsLine(5, ctx.spanId, payload));
    ASSERT_TRUE(ob.has_value());
    EXPECT_EQ(ob->jobId, 5u);
    EXPECT_EQ(ob->spanId, ctx.spanId);
    EXPECT_EQ(ob->json, payload);
}

TEST_F(QueueTest, ProtocolParsersRejectGarbageAndBadChecksums)
{
    EXPECT_FALSE(parseHello("HELLO").has_value());
    EXPECT_FALSE(parseHello("HELLO x y").has_value());
    EXPECT_FALSE(parseHeartbeat("HB 1").has_value());
    // v1-shaped lines (no span context) are rejected at parse time.
    EXPECT_FALSE(parseHeartbeat("HB 1 19").has_value());
    EXPECT_FALSE(parseJob("JOB 1 deadbeef {}").has_value());
    EXPECT_FALSE(parseResult("").has_value());
    EXPECT_FALSE(parseResult("RESULT 1").has_value());
    // Span ids must be exactly 16 lowercase hex digits.
    EXPECT_FALSE(
        parseResult("RESULT 1 DEADBEEF00000000 deadbeef {}")
            .has_value());
    // A corrupted payload byte must fail the CRC frame.
    std::string line = resultLine(1, 0xbeef, "{\"a\": 1}");
    line[line.size() - 2] ^= 0x20;
    EXPECT_FALSE(parseResult(line).has_value());
}

// --- WorkQueue -------------------------------------------------------

TEST_F(QueueTest, QueueReplaysStateAcrossReopen)
{
    const std::string path = tempPath("replay.jsonl");
    {
        WorkQueue q(path, "fp1");
        q.ensureEnqueued(0, "{\"r\": 0}");
        q.ensureEnqueued(1, "{\"r\": 1}");
        q.ensureEnqueued(2, "{\"r\": 2}");
        EXPECT_EQ(q.lease(0), 1u);
        q.complete(0, "{\"res\": 0}");
        EXPECT_EQ(q.lease(1), 1u);
        q.requeue(1, "worker-exit", ErrorCode::Resource);
        EXPECT_EQ(q.lease(1), 2u);
        // Job 1 left Leased, job 2 untouched; "crash" here.
    }
    WorkQueue q(path, "fp1");
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.doneCount(), 1u);
    EXPECT_EQ(q.job(0).state, JobState::Done);
    EXPECT_EQ(q.job(0).resultJson, "{\"res\": 0}");
    // The in-flight lease died with the broker: back to Pending, with
    // its attempt count preserved for the lease budget.
    EXPECT_EQ(q.job(1).state, JobState::Pending);
    EXPECT_EQ(q.job(1).attempts, 2u);
    EXPECT_EQ(q.job(2).state, JobState::Pending);
    EXPECT_EQ(q.pendingIds(), (std::vector<std::uint64_t>{1, 2}));
    // Enqueues replay idempotently; next lease continues the count.
    q.ensureEnqueued(1, "{\"r\": 1}");
    EXPECT_EQ(q.lease(1), 3u);
}

TEST_F(QueueTest, QueueToleratesTornTail)
{
    const std::string path = tempPath("torn.jsonl");
    {
        WorkQueue q(path, "fp1");
        q.ensureEnqueued(0, "{\"r\": 0}");
        q.ensureEnqueued(1, "{\"r\": 1}");
    }
    writeFileRaw(path, readFile(path) + "deadbeef {\"type\":\"enq");
    WorkQueue q(path, "fp1");
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pendingIds().size(), 2u);
}

TEST_F(QueueTest, QueueRefusesHeaderlessJournal)
{
    const std::string path = tempPath("headerless.jsonl");
    // A checkpoint journal from the pre-queue era: valid frames, but
    // no queue header record.
    writeFileRaw(path,
                 journal::frameLine("{\"index\": 0, \"ok\": true}"));
    try {
        WorkQueue q(path, "fp1");
        FAIL() << "headerless journal must be refused";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
        EXPECT_NE(std::string(e.what()).find("header"),
                  std::string::npos);
    }
}

TEST_F(QueueTest, QueueRefusesFutureSchema)
{
    const std::string path = tempPath("schema.jsonl");
    writeFileRaw(path,
                 journal::frameLine("{\"type\": \"header\", \"schema\": "
                                    "999, \"fingerprint\": \"fp1\"}"));
    try {
        WorkQueue q(path, "fp1");
        FAIL() << "foreign schema must be refused";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
        EXPECT_NE(std::string(e.what()).find("schema"),
                  std::string::npos);
    }
}

TEST_F(QueueTest, QueueRestartsFreshOnFingerprintMismatch)
{
    const std::string path = tempPath("fp.jsonl");
    {
        WorkQueue q(path, "fp1");
        q.ensureEnqueued(0, "{\"r\": 0}");
        q.lease(0);
        q.complete(0, "{\"res\": 0}");
    }
    // A different batch reusing the path: scratch semantics, not
    // refusal — the stale queue is discarded.
    WorkQueue q(path, "fp2");
    EXPECT_EQ(q.size(), 0u);
    q.ensureEnqueued(0, "{\"r\": other}");
    EXPECT_EQ(q.job(0).state, JobState::Pending);
}

TEST_F(QueueTest, QueueRefusesMismatchedRequeuedEnqueue)
{
    const std::string path = tempPath("mismatch.jsonl");
    WorkQueue q(path, "fp1");
    q.ensureEnqueued(0, "{\"r\": 0}");
    try {
        q.ensureEnqueued(0, "{\"r\": different}");
        FAIL() << "byte-different re-enqueue must be refused";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

TEST_F(QueueTest, QueueJournalIoFaultsSurfaceAsIo)
{
    {
        fault::Scoped f("queue.journal.open", {});
        try {
            WorkQueue q(tempPath("io_open.jsonl"), "fp1");
            FAIL() << "injected open failure must surface";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Io);
        }
    }
    WorkQueue q(tempPath("io_write.jsonl"), "fp1");
    fault::Scoped f("queue.journal.write", {});
    try {
        q.ensureEnqueued(0, "{\"r\": 0}");
        FAIL() << "injected write failure must surface";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
    }
}

// --- broker + real worker processes ---------------------------------

BrokerConfig
smallBrokerConfig(const std::string& queue_path, unsigned workers)
{
    BrokerConfig cfg;
    cfg.workerBin = MRP_WORKER_BIN;
    cfg.workers = workers;
    cfg.queuePath = queue_path;
    cfg.heartbeatMs = 10;
    cfg.backoffSeconds = 0.001;
    return cfg;
}

std::vector<runner::RunRequest>
smallBatch()
{
    std::vector<runner::RunRequest> batch;
    for (unsigned w : {1u, 2u})
        for (const char* p : {"LRU", "SRRIP"})
            batch.push_back(suiteRequest(w, p));
    return batch;
}

TEST_F(QueueTest, BrokerMatchesInProcessRunnerByteForByte)
{
    const auto batch = smallBatch();
    const auto reference = runner::ExperimentRunner(1).run(batch);
    for (unsigned workers : {1u, 2u}) {
        const Broker broker(smallBrokerConfig(
            tempPath("basic_w" + std::to_string(workers) + ".jsonl"),
            workers));
        const auto set = broker.run(batch);
        EXPECT_EQ(runner::toJson(set), runner::toJson(reference));
        EXPECT_EQ(runner::toCsv(set), runner::toCsv(reference));
    }
}

TEST_F(QueueTest, TransientWorkerFaultIsRequeuedThenSucceeds)
{
    // The worker's first execution attempt fails with an injected
    // retryable I/O error (maxFires=1); the broker must requeue and
    // the second lease — same worker, fault exhausted — succeeds.
    telemetry::MetricsRegistry metrics;
    auto cfg = smallBrokerConfig(tempPath("transient.jsonl"), 1);
    cfg.metrics = &metrics;
    cfg.workerArgs = {"--fault", "runner.execute:io:1:1"};
    const Broker broker(cfg);

    const auto set = broker.run({suiteRequest(1)});
    ASSERT_EQ(set.results.size(), 1u);
    EXPECT_TRUE(set.results[0].ok()) << set.results[0].error;
    EXPECT_EQ(metrics.counter("queue.requeued").value(), 1);
    EXPECT_EQ(metrics.counter("queue.requeue_exhausted").value(), 0);

    // And the recovered result is still byte-identical.
    const auto reference =
        runner::ExperimentRunner(1).run({suiteRequest(1)});
    EXPECT_EQ(runner::toJson(set), runner::toJson(reference));
}

TEST_F(QueueTest, PersistentFaultExhaustsLeaseBudget)
{
    // Every attempt fails (maxFires=-1): the job must be requeued
    // maxAttempts-1 times, then completed as a failed-typed result
    // carrying the relayed error code.
    telemetry::MetricsRegistry metrics;
    auto cfg = smallBrokerConfig(tempPath("exhaust.jsonl"), 1);
    cfg.metrics = &metrics;
    cfg.maxAttempts = 2;
    cfg.workerArgs = {"--fault", "runner.execute:io:1:-1"};
    const Broker broker(cfg);

    const auto set = broker.run({suiteRequest(1, "SRRIP")});
    ASSERT_EQ(set.results.size(), 1u);
    EXPECT_FALSE(set.results[0].ok());
    EXPECT_EQ(set.results[0].errorCode, ErrorCode::Io);
    EXPECT_NE(set.results[0].error.find("after 2 attempt(s)"),
              std::string::npos)
        << set.results[0].error;
    // Identity fields survive failure so reports stay well-formed.
    EXPECT_EQ(set.results[0].policy, "SRRIP");
    EXPECT_FALSE(set.results[0].benchmark.empty());
    EXPECT_EQ(metrics.counter("queue.requeue_exhausted").value(), 1);
    EXPECT_EQ(metrics.counter("queue.requeued").value(), 1);
}

TEST_F(QueueTest, BrokerRefusesMissingWorkerBinary)
{
    auto cfg = smallBrokerConfig(tempPath("nobin.jsonl"), 1);
    cfg.workerBin = "/nonexistent/mrp_worker";
    cfg.workerRestartBudget = 0;
    const Broker broker(cfg);
    try {
        broker.run({suiteRequest(1)});
        FAIL() << "unspawnable worker pool must be fatal";
    } catch (const FatalError& e) {
        EXPECT_TRUE(e.code() == ErrorCode::Resource ||
                    e.code() == ErrorCode::Io)
            << errorCodeName(e.code());
    }
}

TEST_F(QueueTest, BrokerJournalsCompletionsBeforeQueueComplete)
{
    // With a checkpoint journal attached, every Done job in the queue
    // must already be present in the journal — the crash-consistency
    // ordering recordCompletion guarantees.
    const std::string journal = tempPath("ordering_journal.jsonl");
    const std::string qpath = tempPath("ordering_queue.jsonl");
    const Broker broker(smallBrokerConfig(qpath, 2));
    runner::RunnerOptions opts;
    opts.journalPath = journal;
    const auto batch = smallBatch();
    const auto set = broker.run(batch, opts);
    ASSERT_EQ(set.results.size(), batch.size());

    const auto restored = runner::loadJournal(journal);
    EXPECT_EQ(restored.size(), batch.size());
    // A fresh broker over the same queue path re-runs nothing: all
    // jobs replay as Done (the execution odometer of choice here is
    // the queue journal itself — no new lease records).
    const std::string before = readFile(qpath);
    const auto again =
        Broker(smallBrokerConfig(qpath, 1)).run(batch);
    EXPECT_EQ(runner::toJson(again), runner::toJson(set));
    EXPECT_EQ(readFile(qpath), before);
}

} // namespace
} // namespace mrp::queue
