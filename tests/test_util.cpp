/**
 * @file
 * Unit tests for the utility layer: bit manipulation, saturating
 * counters, RNG, history buffer, and numeric helpers.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/bitfield.hpp"
#include "util/hash.hpp"
#include "util/history.hpp"
#include "util/logging.hpp"
#include "util/math_util.hpp"
#include "util/types.hpp"
#include "util/rng.hpp"
#include "util/sat_counter.hpp"

namespace mrp {
namespace {

TEST(Bitfield, ExtractsInclusiveRanges)
{
    EXPECT_EQ(bits(0xFF, 0, 3), 0xFu);
    EXPECT_EQ(bits(0xF0, 4, 7), 0xFu);
    EXPECT_EQ(bits(0xABCD, 0, 15), 0xABCDu);
    EXPECT_EQ(bits(0x8000000000000000ull, 63, 63), 1u);
}

TEST(Bitfield, SwapsReversedBounds)
{
    // The paper prints pc(9,11,7,16,0) with B > E; ranges normalize.
    EXPECT_EQ(bits(0xF0, 7, 4), 0xFu);
}

TEST(Bitfield, OutOfRangeBitsReadZero)
{
    EXPECT_EQ(bits(0xFFFFFFFFFFFFFFFFull, 64, 70), 0u);
    EXPECT_EQ(bits(0xFFFFFFFFFFFFFFFFull, 60, 100),
              0xFu); // bits 60..63 only
}

TEST(Bitfield, FoldXorReducesWidth)
{
    // 0xAB ^ 0xCD = 0x66
    EXPECT_EQ(foldXor(0xABCD, 8), 0xABu ^ 0xCDu);
    EXPECT_EQ(foldXor(0, 8), 0u);
    EXPECT_EQ(foldXor(0x12345, 0), 0u);
    EXPECT_EQ(foldXor(42, 64), 42u);
}

TEST(Bitfield, FoldXorStaysInWidth)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.next();
        for (unsigned w : {1u, 2u, 5u, 8u, 13u})
            EXPECT_LT(foldXor(v, w), 1ull << w);
    }
}

TEST(Bitfield, Log2CeilAndPow2)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(256), 8u);
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(4096));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(48));
}

TEST(SatCounterTest, SaturatesAtBounds)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.maxValue(), 3u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.isSet());
    c.decrement();
    EXPECT_EQ(c.value(), 2u);
}

TEST(SatCounterTest, RejectsBadConstruction)
{
    EXPECT_THROW(SatCounter(0, 0), PanicError);
    EXPECT_THROW(SatCounter(2, 9), PanicError);
}

TEST(SignedWeightTest, SixBitRangeMatchesPaper)
{
    SignedWeight w(6, 0);
    EXPECT_EQ(w.minValue(), -32);
    EXPECT_EQ(w.maxValue(), 31);
    for (int i = 0; i < 100; ++i)
        w.increment();
    EXPECT_EQ(w.value(), 31);
    for (int i = 0; i < 200; ++i)
        w.decrement();
    EXPECT_EQ(w.value(), -32);
    w.set(1000);
    EXPECT_EQ(w.value(), 31);
    w.set(-1000);
    EXPECT_EQ(w.value(), -32);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.below(17), 17u);
        const auto v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
    EXPECT_THROW(r.below(0), PanicError);
}

TEST(RngTest, UniformCoversRange)
{
    Rng r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(HistoryTest, MostRecentFirst)
{
    History<int> h(4, -1);
    EXPECT_EQ(h.recent(0), -1); // unwritten slots read the fill value
    h.push(1);
    h.push(2);
    h.push(3);
    EXPECT_EQ(h.recent(0), 3);
    EXPECT_EQ(h.recent(1), 2);
    EXPECT_EQ(h.recent(2), 1);
    h.push(4);
    h.push(5); // evicts 1
    EXPECT_EQ(h.recent(0), 5);
    EXPECT_EQ(h.recent(3), 2);
    EXPECT_THROW(h.recent(4), PanicError);
}

TEST(MathUtil, GeomeanAndMean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_THROW(geomean({}), FatalError);
    EXPECT_THROW(geomean({0.0}), FatalError);
    EXPECT_THROW(mean({}), FatalError);
}

TEST(HashTest, MixIsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(123), mix64(123));
    std::set<std::uint32_t> idx;
    for (std::uint64_t i = 0; i < 4096; ++i)
        idx.insert(hashToIndex(i, 256));
    EXPECT_EQ(idx.size(), 256u);
    EXPECT_EQ(hashToIndex(99, 1), 0u);
}

TEST(HashTest, SkewedHashesAreIndependent)
{
    int collisions = 0;
    for (std::uint64_t pc = 0; pc < 1000; ++pc)
        if (skewedHash(pc, 0) % 4096 == skewedHash(pc, 1) % 4096)
            ++collisions;
    EXPECT_LT(collisions, 10);
}

TEST(Types, BlockArithmetic)
{
    EXPECT_EQ(blockAddr(0), 0u);
    EXPECT_EQ(blockAddr(63), 0u);
    EXPECT_EQ(blockAddr(64), 1u);
    EXPECT_EQ(blockOffset(0x1234), 0x34u & 63u);
    EXPECT_EQ(kBlockBytes, 64u);
}

} // namespace
} // namespace mrp
