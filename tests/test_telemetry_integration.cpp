/**
 * @file
 * End-to-end telemetry tests: a telemetry-enabled run must (a) not
 * perturb the simulation, (b) produce metrics that reconcile exactly
 * with the driver's LevelStats-derived result fields, and (c) flow
 * through the parallel runner into the JSON/CSV/metrics/trace
 * exports deterministically.
 */

#include <gtest/gtest.h>

#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "sim/multi_core.hpp"
#include "sim/single_core.hpp"
#include "telemetry/session.hpp"
#include "trace/source.hpp"
#include "trace/spec.hpp"
#include "trace/workloads.hpp"

namespace mrp {
namespace {

const telemetry::MetricSnapshot&
metric(const telemetry::RunTelemetry& t, const std::string& name)
{
    const auto* m = t.finalSnapshot.find(name);
    EXPECT_NE(m, nullptr) << "missing metric " << name;
    static const telemetry::MetricSnapshot empty{};
    return m ? *m : empty;
}

sim::SingleCoreConfig
telemetryConfig(std::uint64_t epoch = 10000)
{
    sim::SingleCoreConfig cfg;
    cfg.telemetry.enabled = true;
    cfg.telemetry.epochAccesses = epoch;
    return cfg;
}

TEST(TelemetryIntegrationTest, DisabledRunCarriesNoTelemetry)
{
    const auto tr = trace::makeSuiteTrace(4, 120000); // gups.fit
    trace::MaterializedTraceSource src(tr);
    const auto r =
        sim::runSingleCore(src, sim::makePolicyFactory("MPPPB"), {});
    EXPECT_EQ(r.telemetry, nullptr);
}

TEST(TelemetryIntegrationTest, TelemetryDoesNotPerturbTheRun)
{
    const auto tr = trace::makeSuiteTrace(4, 120000);
    const auto factory = sim::makePolicyFactory("MPPPB");
    // One source serves both runs: the driver rewinds at entry.
    trace::MaterializedTraceSource src(tr);
    const auto plain = sim::runSingleCore(src, factory, {});
    const auto instrumented =
        sim::runSingleCore(src, factory, telemetryConfig());
    EXPECT_EQ(plain.ipc, instrumented.ipc);
    EXPECT_EQ(plain.mpki, instrumented.mpki);
    EXPECT_EQ(plain.llcDemandAccesses,
              instrumented.llcDemandAccesses);
    EXPECT_EQ(plain.llcDemandMisses, instrumented.llcDemandMisses);
    EXPECT_EQ(plain.llcBypasses, instrumented.llcBypasses);
    ASSERT_NE(instrumented.telemetry, nullptr);
}

TEST(TelemetryIntegrationTest, MetricsReconcileWithLevelStats)
{
    const auto tr = trace::makeSuiteTrace(0, 150000); // scan.a
    trace::MaterializedTraceSource src(tr);
    const auto r = sim::runSingleCore(
        src, sim::makePolicyFactory("MPPPB"), telemetryConfig());
    ASSERT_NE(r.telemetry, nullptr);
    const auto& t = *r.telemetry;

    // The llc.* counters mirror the LevelStats-derived result fields.
    EXPECT_EQ(metric(t, "llc.demand_accesses").counter,
              r.llcDemandAccesses);
    EXPECT_EQ(metric(t, "llc.demand_misses").counter,
              r.llcDemandMisses);
    EXPECT_EQ(metric(t, "llc.bypasses").counter, r.llcBypasses);
    EXPECT_EQ(metric(t, "llc.demand_accesses").counter,
              metric(t, "llc.demand_hits").counter +
                  metric(t, "llc.demand_misses").counter);

    // Every observed LLC access is either a reuse or a cold touch.
    const auto& reuse = metric(t, "llc.reuse_distance").histogram;
    const std::uint64_t observed =
        metric(t, "llc.demand_accesses").counter +
        metric(t, "llc.prefetch_accesses").counter +
        metric(t, "llc.writeback_accesses").counter;
    EXPECT_EQ(reuse.total + metric(t, "llc.reuse.cold_accesses").counter,
              observed);
    EXPECT_EQ(t.accesses, observed);
    EXPECT_GE(t.epochs.size(), 1u);

    // MPPPB introspection: per-feature weight histograms, confidence
    // split by hit/miss, placement decision counts.
    unsigned feature_hists = 0;
    for (const auto& m : t.finalSnapshot.metrics)
        if (m.name.rfind("predictor.feature.", 0) == 0 &&
            m.kind == telemetry::MetricSnapshot::Kind::Histogram)
            ++feature_hists;
    EXPECT_EQ(feature_hists, 16u); // Table 1(a) feature count
    const auto& hit = metric(t, "predictor.confidence.hit").histogram;
    const auto& miss =
        metric(t, "predictor.confidence.miss").histogram;
    EXPECT_GT(hit.total + miss.total, 0u);
    const std::uint64_t placements =
        metric(t, "mpppb.placement.pi1").counter +
        metric(t, "mpppb.placement.pi2").counter +
        metric(t, "mpppb.placement.pi3").counter +
        metric(t, "mpppb.placement.mru").counter;
    EXPECT_GT(placements, 0u);
    EXPECT_LE(placements, metric(t, "llc.fills").counter);
}

TEST(TelemetryIntegrationTest, MultiCoreRunCarriesTelemetry)
{
    sim::MultiCoreConfig cfg;
    cfg.warmupInstructions = 300000;
    cfg.measureCycles = 120000;
    cfg.telemetry.enabled = true;
    cfg.telemetry.epochAccesses = 10000;
    const auto t0 = trace::makeSuiteTrace(7, 200000);
    const auto t1 = trace::makeSuiteTrace(9, 200000);
    const auto t2 = trace::makeSuiteTrace(14, 200000);
    const auto t3 = trace::makeSuiteTrace(25, 200000);
    trace::MaterializedTraceSource s0(t0), s1(t1), s2(t2), s3(t3);
    const auto r = sim::runMultiCore(
        {&s0, &s1, &s2, &s3}, sim::makePolicyFactory("MPPPB-MC"), cfg);
    ASSERT_NE(r.telemetry, nullptr);
    const auto& t = *r.telemetry;
    EXPECT_EQ(metric(t, "llc.demand_misses").counter,
              r.llcDemandMisses);
    const auto& reuse = metric(t, "llc.reuse_distance").histogram;
    EXPECT_EQ(reuse.total + metric(t, "llc.reuse.cold_accesses").counter,
              t.accesses);
}

TEST(TelemetryIntegrationTest, RunnerReportsEmbedMetrics)
{
    const auto tr = trace::makeSuiteTrace(0, 150000);
    std::vector<runner::RunRequest> batch;
    batch.push_back(runner::RunRequest::singleCore(
        trace::TraceSpec::borrowed(tr),
        runner::PolicySpec::byName("LRU"), telemetryConfig()));
    batch.push_back(runner::RunRequest::singleCore(
        trace::TraceSpec::borrowed(tr),
        runner::PolicySpec::byName("MPPPB"), telemetryConfig()));

    const runner::ExperimentRunner pool(2);
    const auto set = pool.run(batch);
    ASSERT_EQ(set.results.size(), 2u);
    ASSERT_NE(set.results[0].telemetry, nullptr);
    ASSERT_NE(set.results[1].telemetry, nullptr);

    const std::string json = runner::toJson(set);
    EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
    EXPECT_NE(json.find("\"llc.reuse_distance\""), std::string::npos);
    const std::string csv = runner::toCsv(set);
    EXPECT_NE(csv.find("# metrics\nindex,metric,value\n"),
              std::string::npos);
    EXPECT_NE(csv.find("1,mpppb.placement.pi1,"), std::string::npos);

    const std::string metrics = runner::toMetricsJson(set);
    EXPECT_NE(metrics.find("\"policy\": \"MPPPB\""),
              std::string::npos);
    const std::string trace_doc = runner::toTraceJson(set);
    EXPECT_NE(trace_doc.find("\"traceEvents\": ["), std::string::npos);
    EXPECT_NE(trace_doc.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(trace_doc.find("\"pid\": 1"), std::string::npos);

    // Determinism: a single-worker execution of the same batch must
    // serialize to the same bytes, telemetry included.
    const runner::ExperimentRunner serial(1);
    const auto set1 = serial.run(batch);
    EXPECT_EQ(runner::toJson(set1), json);
    EXPECT_EQ(runner::toCsv(set1), csv);
    EXPECT_EQ(runner::toMetricsJson(set1), metrics);
    EXPECT_EQ(runner::toTraceJson(set1), trace_doc);
}

TEST(TelemetryIntegrationTest, ObserverAndTelemetryAreExclusive)
{
    const auto tr = trace::makeSuiteTrace(4, 120000);
    trace::MaterializedTraceSource src(tr);
    cache::LlcObserver obs;
    EXPECT_THROW(sim::runSingleCoreObserved(
                     src, sim::makePolicyFactory("LRU"),
                     telemetryConfig(), &obs),
                 FatalError);
}

} // namespace
} // namespace mrp
