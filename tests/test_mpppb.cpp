/**
 * @file
 * Tests for the MPPPB policy: configuration presets, placement
 * mapping, bypass gating, promotion suppression, and both substrates.
 */

#include <gtest/gtest.h>

#include "cache/policy_cache.hpp"
#include "core/feature_sets.hpp"
#include "core/mpppb.hpp"

namespace mrp::core {
namespace {

cache::CacheGeometry
geom()
{
    return cache::CacheGeometry(2 * 1024 * 1024, 16);
}

cache::AccessInfo
access(Pc pc, Addr addr)
{
    cache::AccessInfo info;
    info.pc = pc;
    info.addr = addr;
    info.type = cache::AccessType::Load;
    return info;
}

TEST(MpppbConfigTest, PresetsAreWellFormed)
{
    const auto st = singleThreadMpppbConfig();
    EXPECT_EQ(st.substrate, Substrate::Mdpp);
    EXPECT_EQ(st.predictor.features.size(), 16u);
    EXPECT_GT(st.thresholds.tau[0], st.thresholds.tau[1]);
    EXPECT_GT(st.thresholds.tau[1], st.thresholds.tau[2]);

    const auto mc = multiCoreMpppbConfig();
    EXPECT_EQ(mc.substrate, Substrate::Srrip);
    for (const auto p : mc.thresholds.pi)
        EXPECT_LE(p, 3u);
}

TEST(MpppbConfigTest, RejectsOutOfRangePlacements)
{
    auto cfg = singleThreadMpppbConfig();
    cfg.thresholds.pi = {16, 10, 5}; // 16-way MDPP: positions 0..15
    EXPECT_THROW(MpppbPolicy(geom(), 1, cfg), FatalError);

    auto mcfg = multiCoreMpppbConfig();
    mcfg.thresholds.pi = {4, 2, 1}; // 2-bit RRPV: 0..3
    EXPECT_THROW(MpppbPolicy(geom(), 4, mcfg), FatalError);
}

TEST(MpppbPolicyTest, VictimComesFromSubstrate)
{
    auto cfg = singleThreadMpppbConfig();
    MpppbPolicy pol(geom(), 1, cfg);
    // Freshly constructed: tree-PLRU victim of set 0 is way 0.
    EXPECT_EQ(pol.victimWay(access(0, 0), 0), 0u);
}

/**
 * Feed the policy through a real PolicyCache with a dead stream and
 * check that bypass engages once sets are full.
 */
TEST(MpppbPolicyTest, DeadStreamEventuallyBypasses)
{
    auto cfg = singleThreadMpppbConfig();
    auto pol = std::make_unique<MpppbPolicy>(geom(), 1, cfg);
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    // Touch-once traffic from one PC, spread over all sets.
    Rng rng(9);
    for (int i = 0; i < 400000; ++i) {
        const Addr a = static_cast<Addr>(i) * 64 * 7 + 64;
        llc.access(access(0x400000, a));
    }
    EXPECT_GT(llc.stats().bypasses, 10000u);
}

TEST(MpppbPolicyTest, HotSetIsNotBypassed)
{
    auto cfg = singleThreadMpppbConfig();
    auto pol = std::make_unique<MpppbPolicy>(geom(), 1, cfg);
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    // A small, heavily reused set of blocks: hits throughout.
    std::uint64_t hits = 0;
    const int distinct = 1024;
    for (int round = 0; round < 50; ++round)
        for (int b = 0; b < distinct; ++b)
            hits +=
                llc.access(access(0x500000, static_cast<Addr>(b) * 64))
                        .hit
                    ? 1
                    : 0;
    // After the cold pass, essentially everything must hit.
    EXPECT_GT(hits, 48u * distinct);
    EXPECT_LT(llc.stats().bypasses, 200u);
}

TEST(MpppbPolicyTest, WritebacksNeverBypass)
{
    auto cfg = singleThreadMpppbConfig();
    auto pol = std::make_unique<MpppbPolicy>(geom(), 1, cfg);
    auto* raw = pol.get();
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    // Make the predictor hate everything first.
    for (int i = 0; i < 300000; ++i)
        llc.access(access(0x400000, static_cast<Addr>(i) * 64 * 5));
    cache::AccessInfo wb;
    wb.pc = cache::kWritebackPc;
    wb.addr = 0x12345ull * 64;
    wb.type = cache::AccessType::Writeback;
    EXPECT_FALSE(raw->shouldBypass(wb, 0));
}

TEST(MpppbPolicyTest, SrripSubstrateRunsAndBypasses)
{
    auto cfg = multiCoreMpppbConfig();
    auto pol = std::make_unique<MpppbPolicy>(geom(), 1, cfg);
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    for (int i = 0; i < 400000; ++i)
        llc.access(access(0x400000, static_cast<Addr>(i) * 64 * 7));
    EXPECT_GT(llc.stats().bypasses, 10000u);
}

TEST(MpppbPolicyTest, BypassCanBeDisabled)
{
    auto cfg = singleThreadMpppbConfig();
    cfg.bypassEnabled = false;
    auto pol = std::make_unique<MpppbPolicy>(geom(), 1, cfg);
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    for (int i = 0; i < 200000; ++i)
        llc.access(access(0x400000, static_cast<Addr>(i) * 64 * 7));
    EXPECT_EQ(llc.stats().bypasses, 0u);
}

/** Placement mapping follows the threshold ladder (§3.6). */
TEST(MpppbPlacementTest, ThresholdLadder)
{
    // Exercise placementFor indirectly: craft thresholds and check
    // onFill positions via the MDPP tree.
    auto cfg = singleThreadMpppbConfig();
    cfg.predictor.features = {FeatureSpec::parse("bias(18,0)")};
    cfg.thresholds.tauBypass = 1000; // never bypass
    cfg.thresholds.tau = {20, 10, 0};
    cfg.thresholds.pi = {15, 12, 8};
    MpppbPolicy pol(geom(), 1, cfg);
    // With zero-weight tables the confidence is 0, which is not above
    // tau[2]=0, so placement is the MRU position 0.
    const auto info = access(0x400000, 64 * 5);
    pol.onMiss(info, 0);
    pol.onFill(info, 0, 3);
    // Confirm the block landed protected: it is not the tree victim.
    EXPECT_NE(pol.victimWay(info, 0), 3u);
}

} // namespace
} // namespace mrp::core
