/**
 * @file
 * Tests for the multi-tenant LLC subsystem: the way-partition map,
 * the tenancy validator, the QoS controller's deterministic resize
 * schedule, fixed-partition isolation (a tenant's measured outcome is
 * a pure function of its own stream, byte-identical under any
 * co-runner), the EHC baseline, the scenario builders, the MRC
 * partition advisor, and the tenancy wire/journal round trips.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mrc/partition_advisor.hpp"
#include "policy/ehc.hpp"
#include "queue/wire.hpp"
#include "runner/checkpoint.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "runner/scenarios.hpp"
#include "sim/multi_core.hpp"
#include "tenant/partition.hpp"
#include "tenant/qos.hpp"
#include "trace/source.hpp"
#include "trace/spec.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace mrp {
namespace {

// --------------------------------------------------------------------
// PartitionMap

TEST(PartitionMapTest, AssignsContiguousRangesInTenantOrder)
{
    const tenant::PartitionMap map({4, 2, 10}, 16);
    EXPECT_EQ(map.tenants(), 3u);
    EXPECT_EQ(map.maskOf(0), 0xFull);
    EXPECT_EQ(map.maskOf(1), 0x30ull);
    EXPECT_EQ(map.maskOf(2), 0xFFC0ull);
    EXPECT_EQ(map.waysOf(0), 4u);
    EXPECT_EQ(map.waysOf(2), 10u);
    EXPECT_EQ(map.tenantOfWay(0), 0u);
    EXPECT_EQ(map.tenantOfWay(5), 1u);
    EXPECT_EQ(map.tenantOfWay(15), 2u);
}

TEST(PartitionMapTest, MoveWayTakesDonorsHighestWay)
{
    tenant::PartitionMap map({8, 8}, 16);
    map.moveWay(1, 0);
    // Donor's highest way (15) changes hands; masks stay disjoint.
    EXPECT_EQ(map.waysOf(0), 9u);
    EXPECT_EQ(map.waysOf(1), 7u);
    EXPECT_EQ(map.tenantOfWay(15), 0u);
    EXPECT_EQ(map.tenantOfWay(14), 1u);
    EXPECT_EQ(map.maskOf(0) & map.maskOf(1), 0ull);
    EXPECT_EQ(map.maskOf(0) | map.maskOf(1), 0xFFFFull);
}

TEST(PartitionMapTest, RejectsBadGeometry)
{
    EXPECT_THROW(tenant::PartitionMap({8, 9}, 16), FatalError);
    EXPECT_THROW(tenant::PartitionMap({16, 0}, 16), FatalError);
    tenant::PartitionMap map({15, 1}, 16);
    EXPECT_THROW(map.moveWay(1, 0), PanicError); // donor at 1 way
}

TEST(TenancyConfigTest, DescribeInvalidCatchesMisconfiguration)
{
    tenant::TenancyConfig cfg;
    cfg.tenants.resize(2);
    cfg.tenants[0].ways = 8;
    cfg.tenants[1].ways = 8;
    EXPECT_TRUE(tenant::describeInvalid(cfg, 16, 2).empty());
    EXPECT_FALSE(tenant::describeInvalid(cfg, 16, 3).empty());
    EXPECT_FALSE(tenant::describeInvalid(cfg, 32, 2).empty());
    cfg.tenants[1].ways = 0;
    EXPECT_FALSE(tenant::describeInvalid(cfg, 8, 2).empty());
}

// --------------------------------------------------------------------
// QosController

TEST(QosControllerTest, GrantsAfterConsecutiveBreaches)
{
    tenant::TenancyConfig cfg;
    cfg.tenants.resize(2);
    cfg.tenants[0].ways = 8;
    cfg.tenants[0].sloMpki = 5.0;
    cfg.tenants[1].ways = 8;
    cfg.qos.enabled = true;
    cfg.qos.breachEpochs = 2;
    tenant::PartitionMap map({8, 8}, 16);
    tenant::QosController qos(cfg, map);

    const std::vector<double> breach = {9.0, 1.0};
    EXPECT_FALSE(qos.onEpoch(breach)); // streak 1: no move yet
    EXPECT_TRUE(qos.onEpoch(breach));  // streak 2: grant
    EXPECT_EQ(map.waysOf(0), 9u);
    EXPECT_EQ(map.waysOf(1), 7u);
    ASSERT_EQ(qos.resizes().size(), 1u);
    EXPECT_EQ(qos.resizes()[0].from, 1u);
    EXPECT_EQ(qos.resizes()[0].to, 0u);
}

TEST(QosControllerTest, ReturnsBorrowedWaysWhenCalm)
{
    tenant::TenancyConfig cfg;
    cfg.tenants.resize(2);
    cfg.tenants[0].ways = 8;
    cfg.tenants[0].sloMpki = 5.0;
    cfg.tenants[1].ways = 8;
    cfg.qos.enabled = true;
    cfg.qos.breachEpochs = 1;
    cfg.qos.calmEpochs = 2;
    cfg.qos.hysteresisFrac = 0.1;
    tenant::PartitionMap map({8, 8}, 16);
    tenant::QosController qos(cfg, map);

    EXPECT_TRUE(qos.onEpoch(std::vector<double>{9.0, 1.0}));
    EXPECT_EQ(map.waysOf(0), 9u);

    // Two calm epochs (below slo * 0.9 = 4.5) return the way.
    const std::vector<double> calm = {1.0, 1.0};
    EXPECT_FALSE(qos.onEpoch(calm));
    EXPECT_TRUE(qos.onEpoch(calm));
    EXPECT_EQ(map.waysOf(0), 8u);
    EXPECT_EQ(map.waysOf(1), 8u);

    // In-band epochs (between 4.5 and 5.0) reset both streaks: no
    // further movement however long the series runs.
    const std::vector<double> band = {4.7, 1.0};
    for (int i = 0; i < 6; ++i)
        EXPECT_FALSE(qos.onEpoch(band));
    EXPECT_EQ(map.waysOf(0), 8u);
}

TEST(QosControllerTest, DonorNeverShrinksBelowMinWays)
{
    tenant::TenancyConfig cfg;
    cfg.tenants.resize(2);
    cfg.tenants[0].ways = 14;
    cfg.tenants[0].sloMpki = 5.0;
    cfg.tenants[1].ways = 2;
    cfg.qos.enabled = true;
    cfg.qos.breachEpochs = 1;
    cfg.qos.minWays = 1;
    tenant::PartitionMap map({14, 2}, 16);
    tenant::QosController qos(cfg, map);

    const std::vector<double> breach = {9.0, 1.0};
    EXPECT_TRUE(qos.onEpoch(breach));  // 15/1
    EXPECT_FALSE(qos.onEpoch(breach)); // donor at minWays: no move
    EXPECT_EQ(map.waysOf(0), 15u);
    EXPECT_EQ(map.waysOf(1), 1u);
}

// --------------------------------------------------------------------
// Partitioned simulation

sim::MultiCoreConfig
smallTenantConfig(std::uint32_t ways0, std::uint32_t ways1)
{
    sim::MultiCoreConfig cfg;
    cfg.hierarchy.llcBytes = 256 * 1024;
    cfg.warmupInstructions = 40000;
    cfg.measureCycles = 60000;
    cfg.tenancy.tenants.resize(2);
    cfg.tenancy.tenants[0].ways = ways0;
    cfg.tenancy.tenants[1].ways = ways1;
    return cfg;
}

bool
sameOutcome(const sim::TenantOutcome& a, const sim::TenantOutcome& b)
{
    return a.waysInitial == b.waysInitial &&
           a.waysFinal == b.waysFinal &&
           a.demandMisses == b.demandMisses &&
           a.instructions == b.instructions && a.mpki == b.mpki;
}

TEST(TenantSimTest, FixedPartitionIsolatesTenantFromCoRunner)
{
    const auto victim = trace::makeSuiteTrace(1, 120000);
    const auto noisy = trace::makeSuiteTrace(3, 120000);
    const auto quiet = trace::makeSuiteTrace(5, 120000);
    const auto cfg = smallTenantConfig(10, 6);

    trace::MaterializedTraceSource v1(victim), a1(noisy);
    const auto ra = sim::runMultiCore(
        std::vector<trace::TraceSource*>{&v1, &a1},
        sim::makePolicyFactory("LRU"), cfg);
    trace::MaterializedTraceSource v2(victim), a2(quiet);
    const auto rb = sim::runMultiCore(
        std::vector<trace::TraceSource*>{&v2, &a2},
        sim::makePolicyFactory("LRU"), cfg);

    ASSERT_EQ(ra.tenants.size(), 2u);
    ASSERT_EQ(rb.tenants.size(), 2u);
    // Tenant 0's measured outcome must not depend on the co-runner.
    EXPECT_TRUE(sameOutcome(ra.tenants[0], rb.tenants[0]));
    EXPECT_EQ(ra.ipc[0], rb.ipc[0]);
    // The co-runners genuinely differ, so the runs were not trivially
    // identical.
    EXPECT_FALSE(sameOutcome(ra.tenants[1], rb.tenants[1]));
}

TEST(TenantSimTest, SameStreamTenantsWithPrivateStateMatchExactly)
{
    // Both tenants replay the same record sequence (same addresses!)
    // under an equal split. Owner-tagged blocks and per-tenant policy
    // state make their outcomes exactly equal — any cross-tenant hit
    // or shared predictor update would break the symmetry.
    const auto tr = trace::makeSuiteTrace(2, 120000);
    trace::MaterializedTraceSource s0(tr), s1(tr);
    const auto r = sim::runMultiCore(
        std::vector<trace::TraceSource*>{&s0, &s1},
        sim::makePolicyFactory("MPPPB-MC"), smallTenantConfig(8, 8));
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.tenants[0].demandMisses, r.tenants[1].demandMisses);
    EXPECT_EQ(r.tenants[0].instructions, r.tenants[1].instructions);
    EXPECT_EQ(r.ipc[0], r.ipc[1]);
}

TEST(TenantSimTest, UnpartitionedMixSeesInterference)
{
    // Control experiment: without a partition the same co-runner swap
    // DOES move the victim's misses — otherwise the isolation test
    // above would be vacuous.
    const auto victim = trace::makeSuiteTrace(1, 120000);
    const auto noisy = trace::makeSuiteTrace(3, 120000);
    const auto quiet = trace::makeSuiteTrace(5, 120000);
    sim::MultiCoreConfig cfg;
    cfg.hierarchy.llcBytes = 256 * 1024;
    cfg.warmupInstructions = 40000;
    cfg.measureCycles = 60000;

    trace::MaterializedTraceSource v1(victim), a1(noisy);
    const auto ra = sim::runMultiCore(
        std::vector<trace::TraceSource*>{&v1, &a1},
        sim::makePolicyFactory("LRU"), cfg);
    trace::MaterializedTraceSource v2(victim), a2(quiet);
    const auto rb = sim::runMultiCore(
        std::vector<trace::TraceSource*>{&v2, &a2},
        sim::makePolicyFactory("LRU"), cfg);
    EXPECT_TRUE(ra.tenants.empty());
    EXPECT_NE(ra.llcDemandMisses, rb.llcDemandMisses);
}

TEST(TenantSimTest, QosScheduleIsDeterministicAcrossReruns)
{
    const auto hungry = trace::makeSuiteTrace(3, 150000);
    const auto meek = trace::makeSuiteTrace(5, 150000);
    auto cfg = smallTenantConfig(4, 12);
    cfg.tenancy.tenants[0].sloMpki = 0.05; // hard to meet: forces QoS
    cfg.tenancy.qos.enabled = true;
    cfg.tenancy.qos.epochInstructions = 10000;
    cfg.tenancy.qos.breachEpochs = 1;

    auto once = [&] {
        trace::MaterializedTraceSource a(hungry), b(meek);
        return sim::runMultiCore(
            std::vector<trace::TraceSource*>{&a, &b},
            sim::makePolicyFactory("LRU"), cfg);
    };
    const auto r1 = once();
    const auto r2 = once();
    EXPECT_FALSE(r1.qosSchedule.empty());
    ASSERT_EQ(r1.qosSchedule.size(), r2.qosSchedule.size());
    for (std::size_t i = 0; i < r1.qosSchedule.size(); ++i) {
        EXPECT_EQ(r1.qosSchedule[i].epoch, r2.qosSchedule[i].epoch);
        EXPECT_EQ(r1.qosSchedule[i].from, r2.qosSchedule[i].from);
        EXPECT_EQ(r1.qosSchedule[i].to, r2.qosSchedule[i].to);
    }
    EXPECT_EQ(r1.tenants[0].waysFinal, r2.tenants[0].waysFinal);
    EXPECT_GT(r1.tenants[0].waysFinal, r1.tenants[0].waysInitial);
}

TEST(TenantSimTest, ReportsAreByteIdenticalAcrossJobs)
{
    auto cfg = smallTenantConfig(10, 6);
    cfg.tenancy.tenants[0].sloMpki = 0.05;
    cfg.tenancy.qos.enabled = true;
    cfg.tenancy.qos.epochInstructions = 10000;
    cfg.tenancy.qos.breachEpochs = 1;

    std::vector<runner::RunRequest> batch;
    for (const char* p : {"LRU", "SRRIP", "MPPPB-MC"}) {
        batch.push_back(runner::RunRequest::multiCore(
            std::vector<trace::TraceSpec>{
                trace::TraceSpec::suite(1, 120000),
                trace::TraceSpec::suite(3, 120000)},
            runner::PolicySpec::byName(p), cfg));
    }
    const auto set1 = runner::ExperimentRunner(1).run(batch);
    const auto set2 = runner::ExperimentRunner(2).run(batch);
    EXPECT_EQ(runner::toJson(set1), runner::toJson(set2));
    EXPECT_EQ(runner::toCsv(set1), runner::toCsv(set2));
    // Tenancy fields actually appear in both report formats.
    EXPECT_NE(runner::toJson(set1).find("\"tenants\""),
              std::string::npos);
    EXPECT_NE(runner::toCsv(set1).find("tenant_ways_final"),
              std::string::npos);
}

// --------------------------------------------------------------------
// EHC baseline

TEST(EhcTest, RegisteredInPolicyRegistryAndRuns)
{
    const auto tr = trace::makeSuiteTrace(0, 80000);
    trace::MaterializedTraceSource src(tr);
    sim::SingleCoreConfig cfg;
    cfg.hierarchy.llcBytes = 256 * 1024;
    const auto r =
        sim::runSingleCore(src, sim::makePolicyFactory("EHC"), cfg);
    EXPECT_EQ(r.policy, "EHC");
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.llcDemandAccesses, 0u);
}

TEST(EhcTest, LearnsExpectedHitsPerSignature)
{
    const cache::CacheGeometry geom(64 * 1024, 4);
    policy::EhcPolicy ehc(geom);
    const Pc pc = 0x400bed;
    cache::AccessInfo info;
    info.pc = pc;
    info.core = 0;

    // Fill way 0 of set 0, hit it 3 times, then evict: the EWMA table
    // must move toward 3 expected hits for this PC's signature.
    info.addr = 0;
    ehc.onFill(info, 0, 0);
    for (int h = 0; h < 3; ++h)
        ehc.onHit(info, 0, 0);
    ehc.onEvict(0, 0);
    const auto after_one = ehc.expectedHitsOf(pc);
    EXPECT_GT(after_one, 0u);

    for (int round = 0; round < 20; ++round) {
        ehc.onFill(info, 0, 0);
        for (int h = 0; h < 3; ++h)
            ehc.onHit(info, 0, 0);
        ehc.onEvict(0, 0);
    }
    // Converged near 3 hits; the table stores 4 fraction bits, so the
    // raw value sits near 3 << 4 = 48.
    EXPECT_GE(ehc.expectedHitsOf(pc), 2u << 4);
    EXPECT_LE(ehc.expectedHitsOf(pc), 4u << 4);
}

TEST(EhcTest, VictimRespectsWayMask)
{
    const cache::CacheGeometry geom(64 * 1024, 8);
    policy::EhcPolicy ehc(geom);
    cache::AccessInfo info;
    for (std::uint32_t w = 0; w < 8; ++w)
        ehc.onFill(info, 0, w);
    const cache::WayMask mask = 0b11000000;
    for (int i = 0; i < 4; ++i) {
        const auto w = ehc.victimWayIn(info, 0, mask);
        EXPECT_TRUE(mask & (cache::WayMask{1} << w));
    }
}

// --------------------------------------------------------------------
// Scenario builders

TEST(ScenarioTest, NoisyNeighborBatchShape)
{
    runner::ScenarioConfig cfg;
    cfg.sim.hierarchy.llcWays = 16;
    cfg.victimSloMpki = 2.0;
    cfg.qos = true;
    const auto batch = runner::noisyNeighborBatch(
        trace::TraceSpec::suite(1, 100000),
        trace::TraceSpec::suite(3, 100000), {8, 12}, cfg);

    ASSERT_EQ(batch.size(), 4u); // shared + 2 splits + qos
    EXPECT_EQ(batch[0].label, "shared");
    const auto& t1 = std::get<sim::MultiCoreConfig>(batch[1].config);
    EXPECT_EQ(batch[1].label, "part:8/8");
    EXPECT_EQ(t1.tenancy.tenants[0].ways, 8u);
    const auto& t3 = std::get<sim::MultiCoreConfig>(batch[3].config);
    EXPECT_EQ(batch[3].label, "qos:12/4");
    EXPECT_TRUE(t3.tenancy.qos.enabled);
    EXPECT_EQ(t3.tenancy.tenants[0].sloMpki, 2.0);

    EXPECT_THROW(runner::noisyNeighborBatch(
                     trace::TraceSpec::suite(1, 100000),
                     trace::TraceSpec::suite(3, 100000), {16}, cfg),
                 FatalError);
}

TEST(ScenarioTest, MixCampaignValidatesArity)
{
    runner::ScenarioConfig cfg;
    cfg.sim.hierarchy.llcWays = 16;
    tenant::TenancyConfig t;
    t.tenants.resize(2);
    t.tenants[0].ways = 8;
    t.tenants[1].ways = 8;

    const std::vector<std::vector<trace::TraceSpec>> mixes = {
        {trace::TraceSpec::suite(1, 100000),
         trace::TraceSpec::suite(2, 100000)},
        {trace::TraceSpec::suite(3, 100000),
         trace::TraceSpec::suite(4, 100000)}};
    const auto batch = runner::mixCampaign(mixes, t, cfg);
    ASSERT_EQ(batch.size(), 2u);
    for (const auto& r : batch) {
        const auto& c = std::get<sim::MultiCoreConfig>(r.config);
        EXPECT_EQ(c.tenancy.tenants.size(), 2u);
    }

    const std::vector<std::vector<trace::TraceSpec>> triple = {
        {trace::TraceSpec::suite(1, 100000),
         trace::TraceSpec::suite(2, 100000),
         trace::TraceSpec::suite(3, 100000)}};
    EXPECT_THROW(runner::mixCampaign(triple, t, cfg), FatalError);
}

// --------------------------------------------------------------------
// MRC partition advisor

mrc::MrcProfile
syntheticProfile(const std::string& name,
                 std::vector<std::pair<Addr, double>> pts)
{
    mrc::MrcProfile p;
    p.benchmark = name;
    for (const auto& [bytes, ratio] : pts)
        p.points.push_back({bytes, ratio});
    return p;
}

TEST(PartitionAdvisorTest, KneeFavorsCacheHungryTenant)
{
    // Tenant a converts capacity into hits up to 512 KB; tenant b is
    // a stream whose curve never improves.
    const std::vector<mrc::MrcProfile> profiles = {
        syntheticProfile("hungry", {{64 << 10, 0.9},
                                    {128 << 10, 0.6},
                                    {256 << 10, 0.3},
                                    {512 << 10, 0.1}}),
        syntheticProfile("stream", {{64 << 10, 0.95},
                                    {128 << 10, 0.95},
                                    {256 << 10, 0.95},
                                    {512 << 10, 0.95}})};
    mrc::PartitionAdvisorConfig cfg;
    cfg.llcBytes = 512 << 10;
    cfg.llcWays = 16;
    const auto advice = mrc::suggestPartition(profiles, cfg);
    ASSERT_EQ(advice.tenants.size(), 2u);
    EXPECT_EQ(advice.tenants[0].kneeBytes, Addr{512 << 10});
    EXPECT_EQ(advice.tenants[1].kneeBytes, Addr{64 << 10});
    EXPECT_GT(advice.tenants[0].ways, advice.tenants[1].ways);
    EXPECT_EQ(advice.tenants[0].ways + advice.tenants[1].ways, 16u);
    EXPECT_GE(advice.tenants[1].ways, cfg.minWays);
    EXPECT_EQ(advice.partitionFlag(),
              std::to_string(advice.tenants[0].ways) + "," +
                  std::to_string(advice.tenants[1].ways));
}

TEST(PartitionAdvisorTest, EqualCurvesSplitEvenlyAndDeterministically)
{
    const auto curve = syntheticProfile("x", {{64 << 10, 0.5},
                                              {128 << 10, 0.2}});
    const std::vector<mrc::MrcProfile> profiles = {curve, curve,
                                                   curve, curve};
    mrc::PartitionAdvisorConfig cfg;
    cfg.llcBytes = 512 << 10;
    cfg.llcWays = 16;
    const auto a = mrc::suggestPartition(profiles, cfg);
    const auto b = mrc::suggestPartition(profiles, cfg);
    EXPECT_EQ(a.toJson(cfg), b.toJson(cfg));
    for (const auto& t : a.tenants)
        EXPECT_EQ(t.ways, 4u);
}

TEST(PartitionAdvisorTest, RejectsInfeasibleGeometry)
{
    const auto curve = syntheticProfile("x", {{64 << 10, 0.5}});
    mrc::PartitionAdvisorConfig cfg;
    cfg.llcBytes = 512 << 10;
    cfg.llcWays = 2;
    cfg.minWays = 2;
    EXPECT_THROW(
        mrc::suggestPartition({curve, curve, curve}, cfg), FatalError);
    EXPECT_THROW(mrc::suggestPartition({}, cfg), FatalError);
}

// --------------------------------------------------------------------
// Wire & journal round trips

TEST(TenantWireTest, TenancyConfigSurvivesRequestRoundTrip)
{
    sim::MultiCoreConfig cfg;
    cfg.tenancy.tenants.resize(2);
    cfg.tenancy.tenants[0].ways = 10;
    cfg.tenancy.tenants[0].sloMpki = 2.5;
    cfg.tenancy.tenants[1].ways = 6;
    cfg.tenancy.qos.enabled = true;
    cfg.tenancy.qos.epochInstructions = 12345;
    cfg.tenancy.qos.breachEpochs = 3;
    cfg.tenancy.qos.calmEpochs = 7;
    cfg.tenancy.qos.hysteresisFrac = 0.25;
    cfg.tenancy.qos.minWays = 2;

    const auto req = runner::RunRequest::multiCore(
        std::vector<trace::TraceSpec>{
            trace::TraceSpec::suite(1, 100000),
            trace::TraceSpec::suite(2, 100000)},
        runner::PolicySpec::byName("LRU"), cfg);
    const auto back = queue::requestFromJson(queue::requestJson(req),
                                             "test request");
    const auto& c = std::get<sim::MultiCoreConfig>(back.config);
    ASSERT_EQ(c.tenancy.tenants.size(), 2u);
    EXPECT_EQ(c.tenancy.tenants[0].ways, 10u);
    EXPECT_EQ(c.tenancy.tenants[0].sloMpki, 2.5);
    EXPECT_EQ(c.tenancy.tenants[1].ways, 6u);
    EXPECT_TRUE(c.tenancy.qos.enabled);
    EXPECT_EQ(c.tenancy.qos.epochInstructions, 12345u);
    EXPECT_EQ(c.tenancy.qos.breachEpochs, 3u);
    EXPECT_EQ(c.tenancy.qos.calmEpochs, 7u);
    EXPECT_EQ(c.tenancy.qos.hysteresisFrac, 0.25);
    EXPECT_EQ(c.tenancy.qos.minWays, 2u);

    // Non-tenant requests keep the pre-tenancy wire bytes (no
    // "tenancy" key at all).
    const auto plain = runner::RunRequest::multiCore(
        std::vector<trace::TraceSpec>{
            trace::TraceSpec::suite(1, 100000),
            trace::TraceSpec::suite(2, 100000)},
        runner::PolicySpec::byName("LRU"), sim::MultiCoreConfig{});
    EXPECT_EQ(queue::requestJson(plain).find("tenancy"),
              std::string::npos);
}

TEST(TenantJournalTest, TenantOutcomeSurvivesJournalRoundTrip)
{
    runner::RunResult r;
    r.index = 3;
    r.benchmark = "a+b";
    r.policy = "LRU";
    r.label = "mix";
    r.multiCore = true;
    r.ipc = 1.5;
    r.tenants.resize(2);
    r.tenants[0] = {10, 12, 777, 123456, 6.293, 2.5};
    r.tenants[1] = {6, 4, 9999, 123000, 81.292, 0.0};
    r.qosSchedule = {{4, 1, 0}, {9, 1, 0}};

    const auto back = runner::resultFromJson(runner::resultJson(r));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->tenants.size(), 2u);
    EXPECT_EQ(back->tenants[0].waysInitial, 10u);
    EXPECT_EQ(back->tenants[0].waysFinal, 12u);
    EXPECT_EQ(back->tenants[0].demandMisses, 777u);
    EXPECT_EQ(back->tenants[0].instructions, 123456u);
    EXPECT_EQ(back->tenants[0].mpki, 6.293);
    EXPECT_EQ(back->tenants[0].sloMpki, 2.5);
    EXPECT_EQ(back->tenants[1].waysFinal, 4u);
    EXPECT_EQ(back->tenants[1].sloMpki, 0.0);
    ASSERT_EQ(back->qosSchedule.size(), 2u);
    EXPECT_EQ(back->qosSchedule[0].epoch, 4u);
    EXPECT_EQ(back->qosSchedule[1].epoch, 9u);
    EXPECT_EQ(back->qosSchedule[1].from, 1u);
    EXPECT_EQ(back->qosSchedule[1].to, 0u);

    // Non-tenant results journal without any tenant keys.
    runner::RunResult plain;
    plain.benchmark = "a";
    plain.policy = "LRU";
    EXPECT_EQ(runner::resultJson(plain).find("tenant"),
              std::string::npos);
}

} // namespace
} // namespace mrp
