/**
 * @file
 * Tests for the parameterized feature machinery: parsing, formatting,
 * table sizing, index computation, the published feature sets, and
 * the search-support helpers.
 */

#include <gtest/gtest.h>

#include "core/feature.hpp"
#include "core/feature_sets.hpp"
#include "util/bitfield.hpp"
#include "util/logging.hpp"

namespace mrp::core {
namespace {

TEST(FeatureSpecTest, ParseFormatRoundTrip)
{
    for (const char* text :
         {"pc(10,1,53,10,0)", "address(11,8,19,0)", "bias(16,0)",
          "burst(6,0)", "insert(17,1)", "lastmiss(9,0)",
          "offset(15,1,6,1)", "pc(17,6,20,14,1)"}) {
        const FeatureSpec f = FeatureSpec::parse(text);
        EXPECT_EQ(f.toString(), text);
        EXPECT_EQ(FeatureSpec::parse(f.toString()), f);
    }
}

TEST(FeatureSpecTest, ParseRejectsMalformed)
{
    EXPECT_THROW(FeatureSpec::parse("bogus(1,0)"), FatalError);
    EXPECT_THROW(FeatureSpec::parse("pc(1,2,3)"), FatalError);
    EXPECT_THROW(FeatureSpec::parse("bias(1,2,3,4)"), FatalError);
    EXPECT_THROW(FeatureSpec::parse("pc"), FatalError);
    EXPECT_THROW(FeatureSpec::parse("bias(0,0)"), FatalError); // A = 0
    EXPECT_THROW(FeatureSpec::parse("bias(19,0)"), FatalError); // A > 18
}

TEST(FeatureSpecTest, TableSizesFollowThePaper)
{
    // §3.4: pc/address/XORed features: 256; offset up to 64;
    // single-bit: 2; bias: 1.
    EXPECT_EQ(FeatureSpec::parse("pc(10,1,53,10,0)").tableSize(), 256u);
    EXPECT_EQ(FeatureSpec::parse("address(11,8,19,0)").tableSize(),
              256u);
    EXPECT_EQ(FeatureSpec::parse("burst(6,1)").tableSize(), 256u);
    EXPECT_EQ(FeatureSpec::parse("bias(6,1)").tableSize(), 256u);
    EXPECT_EQ(FeatureSpec::parse("offset(15,0,5,0)").tableSize(), 64u);
    EXPECT_EQ(FeatureSpec::parse("offset(15,2,4,0)").tableSize(), 8u);
    EXPECT_EQ(FeatureSpec::parse("burst(6,0)").tableSize(), 2u);
    EXPECT_EQ(FeatureSpec::parse("insert(16,0)").tableSize(), 2u);
    EXPECT_EQ(FeatureSpec::parse("lastmiss(9,0)").tableSize(), 2u);
    EXPECT_EQ(FeatureSpec::parse("bias(16,0)").tableSize(), 1u);
}

TEST(FeatureIndexTest, IndicesStayInTable)
{
    Rng rng(3);
    cache::CoreContext ctx;
    for (int i = 0; i < 64; ++i)
        ctx.pcHistory.push(0x400000 + 4 * rng.below(4096));
    for (int trial = 0; trial < 2000; ++trial) {
        const FeatureSpec f = FeatureSpec::random(rng);
        FeatureInput in;
        in.pc = 0x400000 + 4 * rng.below(4096);
        in.addr = rng.next() & ((1ull << 48) - 1);
        in.ctx = &ctx;
        in.isInsert = rng.chance(0.5);
        in.lastMiss = rng.chance(0.5);
        in.isBurst = rng.chance(0.5);
        EXPECT_LT(featureIndex(f, in), f.tableSize()) << f.toString();
    }
}

TEST(FeatureIndexTest, SingleBitFeaturesReflectTheirInput)
{
    FeatureInput in;
    in.pc = 0x400040;
    in.isInsert = true;
    EXPECT_EQ(featureIndex(FeatureSpec::parse("insert(16,0)"), in), 1u);
    in.isInsert = false;
    EXPECT_EQ(featureIndex(FeatureSpec::parse("insert(16,0)"), in), 0u);
    in.isBurst = true;
    EXPECT_EQ(featureIndex(FeatureSpec::parse("burst(6,0)"), in), 1u);
    in.lastMiss = true;
    EXPECT_EQ(featureIndex(FeatureSpec::parse("lastmiss(9,0)"), in), 1u);
}

TEST(FeatureIndexTest, BiasIgnoresEverything)
{
    const FeatureSpec bias = FeatureSpec::parse("bias(16,0)");
    FeatureInput a;
    a.pc = 0x1234;
    a.addr = 0x9999;
    FeatureInput b;
    b.pc = 0x5678;
    b.addr = 0x1111;
    EXPECT_EQ(featureIndex(bias, a), featureIndex(bias, b));
    EXPECT_EQ(featureIndex(bias, a), 0u);
}

TEST(FeatureIndexTest, XorDistributesByPc)
{
    const FeatureSpec f = FeatureSpec::parse("bias(6,1)");
    FeatureInput a;
    a.pc = 0x400000;
    FeatureInput b;
    b.pc = 0x400004;
    EXPECT_NE(featureIndex(f, a), featureIndex(f, b));
}

TEST(FeatureIndexTest, OffsetUsesInBlockBits)
{
    const FeatureSpec f = FeatureSpec::parse("offset(15,0,5,0)");
    FeatureInput a;
    a.addr = 0x1000 + 17;
    EXPECT_EQ(featureIndex(f, a), 17u);
    // Bits above the block stay invisible.
    FeatureInput b;
    b.addr = 0x2000 + 17;
    EXPECT_EQ(featureIndex(f, b), 17u);
}

TEST(FeatureIndexTest, PcDepthReadsHistory)
{
    cache::CoreContext ctx;
    ctx.pcHistory.push(0x400100); // 2nd most recent
    ctx.pcHistory.push(0x400200); // most recent previous
    const FeatureSpec w1 = FeatureSpec::parse("pc(16,0,16,1,0)");
    const FeatureSpec w2 = FeatureSpec::parse("pc(16,0,16,2,0)");
    const FeatureSpec w0 = FeatureSpec::parse("pc(16,0,16,0,0)");
    FeatureInput in;
    in.pc = 0x400300;
    in.ctx = &ctx;
    EXPECT_EQ(featureIndex(w0, in),
              foldXor(bits(0x400300, 0, 16), 8));
    EXPECT_EQ(featureIndex(w1, in),
              foldXor(bits(0x400200, 0, 16), 8));
    EXPECT_EQ(featureIndex(w2, in),
              foldXor(bits(0x400100, 0, 16), 8));
}

TEST(PublishedSetsTest, AllThreeHaveSixteenFeatures)
{
    EXPECT_EQ(featureSetTable1A().size(), 16u);
    EXPECT_EQ(featureSetTable1B().size(), 16u);
    EXPECT_EQ(featureSetTable2().size(), 16u);
}

TEST(PublishedSetsTest, Table1AContainsThePaperEntries)
{
    const auto set = featureSetTable1A();
    auto contains = [&](const char* text) {
        const FeatureSpec f = FeatureSpec::parse(text);
        for (const auto& g : set)
            if (g == f)
                return true;
        return false;
    };
    EXPECT_TRUE(contains("bias(16,0)"));
    EXPECT_TRUE(contains("burst(6,0)"));
    EXPECT_TRUE(contains("lastmiss(9,0)"));
    EXPECT_TRUE(contains("pc(7,14,43,11,0)"));
    // pc(17,6,20,0,1) appears twice in the published table.
    int count = 0;
    const FeatureSpec dup = FeatureSpec::parse("pc(17,6,20,0,1)");
    for (const auto& g : set)
        if (g == dup)
            ++count;
    EXPECT_EQ(count, 2);
}

TEST(PublishedSetsTest, AssociativitiesWithinSamplerRange)
{
    for (const auto& set :
         {featureSetTable1A(), featureSetTable1B(), featureSetTable2()})
        for (const auto& f : set) {
            EXPECT_GE(f.assoc, 1u);
            EXPECT_LE(f.assoc, kMaxFeatureAssoc);
        }
}

TEST(HelpersTest, UniformAssociativityAndWithout)
{
    const auto set = featureSetTable1A();
    const auto uni = withUniformAssociativity(set, 5);
    ASSERT_EQ(uni.size(), set.size());
    for (const auto& f : uni)
        EXPECT_EQ(f.assoc, 5u);
    const auto smaller = without(set, 3);
    EXPECT_EQ(smaller.size(), set.size() - 1);
    EXPECT_THROW(without(set, set.size()), FatalError);
    EXPECT_THROW(withUniformAssociativity(set, 0), FatalError);
    EXPECT_THROW(withUniformAssociativity(set, 19), FatalError);
}

TEST(HelpersTest, RandomFeaturesAreValidAndDiverse)
{
    Rng rng(11);
    std::set<std::string> kinds;
    for (int i = 0; i < 300; ++i) {
        const FeatureSpec f = FeatureSpec::random(rng);
        EXPECT_GE(f.assoc, 1u);
        EXPECT_LE(f.assoc, kMaxFeatureAssoc);
        EXPECT_GT(f.tableSize(), 0u);
        kinds.insert(f.toString().substr(0, f.toString().find('(')));
        // Round-trips through text.
        EXPECT_EQ(FeatureSpec::parse(f.toString()), f);
    }
    EXPECT_EQ(kinds.size(), 7u); // all seven kinds get generated
}

TEST(HelpersTest, PerturbKeepsValidity)
{
    Rng rng(13);
    FeatureSpec f = FeatureSpec::parse("pc(10,1,53,10,0)");
    for (int i = 0; i < 200; ++i) {
        f = f.perturbed(rng);
        EXPECT_GE(f.assoc, 1u);
        EXPECT_LE(f.assoc, kMaxFeatureAssoc);
        EXPECT_EQ(FeatureSpec::parse(f.toString()), f);
    }
}

TEST(HelpersTest, FormatFeatureSetOnePerLine)
{
    const auto text = formatFeatureSet(featureSetTable1A());
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 16);
    EXPECT_NE(text.find("bias(16,0)"), std::string::npos);
}

} // namespace
} // namespace mrp::core
