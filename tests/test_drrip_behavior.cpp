/**
 * @file
 * Behavioural tests of DRRIP's set dueling: on a pure cyclic-thrash
 * reference stream, bimodal insertion must win the duel and beat
 * static SRRIP; on an LRU-friendly stream, DRRIP must not lose to
 * SRRIP.
 */

#include <gtest/gtest.h>

#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

namespace mrp {
namespace {

TEST(DrripBehavior, BeatsSrripOnCyclicThrash)
{
    const auto tr = trace::makeSuiteTrace(32, 1500000); // thrash.1p2x
    trace::MaterializedTraceSource src(tr);
    const auto srrip =
        sim::runSingleCore(src, sim::makePolicyFactory("SRRIP"), {});
    const auto drrip =
        sim::runSingleCore(src, sim::makePolicyFactory("DRRIP"), {});
    // SRRIP degenerates to ~LRU on a cyclic working set that exceeds
    // capacity; BRRIP's bimodal insertion retains a stable fraction.
    EXPECT_LT(drrip.llcDemandMisses, srrip.llcDemandMisses * 9 / 10);
}

TEST(DrripBehavior, MatchesSrripOnFriendlyWorkload)
{
    const auto tr = trace::makeSuiteTrace(4, 600000); // gups.fit
    trace::MaterializedTraceSource src(tr);
    const auto srrip =
        sim::runSingleCore(src, sim::makePolicyFactory("SRRIP"), {});
    const auto drrip =
        sim::runSingleCore(src, sim::makePolicyFactory("DRRIP"), {});
    // Nothing to duel over: both should be near-identical.
    EXPECT_NEAR(static_cast<double>(drrip.llcDemandMisses),
                static_cast<double>(srrip.llcDemandMisses),
                0.1 * static_cast<double>(srrip.llcDemandMisses) + 50);
}

TEST(DrripBehavior, SrripStillHandlesScansBetterThanLru)
{
    const auto tr = trace::makeSuiteTrace(12, 1200000); // phase.ab
    trace::MaterializedTraceSource src(tr);
    const auto lru =
        sim::runSingleCore(src, sim::makePolicyFactory("LRU"), {});
    const auto srrip =
        sim::runSingleCore(src, sim::makePolicyFactory("SRRIP"), {});
    EXPECT_LE(srrip.llcDemandMisses, lru.llcDemandMisses * 11 / 10);
}

} // namespace
} // namespace mrp
