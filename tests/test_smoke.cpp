/**
 * @file
 * End-to-end smoke test: build a trace, run it under MPPPB, and check
 * the plumbing produces sane numbers.
 */

#include <gtest/gtest.h>

#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

namespace mrp {
namespace {

TEST(Smoke, MpppbRunsOnABenchmark)
{
    const auto trace = trace::makeSuiteTrace(0, 50000);
    trace::MaterializedTraceSource source(trace);
    const auto r = sim::runSingleCore(
        source, sim::makePolicyFactory("MPPPB"), {});
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
}

} // namespace
} // namespace mrp
