/**
 * @file
 * Chaos recovery tests for the distributed sweep service, against
 * real mrp_worker processes: SIGKILLed workers mid-batch, wedged
 * (SIGSTOPped) workers recovered by lease expiry, lease-budget
 * exhaustion of a permanently wedged job, broker crash/resume over
 * the durable queue — and the headline check, a genetic study run
 * through all of it emitting a report byte-identical to the unharmed
 * single-threaded in-process run.
 *
 * Workloads are tiny (the container is 1-CPU) and heartbeat periods
 * short; the wedge tests bound recovery latency by heartbeatTimeoutMs
 * so the whole file stays in sanitize-suite time budgets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "queue/broker.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "sweep/study.hpp"
#include "trace/spec.hpp"
#include "util/logging.hpp"

#ifndef MRP_WORKER_BIN
#define MRP_WORKER_BIN "mrp_worker"
#endif

namespace mrp::queue {
namespace {

class QueueChaosTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        for (const auto& p : temp_paths_)
            std::remove(p.c_str());
    }

    std::string
    tempPath(const std::string& name)
    {
        const std::string p = "/tmp/mrp_qchaos_" + name;
        std::remove(p.c_str());
        temp_paths_.push_back(p);
        return p;
    }

    std::vector<std::string> temp_paths_;
};

BrokerConfig
chaosBrokerConfig(const std::string& queue_path, unsigned workers)
{
    BrokerConfig cfg;
    cfg.workerBin = MRP_WORKER_BIN;
    cfg.workers = workers;
    cfg.queuePath = queue_path;
    cfg.heartbeatMs = 10;
    cfg.heartbeatTimeoutMs = 400;
    cfg.backoffSeconds = 0.001;
    return cfg;
}

runner::RunRequest
suiteRequest(unsigned index, const char* policy = "LRU",
             const std::string& label = "")
{
    sim::SingleCoreConfig cfg;
    cfg.hierarchy.llcBytes = 128 * 1024;
    auto r = runner::RunRequest::singleCore(
        trace::TraceSpec::suite(index, 40000),
        runner::PolicySpec::byName(policy), cfg);
    r.label = label;
    return r;
}

std::vector<runner::RunRequest>
chaosBatch()
{
    std::vector<runner::RunRequest> batch;
    for (unsigned w : {1u, 2u, 3u})
        for (const char* p : {"LRU", "SRRIP"})
            batch.push_back(suiteRequest(w, p));
    return batch;
}

TEST_F(QueueChaosTest, SigkilledWorkerIsRequeuedByteIdentically)
{
    const auto batch = chaosBatch();
    const auto reference = runner::ExperimentRunner(1).run(batch);
    telemetry::MetricsRegistry metrics;
    auto cfg = chaosBrokerConfig(tempPath("kill.jsonl"), 2);
    cfg.metrics = &metrics;
    cfg.killWorkerAfterLeases = 2; // SIGKILL the 2nd lease's holder
    const Broker broker(cfg);

    const auto set = broker.run(batch);
    EXPECT_EQ(runner::toJson(set), runner::toJson(reference));
    EXPECT_GE(metrics.counter("queue.requeued").value(), 1);
    EXPECT_GE(metrics.counter("queue.worker_restarts").value(), 1);
}

TEST_F(QueueChaosTest, WedgedWorkerExpiresLeaseAndRecovers)
{
    // One job wedges its worker (SIGSTOP — heartbeats stop, process
    // lives) exactly once, recorded in a marker file. The broker must
    // expire the lease on heartbeat silence, SIGKILL the hung worker,
    // and the requeued attempt must succeed.
    const std::string marker = tempPath("wedge.marker");
    auto batch = chaosBatch();
    batch.push_back(suiteRequest(4, "LRU", "wedge-me"));
    const auto reference = runner::ExperimentRunner(1).run(batch);

    telemetry::MetricsRegistry metrics;
    auto cfg = chaosBrokerConfig(tempPath("wedge.jsonl"), 2);
    cfg.metrics = &metrics;
    cfg.workerArgs = {"--chaos-wedge", "wedge-me:" + marker};
    const Broker broker(cfg);

    const auto set = broker.run(batch);
    EXPECT_EQ(runner::toJson(set), runner::toJson(reference));
    EXPECT_GE(metrics.counter("queue.lease_expired").value(), 1);
    EXPECT_GE(metrics.counter("queue.worker_restarts").value(), 1);
    EXPECT_EQ(metrics.counter("queue.requeue_exhausted").value(), 0);
}

TEST_F(QueueChaosTest, PermanentlyWedgedJobExhaustsLeaseBudget)
{
    // No marker file: every attempt wedges. The job must burn its
    // lease budget through heartbeat expiries and complete as a
    // failed-typed Timeout result; the other job is unaffected.
    telemetry::MetricsRegistry metrics;
    auto cfg = chaosBrokerConfig(tempPath("exhaust.jsonl"), 2);
    cfg.metrics = &metrics;
    cfg.maxAttempts = 2;
    cfg.workerArgs = {"--chaos-wedge", "wedge-me"};
    const Broker broker(cfg);

    const auto set = broker.run(
        {suiteRequest(1, "LRU", "wedge-me"), suiteRequest(2, "SRRIP")});
    ASSERT_EQ(set.results.size(), 2u);
    EXPECT_FALSE(set.results[0].ok());
    EXPECT_EQ(set.results[0].errorCode, ErrorCode::Timeout);
    EXPECT_NE(set.results[0].error.find("after 2 attempt(s)"),
              std::string::npos)
        << set.results[0].error;
    EXPECT_EQ(set.results[0].label, "wedge-me");
    EXPECT_TRUE(set.results[1].ok()) << set.results[1].error;
    EXPECT_EQ(metrics.counter("queue.lease_expired").value(), 2);
    EXPECT_EQ(metrics.counter("queue.requeue_exhausted").value(), 1);
}

TEST_F(QueueChaosTest, BrokerCrashResumeIsByteIdentical)
{
    const auto batch = chaosBatch();
    const auto reference = runner::ExperimentRunner(1).run(batch);
    const std::string qpath = tempPath("crash.jsonl");

    auto cfg = chaosBrokerConfig(qpath, 2);
    cfg.chaosAbortAfterCompletions = 2;
    try {
        Broker(cfg).run(batch);
        FAIL() << "chaos abort hook must fire";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Internal);
    }

    // Resume: a new broker over the same durable queue replays the
    // completed jobs and finishes only the remainder.
    const Broker resumed(chaosBrokerConfig(qpath, 2));
    const auto set = resumed.run(batch);
    EXPECT_EQ(runner::toJson(set), runner::toJson(reference));
}

// --- the headline: a full study through mixed chaos -----------------

sweep::StudyConfig
studyConfig(unsigned jobs, const runner::Executor* executor)
{
    sweep::StudyConfig scfg;
    scfg.name = "chaos_study";
    scfg.seed = 7;
    scfg.jobs = jobs;
    scfg.executor = executor;
    return scfg;
}

std::string
runStudy(const sweep::StudyConfig& scfg)
{
    sweep::SearchSpace space;
    space.featureSlots = 4;
    space.searchThresholds = true;

    sweep::CorpusConfig cc;
    cc.workloads = {3, 4};
    cc.fullInstructions = 40000;
    cc.sim.hierarchy.llcBytes = 128 * 1024;
    const auto evaluator =
        std::make_shared<sweep::CorpusEvaluator>(cc);
    sweep::CorpusMpkiObjective objective(
        evaluator, sweep::CorpusMpkiObjective::Aggregate::Geomean);

    sweep::GeneticStrategy::Config gc;
    gc.generations = 2;
    gc.population = 4;
    if (space.base.predictor.features.size() <= space.featureSlots)
        gc.seeds.push_back(space.encode(space.base));
    sweep::GeneticStrategy strategy(space, gc, scfg.seed);

    sweep::Study study(space, strategy, objective, scfg);
    return study.reportJson(study.run());
}

TEST_F(QueueChaosTest, ChaosStudyReportMatchesUnharmedInProcessRun)
{
    // Reference: unharmed, in-process, single-threaded.
    const std::string reference = runStudy(studyConfig(1, nullptr));

    // Distributed run #1: 2 workers, one SIGKILLed per generation
    // batch (the kill counter is per broker.run call).
    {
        auto cfg = chaosBrokerConfig(tempPath("study_kill.jsonl"), 2);
        cfg.killWorkerAfterLeases = 2;
        const Broker broker(cfg);
        EXPECT_EQ(runStudy(studyConfig(0, &broker)), reference);
    }

    // Distributed run #2: broker crashes after 2 completions, then a
    // fresh broker resumes over the same queue path mid-study.
    {
        const std::string qpath = tempPath("study_crash.jsonl");
        auto cfg = chaosBrokerConfig(qpath, 2);
        cfg.chaosAbortAfterCompletions = 2;
        try {
            const Broker broker(cfg);
            runStudy(studyConfig(0, &broker));
            FAIL() << "chaos abort hook must fire";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Internal);
        }
        const Broker resumed(chaosBrokerConfig(qpath, 2));
        EXPECT_EQ(runStudy(studyConfig(0, &resumed)), reference);
    }

    // Distributed run #3: 4 workers, no chaos — worker count alone
    // must not move a byte.
    {
        const Broker broker(
            chaosBrokerConfig(tempPath("study_w4.jsonl"), 4));
        EXPECT_EQ(runStudy(studyConfig(0, &broker)), reference);
    }
}

} // namespace
} // namespace mrp::queue
