/**
 * @file
 * Tests for the simulation drivers: single-core, the MIN two-pass
 * runner, the multi-core FIESTA-style driver, weighted speedup, and
 * the policy factory.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/multi_core.hpp"
#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

namespace mrp::sim {
namespace {

TEST(PolicyFactoryTest, KnowsAllStandardNames)
{
    const cache::CacheGeometry g(2 * 1024 * 1024, 16);
    for (const char* name :
         {"LRU", "Random", "SRRIP", "DRRIP", "MDPP", "SDBP",
          "Perceptron", "Hawkeye", "MPPPB", "MPPPB-MC", "MPPPB-1A",
          "MPPPB-1B", "MPPPB-T2"}) {
        auto pol = makePolicyFactory(name)(g, 1);
        ASSERT_NE(pol, nullptr) << name;
    }
    EXPECT_THROW(makePolicyFactory("NoSuchPolicy"), FatalError);
}

TEST(PolicyFactoryTest, PaperPolicyListShape)
{
    const auto names = paperPolicyNames();
    EXPECT_EQ(names.size(), 4u);
    EXPECT_EQ(names.front(), "LRU");
    EXPECT_EQ(names.back(), "MPPPB");
}

TEST(SingleCoreTest, ProducesConsistentNumbers)
{
    const auto tr = trace::makeSuiteTrace(4, 120000); // gups.fit
    trace::MaterializedTraceSource src(tr);
    const auto r = runSingleCore(src, makePolicyFactory("LRU"), {});
    EXPECT_EQ(r.benchmark, tr.name());
    EXPECT_EQ(r.policy, "LRU");
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
    EXPECT_GE(r.llcDemandAccesses, r.llcDemandMisses);
    EXPECT_NEAR(r.mpki,
                1000.0 * static_cast<double>(r.llcDemandMisses) /
                    static_cast<double>(r.instructions),
                1e-9);
}

TEST(SingleCoreTest, DeterministicAcrossRuns)
{
    const auto tr = trace::makeSuiteTrace(7, 120000);
    // One source serves both runs: the driver rewinds at entry.
    trace::MaterializedTraceSource src(tr);
    const auto a = runSingleCore(src, makePolicyFactory("MPPPB"), {});
    const auto b = runSingleCore(src, makePolicyFactory("MPPPB"), {});
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcDemandMisses, b.llcDemandMisses);
}

TEST(SingleCoreTest, MinNeverMissesMoreThanLru)
{
    for (unsigned bench : {6u, 9u, 14u}) {
        const auto tr = trace::makeSuiteTrace(bench, 250000);
        trace::MaterializedTraceSource src(tr);
        const auto lru =
            runSingleCore(src, makePolicyFactory("LRU"), {});
        const auto min = runSingleCoreMin(src, {});
        EXPECT_LE(min.llcDemandMisses, lru.llcDemandMisses)
            << tr.name();
        EXPECT_EQ(min.policy, "MIN");
    }
}

TEST(SingleCoreTest, WarmupShrinksMeasuredWindow)
{
    const auto tr = trace::makeSuiteTrace(0, 100000);
    SingleCoreConfig cfg;
    cfg.warmupFraction = 0.5;
    trace::MaterializedTraceSource src(tr);
    const auto r = runSingleCore(src, makePolicyFactory("LRU"), cfg);
    EXPECT_LT(r.instructions, tr.instructions());
    // Warmup stops at a record boundary; allow one pad-run of slack.
    EXPECT_GE(r.instructions, tr.instructions() / 2 - 64);
}

TEST(MultiCoreTest, RunsAMixAndReportsPerCoreIpc)
{
    const auto t0 = trace::makeSuiteTrace(0, 60000);
    const auto t1 = trace::makeSuiteTrace(4, 60000);
    const auto t2 = trace::makeSuiteTrace(7, 60000);
    const auto t3 = trace::makeSuiteTrace(25, 60000);
    MultiCoreConfig cfg;
    cfg.warmupInstructions = 40000;
    cfg.measureCycles = 50000;
    trace::MaterializedTraceSource s0(t0), s1(t1), s2(t2), s3(t3);
    const auto r = runMultiCore({&s0, &s1, &s2, &s3},
                                makePolicyFactory("LRU"), cfg);
    for (unsigned c = 0; c < 4; ++c) {
        EXPECT_GT(r.ipc[c], 0.0) << c;
        EXPECT_LE(r.ipc[c], 4.0) << c;
        EXPECT_GT(r.instructions[c], 0u);
    }
    EXPECT_NE(r.mixName.find(t0.name()), std::string::npos);
    EXPECT_GT(r.mpki, 0.0);
}

TEST(MultiCoreTest, WeightedSpeedupMath)
{
    MultiCoreResult r;
    r.ipc = {1.0, 2.0, 0.5, 1.0};
    const std::vector<double> single = {2.0, 2.0, 1.0, 0.5};
    const double ws = r.weightedSpeedup(single);
    EXPECT_DOUBLE_EQ(ws, 0.5 + 1.0 + 0.5 + 2.0);
    const std::vector<double> zero = {0.0, 1.0, 1.0, 1.0};
    EXPECT_THROW(r.weightedSpeedup(zero), FatalError);
}

TEST(MultiCoreTest, WeightedSpeedupValidatedAgainstCoreCount)
{
    MultiCoreResult r;
    r.ipc = {1.0, 2.0, 0.5, 1.0};
    // Any contiguous range of the right length works via std::span.
    const std::array<double, 4> arr = {2.0, 2.0, 1.0, 0.5};
    const std::vector<double> vec = {2.0, 2.0, 1.0, 0.5};
    EXPECT_DOUBLE_EQ(r.weightedSpeedup(arr), r.weightedSpeedup(vec));
    // A length mismatch against the core count must be rejected.
    const std::vector<double> three = {1.0, 1.0, 1.0};
    EXPECT_THROW(r.weightedSpeedup(three), FatalError);
    const std::vector<double> five = {1.0, 1.0, 1.0, 1.0, 1.0};
    EXPECT_THROW(r.weightedSpeedup(five), FatalError);
    // N-core results size the validation to N, not to a fixed 4.
    MultiCoreResult two;
    two.ipc = {1.0, 2.0};
    const std::vector<double> pair = {1.0, 1.0};
    EXPECT_DOUBLE_EQ(two.weightedSpeedup(pair), 3.0);
    EXPECT_THROW(two.weightedSpeedup(vec), FatalError);
}

TEST(MultiCoreTest, StandaloneIpcIsPositiveAndBounded)
{
    const auto tr = trace::makeSuiteTrace(0, 60000);
    MultiCoreConfig cfg;
    cfg.warmupInstructions = 40000;
    cfg.measureCycles = 50000;
    trace::MaterializedTraceSource src(tr);
    const double ipc = standaloneIpc(src, cfg);
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(ipc, 4.0);
}

TEST(MultiCoreTest, SharedCacheContentionReducesIpc)
{
    // Four *distinct* memory-hungry benchmarks (real mixes never
    // repeat a benchmark) must interfere in the shared LLC: per-core
    // IPC in the mix <= standalone IPC (with slack).
    const auto t0 = trace::makeSuiteTrace(7, 400000);  // thrash.2x
    const auto t1 = trace::makeSuiteTrace(9, 400000);  // scan.a
    const auto t2 = trace::makeSuiteTrace(14, 400000); // mixpc.hi
    const auto t3 = trace::makeSuiteTrace(16, 400000); // field.a
    MultiCoreConfig cfg;
    cfg.warmupInstructions = 400000;
    cfg.measureCycles = 150000;
    const std::array<const trace::Trace*, 4> traces = {&t0, &t1, &t2,
                                                       &t3};
    trace::MaterializedTraceSource s0(t0), s1(t1), s2(t2), s3(t3);
    const auto r = runMultiCore({&s0, &s1, &s2, &s3},
                                makePolicyFactory("LRU"), cfg);
    for (unsigned c = 0; c < 4; ++c) {
        trace::MaterializedTraceSource solo_src(*traces[c]);
        const double solo = standaloneIpc(solo_src, cfg);
        EXPECT_LE(r.ipc[c], solo * 1.10) << traces[c]->name();
    }
}

} // namespace
} // namespace mrp::sim
