/**
 * @file
 * Tests for the deterministic fault-injection facility: arming
 * windows (firstHit/maxFires), typed failure behavior per Kind,
 * deterministic byte corruption, and counter bookkeeping.
 */

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstring>
#include <new>

#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::fault {
namespace {

class FaultInjectionTest : public ::testing::Test
{
  protected:
    void TearDown() override { disarmAll(); }
};

/** Code carried by the FatalError @p fn throws; None if it doesn't. */
template <typename Fn>
ErrorCode
codeOf(Fn&& fn)
{
    try {
        fn();
    } catch (const FatalError& e) {
        return e.code();
    }
    return ErrorCode::None;
}

TEST_F(FaultInjectionTest, UnarmedSitesAreNoOps)
{
    EXPECT_FALSE(anyArmed());
    EXPECT_NO_THROW(checkIo("nowhere", "nothing"));
    EXPECT_NO_THROW(checkAlloc("nowhere"));
    EXPECT_NO_THROW(checkStall("nowhere"));
    std::array<char, 8> buf = {};
    EXPECT_NO_THROW(checkCorrupt("nowhere", buf.data(), buf.size()));
    for (const char c : buf)
        EXPECT_EQ(c, 0);
    EXPECT_EQ(hits("nowhere"), 0u);
}

TEST_F(FaultInjectionTest, IoFaultThrowsTypedErrorOnce)
{
    arm("t.io", Spec{});
    EXPECT_TRUE(anyArmed());
    EXPECT_EQ(codeOf([] { checkIo("t.io", "op"); }), ErrorCode::Io);
    EXPECT_EQ(fires("t.io"), 1u);
    // Default maxFires = 1: the retry succeeds.
    EXPECT_NO_THROW(checkIo("t.io", "op"));
    EXPECT_EQ(hits("t.io"), 2u);
    EXPECT_EQ(fires("t.io"), 1u);
}

TEST_F(FaultInjectionTest, FirstHitDelaysFiring)
{
    Spec spec;
    spec.firstHit = 3;
    arm("t.late", spec);
    EXPECT_NO_THROW(checkIo("t.late", "op"));
    EXPECT_NO_THROW(checkIo("t.late", "op"));
    EXPECT_THROW(checkIo("t.late", "op"), FatalError);
    EXPECT_EQ(hits("t.late"), 3u);
    EXPECT_EQ(fires("t.late"), 1u);
}

TEST_F(FaultInjectionTest, UnlimitedFiresKeepFiring)
{
    Spec spec;
    spec.maxFires = -1;
    arm("t.forever", spec);
    for (int i = 0; i < 3; ++i)
        EXPECT_THROW(checkIo("t.forever", "op"), FatalError);
    EXPECT_EQ(fires("t.forever"), 3u);
}

TEST_F(FaultInjectionTest, HugeFirstHitCountsWithoutFiring)
{
    Spec spec;
    spec.firstHit = 1000000000;
    arm("t.counter", spec);
    for (int i = 0; i < 5; ++i)
        EXPECT_NO_THROW(checkIo("t.counter", "op"));
    EXPECT_EQ(hits("t.counter"), 5u);
    EXPECT_EQ(fires("t.counter"), 0u);
}

TEST_F(FaultInjectionTest, AllocFaultThrowsBadAlloc)
{
    Spec spec;
    spec.kind = Kind::AllocFail;
    arm("t.alloc", spec);
    EXPECT_THROW(checkAlloc("t.alloc"), std::bad_alloc);
}

TEST_F(FaultInjectionTest, KindMismatchDoesNotFire)
{
    arm("t.kind", Spec{}); // IoError
    EXPECT_NO_THROW(checkAlloc("t.kind"));
    EXPECT_NO_THROW(checkStall("t.kind"));
    EXPECT_EQ(fires("t.kind"), 0u);
}

TEST_F(FaultInjectionTest, CorruptFlipsExactlyOneBitDeterministically)
{
    const auto flippedBit = [](std::uint64_t seed) {
        Spec spec;
        spec.kind = Kind::CorruptByte;
        spec.seed = seed;
        arm("t.corrupt", spec);
        std::array<unsigned char, 64> buf = {};
        checkCorrupt("t.corrupt", buf.data(), buf.size());
        disarm("t.corrupt");
        int flipped = -1;
        int bits = 0;
        for (std::size_t i = 0; i < buf.size(); ++i)
            for (unsigned b = 0; b < 8; ++b)
                if (buf[i] & (1u << b)) {
                    ++bits;
                    flipped = static_cast<int>(i * 8 + b);
                }
        EXPECT_EQ(bits, 1);
        return flipped;
    };
    const int first = flippedBit(7);
    EXPECT_EQ(first, flippedBit(7)); // same seed, same flip
    // Distinct seeds eventually pick a different position.
    bool differs = false;
    for (std::uint64_t s = 8; s < 16 && !differs; ++s)
        differs = flippedBit(s) != first;
    EXPECT_TRUE(differs);
}

TEST_F(FaultInjectionTest, StallSleepsForConfiguredDuration)
{
    Spec spec;
    spec.kind = Kind::Stall;
    spec.stallMillis = 30;
    arm("t.stall", spec);
    const auto start = std::chrono::steady_clock::now();
    checkStall("t.stall");
    const auto elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(elapsed, 25.0);
}

TEST_F(FaultInjectionTest, ScopedArmsAndDisarms)
{
    {
        Scoped f("t.scoped", Spec{});
        EXPECT_TRUE(anyArmed());
        EXPECT_THROW(checkIo("t.scoped", "op"), FatalError);
    }
    EXPECT_FALSE(anyArmed());
    EXPECT_NO_THROW(checkIo("t.scoped", "op"));
}

TEST_F(FaultInjectionTest, RearmingResetsCounters)
{
    arm("t.rearm", Spec{});
    EXPECT_THROW(checkIo("t.rearm", "op"), FatalError);
    EXPECT_EQ(hits("t.rearm"), 1u);
    arm("t.rearm", Spec{});
    EXPECT_EQ(hits("t.rearm"), 0u);
    EXPECT_THROW(checkIo("t.rearm", "op"), FatalError);
}

} // namespace
} // namespace mrp::fault
