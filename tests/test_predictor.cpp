/**
 * @file
 * Tests for the multiperspective predictor: configuration validation,
 * learning dead and live PC streams through the sampler, per-feature
 * associativity behaviour, and confidence bounds.
 */

#include <gtest/gtest.h>

#include "core/feature_sets.hpp"
#include "core/predictor.hpp"

namespace mrp::core {
namespace {

cache::CacheGeometry
geom()
{
    return cache::CacheGeometry(2 * 1024 * 1024, 16);
}

MultiperspectiveConfig
smallConfig(std::vector<FeatureSpec> features)
{
    MultiperspectiveConfig cfg;
    cfg.features = std::move(features);
    return cfg;
}

cache::AccessInfo
access(Pc pc, Addr addr)
{
    cache::AccessInfo info;
    info.pc = pc;
    info.addr = addr;
    info.type = cache::AccessType::Load;
    return info;
}

/** Drive a predictor with a dead stream: every block touched once. */
int
trainDeadStream(MultiperspectivePredictor& pred, Pc pc,
                std::uint32_t set, int rounds)
{
    int conf = 0;
    for (int i = 0; i < rounds; ++i) {
        // Unique block every time: pure dead-on-arrival traffic.
        const Addr a = (static_cast<Addr>(i) * 2048 + set) * 64;
        conf = pred.observe(access(pc, a), set, /*hit=*/false);
    }
    return conf;
}

TEST(PredictorConfigTest, Validation)
{
    MultiperspectiveConfig cfg;
    EXPECT_THROW(MultiperspectivePredictor(geom(), 1, cfg), FatalError);
    cfg.features = featureSetTable1A();
    cfg.samplerAssoc = 0;
    EXPECT_THROW(MultiperspectivePredictor(geom(), 1, cfg), FatalError);
    cfg.samplerAssoc = 12; // smaller than some feature A values
    EXPECT_THROW(MultiperspectivePredictor(geom(), 1, cfg), FatalError);
}

TEST(PredictorConfigTest, TotalWeightsMatchTableSizes)
{
    const auto cfg = smallConfig(featureSetTable1A());
    MultiperspectivePredictor pred(geom(), 1, cfg);
    std::size_t expected = 0;
    for (const auto& f : cfg.features)
        expected += f.tableSize();
    EXPECT_EQ(pred.totalWeights(), expected);
}

TEST(PredictorTest, LearnsADeadPcStream)
{
    auto cfg = smallConfig({FeatureSpec::parse("bias(18,1)")});
    MultiperspectivePredictor pred(geom(), 1, cfg);
    // Set 0 is sampled (sampling picks multiples of sets/sampled).
    const int conf = trainDeadStream(pred, 0x400000, 0, 2000);
    EXPECT_GT(conf, 20); // strongly dead
}

TEST(PredictorTest, LearnsALivePcStream)
{
    auto cfg = smallConfig({FeatureSpec::parse("bias(18,1)")});
    MultiperspectivePredictor pred(geom(), 1, cfg);
    // Two blocks ping-ponged: every access after the first pair is a
    // reuse at LRU position 1 (< A for all features).
    int conf = 0;
    for (int i = 0; i < 2000; ++i)
        conf = pred.observe(access(0x400000, (i % 2) * 2048 * 64), 0,
                            true);
    EXPECT_LT(conf, -20); // strongly live
}

TEST(PredictorTest, SeparatesDeadAndLivePcs)
{
    auto cfg = smallConfig({FeatureSpec::parse("bias(18,1)")});
    MultiperspectivePredictor pred(geom(), 1, cfg);
    const Pc dead_pc = 0x400000;
    const Pc live_pc = 0x500000;
    for (int i = 0; i < 3000; ++i) {
        // Dead PC touches fresh blocks; live PC ping-pongs two blocks.
        pred.observe(
            access(dead_pc, (static_cast<Addr>(i) * 4096 + 1) * 2048 * 64),
            0, false);
        pred.observe(access(live_pc, (i % 2) * 2048 * 64), 0, true);
    }
    const int dead_conf = pred.observe(
        access(dead_pc, 0x123ull * 2048 * 64), 0, false);
    const int live_conf =
        pred.observe(access(live_pc, 0), 0, true);
    EXPECT_GT(dead_conf, live_conf + 20);
}

TEST(PredictorTest, ConfidenceStaysWithinNineBits)
{
    auto cfg = smallConfig(featureSetTable1A());
    MultiperspectivePredictor pred(geom(), 1, cfg);
    Rng rng(1);
    int lo = 0, hi = 0;
    for (int i = 0; i < 20000; ++i) {
        const int c = pred.observe(
            access(0x400000 + 4 * rng.below(4), rng.below(1u << 30)),
            0, rng.chance(0.3));
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
    EXPECT_GE(lo, pred.minConfidence());
    EXPECT_LE(hi, pred.maxConfidence());
    EXPECT_EQ(pred.maxConfidence(), 255);
    EXPECT_EQ(pred.minConfidence(), -256);
}

TEST(PredictorTest, NonSampledSetsDoNotTrain)
{
    auto cfg = smallConfig({FeatureSpec::parse("bias(18,1)")});
    MultiperspectivePredictor pred(geom(), 1, cfg);
    // Set 1 is not sampled (2048 sets, 64 sampled => multiples of 32).
    const int before = pred.observe(access(0x400000, 64), 1, false);
    trainDeadStream(pred, 0x400000, 1, 500);
    const int after = pred.observe(access(0x400000, 64), 1, false);
    EXPECT_EQ(pred.trainingEvents(), 0u);
    EXPECT_EQ(before, after);
}

TEST(PredictorTest, WritebacksAreIgnored)
{
    auto cfg = smallConfig({FeatureSpec::parse("bias(18,1)")});
    MultiperspectivePredictor pred(geom(), 1, cfg);
    cache::AccessInfo wb = access(0x400000, 64);
    wb.type = cache::AccessType::Writeback;
    EXPECT_EQ(pred.observe(wb, 0, false), 0);
    EXPECT_EQ(pred.trainingEvents(), 0u);
}

/**
 * Per-feature associativity: with A=1, a reuse at LRU position >= 1
 * must NOT train "live" (the feature's 1-way cache would have missed),
 * while an A=18 feature trains live for any sampler hit.
 */
TEST(PredictorTest, AssociativityGatesLiveTraining)
{
    auto run = [&](const char* feature) {
        auto cfg = smallConfig({FeatureSpec::parse(feature)});
        MultiperspectivePredictor pred(geom(), 1, cfg);
        int conf = 0;
        // Ping-pong two blocks: each hit occurs at LRU position 1.
        for (int i = 0; i < 1000; ++i)
            conf = pred.observe(access(0x400000, (i % 2) * 2048 * 64),
                                0, true);
        return conf;
    };
    EXPECT_LT(run("bias(18,1)"), -20); // live at assoc 18
    // At A=1 the same stream never trains live, and each promotion
    // demotes the other block to exactly position 1 == A => dead.
    EXPECT_GT(run("bias(1,1)"), 20);
}

TEST(PredictorTest, DistinguishesByAddressRegion)
{
    auto cfg = smallConfig({FeatureSpec::parse("address(18,12,25,0)")});
    MultiperspectivePredictor pred(geom(), 1, cfg);
    const Addr live_base = 0x10000000;
    const Addr dead_base = 0x80000000;
    for (int i = 0; i < 3000; ++i) {
        pred.observe(access(0x400000, live_base + (i % 2) * 2048 * 64),
                     0, true);
        pred.observe(
            access(0x400000,
                   dead_base + (static_cast<Addr>(i) + 7) * 2048 * 64),
            0, false);
    }
    // Probe with addresses drawn from the trained populations (the
    // bases themselves alias: both have zero bits in 12..25).
    const int live = pred.observe(
        access(0x400000, live_base + 1 * 2048 * 64), 0, true);
    const int dead = pred.observe(
        access(0x400000, dead_base + 1234ull * 2048 * 64), 0, false);
    EXPECT_GT(dead, live + 20);
}

} // namespace
} // namespace mrp::core
