/**
 * @file
 * Tests for the self-registering policy registry: lookup of built-in
 * names, the unknown-name and duplicate-registration error paths, the
 * makePolicyFactory shim, and that every paper policy constructs a
 * working policy end to end on a tiny trace.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/policies.hpp"
#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"

namespace mrp::sim {
namespace {

TEST(PolicyRegistryTest, ContainsEveryBuiltinName)
{
    const auto names = PolicyRegistry::names();
    for (const char* expect :
         {"LRU", "Random", "SRRIP", "DRRIP", "MDPP", "SHiP", "SDBP",
          "Perceptron", "Hawkeye", "MPPPB", "MPPPB-MC", "MPPPB-DYN",
          "MPPPB-1A", "MPPPB-1B", "MPPPB-Local", "MPPPB-T2"}) {
        EXPECT_TRUE(PolicyRegistry::contains(expect)) << expect;
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    // MIN is deliberately absent: it needs the two-pass runner.
    EXPECT_FALSE(PolicyRegistry::contains("MIN"));
}

TEST(PolicyRegistryTest, UnknownNameThrows)
{
    EXPECT_THROW(PolicyRegistry::make("NoSuchPolicy"), FatalError);
    EXPECT_FALSE(PolicyRegistry::contains("NoSuchPolicy"));
}

TEST(PolicyRegistryTest, DuplicateRegistrationRejected)
{
    // Re-registering a built-in must throw...
    EXPECT_THROW(PolicyRegistry::registerPolicy(
                     "LRU", PolicyRegistry::make("SRRIP")),
                 FatalError);
    // ...and so must re-registering a fresh name.
    const std::string name = "test-registry-dup";
    PolicyRegistry::registerPolicy(name, PolicyRegistry::make("LRU"));
    EXPECT_TRUE(PolicyRegistry::contains(name));
    EXPECT_THROW(PolicyRegistry::registerPolicy(
                     name, PolicyRegistry::make("LRU")),
                 FatalError);
}

TEST(PolicyRegistryTest, NullFactoryRejected)
{
    EXPECT_THROW(
        PolicyRegistry::registerPolicy("test-null-factory", {}),
        FatalError);
    EXPECT_FALSE(PolicyRegistry::contains("test-null-factory"));
}

TEST(PolicyRegistryTest, RegisteredPolicyIsConstructibleByName)
{
    const std::string name = "test-registry-custom";
    PolicyRegistry::registerPolicy(name,
                                   PolicyRegistry::make("SRRIP"));
    const cache::CacheGeometry g(256 * 1024, 16);
    auto pol = PolicyRegistry::make(name)(g, 1);
    ASSERT_NE(pol, nullptr);
}

TEST(PolicyRegistryTest, ShimMatchesRegistry)
{
    const cache::CacheGeometry g(2 * 1024 * 1024, 16);
    auto viaShim = makePolicyFactory("Hawkeye")(g, 1);
    auto viaRegistry = PolicyRegistry::make("Hawkeye")(g, 1);
    ASSERT_NE(viaShim, nullptr);
    ASSERT_NE(viaRegistry, nullptr);
    EXPECT_EQ(viaShim->name(), viaRegistry->name());
    EXPECT_THROW(makePolicyFactory("NoSuchPolicy"), FatalError);
}

TEST(PolicyRegistryTest, PaperPolicyNamesIsARegistryQuery)
{
    const auto names = paperPolicyNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "LRU");
    EXPECT_EQ(names[1], "Hawkeye");
    EXPECT_EQ(names[2], "Perceptron");
    EXPECT_EQ(names[3], "MPPPB");
    for (const auto& n : names)
        EXPECT_TRUE(PolicyRegistry::contains(n)) << n;
}

TEST(PolicyRegistryTest, EveryPaperPolicyRunsOnATinyTrace)
{
    const auto tr = trace::makeSuiteTrace(4, 60000); // gups.fit
    // One source serves every policy: the driver rewinds at entry.
    trace::MaterializedTraceSource src(tr);
    for (const auto& name : paperPolicyNames()) {
        const auto r =
            runSingleCore(src, PolicyRegistry::make(name), {});
        EXPECT_GT(r.ipc, 0.0) << name;
        EXPECT_GT(r.instructions, 0u) << name;
        EXPECT_EQ(r.benchmark, tr.name()) << name;
    }
}

} // namespace
} // namespace mrp::sim
