/**
 * @file
 * Integration tests for the three-level hierarchy: filtering, latency
 * assignment, writeback propagation, prefetch integration, and the
 * policy-invariance of the LLC reference stream (MIN's prerequisite).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/hierarchy.hpp"
#include "policy/lru.hpp"
#include "policy/min.hpp"
#include "policy/srrip.hpp"

namespace mrp::cache {
namespace {

std::unique_ptr<Hierarchy>
make(bool prefetch = false, unsigned cores = 1)
{
    HierarchyConfig cfg;
    cfg.cores = cores;
    cfg.prefetchEnabled = prefetch;
    const CacheGeometry g(cfg.llcBytes, cfg.llcWays);
    return std::make_unique<Hierarchy>(
        cfg, std::make_unique<policy::LruPolicy>(g));
}

TEST(HierarchyTest, LatenciesPerLevel)
{
    auto h = make();
    const Addr a = 0x1000000;
    EXPECT_EQ(h->access(0, 0x400000, a, false, nullptr), 240u); // DRAM
    EXPECT_EQ(h->access(0, 0x400000, a, false, nullptr), 4u);   // L1
    // Evict from L1 by filling 8 conflicting lines: stride 4KB maps
    // to the same L1 set (64 sets) but different L2 sets (512 sets).
    for (int i = 1; i <= 8; ++i)
        h->access(0, 0x400000, a + i * 4096, false, nullptr);
    EXPECT_EQ(h->access(0, 0x400000, a, false, nullptr), 16u); // L2
}

TEST(HierarchyTest, LlcHitLatency)
{
    auto h = make();
    const Addr a = 0x2000000;
    h->access(0, 0x400000, a, false, nullptr);
    // Push out of L1 (8 ways x 32KB apart) and L2 (8 ways x 256KB
    // apart), leaving the block only in the LLC.
    for (int i = 1; i <= 12; ++i) {
        h->access(0, 0x400000, a + i * 32768ull, false, nullptr);
        h->access(0, 0x400000, a + i * 262144ull, false, nullptr);
    }
    EXPECT_EQ(h->access(0, 0x400000, a, false, nullptr), 40u);
}

TEST(HierarchyTest, DemandCountsReachLlcOnlyOnL2Miss)
{
    auto h = make();
    const Addr a = 0x3000000;
    h->access(0, 0x400000, a, false, nullptr);
    h->access(0, 0x400000, a, false, nullptr); // L1 hit
    EXPECT_EQ(h->llc().stats().demandAccesses, 1u);
    EXPECT_EQ(h->l1(0).stats().demandAccesses, 2u);
}

TEST(HierarchyTest, DirtyDataFlowsDownAsWritebacks)
{
    auto h = make();
    const Addr a = 0x4000000;
    h->access(0, 0x400000, a, true, nullptr); // store, dirty in L1
    // Evict through L1 and then L2 with conflicting fills.
    for (int i = 1; i <= 9; ++i)
        h->access(0, 0x400000, a + i * 32768ull, false, nullptr);
    EXPECT_GT(h->l2(0).stats().writebackAccesses, 0u);
    // Push the dirty block out of L2 as well.
    for (int i = 1; i <= 9; ++i)
        h->access(0, 0x400000, a + i * 262144ull, false, nullptr);
    EXPECT_GT(h->llc().stats().writebackAccesses, 0u);
}

TEST(HierarchyTest, StreamPrefetcherFillsAhead)
{
    auto hp = make(true);
    auto hn = make(false);
    // A clean ascending block stream.
    for (int i = 0; i < 64; ++i) {
        hp->access(0, 0x400000, 0x5000000ull + i * 64, false, nullptr);
        hn->access(0, 0x400000, 0x5000000ull + i * 64, false, nullptr);
    }
    // With prefetching, later demand accesses hit L1; total demand
    // misses at L1 must drop.
    EXPECT_LT(hp->l1(0).stats().demandMisses,
              hn->l1(0).stats().demandMisses);
    EXPECT_GT(hp->llc().stats().prefetchAccesses, 0u);
}

TEST(HierarchyTest, PerCoreCachesAreIsolated)
{
    auto h = make(false, 2);
    const Addr a = 0x6000000;
    h->access(0, 0x400000, a, false, nullptr);
    EXPECT_TRUE(h->l1(0).contains(a));
    EXPECT_FALSE(h->l1(1).contains(a));
    // Core 1 misses its private levels but hits the shared LLC.
    EXPECT_EQ(h->access(1, 0x400000, a, false, nullptr), 40u);
}

TEST(HierarchyTest, ResetStatsClearsCounters)
{
    auto h = make();
    h->access(0, 0x400000, 0x7000000, false, nullptr);
    h->resetStats();
    EXPECT_EQ(h->llc().stats().totalAccesses(), 0u);
    EXPECT_EQ(h->l1(0).stats().demandAccesses, 0u);
    EXPECT_EQ(h->dramReads(), 0u);
    // Contents were preserved.
    EXPECT_EQ(h->access(0, 0x400000, 0x7000000, false, nullptr), 4u);
}

TEST(HierarchyTest, DramCountersTrackMissesAndDirtyEvictions)
{
    auto h = make();
    h->access(0, 0x400000, 0x8000000, false, nullptr);
    EXPECT_EQ(h->dramReads(), 1u);
}

/**
 * The invariant that makes two-pass MIN sound: the LLC reference
 * stream does not depend on the LLC policy.
 */
TEST(HierarchyTest, LlcStreamIsPolicyInvariant)
{
    HierarchyConfig cfg;
    cfg.prefetchEnabled = true;
    const CacheGeometry g(cfg.llcBytes, cfg.llcWays);

    auto run = [&](std::unique_ptr<LlcPolicy> pol) {
        policy::LlcAccessRecorder rec;
        Hierarchy h(cfg, std::move(pol));
        h.llc().setObserver(&rec);
        Rng rng(5);
        CoreContext ctx;
        for (int i = 0; i < 50000; ++i) {
            const Addr a = (rng.below(1 << 16)) * 64;
            h.access(0, 0x400000 + 4 * rng.below(8), a,
                     rng.chance(0.2), &ctx);
        }
        return rec.sequence();
    };

    const auto s1 = run(std::make_unique<policy::LruPolicy>(g));
    const auto s2 = run(std::make_unique<policy::SrripPolicy>(g));
    EXPECT_EQ(s1, s2);
}

} // namespace
} // namespace mrp::cache
