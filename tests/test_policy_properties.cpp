/**
 * @file
 * Cross-policy property sweeps: every policy must keep a cache
 * functionally correct (hits after fills, bounded victims), be
 * deterministic, and behave sanely end-to-end on a real workload.
 */

#include <gtest/gtest.h>

#include <string>

#include "cache/policy_cache.hpp"
#include "sim/single_core.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"
#include "util/rng.hpp"

namespace mrp {
namespace {

const char* const kAllPolicies[] = {
    "LRU",     "Random",     "SRRIP",   "DRRIP",
    "MDPP",    "SHiP",       "SDBP",    "Perceptron", "Hawkeye",
    "MPPPB",   "MPPPB-MC",   "MPPPB-DYN",
};

class EveryPolicy : public ::testing::TestWithParam<const char*>
{
};

/**
 * Random traffic through a small PolicyCache: victims must always be
 * in range (the cache panics otherwise), hits must be found, and the
 * hit/miss accounting must add up.
 */
TEST_P(EveryPolicy, FunctionalCorrectnessUnderRandomTraffic)
{
    const Addr bytes = 64 * 1024;
    const std::uint32_t ways = 16;
    const cache::CacheGeometry g(bytes, ways);
    cache::PolicyCache c(bytes, ways,
                         sim::makePolicyFactory(GetParam())(g, 1), 1);
    Rng rng(99);
    cache::CoreContext ctx;
    for (int i = 0; i < 100000; ++i) {
        cache::AccessInfo info;
        info.pc = 0x400000 + 4 * rng.below(32);
        info.addr = rng.below(1 << 22) * 64;
        info.type = rng.chance(0.1) ? cache::AccessType::Writeback
                    : rng.chance(0.1)
                        ? cache::AccessType::Prefetch
                        : (rng.chance(0.3) ? cache::AccessType::Store
                                           : cache::AccessType::Load);
        info.ctx = &ctx;
        const auto r = c.access(info);
        if (r.hit) {
            EXPECT_TRUE(c.contains(info.addr));
        }
        ctx.notePc(info.pc);
    }
    const auto& s = c.stats();
    EXPECT_EQ(s.demandAccesses, s.demandHits + s.demandMisses);
    EXPECT_GT(s.demandHits, 0u);
    EXPECT_GT(s.demandMisses, 0u);
}

/** End-to-end determinism: identical runs give identical cycles. */
TEST_P(EveryPolicy, EndToEndDeterminism)
{
    const auto tr = trace::makeSuiteTrace(14, 150000); // mixpc.hi
    const auto factory = sim::makePolicyFactory(GetParam());
    // One source serves both runs: the driver rewinds at entry.
    trace::MaterializedTraceSource src(tr);
    const auto a = sim::runSingleCore(src, factory, {});
    const auto b = sim::runSingleCore(src, factory, {});
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.llcDemandMisses, b.llcDemandMisses);
    EXPECT_EQ(a.llcBypasses, b.llcBypasses);
}

/** IPC must stay within the machine's physical range. */
TEST_P(EveryPolicy, IpcWithinMachineBounds)
{
    const auto tr = trace::makeSuiteTrace(21, 150000); // prodcons.a
    trace::MaterializedTraceSource src(tr);
    const auto r =
        sim::runSingleCore(src, sim::makePolicyFactory(GetParam()), {});
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, EveryPolicy,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });

/**
 * On a heavily LRU-adversarial workload, each predictor-based policy
 * must beat plain LRU (the paper's core premise).
 */
class PredictorPolicies : public ::testing::TestWithParam<const char*>
{
};

TEST_P(PredictorPolicies, BeatsLruOnThrash)
{
    const auto tr = trace::makeSuiteTrace(32, 1200000); // thrash.1p2x
    trace::MaterializedTraceSource src(tr);
    const auto lru =
        sim::runSingleCore(src, sim::makePolicyFactory("LRU"), {});
    const auto r =
        sim::runSingleCore(src, sim::makePolicyFactory(GetParam()), {});
    EXPECT_LT(r.llcDemandMisses, lru.llcDemandMisses) << GetParam();
    EXPECT_GT(r.ipc, lru.ipc) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Predictors, PredictorPolicies,
                         ::testing::Values("SDBP", "Perceptron",
                                           "Hawkeye", "MPPPB"));

} // namespace
} // namespace mrp
