/**
 * @file
 * Tests for the set-sampling arithmetic and the level statistics.
 */

#include <gtest/gtest.h>

#include "policy/sampling.hpp"
#include "stats/level_stats.hpp"

namespace mrp {
namespace {

TEST(SetSamplingTest, PicksEvenlySpacedSets)
{
    policy::SetSampling s(2048, 64);
    unsigned sampled = 0;
    for (std::uint32_t set = 0; set < 2048; ++set)
        if (s.sampled(set))
            ++sampled;
    EXPECT_EQ(sampled, 64u);
    EXPECT_TRUE(s.sampled(0));
    EXPECT_TRUE(s.sampled(32));
    EXPECT_FALSE(s.sampled(1));
    EXPECT_EQ(s.samplerSetOf(0), 0u);
    EXPECT_EQ(s.samplerSetOf(64), 2u);
    EXPECT_EQ(s.sampledSets(), 64u);
}

TEST(SetSamplingTest, SamplerSetIndicesAreDense)
{
    policy::SetSampling s(8192, 256);
    std::uint32_t next = 0;
    for (std::uint32_t set = 0; set < 8192; ++set) {
        if (s.sampled(set)) {
            EXPECT_EQ(s.samplerSetOf(set), next++);
        }
    }
    EXPECT_EQ(next, 256u);
}

TEST(SetSamplingTest, RejectsInvalidShapes)
{
    EXPECT_THROW(policy::SetSampling(2048, 0), FatalError);
    EXPECT_THROW(policy::SetSampling(64, 128), FatalError);
    EXPECT_THROW(policy::SetSampling(100, 33), FatalError);
}

TEST(SetSamplingTest, PanicsOnUnsampledLookup)
{
    policy::SetSampling s(2048, 64);
    EXPECT_THROW(s.samplerSetOf(1), PanicError);
}

TEST(SetSamplingTest, PartialTagsSpreadAndAreStable)
{
    const auto t1 = policy::SetSampling::partialTag(0x1000);
    EXPECT_EQ(t1, policy::SetSampling::partialTag(0x1000));
    EXPECT_EQ(t1, policy::SetSampling::partialTag(0x103F)); // same block
    // Distinct blocks rarely collide in 16 bits.
    unsigned collisions = 0;
    for (Addr a = 0; a < 2000; ++a)
        if (policy::SetSampling::partialTag(a * 64) == t1)
            ++collisions;
    EXPECT_LE(collisions, 2u);
}

TEST(LevelStatsTest, AggregatesAndResets)
{
    stats::LevelStats s;
    s.demandAccesses = 10;
    s.demandHits = 7;
    s.demandMisses = 3;
    s.prefetchAccesses = 4;
    s.prefetchMisses = 2;
    s.writebackAccesses = 1;
    s.writebackMisses = 1;
    EXPECT_EQ(s.totalAccesses(), 15u);
    EXPECT_EQ(s.totalMisses(), 6u);
    s.reset();
    EXPECT_EQ(s.totalAccesses(), 0u);
    EXPECT_EQ(s.demandHits, 0u);
}

} // namespace
} // namespace mrp
