/**
 * @file
 * Tests for the SHiP baseline (signature-based hit predictor).
 */

#include <gtest/gtest.h>

#include "cache/policy_cache.hpp"
#include "policy/ship.hpp"

namespace mrp::policy {
namespace {

cache::CacheGeometry
geom()
{
    return cache::CacheGeometry(2 * 1024 * 1024, 16);
}

cache::AccessInfo
access(Pc pc, Addr addr)
{
    cache::AccessInfo info;
    info.pc = pc;
    info.addr = addr;
    info.type = cache::AccessType::Load;
    return info;
}

TEST(ShipTest, LearnsNeverReusedSignature)
{
    auto pol = std::make_unique<ShipPolicy>(geom());
    auto* ship = pol.get();
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    const Pc dead_pc = 0x400000;
    for (int i = 0; i < 300000; ++i)
        llc.access(access(dead_pc, static_cast<Addr>(i) * 64 * 3));
    EXPECT_EQ(ship->shctOf(dead_pc), 0u);
}

TEST(ShipTest, ReusedSignatureStaysPositive)
{
    auto pol = std::make_unique<ShipPolicy>(geom());
    auto* ship = pol.get();
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    const Pc live_pc = 0x500000;
    for (int round = 0; round < 20; ++round)
        for (int b = 0; b < 2048; ++b)
            llc.access(access(live_pc, static_cast<Addr>(b) * 64));
    EXPECT_GT(ship->shctOf(live_pc), 0u);
}

TEST(ShipTest, DeadSignatureFillsAtEvictionPoint)
{
    // Once a signature's counter is zero, its fills go to max RRPV
    // and are the next victims — a scan cannot displace live data.
    auto pol = std::make_unique<ShipPolicy>(geom());
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    const Pc dead_pc = 0x400000;
    const Pc live_pc = 0x500000;
    // Train: dead stream + live loop.
    for (int i = 0; i < 200000; ++i) {
        llc.access(access(dead_pc,
                          0x40000000ull + static_cast<Addr>(i) * 64 * 3));
        llc.access(access(live_pc, static_cast<Addr>(i % 4096) * 64));
    }
    // Measure live-loop hit rate under continued scanning.
    std::uint64_t hits = 0;
    const int probes = 4096;
    for (int i = 0; i < probes; ++i) {
        llc.access(access(dead_pc,
                          0x80000000ull + static_cast<Addr>(i) * 64 * 3));
        hits += llc.access(access(live_pc,
                                  static_cast<Addr>(i % 4096) * 64))
                    .hit
                    ? 1
                    : 0;
    }
    EXPECT_GT(hits, probes * 9 / 10);
}

TEST(ShipTest, WritebackHitsDoNotTrain)
{
    auto pol = std::make_unique<ShipPolicy>(geom());
    auto* ship = pol.get();
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    const Pc pc = 0x600000;
    const auto before = ship->shctOf(cache::kWritebackPc);
    llc.access(access(pc, 0x1000));
    cache::AccessInfo wb = access(cache::kWritebackPc, 0x1000);
    wb.type = cache::AccessType::Writeback;
    llc.access(wb);
    EXPECT_EQ(ship->shctOf(cache::kWritebackPc), before);
}

} // namespace
} // namespace mrp::policy
