/**
 * @file
 * Tests for the stream prefetcher: direction learning after at most
 * two misses, degree/distance behaviour, stream capacity with LRU
 * replacement.
 */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/stream_prefetcher.hpp"

namespace mrp::prefetch {
namespace {

std::vector<Addr>
missSeq(StreamPrefetcher& pf, const std::vector<Addr>& blocks)
{
    std::vector<Addr> out;
    for (const Addr b : blocks)
        pf.onL1Miss(b << kBlockShift, out);
    return out;
}

TEST(StreamPrefetcherTest, NoPrefetchOnFirstTwoMisses)
{
    StreamPrefetcher pf;
    std::vector<Addr> out;
    pf.onL1Miss(100 << kBlockShift, out);
    EXPECT_TRUE(out.empty()); // stream allocated, no direction yet
}

TEST(StreamPrefetcherTest, AscendingStreamPrefetchesAhead)
{
    StreamPrefetcher pf;
    const auto out = missSeq(pf, {100, 101, 102, 103});
    ASSERT_FALSE(out.empty());
    // All prefetched addresses run ahead of the last miss direction.
    for (const Addr a : out)
        EXPECT_GT(blockAddr(a), 101u);
    EXPECT_GT(pf.issued(), 0u);
}

TEST(StreamPrefetcherTest, DescendingStreamDetected)
{
    StreamPrefetcher pf;
    const auto out = missSeq(pf, {200, 199, 198});
    ASSERT_FALSE(out.empty());
    for (const Addr a : out)
        EXPECT_LT(blockAddr(a), 199u);
}

TEST(StreamPrefetcherTest, DegreeLimitsPerTriggerIssue)
{
    StreamPrefetcherConfig cfg;
    cfg.degree = 2;
    cfg.distance = 16;
    StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    pf.onL1Miss(10 << kBlockShift, out);
    pf.onL1Miss(11 << kBlockShift, out);
    const std::size_t first_burst = out.size();
    EXPECT_LE(first_burst, 2u);
}

TEST(StreamPrefetcherTest, DistanceBoundsRunahead)
{
    StreamPrefetcherConfig cfg;
    cfg.degree = 8;
    cfg.distance = 4;
    StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    for (Addr b = 50; b < 60; ++b)
        pf.onL1Miss(b << kBlockShift, out);
    for (const Addr a : out)
        EXPECT_LE(blockAddr(a), 59u + 4u);
}

TEST(StreamPrefetcherTest, RandomMissesProduceNoStreams)
{
    StreamPrefetcher pf;
    std::vector<Addr> out;
    // Far-apart blocks never match a stream window.
    for (Addr b = 0; b < 64; ++b)
        pf.onL1Miss((b * 1000) << kBlockShift, out);
    EXPECT_TRUE(out.empty());
}

TEST(StreamPrefetcherTest, TracksSixteenConcurrentStreams)
{
    StreamPrefetcherConfig cfg;
    StreamPrefetcher pf(cfg);
    std::vector<Addr> out;
    // Interleave 16 streams; all should be confirmed and prefetching.
    for (int round = 0; round < 4; ++round)
        for (Addr s = 0; s < 16; ++s)
            pf.onL1Miss((s * 100000 + 7 + round) << kBlockShift, out);
    EXPECT_GT(out.size(), 16u);
}

TEST(StreamPrefetcherTest, LruReplacesColdStreams)
{
    StreamPrefetcher pf;
    std::vector<Addr> out;
    // Allocate 16 streams, then a 17th: the first stream must be the
    // one replaced, so re-missing near stream 0's region allocates
    // fresh (no immediate prefetch).
    for (Addr s = 0; s < 17; ++s)
        pf.onL1Miss((s * 100000) << kBlockShift, out);
    out.clear();
    pf.onL1Miss((0 * 100000 + 1) << kBlockShift, out);
    EXPECT_TRUE(out.empty()); // had to re-learn stream 0
}

TEST(StreamPrefetcherTest, ResetDropsState)
{
    StreamPrefetcher pf;
    std::vector<Addr> out;
    pf.onL1Miss(100 << kBlockShift, out);
    pf.onL1Miss(101 << kBlockShift, out);
    pf.reset();
    out.clear();
    pf.onL1Miss(102 << kBlockShift, out);
    EXPECT_TRUE(out.empty()); // stream was forgotten
}

// ---------------------------------------------------------------- //
// Accuracy/coverage tracking (telemetry)

TEST(StreamTrackingTest, DisabledByDefaultAndCountsFromEnable)
{
    StreamPrefetcher pf;
    EXPECT_FALSE(pf.trackingEnabled());
    missSeq(pf, {100, 101, 102, 103}); // issues before tracking
    const std::uint64_t pre = pf.issued();
    ASSERT_GT(pre, 0u);
    pf.enableTracking();
    EXPECT_TRUE(pf.trackingEnabled());
    EXPECT_EQ(pf.trackedIssued(), 0u); // pre-enable issues excluded
    EXPECT_EQ(pf.accuracy(), 0.0);     // no tracked issues yet
    EXPECT_EQ(pf.coverage(), 0.0);     // no hits or misses yet
}

TEST(StreamTrackingTest, DemandHitOnPrefetchedBlockIsUseful)
{
    StreamPrefetcher pf;
    pf.enableTracking();
    // Two learning misses confirm the stream and issue the runahead.
    const auto out = missSeq(pf, {100, 101});
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(pf.trackedIssued(), out.size());
    EXPECT_EQ(pf.demandMisses(), 2u);

    pf.observeDemandHit(out.front());
    EXPECT_EQ(pf.useful(), 1u);
    // A hit consumes the filter entry: the same block is not counted
    // as useful twice.
    pf.observeDemandHit(out.front());
    EXPECT_EQ(pf.useful(), 1u);
    // Hits on never-prefetched blocks are ignored.
    pf.observeDemandHit(999999 << kBlockShift);
    EXPECT_EQ(pf.useful(), 1u);

    EXPECT_EQ(pf.accuracy(),
              1.0 / static_cast<double>(out.size()));
    EXPECT_EQ(pf.coverage(), 1.0 / (1.0 + 2.0));
}

TEST(StreamTrackingTest, DemandMissOnPrefetchedBlockIsLate)
{
    StreamPrefetcher pf;
    pf.enableTracking();
    const auto out = missSeq(pf, {100, 101});
    ASSERT_FALSE(out.empty());
    // Demand-missing a prefetched block means the prefetch was late;
    // the slot is consumed, so it cannot later count as useful too.
    missSeq(pf, {blockAddr(out.front())});
    EXPECT_EQ(pf.late(), 1u);
    pf.observeDemandHit(out.front());
    EXPECT_EQ(pf.useful(), 0u);
}

TEST(StreamTrackingTest, PerfectStreamReachesFullAccuracy)
{
    // In the hierarchy, prefetched blocks become L1 *hits*, so the
    // prefetcher sees onL1Miss only for uncovered blocks. Model that:
    // two learning misses, then every issued prefetch is demand-hit.
    StreamPrefetcher pf;
    pf.enableTracking();
    const auto out = missSeq(pf, {100, 101});
    ASSERT_FALSE(out.empty());
    for (const Addr a : out)
        pf.observeDemandHit(a);
    EXPECT_EQ(pf.useful(), out.size());
    EXPECT_EQ(pf.accuracy(), 1.0);
    // Coverage counts the two learning misses against the hits.
    const double u = static_cast<double>(out.size());
    EXPECT_EQ(pf.coverage(), u / (u + 2.0));
}

TEST(StreamTrackingTest, ResetRestartsTheTrackedPeriod)
{
    StreamPrefetcher pf;
    pf.enableTracking();
    const auto out = missSeq(pf, {100, 101});
    ASSERT_FALSE(out.empty());
    pf.observeDemandHit(out.front());
    EXPECT_EQ(pf.useful(), 1u);
    pf.reset();
    EXPECT_TRUE(pf.trackingEnabled()); // tracking survives a reset...
    EXPECT_EQ(pf.trackedIssued(), 0u); // ...but the period restarts
    EXPECT_EQ(pf.useful(), 0u);
    EXPECT_EQ(pf.demandMisses(), 0u);
    pf.observeDemandHit(out.front()); // filter was cleared
    EXPECT_EQ(pf.useful(), 0u);
}

} // namespace
} // namespace mrp::prefetch
