/**
 * @file
 * Property tests of the 4-core driver: determinism, mix-order
 * independence of per-benchmark generation, and sane interaction
 * between policies and shared-cache pressure.
 */

#include <gtest/gtest.h>

#include "sim/multi_core.hpp"
#include "trace/mix.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

namespace mrp::sim {
namespace {

MultiCoreConfig
fastConfig()
{
    MultiCoreConfig cfg;
    cfg.warmupInstructions = 300000;
    cfg.measureCycles = 120000;
    return cfg;
}

TEST(MultiCoreProperties, DeterministicAcrossRuns)
{
    const auto t0 = trace::makeSuiteTrace(7, 200000);
    const auto t1 = trace::makeSuiteTrace(9, 200000);
    const auto t2 = trace::makeSuiteTrace(14, 200000);
    const auto t3 = trace::makeSuiteTrace(25, 200000);
    trace::MaterializedTraceSource s0(t0), s1(t1), s2(t2), s3(t3);
    const std::array<trace::TraceSource*, 4> mix = {&s0, &s1, &s2,
                                                    &s3};
    const auto cfg = fastConfig();
    // The second call reuses the same sources: the driver rewinds
    // them, so replay is part of what this determinism check covers.
    const auto a =
        runMultiCore(mix, makePolicyFactory("MPPPB-MC"), cfg);
    const auto b =
        runMultiCore(mix, makePolicyFactory("MPPPB-MC"), cfg);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llcDemandMisses, b.llcDemandMisses);
}

TEST(MultiCoreProperties, CorePlacementMatters)
{
    // Permuting which core runs which trace changes per-core IPC
    // assignment but the multiset of IPCs should be similar: check
    // the aggregate instruction throughput is stable within 20%.
    const auto t0 = trace::makeSuiteTrace(7, 200000);
    const auto t1 = trace::makeSuiteTrace(9, 200000);
    const auto t2 = trace::makeSuiteTrace(14, 200000);
    const auto t3 = trace::makeSuiteTrace(25, 200000);
    trace::MaterializedTraceSource s0(t0), s1(t1), s2(t2), s3(t3);
    const auto cfg = fastConfig();
    const auto a = runMultiCore({&s0, &s1, &s2, &s3},
                                makePolicyFactory("LRU"), cfg);
    const auto b = runMultiCore({&s3, &s2, &s1, &s0},
                                makePolicyFactory("LRU"), cfg);
    InstCount ia = 0, ib = 0;
    for (unsigned c = 0; c < 4; ++c) {
        ia += a.instructions[c];
        ib += b.instructions[c];
    }
    EXPECT_NEAR(static_cast<double>(ia), static_cast<double>(ib),
                0.2 * static_cast<double>(ia));
}

TEST(MultiCoreProperties, EveryPaperPolicyRunsAMix)
{
    const auto t0 = trace::makeSuiteTrace(0, 150000);
    const auto t1 = trace::makeSuiteTrace(7, 150000);
    const auto t2 = trace::makeSuiteTrace(21, 150000);
    const auto t3 = trace::makeSuiteTrace(30, 150000);
    trace::MaterializedTraceSource s0(t0), s1(t1), s2(t2), s3(t3);
    const std::array<trace::TraceSource*, 4> mix = {&s0, &s1, &s2,
                                                    &s3};
    MultiCoreConfig cfg;
    cfg.warmupInstructions = 150000;
    cfg.measureCycles = 60000;
    for (const char* p :
         {"LRU", "Perceptron", "Hawkeye", "MPPPB-MC", "SHiP"}) {
        const auto r = runMultiCore(mix, makePolicyFactory(p), cfg);
        for (unsigned c = 0; c < 4; ++c) {
            EXPECT_GT(r.ipc[c], 0.0) << p;
            EXPECT_LE(r.ipc[c], 4.0) << p;
        }
    }
}

TEST(MultiCoreProperties, MemoryHogDegradesNeighbors)
{
    // Replacing a compute-bound co-runner with a thrasher must not
    // *improve* a fixed benchmark's IPC.
    const auto victim = trace::makeSuiteTrace(9, 250000);  // scan.a
    const auto quiet = trace::makeSuiteTrace(0, 250000);   // compute
    const auto hog = trace::makeSuiteTrace(8, 250000);     // thrash.3x
    const auto cfg = fastConfig();
    // Sources are single-consumer: a trace shared by several cores
    // needs one source (own cursor) per slot.
    trace::MaterializedTraceSource v0(victim), q1(quiet), q2(quiet),
        q3(quiet), h1(hog), h2(hog), h3(hog);
    const auto calm = runMultiCore({&v0, &q1, &q2, &q3},
                                   makePolicyFactory("LRU"), cfg);
    const auto loud = runMultiCore({&v0, &h1, &h2, &h3},
                                   makePolicyFactory("LRU"), cfg);
    EXPECT_LE(loud.ipc[0], calm.ipc[0] * 1.05);
}

} // namespace
} // namespace mrp::sim
