/**
 * @file
 * Tests for the feature design-space exploration machinery (§5).
 */

#include <gtest/gtest.h>

#include "core/feature_sets.hpp"
#include "search/feature_search.hpp"

namespace mrp::search {
namespace {

SearchConfig
tinyConfig()
{
    SearchConfig cfg;
    cfg.workloads = {7, 14}; // thrash.2x, mixpc.hi
    cfg.traceInstructions = 120000;
    cfg.baseConfig = core::singleThreadMpppbConfig();
    return cfg;
}

TEST(EvaluatorTest, RequiresWorkloads)
{
    SearchConfig cfg = tinyConfig();
    cfg.workloads.clear();
    EXPECT_THROW(FeatureSetEvaluator{cfg}, FatalError);
}

TEST(EvaluatorTest, EvaluationIsDeterministic)
{
    const SearchConfig cfg = tinyConfig();
    FeatureSetEvaluator eval(cfg);
    const auto set = core::featureSetTable1A();
    EXPECT_DOUBLE_EQ(eval.averageMpki(set), eval.averageMpki(set));
    EXPECT_EQ(eval.workloadCount(), 2u);
}

TEST(EvaluatorTest, ReferenceLinesAreOrdered)
{
    const SearchConfig cfg = tinyConfig();
    FeatureSetEvaluator eval(cfg);
    // MIN can never have more misses than LRU.
    EXPECT_LE(eval.minMpki(), eval.lruMpki());
}

TEST(RandomSearchTest, ProducesRequestedCandidates)
{
    const SearchConfig cfg = tinyConfig();
    FeatureSetEvaluator eval(cfg);
    const auto cands = randomSearch(eval, cfg, 3, 42);
    ASSERT_EQ(cands.size(), 3u);
    for (const auto& c : cands) {
        EXPECT_EQ(c.features.size(), cfg.featuresPerSet);
        EXPECT_GT(c.averageMpki, 0.0);
    }
}

TEST(RandomSearchTest, SeedControlsTheDraw)
{
    const SearchConfig cfg = tinyConfig();
    FeatureSetEvaluator eval(cfg);
    const auto a = randomSearch(eval, cfg, 2, 1);
    const auto b = randomSearch(eval, cfg, 2, 1);
    const auto c = randomSearch(eval, cfg, 2, 2);
    EXPECT_EQ(a[0].features, b[0].features);
    EXPECT_NE(a[0].features, c[0].features);
}

TEST(HillClimbTest, NeverRegresses)
{
    const SearchConfig cfg = tinyConfig();
    FeatureSetEvaluator eval(cfg);
    Candidate start;
    start.features = core::featureSetTable1A();
    start.averageMpki = eval.averageMpki(start.features);
    const auto refined = hillClimb(eval, cfg, start, 6, 77);
    EXPECT_LE(refined.averageMpki, start.averageMpki);
    EXPECT_EQ(refined.features.size(), start.features.size());
}

} // namespace
} // namespace mrp::search
