/**
 * @file
 * Tests for the miss-ratio-curve engine: exact Olken stack-distance
 * accounting, SHARDS sampling (fixed-rate and fixed-size), the
 * accuracy contract against the real LRU simulator, profile
 * determinism across delivery modes, the sampled TraceSpec decorator,
 * geometry validation, and the sampled halving rung — including the
 * headline property that an MRC-gated halving study picks the same
 * winner as a full-fidelity study with a fraction of the full
 * simulations.
 *
 * Accuracy tests use the same differentiating corpus as test_sweep
 * (drift.slow + gups.fit behind a 32KB/256KB upper hierarchy): at
 * those footprints the profiled capacities straddle the working sets,
 * so a bookkeeping bug shows up as percentage points, not noise.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cache/geometry.hpp"
#include "mrc/engine.hpp"
#include "mrc/objective.hpp"
#include "mrc/profile.hpp"
#include "mrc/shards.hpp"
#include "mrc/stack_distance.hpp"
#include "runner/experiment_runner.hpp"
#include "stats/reuse_histogram.hpp"
#include "sweep/study.hpp"
#include "telemetry/metrics.hpp"
#include "trace/sampled_source.hpp"
#include "trace/source.hpp"
#include "util/json_reader.hpp"

namespace mrp::mrc {
namespace {

constexpr std::uint64_t kCold = StackDistanceTracker::kCold;

/** One-load-per-block synthetic trace (1 instruction per record). */
trace::Trace
loadTrace(std::string name, const std::vector<Addr>& blocks)
{
    std::vector<trace::Record> recs;
    recs.reserve(blocks.size());
    for (const Addr b : blocks)
        recs.push_back(trace::Record::memOp(0x400000 + b, trace::Op::Load,
                                            b * kBlockBytes));
    return trace::Trace(std::move(name), std::move(recs),
                        static_cast<InstCount>(blocks.size()));
}

/** Demand miss ratios of a no-prefetch LRU LLC at each size, one
 * simulation per (workload, size) cell — the ground truth the
 * one-pass engine must reproduce. */
std::vector<std::vector<double>>
simulatedMissRatios(const std::vector<trace::TraceSpec>& corpus,
                    const MrcConfig& cfg,
                    const std::vector<Addr>& sizes)
{
    sim::SingleCoreConfig sc;
    sc.hierarchy = cfg.hierarchy;
    sc.hierarchy.prefetchEnabled = false;
    sc.warmupFraction = cfg.warmupFraction;
    const auto policy = runner::PolicySpec::byName("LRU");

    std::vector<runner::RunRequest> batch;
    for (const auto& spec : corpus) {
        for (const Addr bytes : sizes) {
            sc.hierarchy.llcBytes = bytes;
            batch.push_back(
                runner::RunRequest::singleCore(spec, policy, sc));
        }
    }
    const runner::ExperimentRunner pool(0);
    const auto set = pool.run(batch);

    std::vector<std::vector<double>> out(corpus.size());
    std::size_t r = 0;
    for (std::size_t w = 0; w < corpus.size(); ++w) {
        for (std::size_t s = 0; s < sizes.size(); ++s) {
            const auto& res = set.results[r++];
            EXPECT_TRUE(res.ok()) << res.error;
            out[w].push_back(
                res.llcDemandAccesses == 0
                    ? 0.0
                    : static_cast<double>(res.llcDemandMisses) /
                          static_cast<double>(res.llcDemandAccesses));
        }
    }
    return out;
}

TEST(StackDistanceTest, DistancesCountDistinctIntermediateKeys)
{
    StackDistanceTracker t;
    EXPECT_EQ(t.touch(1), kCold);
    EXPECT_EQ(t.touch(2), kCold);
    EXPECT_EQ(t.touch(3), kCold);
    EXPECT_EQ(t.touch(1), 2u); // 2 and 3 above it
    EXPECT_EQ(t.touch(1), 0u); // immediate re-touch
    EXPECT_EQ(t.touch(2), 2u); // 1 and 3 above it
    // Repeated touches of one key between two touches of another
    // count once: distance is distinct keys, not accesses.
    EXPECT_EQ(t.touch(3), 2u);
    EXPECT_EQ(t.liveKeys(), 3u);
}

TEST(StackDistanceTest, EraseMakesNextTouchColdAgain)
{
    StackDistanceTracker t;
    t.touch(7);
    t.touch(8);
    t.erase(7);
    EXPECT_EQ(t.liveKeys(), 1u);
    EXPECT_EQ(t.touch(7), kCold);
    // 8 saw only 7 re-enter above it.
    EXPECT_EQ(t.touch(8), 1u);
    t.erase(999); // absent key: no-op
    EXPECT_EQ(t.liveKeys(), 2u);
}

TEST(StackDistanceTest, CompactionPreservesDistancesAtScale)
{
    // Enough churn to force several dense-prefix compactions; the
    // LRU-depth semantics must be unaffected.
    StackDistanceTracker t;
    constexpr std::uint64_t n = 5000;
    for (std::uint64_t k = 0; k < n; ++k)
        t.touch(k);
    EXPECT_EQ(t.touch(0), n - 1);
    for (int round = 0; round < 20; ++round)
        for (std::uint64_t k = 0; k < n; ++k)
            t.touch(k);
    // After an ascending sweep the stack holds n-1 down to 0, so key
    // 1 sits under every key but 0: distance n-2.
    EXPECT_EQ(t.touch(1), n - 2);
    EXPECT_EQ(t.liveKeys(), n);
}

TEST(Log2HistogramTest, WeightBelowPow2IsAStrictPrefixSum)
{
    stats::Log2Histogram h;
    for (const std::uint64_t v : {0u, 1u, 2u, 3u, 4u})
        h.record(v);
    EXPECT_DOUBLE_EQ(h.weightBelowPow2(0), 1.0); // {0}
    EXPECT_DOUBLE_EQ(h.weightBelowPow2(1), 2.0); // {0,1}
    EXPECT_DOUBLE_EQ(h.weightBelowPow2(2), 4.0); // {0,1,2,3}
    EXPECT_DOUBLE_EQ(h.weightBelowPow2(3), 5.0);
    EXPECT_DOUBLE_EQ(h.total(), 5.0);
    // The SHARDS_adj correction path may subtract weight.
    h.addToFirstBucket(-0.5);
    EXPECT_DOUBLE_EQ(h.weightBelowPow2(0), 0.5);
    EXPECT_DOUBLE_EQ(h.total(), 4.5);
}

TEST(ShardsSamplerTest, FixedSizeEvictsDownToCapAndLowersRate)
{
    ShardsSampler s(1, 64); // start at rate 1/2, cap 64 blocks
    const double rate0 = s.rate();
    EXPECT_DOUBLE_EQ(rate0, 0.5);
    std::size_t tracked = 0;
    for (std::uint64_t k = 0; k < 100000; ++k) {
        if (!s.keeps(k))
            continue;
        ++tracked;
        for (const std::uint64_t e : s.insert(k)) {
            (void)e;
            --tracked;
        }
        // Subset property: every tracked key still passes keeps()
        // (eviction sweeps whole hash classes, never splits one).
        EXPECT_LE(s.occupancy(), 64u);
        EXPECT_EQ(s.occupancy(), tracked);
    }
    EXPECT_LE(s.maxOccupancy(), 64u);
    EXPECT_GT(s.evictions(), 0u);
    EXPECT_LT(s.rate(), rate0);
}

TEST(MrcEngineTest, AllColdScanMissesEverywhere)
{
    std::vector<Addr> blocks(20000);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        blocks[i] = static_cast<Addr>(i);
    trace::MaterializedTraceSource src(loadTrace("scan", blocks));

    MrcConfig cfg;
    cfg.mode = MrcMode::Exact;
    cfg.warmupFraction = 0.0;
    const MrcProfile p = buildProfile(src, cfg);
    EXPECT_EQ(p.coldSamples, p.demandSamples);
    EXPECT_GT(p.demandSamples, 0u);
    for (const auto& pt : p.points)
        EXPECT_DOUBLE_EQ(pt.missRatio, 1.0)
            << "at " << pt.bytes << " bytes";
}

TEST(MrcEngineTest, SingleBlockTraceIsOneColdTouch)
{
    // Every access after the first hits in L1; the LLC-level stream
    // is exactly one cold demand access.
    trace::MaterializedTraceSource src(
        loadTrace("one", std::vector<Addr>(10000, 42)));
    MrcConfig cfg;
    cfg.mode = MrcMode::Exact;
    cfg.warmupFraction = 0.0;
    const MrcProfile p = buildProfile(src, cfg);
    EXPECT_EQ(p.demandSamples, 1u);
    EXPECT_EQ(p.coldSamples, 1u);
    for (const auto& pt : p.points)
        EXPECT_DOUBLE_EQ(pt.missRatio, 1.0);
}

TEST(MrcEngineTest, NoMemoryTraceYieldsZeroSamplesWithoutCrashing)
{
    trace::Trace t("nomem", {trace::Record::nonMem(0x400, 1000)}, 1000);
    trace::MaterializedTraceSource src(std::move(t));
    MrcConfig cfg;
    cfg.warmupFraction = 0.0;
    const MrcProfile p = buildProfile(src, cfg);
    EXPECT_EQ(p.demandSamples, 0u);
    for (const auto& pt : p.points)
        EXPECT_DOUBLE_EQ(pt.missRatio, 0.0);
}

TEST(MrcEngineTest, FixedSizeCapBoundsTrackedBlocks)
{
    std::vector<Addr> blocks(100000);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        blocks[i] = static_cast<Addr>(i);
    trace::MaterializedTraceSource src(loadTrace("bigscan", blocks));

    MrcConfig cfg;
    cfg.mode = MrcMode::ShardsAdj;
    cfg.rateLog2 = 1;
    cfg.maxSamples = 128;
    cfg.warmupFraction = 0.0;
    const MrcProfile p = buildProfile(src, cfg);
    EXPECT_LE(p.samplerPeakOccupancy, 128u);
    EXPECT_GT(p.samplerEvictions, 0u);
    EXPECT_LT(p.samplingRate, 0.5);
    // Rate correction keeps the curve sane: an all-cold scan still
    // misses everywhere.
    for (const auto& pt : p.points)
        EXPECT_NEAR(pt.missRatio, 1.0, 1e-9);
}

TEST(MrcEngineTest, GaugesExportedWhenRegistryAttached)
{
    std::vector<Addr> blocks(5000);
    for (std::size_t i = 0; i < blocks.size(); ++i)
        blocks[i] = static_cast<Addr>(i % 1024);
    trace::MaterializedTraceSource src(loadTrace("gauges", blocks));

    telemetry::MetricsRegistry reg;
    MrcConfig cfg;
    cfg.warmupFraction = 0.0;
    cfg.registry = &reg;
    const MrcProfile p = buildProfile(src, cfg);
    EXPECT_DOUBLE_EQ(reg.gauge("mrc.demand_samples").value(),
                     static_cast<double>(p.demandSamples));
    EXPECT_DOUBLE_EQ(reg.gauge("mrc.sampler.final_rate").value(),
                     p.samplingRate);
    EXPECT_DOUBLE_EQ(reg.gauge("mrc.sampler.peak_occupancy").value(),
                     static_cast<double>(p.samplerPeakOccupancy));
}

TEST(MrcAccuracyTest, ExactAndShardsMatchLruSimulationWithin2pp)
{
    const std::vector<trace::TraceSpec> corpus = {
        trace::TraceSpec::suite(3, 400000), // drift.slow
        trace::TraceSpec::suite(4, 400000), // gups.fit
    };
    const std::vector<Addr> sizes = {128 * 1024, 512 * 1024,
                                     2048 * 1024};
    MrcConfig cfg;
    cfg.sizesBytes = sizes;
    const auto sim = simulatedMissRatios(corpus, cfg, sizes);

    for (const MrcMode mode : {MrcMode::Exact, MrcMode::ShardsAdj}) {
        cfg.mode = mode;
        const auto profiles = profileCorpus(corpus, cfg, 2);
        ASSERT_EQ(profiles.size(), corpus.size());
        for (std::size_t w = 0; w < profiles.size(); ++w) {
            for (std::size_t s = 0; s < sizes.size(); ++s) {
                const double gap_pp =
                    std::abs(profiles[w].points[s].missRatio -
                             sim[w][s]) *
                    100.0;
                EXPECT_LE(gap_pp, 2.0)
                    << mrcModeName(mode) << " "
                    << profiles[w].benchmark << " @ "
                    << sizes[s] / 1024 << " KB";
            }
        }
    }
}

TEST(MrcDeterminismTest, ProfileBytesInvariantToJobsAndDelivery)
{
    const std::vector<trace::TraceSpec> corpus = {
        trace::TraceSpec::suite(3, 120000),
        trace::TraceSpec::suite(4, 120000),
    };
    MrcConfig cfg;
    cfg.sizesBytes = {64 * 1024, 256 * 1024, 1024 * 1024};

    const std::string base = corpusJson(profileCorpus(corpus, cfg, 1));
    EXPECT_NE(base.find(kMrcSchema), std::string::npos);

    EXPECT_EQ(base, corpusJson(profileCorpus(corpus, cfg, 2)));

    trace::TraceSpec::OpenOptions opts;
    opts.decodeAhead = true;
    EXPECT_EQ(base, corpusJson(profileCorpus(corpus, cfg, 2, opts)));

    opts.decodeAhead = false;
    opts.chunkRecords = 777; // ragged chunk boundaries
    EXPECT_EQ(base, corpusJson(profileCorpus(corpus, cfg, 1, opts)));
}

TEST(MrcProfileTest, MissRatioAtRequiresAProfiledSize)
{
    MrcProfile p;
    p.points = {{128 * 1024, 0.5}};
    EXPECT_DOUBLE_EQ(p.missRatioAt(128 * 1024), 0.5);
    try {
        p.missRatioAt(64 * 1024);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

TEST(SampledSpecTest, PreservesInstructionCountExactly)
{
    const auto child = trace::TraceSpec::suite(3, 100000);
    const auto spec = trace::TraceSpec::sampled(child, 3);
    EXPECT_EQ(spec.instructions(), child.instructions());
    EXPECT_EQ(spec.displayName(), child.displayName() + "~s3");

    // Dropped memory records are rewritten as 1-instruction non-mem
    // runs, so the streamed instruction total is exact — budget
    // accounting and IPC denominators cannot drift.
    auto src = spec.open();
    InstCount streamed = 0, mem = 0;
    for (auto chunk = src->nextChunk(); !chunk.empty();
         chunk = src->nextChunk()) {
        for (const auto& r : chunk) {
            streamed += r.count();
            if (r.isMem())
                ++mem;
        }
    }
    auto full = child.open();
    InstCount fullStreamed = 0, fullMem = 0;
    for (auto chunk = full->nextChunk(); !chunk.empty();
         chunk = full->nextChunk()) {
        for (const auto& r : chunk) {
            fullStreamed += r.count();
            if (r.isMem())
                ++fullMem;
        }
    }
    EXPECT_EQ(streamed, fullStreamed);
    // ~1/8 of blocks sampled; the mem stream must shrink accordingly.
    EXPECT_LT(mem, fullMem / 4);
    EXPECT_GT(mem, 0u);
}

TEST(SampledSpecTest, JsonRoundTripReopensTheSameStream)
{
    const auto spec = trace::TraceSpec::sampled(
        trace::TraceSpec::suite(4, 60000, 9), 2);
    const std::string doc = spec.toJson();
    EXPECT_NE(doc.find("\"sampled\""), std::string::npos);
    const auto back = trace::TraceSpec::fromJson(
        json::parseJson(doc, "sampled spec"), "sampled spec");
    EXPECT_EQ(back.displayName(), spec.displayName());
    EXPECT_EQ(back.instructions(), spec.instructions());

    auto a = spec.open();
    auto b = back.open();
    InstCount memA = 0, memB = 0;
    for (auto chunk = a->nextChunk(); !chunk.empty();
         chunk = a->nextChunk())
        for (const auto& r : chunk)
            memA += r.isMem() ? 1 : 0;
    for (auto chunk = b->nextChunk(); !chunk.empty();
         chunk = b->nextChunk())
        for (const auto& r : chunk)
            memB += r.isMem() ? 1 : 0;
    EXPECT_EQ(memA, memB);
}

TEST(SampledSpecTest, RejectsNestingBorrowedAndZeroRate)
{
    const auto child = trace::TraceSpec::suite(3, 50000);
    const auto once = trace::TraceSpec::sampled(child, 3);
    EXPECT_THROW((void)trace::TraceSpec::sampled(once, 2), FatalError);
    EXPECT_THROW((void)trace::TraceSpec::sampled(child, 0), FatalError);
    EXPECT_THROW((void)trace::TraceSpec::sampled(child, 24), FatalError);

    const trace::Trace t("b", {trace::Record::nonMem(1, 10)}, 10);
    EXPECT_THROW(
        (void)trace::TraceSpec::sampled(trace::TraceSpec::borrowed(t), 3),
        FatalError);
}

TEST(GeometryTest, DescribeInvalidNamesTheDefect)
{
    using cache::CacheGeometry;
    EXPECT_TRUE(CacheGeometry::describeInvalid(128 * 1024, 16).empty());
    EXPECT_FALSE(CacheGeometry::describeInvalid(0, 16).empty());
    EXPECT_FALSE(CacheGeometry::describeInvalid(1024, 0).empty());
    // 96KB / (64B * 16 ways) = 96 sets: not a power of two.
    EXPECT_FALSE(CacheGeometry::describeInvalid(96 * 1024, 16).empty());
    // 512B with 16 ways: not even one full set.
    EXPECT_FALSE(CacheGeometry::describeInvalid(512, 16).empty());
}

TEST(GeometryTest, CorpusEvaluatorRejectsBadGeometryUpFront)
{
    sweep::CorpusConfig cc;
    cc.workloads = {3};
    cc.fullInstructions = 50000;
    cc.sim.hierarchy.llcBytes = 96 * 1024; // 96 sets at 16 ways
    try {
        sweep::CorpusEvaluator eval(cc);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
        EXPECT_NE(std::string(e.what()).find("LLC"),
                  std::string::npos);
    }
}

std::shared_ptr<sweep::CorpusEvaluator>
gatedCorpus()
{
    sweep::CorpusConfig cc;
    cc.workloads = {3, 4};
    cc.fullInstructions = 120000;
    cc.sim.hierarchy.llcBytes = 128 * 1024;
    return std::make_shared<sweep::CorpusEvaluator>(cc);
}

TEST(SampledRungObjectiveTest, FlaggedBudgetsSampleAndScaleTheRuns)
{
    SampledRungObjective obj(gatedCorpus(), 3);
    const core::MpppbConfig cfg = core::singleThreadMpppbConfig();

    // Unflagged budgets pass through to full-fidelity evaluation.
    const auto full = obj.requests(cfg, 0);
    ASSERT_EQ(full.size(), 2u);
    EXPECT_EQ(full[0].sources[0].displayName().find(trace::kSampledNameMarker),
              std::string::npos);

    const auto sampled =
        obj.requests(cfg, 15000 | sweep::kSampledBudgetFlag);
    ASSERT_EQ(sampled.size(), 2u);
    for (const auto& req : sampled) {
        EXPECT_NE(req.sources[0].displayName().find("~s3"), std::string::npos);
        EXPECT_EQ(req.sources[0].instructions(), 15000u);
        const auto& sc =
            std::get<sim::SingleCoreConfig>(req.config);
        // Capacities shrink with the reference stream (mini-sim).
        EXPECT_EQ(sc.hierarchy.llcBytes, (128u * 1024) >> 3);
        EXPECT_EQ(sc.hierarchy.l1Bytes,
                  sim::SingleCoreConfig{}.hierarchy.l1Bytes >> 3);
    }
}

TEST(SampledRungObjectiveTest, ScoreCorrectsRateAndDiscountsFitness)
{
    SampledRungObjective obj(gatedCorpus(), 3);

    runner::RunResult r;
    r.benchmark = "drift.slow~s3";
    r.mpki = 2.0;
    const auto s = obj.score({&r});
    EXPECT_DOUBLE_EQ(s.mpki, 16.0); // 2.0 * 2^3
    EXPECT_DOUBLE_EQ(s.fitness, -16.0 * kSampledFitnessDiscount);

    // Full-fidelity results flow through the wrapped objective
    // untouched: the discount never taints a real measurement.
    runner::RunResult f;
    f.benchmark = "drift.slow";
    f.mpki = 2.0;
    const auto fs = obj.score({&f});
    EXPECT_DOUBLE_EQ(fs.mpki, 2.0);
    EXPECT_DOUBLE_EQ(fs.fitness, -2.0);
}

TEST(SampledRungObjectiveTest, RejectsRatesThatUnderflowTheHierarchy)
{
    // 128KB >> 10 = 128B, below one 16-way set of 64B blocks.
    EXPECT_THROW(SampledRungObjective(gatedCorpus(), 10), FatalError);
    EXPECT_THROW(SampledRungObjective(gatedCorpus(), 0), FatalError);
}

TEST(MrcGatedHalvingTest, SameWinnerWithFarFewerFullSimulations)
{
    sweep::SearchSpace space;
    space.featureSlots = 4;
    space.searchThresholds = true;
    auto evaluator = gatedCorpus();

    // Baseline: 8 random candidates, every one simulated at full
    // fidelity (single-rung halving = pure random search).
    sweep::HalvingStrategy::Config base;
    base.initial = 8;
    base.eta = 8;
    base.rungs = 1;
    base.fullInstructions = 120000;
    sweep::HalvingStrategy baseStrategy(space, base, 7);
    sweep::CorpusMpkiObjective baseObjective(evaluator);
    sweep::StudyConfig baseCfg;
    baseCfg.name = "mrc-gate-base";
    baseCfg.seed = 7;
    sweep::Study baseStudy(space, baseStrategy, baseObjective, baseCfg);
    const auto baseResult = baseStudy.run();

    // Gated: the same 8 candidates (same strategy seed) screened on
    // the SHARDS-sampled rung, only the survivor simulated fully.
    sweep::HalvingStrategy::Config gate = base;
    gate.rungs = 2;
    gate.mrcRateLog2 = 3;
    sweep::HalvingStrategy gateStrategy(space, gate, 7);
    SampledRungObjective gateObjective(evaluator, 3);
    sweep::StudyConfig gateCfg;
    gateCfg.name = "mrc-gate";
    gateCfg.seed = 7;
    sweep::Study gateStudy(space, gateStrategy, gateObjective, gateCfg);
    const auto gateResult = gateStudy.run();

    // Full-fidelity simulation odometer: the sampled rung 0 does not
    // count, so the gated study pays 1 full simulation to the
    // baseline's 8 — an 8x (>= 5x) reduction for the same answer.
    std::size_t baseFull = 0;
    for (const auto& g : baseResult.generations)
        baseFull += g.simulations;
    ASSERT_EQ(gateResult.generations.size(), 2u);
    const std::size_t gateFull = gateResult.generations[1].simulations;
    EXPECT_EQ(baseFull, 8u);
    EXPECT_EQ(gateFull, 1u);
    EXPECT_GE(baseFull, 5 * gateFull);

    const auto& baseBest =
        baseResult.candidates[baseResult.bestId].candidate.genome;
    const auto& gateBest =
        gateResult.candidates[gateResult.bestId].candidate.genome;
    EXPECT_EQ(baseBest, gateBest);
    EXPECT_DOUBLE_EQ(gateResult.candidates[gateResult.bestId].fitness,
                     baseResult.candidates[baseResult.bestId].fitness);

    // The sampled rung's discounted fitness can never outrank the
    // full-fidelity winner.
    EXPECT_FALSE(
        gateResult.candidates[gateResult.bestId].candidate.budgetInsts &
        sweep::kSampledBudgetFlag);
}

} // namespace
} // namespace mrp::mrc
