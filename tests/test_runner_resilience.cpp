/**
 * @file
 * Tests for the runner's durability layer: checkpoint journaling,
 * kill-and-resume with byte-identical reports, torn-tail healing,
 * retry of injected transient failures, watchdog timeouts, and typed
 * error codes in the JSON/CSV reports.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/checkpoint.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "trace/spec.hpp"
#include "trace/workloads.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::runner {
namespace {

class RunnerResilienceTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        fault::disarmAll();
        for (const auto& p : temp_paths_)
            std::remove(p.c_str());
    }

    std::string
    tempPath(const std::string& name)
    {
        const std::string p = "/tmp/mrp_resilience_" + name;
        std::remove(p.c_str());
        temp_paths_.push_back(p);
        return p;
    }

    std::vector<std::string> temp_paths_;
};

std::string
readFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

void
writeFileRaw(const std::string& path, const std::string& content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
}

/** First @p n lines of @p path (journal-truncation helper). */
std::string
firstLines(const std::string& path, unsigned n)
{
    const std::string content = readFile(path);
    std::size_t pos = 0;
    for (unsigned i = 0; i < n && pos != std::string::npos; ++i) {
        const auto nl = content.find('\n', pos);
        pos = nl == std::string::npos ? std::string::npos : nl + 1;
    }
    return pos == std::string::npos ? content : content.substr(0, pos);
}

/** Requests borrow the traces: callers keep them alive. */
std::vector<RunRequest>
smallBatch(std::initializer_list<const trace::Trace*> traces)
{
    std::vector<RunRequest> batch;
    for (const auto* tr : traces)
        for (const char* p : {"LRU", "SRRIP", "MPPPB"})
            batch.push_back(RunRequest::singleCore(
                trace::TraceSpec::borrowed(*tr),
                PolicySpec::byName(p)));
    return batch;
}

/** Arm the runner.execute site so it counts visits without firing —
 * an execution odometer for asserting how many runs actually ran. */
void
armExecutionCounter()
{
    fault::Spec spec;
    spec.firstHit = 1000000000; // never reached
    fault::arm("runner.execute", spec);
}

TEST_F(RunnerResilienceTest, KillAndResumeReportsAreByteIdentical)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const auto batch = smallBatch({&t0, &t1}); // 6 requests

    const auto reference = ExperimentRunner(1).run(batch);
    const std::string ref_json = toJson(reference);
    const std::string ref_csv = toCsv(reference);

    for (const unsigned workers : {1u, 2u}) {
        const std::string journal =
            tempPath("resume_w" + std::to_string(workers) + ".jsonl");

        // Complete batch with journaling, then simulate a crash after
        // 3 of 6 runs: keep 3 journal lines plus a torn partial line.
        {
            RunnerOptions opts;
            opts.journalPath = journal;
            ExperimentRunner(workers).run(batch, opts);
        }
        writeFileRaw(journal, firstLines(journal, 3) +
                                  "deadbeef {\"index\": 5, \"benchm");

        RunnerOptions opts;
        opts.resumePath = journal;
        opts.journalPath = journal;
        armExecutionCounter();
        const auto resumed = ExperimentRunner(workers).run(batch, opts);
        EXPECT_EQ(fault::hits("runner.execute"), 3u)
            << "resume must only execute the 3 unfinished requests";
        fault::disarmAll();

        EXPECT_EQ(toJson(resumed), ref_json) << workers << " workers";
        EXPECT_EQ(toCsv(resumed), ref_csv) << workers << " workers";

        // The journal is now complete: resuming again runs nothing
        // and still reproduces the reports byte for byte.
        RunnerOptions again;
        again.resumePath = journal;
        armExecutionCounter();
        const auto replay = ExperimentRunner(workers).run(batch, again);
        EXPECT_EQ(fault::hits("runner.execute"), 0u);
        fault::disarmAll();
        EXPECT_EQ(toJson(replay), ref_json);
        EXPECT_EQ(toCsv(replay), ref_csv);
    }
}

TEST_F(RunnerResilienceTest, JournalLineRoundTripsExactly)
{
    const auto tr = trace::makeSuiteTrace(7, 60000);
    RunResult r = ExperimentRunner::runOne(
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("MPPPB")),
        3);
    ASSERT_TRUE(r.ok()) << r.error;

    const auto parsed = parseJournalLine(journalLine(r));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->index, r.index);
    EXPECT_EQ(parsed->benchmark, r.benchmark);
    EXPECT_EQ(parsed->policy, r.policy);
    EXPECT_EQ(parsed->label, r.label);
    EXPECT_EQ(parsed->multiCore, r.multiCore);
    EXPECT_EQ(parsed->ipc, r.ipc); // bitwise, not approximate
    EXPECT_EQ(parsed->mpki, r.mpki);
    EXPECT_EQ(parsed->instructions, r.instructions);
    EXPECT_EQ(parsed->llcDemandAccesses, r.llcDemandAccesses);
    EXPECT_EQ(parsed->llcDemandMisses, r.llcDemandMisses);
    EXPECT_EQ(parsed->llcBypasses, r.llcBypasses);
    EXPECT_EQ(parsed->errorCode, ErrorCode::None);

    // Failed results round-trip their typed error too.
    RunResult failed = ExperimentRunner::runOne(
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("NoSuch")),
        4);
    ASSERT_FALSE(failed.ok());
    const auto fparsed = parseJournalLine(journalLine(failed));
    ASSERT_TRUE(fparsed.has_value());
    EXPECT_EQ(fparsed->error, failed.error);
    EXPECT_EQ(fparsed->errorCode, ErrorCode::Config);
}

TEST_F(RunnerResilienceTest, CorruptJournalLinesAreRejected)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    const std::string path = tempPath("corrupt.jsonl");
    {
        RunnerOptions opts;
        opts.journalPath = path;
        ExperimentRunner(1).run(smallBatch({&tr}), opts);
    }
    std::string content = readFile(path);

    // A torn *final* line is tolerated...
    writeFileRaw(path, firstLines(path, 2) + "50f1 {\"trunc");
    EXPECT_EQ(loadJournal(path).size(), 2u);

    // ...but a corrupt interior line is a typed error.
    content[content.find('\n') / 2] ^= 0x08; // bit flip in line 1
    writeFileRaw(path, content);
    try {
        loadJournal(path);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::CorruptInput);
    }
}

TEST_F(RunnerResilienceTest, AppendHealsTornTail)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    const std::string path = tempPath("torn.jsonl");
    {
        RunnerOptions opts;
        opts.journalPath = path;
        ExperimentRunner(1).run(smallBatch({&tr}), opts);
    }
    writeFileRaw(path, firstLines(path, 2) + "ab12 {\"half");
    {
        CheckpointJournal journal(path);
        RunResult r = ExperimentRunner::runOne(
            RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                                   PolicySpec::byName("LRU")),
            9);
        journal.append(r);
    }
    const auto entries = loadJournal(path);
    ASSERT_EQ(entries.size(), 3u); // 2 healed + 1 appended, no merge
    EXPECT_EQ(entries[2].index, 9u);
}

TEST_F(RunnerResilienceTest, ResumeRejectsMismatchedBatch)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const std::string path = tempPath("mismatch.jsonl");
    {
        RunnerOptions opts;
        opts.journalPath = path;
        ExperimentRunner(1).run(smallBatch({&t0}), opts);
    }

    // Same shape, different benchmark at every index.
    RunnerOptions opts;
    opts.resumePath = path;
    try {
        ExperimentRunner(1).run(smallBatch({&t1}), opts);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }

    // Fewer requests than the journal covers.
    std::vector<RunRequest> tiny = {
        RunRequest::singleCore(trace::TraceSpec::borrowed(t0),
                               PolicySpec::byName("LRU"))};
    try {
        ExperimentRunner(1).run(tiny, opts);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

TEST_F(RunnerResilienceTest, TransientFailureIsRetriedAndSucceeds)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    const auto batch = smallBatch({&tr});
    const auto reference = ExperimentRunner(1).run(batch);

    fault::Spec spec; // IoError, fires exactly once
    fault::Scoped f("runner.execute", spec);
    RunnerOptions opts;
    opts.maxRetries = 1;
    opts.retryBackoffSeconds = 0.0;
    const auto set = ExperimentRunner(1).run(batch, opts);

    ASSERT_TRUE(set.results[0].ok()) << set.results[0].error;
    EXPECT_EQ(set.results[0].attempts, 2u);
    EXPECT_EQ(set.results[1].attempts, 1u);
    EXPECT_EQ(toJson(set), toJson(reference)); // retry is invisible
}

TEST_F(RunnerResilienceTest, ExhaustedRetriesSurfaceTypedErrorInJson)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    std::vector<RunRequest> batch = {
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("LRU"))};

    fault::Spec spec;
    spec.maxFires = -1; // permanent outage
    fault::Scoped f("runner.execute", spec);
    RunnerOptions opts;
    opts.maxRetries = 2;
    opts.retryBackoffSeconds = 0.0;
    const auto set = ExperimentRunner(1).run(batch, opts);

    ASSERT_FALSE(set.results[0].ok());
    EXPECT_EQ(set.results[0].errorCode, ErrorCode::Io);
    EXPECT_EQ(set.results[0].attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(fault::fires("runner.execute"), 3u);

    const std::string json = toJson(set);
    EXPECT_NE(json.find("\"errorCode\": \"io\""), std::string::npos)
        << json;
    const std::string csv = toCsv(set);
    EXPECT_NE(csv.find(",io\n"), std::string::npos) << csv;
}

TEST_F(RunnerResilienceTest, ConfigErrorsAreNotRetried)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    std::vector<RunRequest> batch = {
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("NoSuch"))};
    RunnerOptions opts;
    opts.maxRetries = 5;
    opts.retryBackoffSeconds = 0.0;
    const auto set = ExperimentRunner(1).run(batch, opts);
    ASSERT_FALSE(set.results[0].ok());
    EXPECT_EQ(set.results[0].errorCode, ErrorCode::Config);
    EXPECT_EQ(set.results[0].attempts, 1u);
}

TEST_F(RunnerResilienceTest, WatchdogFlagsStalledRunAsTimeout)
{
    const auto tr = trace::makeSuiteTrace(4, 20000);
    std::vector<RunRequest> batch = {
        RunRequest::singleCore(trace::TraceSpec::borrowed(tr),
                               PolicySpec::byName("LRU"))};

    fault::Spec stall;
    stall.kind = fault::Kind::Stall;
    stall.stallMillis = 300;
    stall.maxFires = 1;
    {
        fault::Scoped f("runner.execute.stall", stall);
        RunnerOptions opts;
        opts.timeoutSeconds = 0.1;
        const auto set = ExperimentRunner(1).run(batch, opts);
        ASSERT_FALSE(set.results[0].ok());
        EXPECT_EQ(set.results[0].errorCode, ErrorCode::Timeout);
        EXPECT_EQ(set.results[0].ipc, 0.0); // metrics discarded
        EXPECT_NE(toJson(set).find("\"errorCode\": \"timeout\""),
                  std::string::npos);
    }

    // A timeout is transient: with a retry budget the second (
    // unstalled) attempt succeeds.
    {
        fault::Scoped f("runner.execute.stall", stall);
        RunnerOptions opts;
        opts.timeoutSeconds = 0.1;
        opts.maxRetries = 1;
        opts.retryBackoffSeconds = 0.0;
        const auto set = ExperimentRunner(1).run(batch, opts);
        ASSERT_TRUE(set.results[0].ok()) << set.results[0].error;
        EXPECT_EQ(set.results[0].attempts, 2u);
    }
}

TEST_F(RunnerResilienceTest, JournalWriteFailureSurfacesAsIoError)
{
    const auto tr = trace::makeSuiteTrace(4, 60000);
    fault::Spec spec;
    spec.maxFires = -1;
    fault::Scoped f("runner.journal.write", spec);
    RunnerOptions opts;
    opts.journalPath = tempPath("failing.jsonl");
    try {
        ExperimentRunner(2).run(smallBatch({&tr}), opts);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Io);
    }
}

} // namespace
} // namespace mrp::runner
