/**
 * @file
 * Tests for the self-profiling layer: scope nesting and the
 * inclusive/exclusive tree invariants, detached no-op behavior,
 * sampled (hot) site counting, thread-local isolation through the
 * parallel runner, detached byte-identical reports, profiled timing
 * fields, progress heartbeats, and the BENCH document round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "prof/export.hpp"
#include "prof/profiler.hpp"
#include "runner/experiment_runner.hpp"
#include "runner/report.hpp"
#include "trace/spec.hpp"
#include "trace/workloads.hpp"
#include "util/json_reader.hpp"

namespace mrp::prof {
namespace {

/** Burn a little real time so timed phases are visibly nonzero. */
void
spin()
{
    volatile double x = 0.0;
    for (int i = 0; i < 20000; ++i)
        x = x + static_cast<double>(i) * 0.5;
}

void
innerPhase()
{
    MRP_PROF_SCOPE("test.inner");
    spin();
}

void
outerPhase(int inner_calls)
{
    MRP_PROF_SCOPE("test.outer");
    spin();
    for (int i = 0; i < inner_calls; ++i)
        innerPhase();
}

void
hotPhase()
{
    MRP_PROF_SCOPE_HOT("test.hot");
}

/** Every node satisfies Σ children ≤ inclusive and exclusive ≥ 0. */
void
checkTreeInvariants(const PhaseStat& s)
{
    double child_sum = 0.0;
    for (const PhaseStat& c : s.children) {
        child_sum += c.inclusiveSeconds;
        checkTreeInvariants(c);
    }
    EXPECT_LE(child_sum, s.inclusiveSeconds * (1.0 + 1e-9))
        << "children exceed parent at " << s.label;
    EXPECT_GE(s.exclusiveSeconds, 0.0) << "negative exclusive at "
                                       << s.label;
}

TEST(ProfilerTest, ScopeNestingBuildsInclusiveExclusiveTree)
{
    Profiler p;
    {
        Attach attach(p);
        outerPhase(3);
        outerPhase(3);
    }
    const ProfileReport r = p.finish();

    EXPECT_EQ(r.root.label, "run");
    ASSERT_EQ(r.root.children.size(), 1u);
    const PhaseStat& outer = r.root.children[0];
    EXPECT_EQ(outer.label, "test.outer");
    EXPECT_EQ(outer.count, 2u);
    ASSERT_EQ(outer.children.size(), 1u);
    const PhaseStat& inner = outer.children[0];
    EXPECT_EQ(inner.label, "test.inner");
    EXPECT_EQ(inner.count, 6u);

    EXPECT_GT(inner.inclusiveSeconds, 0.0);
    EXPECT_GE(outer.inclusiveSeconds, inner.inclusiveSeconds);
    EXPECT_NEAR(outer.exclusiveSeconds,
                outer.inclusiveSeconds - inner.inclusiveSeconds,
                1e-12);
    checkTreeInvariants(r.root);

    EXPECT_GT(r.wallSeconds, 0.0);
    EXPECT_GE(r.root.inclusiveSeconds, outer.inclusiveSeconds);
}

TEST(ProfilerTest, DetachedScopesAreNoOps)
{
    EXPECT_EQ(Profiler::current(), nullptr);
    // Must not crash, allocate per-profiler state, or observe time.
    outerPhase(2);
    hotPhase();
    EXPECT_EQ(Profiler::current(), nullptr);
}

TEST(ProfilerTest, AttachNestsAndRestores)
{
    Profiler outer;
    Profiler inner;
    {
        Attach a(outer);
        EXPECT_EQ(Profiler::current(), &outer);
        {
            Attach b(inner);
            EXPECT_EQ(Profiler::current(), &inner);
            innerPhase();
        }
        EXPECT_EQ(Profiler::current(), &outer);
    }
    EXPECT_EQ(Profiler::current(), nullptr);

    const ProfileReport ri = inner.finish();
    const ProfileReport ro = outer.finish();
    EXPECT_NE(findPhase(ri.root, "test.inner"), nullptr);
    EXPECT_EQ(findPhase(ro.root, "test.inner"), nullptr);
}

TEST(ProfilerTest, HotScopeCountsAreExactAndFirstEntryIsTimed)
{
    Profiler p;
    {
        Attach attach(p);
        for (int i = 0; i < 200; ++i)
            hotPhase();
    }
    const ProfileReport r = p.finish();
    const PhaseStat* hot = findPhase(r.root, "test.hot");
    ASSERT_NE(hot, nullptr);
    // Sampling may thin the timing but never the count.
    EXPECT_EQ(hot->count, 200u);
    EXPECT_GE(hot->inclusiveSeconds, 0.0);
    checkTreeInvariants(r.root);
}

TEST(ProfilerTest, SiteRegistryGrowsOncePerSite)
{
    innerPhase(); // first call registers the site
    const std::size_t before = siteCount();
    for (int i = 0; i < 5; ++i)
        innerPhase(); // later calls reuse the function-local static
    EXPECT_EQ(siteCount(), before);
}

TEST(ProfilerTest, LlcCoverageComputedFromMeasureChildren)
{
    PhaseStat measure;
    measure.label = "measure";
    measure.inclusiveSeconds = 10.0;
    PhaseStat svc;
    svc.label = "llc.service";
    svc.inclusiveSeconds = 9.0;
    PhaseStat other;
    other.label = "cpu.burst";
    other.inclusiveSeconds = 1.0;
    measure.children = {svc, other};
    PhaseStat root;
    root.label = "run";
    root.inclusiveSeconds = 10.0;
    root.children = {measure};
    EXPECT_NEAR(llcCoverage(root), 0.9, 1e-12);
}

// ---- runner integration ----

class TempFiles
{
  public:
    ~TempFiles()
    {
        for (const auto& p : paths_)
            std::remove(p.c_str());
    }

    std::string
    path(const std::string& name)
    {
        const std::string p = "/tmp/mrp_prof_" + name;
        std::remove(p.c_str());
        paths_.push_back(p);
        return p;
    }

  private:
    std::vector<std::string> paths_;
};

std::vector<runner::RunRequest>
smallBatch(const std::vector<const trace::Trace*>& traces)
{
    std::vector<runner::RunRequest> batch;
    for (const auto* tr : traces)
        for (const char* p : {"LRU", "MPPPB"})
            batch.push_back(runner::RunRequest::singleCore(
                trace::TraceSpec::borrowed(*tr),
                runner::PolicySpec::byName(p)));
    return batch;
}

TEST(ProfilerRunnerTest, PerRunProfilesAreThreadIsolated)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const auto batch = smallBatch({&t0, &t1});

    runner::RunnerOptions opts;
    opts.profile = true;
    const auto set = runner::ExperimentRunner(2).run(batch, opts);

    ASSERT_EQ(set.results.size(), batch.size());
    std::set<const void*> distinct;
    for (const auto& r : set.results) {
        ASSERT_TRUE(r.ok()) << r.error;
        ASSERT_NE(r.profile, nullptr);
        distinct.insert(r.profile.get());
        // Each run owns a complete, self-consistent tree: exactly one
        // warmup and one measure window, with the access-servicing
        // phase below measure.
        const PhaseStat* measure = findPhase(r.profile->root, "measure");
        ASSERT_NE(measure, nullptr);
        EXPECT_EQ(measure->count, 1u);
        EXPECT_NE(findPhase(*measure, "llc.service"), nullptr);
        EXPECT_NE(findPhase(r.profile->root, "warmup"), nullptr);
        checkTreeInvariants(r.profile->root);
        EXPECT_GT(r.profile->wallSeconds, 0.0);
        EXPECT_GT(r.profile->instsPerSecond, 0.0);
        EXPECT_GT(llcCoverage(r.profile->root), 0.0);
    }
    EXPECT_EQ(distinct.size(), batch.size());
}

TEST(ProfilerRunnerTest, DetachedReportsByteIdenticalAcrossJobsAndProfile)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto batch = smallBatch({&t0});

    runner::RunnerOptions off;
    runner::RunnerOptions on;
    on.profile = true;

    const auto base_j1 = runner::ExperimentRunner(1).run(batch, off);
    const auto base_j2 = runner::ExperimentRunner(2).run(batch, off);
    const auto prof_j1 = runner::ExperimentRunner(1).run(batch, on);
    const auto prof_j2 = runner::ExperimentRunner(2).run(batch, on);

    // Timing-off reports never expose the profile: all four byte-equal.
    const runner::ReportOptions ropts; // timing = false
    const std::string json = toJson(base_j1, ropts);
    EXPECT_EQ(json, toJson(base_j2, ropts));
    EXPECT_EQ(json, toJson(prof_j1, ropts));
    EXPECT_EQ(json, toJson(prof_j2, ropts));
    const std::string csv = toCsv(base_j1, ropts);
    EXPECT_EQ(csv, toCsv(base_j2, ropts));
    EXPECT_EQ(csv, toCsv(prof_j1, ropts));
    EXPECT_EQ(csv, toCsv(prof_j2, ropts));
}

TEST(ProfilerRunnerTest, TimingReportsGainProfiledFields)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto batch = smallBatch({&t0});

    runner::ReportOptions timing;
    timing.timing = true;

    runner::RunnerOptions off;
    const auto plain = runner::ExperimentRunner(1).run(batch, off);
    const std::string plain_json = toJson(plain, timing);
    EXPECT_EQ(plain_json.find("userSeconds"), std::string::npos);

    runner::RunnerOptions on;
    on.profile = true;
    const auto profiled = runner::ExperimentRunner(1).run(batch, on);
    const std::string json = toJson(profiled, timing);
    EXPECT_NE(json.find("\"userSeconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"sysSeconds\":"), std::string::npos);
    EXPECT_NE(json.find("\"maxRssKb\":"), std::string::npos);
    EXPECT_NE(json.find("\"accessesPerSecond\":"), std::string::npos);

    const std::string csv = toCsv(profiled, timing);
    EXPECT_NE(csv.find("user_seconds"), std::string::npos);
    EXPECT_NE(csv.find("accesses_per_second"), std::string::npos);
    EXPECT_EQ(toCsv(plain, timing).find("user_seconds"),
              std::string::npos);
}

std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

TEST(ProfilerRunnerTest, ProgressJsonlIsValidAndComplete)
{
    TempFiles tmp;
    const std::string progress = tmp.path("progress.jsonl");

    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto t1 = trace::makeSuiteTrace(9, 60000);
    const auto batch = smallBatch({&t0, &t1});

    runner::RunnerOptions opts;
    opts.progressJsonlPath = progress;
    const auto set = runner::ExperimentRunner(2).run(batch, opts);
    ASSERT_EQ(set.results.size(), batch.size());

    std::istringstream lines(slurp(progress));
    std::string line;
    std::vector<std::string> events;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        json::Value doc;
        ASSERT_TRUE(json::tryParseJson(line, &doc)) << line;
        const json::Value* ev = doc.get("event");
        ASSERT_NE(ev, nullptr);
        events.push_back(ev->string);
    }
    ASSERT_GE(events.size(), 2u + 2u * batch.size());
    EXPECT_EQ(events.front(), "batch_start");
    EXPECT_EQ(events.back(), "batch_end");
    std::size_t starts = 0, ends = 0;
    for (const auto& e : events) {
        starts += e == "run_start";
        ends += e == "run_end";
    }
    EXPECT_EQ(starts, batch.size());
    EXPECT_EQ(ends, batch.size());
}

TEST(ProfilerRunnerTest, ResumedRunsReportSkipped)
{
    TempFiles tmp;
    const std::string journal = tmp.path("journal.jsonl");
    const std::string progress = tmp.path("resume_progress.jsonl");

    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto batch = smallBatch({&t0});

    runner::RunnerOptions first;
    first.journalPath = journal;
    runner::ExperimentRunner(1).run(batch, first);

    runner::RunnerOptions second;
    second.resumePath = journal;
    second.progressJsonlPath = progress;
    const auto set = runner::ExperimentRunner(1).run(batch, second);
    ASSERT_EQ(set.results.size(), batch.size());

    const std::string text = slurp(progress);
    std::size_t skipped = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line))
        skipped += line.find("\"run_skipped\"") != std::string::npos;
    EXPECT_EQ(skipped, batch.size());
    EXPECT_EQ(text.find("\"run_start\""), std::string::npos);
}

// ---- BENCH document ----

TEST(BenchExportTest, BenchJsonRoundTripsThroughReader)
{
    const auto t0 = trace::makeSuiteTrace(4, 60000);
    const auto batch = smallBatch({&t0});
    runner::RunnerOptions opts;
    opts.profile = true;
    const auto set = runner::ExperimentRunner(1).run(batch, opts);

    std::vector<BenchRun> runs;
    for (const auto& r : set.results) {
        ASSERT_NE(r.profile, nullptr);
        runs.push_back(
            {r.label.empty() ? r.benchmark + "/" + r.policy : r.label,
             r.benchmark, r.policy, *r.profile});
    }

    MachineInfo machine;
    machine.os = "Linux";
    machine.release = "test";
    machine.arch = "x86_64";
    machine.hostname = "host";
    machine.cpus = 2;
    const std::string doc =
        benchJson("unit", runs, machine, "deadbeef");

    const json::Value v = json::parseJson(doc, "BENCH_unit.json");
    EXPECT_EQ(v.require("schema", json::Value::Type::String, "doc")
                  .string,
              "mrp-bench-v1");
    EXPECT_EQ(v.require("gitSha", json::Value::Type::String, "doc")
                  .string,
              "deadbeef");
    const json::Value& m =
        v.require("machine", json::Value::Type::Object, "doc");
    EXPECT_EQ(m.require("arch", json::Value::Type::String, "machine")
                  .string,
              "x86_64");
    const json::Value& rs =
        v.require("runs", json::Value::Type::Array, "doc");
    ASSERT_EQ(rs.array.size(), runs.size());
    for (const json::Value& r : rs.array) {
        const json::Value& phases =
            r.require("phases", json::Value::Type::Object, "run");
        EXPECT_EQ(phases
                      .require("label", json::Value::Type::String,
                               "phases")
                      .string,
                  "run");
        EXPECT_GT(r.require("wallSeconds", json::Value::Type::Number,
                            "run")
                      .number,
                  0.0);
        EXPECT_GT(r.require("llcCoverage", json::Value::Type::Number,
                            "run")
                      .number,
                  0.0);
    }
}

TEST(BenchExportTest, TraceEventsAreWellFormedJson)
{
    Profiler p;
    {
        Attach attach(p);
        outerPhase(2);
    }
    BenchRun run{"t/LRU", "t", "LRU", p.finish()};

    std::vector<std::string> events;
    appendTraceEvents(run, 10000, &events);
    ASSERT_GE(events.size(), 2u); // metadata + at least one phase
    bool saw_meta = false, saw_complete = false;
    for (const auto& e : events) {
        json::Value doc;
        ASSERT_TRUE(json::tryParseJson(e, &doc)) << e;
        const json::Value& ph =
            doc.require("ph", json::Value::Type::String, "event");
        saw_meta |= ph.string == "M";
        saw_complete |= ph.string == "X";
    }
    EXPECT_TRUE(saw_meta);
    EXPECT_TRUE(saw_complete);
}

} // namespace
} // namespace mrp::prof
