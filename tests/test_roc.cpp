/**
 * @file
 * Tests for the ROC accumulator and the measurement-only probe.
 */

#include <gtest/gtest.h>

#include <memory>

#include "policy/sdbp.hpp"
#include "sim/roc_probe.hpp"
#include "sim/single_core.hpp"
#include "stats/roc.hpp"
#include "trace/source.hpp"
#include "trace/workloads.hpp"

namespace mrp {
namespace {

TEST(RocAccumulatorTest, PerfectPredictorCurve)
{
    stats::RocAccumulator roc(-10, 10);
    for (int i = 0; i < 100; ++i) {
        roc.add(8, true);   // dead with high confidence
        roc.add(-8, false); // live with low confidence
    }
    EXPECT_EQ(roc.deadCount(), 100u);
    EXPECT_EQ(roc.liveCount(), 100u);
    // At a threshold of 0: TPR 1, FPR 0.
    const auto curve = roc.curve();
    bool found = false;
    for (const auto& p : curve) {
        if (p.threshold == 0) {
            EXPECT_DOUBLE_EQ(p.truePositiveRate, 1.0);
            EXPECT_DOUBLE_EQ(p.falsePositiveRate, 0.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_DOUBLE_EQ(roc.tprAtFpr(0.5), 1.0);
}

TEST(RocAccumulatorTest, RandomPredictorIsDiagonal)
{
    stats::RocAccumulator roc(-100, 100);
    Rng rng(6);
    for (int i = 0; i < 200000; ++i)
        roc.add(static_cast<int>(rng.range(0, 200)) - 100,
                rng.chance(0.5));
    // TPR ~= FPR everywhere for an uninformative confidence.
    for (double f : {0.2, 0.5, 0.8})
        EXPECT_NEAR(roc.tprAtFpr(f), f, 0.02);
}

TEST(RocAccumulatorTest, CurveIsMonotone)
{
    stats::RocAccumulator roc(-50, 50);
    Rng rng(7);
    for (int i = 0; i < 50000; ++i) {
        const bool dead = rng.chance(0.4);
        const int conf = static_cast<int>(rng.range(0, 60)) -
                         (dead ? 10 : 50);
        roc.add(conf, dead);
    }
    const auto curve = roc.curve();
    for (std::size_t i = 1; i < curve.size(); ++i) {
        EXPECT_LE(curve[i].falsePositiveRate,
                  curve[i - 1].falsePositiveRate);
        EXPECT_LE(curve[i].truePositiveRate,
                  curve[i - 1].truePositiveRate);
    }
    EXPECT_DOUBLE_EQ(curve.front().falsePositiveRate, 1.0);
    EXPECT_DOUBLE_EQ(curve.back().truePositiveRate, 0.0);
}

TEST(RocAccumulatorTest, ClampsOutOfRangeConfidences)
{
    stats::RocAccumulator roc(-5, 5);
    roc.add(100, true);
    roc.add(-100, false);
    EXPECT_EQ(roc.deadCount(), 1u);
    EXPECT_EQ(roc.liveCount(), 1u);
}

TEST(RocAccumulatorTest, EmptyOrOneSidedCurve)
{
    stats::RocAccumulator roc(-5, 5);
    EXPECT_TRUE(roc.curve().empty());
    roc.add(1, true);
    EXPECT_TRUE(roc.curve().empty()); // needs both classes
    EXPECT_THROW(stats::RocAccumulator(5, 5), FatalError);
}

TEST(RocProbeTest, ResolvesGroundTruthOnRealRun)
{
    const sim::SingleCoreConfig cfg;
    const cache::CacheGeometry geom(cfg.hierarchy.llcBytes,
                                    cfg.hierarchy.llcWays);
    std::vector<std::unique_ptr<policy::ReusePredictor>> preds;
    preds.push_back(std::make_unique<policy::SdbpPredictor>(geom, 1));
    sim::RocProbe probe(geom, std::move(preds));
    // Long enough for the 2MB LLC to fill and start evicting; scan.b
    // has an LLC-resident hot set, so both outcome classes occur.
    const auto tr = trace::makeSuiteTrace(10, 900000); // scan.b
    trace::MaterializedTraceSource src(tr);
    sim::runSingleCoreObserved(src, sim::makePolicyFactory("LRU"),
                               cfg, &probe);
    EXPECT_GT(probe.roc(0).deadCount(), 1000u);
    EXPECT_GT(probe.roc(0).liveCount(), 0u);
}

TEST(RocProbeTest, RequiresAtLeastOnePredictor)
{
    const cache::CacheGeometry geom(2 * 1024 * 1024, 16);
    std::vector<std::unique_ptr<policy::ReusePredictor>> none;
    EXPECT_THROW(sim::RocProbe(geom, std::move(none)), FatalError);
}

} // namespace
} // namespace mrp
