/**
 * @file
 * The streaming memory-bound acceptance test: generate a chunked trace
 * file larger than 256 MB, stream it end to end, and assert the
 * process's peak RSS stayed under a quarter of the trace size. Runs as
 * its own binary so no other test's allocations pollute ru_maxrss —
 * the counter is a high-water mark for the whole process and can
 * never go down.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/resource.h>
#include <unistd.h>

#include "trace/spec.hpp"
#include "trace/stream_gen.hpp"
#include "trace/stream_reader.hpp"

namespace {

using namespace mrp;

std::uint64_t
peakRssBytes()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

std::uint64_t
fileSizeBytes(const std::string& path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    return f ? static_cast<std::uint64_t>(f.tellg()) : 0;
}

TEST(StreamRss, LargeTraceStreamsInBoundedMemory)
{
    const std::string path =
        "stream_rss_" + std::to_string(::getpid()) + ".mrpt";

    // ~17M records at 16 bytes each is ~272 MB of payload. With the
    // default 6 pads per access, that is ~2 records per 7 instructions.
    trace::ZipfParams p;
    p.instructions = 60'000'000;
    p.keys = 1u << 20;
    const auto spec = trace::TraceSpec::zipf(p);

    {
        trace::ChunkedTraceWriter writer(path, spec.displayName());
        auto src = spec.open();
        writer.appendAll(*src);
        writer.finish();
    }
    const std::uint64_t trace_bytes = fileSizeBytes(path);
    ASSERT_GE(trace_bytes, std::uint64_t{256} << 20)
        << "trace did not reach the 256 MB floor; grow instructions";

    // Stream the file in every delivery mode; none may pull the whole
    // payload into memory.
    std::uint64_t records = 0;
    {
        trace::FileTraceSource src(path, trace::FileMode::Buffered);
        for (auto c = src.nextChunk(); !c.empty(); c = src.nextChunk())
            records += c.size();
    }
    {
        trace::FileTraceSource src(path, trace::FileMode::Mmap);
        for (auto c = src.nextChunk(); !c.empty(); c = src.nextChunk())
            records += c.size();
    }
    {
        trace::DecodeAheadSource src(
            std::make_unique<trace::FileTraceSource>(
                path, trace::FileMode::Buffered),
            2);
        for (auto c = src.nextChunk(); !c.empty(); c = src.nextChunk())
            records += c.size();
    }
    std::remove(path.c_str());
    EXPECT_GT(records, std::uint64_t{3} * 17'000'000);

    const std::uint64_t peak = peakRssBytes();
    EXPECT_LT(peak, trace_bytes / 4)
        << "peak RSS " << (peak >> 20) << " MB vs trace "
        << (trace_bytes >> 20) << " MB — streaming is buffering";
}

} // namespace
