/**
 * @file
 * Tests for the out-of-order core timing model: width limits, window
 * stalls, miss overlap, dependent-load serialization, and the MSHR
 * bound on memory-level parallelism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/core_model.hpp"
#include "policy/lru.hpp"
#include "trace/builder.hpp"
#include "trace/source.hpp"

namespace mrp::cpu {
namespace {

cache::HierarchyConfig
smallConfig()
{
    cache::HierarchyConfig cfg;
    cfg.prefetchEnabled = false;
    return cfg;
}

std::unique_ptr<cache::Hierarchy>
makeHier(const cache::HierarchyConfig& cfg)
{
    const cache::CacheGeometry g(cfg.llcBytes, cfg.llcWays);
    return std::make_unique<cache::Hierarchy>(
        cfg, std::make_unique<policy::LruPolicy>(g));
}

trace::Trace
padsOnly(InstCount n)
{
    trace::TraceBuilder b("pads", 0x400000, 1);
    while (b.instructions() < n)
        b.pad(1000);
    return std::move(b).build();
}

TEST(CoreModelTest, NonMemIpcApproachesWidth)
{
    auto hier = makeHier(smallConfig());
    const auto t = padsOnly(100000);
    trace::MaterializedTraceSource src(t);
    CoreModel cpu(0, *hier, src, false);
    while (!cpu.finished())
        cpu.step();
    const double ipc = static_cast<double>(cpu.retired()) /
                       static_cast<double>(cpu.cycle());
    EXPECT_GT(ipc, 3.5);
    EXPECT_LE(ipc, 4.0 + 1e-9);
}

TEST(CoreModelTest, L1HitsDoNotThrottleMuch)
{
    auto hier = makeHier(smallConfig());
    trace::TraceBuilder b("l1", 0x400000, 1);
    for (int i = 0; i < 20000; ++i) {
        b.load(1, 0x1000 + 64 * (i % 8)); // stays in L1
        b.pad(3);
    }
    const auto t = std::move(b).build();
    trace::MaterializedTraceSource src(t);
    CoreModel cpu(0, *hier, src, false);
    while (!cpu.finished())
        cpu.step();
    const double ipc = static_cast<double>(cpu.retired()) /
                       static_cast<double>(cpu.cycle());
    // L1 latency is 4 cycles and overlaps; IPC should stay near width.
    EXPECT_GT(ipc, 2.0);
}

/** Independent misses should overlap; dependent ones serialize. */
TEST(CoreModelTest, DependentLoadsSerialize)
{
    const Addr stride = 1 << 20; // distinct sets, always LLC+DRAM miss
    const int n = 2000;

    auto run = [&](bool dep) {
        auto hier = makeHier(smallConfig());
        trace::TraceBuilder b("x", 0x400000, 1);
        for (int i = 0; i < n; ++i)
            b.load(1, 0x10000000ull + stride * i, dep);
        const auto t = std::move(b).build();
        trace::MaterializedTraceSource src(t);
        CoreModel cpu(0, *hier, src, false);
        while (!cpu.finished())
            cpu.step();
        return cpu.cycle();
    };

    const Cycle independent = run(false);
    const Cycle dependent = run(true);
    // Fully serialized: ~240 cycles per load. Independent: bounded by
    // MSHRs (16 outstanding) => near 240/16 per load.
    EXPECT_GT(dependent, independent * 5);
    EXPECT_GE(dependent, static_cast<Cycle>(n) * 240);
}

TEST(CoreModelTest, MshrsBoundMissOverlap)
{
    const Addr stride = 1 << 20;
    const int n = 2000;
    auto run = [&](unsigned mshrs) {
        auto hier = makeHier(smallConfig());
        trace::TraceBuilder b("x", 0x400000, 1);
        for (int i = 0; i < n; ++i)
            b.load(1, 0x10000000ull + stride * i);
        const auto t = std::move(b).build();
        CoreModelConfig ccfg;
        ccfg.mshrs = mshrs;
        trace::MaterializedTraceSource src(t);
        CoreModel cpu(0, *hier, src, false, ccfg);
        while (!cpu.finished())
            cpu.step();
        return cpu.cycle();
    };
    const Cycle wide = run(64);
    const Cycle narrow = run(2);
    EXPECT_GT(narrow, wide * 3);
}

TEST(CoreModelTest, WindowLimitsOverlapWhenSmall)
{
    const Addr stride = 1 << 20;
    auto run = [&](unsigned window) {
        auto hier = makeHier(smallConfig());
        trace::TraceBuilder b("x", 0x400000, 1);
        for (int i = 0; i < 1000; ++i) {
            b.load(1, 0x10000000ull + stride * i);
            b.pad(30);
        }
        const auto t = std::move(b).build();
        CoreModelConfig ccfg;
        ccfg.windowSize = window;
        trace::MaterializedTraceSource src(t);
        CoreModel cpu(0, *hier, src, false, ccfg);
        while (!cpu.finished())
            cpu.step();
        return cpu.cycle();
    };
    // A 16-entry window fits no two misses (31 instructions apart);
    // a 128-entry window overlaps ~4.
    EXPECT_GT(run(16), 2 * run(128));
}

TEST(CoreModelTest, LoopRestartsTrace)
{
    auto hier = makeHier(smallConfig());
    trace::TraceBuilder b("x", 0x400000, 1);
    b.load(1, 0x1000);
    b.pad(9);
    const auto t = std::move(b).build();
    trace::MaterializedTraceSource src(t);
    CoreModel cpu(0, *hier, src, true);
    for (int i = 0; i < 100; ++i)
        cpu.step();
    EXPECT_FALSE(cpu.finished());
    EXPECT_GT(cpu.retired(), t.instructions());
}

TEST(CoreModelTest, FinishedAfterSinglePass)
{
    auto hier = makeHier(smallConfig());
    const auto t = padsOnly(5000);
    trace::MaterializedTraceSource src(t);
    CoreModel cpu(0, *hier, src, false);
    while (!cpu.finished())
        cpu.step();
    EXPECT_EQ(cpu.retired(), t.instructions());
    EXPECT_THROW(cpu.step(), PanicError);
}

TEST(CoreModelTest, PcHistoryIsUpdatedOnMemOps)
{
    auto hier = makeHier(smallConfig());
    trace::TraceBuilder b("x", 0x400000, 1);
    b.load(1, 0x1000);
    b.load(2, 0x2000);
    const auto t = std::move(b).build();
    trace::MaterializedTraceSource src(t);
    CoreModel cpu(0, *hier, src, false);
    cpu.step();
    EXPECT_EQ(cpu.context().pcHistory.recent(0), t.records()[0].pc());
    cpu.step();
    EXPECT_EQ(cpu.context().pcHistory.recent(0), t.records()[1].pc());
    EXPECT_EQ(cpu.context().pcHistory.recent(1), t.records()[0].pc());
}

TEST(CoreModelTest, StoresDoNotBlockRetirement)
{
    const Addr stride = 1 << 20;
    auto run = [&](bool store) {
        auto hier = makeHier(smallConfig());
        trace::TraceBuilder b("x", 0x400000, 1);
        for (int i = 0; i < 1000; ++i) {
            if (store)
                b.store(1, 0x10000000ull + stride * i);
            else
                b.load(1, 0x10000000ull + stride * i);
        }
        const auto t = std::move(b).build();
        trace::MaterializedTraceSource src(t);
        CoreModel cpu(0, *hier, src, false);
        while (!cpu.finished())
            cpu.step();
        return cpu.cycle();
    };
    EXPECT_LT(run(true) * 5, run(false));
}

TEST(CoreModelTest, LoadLatencyAccounting)
{
    auto hier = makeHier(smallConfig());
    trace::TraceBuilder b("x", 0x400000, 1);
    b.load(1, 0x1000);
    b.load(1, 0x1000);
    const auto t = std::move(b).build();
    trace::MaterializedTraceSource src(t);
    CoreModel cpu(0, *hier, src, false);
    while (!cpu.finished())
        cpu.step();
    EXPECT_EQ(cpu.loadCount(), 2u);
    // First access misses everywhere (240), second hits L1 (4).
    EXPECT_EQ(cpu.loadLatencyTotal(), 244u);
}

} // namespace
} // namespace mrp::cpu
