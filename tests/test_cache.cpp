/**
 * @file
 * Tests for the cache substrate: geometry, the basic LRU cache, and
 * the policy-driven LLC (hit/miss paths, bypass, victims, observers).
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/basic_cache.hpp"
#include "cache/policy_cache.hpp"
#include "policy/lru.hpp"
#include "util/logging.hpp"

namespace mrp::cache {
namespace {

Addr
addrOf(std::uint32_t set, std::uint64_t tag, std::uint32_t sets)
{
    return ((tag * sets) + set) * kBlockBytes;
}

TEST(GeometryTest, DerivesSetsAndTags)
{
    const CacheGeometry g(2 * 1024 * 1024, 16);
    EXPECT_EQ(g.sets(), 2048u);
    EXPECT_EQ(g.ways(), 16u);
    EXPECT_EQ(g.bytes(), 2u * 1024 * 1024);

    const Addr a = addrOf(5, 99, g.sets());
    EXPECT_EQ(g.setIndex(a), 5u);
    EXPECT_EQ(g.tag(a), 99u);
    EXPECT_EQ(g.blockAddrOf(5, 99), a);
}

TEST(GeometryTest, RejectsBadShapes)
{
    EXPECT_THROW(CacheGeometry(1000, 3), FatalError);
    EXPECT_THROW(CacheGeometry(64, 0), FatalError);
    // 3 sets is not a power of two: 3 * 64B * 1 way
    EXPECT_THROW(CacheGeometry(192, 1), FatalError);
}

TEST(BasicCacheTest, HitAfterFill)
{
    BasicCache c("t", 8 * 1024, 8);
    EXPECT_FALSE(c.access(0x1000, false));
    c.fill(0x1000, false, false);
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103F, false)); // same block
    EXPECT_FALSE(c.access(0x1040, false)); // next block
    EXPECT_EQ(c.stats().demandHits, 2u);
    EXPECT_EQ(c.stats().demandMisses, 2u);
}

TEST(BasicCacheTest, EvictsTrueLru)
{
    // 1-set cache of 4 ways: 256B, 4-way.
    BasicCache c("t", 256, 4);
    const std::uint32_t sets = c.geometry().sets();
    ASSERT_EQ(sets, 1u);
    for (std::uint64_t t = 0; t < 4; ++t)
        c.fill(addrOf(0, t, 1), false, false);
    // Touch 0 to make 1 the LRU.
    EXPECT_TRUE(c.access(addrOf(0, 0, 1), false));
    const VictimBlock v = c.fill(addrOf(0, 9, 1), false, false);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.blockAddress, addrOf(0, 1, 1));
    EXPECT_FALSE(c.contains(addrOf(0, 1, 1)));
    EXPECT_TRUE(c.contains(addrOf(0, 0, 1)));
}

TEST(BasicCacheTest, DirtyTracking)
{
    BasicCache c("t", 256, 4);
    c.fill(0x0, false, false);
    EXPECT_TRUE(c.access(0x0, true)); // write marks dirty
    for (std::uint64_t t = 1; t <= 4; ++t)
        c.fill(addrOf(0, t, 1), false, false);
    // The original block was evicted dirty.
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(BasicCacheTest, MarkDirtyAndInvalidate)
{
    BasicCache c("t", 256, 4);
    EXPECT_FALSE(c.markDirty(0x0));
    c.fill(0x0, false, false);
    EXPECT_TRUE(c.markDirty(0x0));
    const VictimBlock v = c.invalidate(0x0);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_FALSE(c.contains(0x0));
    EXPECT_FALSE(c.invalidate(0x123456).valid);
}

TEST(BasicCacheTest, TouchRefreshesWithoutStats)
{
    BasicCache c("t", 256, 4);
    for (std::uint64_t t = 0; t < 4; ++t)
        c.fill(addrOf(0, t, 1), false, false);
    const auto demand_before = c.stats().demandAccesses;
    EXPECT_TRUE(c.touch(addrOf(0, 0, 1)));
    EXPECT_EQ(c.stats().demandAccesses, demand_before);
    const VictimBlock v = c.fill(addrOf(0, 7, 1), false, false);
    EXPECT_EQ(v.blockAddress, addrOf(0, 1, 1)); // 0 was refreshed
}

// ---------------------------------------------------------------------
// PolicyCache

class CountingObserver : public LlcObserver
{
  public:
    int accesses = 0, hits = 0, fills = 0, evicts = 0, bypasses = 0;

    void
    onAccess(const AccessInfo&, bool hit, std::uint32_t, int) override
    {
        ++accesses;
        hits += hit ? 1 : 0;
    }
    void onFill(const AccessInfo&, std::uint32_t, std::uint32_t) override
    {
        ++fills;
    }
    void onEvict(std::uint32_t, std::uint32_t, Addr) override
    {
        ++evicts;
    }
    void onBypass(const AccessInfo&, std::uint32_t) override
    {
        ++bypasses;
    }
};

/** Policy that bypasses everything after the set fills up. */
class BypassAllPolicy : public LlcPolicy
{
  public:
    std::string name() const override { return "BypassAll"; }
    void onHit(const AccessInfo&, std::uint32_t, std::uint32_t) override
    {
    }
    bool shouldBypass(const AccessInfo&, std::uint32_t) override
    {
        return true;
    }
    std::uint32_t victimWay(const AccessInfo&, std::uint32_t) override
    {
        return 0;
    }
    void onFill(const AccessInfo&, std::uint32_t, std::uint32_t) override
    {
    }
};

AccessInfo
demand(Addr a, AccessType t = AccessType::Load)
{
    AccessInfo info;
    info.pc = 0x400000;
    info.addr = a;
    info.type = t;
    return info;
}

TEST(PolicyCacheTest, FillsInvalidWaysBeforeAskingPolicy)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<policy::LruPolicy>(g), 1);
    for (std::uint64_t t = 0; t < 4; ++t) {
        const auto r = c.access(demand(addrOf(0, t, 1)));
        EXPECT_FALSE(r.hit);
        EXPECT_FALSE(r.victim.valid); // no eviction while ways free
    }
    const auto r = c.access(demand(addrOf(0, 4, 1)));
    EXPECT_TRUE(r.victim.valid);
    EXPECT_EQ(r.victim.blockAddress, addrOf(0, 0, 1));
}

TEST(PolicyCacheTest, LruPromotionOnHit)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<policy::LruPolicy>(g), 1);
    for (std::uint64_t t = 0; t < 4; ++t)
        c.access(demand(addrOf(0, t, 1)));
    EXPECT_TRUE(c.access(demand(addrOf(0, 0, 1))).hit);
    const auto r = c.access(demand(addrOf(0, 8, 1)));
    EXPECT_EQ(r.victim.blockAddress, addrOf(0, 1, 1));
}

TEST(PolicyCacheTest, BypassOnlyConsideredForFullSets)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<BypassAllPolicy>(), 1);
    // While ways are free, fills happen even though the policy wants
    // to bypass everything (bypassing into free space wastes capacity).
    for (std::uint64_t t = 0; t < 4; ++t) {
        c.access(demand(addrOf(0, t, 1)));
        EXPECT_TRUE(c.contains(addrOf(0, t, 1)));
    }
    // Once the set is full, the policy's bypass takes effect.
    const auto r = c.access(demand(addrOf(0, 9, 1)));
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.bypassed);
    EXPECT_FALSE(c.contains(addrOf(0, 9, 1)));
    EXPECT_EQ(c.stats().bypasses, 1u);
    EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(PolicyCacheTest, WritebackInstallsDirty)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<policy::LruPolicy>(g), 1);
    c.access(demand(0x0, AccessType::Writeback));
    EXPECT_TRUE(c.contains(0x0));
    // Evict it: the victim must be dirty.
    for (std::uint64_t t = 1; t <= 4; ++t)
        c.access(demand(addrOf(0, t, 1)));
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(PolicyCacheTest, WritebackHitRedirties)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<policy::LruPolicy>(g), 1);
    c.access(demand(0x0)); // clean fill
    c.access(demand(0x0, AccessType::Writeback)); // hit, mark dirty
    for (std::uint64_t t = 1; t <= 4; ++t)
        c.access(demand(addrOf(0, t, 1)));
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(PolicyCacheTest, PerCoreDemandMissAttribution)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<policy::LruPolicy>(g), 2);
    AccessInfo a = demand(0x1000);
    a.core = 1;
    c.access(a);
    c.access(demand(0x2000)); // core 0
    c.access(demand(0x2000)); // hit
    EXPECT_EQ(c.demandMissesOf(0), 1u);
    EXPECT_EQ(c.demandMissesOf(1), 1u);
    EXPECT_THROW(c.demandMissesOf(7), FatalError);
}

TEST(PolicyCacheTest, ObserverSeesAllEvents)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<policy::LruPolicy>(g), 1);
    CountingObserver obs;
    c.setObserver(&obs);
    for (std::uint64_t t = 0; t < 5; ++t)
        c.access(demand(addrOf(0, t, 1)));
    c.access(demand(addrOf(0, 4, 1))); // hit
    EXPECT_EQ(obs.accesses, 6);
    EXPECT_EQ(obs.hits, 1);
    EXPECT_EQ(obs.fills, 5);
    EXPECT_EQ(obs.evicts, 1);
}

TEST(PolicyCacheTest, StatsByType)
{
    const CacheGeometry g(256, 4);
    PolicyCache c(256, 4, std::make_unique<policy::LruPolicy>(g), 1);
    c.access(demand(0x1000, AccessType::Load));
    c.access(demand(0x1000, AccessType::Store));
    c.access(demand(0x2000, AccessType::Prefetch));
    c.access(demand(0x3000, AccessType::Writeback));
    const auto& s = c.stats();
    EXPECT_EQ(s.demandAccesses, 2u);
    EXPECT_EQ(s.demandHits, 1u);
    EXPECT_EQ(s.prefetchMisses, 1u);
    EXPECT_EQ(s.writebackMisses, 1u);
    EXPECT_EQ(s.totalAccesses(), 4u);
    c.resetStats();
    EXPECT_EQ(c.stats().totalAccesses(), 0u);
    EXPECT_EQ(c.demandMissesOf(0), 0u);
}

} // namespace
} // namespace mrp::cache
