/**
 * @file
 * Tests for the prior-work predictors reproduced as baselines: SDBP,
 * Perceptron reuse prediction, and Hawkeye.
 */

#include <gtest/gtest.h>

#include "cache/policy_cache.hpp"
#include "policy/hawkeye.hpp"
#include "policy/perceptron.hpp"
#include "policy/sdbp.hpp"

namespace mrp::policy {
namespace {

cache::CacheGeometry
geom()
{
    return cache::CacheGeometry(2 * 1024 * 1024, 16);
}

cache::AccessInfo
access(Pc pc, Addr addr)
{
    cache::AccessInfo info;
    info.pc = pc;
    info.addr = addr;
    info.type = cache::AccessType::Load;
    return info;
}

// ---------------------------------------------------------------------
// SDBP

TEST(SdbpPredictorTest, LearnsDeadPc)
{
    SdbpPredictor pred(geom(), 1);
    int conf = 0;
    for (int i = 0; i < 3000; ++i)
        conf = pred.observe(
            access(0x400000, (static_cast<Addr>(i) * 2048 + 0) * 64), 0,
            false);
    EXPECT_TRUE(pred.isDead(conf));
    EXPECT_EQ(conf, pred.maxConfidence()); // counters saturate at 3+3+3
}

TEST(SdbpPredictorTest, LearnsLivePc)
{
    SdbpPredictor pred(geom(), 1);
    int conf = 0;
    for (int i = 0; i < 2000; ++i)
        conf = pred.observe(access(0x500000, (i % 2) * 2048 * 64), 0,
                            true);
    EXPECT_FALSE(pred.isDead(conf));
    EXPECT_EQ(conf, 0);
}

TEST(SdbpPredictorTest, ConfidenceRange)
{
    SdbpPredictor pred(geom(), 1);
    EXPECT_EQ(pred.minConfidence(), 0);
    EXPECT_EQ(pred.maxConfidence(), 9); // 3 tables x 2-bit counters
}

TEST(SdbpPolicyTest, BypassesDeadStreamWhenFull)
{
    auto pol = std::make_unique<SdbpPolicy>(geom(), 1);
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    for (int i = 0; i < 300000; ++i)
        llc.access(access(0x400000, static_cast<Addr>(i) * 64 * 3));
    EXPECT_GT(llc.stats().bypasses, 10000u);
}

// ---------------------------------------------------------------------
// Perceptron

TEST(PerceptronPredictorTest, SeparatesDeadAndLivePcs)
{
    PerceptronPredictor pred(geom(), 1);
    for (int i = 0; i < 4000; ++i) {
        pred.observe(
            access(0x400000, (static_cast<Addr>(i) * 2048 + 64) * 64),
            0, false);
        pred.observe(access(0x500000, (i % 2) * 2048 * 64), 0, true);
    }
    const int dead = pred.observe(
        access(0x400000, 0x7777ull * 2048 * 64), 0, false);
    const int live = pred.observe(access(0x500000, 0), 0, true);
    EXPECT_GT(dead, live + 20);
}

TEST(PerceptronPredictorTest, ConfidenceWithinSixTablesRange)
{
    PerceptronPredictor pred(geom(), 1);
    EXPECT_EQ(pred.maxConfidence(), 6 * 31);
    EXPECT_EQ(pred.minConfidence(), 6 * -32);
}

TEST(PerceptronPolicyTest, ProtectsHotDataFromDeadStream)
{
    auto pol = std::make_unique<PerceptronPolicy>(geom(), 1);
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    const int hot_blocks = 2048;
    std::uint64_t last_round_hits = 0;
    for (int round = 0; round < 40; ++round) {
        last_round_hits = 0;
        for (int b = 0; b < hot_blocks; ++b) {
            last_round_hits +=
                llc.access(
                       access(0x500000, static_cast<Addr>(b) * 64 * 9))
                        .hit
                    ? 1
                    : 0;
            // Interleave dead-stream pollution from another PC.
            llc.access(access(
                0x400000,
                0x40000000ull +
                    (static_cast<Addr>(round) * hot_blocks + b) * 64 *
                        5));
        }
    }
    // The hot set must remain mostly resident despite the pollution.
    EXPECT_GT(last_round_hits, hot_blocks * 8u / 10u);
}

// ---------------------------------------------------------------------
// Hawkeye

TEST(HawkeyeTest, ClassifiesFriendlyAndAversePcs)
{
    HawkeyePolicy hawk(geom(), 1);
    // Averse PC: touch-once traffic in a sampled set; friendly PC:
    // short-reuse traffic.
    for (int i = 0; i < 6000; ++i) {
        hawk.onMiss(access(0x400000,
                           (static_cast<Addr>(i) * 2048 + 0) * 64),
                    0);
        cache::AccessInfo live =
            access(0x500000, (i % 2) * 2048 * 64);
        hawk.onHit(live, 0, static_cast<std::uint32_t>(i % 2));
    }
    EXPECT_FALSE(hawk.isFriendly(0x400000));
    EXPECT_TRUE(hawk.isFriendly(0x500000));
}

TEST(HawkeyeTest, AverseBlocksAreVictimizedFirst)
{
    HawkeyePolicy hawk(geom(), 1);
    // Train 0x400000 averse.
    for (int i = 0; i < 6000; ++i)
        hawk.onMiss(
            access(0x400000, (static_cast<Addr>(i) * 2048 + 0) * 64),
            0);
    ASSERT_FALSE(hawk.isFriendly(0x400000));
    // Fill a set: way 5 averse, others friendly.
    for (std::uint32_t w = 0; w < 16; ++w)
        hawk.onFill(access(w == 5 ? 0x400000 : 0x500000,
                           static_cast<Addr>(w) * 2048 * 64),
                    64, w);
    EXPECT_EQ(hawk.victimWay(access(0x600000, 0), 64), 5u);
}

TEST(HawkeyeTest, EndToEndBeatsNothingButRuns)
{
    auto pol = std::make_unique<HawkeyePolicy>(geom(), 1);
    cache::PolicyCache llc(2 * 1024 * 1024, 16, std::move(pol), 1);
    Rng rng(4);
    for (int i = 0; i < 200000; ++i)
        llc.access(access(0x400000 + 4 * rng.below(16),
                          rng.below(1u << 22) * 64));
    // Hawkeye never bypasses.
    EXPECT_EQ(llc.stats().bypasses, 0u);
    EXPECT_GT(llc.stats().demandAccesses, 0u);
}

} // namespace
} // namespace mrp::policy
