/**
 * @file
 * Tests for the BENCH regression guard: pass/fail around the
 * tolerance, missing phases and runs, throughput direction, the
 * min-seconds noise floor, and schema rejection — all on fixture JSON
 * documents, the same surface tools/bench_guard drives.
 */

#include <gtest/gtest.h>

#include <string>

#include "prof/bench_guard.hpp"
#include "util/json_reader.hpp"
#include "util/logging.hpp"

namespace mrp::prof {
namespace {

/** A minimal schema-valid BENCH document with one run. The run has a
 * measure phase (inclusive @p measure s) with one llc.access child
 * (@p access s), and the given throughput. */
std::string
fixture(double measure, double access, double rate)
{
    const auto num = [](double v) { return std::to_string(v); };
    return std::string("{\"schema\":\"mrp-bench-v1\",") +
           "\"name\":\"fix\",\"gitSha\":\"0\"," +
           "\"machine\":{\"os\":\"Linux\"}," + "\"runs\":[{" +
           "\"label\":\"mix/MPPPB\",\"benchmark\":\"mix\"," +
           "\"policy\":\"MPPPB\"," +
           "\"instsPerSecond\":" + num(rate) + "," +
           "\"accessesPerSecond\":" + num(rate / 4.0) + "," +
           "\"phases\":{\"label\":\"run\",\"count\":1," +
           "\"inclusiveSeconds\":" + num(measure + 0.5) + "," +
           "\"exclusiveSeconds\":0.5,\"children\":[" +
           "{\"label\":\"measure\",\"count\":1," +
           "\"inclusiveSeconds\":" + num(measure) + "," +
           "\"exclusiveSeconds\":" + num(measure - access) + "," +
           "\"children\":[{\"label\":\"llc.access\",\"count\":100," +
           "\"inclusiveSeconds\":" + num(access) + "," +
           "\"exclusiveSeconds\":" + num(access) + "," +
           "\"children\":[]}]}]}}]}";
}

json::Value
parse(const std::string& text)
{
    return json::parseJson(text, "fixture");
}

TEST(BenchGuardTest, IdenticalDocumentsPass)
{
    const auto doc = parse(fixture(1.0, 0.8, 1e6));
    const GuardResult r = compare(doc, doc, GuardOptions{});
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.runsCompared, 1);
    EXPECT_GT(r.metricsCompared, 0);
}

TEST(BenchGuardTest, GrowthBeyondToleranceRegresses)
{
    const auto base = parse(fixture(1.0, 0.8, 1e6));
    const auto cand = parse(fixture(2.0, 1.6, 1e6));
    const GuardResult r = compare(base, cand, GuardOptions{});
    EXPECT_FALSE(r.ok());
    bool saw_path = false;
    for (const Finding& f : r.findings)
        if (f.kind == Finding::Kind::Regression &&
            f.metric == "run/measure/llc.access")
            saw_path = true;
    EXPECT_TRUE(saw_path);
}

TEST(BenchGuardTest, ToleranceBoundsTheVerdict)
{
    const auto base = parse(fixture(1.0, 0.8, 1e6));
    const auto cand = parse(fixture(1.1, 0.88, 1e6)); // +10%

    GuardOptions loose;
    loose.tolerance = 0.15;
    EXPECT_TRUE(compare(base, cand, loose).ok());

    GuardOptions tight;
    tight.tolerance = 0.05;
    EXPECT_FALSE(compare(base, cand, tight).ok());
}

TEST(BenchGuardTest, ImprovementIsReportedButPasses)
{
    const auto base = parse(fixture(1.0, 0.8, 1e6));
    const auto cand = parse(fixture(0.5, 0.4, 2e6));
    const GuardResult r = compare(base, cand, GuardOptions{});
    EXPECT_TRUE(r.ok());
    bool saw_improvement = false;
    for (const Finding& f : r.findings)
        saw_improvement |= f.kind == Finding::Kind::Improvement;
    EXPECT_TRUE(saw_improvement);
}

TEST(BenchGuardTest, MissingPhaseIsARegression)
{
    const auto base = parse(fixture(1.0, 0.8, 1e6));
    // Candidate with the llc.access child renamed away.
    std::string text = fixture(1.0, 0.8, 1e6);
    const auto pos = text.find("llc.access");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 10, "llc.rename");
    const GuardResult r = compare(base, parse(text), GuardOptions{});
    EXPECT_FALSE(r.ok());
    bool saw_missing = false;
    for (const Finding& f : r.findings)
        if (f.kind == Finding::Kind::Missing &&
            f.metric == "run/measure/llc.access")
            saw_missing = true;
    EXPECT_TRUE(saw_missing);
}

TEST(BenchGuardTest, MissingRunIsARegression)
{
    const auto base = parse(fixture(1.0, 0.8, 1e6));
    const auto cand = parse(
        "{\"schema\":\"mrp-bench-v1\",\"runs\":[]}");
    const GuardResult r = compare(base, cand, GuardOptions{});
    EXPECT_FALSE(r.ok());
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].kind, Finding::Kind::Missing);
    EXPECT_EQ(r.findings[0].run, "mix/MPPPB");
    EXPECT_EQ(r.runsCompared, 0);
}

TEST(BenchGuardTest, ThroughputShrinkRegressesGrowthDoesNot)
{
    const auto base = parse(fixture(1.0, 0.8, 1e6));
    const auto slower = parse(fixture(1.0, 0.8, 5e5));
    EXPECT_FALSE(compare(base, slower, GuardOptions{}).ok());

    GuardOptions no_tp;
    no_tp.checkThroughput = false;
    EXPECT_TRUE(compare(base, slower, no_tp).ok());

    const auto faster = parse(fixture(1.0, 0.8, 2e6));
    EXPECT_TRUE(compare(base, faster, GuardOptions{}).ok());
}

TEST(BenchGuardTest, MinSecondsSkipsNoisePhases)
{
    // Every phase below the floor: a 10x swing must not fire.
    const auto base = parse(fixture(0.004, 0.002, 0.0));
    const auto cand = parse(fixture(0.04, 0.02, 0.0));
    GuardOptions opts;
    opts.minSeconds = 1.0; // above every phase, including root "run"
    opts.checkThroughput = false;
    const GuardResult r = compare(base, cand, opts);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.metricsCompared, 0);
}

TEST(BenchGuardTest, UnsupportedSchemaIsRejected)
{
    const auto good = parse(fixture(1.0, 0.8, 1e6));
    const auto bad =
        parse("{\"schema\":\"mrp-bench-v0\",\"runs\":[]}");
    EXPECT_THROW(compare(bad, good, GuardOptions{}), FatalError);
    EXPECT_THROW(compare(good, bad, GuardOptions{}), FatalError);
}

TEST(BenchGuardTest, FormatFindingsRendersVerdict)
{
    const auto base = parse(fixture(1.0, 0.8, 1e6));
    const auto cand = parse(fixture(2.0, 1.6, 5e5));
    const GuardOptions opts;
    const GuardResult r = compare(base, cand, opts);
    const std::string text = formatFindings(r, opts);
    EXPECT_NE(text.find("REGRESSION"), std::string::npos);
    EXPECT_NE(text.find("REGRESSED"), std::string::npos);
    EXPECT_NE(text.find("run/measure"), std::string::npos);

    const GuardResult clean = compare(base, base, opts);
    EXPECT_NE(formatFindings(clean, opts).find("OK"),
              std::string::npos);
}

} // namespace
} // namespace mrp::prof
