/**
 * @file
 * Unit tests for the telemetry subsystem: metric registration and
 * kind checking, histogram bucket-boundary behaviour, lazy gauge
 * probes, epoch sessions, the reuse-distance tracker, the metric
 * exporters, and the LevelStats self-consistency predicate.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "stats/level_stats.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/session.hpp"
#include "util/logging.hpp"

namespace mrp::telemetry {
namespace {

// ---------------------------------------------------------------- //
// MetricsRegistry

TEST(MetricsRegistryTest, ReRegistrationReturnsSameMetric)
{
    MetricsRegistry reg;
    Counter& a = reg.counter("x.count");
    a.add(3);
    Counter& b = reg.counter("x.count");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);

    Histogram& h1 = reg.histogram("x.hist", {0, 10});
    Histogram& h2 = reg.histogram("x.hist", {0, 10});
    EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, KindMismatchIsFatal)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), FatalError);
    EXPECT_THROW(reg.histogram("x", {0, 1}), FatalError);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted)
{
    MetricsRegistry reg;
    reg.counter("zeta");
    reg.counter("alpha");
    reg.gauge("mid");
    const Snapshot s = reg.snapshot();
    ASSERT_EQ(s.metrics.size(), 3u);
    EXPECT_EQ(s.metrics[0].name, "alpha");
    EXPECT_EQ(s.metrics[1].name, "mid");
    EXPECT_EQ(s.metrics[2].name, "zeta");
    EXPECT_EQ(s.find("mid"), &s.metrics[1]);
    EXPECT_EQ(s.find("missing"), nullptr);
}

TEST(MetricsRegistryTest, GaugeFnEvaluatedAtSnapshotTime)
{
    MetricsRegistry reg;
    double state = 1.0;
    reg.gaugeFn("probe", [&state] { return state; });
    EXPECT_EQ(reg.snapshot().find("probe")->gauge, 1.0);
    state = 42.5;
    EXPECT_EQ(reg.snapshot().find("probe")->gauge, 42.5);
}

// ---------------------------------------------------------------- //
// Histogram bucket boundaries

TEST(HistogramTest, BucketBoundaryEdgeCases)
{
    Histogram h({0, 4, 8});
    h.record(-5); // below the first bound -> bucket 0
    h.record(0);  // exactly on bound 0   -> bucket 0
    h.record(1);  // just above bound 0   -> bucket 1
    h.record(4);  // exactly on bound 4   -> bucket 1
    h.record(8);  // exactly on the last bound -> bucket 2
    h.record(9);  // above the last bound -> overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.sum(), -5 + 0 + 1 + 4 + 8 + 9);
}

TEST(HistogramTest, BoundsMustBeStrictlyAscendingAndNonEmpty)
{
    EXPECT_THROW(Histogram({}), FatalError);
    EXPECT_THROW(Histogram({1, 1}), FatalError);
    EXPECT_THROW(Histogram({2, 1}), FatalError);
}

TEST(HistogramTest, PowerOfTwoBoundsLadder)
{
    const auto b = powerOfTwoBounds(3);
    EXPECT_EQ(b, (std::vector<std::int64_t>{0, 1, 2, 4, 8}));
}

// ---------------------------------------------------------------- //
// Session epochs

TEST(SessionTest, ZeroEpochIntervalIsFatal)
{
    TelemetryConfig cfg;
    cfg.epochAccesses = 0;
    EXPECT_THROW(Session s(cfg), FatalError);
}

TEST(SessionTest, EpochsCloseOnBoundariesPlusTrailingPartial)
{
    TelemetryConfig cfg;
    cfg.epochAccesses = 10;
    Session s(cfg);
    for (int i = 0; i < 25; ++i)
        s.tick();
    const auto t = s.finish();
    EXPECT_EQ(t->accesses, 25u);
    ASSERT_EQ(t->epochs.size(), 3u); // 10, 20, trailing 25
    EXPECT_EQ(t->epochs[0].accesses, 10u);
    EXPECT_EQ(t->epochs[1].accesses, 20u);
    EXPECT_EQ(t->epochs[2].accesses, 25u);
    EXPECT_EQ(t->epochs[2].index, 2u);
}

TEST(SessionTest, ExactBoundaryRunHasNoTrailingEpoch)
{
    TelemetryConfig cfg;
    cfg.epochAccesses = 5;
    Session s(cfg);
    for (int i = 0; i < 10; ++i)
        s.tick();
    EXPECT_EQ(s.finish()->epochs.size(), 2u);
}

TEST(SessionTest, ShortRunStillGetsOneEpoch)
{
    TelemetryConfig cfg; // default interval 100000
    Session s(cfg);
    s.tick();
    s.tick();
    const auto t = s.finish();
    ASSERT_EQ(t->epochs.size(), 1u);
    EXPECT_EQ(t->epochs[0].accesses, 2u);
}

// ---------------------------------------------------------------- //
// ReuseDistanceTracker

TEST(ReuseDistanceTest, ColdAndReuseSplitExactly)
{
    MetricsRegistry reg;
    ReuseDistanceTracker tracker(reg);
    // A B A: two cold touches, one reuse with one intervening access.
    tracker.observe(0xA);
    tracker.observe(0xB);
    tracker.observe(0xA);
    const Snapshot s = reg.snapshot();
    const auto* cold = s.find("llc.reuse.cold_accesses");
    const auto* dist = s.find("llc.reuse_distance");
    ASSERT_NE(cold, nullptr);
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(cold->counter, 2u);
    EXPECT_EQ(dist->histogram.total, 1u);
    EXPECT_EQ(dist->histogram.sum, 1); // exactly one block in between
    // Immediate re-reference has distance zero.
    tracker.observe(0xA);
    EXPECT_EQ(reg.snapshot().find("llc.reuse_distance")->histogram.sum,
              1);
}

// ---------------------------------------------------------------- //
// Exporters

std::shared_ptr<const RunTelemetry>
sampleTelemetry()
{
    TelemetryConfig cfg;
    cfg.epochAccesses = 2;
    auto s = std::make_unique<Session>(cfg);
    Counter& events = s->registry().counter("a.events");
    events.add(3);
    s->tick();
    s->tick(); // epoch 0 closes at 2 accesses
    events.add(2);
    s->tick(); // trailing partial epoch at 3 accesses
    return s->finish();
}

TEST(ExportTest, MetricsJsonShape)
{
    const auto t = sampleTelemetry();
    const std::string j = metricsJson(*t, "");
    EXPECT_NE(j.find("\"accesses\": 3"), std::string::npos);
    EXPECT_NE(j.find("\"epochAccesses\": 2"), std::string::npos);
    EXPECT_NE(j.find("\"epochs\": 2"), std::string::npos);
    EXPECT_NE(j.find("\"a.events\": 5"), std::string::npos);
    EXPECT_NE(j.find("\"llc.reuse_distance\": {\"bounds\": "),
              std::string::npos);
}

TEST(ExportTest, MetricsCsvRowsFlattenHistograms)
{
    const auto t = sampleTelemetry();
    const auto rows = metricsCsvRows(*t);
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows.front(), "a.events,5");
    bool saw_le = false, saw_total = false, saw_overflow = false;
    for (const auto& r : rows) {
        saw_le = saw_le ||
                 r.rfind("llc.reuse_distance.le.0,", 0) == 0;
        saw_total = saw_total ||
                    r.rfind("llc.reuse_distance.total,", 0) == 0;
        saw_overflow =
            saw_overflow ||
            r.rfind("llc.reuse_distance.overflow,", 0) == 0;
    }
    EXPECT_TRUE(saw_le);
    EXPECT_TRUE(saw_total);
    EXPECT_TRUE(saw_overflow);
}

TEST(ExportTest, TraceEventsMatchGoldenFile)
{
    const auto t = sampleTelemetry();
    const std::string got = traceEventsJson(*t, "proc");

    const auto golden_path =
        std::filesystem::path(__FILE__).parent_path() / "golden" /
        "trace_event.json";
    std::ifstream f(golden_path);
    ASSERT_TRUE(f) << "missing golden file: " << golden_path;
    std::ostringstream want;
    want << f.rdbuf();
    EXPECT_EQ(got, want.str());
}

// ---------------------------------------------------------------- //
// LevelStats self-consistency

TEST(LevelStatsConsistencyTest, AcceptsBalancedCounters)
{
    stats::LevelStats s;
    EXPECT_TRUE(s.consistent()); // all-zero is trivially consistent
    s.demandAccesses = 10;
    s.demandHits = 7;
    s.demandMisses = 3;
    s.writebackAccesses = 4;
    s.writebackHits = 4;
    s.prefetchAccesses = 5; // fills without a hit/miss split are fine
    s.evictions = 2;
    s.dirtyEvictions = 2;
    s.bypasses = 1;
    EXPECT_TRUE(s.consistent());
}

TEST(LevelStatsConsistencyTest, RejectsUnbalancedCounters)
{
    stats::LevelStats s;
    s.demandAccesses = 10;
    s.demandHits = 7;
    s.demandMisses = 2; // 7 + 2 != 10
    EXPECT_FALSE(s.consistent());

    stats::LevelStats d;
    d.evictions = 1;
    d.dirtyEvictions = 2; // dirty > total
    EXPECT_FALSE(d.consistent());

    stats::LevelStats b;
    b.bypasses = 1; // bypass with no miss anywhere
    EXPECT_FALSE(b.consistent());

    stats::LevelStats p;
    p.prefetchAccesses = 1;
    p.prefetchHits = 1;
    p.prefetchMisses = 1; // split exceeds accesses
    EXPECT_FALSE(p.consistent());
}

} // namespace
} // namespace mrp::telemetry
