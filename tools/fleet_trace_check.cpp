/**
 * @file
 * CI checker for fleet observability artifacts: validates the merged
 * Chrome trace_event document and the fleet metrics document that
 * `mrp_broker_cli --fleet-trace-out/--fleet-metrics-out` emit.
 *
 * Trace checks: the document parses, has at least --min-workers
 * distinct worker processes (process_name metadata), every lease span
 * carries jobId/span/outcome args and belongs to a named process, and
 * at least one lease closed "ok". With --require-phases at least one
 * nested phase event must be present (workers shipped OBS payloads).
 *
 * Metrics checks: the document is mrp-fleet-metrics-v1 and, for every
 * mirrored queue counter, the per-worker sums in "fleet" equal the
 * broker registry totals in "broker" — the counter mirroring contract
 * of obs::FleetCollector.
 *
 * Usage:
 *   fleet_trace_check --trace FILE --metrics FILE
 *                     [--min-workers N] [--require-phases]
 *
 * Exit status: 0 = all checks pass, 1 = a check failed,
 * 2 = usage/parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "util/json_reader.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(stderr,
                 "usage: fleet_trace_check --trace FILE "
                 "--metrics FILE\n"
                 "                         [--min-workers N] "
                 "[--require-phases]\n");
    return 2;
}

std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, ErrorCode::Io, "cannot open for reading: " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

int g_failures = 0;

void
check(bool ok, const std::string& what)
{
    if (ok)
        return;
    ++g_failures;
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
}

/** The mirrored counters whose per-worker sums must equal the broker
 * registry totals. */
const char* const kMirroredCounters[] = {
    "queue.lease_expired",
    "queue.requeue_exhausted",
    "queue.requeued",
    "queue.worker_restarts",
};

void
checkTrace(const std::string& path, unsigned min_workers,
           bool require_phases)
{
    using Type = json::Value::Type;
    const auto doc = json::parseJson(slurp(path), path);
    const auto& events =
        doc.require("traceEvents", Type::Array, path).array;

    std::set<double> worker_pids;
    std::size_t leases = 0, ok_leases = 0, phases = 0, beats = 0;
    for (const auto& e : events) {
        fatalIf(!e.isObject(), ErrorCode::CorruptInput,
                path + ": trace event is not an object");
        const std::string& ph =
            e.require("ph", Type::String, path).string;
        if (ph == "M") {
            if (e.require("name", Type::String, path).string !=
                "process_name")
                continue;
            const auto& args = e.require("args", Type::Object, path);
            const std::string& name =
                args.require("name", Type::String, path).string;
            if (name.rfind("worker", 0) == 0)
                worker_pids.insert(
                    e.require("pid", Type::Number, path).number);
            continue;
        }
        if (ph == "i") {
            ++beats;
            continue;
        }
        if (ph != "X")
            continue;
        const std::string& cat =
            e.require("cat", Type::String, path).string;
        if (cat == "phase") {
            ++phases;
            continue;
        }
        if (cat != "lease")
            continue;
        ++leases;
        const auto& args = e.require("args", Type::Object, path);
        args.require("jobId", Type::Number, path);
        args.require("span", Type::String, path);
        const std::string& outcome =
            args.require("outcome", Type::String, path).string;
        if (outcome == "ok")
            ++ok_leases;
        check(worker_pids.count(
                  e.require("pid", Type::Number, path).number) != 0,
              path + ": lease span on a pid with no process_name");
    }

    check(worker_pids.size() >= min_workers,
          path + ": expected >= " + std::to_string(min_workers) +
              " worker process(es), found " +
              std::to_string(worker_pids.size()));
    check(leases > 0, path + ": no lease spans");
    check(ok_leases > 0, path + ": no lease span closed \"ok\"");
    if (require_phases)
        check(phases > 0,
              path + ": no phase events (workers shipped no OBS "
                     "payloads)");
    std::fprintf(stderr,
                 "%s: %zu worker(s), %zu lease span(s) (%zu ok), "
                 "%zu heartbeat(s), %zu phase event(s)\n",
                 path.c_str(), worker_pids.size(), leases, ok_leases,
                 beats, phases);
}

void
checkMetrics(const std::string& path)
{
    using Type = json::Value::Type;
    const auto doc = json::parseJson(slurp(path), path);
    check(doc.require("doc", Type::String, path).string ==
              "mrp-fleet-metrics-v1",
          path + ": not a mrp-fleet-metrics-v1 document");

    const auto fleet = telemetry::snapshotFromJson(
        doc.require("fleet", Type::Object, path), path + " fleet");
    const auto* broker_v = doc.get("broker");
    fatalIf(broker_v == nullptr, ErrorCode::CorruptInput,
            path + ": no \"broker\" snapshot (run mrp_broker_cli "
                   "with --fleet-metrics-out)");
    const auto broker =
        telemetry::snapshotFromJson(*broker_v, path + " broker");

    for (const char* leaf : kMirroredCounters) {
        std::uint64_t fleet_sum = 0;
        for (const auto& m : fleet.metrics)
            if (m.name.rfind(std::string(leaf) + ".worker", 0) == 0)
                fleet_sum += m.counter;
        const auto* b = broker.find(leaf);
        const std::uint64_t broker_total = b ? b->counter : 0;
        check(fleet_sum == broker_total,
              path + ": " + leaf + " per-worker sum " +
                  std::to_string(fleet_sum) +
                  " != broker total " +
                  std::to_string(broker_total));
        std::fprintf(stderr, "%s: %s sum %llu == broker %llu\n",
                     path.c_str(), leaf,
                     static_cast<unsigned long long>(fleet_sum),
                     static_cast<unsigned long long>(broker_total));
    }
}

int
run(int argc, char** argv)
{
    std::string trace_path;
    std::string metrics_path;
    unsigned min_workers = 1;
    bool require_phases = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, ErrorCode::Config,
                    "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--metrics") {
            metrics_path = next();
        } else if (arg == "--min-workers") {
            min_workers = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--require-phases") {
            require_phases = true;
        } else {
            return usage();
        }
    }
    if (trace_path.empty() || metrics_path.empty())
        return usage();

    checkTrace(trace_path, min_workers, require_phases);
    checkMetrics(metrics_path);

    if (g_failures != 0) {
        std::fprintf(stderr, "%d check(s) failed\n", g_failures);
        return 1;
    }
    std::fprintf(stderr, "all fleet observability checks passed\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "fleet_trace_check: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
