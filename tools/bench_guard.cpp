/**
 * @file
 * Performance-regression guard CLI over BENCH_*.json documents.
 *
 * Diffs a freshly produced candidate BENCH document (bench_harness or
 * `mrp_sim_cli --prof-out`) against a committed baseline. Phases whose
 * inclusive time grew beyond the tolerance, throughput rates that
 * shrank beyond it, and runs or phases missing from the candidate are
 * regressions.
 *
 * Usage:
 *   bench_guard --baseline FILE --candidate FILE
 *               [--tolerance FRAC] [--min-seconds S]
 *               [--no-throughput] [--warn-only]
 *
 * Exit status: 0 = within tolerance, 1 = regression (0 with
 * --warn-only, for CI smoke jobs on noisy shared runners),
 * 2 = usage/parse error.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "prof/bench_guard.hpp"
#include "util/logging.hpp"

namespace {

using namespace mrp;

int
usage()
{
    std::fprintf(stderr,
                 "usage: bench_guard --baseline FILE --candidate FILE\n"
                 "                   [--tolerance FRAC] "
                 "[--min-seconds S]\n"
                 "                   [--no-throughput] [--warn-only]\n");
    return 2;
}

std::string
slurp(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, ErrorCode::Io, "cannot open for reading: " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

int
run(int argc, char** argv)
{
    std::string baseline_path;
    std::string candidate_path;
    prof::GuardOptions opts;
    bool warn_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            fatalIf(i + 1 >= argc, "missing value for " + arg);
            return argv[++i];
        };
        if (arg == "--baseline") {
            baseline_path = next();
        } else if (arg == "--candidate") {
            candidate_path = next();
        } else if (arg == "--tolerance") {
            opts.tolerance = std::atof(next());
            fatalIf(opts.tolerance <= 0.0,
                    "--tolerance must be positive");
        } else if (arg == "--min-seconds") {
            opts.minSeconds = std::atof(next());
        } else if (arg == "--no-throughput") {
            opts.checkThroughput = false;
        } else if (arg == "--warn-only") {
            warn_only = true;
        } else {
            return usage();
        }
    }
    if (baseline_path.empty() || candidate_path.empty())
        return usage();

    const auto baseline =
        json::parseJson(slurp(baseline_path), baseline_path);
    const auto candidate =
        json::parseJson(slurp(candidate_path), candidate_path);
    const auto result = prof::compare(baseline, candidate, opts);
    std::fputs(prof::formatFindings(result, opts).c_str(), stdout);
    if (result.ok())
        return 0;
    if (warn_only) {
        std::fprintf(stderr,
                     "bench_guard: regression detected but "
                     "--warn-only set; exiting 0\n");
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        return run(argc, argv);
    } catch (const FatalError& e) {
        std::fprintf(stderr, "bench_guard: %s [%s]\n", e.what(),
                     errorCodeName(e.code()));
        return 2;
    }
}
