/**
 * @file
 * Name-based construction of LLC policies, so drivers, benches, and
 * examples can be parameterized by policy name.
 *
 * Policies live in a process-wide PolicyRegistry: the library's
 * built-in policies self-register at load time, and experiments may
 * register additional factories under new names (e.g. tuned MPPPB
 * variants) so every name-driven tool — the experiment runner, the
 * CLI, the benches — can construct them.
 */

#ifndef MRP_SIM_POLICIES_HPP
#define MRP_SIM_POLICIES_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc_policy.hpp"
#include "core/mpppb.hpp"

namespace mrp::sim {

/** Builds a policy instance for a given LLC geometry and core count. */
using PolicyFactory = std::function<std::unique_ptr<cache::LlcPolicy>(
    const cache::CacheGeometry& geom, unsigned cores)>;

/**
 * Process-wide name -> factory registry of LLC policies.
 *
 * Built-in names: "LRU", "Random", "SRRIP", "DRRIP", "MDPP", "SHiP",
 * "SDBP", "Perceptron", "Hawkeye", "MPPPB" (single-thread
 * configuration, MDPP substrate), "MPPPB-MC" (multi-core
 * configuration, SRRIP substrate), plus the feature-set variants
 * "MPPPB-1A"/"MPPPB-1B"/"MPPPB-T2"/"MPPPB-Local" and "MPPPB-DYN".
 * MIN is not listed: it needs a recording pre-pass (see
 * runSingleCoreMin); name-driven tools special-case it.
 *
 * All operations are thread-safe; registration is expected at startup
 * but is permitted at any time.
 */
class PolicyRegistry
{
  public:
    /**
     * Register @p factory under @p name. Throws FatalError if the name
     * is already taken (duplicate registrations are always a bug: the
     * second registrant would silently change what every experiment
     * runs). @p paperRank orders the policy within paperPolicyNames();
     * leave it negative for policies outside the paper's main figures.
     */
    static void registerPolicy(const std::string& name,
                               PolicyFactory factory, int paperRank = -1);

    /** Factory for a registered name; throws FatalError if unknown. */
    static PolicyFactory make(const std::string& name);

    /** Whether @p name is registered. */
    static bool contains(const std::string& name);

    /** Every registered name, sorted alphabetically. */
    static std::vector<std::string> names();
};

/**
 * Factory for a named policy — thin shim over PolicyRegistry::make,
 * kept so existing callers compile unchanged.
 */
PolicyFactory makePolicyFactory(const std::string& name);

/** Factory for MPPPB with an explicit configuration. */
PolicyFactory makeMpppbFactory(const core::MpppbConfig& cfg);

/**
 * The realistic policies compared in the paper's figures, in figure
 * order — a registry query over entries registered with a paper rank.
 */
std::vector<std::string> paperPolicyNames();

} // namespace mrp::sim

#endif // MRP_SIM_POLICIES_HPP
