/**
 * @file
 * Name-based construction of LLC policies, so drivers, benches, and
 * examples can be parameterized by policy name.
 */

#ifndef MRP_SIM_POLICIES_HPP
#define MRP_SIM_POLICIES_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/llc_policy.hpp"
#include "core/mpppb.hpp"

namespace mrp::sim {

/** Builds a policy instance for a given LLC geometry and core count. */
using PolicyFactory = std::function<std::unique_ptr<cache::LlcPolicy>(
    const cache::CacheGeometry& geom, unsigned cores)>;

/**
 * Factory for a named policy. Known names: "LRU", "Random", "SRRIP",
 * "DRRIP", "MDPP", "SHiP", "SDBP", "Perceptron", "Hawkeye", "MPPPB"
 * (single-thread configuration, MDPP substrate) and "MPPPB-MC"
 * (multi-core configuration, SRRIP substrate). MIN is not listed: it
 * needs a recording pre-pass (see runSingleCoreMin).
 */
PolicyFactory makePolicyFactory(const std::string& name);

/** Factory for MPPPB with an explicit configuration. */
PolicyFactory makeMpppbFactory(const core::MpppbConfig& cfg);

/** The realistic policies compared in the paper's figures. */
std::vector<std::string> paperPolicyNames();

} // namespace mrp::sim

#endif // MRP_SIM_POLICIES_HPP
