#include "sim/single_core.hpp"

#include "cpu/core_model.hpp"
#include "policy/lru.hpp"
#include "policy/min.hpp"
#include "prof/profiler.hpp"
#include "sim/telemetry_hooks.hpp"
#include "trace/stream_reader.hpp"
#include "util/logging.hpp"

namespace mrp::sim {

namespace {

SingleCoreResult
runWithPolicy(trace::TraceSource& source,
              std::unique_ptr<cache::LlcPolicy> policy,
              const SingleCoreConfig& cfg,
              cache::LlcObserver* observer)
{
    cache::HierarchyConfig hcfg = cfg.hierarchy;
    hcfg.cores = 1;
    const std::string policy_name = policy->name();
    cache::Hierarchy hier(hcfg, std::move(policy));
    fatalIf(cfg.telemetry.enabled && observer != nullptr,
            ErrorCode::Config,
            "telemetry cannot be combined with an external LLC "
            "observer (both need the observer slot)");
    if (observer)
        hier.llc().setObserver(observer);
    // Rewind so one source can serve several sequential runs (bench
    // loops reuse a source across policies); replay is identical by
    // the TraceSource contract.
    source.reset();
    cpu::CoreModel cpu(0, hier, source, /*loop=*/false);

    // instructions() is known up front for every source (file headers
    // carry it, generators hit their target exactly), so the warmup
    // window never depends on materializing the stream.
    const auto warm_insts = static_cast<InstCount>(
        static_cast<double>(source.instructions()) *
        cfg.warmupFraction);
    {
        MRP_PROF_SCOPE("warmup");
        while (!cpu.finished() && cpu.retired() < warm_insts)
            cpu.step();
    }
    hier.resetStats();
    // Attach telemetry at the start of the measurement window so every
    // metric covers exactly what LevelStats covers.
    std::unique_ptr<telemetry::Session> session;
    std::unique_ptr<TelemetryObserver> tobs;
    if (cfg.telemetry.enabled) {
        session = std::make_unique<telemetry::Session>(cfg.telemetry);
        hier.attachTelemetry(session->registry());
        tobs = std::make_unique<TelemetryObserver>(*session);
        hier.llc().setObserver(tobs.get());
        // Delivery introspection (an execution artifact, never part
        // of deterministic reports — telemetry is opt-in).
        if (auto* da =
                dynamic_cast<trace::DecodeAheadSource*>(&source)) {
            session->registry().gaugeFn(
                "trace.decode_ahead.queue_depth_max", [da] {
                    return static_cast<double>(
                        da->stats().maxQueueDepth);
                });
        }
    }
    const InstCount base_insts = cpu.retired();
    const Cycle base_cycle = cpu.cycle();

    {
        MRP_PROF_SCOPE("measure");
        while (!cpu.finished())
            cpu.step();
    }

    SingleCoreResult r;
    r.benchmark = source.name();
    r.policy = policy_name;
    r.instructions = cpu.retired() - base_insts;
    r.cycles = cpu.cycle() - base_cycle;
    fatalIf(r.instructions == 0 || r.cycles == 0, ErrorCode::Config,
            "measurement window is empty; trace too short for the "
            "warmup fraction");
    r.ipc = static_cast<double>(r.instructions) /
            static_cast<double>(r.cycles);
    const auto& llc = hier.llc().stats();
    panicIf(!llc.consistent(),
            "LLC statistics failed the self-consistency check");
    panicIf(!hier.l1(0).stats().consistent(),
            "L1 statistics failed the self-consistency check");
    panicIf(!hier.l2(0).stats().consistent(),
            "L2 statistics failed the self-consistency check");
    r.llcDemandAccesses = llc.demandAccesses;
    r.llcDemandMisses = llc.demandMisses;
    r.llcBypasses = llc.bypasses;
    r.mpki = 1000.0 * static_cast<double>(r.llcDemandMisses) /
             static_cast<double>(r.instructions);
    if (session)
        r.telemetry = session->finish();
    return r;
}

} // namespace

SingleCoreResult
runSingleCore(trace::TraceSource& source, const PolicyFactory& factory,
              const SingleCoreConfig& cfg)
{
    const cache::CacheGeometry geom(cfg.hierarchy.llcBytes,
                                    cfg.hierarchy.llcWays);
    return runWithPolicy(source, factory(geom, 1), cfg, nullptr);
}

SingleCoreResult
runSingleCoreObserved(trace::TraceSource& source,
                      const PolicyFactory& factory,
                      const SingleCoreConfig& cfg,
                      cache::LlcObserver* observer)
{
    const cache::CacheGeometry geom(cfg.hierarchy.llcBytes,
                                    cfg.hierarchy.llcWays);
    return runWithPolicy(source, factory(geom, 1), cfg, observer);
}

SingleCoreResult
runSingleCoreMin(trace::TraceSource& source,
                 const SingleCoreConfig& cfg)
{
    const cache::CacheGeometry geom(cfg.hierarchy.llcBytes,
                                    cfg.hierarchy.llcWays);
    // Pass 1: record the (policy-invariant) LLC reference stream. The
    // recorder needs the observer slot, so telemetry (if requested)
    // only covers the measured MIN pass.
    SingleCoreConfig pass1_cfg = cfg;
    pass1_cfg.telemetry.enabled = false;
    policy::LlcAccessRecorder recorder;
    {
        MRP_PROF_SCOPE("min.record");
        runWithPolicy(source, std::make_unique<policy::LruPolicy>(geom),
                      pass1_cfg, &recorder);
    }
    // Pass 2: replay under MIN over the identical record sequence
    // (the TraceSource contract guarantees reset() replays exactly).
    source.reset();
    MRP_PROF_SCOPE("min.replay");
    auto next_use = policy::computeNextUse(recorder.sequence());
    SingleCoreResult r = runWithPolicy(
        source,
        std::make_unique<policy::MinPolicy>(geom, std::move(next_use)),
        cfg, nullptr);
    r.policy = "MIN";
    return r;
}

} // namespace mrp::sim
