/**
 * @file
 * Four-core multi-programmed simulation driver following the paper's
 * FIESTA-inspired methodology (§4.2): each core replays an
 * equal-standalone-time region of its benchmark, looping as needed, so
 * all cores stay active for the whole measurement; warmup runs until a
 * total instruction budget is reached; each thread is then measured
 * over a fixed window of its own cycles.
 */

#ifndef MRP_SIM_MULTI_CORE_HPP
#define MRP_SIM_MULTI_CORE_HPP

#include <array>
#include <memory>
#include <span>
#include <string>

#include "cache/hierarchy.hpp"
#include "sim/driver_config.hpp"
#include "sim/policies.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace mrp::telemetry {
struct RunTelemetry;
}

namespace mrp::sim {

/**
 * Multi-core driver parameters (scaled from the paper's billions).
 * The hierarchy and warmup knobs live in DriverConfig (the multi-core
 * driver honours warmupInstructions); declare new shared fields there,
 * not here.
 */
struct MultiCoreConfig : DriverConfig
{
    MultiCoreConfig() { hierarchy = cache::multiCoreConfig(); }

    Cycle measureCycles = 500000; //!< per-core window
};

/** Measured outcome of one 4-core mix run. */
struct MultiCoreResult
{
    std::string mixName;
    std::string policy;
    std::array<double, 4> ipc{};
    std::array<InstCount, 4> instructions{};
    std::uint64_t llcDemandMisses = 0;
    double mpki = 0.0; //!< LLC demand misses per kilo (all cores)
    /** Present iff cfg.telemetry.enabled; covers the measured window. */
    std::shared_ptr<const telemetry::RunTelemetry> telemetry;

    /**
     * Weighted speedup given per-benchmark standalone IPCs:
     * sum_i ipc[i] / single_ipc[i] (normalize against the LRU run's
     * value to obtain the paper's normalized weighted speedup).
     * @p single_ipc must supply exactly one value per core.
     */
    double weightedSpeedup(std::span<const double> single_ipc) const;

    /** Convenience overload for the current 4-core callers. */
    double
    weightedSpeedup(const std::array<double, 4>& single_ipc) const
    {
        return weightedSpeedup(std::span<const double>(single_ipc));
    }
};

/**
 * Run a 4-source mix under the policy built by @p factory. Each core
 * owns one source exclusively for the whole run (the drivers loop the
 * sources via reset(), so each must be independently resettable — the
 * TraceSpec factory hands out exactly such sources). Results are
 * byte-identical for any chunking or delivery mode of the same four
 * record sequences.
 */
MultiCoreResult runMultiCore(const std::array<trace::TraceSource*, 4>& mix,
                             const PolicyFactory& factory,
                             const MultiCoreConfig& cfg = {});

/**
 * Standalone IPC of one benchmark on the multi-core hierarchy with an
 * LRU LLC (the SingleIPC_i of §4.5), using the same loop-and-measure
 * scheme as the mixed run.
 */
double standaloneIpc(trace::TraceSource& source,
                     const MultiCoreConfig& cfg = {});

} // namespace mrp::sim

#endif // MRP_SIM_MULTI_CORE_HPP
