/**
 * @file
 * Multi-programmed simulation driver following the paper's
 * FIESTA-inspired methodology (§4.2): each core replays an
 * equal-standalone-time region of its benchmark, looping as needed, so
 * all cores stay active for the whole measurement; warmup runs until a
 * total instruction budget is reached; each thread is then measured
 * over a fixed window of its own cycles. The driver takes any number
 * of cores >= 2 (the paper's mixes use 4).
 *
 * With a TenancyConfig the LLC is way-partitioned per core (one tenant
 * per core, private predictor state, owner-tagged blocks) and warmup
 * switches to a per-core share of the budget, which makes each
 * tenant's measured window a pure function of its own stream — the
 * fixed-partition isolation contract DESIGN.md documents. Enabling QoS
 * adds the epoch-driven partition resizer on top.
 */

#ifndef MRP_SIM_MULTI_CORE_HPP
#define MRP_SIM_MULTI_CORE_HPP

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cache/hierarchy.hpp"
#include "sim/driver_config.hpp"
#include "sim/policies.hpp"
#include "tenant/config.hpp"
#include "tenant/qos.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace mrp::telemetry {
struct RunTelemetry;
}

namespace mrp::sim {

/**
 * Multi-core driver parameters (scaled from the paper's billions).
 * The hierarchy and warmup knobs live in DriverConfig (the multi-core
 * driver honours warmupInstructions); declare new shared fields there,
 * not here.
 */
struct MultiCoreConfig : DriverConfig
{
    MultiCoreConfig() { hierarchy = cache::multiCoreConfig(); }

    Cycle measureCycles = 500000; //!< per-core window

    /**
     * Optional multi-tenant LLC: one tenant per core. Empty (the
     * default) preserves the shared-cache behaviour bit for bit.
     */
    tenant::TenancyConfig tenancy{};
};

/** Per-tenant outcome of a partitioned run (one per core). */
struct TenantOutcome
{
    std::uint32_t waysInitial = 0; //!< configured partition size
    std::uint32_t waysFinal = 0;   //!< partition size after QoS
    std::uint64_t demandMisses = 0; //!< LLC demand misses, measured
    InstCount instructions = 0;     //!< retired in the measured window
    double mpki = 0.0;
    double sloMpki = 0.0; //!< configured ceiling; 0 = best effort
};

/** Measured outcome of one multi-core mix run. */
struct MultiCoreResult
{
    std::string mixName;
    std::string policy;
    std::vector<double> ipc;
    std::vector<InstCount> instructions;
    std::uint64_t llcDemandMisses = 0;
    double mpki = 0.0; //!< LLC demand misses per kilo (all cores)
    /** Present iff cfg.telemetry.enabled; covers the measured window. */
    std::shared_ptr<const telemetry::RunTelemetry> telemetry;

    /** One entry per core iff the run was tenancy-configured. */
    std::vector<TenantOutcome> tenants;
    /** QoS resize schedule (empty unless QoS ran); deterministic. */
    std::vector<tenant::QosResize> qosSchedule;

    /**
     * Weighted speedup given per-benchmark standalone IPCs:
     * sum_i ipc[i] / single_ipc[i] (normalize against the LRU run's
     * value to obtain the paper's normalized weighted speedup).
     * @p single_ipc must supply exactly one value per core.
     */
    double weightedSpeedup(std::span<const double> single_ipc) const;
};

/**
 * Run a mix of >= 2 sources under the policy built by @p factory, one
 * core per source. Each core owns its source exclusively for the whole
 * run (the drivers loop the sources via reset(), so each must be
 * independently resettable — the TraceSpec factory hands out exactly
 * such sources). Results are byte-identical for any chunking or
 * delivery mode of the same record sequences.
 */
MultiCoreResult runMultiCore(std::span<trace::TraceSource* const> mix,
                             const PolicyFactory& factory,
                             const MultiCoreConfig& cfg = {});

/** Convenience overload for the 4-core paper mixes. */
inline MultiCoreResult
runMultiCore(const std::array<trace::TraceSource*, 4>& mix,
             const PolicyFactory& factory,
             const MultiCoreConfig& cfg = {})
{
    return runMultiCore(
        std::span<trace::TraceSource* const>(mix.data(), mix.size()),
        factory, cfg);
}

/**
 * Standalone IPC of one benchmark on the multi-core hierarchy with an
 * LRU LLC (the SingleIPC_i of §4.5), using the same loop-and-measure
 * scheme as the mixed run.
 */
double standaloneIpc(trace::TraceSource& source,
                     const MultiCoreConfig& cfg = {});

} // namespace mrp::sim

#endif // MRP_SIM_MULTI_CORE_HPP
