#include "sim/roc_probe.hpp"

#include "util/logging.hpp"

namespace mrp::sim {

RocProbe::RocProbe(
    const cache::CacheGeometry& geom,
    std::vector<std::unique_ptr<policy::ReusePredictor>> predictors)
    : ways_(geom.ways()), predictors_(std::move(predictors))
{
    fatalIf(predictors_.empty(), "RocProbe needs at least one predictor");
    const std::size_t blocks =
        static_cast<std::size_t>(geom.sets()) * geom.ways();
    for (const auto& p : predictors_)
        roc_.emplace_back(p->minConfidence(), p->maxConfidence());
    pendingConf_.assign(blocks * predictors_.size(), 0);
    pendingValid_.assign(blocks, 0);
    missConf_.assign(predictors_.size(), 0);
}

void
RocProbe::resolve(std::uint32_t set, std::uint32_t way, bool dead)
{
    const std::size_t blk = static_cast<std::size_t>(set) * ways_ + way;
    if (!pendingValid_[blk])
        return;
    pendingValid_[blk] = 0;
    for (std::size_t p = 0; p < predictors_.size(); ++p)
        roc_[p].add(pendingConf_[blk * predictors_.size() + p], dead);
}

void
RocProbe::storePending(std::uint32_t set, std::uint32_t way)
{
    const std::size_t blk = static_cast<std::size_t>(set) * ways_ + way;
    pendingValid_[blk] = 1;
    for (std::size_t p = 0; p < predictors_.size(); ++p)
        pendingConf_[blk * predictors_.size() + p] = missConf_[p];
}

void
RocProbe::onAccess(const cache::AccessInfo& info, bool hit,
                   std::uint32_t set, int way)
{
    if (info.type == cache::AccessType::Writeback)
        return;
    // Every predictor observes (and trains on) demand and prefetch
    // accesses; only demand accesses produce measured predictions.
    for (std::size_t p = 0; p < predictors_.size(); ++p)
        missConf_[p] = predictors_[p]->observe(info, set, hit);
    if (!cache::isDemand(info.type))
        return;
    if (hit) {
        // The block was reused: the previous prediction was "live".
        resolve(set, static_cast<std::uint32_t>(way), /*dead=*/false);
        storePending(set, static_cast<std::uint32_t>(way));
    } else {
        missPending_ = true; // confidences attach at the coming fill
    }
}

void
RocProbe::onFill(const cache::AccessInfo& info, std::uint32_t set,
                 std::uint32_t way)
{
    if (!missPending_ || !cache::isDemand(info.type))
        return;
    missPending_ = false;
    storePending(set, way);
}

void
RocProbe::onEvict(std::uint32_t set, std::uint32_t way, Addr)
{
    resolve(set, way, /*dead=*/true);
}

} // namespace mrp::sim
