#include "sim/multi_core.hpp"

#include <memory>
#include <vector>

#include "cpu/core_model.hpp"
#include "policy/lru.hpp"
#include "prof/profiler.hpp"
#include "sim/telemetry_hooks.hpp"
#include "util/logging.hpp"

namespace mrp::sim {

double
MultiCoreResult::weightedSpeedup(
    std::span<const double> single_ipc) const
{
    fatalIf(single_ipc.size() != ipc.size(), ErrorCode::Config,
            "weightedSpeedup needs one standalone IPC per core");
    double ws = 0.0;
    for (std::size_t i = 0; i < ipc.size(); ++i) {
        fatalIf(single_ipc[i] <= 0.0, ErrorCode::Config,
                "standalone IPC must be positive");
        ws += ipc[i] / single_ipc[i];
    }
    return ws;
}

MultiCoreResult
runMultiCore(const std::array<trace::TraceSource*, 4>& mix,
             const PolicyFactory& factory, const MultiCoreConfig& cfg)
{
    cache::HierarchyConfig hcfg = cfg.hierarchy;
    hcfg.cores = 4;
    const cache::CacheGeometry geom(hcfg.llcBytes, hcfg.llcWays);
    auto policy = factory(geom, 4);
    const std::string policy_name = policy->name();
    cache::Hierarchy hier(hcfg, std::move(policy));

    std::vector<std::unique_ptr<cpu::CoreModel>> cores;
    for (unsigned c = 0; c < 4; ++c) {
        fatalIf(mix[c] == nullptr, ErrorCode::Config,
                "null trace source in mix");
        mix[c]->reset(); // allow sequential reuse of one source
        cores.push_back(std::make_unique<cpu::CoreModel>(
            c, hier, *mix[c], /*loop=*/true));
    }

    const auto step_earliest = [&cores] {
        unsigned best = 0;
        Cycle best_cycle = cores[0]->nextEnterCycle();
        for (unsigned c = 1; c < 4; ++c) {
            const Cycle e = cores[c]->nextEnterCycle();
            if (e < best_cycle) {
                best_cycle = e;
                best = c;
            }
        }
        cores[best]->step();
        return best;
    };

    // Warmup until the total instruction budget is reached.
    const auto total_retired = [&cores] {
        InstCount n = 0;
        for (const auto& c : cores)
            n += c->retired();
        return n;
    };
    {
        MRP_PROF_SCOPE("warmup");
        while (total_retired() < cfg.warmupInstructions)
            step_earliest();
    }

    hier.resetStats();
    // Attach telemetry at the start of the measurement window so every
    // metric covers exactly what LevelStats covers.
    std::unique_ptr<telemetry::Session> session;
    std::unique_ptr<TelemetryObserver> tobs;
    if (cfg.telemetry.enabled) {
        session = std::make_unique<telemetry::Session>(cfg.telemetry);
        hier.attachTelemetry(session->registry());
        tobs = std::make_unique<TelemetryObserver>(*session);
        hier.llc().setObserver(tobs.get());
    }
    std::array<Cycle, 4> base_cycle{};
    std::array<InstCount, 4> base_insts{};
    std::array<InstCount, 4> end_insts{};
    std::array<bool, 4> done{};
    for (unsigned c = 0; c < 4; ++c) {
        base_cycle[c] = cores[c]->cycle();
        base_insts[c] = cores[c]->retired();
    }

    {
        MRP_PROF_SCOPE("measure");
        unsigned remaining = 4;
        while (remaining > 0) {
            const unsigned c = step_earliest();
            if (!done[c] &&
                cores[c]->cycle() >=
                    base_cycle[c] + cfg.measureCycles) {
                done[c] = true;
                end_insts[c] = cores[c]->retired();
                --remaining;
            }
        }
    }

    MultiCoreResult r;
    r.policy = policy_name;
    r.mixName = mix[0]->name() + "+" + mix[1]->name() + "+" +
                mix[2]->name() + "+" + mix[3]->name();
    InstCount measured_total = 0;
    for (unsigned c = 0; c < 4; ++c) {
        r.instructions[c] = end_insts[c] - base_insts[c];
        r.ipc[c] = static_cast<double>(r.instructions[c]) /
                   static_cast<double>(cfg.measureCycles);
        measured_total += r.instructions[c];
    }
    panicIf(!hier.llc().stats().consistent(),
            "LLC statistics failed the self-consistency check");
    for (unsigned c = 0; c < 4; ++c) {
        panicIf(!hier.l1(c).stats().consistent(),
                "L1 statistics failed the self-consistency check");
        panicIf(!hier.l2(c).stats().consistent(),
                "L2 statistics failed the self-consistency check");
    }
    r.llcDemandMisses = hier.llc().stats().demandMisses;
    r.mpki = 1000.0 * static_cast<double>(r.llcDemandMisses) /
             static_cast<double>(measured_total);
    if (session)
        r.telemetry = session->finish();
    return r;
}

double
standaloneIpc(trace::TraceSource& source, const MultiCoreConfig& cfg)
{
    cache::HierarchyConfig hcfg = cfg.hierarchy;
    hcfg.cores = 1;
    const cache::CacheGeometry geom(hcfg.llcBytes, hcfg.llcWays);
    cache::Hierarchy hier(hcfg,
                          std::make_unique<policy::LruPolicy>(geom));
    source.reset(); // allow sequential reuse of one source
    cpu::CoreModel cpu(0, hier, source, /*loop=*/true);

    // Same per-thread warmup share as a mixed run.
    while (cpu.retired() < cfg.warmupInstructions / 4)
        cpu.step();
    const Cycle base_cycle = cpu.cycle();
    const InstCount base_insts = cpu.retired();
    while (cpu.cycle() < base_cycle + cfg.measureCycles)
        cpu.step();
    return static_cast<double>(cpu.retired() - base_insts) /
           static_cast<double>(cfg.measureCycles);
}

} // namespace mrp::sim
