#include "sim/multi_core.hpp"

#include <memory>
#include <vector>

#include "cpu/core_model.hpp"
#include "policy/lru.hpp"
#include "prof/profiler.hpp"
#include "sim/telemetry_hooks.hpp"
#include "tenant/tenant_policy.hpp"
#include "util/logging.hpp"

namespace mrp::sim {

double
MultiCoreResult::weightedSpeedup(
    std::span<const double> single_ipc) const
{
    fatalIf(single_ipc.size() != ipc.size(), ErrorCode::Config,
            "weightedSpeedup needs one standalone IPC per core");
    double ws = 0.0;
    for (std::size_t i = 0; i < ipc.size(); ++i) {
        fatalIf(single_ipc[i] <= 0.0, ErrorCode::Config,
                "standalone IPC must be positive");
        ws += ipc[i] / single_ipc[i];
    }
    return ws;
}

namespace {

/** Shared state of one interleaved multi-core simulation. */
struct MixState
{
    std::vector<std::unique_ptr<cpu::CoreModel>> cores;

    unsigned
    stepEarliest()
    {
        unsigned best = 0;
        Cycle best_cycle = cores[0]->nextEnterCycle();
        for (unsigned c = 1; c < cores.size(); ++c) {
            const Cycle e = cores[c]->nextEnterCycle();
            if (e < best_cycle) {
                best_cycle = e;
                best = c;
            }
        }
        cores[best]->step();
        return best;
    }

    InstCount
    totalRetired() const
    {
        InstCount n = 0;
        for (const auto& c : cores)
            n += c->retired();
        return n;
    }
};

std::string
mixNameOf(std::span<trace::TraceSource* const> mix)
{
    std::string name = mix[0]->name();
    for (std::size_t c = 1; c < mix.size(); ++c)
        name += "+" + mix[c]->name();
    return name;
}

void
checkStatsConsistency(const cache::Hierarchy& hier, unsigned n)
{
    panicIf(!hier.llc().stats().consistent(),
            "LLC statistics failed the self-consistency check");
    for (unsigned c = 0; c < n; ++c) {
        panicIf(!hier.l1(c).stats().consistent(),
                "L1 statistics failed the self-consistency check");
        panicIf(!hier.l2(c).stats().consistent(),
                "L2 statistics failed the self-consistency check");
    }
}

/**
 * The partitioned variant. Differences from the shared path, all in
 * service of the per-tenant determinism contract:
 *  - warmup is a per-core share of the budget (each core's measurement
 *    starts when *it* has retired warmupInstructions/n), so a tenant's
 *    window does not depend on how fast its co-runners warm up;
 *  - per-core misses are measured as deltas against per-core baselines
 *    instead of one global stats reset;
 *  - QoS epochs (total retired instructions) begin once every core is
 *    measuring, and resize the partition by at most one way each.
 */
MultiCoreResult
runPartitioned(std::span<trace::TraceSource* const> mix,
               const PolicyFactory& factory, const MultiCoreConfig& cfg)
{
    const unsigned n = static_cast<unsigned>(mix.size());
    cache::HierarchyConfig hcfg = cfg.hierarchy;
    hcfg.cores = n;
    const cache::CacheGeometry geom(hcfg.llcBytes, hcfg.llcWays);
    const std::string why =
        tenant::describeInvalid(cfg.tenancy, geom.ways(), n);
    fatalIf(!why.empty(), ErrorCode::Config, "invalid tenancy: " + why);

    auto wrapped = std::make_unique<tenant::TenantPartitionPolicy>(
        geom, n, cfg.tenancy, factory);
    tenant::TenantPartitionPolicy* tpp = wrapped.get();
    const std::string policy_name = wrapped->name();
    cache::Hierarchy hier(hcfg, std::move(wrapped));

    MixState sim;
    for (unsigned c = 0; c < n; ++c) {
        fatalIf(mix[c] == nullptr, ErrorCode::Config,
                "null trace source in mix");
        mix[c]->reset(); // allow sequential reuse of one source
        sim.cores.push_back(std::make_unique<cpu::CoreModel>(
            c, hier, *mix[c], /*loop=*/true));
    }

    const InstCount warmup_share = cfg.warmupInstructions / n;
    std::vector<Cycle> base_cycle(n, 0);
    std::vector<InstCount> base_insts(n, 0), end_insts(n, 0);
    std::vector<std::uint64_t> base_miss(n, 0), end_miss(n, 0);
    std::vector<bool> warmed(n, false), done(n, false);
    unsigned warming = n;

    {
        MRP_PROF_SCOPE("warmup");
        while (warming > 0) {
            const unsigned c = sim.stepEarliest();
            if (!warmed[c] &&
                sim.cores[c]->retired() >= warmup_share) {
                warmed[c] = true;
                base_cycle[c] = sim.cores[c]->cycle();
                base_insts[c] = sim.cores[c]->retired();
                base_miss[c] = hier.llc().demandMissesOf(c);
                --warming;
            }
        }
    }

    // Telemetry attaches once every core is measuring; tenant.* gauges
    // are registered here because only the driver sees both the
    // partition map and the cache occupancy.
    std::unique_ptr<telemetry::Session> session;
    std::unique_ptr<TelemetryObserver> tobs;
    telemetry::Counter* resize_counter = nullptr;
    std::vector<telemetry::Gauge*> epoch_mpki_gauge;
    if (cfg.telemetry.enabled) {
        session = std::make_unique<telemetry::Session>(cfg.telemetry);
        hier.attachTelemetry(session->registry());
        tobs = std::make_unique<TelemetryObserver>(*session);
        hier.llc().setObserver(tobs.get());
        auto& reg = session->registry();
        resize_counter = &reg.counter("tenant.qos_resizes");
        for (unsigned t = 0; t < n; ++t) {
            const std::string prefix =
                "tenant." + std::to_string(t) + ".";
            reg.gaugeFn(prefix + "ways",
                        [tpp, t] {
                            return static_cast<double>(
                                tpp->partition().waysOf(t));
                        });
            reg.gaugeFn(prefix + "occupancy",
                        [&hier, t] {
                            return static_cast<double>(
                                hier.llc().ownerBlockCount(t));
                        });
            epoch_mpki_gauge.push_back(
                &reg.gauge(prefix + "epoch_mpki"));
        }
    }

    // QoS state: epochs are counted in total retired instructions from
    // the moment measurement began on every core.
    std::unique_ptr<tenant::QosController> qos;
    std::vector<InstCount> epoch_insts(n, 0);
    std::vector<std::uint64_t> epoch_miss(n, 0);
    InstCount next_epoch_at = 0;
    if (cfg.tenancy.qos.enabled) {
        qos = std::make_unique<tenant::QosController>(
            cfg.tenancy, tpp->partition());
        for (unsigned c = 0; c < n; ++c) {
            epoch_insts[c] = sim.cores[c]->retired();
            epoch_miss[c] = hier.llc().demandMissesOf(c);
        }
        next_epoch_at =
            sim.totalRetired() + cfg.tenancy.qos.epochInstructions;
    }

    {
        MRP_PROF_SCOPE("measure");
        unsigned remaining = n;
        std::vector<double> epoch_mpki(n, 0.0);
        while (remaining > 0) {
            const unsigned c = sim.stepEarliest();
            if (!done[c] &&
                sim.cores[c]->cycle() >=
                    base_cycle[c] + cfg.measureCycles) {
                done[c] = true;
                end_insts[c] = sim.cores[c]->retired();
                end_miss[c] = hier.llc().demandMissesOf(c);
                --remaining;
            }
            if (qos && sim.totalRetired() >= next_epoch_at) {
                for (unsigned t = 0; t < n; ++t) {
                    const InstCount insts =
                        sim.cores[t]->retired() - epoch_insts[t];
                    const std::uint64_t miss =
                        hier.llc().demandMissesOf(t) - epoch_miss[t];
                    epoch_mpki[t] =
                        insts == 0 ? 0.0
                                   : 1000.0 * static_cast<double>(miss) /
                                         static_cast<double>(insts);
                    epoch_insts[t] = sim.cores[t]->retired();
                    epoch_miss[t] = hier.llc().demandMissesOf(t);
                    if (t < epoch_mpki_gauge.size())
                        epoch_mpki_gauge[t]->set(epoch_mpki[t]);
                }
                if (qos->onEpoch(epoch_mpki) && resize_counter)
                    resize_counter->add();
                next_epoch_at += cfg.tenancy.qos.epochInstructions;
            }
        }
    }

    MultiCoreResult r;
    r.policy = policy_name;
    r.mixName = mixNameOf(mix);
    r.ipc.resize(n);
    r.instructions.resize(n);
    InstCount measured_total = 0;
    std::uint64_t measured_misses = 0;
    for (unsigned c = 0; c < n; ++c) {
        r.instructions[c] = end_insts[c] - base_insts[c];
        r.ipc[c] = static_cast<double>(r.instructions[c]) /
                   static_cast<double>(cfg.measureCycles);
        measured_total += r.instructions[c];
        measured_misses += end_miss[c] - base_miss[c];
    }
    checkStatsConsistency(hier, n);
    r.llcDemandMisses = measured_misses;
    r.mpki = 1000.0 * static_cast<double>(measured_misses) /
             static_cast<double>(measured_total);
    r.tenants.resize(n);
    for (unsigned t = 0; t < n; ++t) {
        TenantOutcome& o = r.tenants[t];
        o.waysInitial = cfg.tenancy.tenants[t].ways;
        o.waysFinal = tpp->partition().waysOf(t);
        o.demandMisses = end_miss[t] - base_miss[t];
        o.instructions = r.instructions[t];
        o.mpki = r.instructions[t] == 0
                     ? 0.0
                     : 1000.0 * static_cast<double>(o.demandMisses) /
                           static_cast<double>(r.instructions[t]);
        o.sloMpki = cfg.tenancy.tenants[t].sloMpki;
    }
    if (qos)
        r.qosSchedule = qos->resizes();
    if (session)
        r.telemetry = session->finish();
    return r;
}

} // namespace

MultiCoreResult
runMultiCore(std::span<trace::TraceSource* const> mix,
             const PolicyFactory& factory, const MultiCoreConfig& cfg)
{
    fatalIf(mix.size() < 2, ErrorCode::Config,
            "multi-core mixes need at least two sources");
    if (cfg.tenancy.configured())
        return runPartitioned(mix, factory, cfg);

    const unsigned n = static_cast<unsigned>(mix.size());
    cache::HierarchyConfig hcfg = cfg.hierarchy;
    hcfg.cores = n;
    const cache::CacheGeometry geom(hcfg.llcBytes, hcfg.llcWays);
    auto policy = factory(geom, n);
    const std::string policy_name = policy->name();
    cache::Hierarchy hier(hcfg, std::move(policy));

    MixState sim;
    for (unsigned c = 0; c < n; ++c) {
        fatalIf(mix[c] == nullptr, ErrorCode::Config,
                "null trace source in mix");
        mix[c]->reset(); // allow sequential reuse of one source
        sim.cores.push_back(std::make_unique<cpu::CoreModel>(
            c, hier, *mix[c], /*loop=*/true));
    }

    // Warmup until the total instruction budget is reached.
    {
        MRP_PROF_SCOPE("warmup");
        while (sim.totalRetired() < cfg.warmupInstructions)
            sim.stepEarliest();
    }

    hier.resetStats();
    // Attach telemetry at the start of the measurement window so every
    // metric covers exactly what LevelStats covers.
    std::unique_ptr<telemetry::Session> session;
    std::unique_ptr<TelemetryObserver> tobs;
    if (cfg.telemetry.enabled) {
        session = std::make_unique<telemetry::Session>(cfg.telemetry);
        hier.attachTelemetry(session->registry());
        tobs = std::make_unique<TelemetryObserver>(*session);
        hier.llc().setObserver(tobs.get());
    }
    std::vector<Cycle> base_cycle(n, 0);
    std::vector<InstCount> base_insts(n, 0), end_insts(n, 0);
    std::vector<bool> done(n, false);
    for (unsigned c = 0; c < n; ++c) {
        base_cycle[c] = sim.cores[c]->cycle();
        base_insts[c] = sim.cores[c]->retired();
    }

    {
        MRP_PROF_SCOPE("measure");
        unsigned remaining = n;
        while (remaining > 0) {
            const unsigned c = sim.stepEarliest();
            if (!done[c] &&
                sim.cores[c]->cycle() >=
                    base_cycle[c] + cfg.measureCycles) {
                done[c] = true;
                end_insts[c] = sim.cores[c]->retired();
                --remaining;
            }
        }
    }

    MultiCoreResult r;
    r.policy = policy_name;
    r.mixName = mixNameOf(mix);
    r.ipc.resize(n);
    r.instructions.resize(n);
    InstCount measured_total = 0;
    for (unsigned c = 0; c < n; ++c) {
        r.instructions[c] = end_insts[c] - base_insts[c];
        r.ipc[c] = static_cast<double>(r.instructions[c]) /
                   static_cast<double>(cfg.measureCycles);
        measured_total += r.instructions[c];
    }
    checkStatsConsistency(hier, n);
    r.llcDemandMisses = hier.llc().stats().demandMisses;
    r.mpki = 1000.0 * static_cast<double>(r.llcDemandMisses) /
             static_cast<double>(measured_total);
    if (session)
        r.telemetry = session->finish();
    return r;
}

double
standaloneIpc(trace::TraceSource& source, const MultiCoreConfig& cfg)
{
    cache::HierarchyConfig hcfg = cfg.hierarchy;
    hcfg.cores = 1;
    const cache::CacheGeometry geom(hcfg.llcBytes, hcfg.llcWays);
    cache::Hierarchy hier(hcfg,
                          std::make_unique<policy::LruPolicy>(geom));
    source.reset(); // allow sequential reuse of one source
    cpu::CoreModel cpu(0, hier, source, /*loop=*/true);

    // Same per-thread warmup share as a 4-core mixed run.
    while (cpu.retired() < cfg.warmupInstructions / 4)
        cpu.step();
    const Cycle base_cycle = cpu.cycle();
    const InstCount base_insts = cpu.retired();
    while (cpu.cycle() < base_cycle + cfg.measureCycles)
        cpu.step();
    return static_cast<double>(cpu.retired() - base_insts) /
           static_cast<double>(cfg.measureCycles);
}

} // namespace mrp::sim
