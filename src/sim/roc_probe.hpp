/**
 * @file
 * Measurement-only predictor accuracy probe (paper §6.3).
 *
 * The probe attaches to an LRU-managed LLC as a passive observer and
 * hosts any number of reuse predictors. Every demand access is shown
 * to every predictor (training their samplers exactly as they would
 * train in a real deployment) and the emitted confidences are held
 * per block until ground truth arrives: a subsequent demand access
 * resolves the pending predictions as *live*; an eviction resolves
 * them as *dead*. Because decisions are never applied, the
 * measurement is free of feedback from the optimization — the
 * methodology the paper uses for its ROC curves.
 */

#ifndef MRP_SIM_ROC_PROBE_HPP
#define MRP_SIM_ROC_PROBE_HPP

#include <memory>
#include <vector>

#include "cache/llc_policy.hpp"
#include "policy/reuse_predictor.hpp"
#include "stats/roc.hpp"

namespace mrp::sim {

/** Observer hosting several predictors-under-measure. */
class RocProbe : public cache::LlcObserver
{
  public:
    /**
     * @param geom the observed LLC's geometry
     * @param predictors predictors to measure; the probe takes
     *        ownership
     */
    RocProbe(const cache::CacheGeometry& geom,
             std::vector<std::unique_ptr<policy::ReusePredictor>>
                 predictors);

    void onAccess(const cache::AccessInfo& info, bool hit,
                  std::uint32_t set, int way) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 Addr block_address) override;

    std::size_t predictorCount() const { return predictors_.size(); }
    const policy::ReusePredictor& predictor(std::size_t i) const
    {
        return *predictors_[i];
    }
    const stats::RocAccumulator& roc(std::size_t i) const
    {
        return roc_[i];
    }

  private:
    void resolve(std::uint32_t set, std::uint32_t way, bool dead);
    void storePending(std::uint32_t set, std::uint32_t way);

    std::uint32_t ways_;
    std::vector<std::unique_ptr<policy::ReusePredictor>> predictors_;
    std::vector<stats::RocAccumulator> roc_;
    // Per (set, way): one pending confidence per predictor.
    std::vector<std::int32_t> pendingConf_;
    std::vector<std::uint8_t> pendingValid_;
    // Confidences of the most recent demand miss, awaiting onFill.
    std::vector<int> missConf_;
    bool missPending_ = false;
};

} // namespace mrp::sim

#endif // MRP_SIM_ROC_PROBE_HPP
