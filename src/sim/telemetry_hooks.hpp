/**
 * @file
 * Glue between the simulation drivers and the telemetry subsystem.
 *
 * TelemetryObserver is the passive LLC observer the drivers attach
 * when telemetry is enabled: it advances the session's epoch clock by
 * one per LLC access and feeds the reuse-distance probe. Keeping it
 * here (not in src/telemetry) leaves mrp_telemetry free of cache-layer
 * dependencies, so the cache itself can link against it.
 */

#ifndef MRP_SIM_TELEMETRY_HOOKS_HPP
#define MRP_SIM_TELEMETRY_HOOKS_HPP

#include "cache/llc_policy.hpp"
#include "telemetry/session.hpp"

namespace mrp::sim {

/** Drives a telemetry session from the LLC access stream. */
class TelemetryObserver : public cache::LlcObserver
{
  public:
    explicit TelemetryObserver(telemetry::Session& session)
        : session_(session)
    {
    }

    void
    onAccess(const cache::AccessInfo& info, bool hit, std::uint32_t set,
             int way) override
    {
        (void)hit;
        (void)set;
        (void)way;
        session_.reuse().observe(blockAddr(info.addr));
        session_.tick();
    }

  private:
    telemetry::Session& session_;
};

} // namespace mrp::sim

#endif // MRP_SIM_TELEMETRY_HOOKS_HPP
