/**
 * @file
 * Configuration shared by every simulation driver.
 *
 * SingleCoreConfig and MultiCoreConfig used to duplicate the hierarchy
 * and warmup knobs as unrelated structs, which made it impossible to
 * pass "a driver configuration" around generically (the experiment
 * runner needs exactly that). DriverConfig is now the common base:
 * hierarchy sizing plus both warmup schemes the drivers use.
 */

#ifndef MRP_SIM_DRIVER_CONFIG_HPP
#define MRP_SIM_DRIVER_CONFIG_HPP

#include "cache/hierarchy.hpp"
#include "telemetry/config.hpp"
#include "util/types.hpp"

namespace mrp::sim {

/**
 * Base of every driver configuration: the memory hierarchy to build
 * and the warmup policy to apply before measurement.
 *
 * Two warmup schemes exist in the paper and both live here so derived
 * configs do not re-declare them (which is how SingleCoreConfig and
 * MultiCoreConfig drifted apart historically — add new shared fields
 * HERE, not in the derived structs):
 *  - warmupFraction: warm for a fraction of the trace (single-thread
 *    drivers, §4.1);
 *  - warmupInstructions: warm until a total retired-instruction budget
 *    across all cores is reached (multi-core FIESTA scheme, §4.2).
 * Each driver documents which field it honours.
 */
struct DriverConfig
{
    cache::HierarchyConfig hierarchy{}; //!< 2MB LLC default

    double warmupFraction = 0.25; //!< fraction of the trace for warmup

    /**
     * Total warmup across cores; sized so the 8MB LLC (131K blocks)
     * fills and the predictors reach steady state before measurement.
     */
    InstCount warmupInstructions = 1600000;

    /**
     * Opt-in telemetry. When enabled the driver attaches a metrics
     * session at the start of the measurement window and the result
     * carries a RunTelemetry. Disabled (the default) costs nothing.
     */
    telemetry::TelemetryConfig telemetry{};

    /**
     * Experiment RNG seed. The simulation itself is deterministic, so
     * the drivers do not draw from it; its job is provenance: the
     * runner stamps it into every RunResult and the reports/journal
     * record it (when nonzero), so a study can be replayed from its
     * report alone. Callers that re-seed their inputs (trace
     * generation salt, sweep strategies) should thread the same value
     * here. 0 = the paper-default seeding, omitted from reports.
     */
    std::uint64_t seed = 0;
};

} // namespace mrp::sim

#endif // MRP_SIM_DRIVER_CONFIG_HPP
