/**
 * @file
 * Single-thread simulation driver: one core, one trace, one LLC
 * policy; warmup then measurement, reporting IPC and LLC demand MPKI
 * (the quantities of Figures 6 and 7).
 */

#ifndef MRP_SIM_SINGLE_CORE_HPP
#define MRP_SIM_SINGLE_CORE_HPP

#include <memory>
#include <string>

#include "cache/hierarchy.hpp"
#include "sim/driver_config.hpp"
#include "sim/policies.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace mrp::telemetry {
struct RunTelemetry;
}

namespace mrp::sim {

/**
 * Single-thread driver parameters. The hierarchy and warmup knobs
 * live in DriverConfig (the single-thread driver honours
 * warmupFraction); declare new shared fields there, not here.
 */
struct SingleCoreConfig : DriverConfig
{
};

/** Measured outcome of one single-thread run. */
struct SingleCoreResult
{
    std::string benchmark;
    std::string policy;
    InstCount instructions = 0; //!< measured (post-warmup)
    Cycle cycles = 0;
    double ipc = 0.0;
    std::uint64_t llcDemandAccesses = 0;
    std::uint64_t llcDemandMisses = 0;
    std::uint64_t llcBypasses = 0;
    double mpki = 0.0; //!< LLC demand misses per kilo-instruction
    /** Present iff cfg.telemetry.enabled; covers the measured window. */
    std::shared_ptr<const telemetry::RunTelemetry> telemetry;
};

/**
 * Stream @p source under the policy built by @p factory. The source
 * is consumed from its current position (pass a fresh or reset one)
 * and left exhausted. Results are byte-identical for any chunking or
 * delivery mode of the same record sequence.
 */
SingleCoreResult runSingleCore(trace::TraceSource& source,
                               const PolicyFactory& factory,
                               const SingleCoreConfig& cfg = {});

/**
 * As runSingleCore, with a passive LLC observer attached (ROC probes,
 * access recorders). The observer sees the whole run, warmup included.
 */
SingleCoreResult runSingleCoreObserved(trace::TraceSource& source,
                                       const PolicyFactory& factory,
                                       const SingleCoreConfig& cfg,
                                       cache::LlcObserver* observer);

/**
 * Run @p source under Belady's MIN with optimal bypass: a recording
 * pre-pass (under LRU) captures the policy-invariant LLC reference
 * stream, next-use distances are computed, and the measured pass runs
 * MinPolicy (paper §4.3). The source is reset() between the passes —
 * only the (much smaller) LLC reference stream is ever held in
 * memory, so MIN works on streamed traces too.
 */
SingleCoreResult runSingleCoreMin(trace::TraceSource& source,
                                  const SingleCoreConfig& cfg = {});

} // namespace mrp::sim

#endif // MRP_SIM_SINGLE_CORE_HPP
