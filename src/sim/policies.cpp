#include "sim/policies.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "core/feature_sets.hpp"
#include "policy/ehc.hpp"
#include "policy/hawkeye.hpp"
#include "policy/lru.hpp"
#include "policy/perceptron.hpp"
#include "policy/sdbp.hpp"
#include "policy/ship.hpp"
#include "policy/srrip.hpp"
#include "policy/tree_plru.hpp"
#include "util/logging.hpp"

namespace mrp::sim {

namespace {

struct Entry
{
    PolicyFactory factory;
    int paperRank = -1;
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Entry> entries;
};

Registry&
registry()
{
    static Registry r;
    return r;
}

/** Wrap a policy constructor that takes only the geometry. */
template <typename Policy>
PolicyFactory
geomFactory()
{
    return [](const cache::CacheGeometry& g, unsigned) {
        return std::make_unique<Policy>(g);
    };
}

/** Wrap a policy constructor that takes geometry and core count. */
template <typename Policy>
PolicyFactory
coresFactory()
{
    return [](const cache::CacheGeometry& g, unsigned cores) {
        return std::make_unique<Policy>(g, cores);
    };
}

PolicyFactory
mpppbVariant(std::vector<core::FeatureSpec> features)
{
    auto cfg = core::singleThreadMpppbConfig();
    cfg.predictor.features = std::move(features);
    return makeMpppbFactory(cfg);
}

/**
 * Built-in registration, run on first registry use from any thread.
 * Paper ranks order paperPolicyNames() as the figures do: LRU,
 * Hawkeye, Perceptron, MPPPB.
 */
void
registerBuiltins(Registry& r)
{
    const auto add = [&r](const std::string& name, PolicyFactory f,
                          int paper_rank = -1) {
        r.entries.emplace(name,
                          Entry{std::move(f), paper_rank});
    };
    add("LRU", geomFactory<policy::LruPolicy>(), 0);
    add("Random", geomFactory<policy::RandomPolicy>());
    add("SRRIP", geomFactory<policy::SrripPolicy>());
    add("DRRIP", geomFactory<policy::DrripPolicy>());
    add("MDPP", geomFactory<policy::MdppPolicy>());
    add("SHiP", geomFactory<policy::ShipPolicy>());
    add("EHC", geomFactory<policy::EhcPolicy>());
    add("SDBP", coresFactory<policy::SdbpPolicy>());
    add("Perceptron", coresFactory<policy::PerceptronPolicy>(), 2);
    add("Hawkeye", coresFactory<policy::HawkeyePolicy>(), 1);
    add("MPPPB", makeMpppbFactory(core::singleThreadMpppbConfig()), 3);
    add("MPPPB-MC", makeMpppbFactory(core::multiCoreMpppbConfig()));
    auto dyn = core::singleThreadMpppbConfig();
    dyn.dynamicBypass = true;
    add("MPPPB-DYN", makeMpppbFactory(dyn));
    add("MPPPB-1A", mpppbVariant(core::featureSetTable1A()));
    add("MPPPB-1B", mpppbVariant(core::featureSetTable1B()));
    add("MPPPB-Local", mpppbVariant(core::featureSetLocal()));
    add("MPPPB-T2", mpppbVariant(core::featureSetTable2()));
}

Registry&
loadedRegistry()
{
    Registry& r = registry();
    static std::once_flag once;
    std::call_once(once, [&r] {
        std::lock_guard<std::mutex> lock(r.mutex);
        registerBuiltins(r);
    });
    return r;
}

} // namespace

void
PolicyRegistry::registerPolicy(const std::string& name,
                               PolicyFactory factory, int paperRank)
{
    fatalIf(!factory, "null factory registered for policy: " + name);
    Registry& r = loadedRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto [it, inserted] =
        r.entries.emplace(name, Entry{std::move(factory), paperRank});
    (void)it;
    fatalIf(!inserted, "duplicate policy registration: " + name);
}

PolicyFactory
PolicyRegistry::make(const std::string& name)
{
    Registry& r = loadedRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.entries.find(name);
    if (it == r.entries.end())
        fatal(ErrorCode::Config, "unknown policy name: " + name);
    return it->second.factory;
}

bool
PolicyRegistry::contains(const std::string& name)
{
    Registry& r = loadedRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.entries.count(name) != 0;
}

std::vector<std::string>
PolicyRegistry::names()
{
    Registry& r = loadedRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> out;
    out.reserve(r.entries.size());
    for (const auto& [name, entry] : r.entries)
        out.push_back(name);
    return out; // std::map iteration is already sorted
}

PolicyFactory
makeMpppbFactory(const core::MpppbConfig& cfg)
{
    return [cfg](const cache::CacheGeometry& geom, unsigned cores) {
        return std::make_unique<core::MpppbPolicy>(geom, cores, cfg);
    };
}

PolicyFactory
makePolicyFactory(const std::string& name)
{
    return PolicyRegistry::make(name);
}

std::vector<std::string>
paperPolicyNames()
{
    Registry& r = loadedRegistry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::pair<int, std::string>> ranked;
    for (const auto& [name, entry] : r.entries)
        if (entry.paperRank >= 0)
            ranked.emplace_back(entry.paperRank, name);
    std::sort(ranked.begin(), ranked.end());
    std::vector<std::string> out;
    out.reserve(ranked.size());
    for (auto& [rank, name] : ranked)
        out.push_back(std::move(name));
    return out;
}

} // namespace mrp::sim
