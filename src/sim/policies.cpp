#include "sim/policies.hpp"

#include "core/feature_sets.hpp"
#include "policy/hawkeye.hpp"
#include "policy/lru.hpp"
#include "policy/perceptron.hpp"
#include "policy/sdbp.hpp"
#include "policy/ship.hpp"
#include "policy/srrip.hpp"
#include "policy/tree_plru.hpp"
#include "util/logging.hpp"

namespace mrp::sim {

PolicyFactory
makeMpppbFactory(const core::MpppbConfig& cfg)
{
    return [cfg](const cache::CacheGeometry& geom, unsigned cores) {
        return std::make_unique<core::MpppbPolicy>(geom, cores, cfg);
    };
}

PolicyFactory
makePolicyFactory(const std::string& name)
{
    using cache::CacheGeometry;
    if (name == "LRU")
        return [](const CacheGeometry& g, unsigned) {
            return std::make_unique<policy::LruPolicy>(g);
        };
    if (name == "Random")
        return [](const CacheGeometry& g, unsigned) {
            return std::make_unique<policy::RandomPolicy>(g);
        };
    if (name == "SRRIP")
        return [](const CacheGeometry& g, unsigned) {
            return std::make_unique<policy::SrripPolicy>(g);
        };
    if (name == "DRRIP")
        return [](const CacheGeometry& g, unsigned) {
            return std::make_unique<policy::DrripPolicy>(g);
        };
    if (name == "MDPP")
        return [](const CacheGeometry& g, unsigned) {
            return std::make_unique<policy::MdppPolicy>(g);
        };
    if (name == "SHiP")
        return [](const CacheGeometry& g, unsigned) {
            return std::make_unique<policy::ShipPolicy>(g);
        };
    if (name == "SDBP")
        return [](const CacheGeometry& g, unsigned cores) {
            return std::make_unique<policy::SdbpPolicy>(g, cores);
        };
    if (name == "Perceptron")
        return [](const CacheGeometry& g, unsigned cores) {
            return std::make_unique<policy::PerceptronPolicy>(g, cores);
        };
    if (name == "Hawkeye")
        return [](const CacheGeometry& g, unsigned cores) {
            return std::make_unique<policy::HawkeyePolicy>(g, cores);
        };
    if (name == "MPPPB")
        return makeMpppbFactory(core::singleThreadMpppbConfig());
    if (name == "MPPPB-MC")
        return makeMpppbFactory(core::multiCoreMpppbConfig());
    if (name == "MPPPB-DYN") {
        auto cfg = core::singleThreadMpppbConfig();
        cfg.dynamicBypass = true;
        return makeMpppbFactory(cfg);
    }
    if (name == "MPPPB-1A") {
        auto cfg = core::singleThreadMpppbConfig();
        cfg.predictor.features = core::featureSetTable1A();
        return makeMpppbFactory(cfg);
    }
    if (name == "MPPPB-1B") {
        auto cfg = core::singleThreadMpppbConfig();
        cfg.predictor.features = core::featureSetTable1B();
        return makeMpppbFactory(cfg);
    }
    if (name == "MPPPB-Local") {
        auto cfg = core::singleThreadMpppbConfig();
        cfg.predictor.features = core::featureSetLocal();
        return makeMpppbFactory(cfg);
    }
    if (name == "MPPPB-T2") {
        auto cfg = core::singleThreadMpppbConfig();
        cfg.predictor.features = core::featureSetTable2();
        return makeMpppbFactory(cfg);
    }
    fatal("unknown policy name: " + name);
}

std::vector<std::string>
paperPolicyNames()
{
    return {"LRU", "Hawkeye", "Perceptron", "MPPPB"};
}

} // namespace mrp::sim
