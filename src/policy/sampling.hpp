/**
 * @file
 * Set-sampling arithmetic shared by the sampler-based predictors:
 * which LLC sets are sampled, their dedicated sampler-set index, and
 * the 16-bit partial tags the samplers store.
 */

#ifndef MRP_POLICY_SAMPLING_HPP
#define MRP_POLICY_SAMPLING_HPP

#include <cstdint>

#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/types.hpp"

namespace mrp::policy {

/** Maps LLC sets onto a smaller population of sampled sets. */
class SetSampling
{
  public:
    SetSampling(std::uint32_t llc_sets, std::uint32_t sampled_sets)
        : ratio_(checkedRatio(llc_sets, sampled_sets)),
          sampledSets_(sampled_sets)
    {
    }

    std::uint32_t sampledSets() const { return sampledSets_; }

    /** True if @p llc_set is one of the sampled sets. */
    bool sampled(std::uint32_t llc_set) const
    {
        return llc_set % ratio_ == 0;
    }

    /** Sampler-set index of a sampled LLC set. */
    std::uint32_t
    samplerSetOf(std::uint32_t llc_set) const
    {
        panicIf(!sampled(llc_set), "set is not sampled");
        return llc_set / ratio_;
    }

    /** 16-bit partial tag stored by the samplers (paper §3.3). */
    static std::uint16_t
    partialTag(Addr addr)
    {
        return static_cast<std::uint16_t>(mix64(blockAddr(addr)));
    }

  private:
    static std::uint32_t
    checkedRatio(std::uint32_t llc_sets, std::uint32_t sampled_sets)
    {
        fatalIf(sampled_sets == 0 || sampled_sets > llc_sets,
                "invalid sampled-set count");
        fatalIf(llc_sets % sampled_sets != 0,
                "sampled sets must divide the LLC set count");
        return llc_sets / sampled_sets;
    }

    std::uint32_t ratio_;
    std::uint32_t sampledSets_;
};

} // namespace mrp::policy

#endif // MRP_POLICY_SAMPLING_HPP
