#include "policy/hawkeye.hpp"

#include <algorithm>

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace mrp::policy {

HawkeyePolicy::HawkeyePolicy(const cache::CacheGeometry& geom,
                             unsigned cores, const HawkeyeConfig& cfg)
    : cfg_(cfg), ways_(geom.ways()),
      maxRrpv_((1u << cfg.rrpvBits) - 1),
      window_(cfg.historyMultiple * geom.ways()),
      sampling_(geom.sets(),
                std::min(cfg.sampledSetsPerCore * cores, geom.sets())),
      optgen_(sampling_.sampledSets()),
      predictor_(cfg.predictorEntries,
                 SatCounter(cfg.counterBits,
                            (1u << cfg.counterBits) / 2)),
      rrpv_(static_cast<std::size_t>(geom.sets()) * geom.ways(),
            static_cast<std::uint8_t>(maxRrpv_)),
      lastPc_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0),
      friendlyBit_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0)
{
    for (auto& s : optgen_)
        s.occupancy.assign(window_, 0);
}

std::uint32_t
HawkeyePolicy::predictorIndex(Pc pc) const
{
    return hashToIndex(pc, cfg_.predictorEntries);
}

bool
HawkeyePolicy::isFriendly(Pc pc) const
{
    const SatCounter& c = predictor_[predictorIndex(pc)];
    return c.value() >= (1u << (cfg_.counterBits - 1));
}

void
HawkeyePolicy::train(Pc pc, bool friendly)
{
    SatCounter& c = predictor_[predictorIndex(pc)];
    if (friendly)
        c.increment();
    else
        c.decrement();
}

void
HawkeyePolicy::optgenAccess(const cache::AccessInfo& info,
                            std::uint32_t set)
{
    OptGenSet& og = optgen_[sampling_.samplerSetOf(set)];
    const std::uint16_t tag = SetSampling::partialTag(info.addr);
    const std::uint64_t now = og.time;

    auto it = og.lastAccess.find(tag);
    if (it != og.lastAccess.end()) {
        const std::uint64_t prev = it->second.time;
        if (now - prev < window_ && now != prev) {
            // Would MIN have kept the block across [prev, now)?
            bool fits = true;
            for (std::uint64_t t = prev; t < now; ++t) {
                if (og.occupancy[t % window_] >= ways_) {
                    fits = false;
                    break;
                }
            }
            if (fits)
                for (std::uint64_t t = prev; t < now; ++t)
                    ++og.occupancy[t % window_];
            train(it->second.pc, fits);
        }
        else if (now - prev >= window_) {
            // The reuse interval exceeded OPTgen's horizon: treat the
            // opener as cache-averse, mirroring the original
            // implementation's detraining of aged-out sampler entries.
            train(it->second.pc, false);
        }
    }
    og.lastAccess[tag] = {now, info.pc};

    ++og.time;
    og.occupancy[og.time % window_] = 0;
    // Bound the map: entries beyond the history window can never hit
    // under OPT; detrain their opener and drop them.
    if (og.lastAccess.size() > 4 * window_) {
        for (auto i = og.lastAccess.begin(); i != og.lastAccess.end();) {
            if (og.time - i->second.time >= window_) {
                train(i->second.pc, false);
                i = og.lastAccess.erase(i);
            } else {
                ++i;
            }
        }
    }
}

void
HawkeyePolicy::touchBlock(const cache::AccessInfo& info, std::uint32_t set,
                          std::uint32_t way, bool is_fill)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const bool friendly = isFriendly(info.pc);
    friendlyBit_[idx] = friendly ? 1 : 0;
    lastPc_[idx] = info.pc;
    if (!friendly) {
        rrpv_[idx] = static_cast<std::uint8_t>(maxRrpv_);
        return;
    }
    rrpv_[idx] = 0;
    if (is_fill) {
        // Age the other friendly blocks so older friends are
        // eventually evictable.
        const std::size_t base = static_cast<std::size_t>(set) * ways_;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if (w == way)
                continue;
            if (rrpv_[base + w] < maxRrpv_ - 1)
                ++rrpv_[base + w];
        }
    }
}

void
HawkeyePolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                     std::uint32_t way)
{
    if (info.type == cache::AccessType::Writeback)
        return;
    if (sampling_.sampled(set))
        optgenAccess(info, set);
    touchBlock(info, set, way, /*is_fill=*/false);
}

void
HawkeyePolicy::onMiss(const cache::AccessInfo& info, std::uint32_t set)
{
    if (info.type == cache::AccessType::Writeback)
        return;
    if (sampling_.sampled(set))
        optgenAccess(info, set);
}

std::uint32_t
HawkeyePolicy::victimWay(const cache::AccessInfo&, std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    // Cache-averse blocks first.
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (rrpv_[base + w] >= maxRrpv_)
            return w;
    // Otherwise the oldest friendly block; its PC misled us.
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w)
        if (rrpv_[base + w] > rrpv_[base + victim])
            victim = w;
    if (friendlyBit_[base + victim])
        train(lastPc_[base + victim], /*friendly=*/false);
    return victim;
}

void
HawkeyePolicy::onFill(const cache::AccessInfo& info, std::uint32_t set,
                      std::uint32_t way)
{
    if (info.type == cache::AccessType::Writeback) {
        // Install writebacks quietly at a distant position.
        const std::size_t idx =
            static_cast<std::size_t>(set) * ways_ + way;
        rrpv_[idx] = static_cast<std::uint8_t>(maxRrpv_ - 1);
        friendlyBit_[idx] = 0;
        lastPc_[idx] = info.pc;
        return;
    }
    touchBlock(info, set, way, /*is_fill=*/true);
}

void
HawkeyePolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    rrpv_[idx] = static_cast<std::uint8_t>(maxRrpv_);
    friendlyBit_[idx] = 0;
}

} // namespace mrp::policy
