#include "policy/ehc.hpp"

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace mrp::policy {

EhcPolicy::EhcPolicy(const cache::CacheGeometry& geom,
                     const EhcConfig& cfg)
    : cfg_(cfg), ways_(geom.ways()),
      blocks_(static_cast<std::size_t>(geom.sets()) * geom.ways()),
      table_(cfg.tableEntries, 0)
{
    fatalIf(cfg.tableEntries == 0, "EHC needs a non-empty table");
    fatalIf(cfg.fracBits > 16 || cfg.ewmaShift > 8,
            "EHC fixed-point parameters out of range");
}

std::uint32_t
EhcPolicy::signatureOf(Pc pc) const
{
    return hashToIndex(pc, cfg_.tableEntries);
}

std::uint32_t
EhcPolicy::expectedHitsOf(Pc pc) const
{
    return table_[signatureOf(pc)];
}

std::int64_t
EhcPolicy::remainingOf(const BlockState& b) const
{
    const std::int64_t expected = table_[b.signature];
    const std::int64_t seen = static_cast<std::int64_t>(b.hits)
                              << cfg_.fracBits;
    const std::int64_t rem = expected - seen;
    return rem > 0 ? rem : 0;
}

void
EhcPolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                 std::uint32_t way)
{
    // Writebacks say nothing about demand reuse.
    if (info.type == cache::AccessType::Writeback)
        return;
    BlockState& b = blocks_[static_cast<std::size_t>(set) * ways_ + way];
    ++b.hits;
    b.stamp = ++clock_;
}

std::uint32_t
EhcPolicy::victimWay(const cache::AccessInfo& info, std::uint32_t set)
{
    return victimWayIn(info, set, cache::fullWayMask(ways_));
}

std::uint32_t
EhcPolicy::victimWayIn(const cache::AccessInfo&, std::uint32_t set,
                       cache::WayMask mask)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = ways_;
    std::int64_t victim_rem = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if ((mask >> w & 1) == 0)
            continue;
        const BlockState& b = blocks_[base + w];
        const std::int64_t rem = remainingOf(b);
        if (victim == ways_ || rem < victim_rem ||
            (rem == victim_rem && b.stamp < blocks_[base + victim].stamp))
        {
            victim = w;
            victim_rem = rem;
        }
    }
    return victim;
}

void
EhcPolicy::onFill(const cache::AccessInfo& info, std::uint32_t set,
                  std::uint32_t way)
{
    BlockState& b = blocks_[static_cast<std::size_t>(set) * ways_ + way];
    b.signature = signatureOf(info.pc);
    b.hits = 0;
    b.stamp = ++clock_;
}

void
EhcPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    // Train the signature's expected lifetime hit count as an EWMA of
    // what this block actually collected.
    BlockState& b = blocks_[static_cast<std::size_t>(set) * ways_ + way];
    std::uint32_t& e = table_[b.signature];
    const std::uint64_t observed = static_cast<std::uint64_t>(b.hits)
                                   << cfg_.fracBits;
    e = static_cast<std::uint32_t>(e - (e >> cfg_.ewmaShift) +
                                   (observed >> cfg_.ewmaShift));
    b.hits = 0;
}

} // namespace mrp::policy
