/**
 * @file
 * Tree-based pseudo-LRU with positional placement and promotion —
 * the machinery behind static MDPP (Teran et al., HPCA 2016), the
 * paper's single-thread default replacement policy.
 *
 * A 16-way set uses 15 tree bits. Reading the root-to-leaf path of a
 * way as a binary number (1 where the node's pointer aims toward the
 * way) yields the way's *position*: 0 is maximally protected (MRU-
 * like) and ways-1 is the victim. Writing the path bits installs a
 * block at any of the 16 positions using only log2(ways) bit updates —
 * the "minimal disturbance" placement/promotion of MDPP.
 */

#ifndef MRP_POLICY_TREE_PLRU_HPP
#define MRP_POLICY_TREE_PLRU_HPP

#include <cstdint>
#include <vector>

#include "cache/llc_policy.hpp"

namespace mrp::policy {

/** Per-set PLRU trees for a whole cache. */
class TreePlru
{
  public:
    TreePlru(std::uint32_t sets, std::uint32_t ways);

    std::uint32_t ways() const { return ways_; }

    /** The way all pointers currently lead to (position ways-1). */
    std::uint32_t victim(std::uint32_t set) const;

    /**
     * Write @p way's path bits so its position becomes @p pos
     * (0 = most protected, ways-1 = next victim).
     */
    void setPosition(std::uint32_t set, std::uint32_t way,
                     std::uint32_t pos);

    /** Current position of @p way (0 .. ways-1). */
    std::uint32_t position(std::uint32_t set, std::uint32_t way) const;

  private:
    std::uint32_t sets_;
    std::uint32_t ways_;
    unsigned levels_;
    std::vector<std::uint8_t> bits_; // sets * (ways-1), 1-based in-set
};

/** Static MDPP parameters (placement / promotion positions). */
struct MdppConfig
{
    std::uint32_t insertPos = 11; //!< position of newly filled blocks
    std::uint32_t promotePos = 0; //!< position after a demand hit
};

/**
 * Static Minimal Disturbance Placement and Promotion over tree-PLRU.
 * 15 bits per 16-way set, as the paper budgets (§4.4).
 */
class MdppPolicy : public cache::LlcPolicy
{
  public:
    MdppPolicy(const cache::CacheGeometry& geom,
               const MdppConfig& cfg = MdppConfig{});

    std::string name() const override { return "MDPP"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;

    TreePlru& tree() { return tree_; }

  private:
    MdppConfig cfg_;
    TreePlru tree_;
};

} // namespace mrp::policy

#endif // MRP_POLICY_TREE_PLRU_HPP
