/**
 * @file
 * SHiP: Signature-based Hit Predictor (Wu et al. — MICRO 2011),
 * referenced by the paper as the canonical PC-signature reuse scheme
 * (the multiperspective bias(A,1) feature degenerates to exactly this
 * idea).
 *
 * Each block remembers the signature (hashed PC) that inserted it and
 * an outcome bit. On eviction without reuse, the signature's counter
 * in the Signature History Counter Table (SHCT) is decremented; on
 * first reuse it is incremented. Insertions whose signature counter is
 * zero are placed at the distant RRPV (likely dead); others at the
 * intermediate RRPV, over an SRRIP substrate.
 */

#ifndef MRP_POLICY_SHIP_HPP
#define MRP_POLICY_SHIP_HPP

#include <vector>

#include "cache/llc_policy.hpp"
#include "policy/srrip.hpp"
#include "util/sat_counter.hpp"

namespace mrp::policy {

/** SHiP sizing parameters. */
struct ShipConfig
{
    std::uint32_t shctEntries = 16384;
    unsigned counterBits = 3;
    SrripConfig srrip{};
};

/** SHiP-PC over an SRRIP substrate. */
class ShipPolicy : public cache::LlcPolicy
{
  public:
    ShipPolicy(const cache::CacheGeometry& geom,
               const ShipConfig& cfg = ShipConfig{});

    std::string name() const override { return "SHiP"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;

    /** Current SHCT counter for a PC (diagnostics/tests). */
    std::uint32_t shctOf(Pc pc) const;

  private:
    std::uint32_t signatureOf(Pc pc) const;

    ShipConfig cfg_;
    SrripPolicy rrip_;
    std::vector<SatCounter> shct_;
    // Per-block: inserting signature and whether it was reused.
    std::uint32_t ways_;
    std::vector<std::uint32_t> signature_;
    std::vector<std::uint8_t> outcome_;
};

} // namespace mrp::policy

#endif // MRP_POLICY_SHIP_HPP
