#include "policy/lru.hpp"

namespace mrp::policy {

LruPolicy::LruPolicy(const cache::CacheGeometry& geom)
    : ways_(geom.ways()),
      stamps_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0)
{
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
}

void
LruPolicy::onHit(const cache::AccessInfo&, std::uint32_t set,
                 std::uint32_t way)
{
    touch(set, way);
}

std::uint32_t
LruPolicy::victimWay(const cache::AccessInfo&, std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w)
        if (stamps_[base + w] < stamps_[base + victim])
            victim = w;
    return victim;
}

std::uint32_t
LruPolicy::victimWayIn(const cache::AccessInfo&, std::uint32_t set,
                       cache::WayMask mask)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if ((mask >> w & 1) == 0)
            continue;
        if (victim == ways_ || stamps_[base + w] < stamps_[base + victim])
            victim = w;
    }
    return victim;
}

void
LruPolicy::onFill(const cache::AccessInfo&, std::uint32_t set,
                  std::uint32_t way)
{
    touch(set, way);
}

std::uint32_t
LruPolicy::rankOf(std::uint32_t set, std::uint32_t way) const
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    const std::uint64_t mine = stamps_[base + way];
    std::uint32_t rank = 0;
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (stamps_[base + w] > mine)
            ++rank;
    return rank;
}

RandomPolicy::RandomPolicy(const cache::CacheGeometry& geom,
                           std::uint64_t seed)
    : ways_(geom.ways()), rng_(seed)
{
}

std::uint32_t
RandomPolicy::victimWay(const cache::AccessInfo&, std::uint32_t)
{
    return static_cast<std::uint32_t>(rng_.below(ways_));
}

std::uint32_t
RandomPolicy::victimWayIn(const cache::AccessInfo&, std::uint32_t,
                          cache::WayMask mask)
{
    // Uniform over the masked ways: pick the k-th set bit.
    const unsigned count =
        static_cast<unsigned>(__builtin_popcountll(mask));
    std::uint64_t k = rng_.below(count);
    for (std::uint32_t w = 0;; ++w) {
        if ((mask >> w & 1) != 0 && k-- == 0)
            return w;
    }
}

} // namespace mrp::policy
