#include "policy/srrip.hpp"

#include "util/logging.hpp"

namespace mrp::policy {

SrripPolicy::SrripPolicy(const cache::CacheGeometry& geom,
                         const SrripConfig& cfg)
    : cfg_(cfg), maxRrpv_((1u << cfg.bits) - 1), ways_(geom.ways()),
      rrpv_(static_cast<std::size_t>(geom.sets()) * geom.ways(),
            static_cast<std::uint8_t>((1u << cfg.bits) - 1))
{
    fatalIf(cfg.bits == 0 || cfg.bits > 7, "rrpv width out of range");
    fatalIf(cfg.insertRrpv > maxRrpv_ || cfg.hitRrpv > maxRrpv_,
            "rrpv insertion values out of range");
}

unsigned
SrripPolicy::rrpvOf(std::uint32_t set, std::uint32_t way) const
{
    return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
}

void
SrripPolicy::setRrpv(std::uint32_t set, std::uint32_t way, unsigned v)
{
    panicIf(v > maxRrpv_, "rrpv out of range");
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] =
        static_cast<std::uint8_t>(v);
}

void
SrripPolicy::onHit(const cache::AccessInfo&, std::uint32_t set,
                   std::uint32_t way)
{
    setRrpv(set, way, cfg_.hitRrpv);
}

std::uint32_t
SrripPolicy::victimWay(const cache::AccessInfo&, std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    // Find the oldest re-reference prediction and age everyone up to
    // the maximum in one step (equivalent to RRIP's increment loop).
    unsigned oldest = 0;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (rrpv_[base + w] > oldest) {
            oldest = rrpv_[base + w];
            victim = w;
        }
    }
    if (oldest < maxRrpv_) {
        const unsigned delta = maxRrpv_ - oldest;
        for (std::uint32_t w = 0; w < ways_; ++w)
            rrpv_[base + w] = static_cast<std::uint8_t>(
                rrpv_[base + w] + delta > maxRrpv_
                    ? maxRrpv_
                    : rrpv_[base + w] + delta);
    }
    return victim;
}

std::uint32_t
SrripPolicy::victimWayIn(const cache::AccessInfo&, std::uint32_t set,
                         cache::WayMask mask)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    // Same aging scheme as victimWay, confined to the partition: the
    // other tenants' re-reference state must not be disturbed.
    unsigned oldest = 0;
    std::uint32_t victim = ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if ((mask >> w & 1) == 0)
            continue;
        if (victim == ways_ || rrpv_[base + w] > oldest) {
            oldest = rrpv_[base + w];
            victim = w;
        }
    }
    if (oldest < maxRrpv_) {
        const unsigned delta = maxRrpv_ - oldest;
        for (std::uint32_t w = 0; w < ways_; ++w) {
            if ((mask >> w & 1) == 0)
                continue;
            rrpv_[base + w] = static_cast<std::uint8_t>(
                rrpv_[base + w] + delta > maxRrpv_
                    ? maxRrpv_
                    : rrpv_[base + w] + delta);
        }
    }
    return victim;
}

void
SrripPolicy::onFill(const cache::AccessInfo&, std::uint32_t set,
                    std::uint32_t way)
{
    setRrpv(set, way, cfg_.insertRrpv);
}

DrripPolicy::DrripPolicy(const cache::CacheGeometry& geom,
                         const DrripConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rrip_(geom, cfg.srrip), rng_(seed),
      pselMax_((1 << (cfg.pselBits - 1)) - 1)
{
}

DrripPolicy::SetRole
DrripPolicy::roleOf(std::uint32_t set) const
{
    const std::uint32_t r = set % cfg_.duelingPeriod;
    if (r == 0)
        return SetRole::SrripLeader;
    if (r == cfg_.duelingPeriod / 2 + 1)
        return SetRole::BrripLeader;
    return SetRole::Follower;
}

void
DrripPolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                   std::uint32_t way)
{
    rrip_.onHit(info, set, way);
}

void
DrripPolicy::onMiss(const cache::AccessInfo& info, std::uint32_t set)
{
    // Leader-set misses steer the policy-selection counter.
    if (!cache::isDemand(info.type))
        return;
    switch (roleOf(set)) {
      case SetRole::SrripLeader:
        if (psel_ < pselMax_)
            ++psel_;
        break;
      case SetRole::BrripLeader:
        if (psel_ > -pselMax_ - 1)
            --psel_;
        break;
      case SetRole::Follower:
        break;
    }
}

std::uint32_t
DrripPolicy::victimWay(const cache::AccessInfo& info, std::uint32_t set)
{
    return rrip_.victimWay(info, set);
}

std::uint32_t
DrripPolicy::victimWayIn(const cache::AccessInfo& info, std::uint32_t set,
                         cache::WayMask mask)
{
    return rrip_.victimWayIn(info, set, mask);
}

void
DrripPolicy::onFill(const cache::AccessInfo& info, std::uint32_t set,
                    std::uint32_t way)
{
    bool use_brrip;
    switch (roleOf(set)) {
      case SetRole::SrripLeader:
        use_brrip = false;
        break;
      case SetRole::BrripLeader:
        use_brrip = true;
        break;
      default:
        // psel counts SRRIP-leader misses up: positive means SRRIP is
        // missing more, so followers use BRRIP.
        use_brrip = psel_ > 0;
        break;
    }
    if (!use_brrip) {
        rrip_.onFill(info, set, way);
        return;
    }
    // Bimodal RRIP: distant re-reference, occasionally long.
    const bool near_insert =
        rng_.below(1ull << cfg_.bipEpsilonLog2) == 0;
    rrip_.setRrpv(set, way,
                  near_insert ? cfg_.srrip.insertRrpv : rrip_.maxRrpv());
}

} // namespace mrp::policy
