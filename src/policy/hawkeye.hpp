/**
 * @file
 * Hawkeye (Jain & Lin — ISCA 2016): learn from Belady's MIN.
 *
 * OPTgen reconstructs, per sampled set, whether MIN would have hit
 * each reuse interval using an occupancy vector over recent access
 * quanta. The PC that opened an interval is trained toward
 * "cache-friendly" when MIN would hit and "cache-averse" when it would
 * not. The replacement policy inserts averse blocks at the eviction
 * point (RRPV 7), keeps friendly blocks young, ages friendly blocks on
 * fills, and detrains the PC of any friendly block it is forced to
 * evict.
 */

#ifndef MRP_POLICY_HAWKEYE_HPP
#define MRP_POLICY_HAWKEYE_HPP

#include <unordered_map>
#include <vector>

#include "cache/llc_policy.hpp"
#include "policy/sampling.hpp"
#include "util/sat_counter.hpp"

namespace mrp::policy {

/** Hawkeye sizing parameters. */
struct HawkeyeConfig
{
    std::uint32_t sampledSetsPerCore = 64;
    unsigned historyMultiple = 8; //!< OPTgen window = this * assoc
    std::uint32_t predictorEntries = 8192;
    unsigned counterBits = 3; //!< friendly when counter >= 2^(bits-1)
    unsigned rrpvBits = 3;
};

/** The Hawkeye LLC policy. */
class HawkeyePolicy : public cache::LlcPolicy
{
  public:
    HawkeyePolicy(const cache::CacheGeometry& geom, unsigned cores,
                  const HawkeyeConfig& cfg = HawkeyeConfig{});

    std::string name() const override { return "Hawkeye"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    void onMiss(const cache::AccessInfo& info, std::uint32_t set) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;

    /** Whether the predictor currently classifies @p pc friendly. */
    bool isFriendly(Pc pc) const;

  private:
    struct OptGenSet
    {
        std::uint64_t time = 0;
        std::vector<std::uint8_t> occupancy; // ring over quanta
        struct LastAccess
        {
            std::uint64_t time;
            Pc pc;
        };
        std::unordered_map<std::uint16_t, LastAccess> lastAccess;
    };

    std::uint32_t predictorIndex(Pc pc) const;
    void train(Pc pc, bool friendly);
    void optgenAccess(const cache::AccessInfo& info, std::uint32_t set);
    void touchBlock(const cache::AccessInfo& info, std::uint32_t set,
                    std::uint32_t way, bool is_fill);

    HawkeyeConfig cfg_;
    std::uint32_t ways_;
    unsigned maxRrpv_;
    std::uint32_t window_;
    SetSampling sampling_;
    std::vector<OptGenSet> optgen_;
    std::vector<SatCounter> predictor_;
    // Per-block state.
    std::vector<std::uint8_t> rrpv_;
    std::vector<Pc> lastPc_;
    std::vector<std::uint8_t> friendlyBit_;
};

} // namespace mrp::policy

#endif // MRP_POLICY_HAWKEYE_HPP
