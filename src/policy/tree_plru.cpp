#include "policy/tree_plru.hpp"

#include "util/bitfield.hpp"
#include "util/logging.hpp"

namespace mrp::policy {

TreePlru::TreePlru(std::uint32_t sets, std::uint32_t ways)
    : sets_(sets), ways_(ways), levels_(log2Ceil(ways)),
      bits_(static_cast<std::size_t>(sets) * (ways - 1), 0)
{
    fatalIf(!isPowerOfTwo(ways) || ways < 2,
            "tree PLRU needs a power-of-two associativity >= 2");
}

std::uint32_t
TreePlru::victim(std::uint32_t set) const
{
    const std::size_t base = static_cast<std::size_t>(set) * (ways_ - 1);
    std::uint32_t node = 1; // 1-based heap indexing within the set
    for (unsigned level = 0; level < levels_; ++level)
        node = 2 * node + bits_[base + node - 1];
    return node - ways_;
}

void
TreePlru::setPosition(std::uint32_t set, std::uint32_t way,
                      std::uint32_t pos)
{
    panicIf(way >= ways_ || pos >= ways_, "way/pos out of range");
    const std::size_t base = static_cast<std::size_t>(set) * (ways_ - 1);
    // Walk from the root toward the way's leaf; at depth d the desired
    // "points toward way" flag is bit (levels-1-d) of pos.
    std::uint32_t node = 1;
    const std::uint32_t leaf = way + ways_;
    for (unsigned level = 0; level < levels_; ++level) {
        const unsigned depth_bit = levels_ - 1 - level;
        const std::uint32_t child_toward =
            (leaf >> depth_bit) & 1; // which child leads to the way
        const bool want_toward = ((pos >> depth_bit) & 1) != 0;
        bits_[base + node - 1] = static_cast<std::uint8_t>(
            want_toward ? child_toward : child_toward ^ 1);
        node = 2 * node + child_toward;
    }
}

std::uint32_t
TreePlru::position(std::uint32_t set, std::uint32_t way) const
{
    panicIf(way >= ways_, "way out of range");
    const std::size_t base = static_cast<std::size_t>(set) * (ways_ - 1);
    std::uint32_t node = 1;
    const std::uint32_t leaf = way + ways_;
    std::uint32_t pos = 0;
    for (unsigned level = 0; level < levels_; ++level) {
        const unsigned depth_bit = levels_ - 1 - level;
        const std::uint32_t child_toward = (leaf >> depth_bit) & 1;
        if (bits_[base + node - 1] == child_toward)
            pos |= 1u << depth_bit;
        node = 2 * node + child_toward;
    }
    return pos;
}

MdppPolicy::MdppPolicy(const cache::CacheGeometry& geom,
                       const MdppConfig& cfg)
    : cfg_(cfg), tree_(geom.sets(), geom.ways())
{
    fatalIf(cfg.insertPos >= geom.ways() || cfg.promotePos >= geom.ways(),
            "MDPP positions out of range");
}

void
MdppPolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                  std::uint32_t way)
{
    // Writebacks refresh nothing: the block's recency reflects demand
    // locality only.
    if (info.type == cache::AccessType::Writeback)
        return;
    tree_.setPosition(set, way, cfg_.promotePos);
}

std::uint32_t
MdppPolicy::victimWay(const cache::AccessInfo&, std::uint32_t set)
{
    return tree_.victim(set);
}

std::uint32_t
MdppPolicy::victimWayIn(const cache::AccessInfo&, std::uint32_t set,
                        cache::WayMask mask)
{
    // The tree's global victim may live outside the partition; pick
    // the masked way closest to eviction (max position), tie-breaking
    // toward the lowest way for determinism.
    std::uint32_t victim = tree_.ways();
    std::uint32_t victim_pos = 0;
    for (std::uint32_t w = 0; w < tree_.ways(); ++w) {
        if ((mask >> w & 1) == 0)
            continue;
        const std::uint32_t pos = tree_.position(set, w);
        if (victim == tree_.ways() || pos > victim_pos) {
            victim = w;
            victim_pos = pos;
        }
    }
    return victim;
}

void
MdppPolicy::onFill(const cache::AccessInfo&, std::uint32_t set,
                   std::uint32_t way)
{
    tree_.setPosition(set, way, cfg_.insertPos);
}

} // namespace mrp::policy
