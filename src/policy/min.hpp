/**
 * @file
 * Belady's MIN replacement adapted to also provide optimal bypass
 * (paper §4.3).
 *
 * The LLC reference stream is independent of the LLC policy (L1/L2
 * contents and the prefetcher never observe LLC decisions), so MIN is
 * realized in two passes: a recording pass notes the block address of
 * every LLC access, next-use distances are computed offline, and the
 * real pass replays the workload with a policy that evicts (or
 * bypasses) the block whose next use is farthest in the future.
 */

#ifndef MRP_POLICY_MIN_HPP
#define MRP_POLICY_MIN_HPP

#include <cstdint>
#include <limits>
#include <vector>

#include "cache/llc_policy.hpp"

namespace mrp::policy {

/** "Never referenced again." */
inline constexpr std::uint64_t kNeverUsed =
    std::numeric_limits<std::uint64_t>::max();

/** Observer that records the block address of every LLC access. */
class LlcAccessRecorder : public cache::LlcObserver
{
  public:
    void
    onAccess(const cache::AccessInfo& info, bool, std::uint32_t,
             int) override
    {
        sequence_.push_back(blockAddr(info.addr));
    }

    const std::vector<Addr>& sequence() const { return sequence_; }

  private:
    std::vector<Addr> sequence_;
};

/**
 * For each position i of an access sequence, the position of the next
 * access to the same block (kNeverUsed if none).
 */
std::vector<std::uint64_t> computeNextUse(const std::vector<Addr>& seq);

/**
 * The MIN policy. Must observe exactly the same LLC access sequence
 * the next-use vector was computed from.
 */
class MinPolicy : public cache::LlcPolicy
{
  public:
    MinPolicy(const cache::CacheGeometry& geom,
              std::vector<std::uint64_t> next_use);

    std::string name() const override { return "MIN"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    void onMiss(const cache::AccessInfo& info, std::uint32_t set) override;
    bool shouldBypass(const cache::AccessInfo& info,
                      std::uint32_t set) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;

    /** Accesses consumed so far (for stream-alignment checks). */
    std::uint64_t consumed() const { return seq_; }

  private:
    std::uint64_t takeNextUse();

    std::uint32_t ways_;
    std::vector<std::uint64_t> nextUse_;
    std::uint64_t seq_ = 0;
    std::uint64_t pendingNextUse_ = kNeverUsed;
    // Per-block bookkeeping of the next reference of resident blocks.
    std::vector<std::uint64_t> blockNextUse_;
    std::vector<std::uint8_t> valid_;
};

} // namespace mrp::policy

#endif // MRP_POLICY_MIN_HPP
