/**
 * @file
 * Sampling Dead Block Prediction (Khan, Tian, Jiménez — MICRO 2010).
 *
 * A decoupled sampler of partial-tag LRU sets records, per block, the
 * PC that last touched it. A sampler hit means the previous toucher
 * was *not* a last touch (train toward live); a sampler eviction means
 * it *was* (train toward dead). Predictions sum three skewed tables of
 * 2-bit counters indexed by independent hashes of the current PC. The
 * policy uses predictions for replacement (evict predicted-dead blocks
 * first) and bypass, as in the original paper.
 */

#ifndef MRP_POLICY_SDBP_HPP
#define MRP_POLICY_SDBP_HPP

#include <memory>
#include <vector>

#include "cache/llc_policy.hpp"
#include "policy/lru.hpp"
#include "policy/reuse_predictor.hpp"
#include "policy/sampling.hpp"
#include "util/sat_counter.hpp"

namespace mrp::policy {

/** SDBP sizing and thresholds. */
struct SdbpConfig
{
    std::uint32_t sampledSetsPerCore = 64;
    std::uint32_t samplerAssoc = 12;   //!< reduced vs the LLC's 16
    std::uint32_t tableEntries = 4096; //!< per skewed table
    unsigned tables = 3;
    unsigned counterBits = 2;
    int deadThreshold = 8; //!< sum >= threshold => dead (max sum 9)
};

/** The SDBP confidence estimator (usable standalone for ROC probes). */
class SdbpPredictor : public ReusePredictor
{
  public:
    SdbpPredictor(const cache::CacheGeometry& llc_geom, unsigned cores,
                  const SdbpConfig& cfg = SdbpConfig{});

    std::string name() const override { return "SDBP"; }
    int observe(const cache::AccessInfo& info, std::uint32_t set,
                bool hit) override;
    int minConfidence() const override { return 0; }
    int maxConfidence() const override;

    /** Confidence for a PC without training (pure lookup). */
    int predict(Pc pc) const;

    bool isDead(int confidence) const
    {
        return confidence >= cfg_.deadThreshold;
    }

    const SdbpConfig& config() const { return cfg_; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        Pc lastPc = 0;
    };

    void train(Pc pc, bool dead);

    SdbpConfig cfg_;
    SetSampling sampling_;
    std::vector<std::vector<Entry>> samplerSets_; // MRU-first order
    std::vector<std::vector<SatCounter>> tables_;
};

/** SDBP-driven LLC replacement-and-bypass policy. */
class SdbpPolicy : public cache::LlcPolicy
{
  public:
    SdbpPolicy(const cache::CacheGeometry& geom, unsigned cores,
               const SdbpConfig& cfg = SdbpConfig{});

    std::string name() const override { return "SDBP"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    void onMiss(const cache::AccessInfo& info, std::uint32_t set) override;
    bool shouldBypass(const cache::AccessInfo& info,
                      std::uint32_t set) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;

    SdbpPredictor& predictor() { return predictor_; }

  private:
    SdbpPredictor predictor_;
    LruPolicy lru_;
    std::uint32_t ways_;
    std::vector<std::uint8_t> deadBit_;
    int lastConfidence_ = 0; //!< prediction for the in-flight miss
};

} // namespace mrp::policy

#endif // MRP_POLICY_SDBP_HPP
