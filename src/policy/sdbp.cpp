#include "policy/sdbp.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mrp::policy {

SdbpPredictor::SdbpPredictor(const cache::CacheGeometry& llc_geom,
                             unsigned cores, const SdbpConfig& cfg)
    : cfg_(cfg),
      sampling_(llc_geom.sets(),
                std::min(cfg.sampledSetsPerCore * cores,
                         llc_geom.sets())),
      samplerSets_(sampling_.sampledSets())
{
    for (auto& s : samplerSets_)
        s.resize(cfg_.samplerAssoc);
    tables_.resize(cfg_.tables);
    for (auto& t : tables_)
        t.assign(cfg_.tableEntries, SatCounter(cfg_.counterBits, 0));
}

int
SdbpPredictor::maxConfidence() const
{
    return static_cast<int>(cfg_.tables *
                            ((1u << cfg_.counterBits) - 1));
}

int
SdbpPredictor::predict(Pc pc) const
{
    int sum = 0;
    for (unsigned i = 0; i < cfg_.tables; ++i)
        sum += static_cast<int>(
            tables_[i][skewedHash(pc, i) % cfg_.tableEntries].value());
    return sum;
}

void
SdbpPredictor::train(Pc pc, bool dead)
{
    for (unsigned i = 0; i < cfg_.tables; ++i) {
        SatCounter& c = tables_[i][skewedHash(pc, i) % cfg_.tableEntries];
        if (dead)
            c.increment();
        else
            c.decrement();
    }
}

int
SdbpPredictor::observe(const cache::AccessInfo& info, std::uint32_t set,
                       bool hit)
{
    (void)hit;
    if (info.type == cache::AccessType::Writeback)
        return 0;

    if (sampling_.sampled(set)) {
        auto& sset = samplerSets_[sampling_.samplerSetOf(set)];
        const std::uint16_t tag = SetSampling::partialTag(info.addr);
        // Linear search in MRU-first order.
        std::size_t pos = sset.size();
        for (std::size_t i = 0; i < sset.size(); ++i) {
            if (sset[i].valid && sset[i].tag == tag) {
                pos = i;
                break;
            }
        }
        if (pos < sset.size()) {
            // Sampler hit: the previous toucher was not a last touch.
            train(sset[pos].lastPc, /*dead=*/false);
            Entry e = sset[pos];
            e.lastPc = info.pc;
            sset.erase(sset.begin() + static_cast<long>(pos));
            sset.insert(sset.begin(), e);
        } else {
            // Sampler miss: evict the LRU entry; its last toucher was
            // a last touch.
            const Entry& victim = sset.back();
            if (victim.valid)
                train(victim.lastPc, /*dead=*/true);
            sset.pop_back();
            Entry e;
            e.valid = true;
            e.tag = tag;
            e.lastPc = info.pc;
            sset.insert(sset.begin(), e);
        }
    }
    return predict(info.pc);
}

SdbpPolicy::SdbpPolicy(const cache::CacheGeometry& geom, unsigned cores,
                       const SdbpConfig& cfg)
    : predictor_(geom, cores, cfg), lru_(geom), ways_(geom.ways()),
      deadBit_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0)
{
}

void
SdbpPolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                  std::uint32_t way)
{
    if (info.type == cache::AccessType::Writeback)
        return;
    const int conf = predictor_.observe(info, set, true);
    deadBit_[static_cast<std::size_t>(set) * ways_ + way] =
        predictor_.isDead(conf) ? 1 : 0;
    lru_.onHit(info, set, way);
}

void
SdbpPolicy::onMiss(const cache::AccessInfo& info, std::uint32_t set)
{
    if (info.type == cache::AccessType::Writeback) {
        lastConfidence_ = 0;
        return;
    }
    lastConfidence_ = predictor_.observe(info, set, false);
}

bool
SdbpPolicy::shouldBypass(const cache::AccessInfo& info, std::uint32_t)
{
    // Dirty data must be kept; everything else predicted dead on
    // arrival skips allocation (the original SDBP optimization).
    if (info.type == cache::AccessType::Writeback)
        return false;
    return predictor_.isDead(lastConfidence_);
}

std::uint32_t
SdbpPolicy::victimWay(const cache::AccessInfo& info, std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (deadBit_[base + w])
            return w;
    return lru_.victimWay(info, set);
}

std::uint32_t
SdbpPolicy::victimWayIn(const cache::AccessInfo& info, std::uint32_t set,
                        cache::WayMask mask)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w)
        if ((mask >> w & 1) != 0 && deadBit_[base + w])
            return w;
    return lru_.victimWayIn(info, set, mask);
}

void
SdbpPolicy::onFill(const cache::AccessInfo& info, std::uint32_t set,
                   std::uint32_t way)
{
    deadBit_[static_cast<std::size_t>(set) * ways_ + way] =
        info.type != cache::AccessType::Writeback &&
                predictor_.isDead(lastConfidence_)
            ? 1
            : 0;
    lru_.onFill(info, set, way);
}

void
SdbpPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    deadBit_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

} // namespace mrp::policy
