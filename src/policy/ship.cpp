#include "policy/ship.hpp"

#include "util/hash.hpp"

namespace mrp::policy {

ShipPolicy::ShipPolicy(const cache::CacheGeometry& geom,
                       const ShipConfig& cfg)
    : cfg_(cfg), rrip_(geom, cfg.srrip),
      shct_(cfg.shctEntries,
            SatCounter(cfg.counterBits, 1)), // weakly reused
      ways_(geom.ways()),
      signature_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0),
      outcome_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0)
{
}

std::uint32_t
ShipPolicy::signatureOf(Pc pc) const
{
    return hashToIndex(pc, cfg_.shctEntries);
}

std::uint32_t
ShipPolicy::shctOf(Pc pc) const
{
    return shct_[signatureOf(pc)].value();
}

void
ShipPolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                  std::uint32_t way)
{
    if (info.type == cache::AccessType::Writeback)
        return;
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    if (!outcome_[idx]) {
        // First reuse of this fill: the inserting signature was right
        // to expect a hit.
        outcome_[idx] = 1;
        shct_[signature_[idx]].increment();
    }
    rrip_.onHit(info, set, way);
}

std::uint32_t
ShipPolicy::victimWay(const cache::AccessInfo& info, std::uint32_t set)
{
    return rrip_.victimWay(info, set);
}

std::uint32_t
ShipPolicy::victimWayIn(const cache::AccessInfo& info, std::uint32_t set,
                        cache::WayMask mask)
{
    return rrip_.victimWayIn(info, set, mask);
}

void
ShipPolicy::onFill(const cache::AccessInfo& info, std::uint32_t set,
                   std::uint32_t way)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    const std::uint32_t sig = signatureOf(info.pc);
    signature_[idx] = sig;
    outcome_[idx] = 0;
    // Zero counter => this signature's fills are never reused: insert
    // at the eviction point. Otherwise the SRRIP long interval.
    if (shct_[sig].value() == 0)
        rrip_.setRrpv(set, way, rrip_.maxRrpv());
    else
        rrip_.onFill(info, set, way);
}

void
ShipPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    if (!outcome_[idx])
        shct_[signature_[idx]].decrement();
    outcome_[idx] = 0;
}

} // namespace mrp::policy
