/**
 * @file
 * Common interface of block-reuse predictors.
 *
 * SDBP, Perceptron, and the multiperspective predictor all fit one
 * shape: they observe every LLC access (training themselves on the
 * sampled sets they maintain internally) and emit an integer
 * confidence that the accessed block is *dead* — will not be reused
 * before eviction. Policies threshold the confidence to drive bypass,
 * placement, and promotion; the ROC experiment (Fig. 1/8) records the
 * raw confidences against ground truth.
 */

#ifndef MRP_POLICY_REUSE_PREDICTOR_HPP
#define MRP_POLICY_REUSE_PREDICTOR_HPP

#include <cstdint>
#include <string>

#include "cache/access.hpp"

namespace mrp::policy {

/** A trainable dead-block confidence estimator. */
class ReusePredictor
{
  public:
    virtual ~ReusePredictor() = default;

    virtual std::string name() const = 0;

    /**
     * Observe one LLC access and return the dead confidence for it.
     * Called for every demand and prefetch access, in LLC access
     * order.
     *
     * @param info access metadata (PC, address, core, type, context)
     * @param set the LLC set index
     * @param hit whether the access hit in the real LLC
     */
    virtual int observe(const cache::AccessInfo& info, std::uint32_t set,
                        bool hit) = 0;

    /** Smallest confidence the predictor can emit. */
    virtual int minConfidence() const = 0;

    /** Largest confidence the predictor can emit. */
    virtual int maxConfidence() const = 0;
};

} // namespace mrp::policy

#endif // MRP_POLICY_REUSE_PREDICTOR_HPP
