/**
 * @file
 * Expected Hit Count replacement (Vakil-Ghahani et al., CAL 2018,
 * arXiv:1808.05024) — the shared-cache competitor baseline staged in
 * PAPERS.md for the multi-tenant campaigns.
 *
 * Each block counts the hits it has received since fill; a
 * PC-signature-indexed table remembers, as an EWMA trained at
 * eviction, how many hits blocks inserted by that signature tend to
 * collect over their lifetime. The victim is the block with the
 * fewest *expected remaining* hits (expected-per-lifetime minus
 * hits-so-far), tie-broken by oldest fill/touch stamp and then lowest
 * way so the choice is deterministic.
 */

#ifndef MRP_POLICY_EHC_HPP
#define MRP_POLICY_EHC_HPP

#include <vector>

#include "cache/llc_policy.hpp"

namespace mrp::policy {

/** EHC parameters. */
struct EhcConfig
{
    std::uint32_t tableEntries = 4096; //!< signature table size
    unsigned ewmaShift = 3;            //!< EWMA weight 1/2^shift
    unsigned fracBits = 4;             //!< fixed-point fraction bits
};

/** Expected-hit-count replacement policy. */
class EhcPolicy : public cache::LlcPolicy
{
  public:
    explicit EhcPolicy(const cache::CacheGeometry& geom,
                       const EhcConfig& cfg = EhcConfig{});

    std::string name() const override { return "EHC"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;

    /** Expected lifetime hits for @p pc, in fixed point (tests). */
    std::uint32_t expectedHitsOf(Pc pc) const;

  private:
    struct BlockState
    {
        std::uint32_t signature = 0;
        std::uint32_t hits = 0;
        std::uint64_t stamp = 0;
    };

    std::uint32_t signatureOf(Pc pc) const;
    /** Expected remaining hits of a block, in fixed point. */
    std::int64_t remainingOf(const BlockState& b) const;

    EhcConfig cfg_;
    std::uint32_t ways_;
    std::vector<BlockState> blocks_;
    std::vector<std::uint32_t> table_; //!< fixed-point expected hits
    std::uint64_t clock_ = 0;
};

} // namespace mrp::policy

#endif // MRP_POLICY_EHC_HPP
