#include "policy/perceptron.hpp"

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace mrp::policy {

PerceptronPredictor::PerceptronPredictor(
    const cache::CacheGeometry& llc_geom, unsigned cores,
    const PerceptronConfig& cfg)
    : cfg_(cfg), weightMin_(-(1 << (cfg.weightBits - 1))),
      weightMax_((1 << (cfg.weightBits - 1)) - 1),
      sampling_(llc_geom.sets(),
                std::min(cfg.sampledSetsPerCore * cores,
                         llc_geom.sets())),
      samplerSets_(sampling_.sampledSets())
{
    for (auto& s : samplerSets_)
        s.resize(cfg_.samplerAssoc);
    for (auto& t : tables_)
        t.assign(kTableSize, SignedWeight(cfg_.weightBits, 0));
}

PerceptronPredictor::IndexVec
PerceptronPredictor::computeIndices(const cache::AccessInfo& info) const
{
    // Feature values from the MICRO 2016 paper: the current PC and the
    // three most recent memory-access PCs (each shifted right by its
    // history depth) and two shifts of the block address.
    std::array<std::uint64_t, kFeatures> values{};
    values[0] = info.pc >> 2;
    const Addr blk = blockAddr(info.addr);
    values[4] = blk >> 4;
    values[5] = blk >> 7;
    if (info.ctx) {
        values[1] = info.ctx->pcHistory.recent(0) >> 1;
        values[2] = info.ctx->pcHistory.recent(1) >> 2;
        values[3] = info.ctx->pcHistory.recent(2) >> 3;
    } else {
        values[1] = values[2] = values[3] = info.pc;
    }
    IndexVec idx{};
    for (unsigned f = 0; f < kFeatures; ++f)
        idx[f] = static_cast<std::uint8_t>(
            hashToIndex(values[f] + 0x9E37ull * f, kTableSize));
    return idx;
}

int
PerceptronPredictor::sumOf(const IndexVec& idx) const
{
    int sum = 0;
    for (unsigned f = 0; f < kFeatures; ++f)
        sum += tables_[f][idx[f]].value();
    return sum;
}

void
PerceptronPredictor::adjust(const IndexVec& idx, bool dead)
{
    for (unsigned f = 0; f < kFeatures; ++f) {
        if (dead)
            tables_[f][idx[f]].increment();
        else
            tables_[f][idx[f]].decrement();
    }
}

int
PerceptronPredictor::observe(const cache::AccessInfo& info,
                             std::uint32_t set, bool hit)
{
    (void)hit;
    if (info.type == cache::AccessType::Writeback)
        return 0;

    const IndexVec idx = computeIndices(info);
    const int yout = sumOf(idx);

    if (sampling_.sampled(set)) {
        auto& sset = samplerSets_[sampling_.samplerSetOf(set)];
        const std::uint16_t tag = SetSampling::partialTag(info.addr);
        std::size_t pos = sset.size();
        for (std::size_t i = 0; i < sset.size(); ++i) {
            if (sset[i].valid && sset[i].tag == tag) {
                pos = i;
                break;
            }
        }
        if (pos < sset.size()) {
            // Reuse observed: train toward live unless the stored
            // prediction was already confidently live.
            if (sset[pos].yout > -cfg_.trainingThreshold)
                adjust(sset[pos].indices, /*dead=*/false);
            Entry e = sset[pos];
            e.yout = static_cast<std::int16_t>(yout);
            e.indices = idx;
            sset.erase(sset.begin() + static_cast<long>(pos));
            sset.insert(sset.begin(), e);
        } else {
            // Eviction from the sampler: the victim died. Train toward
            // dead unless already confidently dead.
            const Entry& victim = sset.back();
            if (victim.valid && victim.yout < cfg_.trainingThreshold)
                adjust(victim.indices, /*dead=*/true);
            sset.pop_back();
            Entry e;
            e.valid = true;
            e.tag = tag;
            e.yout = static_cast<std::int16_t>(yout);
            e.indices = idx;
            sset.insert(sset.begin(), e);
        }
    }
    return yout;
}

PerceptronPolicy::PerceptronPolicy(const cache::CacheGeometry& geom,
                                   unsigned cores,
                                   const PerceptronConfig& cfg)
    : predictor_(geom, cores, cfg), lru_(geom), ways_(geom.ways()),
      deadBit_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0)
{
}

void
PerceptronPolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                        std::uint32_t way)
{
    if (info.type == cache::AccessType::Writeback)
        return;
    const int yout = predictor_.observe(info, set, true);
    deadBit_[static_cast<std::size_t>(set) * ways_ + way] =
        yout >= predictor_.config().deadThreshold ? 1 : 0;
    lru_.onHit(info, set, way);
}

void
PerceptronPolicy::onMiss(const cache::AccessInfo& info, std::uint32_t set)
{
    if (info.type == cache::AccessType::Writeback) {
        lastConfidence_ = 0;
        return;
    }
    lastConfidence_ = predictor_.observe(info, set, false);
}

bool
PerceptronPolicy::shouldBypass(const cache::AccessInfo& info,
                               std::uint32_t)
{
    if (info.type == cache::AccessType::Writeback)
        return false;
    return lastConfidence_ >= predictor_.config().bypassThreshold;
}

std::uint32_t
PerceptronPolicy::victimWay(const cache::AccessInfo& info,
                            std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (deadBit_[base + w])
            return w;
    return lru_.victimWay(info, set);
}

std::uint32_t
PerceptronPolicy::victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set, cache::WayMask mask)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w)
        if ((mask >> w & 1) != 0 && deadBit_[base + w])
            return w;
    return lru_.victimWayIn(info, set, mask);
}

void
PerceptronPolicy::onFill(const cache::AccessInfo& info, std::uint32_t set,
                         std::uint32_t way)
{
    deadBit_[static_cast<std::size_t>(set) * ways_ + way] =
        info.type != cache::AccessType::Writeback &&
                lastConfidence_ >= predictor_.config().deadThreshold
            ? 1
            : 0;
    lru_.onFill(info, set, way);
}

void
PerceptronPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    deadBit_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

} // namespace mrp::policy
