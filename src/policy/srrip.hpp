/**
 * @file
 * Re-Reference Interval Prediction policies: SRRIP and DRRIP
 * (Jaleel et al., ISCA 2010). SRRIP with 2-bit re-reference values is
 * the default replacement policy of the paper's multi-core MPPPB.
 */

#ifndef MRP_POLICY_SRRIP_HPP
#define MRP_POLICY_SRRIP_HPP

#include <vector>

#include "cache/llc_policy.hpp"
#include "util/rng.hpp"

namespace mrp::policy {

/** SRRIP parameters. */
struct SrripConfig
{
    unsigned bits = 2;        //!< RRPV width; max value = 2^bits - 1
    unsigned insertRrpv = 2;  //!< RRPV of newly inserted blocks ("long")
    unsigned hitRrpv = 0;     //!< RRPV after a hit ("near-immediate")
};

/**
 * Static RRIP. Exposes rrpv manipulation so MPPPB can reuse the
 * machinery as its multi-core substrate.
 */
class SrripPolicy : public cache::LlcPolicy
{
  public:
    SrripPolicy(const cache::CacheGeometry& geom,
                const SrripConfig& cfg = SrripConfig{});

    std::string name() const override { return "SRRIP"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;

    unsigned maxRrpv() const { return maxRrpv_; }
    unsigned rrpvOf(std::uint32_t set, std::uint32_t way) const;
    void setRrpv(std::uint32_t set, std::uint32_t way, unsigned v);

  protected:
    const SrripConfig& config() const { return cfg_; }

  private:
    SrripConfig cfg_;
    unsigned maxRrpv_;
    std::uint32_t ways_;
    std::vector<std::uint8_t> rrpv_;
};

/** DRRIP parameters. */
struct DrripConfig
{
    SrripConfig srrip{};
    unsigned duelingPeriod = 64; //!< one leader pair per this many sets
    unsigned pselBits = 10;
    unsigned bipEpsilonLog2 = 5; //!< BRRIP inserts "near" 1/32 of fills
};

/**
 * Dynamic RRIP: set-dueling between SRRIP insertion and bimodal
 * (BRRIP) insertion, following Jaleel et al. and Qureshi et al.'s
 * set-dueling monitors.
 */
class DrripPolicy : public cache::LlcPolicy
{
  public:
    DrripPolicy(const cache::CacheGeometry& geom,
                const DrripConfig& cfg = DrripConfig{},
                std::uint64_t seed = 7);

    std::string name() const override { return "DRRIP"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    void onMiss(const cache::AccessInfo& info, std::uint32_t set) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;

  private:
    enum class SetRole { Follower, SrripLeader, BrripLeader };
    SetRole roleOf(std::uint32_t set) const;

    DrripConfig cfg_;
    SrripPolicy rrip_;
    Rng rng_;
    int psel_ = 0;
    int pselMax_;
};

} // namespace mrp::policy

#endif // MRP_POLICY_SRRIP_HPP
