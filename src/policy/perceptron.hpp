/**
 * @file
 * Perceptron learning for reuse prediction (Teran, Wang, Jiménez —
 * MICRO 2016), the paper's strongest prior sampler-based technique.
 *
 * Six features — the current and three previous memory-access PCs
 * (each shifted by its depth) and two shifts of the block tag — index
 * six 256-entry tables of 6-bit weights. The summed weights are
 * thresholded for bypass and dead-block marking; training follows the
 * perceptron rule on sampler hits (decrement) and sampler evictions
 * (increment), gated by a training threshold.
 */

#ifndef MRP_POLICY_PERCEPTRON_HPP
#define MRP_POLICY_PERCEPTRON_HPP

#include <array>
#include <vector>

#include "cache/llc_policy.hpp"
#include "policy/lru.hpp"
#include "policy/reuse_predictor.hpp"
#include "policy/sampling.hpp"
#include "util/sat_counter.hpp"

namespace mrp::policy {

/** Perceptron reuse-prediction parameters. */
struct PerceptronConfig
{
    std::uint32_t sampledSetsPerCore = 64;
    std::uint32_t samplerAssoc = 16;
    unsigned weightBits = 6;
    int trainingThreshold = 35; //!< retrain while |yout| below this
    int bypassThreshold = 60;   //!< yout >= this on a miss => bypass
    int deadThreshold = 90;     //!< yout >= this => mark block dead
};

/** The perceptron confidence estimator. */
class PerceptronPredictor : public ReusePredictor
{
  public:
    static constexpr unsigned kFeatures = 6;
    static constexpr std::uint32_t kTableSize = 256;

    PerceptronPredictor(const cache::CacheGeometry& llc_geom,
                        unsigned cores,
                        const PerceptronConfig& cfg = PerceptronConfig{});

    std::string name() const override { return "Perceptron"; }
    int observe(const cache::AccessInfo& info, std::uint32_t set,
                bool hit) override;
    int minConfidence() const override
    {
        return static_cast<int>(kFeatures) * weightMin_;
    }
    int maxConfidence() const override
    {
        return static_cast<int>(kFeatures) * weightMax_;
    }

    const PerceptronConfig& config() const { return cfg_; }

  private:
    using IndexVec = std::array<std::uint8_t, kFeatures>;

    struct Entry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::int16_t yout = 0;
        IndexVec indices{};
    };

    IndexVec computeIndices(const cache::AccessInfo& info) const;
    int sumOf(const IndexVec& idx) const;
    void adjust(const IndexVec& idx, bool dead);

    PerceptronConfig cfg_;
    int weightMin_;
    int weightMax_;
    SetSampling sampling_;
    std::vector<std::vector<Entry>> samplerSets_; // MRU-first order
    std::array<std::vector<SignedWeight>, kFeatures> tables_;
};

/** Perceptron-driven replacement and bypass policy. */
class PerceptronPolicy : public cache::LlcPolicy
{
  public:
    PerceptronPolicy(const cache::CacheGeometry& geom, unsigned cores,
                     const PerceptronConfig& cfg = PerceptronConfig{});

    std::string name() const override { return "Perceptron"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    void onMiss(const cache::AccessInfo& info, std::uint32_t set) override;
    bool shouldBypass(const cache::AccessInfo& info,
                      std::uint32_t set) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void onEvict(std::uint32_t set, std::uint32_t way) override;

    PerceptronPredictor& predictor() { return predictor_; }

  private:
    PerceptronPredictor predictor_;
    LruPolicy lru_;
    std::uint32_t ways_;
    std::vector<std::uint8_t> deadBit_;
    int lastConfidence_ = 0;
};

} // namespace mrp::policy

#endif // MRP_POLICY_PERCEPTRON_HPP
