#include "policy/min.hpp"

#include <unordered_map>

#include "util/logging.hpp"

namespace mrp::policy {

std::vector<std::uint64_t>
computeNextUse(const std::vector<Addr>& seq)
{
    std::vector<std::uint64_t> next(seq.size(), kNeverUsed);
    std::unordered_map<Addr, std::uint64_t> last;
    last.reserve(seq.size() / 4 + 1);
    for (std::uint64_t i = seq.size(); i-- > 0;) {
        const auto it = last.find(seq[i]);
        if (it != last.end())
            next[i] = it->second;
        last[seq[i]] = i;
    }
    return next;
}

MinPolicy::MinPolicy(const cache::CacheGeometry& geom,
                     std::vector<std::uint64_t> next_use)
    : ways_(geom.ways()), nextUse_(std::move(next_use)),
      blockNextUse_(static_cast<std::size_t>(geom.sets()) * geom.ways(),
                    kNeverUsed),
      valid_(static_cast<std::size_t>(geom.sets()) * geom.ways(), 0)
{
}

std::uint64_t
MinPolicy::takeNextUse()
{
    fatalIf(seq_ >= nextUse_.size(),
            "MIN consumed more LLC accesses than were recorded; the "
            "recording pass and the MIN pass saw different streams");
    return nextUse_[seq_++];
}

void
MinPolicy::onHit(const cache::AccessInfo&, std::uint32_t set,
                 std::uint32_t way)
{
    blockNextUse_[static_cast<std::size_t>(set) * ways_ + way] =
        takeNextUse();
}

void
MinPolicy::onMiss(const cache::AccessInfo&, std::uint32_t)
{
    pendingNextUse_ = takeNextUse();
}

bool
MinPolicy::shouldBypass(const cache::AccessInfo&, std::uint32_t set)
{
    if (pendingNextUse_ == kNeverUsed)
        return true;
    // With a free way, allocation can displace nothing — never bypass.
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    bool full = true;
    std::uint64_t farthest = 0;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!valid_[base + w]) {
            full = false;
            break;
        }
        if (blockNextUse_[base + w] > farthest)
            farthest = blockNextUse_[base + w];
    }
    return full && pendingNextUse_ > farthest;
}

std::uint32_t
MinPolicy::victimWay(const cache::AccessInfo&, std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = 0;
    for (std::uint32_t w = 1; w < ways_; ++w)
        if (blockNextUse_[base + w] > blockNextUse_[base + victim])
            victim = w;
    return victim;
}

void
MinPolicy::onFill(const cache::AccessInfo&, std::uint32_t set,
                  std::uint32_t way)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    blockNextUse_[idx] = pendingNextUse_;
    valid_[idx] = 1;
}

void
MinPolicy::onEvict(std::uint32_t set, std::uint32_t way)
{
    const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
    valid_[idx] = 0;
    blockNextUse_[idx] = kNeverUsed;
}

} // namespace mrp::policy
