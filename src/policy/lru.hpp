/**
 * @file
 * True-LRU and Random LLC policies (baselines).
 */

#ifndef MRP_POLICY_LRU_HPP
#define MRP_POLICY_LRU_HPP

#include <vector>

#include "cache/llc_policy.hpp"
#include "util/rng.hpp"

namespace mrp::policy {

/** True least-recently-used replacement; the paper's baseline. */
class LruPolicy : public cache::LlcPolicy
{
  public:
    explicit LruPolicy(const cache::CacheGeometry& geom);

    std::string name() const override { return "LRU"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;

    /** Recency rank of a way: 0 = MRU .. ways-1 = LRU. */
    std::uint32_t rankOf(std::uint32_t set, std::uint32_t way) const;

  private:
    void touch(std::uint32_t set, std::uint32_t way);

    std::uint32_t ways_;
    std::vector<std::uint64_t> stamps_;
    std::uint64_t clock_ = 0;
};

/** Uniform-random victim selection (testing/reference baseline). */
class RandomPolicy : public cache::LlcPolicy
{
  public:
    RandomPolicy(const cache::CacheGeometry& geom,
                 std::uint64_t seed = 12345);

    std::string name() const override { return "Random"; }
    void onHit(const cache::AccessInfo&, std::uint32_t,
               std::uint32_t) override
    {
    }
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo&, std::uint32_t,
                std::uint32_t) override
    {
    }

  private:
    std::uint32_t ways_;
    Rng rng_;
};

} // namespace mrp::policy

#endif // MRP_POLICY_LRU_HPP
