/**
 * @file
 * Span context of the fleet observability layer: the identifiers
 * that correlate broker and worker events across process boundaries.
 *
 * Every study gets one trace id (derived from the first batch
 * fingerprint, so it is deterministic for a given study) and every
 * lease gets a span id derived from (trace, batch, job, attempt) —
 * re-leases of a requeued job are distinct spans of the same trace.
 * Both ride the queue wire protocol (queue/wire.hpp, schema v2) as
 * fixed-width lowercase hex so the line codecs stay trivially
 * parseable.
 *
 * Ids are derived, not random: the observability layer must never
 * perturb the determinism contract, and derived ids make merged
 * traces reproducible enough to golden-test.
 */

#ifndef MRP_OBS_SPAN_HPP
#define MRP_OBS_SPAN_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mrp::obs {

/** The pair a JOB line carries; HB/RESULT/OBS echo only the span. */
struct SpanContext
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
};

/** Fixed-width (16 digit) lowercase hex of an id. */
std::string hex16(std::uint64_t v);

/** Inverse of hex16; nullopt unless exactly 16 lowercase hex
 * digits. */
std::optional<std::uint64_t> parseHex16(std::string_view s);

/** Trace id of a study, derived from its batch fingerprint text.
 * Never zero (zero is the "no context" sentinel). */
std::uint64_t deriveTraceId(std::string_view fingerprint);

/** Span id of one lease. @p batch disambiguates executor batches of
 * one study (generations can repeat a job-id space); @p attempt makes
 * re-leases distinct spans. Never zero. */
std::uint64_t deriveSpanId(std::uint64_t trace_id,
                           std::uint64_t batch,
                           std::uint64_t job_id, unsigned attempt);

} // namespace mrp::obs

#endif // MRP_OBS_SPAN_HPP
