#include "obs/payload.hpp"

#include "prof/export.hpp"
#include "telemetry/export.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::obs {

namespace {

/** Collapse the pretty writers' newline+indent whitespace so the
 * embedded documents fit one wire line. Only inter-token layout is
 * touched: in-string newlines are always escaped by the writers. */
std::string
singleLine(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '\n') {
            while (i + 1 < text.size() && text[i + 1] == ' ')
                ++i;
            continue;
        }
        out += text[i];
    }
    return out;
}

} // namespace

std::string
workerObsJson(const WorkerRunObs& o)
{
    std::string out = "{" + json::key("label") + json::str(o.label);
    out += ", " + json::key("wallSeconds") +
           json::formatDouble(o.wallSeconds);
    out += ", " + json::key("accesses") + std::to_string(o.accesses);
    out += ", " + json::key("truncated") +
           (o.truncated ? "true" : "false");
    if (o.metrics)
        out += ", " + json::key("metrics") +
               singleLine(telemetry::snapshotJson(*o.metrics, ""));
    if (o.phases)
        out += ", " + json::key("phases") +
               singleLine(prof::phaseTreeJson(*o.phases, 0));
    out += "}";
    return out;
}

WorkerRunObs
workerObsFromJson(const json::Value& v, const std::string& what)
{
    fatalIf(!v.isObject(), ErrorCode::CorruptInput,
            what + ": obs payload must be a JSON object");
    WorkerRunObs o;
    o.label =
        v.require("label", json::Value::Type::String, what).string;
    o.wallSeconds =
        v.require("wallSeconds", json::Value::Type::Number, what)
            .number;
    o.accesses =
        v.require("accesses", json::Value::Type::Number, what)
            .asU64();
    o.truncated =
        v.require("truncated", json::Value::Type::Bool, what).boolean;
    if (const auto* m = v.get("metrics"))
        o.metrics = telemetry::snapshotFromJson(*m, what);
    if (const auto* p = v.get("phases"))
        o.phases = prof::phaseTreeFromJson(*p, what);
    return o;
}

WorkerRunObs
workerObsFromJson(const std::string& text, const std::string& what)
{
    return workerObsFromJson(json::parseJson(text, what), what);
}

} // namespace mrp::obs
