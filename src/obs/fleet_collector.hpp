/**
 * @file
 * Broker-side aggregation of fleet observability: one FleetCollector
 * per study turns the broker's lease/heartbeat/result event stream
 * plus the workers' shipped OBS payloads into
 *
 *  - one merged Chrome trace_event timeline (traceJson): a process
 *    per worker slot, lease spans (lease -> heartbeats -> result) on
 *    thread 0, and the worker's mrp_prof phase tree nested inside
 *    each span on thread 1 — loadable in Perfetto/chrome://tracing;
 *  - fleet metrics (metricsJson): per-worker queue.* counters and
 *    queue.lease_latency_ms histograms plus throughput gauges
 *    (fleetSnapshot), and the sum/merge of every shipped worker
 *    telemetry snapshot (mergedWorkerSnapshot, semantics in
 *    telemetry::mergeInto);
 *  - straggler analytics (stragglerReport): workers whose median
 *    per-job service time deviates >= k * MAD from the fleet median.
 *
 * Counter mirroring contract: the broker calls requeued()/
 * leaseExpired()/workerRestarted()/requeueExhausted() at exactly the
 * call sites where it bumps its own queue.* counters, so the
 * per-worker sums in fleetSnapshot always equal the broker registry's
 * totals — the equality tools/fleet_trace_check enforces.
 *
 * The collector is observation-only: nothing it records feeds back
 * into scheduling, results, or reports, so study output stays
 * byte-identical whether a collector is attached or not. Timestamps
 * come from an injectable clock (FleetConfig::clock) so the merged
 * timeline can be golden-tested with a scripted time source.
 */

#ifndef MRP_OBS_FLEET_COLLECTOR_HPP
#define MRP_OBS_FLEET_COLLECTOR_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/payload.hpp"
#include "obs/span.hpp"
#include "telemetry/metrics.hpp"

namespace mrp::obs {

struct FleetConfig
{
    /** Monotonic seconds source; default counts from collector
     * construction (steady_clock). Tests inject a scripted clock. */
    std::function<double()> clock;
    /** Straggler threshold: flag a worker when its median service
     * time is at least k MADs from the fleet median. */
    double stragglerK = 3.5;
};

struct StragglerEntry
{
    unsigned worker = 0;
    std::uint64_t jobs = 0;
    double medianServiceMs = 0.0;
    /** |worker median - fleet median| / MAD (0 when MAD is 0). */
    double deviationMads = 0.0;
    bool flagged = false;
};

struct StragglerReport
{
    double k = 3.5;
    double fleetMedianMs = 0.0;
    double madMs = 0.0; //!< median absolute deviation of service times
    std::vector<StragglerEntry> workers;
};

class FleetCollector
{
  public:
    explicit FleetCollector(FleetConfig cfg = {});

    // --- recording (called by the broker) ---------------------------

    /** A new executor batch begins. The first call fixes the study
     * trace id from @p fingerprint; returns the 0-based batch
     * sequence number (the span-derivation salt). */
    std::uint64_t batchStarted(const std::string& fingerprint);

    /** Worker @p slot spawned at batch start. */
    void workerStarted(unsigned slot, std::uint64_t pid);

    /** Worker @p slot respawned after dying mid-batch (mirrors the
     * broker's queue.worker_restarts counter). */
    void workerRestarted(unsigned slot, std::uint64_t pid);

    /** Job @p job_id leased to @p slot as span @p span_id. */
    void leaseGranted(unsigned slot, std::uint64_t job_id,
                      std::uint64_t span_id, unsigned attempt,
                      const std::string& label);

    /** Heartbeat received for @p span_id. */
    void heartbeat(unsigned slot, std::uint64_t span_id);

    /** OBS payload received for @p span_id. */
    void workerObs(unsigned slot, std::uint64_t span_id,
                   WorkerRunObs obs);

    /**
     * Span closed. @p outcome is "ok", "error", "retryable_error"
     * (result received) or "lease_expired" (the holder died or hung
     * and the lease was revoked); @p reason carries the broker's
     * cause string ("heartbeat-timeout", "worker-exit") for the
     * trace annotation.
     */
    void spanClosed(unsigned slot, std::uint64_t span_id,
                    const std::string& outcome,
                    const std::string& reason = "");

    // --- counter mirrors (see file comment) -------------------------
    void requeued(unsigned slot);
    void leaseExpired(unsigned slot);
    void requeueExhausted(unsigned slot);

    std::uint64_t traceId() const { return trace_id_; }

    // --- export -----------------------------------------------------

    /** Per-worker queue.* counters, queue.lease_latency_ms.worker<i>
     * histograms, and queue.throughput_jobs_per_s.worker<i> gauges. */
    telemetry::Snapshot fleetSnapshot() const;

    /** Sum/merge (telemetry::mergeInto) of every shipped worker
     * telemetry snapshot. */
    telemetry::Snapshot mergedWorkerSnapshot() const;

    StragglerReport stragglerReport() const;

    /** The merged Chrome trace_event document (sorted, deterministic
     * for a deterministic clock). */
    std::string traceJson() const;

    /** The fleet metrics document; when @p broker_snapshot is given
     * it is embedded under "broker" so one file carries both sides of
     * the counter-sum equality. */
    std::string
    metricsJson(const telemetry::Snapshot* broker_snapshot) const;

    /** Human-readable straggler summary (one line per worker). */
    std::string stragglerText() const;

  private:
    struct Span
    {
        std::uint64_t spanId = 0;
        std::uint64_t jobId = 0;
        unsigned attempt = 0;
        unsigned worker = 0;
        std::string label;
        double startSeconds = 0.0;
        double endSeconds = 0.0;
        bool closed = false;
        std::vector<double> beats; //!< heartbeat arrival times
        std::string outcome;
        std::string reason;
        std::optional<WorkerRunObs> obs;
    };

    struct WorkerState
    {
        std::uint64_t pid = 0;
        std::vector<std::pair<double, std::uint64_t>> starts;
        std::uint64_t restarts = 0;
        std::uint64_t heartbeats = 0;
        std::uint64_t requeued = 0;
        std::uint64_t leaseExpired = 0;
        std::uint64_t requeueExhausted = 0;
        std::uint64_t jobsClosed = 0; //!< spans closed with a result
        std::vector<double> serviceMs; //!< result-closed spans only
        bool leased = false;
        double firstLease = 0.0;
        double lastClose = 0.0;
    };

    double now() const { return cfg_.clock(); }
    Span* openSpan(std::uint64_t span_id);
    WorkerState& worker(unsigned slot) { return workers_[slot]; }

    FleetConfig cfg_;
    std::uint64_t trace_id_ = 0;
    std::uint64_t batches_ = 0;
    std::vector<Span> spans_; //!< in lease-grant order
    std::map<std::uint64_t, std::size_t> open_; //!< spanId -> index
    std::map<unsigned, WorkerState> workers_;
};

} // namespace mrp::obs

#endif // MRP_OBS_FLEET_COLLECTOR_HPP
