#include "obs/span.hpp"

#include <cstdio>

#include "util/hash.hpp"

namespace mrp::obs {

std::string
hex16(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::optional<std::uint64_t>
parseHex16(std::string_view s)
{
    if (s.size() != 16)
        return std::nullopt;
    std::uint64_t v = 0;
    for (const char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return std::nullopt;
    }
    return v;
}

std::uint64_t
deriveTraceId(std::string_view fingerprint)
{
    // FNV-1a over the fingerprint text, finalized through mix64.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : fingerprint) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    h = mix64(h);
    return h ? h : 1;
}

std::uint64_t
deriveSpanId(std::uint64_t trace_id, std::uint64_t batch,
             std::uint64_t job_id, unsigned attempt)
{
    const std::uint64_t h = hashCombine(
        hashCombine(trace_id, batch),
        hashCombine(job_id, static_cast<std::uint64_t>(attempt)));
    return h ? h : 1;
}

} // namespace mrp::obs
