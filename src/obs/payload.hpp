/**
 * @file
 * The OBS wire payload: everything a worker ships about one executed
 * job beyond its deterministic result — the per-run telemetry
 * snapshot and the mrp_prof phase tree that previously died with the
 * worker process.
 *
 * The payload rides its own OBS line (queue/wire.hpp) directly
 * before the RESULT line, CRC-framed like every other framed message,
 * and is bounded worker-side: a payload whose serialization exceeds
 * the worker's --obs-max-bytes budget is replaced by a stub with
 * truncated=true so the broker still sees the span's scalar facts.
 * Keeping the RESULT payload untouched is what keeps study reports
 * byte-identical with fleet observability on or off.
 */

#ifndef MRP_OBS_PAYLOAD_HPP
#define MRP_OBS_PAYLOAD_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "prof/profiler.hpp"
#include "telemetry/metrics.hpp"
#include "util/json_reader.hpp"

namespace mrp::obs {

/** One job's shipped observability record. */
struct WorkerRunObs
{
    std::string label;
    double wallSeconds = 0.0;
    /** LLC accesses the telemetry session observed (0 for failed
     * runs, which produce no telemetry). */
    std::uint64_t accesses = 0;
    /** True when the full payload blew the size budget and only the
     * scalars survived. */
    bool truncated = false;
    /** Final registry snapshot of the run's telemetry session. */
    std::optional<telemetry::Snapshot> metrics;
    /** Root of the run's mrp_prof phase tree. */
    std::optional<prof::PhaseStat> phases;
};

/** Serialize one record as a single-line-friendly JSON document. */
std::string workerObsJson(const WorkerRunObs& o);

/** Inverse of workerObsJson; malformed input throws
 * FatalError(ErrorCode::CorruptInput). */
WorkerRunObs workerObsFromJson(const json::Value& v,
                               const std::string& what);

/** Convenience: parse text then workerObsFromJson. */
WorkerRunObs workerObsFromJson(const std::string& text,
                               const std::string& what);

} // namespace mrp::obs

#endif // MRP_OBS_PAYLOAD_HPP
