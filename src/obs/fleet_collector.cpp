#include "obs/fleet_collector.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "telemetry/export.hpp"
#include "util/json_writer.hpp"

namespace mrp::obs {

namespace {

/** Median of an unsorted sample (copy is sorted here); 0 if empty. */
double
medianOf(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t mid = xs.size() / 2;
    if (xs.size() % 2)
        return xs[mid];
    return (xs[mid - 1] + xs[mid]) / 2.0;
}

/** One sortable trace_event line; seq breaks ts/pid/tid ties with
 * emission order so the output is fully deterministic. */
struct Event
{
    double ts = 0.0;
    unsigned pid = 0;
    unsigned tid = 0;
    std::uint64_t seq = 0;
    std::string json;
};

std::string
eventHeader(const std::string& name, const std::string& cat,
            unsigned pid, unsigned tid, double ts_us, double dur_us)
{
    return "{" + json::key("name") + json::str(name) + ", " +
           json::key("cat") + json::str(cat) +
           ", \"ph\": \"X\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(tid) +
           ", \"ts\": " + json::formatDouble(ts_us) +
           ", \"dur\": " + json::formatDouble(dur_us);
}

/** Flame-graph layout of one phase subtree: a node spans its
 * inclusive time, children laid end to end from the node's start. */
void
emitPhases(const prof::PhaseStat& p, double start_us, unsigned pid,
           std::vector<Event>& events, std::uint64_t& seq)
{
    const double dur_us = p.inclusiveSeconds * 1e6;
    std::string e = eventHeader(p.label, "phase", pid, 1, start_us,
                                dur_us);
    e += ", " + json::key("args") + "{" + json::key("count") +
         std::to_string(p.count) + ", " +
         json::key("exclusiveSeconds") +
         json::formatDouble(p.exclusiveSeconds) + "}}";
    events.push_back({start_us, pid, 1, seq++, std::move(e)});
    double child_start = start_us;
    for (const auto& c : p.children) {
        emitPhases(c, child_start, pid, events, seq);
        child_start += c.inclusiveSeconds * 1e6;
    }
}

void
appendMeta(std::string& out, const std::string& metaName,
           unsigned pid, unsigned tid, const std::string& name,
           bool& first)
{
    out += first ? "" : ",\n";
    first = false;
    out += "{" + json::key("name") + json::str(metaName) +
           ", \"ph\": \"M\", \"pid\": " + std::to_string(pid) +
           ", \"tid\": " + std::to_string(tid) + ", " +
           json::key("args") + "{" + json::key("name") +
           json::str(name) + "}}";
}

} // namespace

FleetCollector::FleetCollector(FleetConfig cfg) : cfg_(std::move(cfg))
{
    if (!cfg_.clock) {
        const auto start = std::chrono::steady_clock::now();
        cfg_.clock = [start]() {
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        };
    }
}

std::uint64_t
FleetCollector::batchStarted(const std::string& fingerprint)
{
    if (trace_id_ == 0)
        trace_id_ = deriveTraceId(fingerprint);
    return batches_++;
}

void
FleetCollector::workerStarted(unsigned slot, std::uint64_t pid)
{
    WorkerState& w = worker(slot);
    w.pid = pid;
    w.starts.emplace_back(now(), pid);
}

void
FleetCollector::workerRestarted(unsigned slot, std::uint64_t pid)
{
    WorkerState& w = worker(slot);
    w.pid = pid;
    w.starts.emplace_back(now(), pid);
    ++w.restarts;
}

void
FleetCollector::leaseGranted(unsigned slot, std::uint64_t job_id,
                             std::uint64_t span_id, unsigned attempt,
                             const std::string& label)
{
    const double t = now();
    Span s;
    s.spanId = span_id;
    s.jobId = job_id;
    s.attempt = attempt;
    s.worker = slot;
    s.label = label;
    s.startSeconds = t;
    open_[span_id] = spans_.size();
    spans_.push_back(std::move(s));
    WorkerState& w = worker(slot);
    if (!w.leased) {
        w.leased = true;
        w.firstLease = t;
    }
}

FleetCollector::Span*
FleetCollector::openSpan(std::uint64_t span_id)
{
    const auto it = open_.find(span_id);
    return it == open_.end() ? nullptr : &spans_[it->second];
}

void
FleetCollector::heartbeat(unsigned slot, std::uint64_t span_id)
{
    if (Span* s = openSpan(span_id))
        s->beats.push_back(now());
    ++worker(slot).heartbeats;
}

void
FleetCollector::workerObs(unsigned slot, std::uint64_t span_id,
                          WorkerRunObs obs)
{
    (void)slot;
    if (Span* s = openSpan(span_id))
        s->obs = std::move(obs);
}

void
FleetCollector::spanClosed(unsigned slot, std::uint64_t span_id,
                           const std::string& outcome,
                           const std::string& reason)
{
    Span* s = openSpan(span_id);
    if (!s)
        return;
    const double t = now();
    s->closed = true;
    s->endSeconds = t;
    s->outcome = outcome;
    s->reason = reason;
    open_.erase(span_id);
    WorkerState& w = worker(slot);
    w.lastClose = t;
    if (outcome != "lease_expired") {
        ++w.jobsClosed;
        w.serviceMs.push_back((t - s->startSeconds) * 1e3);
    }
}

void
FleetCollector::requeued(unsigned slot)
{
    ++worker(slot).requeued;
}

void
FleetCollector::leaseExpired(unsigned slot)
{
    ++worker(slot).leaseExpired;
}

void
FleetCollector::requeueExhausted(unsigned slot)
{
    ++worker(slot).requeueExhausted;
}

telemetry::Snapshot
FleetCollector::fleetSnapshot() const
{
    using Kind = telemetry::MetricSnapshot::Kind;
    telemetry::Snapshot out;
    const auto add = [&](const std::string& name, Kind kind) {
        telemetry::MetricSnapshot m;
        m.name = name;
        m.kind = kind;
        out.metrics.push_back(std::move(m));
        return &out.metrics.back();
    };
    for (const auto& [slot, w] : workers_) {
        const std::string sfx = ".worker" + std::to_string(slot);
        add("queue.heartbeats" + sfx, Kind::Counter)->counter =
            w.heartbeats;
        add("queue.jobs" + sfx, Kind::Counter)->counter = w.jobsClosed;

        telemetry::Histogram h(telemetry::powerOfTwoBounds(14));
        for (const double ms : w.serviceMs)
            h.record(static_cast<std::int64_t>(ms));
        auto* lat = add("queue.lease_latency_ms" + sfx,
                        Kind::Histogram);
        lat->histogram.bounds = h.bounds();
        lat->histogram.counts.resize(h.bounds().size());
        for (std::size_t i = 0; i < h.bounds().size(); ++i)
            lat->histogram.counts[i] = h.bucketCount(i);
        lat->histogram.overflow = h.overflow();
        lat->histogram.total = h.total();
        lat->histogram.sum = h.sum();

        add("queue.lease_expired" + sfx, Kind::Counter)->counter =
            w.leaseExpired;
        add("queue.requeue_exhausted" + sfx, Kind::Counter)->counter =
            w.requeueExhausted;
        add("queue.requeued" + sfx, Kind::Counter)->counter =
            w.requeued;
        const double span = w.lastClose - w.firstLease;
        add("queue.throughput_jobs_per_s" + sfx, Kind::Gauge)->gauge =
            (w.leased && span > 0.0)
                ? static_cast<double>(w.jobsClosed) / span
                : 0.0;
        add("queue.worker_restarts" + sfx, Kind::Counter)->counter =
            w.restarts;
    }
    std::sort(out.metrics.begin(), out.metrics.end(),
              [](const telemetry::MetricSnapshot& a,
                 const telemetry::MetricSnapshot& b) {
                  return a.name < b.name;
              });
    return out;
}

telemetry::Snapshot
FleetCollector::mergedWorkerSnapshot() const
{
    telemetry::Snapshot out;
    for (const auto& s : spans_)
        if (s.obs && s.obs->metrics)
            telemetry::mergeInto(out, *s.obs->metrics);
    return out;
}

StragglerReport
FleetCollector::stragglerReport() const
{
    StragglerReport rep;
    rep.k = cfg_.stragglerK;
    std::vector<double> all;
    for (const auto& [slot, w] : workers_)
        all.insert(all.end(), w.serviceMs.begin(),
                   w.serviceMs.end());
    rep.fleetMedianMs = medianOf(all);
    std::vector<double> dev;
    dev.reserve(all.size());
    for (const double x : all)
        dev.push_back(std::fabs(x - rep.fleetMedianMs));
    rep.madMs = medianOf(std::move(dev));
    for (const auto& [slot, w] : workers_) {
        StragglerEntry e;
        e.worker = slot;
        e.jobs = w.jobsClosed;
        e.medianServiceMs = medianOf(w.serviceMs);
        if (rep.madMs > 0.0) {
            e.deviationMads =
                std::fabs(e.medianServiceMs - rep.fleetMedianMs) /
                rep.madMs;
            e.flagged = e.jobs > 0 && e.deviationMads >= rep.k;
        }
        rep.workers.push_back(e);
    }
    return rep;
}

std::string
FleetCollector::traceJson() const
{
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;

    // Metadata first, in slot order: one trace process per worker
    // slot (pid = slot + 1; OS pids go in the span args — a restarted
    // slot is still one timeline).
    for (const auto& [slot, w] : workers_) {
        const unsigned pid = slot + 1;
        appendMeta(out, "process_name", pid, 0,
                   "worker" + std::to_string(slot), first);
        appendMeta(out, "thread_name", pid, 0, "lease", first);
        appendMeta(out, "thread_name", pid, 1, "phases", first);
    }

    std::vector<Event> events;
    std::uint64_t seq = 0;
    for (const auto& s : spans_) {
        const unsigned pid = s.worker + 1;
        const double start_us = s.startSeconds * 1e6;
        // A span never closed by the broker (study aborted mid-lease)
        // ends at its last known event and is marked "open".
        double end = s.endSeconds;
        std::string outcome = s.outcome;
        if (!s.closed) {
            end = s.beats.empty() ? s.startSeconds : s.beats.back();
            outcome = "open";
        }
        std::string e = eventHeader(s.label, "lease", pid, 0,
                                    start_us,
                                    (end - s.startSeconds) * 1e6);
        e += ", " + json::key("args") + "{" + json::key("jobId") +
             std::to_string(s.jobId);
        e += ", " + json::key("attempt") + std::to_string(s.attempt);
        e += ", " + json::key("trace") + json::str(hex16(trace_id_));
        e += ", " + json::key("span") + json::str(hex16(s.spanId));
        e += ", " + json::key("heartbeats") +
             std::to_string(s.beats.size());
        e += ", " + json::key("outcome") + json::str(outcome);
        if (!s.reason.empty())
            e += ", " + json::key("reason") + json::str(s.reason);
        if (s.obs) {
            e += ", " + json::key("wallSeconds") +
                 json::formatDouble(s.obs->wallSeconds);
            e += ", " + json::key("accesses") +
                 std::to_string(s.obs->accesses);
            if (s.obs->truncated)
                e += ", " + json::key("truncated") + "true";
        }
        e += "}}";
        events.push_back({start_us, pid, 0, seq++, std::move(e)});

        for (const double b : s.beats) {
            const double ts = b * 1e6;
            std::string hb =
                "{" + json::key("name") + json::str("hb") + ", " +
                json::key("cat") + json::str("lease") +
                ", \"ph\": \"i\", \"s\": \"t\", \"pid\": " +
                std::to_string(pid) +
                ", \"tid\": 0, \"ts\": " + json::formatDouble(ts) +
                ", " + json::key("args") + "{" + json::key("span") +
                json::str(hex16(s.spanId)) + "}}";
            events.push_back({ts, pid, 0, seq++, std::move(hb)});
        }

        if (s.obs && s.obs->phases)
            emitPhases(*s.obs->phases, start_us, pid, events, seq);
    }

    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) {
                  if (a.ts != b.ts)
                      return a.ts < b.ts;
                  if (a.pid != b.pid)
                      return a.pid < b.pid;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.seq < b.seq;
              });
    for (auto& e : events) {
        out += first ? "" : ",\n";
        first = false;
        out += e.json;
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

std::string
FleetCollector::metricsJson(
    const telemetry::Snapshot* broker_snapshot) const
{
    const StragglerReport rep = stragglerReport();
    std::string out = "{\n";
    out += "  " + json::key("doc") + json::str("mrp-fleet-metrics-v1");
    out += ",\n  " + json::key("traceId") +
           json::str(hex16(trace_id_));
    out += ",\n  " + json::key("batches") + std::to_string(batches_);
    out += ",\n  " + json::key("spans") +
           std::to_string(spans_.size());
    out += ",\n  " + json::key("workers") +
           std::to_string(workers_.size());
    out += ",\n  " + json::key("fleet") +
           telemetry::snapshotJson(fleetSnapshot(), "  ");
    out += ",\n  " + json::key("workerRuns") +
           telemetry::snapshotJson(mergedWorkerSnapshot(), "  ");
    if (broker_snapshot)
        out += ",\n  " + json::key("broker") +
               telemetry::snapshotJson(*broker_snapshot, "  ");
    out += ",\n  " + json::key("stragglers") + "{\n";
    out += "    " + json::key("k") + json::formatDouble(rep.k);
    out += ",\n    " + json::key("fleetMedianMs") +
           json::formatDouble(rep.fleetMedianMs);
    out += ",\n    " + json::key("madMs") +
           json::formatDouble(rep.madMs);
    out += ",\n    " + json::key("workers") + "[";
    for (std::size_t i = 0; i < rep.workers.size(); ++i) {
        const StragglerEntry& e = rep.workers[i];
        out += i ? ",\n      " : "\n      ";
        out += "{" + json::key("worker") + std::to_string(e.worker);
        out += ", " + json::key("jobs") + std::to_string(e.jobs);
        out += ", " + json::key("medianServiceMs") +
               json::formatDouble(e.medianServiceMs);
        out += ", " + json::key("deviationMads") +
               json::formatDouble(e.deviationMads);
        out += ", " + json::key("flagged") +
               (e.flagged ? "true" : "false") + "}";
    }
    out += rep.workers.empty() ? "]" : "\n    ]";
    out += "\n  }\n}";
    return out;
}

std::string
FleetCollector::stragglerText() const
{
    const StragglerReport rep = stragglerReport();
    std::string out = "fleet service time: median " +
                      json::formatDouble(rep.fleetMedianMs) +
                      " ms, MAD " + json::formatDouble(rep.madMs) +
                      " ms, straggler threshold " +
                      json::formatDouble(rep.k) + " MADs\n";
    for (const auto& e : rep.workers) {
        out += "  worker" + std::to_string(e.worker) + ": " +
               std::to_string(e.jobs) + " job(s), median " +
               json::formatDouble(e.medianServiceMs) + " ms, " +
               json::formatDouble(e.deviationMads) + " MADs" +
               (e.flagged ? "  ** STRAGGLER **" : "") + "\n";
    }
    return out;
}

} // namespace mrp::obs
