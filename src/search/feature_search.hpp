/**
 * @file
 * Feature design-space exploration (paper §5): evaluate candidate sets
 * of 16 parameterized features by average MPKI on a training workload
 * list, seed with uniform random sets, and refine the best set with
 * the paper's hill-climbing moves (replace with a random feature,
 * duplicate another feature, or perturb one parameter).
 */

#ifndef MRP_SEARCH_FEATURE_SEARCH_HPP
#define MRP_SEARCH_FEATURE_SEARCH_HPP

#include <memory>
#include <vector>

#include "core/mpppb.hpp"
#include "sim/single_core.hpp"
#include "sweep/objective.hpp"
#include "trace/trace.hpp"

namespace mrp::search {

/** Exploration parameters. */
struct SearchConfig
{
    unsigned featuresPerSet = 16; //!< the paper settles on 16 (§5)
    std::vector<unsigned> workloads; //!< suite indices (training set)
    InstCount traceInstructions = 400000; //!< fast-sim trace length
    sim::SingleCoreConfig sim{};
    core::MpppbConfig baseConfig; //!< thresholds/substrate template
};

/** One evaluated candidate. */
struct Candidate
{
    std::vector<core::FeatureSpec> features;
    double averageMpki = 0.0;
};

/**
 * Evaluates feature sets by average MPKI over a fixed training
 * workload list. A thin shim over sweep::CorpusEvaluator — the sweep
 * subsystem's shared evaluation path — kept so existing callers and
 * the greedy searches below compile unchanged; traces are generated
 * once and reused, and candidates fan out on the ExperimentRunner.
 */
class FeatureSetEvaluator
{
  public:
    explicit FeatureSetEvaluator(const SearchConfig& cfg);

    /** Average LLC demand MPKI of MPPPB with @p features. */
    double averageMpki(const std::vector<core::FeatureSpec>& features);

    /** Average MPKI of plain LRU (upper reference line of Fig. 3). */
    double lruMpki();

    /** Average MPKI of MIN (lower reference line of Fig. 3). */
    double minMpki();

    std::size_t workloadCount() const;

    /** The underlying corpus evaluator (shared with sweep studies). */
    const std::shared_ptr<sweep::CorpusEvaluator>& corpus() const
    {
        return corpus_;
    }

  private:
    SearchConfig cfg_;
    std::shared_ptr<sweep::CorpusEvaluator> corpus_;
};

/**
 * Evaluate @p count uniformly random feature sets (§5.1-5.2).
 * @return candidates in evaluation order
 */
std::vector<Candidate> randomSearch(FeatureSetEvaluator& eval,
                                    const SearchConfig& cfg,
                                    unsigned count, std::uint64_t seed);

/**
 * Hill-climb from @p start for @p iterations proposals, keeping
 * improvements (§5.1).
 * @return the best candidate found
 */
Candidate hillClimb(FeatureSetEvaluator& eval, const SearchConfig& cfg,
                    const Candidate& start, unsigned iterations,
                    std::uint64_t seed);

} // namespace mrp::search

#endif // MRP_SEARCH_FEATURE_SEARCH_HPP
