/**
 * @file
 * Feature design-space exploration (paper §5): evaluate candidate sets
 * of 16 parameterized features by average MPKI on a training workload
 * list, seed with uniform random sets, and refine the best set with
 * the paper's hill-climbing moves (replace with a random feature,
 * duplicate another feature, or perturb one parameter).
 */

#ifndef MRP_SEARCH_FEATURE_SEARCH_HPP
#define MRP_SEARCH_FEATURE_SEARCH_HPP

#include <vector>

#include "core/mpppb.hpp"
#include "sim/single_core.hpp"
#include "trace/trace.hpp"

namespace mrp::search {

/** Exploration parameters. */
struct SearchConfig
{
    unsigned featuresPerSet = 16; //!< the paper settles on 16 (§5)
    std::vector<unsigned> workloads; //!< suite indices (training set)
    InstCount traceInstructions = 400000; //!< fast-sim trace length
    sim::SingleCoreConfig sim{};
    core::MpppbConfig baseConfig; //!< thresholds/substrate template
};

/** One evaluated candidate. */
struct Candidate
{
    std::vector<core::FeatureSpec> features;
    double averageMpki = 0.0;
};

/**
 * Evaluates feature sets by average MPKI over a fixed training
 * workload list; traces are generated once and reused.
 */
class FeatureSetEvaluator
{
  public:
    explicit FeatureSetEvaluator(const SearchConfig& cfg);

    /** Average LLC demand MPKI of MPPPB with @p features. */
    double averageMpki(const std::vector<core::FeatureSpec>& features);

    /** Average MPKI of plain LRU (upper reference line of Fig. 3). */
    double lruMpki();

    /** Average MPKI of MIN (lower reference line of Fig. 3). */
    double minMpki();

    std::size_t workloadCount() const { return traces_.size(); }

  private:
    SearchConfig cfg_;
    std::vector<trace::Trace> traces_;
};

/**
 * Evaluate @p count uniformly random feature sets (§5.1-5.2).
 * @return candidates in evaluation order
 */
std::vector<Candidate> randomSearch(FeatureSetEvaluator& eval,
                                    const SearchConfig& cfg,
                                    unsigned count, std::uint64_t seed);

/**
 * Hill-climb from @p start for @p iterations proposals, keeping
 * improvements (§5.1).
 * @return the best candidate found
 */
Candidate hillClimb(FeatureSetEvaluator& eval, const SearchConfig& cfg,
                    const Candidate& start, unsigned iterations,
                    std::uint64_t seed);

} // namespace mrp::search

#endif // MRP_SEARCH_FEATURE_SEARCH_HPP
