#include "search/feature_search.hpp"

#include "util/logging.hpp"
#include "util/math_util.hpp"

namespace mrp::search {

FeatureSetEvaluator::FeatureSetEvaluator(const SearchConfig& cfg)
    : cfg_(cfg)
{
    fatalIf(cfg.workloads.empty(), "search needs training workloads");
    sweep::CorpusConfig corpus;
    corpus.workloads = cfg.workloads;
    corpus.fullInstructions = cfg.traceInstructions;
    corpus.sim = cfg.sim;
    corpus_ = std::make_shared<sweep::CorpusEvaluator>(corpus);
}

double
FeatureSetEvaluator::averageMpki(
    const std::vector<core::FeatureSpec>& features)
{
    core::MpppbConfig mcfg = cfg_.baseConfig;
    mcfg.predictor.features = features;
    return mean(corpus_->mpppbMpkis(mcfg));
}

double
FeatureSetEvaluator::lruMpki()
{
    return mean(corpus_->policyMpkis("LRU"));
}

double
FeatureSetEvaluator::minMpki()
{
    return mean(corpus_->policyMpkis("MIN"));
}

std::size_t
FeatureSetEvaluator::workloadCount() const
{
    return corpus_->workloadCount();
}

std::vector<Candidate>
randomSearch(FeatureSetEvaluator& eval, const SearchConfig& cfg,
             unsigned count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Candidate> out;
    out.reserve(count);
    for (unsigned i = 0; i < count; ++i) {
        Candidate c;
        c.features.reserve(cfg.featuresPerSet);
        for (unsigned f = 0; f < cfg.featuresPerSet; ++f)
            c.features.push_back(core::FeatureSpec::random(rng));
        c.averageMpki = eval.averageMpki(c.features);
        out.push_back(std::move(c));
    }
    return out;
}

Candidate
hillClimb(FeatureSetEvaluator& eval, const SearchConfig& cfg,
          const Candidate& start, unsigned iterations, std::uint64_t seed)
{
    (void)cfg;
    Rng rng(seed);
    Candidate best = start;
    for (unsigned i = 0; i < iterations; ++i) {
        std::vector<core::FeatureSpec> trial = best.features;
        const std::size_t victim = rng.below(trial.size());
        switch (rng.below(3)) {
          case 0: // replace with a fresh random feature
            trial[victim] = core::FeatureSpec::random(rng);
            break;
          case 1: // replace with a copy of another feature
            trial[victim] = trial[rng.below(trial.size())];
            break;
          default: // perturb one parameter slightly
            trial[victim] = trial[victim].perturbed(rng);
            break;
        }
        const double mpki = eval.averageMpki(trial);
        if (mpki < best.averageMpki) {
            best.features = std::move(trial);
            best.averageMpki = mpki;
        }
    }
    return best;
}

} // namespace mrp::search
