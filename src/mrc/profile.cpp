#include "mrc/profile.hpp"

#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::mrc {

double
MrcProfile::missRatioAt(Addr bytes) const
{
    for (const auto& p : points)
        if (p.bytes == bytes)
            return p.missRatio;
    fatal(ErrorCode::Config,
          "capacity " + std::to_string(bytes) +
              " bytes was not profiled for '" + benchmark + "'");
}

namespace {

std::string
profileBody(const MrcProfile& p)
{
    std::string out = "{";
    out += json::key("schema") + json::str(kMrcSchema) + ", ";
    out += json::key("benchmark") + json::str(p.benchmark) + ", ";
    out += json::key("mode") + json::str(p.mode) + ", ";
    out += json::key("instructions") + std::to_string(p.instructions) +
           ", ";
    out += json::key("demandSamples") +
           std::to_string(p.demandSamples) + ", ";
    out += json::key("sampledSamples") +
           std::to_string(p.sampledSamples) + ", ";
    out += json::key("coldSamples") + std::to_string(p.coldSamples) +
           ", ";
    out += json::key("samplingRate") +
           json::formatDouble(p.samplingRate) + ", ";
    out += json::key("maxSamples") + std::to_string(p.maxSamples) +
           ", ";
    out += json::key("samplerPeakOccupancy") +
           std::to_string(p.samplerPeakOccupancy) + ", ";
    out += json::key("samplerEvictions") +
           std::to_string(p.samplerEvictions) + ", ";
    out += json::key("points") + "[";
    for (std::size_t i = 0; i < p.points.size(); ++i) {
        if (i)
            out += ", ";
        out += "{" + json::key("bytes") +
               std::to_string(p.points[i].bytes) + ", " +
               json::key("missRatio") +
               json::formatDouble(p.points[i].missRatio) + "}";
    }
    out += "]}";
    return out;
}

} // namespace

std::string
MrcProfile::toJson() const
{
    return profileBody(*this) + "\n";
}

std::string
corpusJson(const std::vector<MrcProfile>& profiles)
{
    std::string out = "{" + json::key("schema") + json::str(kMrcSchema) +
                      ", " + json::key("profiles") + "[";
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        if (i)
            out += ", ";
        out += profileBody(profiles[i]);
    }
    out += "]}\n";
    return out;
}

} // namespace mrp::mrc
