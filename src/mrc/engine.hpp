/**
 * @file
 * One-pass miss-ratio-curve construction over a trace::TraceSource.
 *
 * The engine replays the paper's functional L1/L2 path exactly — the
 * same BasicCache types, fill order, and dirty-victim writebacks as
 * cache::Hierarchy::access with prefetching off — but replaces the
 * LLC with an LRU stack model: every LLC demand access records its
 * stack distance (writeback accesses update recency without being
 * counted, mirroring how demand MPKI is defined), and one pass yields
 * the demand miss ratio at EVERY power-of-two capacity at once,
 * because a fully associative LRU cache of C blocks misses exactly
 * when the stack distance is >= C.
 *
 * Three accounting modes:
 *  - Exact: Olken-style tree, O(unique blocks) memory.
 *  - Shards (fixed-rate): hash-threshold spatial sampling at rate
 *    2^-rateLog2; sampled distances are rate-corrected (d / rate).
 *  - ShardsAdj (fixed-size): at most maxSamples tracked blocks with a
 *    self-lowering threshold — bounded memory for arbitrarily large
 *    corpora.
 *  Both sampled modes apply the SHARDS_adj expected-minus-actual
 *  correction (N * rate_final - N_sampled added to the smallest
 *  distance bucket), which removes most of the small-sample bias.
 *
 * Warmup mirrors sim::runSingleCore: cache and stack state are built
 * from the whole trace, but only accesses after warmupFraction of the
 * instructions are counted — so profiles are comparable with measured
 * simulation windows.
 */

#ifndef MRP_MRC_ENGINE_HPP
#define MRP_MRC_ENGINE_HPP

#include <vector>

#include "cache/hierarchy.hpp"
#include "mrc/profile.hpp"
#include "telemetry/metrics.hpp"
#include "trace/spec.hpp"

namespace mrp::mrc {

enum class MrcMode {
    Exact,     //!< exact stack distances, O(unique blocks) memory
    Shards,    //!< fixed-rate spatial sampling
    ShardsAdj, //!< fixed-size sampling (bounded memory)
};

/** Parse "exact" | "shards" | "shards-adj"; throws
 * FatalError(Config) on anything else. */
MrcMode parseMrcMode(const std::string& name);
const char* mrcModeName(MrcMode mode);

struct MrcConfig
{
    /** Profiled LLC capacities in bytes; each must be a power-of-two
     * number of blocks. Empty = the default 16KB..8MB ladder. */
    std::vector<Addr> sizesBytes;
    /** L1/L2 filter sizing (llc* fields are ignored — the LLC is the
     * curve's free variable). */
    cache::HierarchyConfig hierarchy{};
    /** Fraction of the instructions warmed before counting; matches
     * sim::DriverConfig::warmupFraction. */
    double warmupFraction = 0.25;
    MrcMode mode = MrcMode::ShardsAdj;
    // Sampling rate 2^-rateLog2 (sampled modes). 1/16 keeps the
    // sampled population dense enough for the short synthetic traces;
    // multi-billion-reference traces tolerate far coarser rates.
    unsigned rateLog2 = 4;
    /** Tracked-block cap for ShardsAdj (must be > 0 in that mode). */
    std::size_t maxSamples = 8192;
    /**
     * Optional metrics sink: after the pass the engine publishes
     * construction gauges (mrc.sampler.peak_occupancy, mrc.sampler.
     * final_rate, mrc.sampler.evictions, mrc.stack.live_blocks,
     * mrc.demand_samples) so BENCH/telemetry artifacts capture
     * profiling cost. Never affects the profile bytes.
     */
    telemetry::MetricsRegistry* registry = nullptr;
};

/** The default profiled-capacity ladder: powers of two, 16KB..8MB. */
std::vector<Addr> defaultSizeLadder();

/** Consume @p source (from its current position; it is reset first)
 * and build the profile. Deterministic for any chunking or delivery
 * mode of the same record sequence. */
MrcProfile buildProfile(trace::TraceSource& source,
                        const MrcConfig& cfg);

/**
 * Profile every spec of @p corpus, `jobs` at a time (0 = hardware
 * concurrency). Results are in corpus order regardless of the worker
 * count, so serialized output is byte-identical at any --jobs.
 */
std::vector<MrcProfile>
profileCorpus(const std::vector<trace::TraceSpec>& corpus,
              const MrcConfig& cfg, unsigned jobs = 1,
              const trace::TraceSpec::OpenOptions& opts = {});

} // namespace mrp::mrc

#endif // MRP_MRC_ENGINE_HPP
