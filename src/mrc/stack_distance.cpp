#include "mrc/stack_distance.hpp"

#include <algorithm>

namespace mrp::mrc {

namespace {
constexpr std::size_t kInitialCapacity = 1024;
} // namespace

void
StackDistanceTracker::add(std::size_t slot, std::int64_t delta)
{
    for (std::size_t i = slot + 1; i < tree_.size(); i += i & (~i + 1))
        tree_[i] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(tree_[i]) + delta);
}

std::uint64_t
StackDistanceTracker::prefix(std::size_t n) const
{
    // Sum of presence flags over slots [0, n).
    std::uint64_t s = 0;
    for (std::size_t i = n; i > 0; i -= i & (~i + 1))
        s += tree_[i];
    return s;
}

void
StackDistanceTracker::rebuild(std::size_t capacity)
{
    // Compact live keys to a dense prefix, preserving recency order.
    std::vector<std::pair<std::size_t, std::uint64_t>> live;
    live.reserve(pos_.size());
    for (const auto& [key, slot] : pos_)
        live.emplace_back(slot, key);
    std::sort(live.begin(), live.end());
    tree_.assign(capacity + 1, 0);
    nextSlot_ = 0;
    for (const auto& [slot, key] : live) {
        (void)slot;
        pos_[key] = nextSlot_;
        add(nextSlot_, +1);
        ++nextSlot_;
    }
}

void
StackDistanceTracker::ensureSlot()
{
    if (tree_.size() <= 1)
        rebuild(kInitialCapacity);
    else if (nextSlot_ + 1 >= tree_.size())
        // Keep the slot array at least 2x the live count so appends
        // stay amortized O(1) even when nothing is ever evicted.
        rebuild(std::max(kInitialCapacity, 4 * pos_.size()));
}

std::uint64_t
StackDistanceTracker::touch(std::uint64_t key)
{
    std::uint64_t distance = kCold;
    const auto it = pos_.find(key);
    if (it != pos_.end()) {
        // Distinct keys above = live keys at slots greater than ours.
        // Remove the key before ensureSlot(): a compaction there
        // rebuilds the tree from pos_, so a half-moved key would be
        // counted twice.
        distance = pos_.size() - prefix(it->second + 1);
        add(it->second, -1);
        pos_.erase(it);
    }
    ensureSlot();
    const std::size_t top = nextSlot_++;
    add(top, +1);
    pos_.emplace(key, top);
    return distance;
}

void
StackDistanceTracker::erase(std::uint64_t key)
{
    const auto it = pos_.find(key);
    if (it == pos_.end())
        return;
    add(it->second, -1);
    pos_.erase(it);
}

} // namespace mrp::mrc
