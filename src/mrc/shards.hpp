/**
 * @file
 * SHARDS spatial sampling for miss-ratio-curve construction
 * (Waldspurger et al., FAST'15): a block is sampled iff
 * shardsHash(block) < threshold, so sampling is a deterministic
 * property of the block address — every access to a sampled block is
 * seen, which is what keeps sampled reuse distances meaningful.
 *
 * Two variants share this class:
 *  - fixed-rate: the threshold never moves; rate() is 2^-rateLog2 for
 *    the whole pass.
 *  - fixed-size (SHARDS_adj): at most maxSamples blocks are tracked.
 *    When a new block would exceed the cap, the tracked block with the
 *    LARGEST hash is evicted and the threshold drops to that hash, so
 *    the surviving set is exactly "every block with hash < T" for the
 *    new T — the subset property that makes the shrinking sample
 *    self-consistent.
 */

#ifndef MRP_MRC_SHARDS_HPP
#define MRP_MRC_SHARDS_HPP

#include <cstdint>
#include <queue>
#include <vector>

#include "util/hash.hpp"

namespace mrp::mrc {

class ShardsSampler
{
  public:
    /**
     * @param rate_log2 initial sampling rate 2^-rate_log2
     * @param max_samples cap on tracked blocks; 0 = unbounded
     *        (fixed-rate variant)
     */
    ShardsSampler(unsigned rate_log2, std::size_t max_samples);

    /** Is @p block_key sampled at the current threshold? Pure test —
     * call before touching the block's stack state. */
    bool
    keeps(std::uint64_t block_key) const
    {
        return shardsHash(block_key) < threshold_;
    }

    /**
     * Register a newly tracked block (first sampled touch). In the
     * fixed-size variant this may lower the threshold and evict
     * tracked blocks; the caller must erase every returned key from
     * its stack tracker. The new block itself may be among them.
     */
    std::vector<std::uint64_t> insert(std::uint64_t block_key);

    /** Effective sampling rate at the current threshold. */
    double
    rate() const
    {
        return static_cast<double>(threshold_) /
               static_cast<double>(kShardsModulus);
    }

    std::size_t occupancy() const { return tracked_; }
    std::size_t maxOccupancy() const { return maxTracked_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t maxSamples() const { return maxSamples_; }

  private:
    struct HeapEntry
    {
        std::uint64_t hash;
        std::uint64_t key;
        bool
        operator<(const HeapEntry& o) const
        {
            // Max-heap by hash; ties broken by key so eviction order
            // is deterministic even for colliding hashes.
            return hash != o.hash ? hash < o.hash : key < o.key;
        }
    };

    std::uint64_t threshold_;
    std::size_t maxSamples_;
    std::size_t tracked_ = 0;
    std::size_t maxTracked_ = 0;
    std::uint64_t evictions_ = 0;
    std::priority_queue<HeapEntry> heap_; //!< fixed-size variant only
};

} // namespace mrp::mrc

#endif // MRP_MRC_SHARDS_HPP
