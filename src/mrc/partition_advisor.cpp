#include "mrc/partition_advisor.hpp"

#include <algorithm>

#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::mrc {

namespace {

/** Knee of one curve: the smallest profiled capacity whose miss-ratio
 * reduction (from the smallest capacity) reaches @p fraction of the
 * total reduction the curve achieves. Flat curves (streaming tenants)
 * knee at the smallest capacity — they cannot convert ways to hits. */
TenantAdvice
kneeOf(const MrcProfile& p, const double fraction)
{
    fatalIf(p.points.empty(), ErrorCode::Config,
            "profile '" + p.benchmark + "' has no points");
    TenantAdvice a;
    a.benchmark = p.benchmark;
    const double base = p.points.front().missRatio;
    const double best = p.points.back().missRatio;
    const double achievable = base - best;
    a.kneeBytes = p.points.front().bytes;
    a.kneeMissRatio = base;
    if (achievable <= 0.0)
        return a;
    for (const auto& pt : p.points) {
        if (base - pt.missRatio >= fraction * achievable) {
            a.kneeBytes = pt.bytes;
            a.kneeMissRatio = pt.missRatio;
            return a;
        }
    }
    a.kneeBytes = p.points.back().bytes;
    a.kneeMissRatio = best;
    return a;
}

} // namespace

std::string
PartitionAdvice::partitionFlag() const
{
    std::string out;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        if (t)
            out += ",";
        out += std::to_string(tenants[t].ways);
    }
    return out;
}

std::string
PartitionAdvice::toJson(const PartitionAdvisorConfig& cfg) const
{
    std::string out = "{";
    out += json::key("llcBytes") + std::to_string(cfg.llcBytes) + ", ";
    out += json::key("llcWays") + std::to_string(cfg.llcWays) + ", ";
    out += json::key("kneeFraction") +
           json::formatDouble(cfg.kneeFraction) + ", ";
    out += json::key("partition") + json::str(partitionFlag()) + ", ";
    out += json::key("tenants") + "[";
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        const auto& a = tenants[t];
        if (t)
            out += ", ";
        out += "{" + json::key("benchmark") + json::str(a.benchmark);
        out += ", " + json::key("kneeBytes") +
               std::to_string(a.kneeBytes);
        out += ", " + json::key("kneeMissRatio") +
               json::formatDouble(a.kneeMissRatio);
        out += ", " + json::key("ways") + std::to_string(a.ways) + "}";
    }
    out += "]}\n";
    return out;
}

PartitionAdvice
suggestPartition(const std::vector<MrcProfile>& profiles,
                 const PartitionAdvisorConfig& cfg)
{
    fatalIf(profiles.empty(), ErrorCode::Config,
            "partition advisor needs at least one profile");
    const unsigned n = static_cast<unsigned>(profiles.size());
    fatalIf(cfg.llcWays == 0, ErrorCode::Config,
            "partition advisor needs --llc-ways > 0");
    fatalIf(cfg.minWays == 0, ErrorCode::Config,
            "minWays must be >= 1");
    fatalIf(n * cfg.minWays > cfg.llcWays, ErrorCode::Config,
            std::to_string(n) + " tenants at minWays " +
                std::to_string(cfg.minWays) + " exceed " +
                std::to_string(cfg.llcWays) + " LLC ways");

    PartitionAdvice advice;
    for (const auto& p : profiles)
        advice.tenants.push_back(kneeOf(p, cfg.kneeFraction));

    // Largest-remainder apportionment of the ways left after the
    // per-tenant floor, in proportion to knee capacity. Ties break to
    // the lowest tenant index, so the suggestion is deterministic.
    double total_knee = 0.0;
    for (const auto& a : advice.tenants)
        total_knee += static_cast<double>(a.kneeBytes);
    const unsigned spare = cfg.llcWays - n * cfg.minWays;
    std::vector<double> remainder(n, 0.0);
    unsigned assigned = 0;
    for (unsigned t = 0; t < n; ++t) {
        const double share =
            total_knee > 0.0
                ? static_cast<double>(advice.tenants[t].kneeBytes) /
                      total_knee
                : 1.0 / static_cast<double>(n);
        const double quota = share * static_cast<double>(spare);
        const unsigned whole = static_cast<unsigned>(quota);
        advice.tenants[t].ways = cfg.minWays + whole;
        remainder[t] = quota - static_cast<double>(whole);
        assigned += whole;
    }
    std::vector<unsigned> order(n);
    for (unsigned t = 0; t < n; ++t)
        order[t] = t;
    std::stable_sort(order.begin(), order.end(),
                     [&remainder](unsigned a, unsigned b) {
                         return remainder[a] > remainder[b];
                     });
    for (unsigned i = 0; assigned < spare; ++i, ++assigned)
        ++advice.tenants[order[i % n]].ways;
    return advice;
}

} // namespace mrp::mrc
