/**
 * @file
 * Knee-based way-partition advisor: turns one MRC profile per tenant
 * into a suggested LLC way split for the multi-tenant driver
 * (src/tenant/).
 *
 * The knee of a tenant's miss-ratio curve is the smallest profiled
 * capacity that already captures most of the achievable miss-ratio
 * reduction; capacity beyond it buys little. Splitting ways in
 * proportion to the knees gives cache-hungry tenants the capacity
 * they can convert into hits and stops streaming tenants from
 * hoarding ways they cannot use — the classic utility-based
 * partitioning argument, driven here by the one-pass MRC engine
 * instead of set-dueling hardware monitors.
 *
 * Determinism contract: the advice is a pure function of the profiles
 * and the knobs (largest-remainder rounding with lowest-index tie
 * break), so the emitted JSON is byte-stable across reruns and CI can
 * diff it.
 */

#ifndef MRP_MRC_PARTITION_ADVISOR_HPP
#define MRP_MRC_PARTITION_ADVISOR_HPP

#include <string>
#include <vector>

#include "mrc/profile.hpp"
#include "util/types.hpp"

namespace mrp::mrc {

struct PartitionAdvisorConfig
{
    /** Total LLC capacity the partition will carve up. */
    Addr llcBytes = 0;
    /** Total LLC ways to split (the sum of the suggestion). */
    unsigned llcWays = 0;
    /** Floor per tenant; the QoS controller uses the same floor. */
    unsigned minWays = 1;
    /** A tenant's knee captures this fraction of its achievable
     * miss-ratio reduction (base capacity -> largest capacity). */
    double kneeFraction = 0.9;
};

/** Advice for one tenant, in corpus order. */
struct TenantAdvice
{
    std::string benchmark;
    /** Smallest profiled capacity capturing kneeFraction of the
     * tenant's achievable miss-ratio reduction. */
    Addr kneeBytes = 0;
    /** Miss ratio the curve predicts at the knee. */
    double kneeMissRatio = 0.0;
    /** Suggested ways out of llcWays. */
    unsigned ways = 0;
};

struct PartitionAdvice
{
    std::vector<TenantAdvice> tenants;

    /** Comma-joined way counts — the exact value mrp_sim_cli's
     * --partition flag takes. */
    std::string partitionFlag() const;

    /** Deterministic JSON document, newline-terminated. */
    std::string toJson(const PartitionAdvisorConfig& cfg) const;
};

/**
 * Suggest a way split for @p profiles (one per tenant, in tenant
 * order) over an LLC of cfg.llcBytes / cfg.llcWays.
 *
 * Knees are converted to way shares by largest-remainder rounding
 * after reserving cfg.minWays per tenant; remainder ties break to the
 * lowest tenant index. Throws FatalError(Config) when the profiles
 * are empty, the geometry is degenerate, or minWays cannot be met.
 */
PartitionAdvice
suggestPartition(const std::vector<MrcProfile>& profiles,
                 const PartitionAdvisorConfig& cfg);

} // namespace mrp::mrc

#endif // MRP_MRC_PARTITION_ADVISOR_HPP
