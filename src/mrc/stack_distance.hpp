/**
 * @file
 * Exact LRU stack-distance tracking (Olken's algorithm) at bounded
 * memory: a Fenwick tree over time-ordered slots plus a key→slot map.
 *
 * touch(key) returns how many DISTINCT keys were touched since the
 * previous touch of `key` — the key's depth-minus-one in a true-LRU
 * stack — and moves the key to the top. A fully associative LRU cache
 * of capacity C blocks therefore hits exactly when the returned
 * distance d satisfies d < C, which is how one pass yields the miss
 * ratio at every capacity simultaneously.
 *
 * Memory is O(live keys): each touch appends a new top slot, and when
 * the slot array fills, the tracker compacts the live keys back to a
 * dense prefix (amortized O(1) slots per touch, O(log n) per
 * operation).
 */

#ifndef MRP_MRC_STACK_DISTANCE_HPP
#define MRP_MRC_STACK_DISTANCE_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mrp::mrc {

class StackDistanceTracker
{
  public:
    /** Returned for the first touch of a key. */
    static constexpr std::uint64_t kCold = ~0ull;

    /** Move @p key to the stack top; returns the number of distinct
     * keys above it (kCold on first touch). */
    std::uint64_t touch(std::uint64_t key);

    /** Forget @p key entirely (SHARDS fixed-size eviction); a later
     * touch is cold again. No-op if absent. */
    void erase(std::uint64_t key);

    /** Distinct keys currently tracked. */
    std::size_t liveKeys() const { return pos_.size(); }

  private:
    void ensureSlot();
    void rebuild(std::size_t capacity);
    void add(std::size_t slot, std::int64_t delta);
    std::uint64_t prefix(std::size_t n) const;

    /** Fenwick tree over slots: tree_ is 1-based, bit i covers the
     * presence flag of slot i-1. */
    std::vector<std::uint64_t> tree_;
    std::unordered_map<std::uint64_t, std::size_t> pos_;
    std::size_t nextSlot_ = 0;
};

} // namespace mrp::mrc

#endif // MRP_MRC_STACK_DISTANCE_HPP
