#include "mrc/shards.hpp"

#include "util/logging.hpp"

namespace mrp::mrc {

ShardsSampler::ShardsSampler(unsigned rate_log2,
                             std::size_t max_samples)
    : threshold_(kShardsModulus >> rate_log2),
      maxSamples_(max_samples)
{
    fatalIf(rate_log2 >= 24, ErrorCode::Config,
            "SHARDS rate log2 must be below 24 (the hash modulus)");
    fatalIf(threshold_ == 0, ErrorCode::Config,
            "SHARDS sampling rate underflows the hash modulus");
}

std::vector<std::uint64_t>
ShardsSampler::insert(std::uint64_t block_key)
{
    ++tracked_;
    if (maxSamples_ == 0) {
        maxTracked_ = std::max(maxTracked_, tracked_);
        return {};
    }
    heap_.push({shardsHash(block_key), block_key});
    std::vector<std::uint64_t> evicted;
    if (heap_.size() > maxSamples_) {
        // Evict the largest hash and lower the threshold to it; also
        // sweep any colliding entries at the same hash, so the subset
        // property "tracked iff hash < threshold" stays exact.
        const std::uint64_t h = heap_.top().hash;
        threshold_ = h;
        while (!heap_.empty() && heap_.top().hash == h) {
            evicted.push_back(heap_.top().key);
            heap_.pop();
            --tracked_;
            ++evictions_;
        }
    }
    maxTracked_ = std::max(maxTracked_, tracked_);
    return evicted;
}

} // namespace mrp::mrc
