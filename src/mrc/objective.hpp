/**
 * @file
 * The MRC engine's sweep adapter: a sampling-aware Objective that
 * turns SHARDS spatial sampling into successive halving's cheap rung.
 *
 * SampledRungObjective wraps the standard corpus-MPKI objective. A
 * candidate whose budget carries sweep::kSampledBudgetFlag (set by
 * HalvingStrategy rung 0 when Config::mrcRateLog2 > 0) is evaluated
 * on SHARDS-sampled traces (TraceSpec::sampled) against a hierarchy
 * scaled by the same rate — the SHARDS observation that a workload
 * sampled at rate R behaves on a cache of size R*C like the full
 * workload on C. Demand misses scale by ~R while instructions are
 * exact, so the raw sampled MPKI is ~R times the full one; score()
 * corrects by 1/R so fitnesses stay on one scale across rungs.
 *
 * The corrected sampled fitness is additionally discounted by
 * kSampledFitnessDiscount (a uniform positive factor, so rung-internal
 * ranking is untouched) so the study's global best — and hence the
 * report's "best" block — is always decided by full-fidelity runs,
 * never by a lucky sampling estimate.
 */

#ifndef MRP_MRC_OBJECTIVE_HPP
#define MRP_MRC_OBJECTIVE_HPP

#include <memory>

#include "sweep/objective.hpp"

namespace mrp::mrc {

/** Multiplied into (negative) sampled fitnesses; > 1 keeps any
 * sampled estimate below its own full-fidelity fitness unless the
 * sampler underestimates MPKI by more than 20%. */
inline constexpr double kSampledFitnessDiscount = 1.25;

class SampledRungObjective : public sweep::Objective
{
  public:
    using Aggregate = sweep::CorpusMpkiObjective::Aggregate;

    SampledRungObjective(
        std::shared_ptr<sweep::CorpusEvaluator> evaluator,
        unsigned rate_log2,
        Aggregate aggregate = Aggregate::Geomean);

    std::string name() const override;
    std::vector<runner::RunRequest>
    requests(const core::MpppbConfig& cfg,
             InstCount budget_insts) override;
    sweep::Score score(
        const std::vector<const runner::RunResult*>& results) override;

    unsigned rateLog2() const { return rateLog2_; }

  private:
    std::shared_ptr<sweep::CorpusEvaluator> evaluator_;
    sweep::CorpusMpkiObjective full_;
    unsigned rateLog2_;
    Aggregate aggregate_;
};

} // namespace mrp::mrc

#endif // MRP_MRC_OBJECTIVE_HPP
