#include "mrc/objective.hpp"

#include <algorithm>

#include "sweep/strategy.hpp"
#include "trace/sampled_source.hpp"
#include "util/logging.hpp"
#include "util/math_util.hpp"

namespace mrp::mrc {

namespace {

/** The scaled-hierarchy validity check, per level. */
void
checkScaledLevel(const char* level, Addr bytes, std::uint32_t ways,
                 unsigned rate_log2)
{
    const Addr scaled = bytes >> rate_log2;
    fatalIf(scaled < static_cast<Addr>(ways) * kBlockBytes,
            ErrorCode::Config,
            std::string("sampled rung: ") + level + " (" +
                std::to_string(bytes) + " bytes, " +
                std::to_string(ways) + " ways) cannot scale by 2^-" +
                std::to_string(rate_log2) +
                " and keep one block per way");
}

} // namespace

SampledRungObjective::SampledRungObjective(
    std::shared_ptr<sweep::CorpusEvaluator> evaluator,
    unsigned rate_log2, Aggregate aggregate)
    : evaluator_(evaluator), full_(evaluator, aggregate),
      rateLog2_(rate_log2), aggregate_(aggregate)
{
    fatalIf(rateLog2_ == 0 || rateLog2_ >= 24, ErrorCode::Config,
            "sampled rung rate log2 must be in [1, 24)");
    const auto& h = evaluator_->config().sim.hierarchy;
    checkScaledLevel("L1", h.l1Bytes, h.l1Ways, rateLog2_);
    checkScaledLevel("L2", h.l2Bytes, h.l2Ways, rateLog2_);
    checkScaledLevel("LLC", h.llcBytes, h.llcWays, rateLog2_);
}

std::string
SampledRungObjective::name() const
{
    return full_.name() + "+mrc-rung-r" + std::to_string(rateLog2_);
}

std::vector<runner::RunRequest>
SampledRungObjective::requests(const core::MpppbConfig& cfg,
                               InstCount budget_insts)
{
    if ((budget_insts & sweep::kSampledBudgetFlag) == 0)
        return full_.requests(cfg, budget_insts);
    const InstCount budget =
        budget_insts & ~sweep::kSampledBudgetFlag;
    const auto& ts = evaluator_->specs(budget);
    const auto spec = runner::PolicySpec::mpppb(cfg);
    // The SHARDS scaling: sampled stream against a hierarchy shrunk by
    // the same rate. Every level stays a valid power-of-two geometry
    // (checked at construction).
    sim::SingleCoreConfig sim = evaluator_->config().sim;
    sim.hierarchy.l1Bytes >>= rateLog2_;
    sim.hierarchy.l2Bytes >>= rateLog2_;
    sim.hierarchy.llcBytes >>= rateLog2_;
    std::vector<runner::RunRequest> out;
    out.reserve(ts.size());
    for (const auto& t : ts) {
        out.push_back(runner::RunRequest::singleCore(
            trace::TraceSpec::sampled(t, rateLog2_), spec, sim));
        out.back().openOptions = evaluator_->config().openOptions;
    }
    return out;
}

sweep::Score
SampledRungObjective::score(
    const std::vector<const runner::RunResult*>& results)
{
    fatalIf(results.empty(), "scoring an empty result set");
    // requests() and score() may pair across cache hits or resume, so
    // sampled batches are recognized statelessly: every sampled spec's
    // benchmark name carries the "~s<rate>" marker.
    const std::string marker = std::string(trace::kSampledNameMarker) +
                               std::to_string(rateLog2_);
    if (!results.front()->benchmark.ends_with(marker))
        return full_.score(results);
    const double scale = static_cast<double>(InstCount{1} << rateLog2_);
    std::vector<double> mpkis;
    mpkis.reserve(results.size());
    for (const auto* r : results) {
        const double corrected = r->mpki * scale;
        mpkis.push_back(aggregate_ == Aggregate::Geomean
                            ? std::max(corrected,
                                       sweep::kGeomeanMpkiFloor)
                            : corrected);
    }
    const double agg = aggregate_ == Aggregate::Geomean
                           ? geomean(mpkis)
                           : mean(mpkis);
    return {-agg * kSampledFitnessDiscount, agg};
}

} // namespace mrp::mrc
