/**
 * @file
 * MrcProfile: the schema-versioned, deterministic JSON artifact one
 * miss-ratio-curve pass produces for one workload.
 *
 * Determinism contract: the profile is a pure function of the record
 * sequence and the MrcConfig — never of delivery mode, chunking,
 * --jobs, or wall clock — so its serialized bytes are comparable
 * across machines and reruns, and CI can diff them.
 */

#ifndef MRP_MRC_PROFILE_HPP
#define MRP_MRC_PROFILE_HPP

#include <string>
#include <vector>

#include "util/types.hpp"

namespace mrp::mrc {

/** Current schema tag written into every profile. */
inline constexpr const char* kMrcSchema = "mrp.mrc.v1";

/** One point of the curve: the modeled LLC capacity and the predicted
 * demand miss ratio at that capacity. */
struct MrcPoint
{
    Addr bytes = 0;
    double missRatio = 0.0;
};

struct MrcProfile
{
    std::string benchmark;
    std::string mode; //!< "exact" | "shards" | "shards-adj"
    /** Instructions in the measured (post-warmup) window. */
    InstCount instructions = 0;
    /** LLC demand accesses in the measured window (the full stream —
     * what a simulation's llcDemandAccesses reports). */
    std::uint64_t demandSamples = 0;
    /** Demand accesses that entered the sampled histogram (equals
     * demandSamples in exact mode). */
    std::uint64_t sampledSamples = 0;
    /** Sampled demand accesses that were the first touch of their
     * block (misses at every capacity). */
    std::uint64_t coldSamples = 0;
    /** Final effective sampling rate (1.0 in exact mode). */
    double samplingRate = 1.0;
    /** Fixed-size cap (0 = unbounded). */
    std::size_t maxSamples = 0;
    /** Peak tracked sampled blocks over the pass. */
    std::size_t samplerPeakOccupancy = 0;
    /** Blocks dropped by fixed-size threshold lowering. */
    std::uint64_t samplerEvictions = 0;
    /** Ascending by bytes; one per profiled capacity. */
    std::vector<MrcPoint> points;

    /** Miss ratio at @p bytes; throws FatalError(Config) if that
     * capacity was not profiled. */
    double missRatioAt(Addr bytes) const;

    /** Deterministic JSON (schema kMrcSchema), newline-terminated. */
    std::string toJson() const;
};

/** Deterministic JSON for a whole corpus of profiles, in input order:
 * `{"schema": ..., "profiles": [...]}`, newline-terminated. */
std::string corpusJson(const std::vector<MrcProfile>& profiles);

} // namespace mrp::mrc

#endif // MRP_MRC_PROFILE_HPP
