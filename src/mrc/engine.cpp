#include "mrc/engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <mutex>
#include <optional>
#include <thread>

#include "cache/basic_cache.hpp"
#include "mrc/shards.hpp"
#include "mrc/stack_distance.hpp"
#include "prof/profiler.hpp"
#include "stats/reuse_histogram.hpp"
#include "util/bitfield.hpp"
#include "util/logging.hpp"

namespace mrp::mrc {

MrcMode
parseMrcMode(const std::string& name)
{
    if (name == "exact")
        return MrcMode::Exact;
    if (name == "shards")
        return MrcMode::Shards;
    if (name == "shards-adj")
        return MrcMode::ShardsAdj;
    fatal(ErrorCode::Config,
          "unknown MRC mode '" + name +
              "' (want exact, shards, or shards-adj)");
}

const char*
mrcModeName(MrcMode mode)
{
    switch (mode) {
    case MrcMode::Exact: return "exact";
    case MrcMode::Shards: return "shards";
    case MrcMode::ShardsAdj: return "shards-adj";
    }
    fatal(ErrorCode::Internal, "unreachable MRC mode");
}

std::vector<Addr>
defaultSizeLadder()
{
    std::vector<Addr> sizes;
    for (Addr b = 16 * 1024; b <= 8 * 1024 * 1024; b *= 2)
        sizes.push_back(b);
    return sizes;
}

namespace {

/** Validated, ascending, deduplicated capacity list. */
std::vector<Addr>
normalizeSizes(const MrcConfig& cfg)
{
    std::vector<Addr> sizes =
        cfg.sizesBytes.empty() ? defaultSizeLadder() : cfg.sizesBytes;
    std::sort(sizes.begin(), sizes.end());
    sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
    for (const Addr bytes : sizes) {
        fatalIf(bytes < kBlockBytes ||
                    !isPowerOfTwo(bytes / kBlockBytes) ||
                    bytes % kBlockBytes != 0,
                ErrorCode::Config,
                "MRC capacity " + std::to_string(bytes) +
                    " bytes is not a power-of-two number of " +
                    std::to_string(kBlockBytes) + "-byte blocks");
    }
    return sizes;
}

} // namespace

MrcProfile
buildProfile(trace::TraceSource& source, const MrcConfig& cfg)
{
    MRP_PROF_SCOPE("mrc.build");
    const std::vector<Addr> sizes = normalizeSizes(cfg);
    fatalIf(cfg.warmupFraction < 0.0 || cfg.warmupFraction >= 1.0,
            ErrorCode::Config,
            "MRC warmup fraction must be in [0, 1)");
    const bool sampled = cfg.mode != MrcMode::Exact;
    fatalIf(cfg.mode == MrcMode::ShardsAdj && cfg.maxSamples == 0,
            ErrorCode::Config,
            "shards-adj needs a positive sample cap");

    // The same upper-level filter the simulator's Hierarchy applies
    // (prefetch off): the stack model must see the LLC's reference
    // stream, not the raw trace — with a 256KB L2 above a 128KB LLC
    // the two differ drastically.
    cache::BasicCache l1("L1D", cfg.hierarchy.l1Bytes,
                         cfg.hierarchy.l1Ways);
    cache::BasicCache l2("L2", cfg.hierarchy.l2Bytes,
                         cfg.hierarchy.l2Ways);
    StackDistanceTracker stack;
    std::optional<ShardsSampler> sampler;
    if (sampled)
        sampler.emplace(cfg.rateLog2, cfg.mode == MrcMode::ShardsAdj
                                          ? cfg.maxSamples
                                          : 0);
    stats::Log2Histogram hist;
    std::uint64_t cold = 0;          // sampled cold demand samples
    std::uint64_t demand = 0;        // all demand samples (full stream)
    std::uint64_t sampledDemand = 0; // demand samples in the histogram

    source.reset();
    const auto warmInsts = static_cast<InstCount>(
        static_cast<double>(source.instructions()) *
        cfg.warmupFraction);
    InstCount insts = 0;
    InstCount measuredInsts = 0;

    // One LLC-level touch: demand accesses are counted (when inside
    // the measured window), writeback accesses only refresh recency —
    // exactly how PolicyCache splits demand from writeback statistics.
    const auto llcTouch = [&](Addr block, bool is_demand,
                              bool measuring) {
        if (!sampled) {
            const std::uint64_t d = stack.touch(block);
            if (is_demand && measuring) {
                ++demand;
                ++sampledDemand;
                if (d == StackDistanceTracker::kCold)
                    ++cold;
                else
                    hist.record(d);
            }
            return;
        }
        if (is_demand && measuring)
            ++demand;
        if (!sampler->keeps(block))
            return;
        // Rate at access time: fixed-size thresholds only ever drop,
        // and a distance sampled at rate R estimates d/R full-stream
        // distinct blocks.
        const double rate = sampler->rate();
        const std::uint64_t d = stack.touch(block);
        if (d == StackDistanceTracker::kCold)
            for (const std::uint64_t evicted : sampler->insert(block))
                stack.erase(evicted);
        if (is_demand && measuring) {
            ++sampledDemand;
            if (d == StackDistanceTracker::kCold)
                ++cold;
            else
                hist.record(static_cast<std::uint64_t>(
                    std::llround(static_cast<double>(d) / rate)));
        }
    };

    for (auto chunk = source.nextChunk(); !chunk.empty();
         chunk = source.nextChunk()) {
        for (const auto& r : chunk) {
            const bool measuring = insts >= warmInsts;
            if (r.isMem()) {
                const Addr addr = r.addr();
                const bool write = r.op() == trace::Op::Store;
                // Mirror of Hierarchy::access with prefetching off.
                if (!l1.access(addr, write)) {
                    if (!l2.access(addr, false)) {
                        llcTouch(blockAddr(addr), true, measuring);
                        const auto v2 = l2.fill(addr, false, false);
                        if (v2.valid && v2.dirty)
                            llcTouch(blockAddr(v2.blockAddress), false,
                                     measuring);
                    }
                    const auto v1 = l1.fill(addr, write, false);
                    if (v1.valid && v1.dirty &&
                        !l2.markDirty(v1.blockAddress)) {
                        // Write-allocate the L1 victim in L2, like
                        // Hierarchy::writebackToL2.
                        const auto v = l2.fill(v1.blockAddress, true,
                                               false);
                        if (v.valid && v.dirty)
                            llcTouch(blockAddr(v.blockAddress), false,
                                     measuring);
                    }
                }
            }
            insts += r.count();
            if (measuring)
                measuredInsts += r.count();
        }
    }

    if (sampled) {
        // SHARDS_adj: the sampled population should hold rate * N
        // accesses; add the expected-minus-actual difference to the
        // smallest-distance bucket (it perturbs only the curve's
        // tiny-capacity end).
        const double expected =
            static_cast<double>(demand) * sampler->rate();
        hist.addToFirstBucket(expected -
                              static_cast<double>(sampledDemand));
    }

    MrcProfile p;
    p.benchmark = source.name();
    p.mode = mrcModeName(cfg.mode);
    p.instructions = measuredInsts;
    p.demandSamples = demand;
    p.sampledSamples = sampledDemand;
    p.coldSamples = cold;
    p.samplingRate = sampled ? sampler->rate() : 1.0;
    p.maxSamples = cfg.mode == MrcMode::ShardsAdj ? cfg.maxSamples : 0;
    p.samplerPeakOccupancy =
        sampled ? sampler->maxOccupancy() : stack.liveKeys();
    p.samplerEvictions = sampled ? sampler->evictions() : 0;

    const double denom = static_cast<double>(cold) + hist.total();
    p.points.reserve(sizes.size());
    for (const Addr bytes : sizes) {
        const std::uint64_t blocks = bytes / kBlockBytes;
        const auto m = static_cast<unsigned>(std::bit_width(blocks) - 1);
        double ratio = 0.0;
        if (denom > 0.0) {
            const double missW = static_cast<double>(cold) +
                                 (hist.total() - hist.weightBelowPow2(m));
            ratio = std::clamp(missW / denom, 0.0, 1.0);
        }
        p.points.push_back({bytes, ratio});
    }

    if (cfg.registry != nullptr) {
        auto& reg = *cfg.registry;
        reg.gauge("mrc.demand_samples")
            .set(static_cast<double>(demand));
        reg.gauge("mrc.sampled_samples")
            .set(static_cast<double>(sampledDemand));
        reg.gauge("mrc.stack.live_blocks")
            .set(static_cast<double>(stack.liveKeys()));
        reg.gauge("mrc.sampler.peak_occupancy")
            .set(static_cast<double>(p.samplerPeakOccupancy));
        reg.gauge("mrc.sampler.final_rate").set(p.samplingRate);
        reg.gauge("mrc.sampler.evictions")
            .set(static_cast<double>(p.samplerEvictions));
    }
    return p;
}

std::vector<MrcProfile>
profileCorpus(const std::vector<trace::TraceSpec>& corpus,
              const MrcConfig& cfg, unsigned jobs,
              const trace::TraceSpec::OpenOptions& opts)
{
    MRP_PROF_SCOPE("mrc.corpus");
    // Gauges are a per-pass sink; concurrent passes must not share
    // one registry, so corpus workers run without it.
    MrcConfig worker_cfg = cfg;
    worker_cfg.registry = nullptr;

    std::vector<MrcProfile> out(corpus.size());
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t workers =
        std::min<std::size_t>(jobs, corpus.size());

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    ErrorCode errCode = ErrorCode::Internal;
    std::string errMsg;
    std::mutex errMutex;

    const auto work = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= corpus.size() || failed.load())
                return;
            try {
                auto src = corpus[i].open(opts);
                out[i] = buildProfile(*src, worker_cfg);
            } catch (const FatalError& e) {
                const std::lock_guard<std::mutex> lock(errMutex);
                if (!failed.exchange(true)) {
                    errCode = e.code();
                    errMsg = e.what();
                }
            }
        }
    };

    if (workers <= 1) {
        work();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back(work);
        for (auto& t : pool)
            t.join();
    }
    if (failed.load())
        throw FatalError(errCode, errMsg);
    return out;
}

} // namespace mrp::mrc
