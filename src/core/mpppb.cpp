#include "core/mpppb.hpp"

#include "core/feature_sets.hpp"
#include "prof/profiler.hpp"
#include "util/logging.hpp"

namespace mrp::core {

MpppbConfig
singleThreadMpppbConfig()
{
    MpppbConfig cfg;
    // The published Table 1(a) set is the shipped default: it is the
    // best-behaved configuration across the whole suite (worst case
    // 0.985x LRU, satisfying the paper's never-below-95% claim). The
    // locally searched set (featureSetLocal, policy "MPPPB-Local")
    // has a higher geometric mean but — lacking the paper's
    // cross-validation — overfits its training workloads and loses
    // badly on one held-in benchmark, a live demonstration of why §5.2
    // cross-validates.
    cfg.predictor.features = featureSetTable1A();
    cfg.substrate = Substrate::Mdpp;
    // Thresholds tuned on the training workloads of this
    // infrastructure (the paper tunes on its own training split; the
    // absolute values are substrate-specific, §5.5).
    // Values from examples/tune_mpppb (τ0 exhaustive, then random
    // feasible combinations) on the 10-benchmark training subset.
    cfg.thresholds.tauBypass = -60;
    cfg.thresholds.tau = {-61, -62, -113};
    cfg.thresholds.pi = {14, 13, 5};
    cfg.thresholds.tauNoPromote = -48;
    return cfg;
}

MpppbConfig
multiCoreMpppbConfig()
{
    MpppbConfig cfg;
    // On this infrastructure the Table 1(a) features outperform the
    // published multi-programmed set on the training mixes (the paper
    // itself measures only a 0.3% gap between the two on its own
    // mixes, §6.4); thresholds come from the training-mix sweep in
    // examples/tune_mpppb.
    cfg.predictor.features = featureSetTable1A();
    cfg.predictor.sampledSetsPerCore = 64; // 256 total on 4 cores
    cfg.substrate = Substrate::Srrip;
    cfg.thresholds.tauBypass = 60;
    cfg.thresholds.tau = {40, 10, -30};
    cfg.thresholds.pi = {3, 2, 1};
    cfg.thresholds.tauNoPromote = 80;
    return cfg;
}

MpppbPolicy::MpppbPolicy(const cache::CacheGeometry& geom, unsigned cores,
                         const MpppbConfig& cfg)
    : cfg_(cfg), predictor_(geom, cores, cfg.predictor)
{
    switch (cfg_.substrate) {
      case Substrate::Mdpp:
        mdpp_ = std::make_unique<policy::MdppPolicy>(geom, cfg_.mdpp);
        mruPos_ = 0;
        for (const auto p : cfg_.thresholds.pi)
            fatalIf(p >= geom.ways(), "MDPP placement out of range");
        break;
      case Substrate::Srrip:
        srrip_ = std::make_unique<policy::SrripPolicy>(geom, cfg_.srrip);
        mruPos_ = cfg_.srrip.hitRrpv;
        for (const auto p : cfg_.thresholds.pi)
            fatalIf(p > srrip_->maxRrpv(), "RRPV placement out of range");
        break;
    }
    if (cfg_.dynamicBypass) {
        fatalIf(cfg_.duelingPeriod < 2 ||
                    cfg_.duelingPeriod > geom.sets(),
                "dueling period out of range");
        pselMax_ = (1 << (cfg_.pselBits - 1)) - 1;
    }
}

MpppbPolicy::SetRole
MpppbPolicy::roleOf(std::uint32_t set) const
{
    if (!cfg_.dynamicBypass)
        return SetRole::Follower;
    const std::uint32_t r = set % cfg_.duelingPeriod;
    if (r == 0)
        return SetRole::BypassLeader;
    if (r == cfg_.duelingPeriod / 2 + 1)
        return SetRole::NoBypassLeader;
    return SetRole::Follower;
}

bool
MpppbPolicy::bypassFavored() const
{
    // psel counts bypass-leader misses up: positive means the
    // bypassing group misses more, so followers stop bypassing.
    return !cfg_.dynamicBypass || psel_ <= 0;
}

void
MpppbPolicy::attachTelemetry(telemetry::MetricsRegistry& registry)
{
    tel_ = std::make_unique<Telemetry>();
    tel_->placePi1 = &registry.counter("mpppb.placement.pi1");
    tel_->placePi2 = &registry.counter("mpppb.placement.pi2");
    tel_->placePi3 = &registry.counter("mpppb.placement.pi3");
    tel_->placeMru = &registry.counter("mpppb.placement.mru");
    tel_->promotions = &registry.counter("mpppb.promotions");
    tel_->promotionsSuppressed =
        &registry.counter("mpppb.promotions_suppressed");
    tel_->bypassSuppressed =
        &registry.counter("mpppb.bypass.dueling_suppressed");
    registry.gaugeFn("mpppb.psel",
                     [this] { return static_cast<double>(psel_); });
    predictor_.attachTelemetry(registry);
}

std::uint32_t
MpppbPolicy::placementFor(int confidence) const
{
    const auto& th = cfg_.thresholds;
    if (confidence > th.tau[0]) {
        if (tel_)
            tel_->placePi1->add();
        return th.pi[0];
    }
    if (confidence > th.tau[1]) {
        if (tel_)
            tel_->placePi2->add();
        return th.pi[1];
    }
    if (confidence > th.tau[2]) {
        if (tel_)
            tel_->placePi3->add();
        return th.pi[2];
    }
    if (tel_)
        tel_->placeMru->add();
    return mruPos_;
}

void
MpppbPolicy::place(std::uint32_t set, std::uint32_t way, std::uint32_t pos)
{
    if (mdpp_)
        mdpp_->tree().setPosition(set, way, pos);
    else
        srrip_->setRrpv(set, way, pos);
}

void
MpppbPolicy::onHit(const cache::AccessInfo& info, std::uint32_t set,
                   std::uint32_t way)
{
    MRP_PROF_SCOPE_HOT("llc.promote");
    if (info.type == cache::AccessType::Writeback)
        return;
    const int conf = predictor_.observe(info, set, true);
    // §3.6: above τ4 the block is not promoted — it keeps the recency
    // position that encodes its earlier placement decision.
    if (conf > cfg_.thresholds.tauNoPromote) {
        if (tel_)
            tel_->promotionsSuppressed->add();
        return;
    }
    if (tel_)
        tel_->promotions->add();
    place(set, way, mruPos_);
}

void
MpppbPolicy::onMiss(const cache::AccessInfo& info, std::uint32_t set)
{
    MRP_PROF_SCOPE_HOT("llc.predict");
    if (info.type == cache::AccessType::Writeback) {
        lastConfidence_ = 0;
        return;
    }
    lastConfidence_ = predictor_.observe(info, set, false);
    if (cfg_.dynamicBypass && cache::isDemand(info.type)) {
        switch (roleOf(set)) {
          case SetRole::BypassLeader:
            if (psel_ < pselMax_)
                ++psel_;
            break;
          case SetRole::NoBypassLeader:
            if (psel_ > -pselMax_ - 1)
                --psel_;
            break;
          case SetRole::Follower:
            break;
        }
    }
}

bool
MpppbPolicy::shouldBypass(const cache::AccessInfo& info, std::uint32_t set)
{
    if (!cfg_.bypassEnabled || info.type == cache::AccessType::Writeback)
        return false;
    switch (roleOf(set)) {
      case SetRole::BypassLeader:
        break; // leaders always honor the threshold
      case SetRole::NoBypassLeader:
        return false;
      case SetRole::Follower:
        if (!bypassFavored()) {
            if (tel_ && lastConfidence_ > cfg_.thresholds.tauBypass)
                tel_->bypassSuppressed->add();
            return false;
        }
        break;
    }
    return lastConfidence_ > cfg_.thresholds.tauBypass;
}

std::uint32_t
MpppbPolicy::victimWay(const cache::AccessInfo& info, std::uint32_t set)
{
    MRP_PROF_SCOPE_HOT("llc.victim");
    return mdpp_ ? mdpp_->victimWay(info, set)
                 : srrip_->victimWay(info, set);
}

std::uint32_t
MpppbPolicy::victimWayIn(const cache::AccessInfo& info, std::uint32_t set,
                         cache::WayMask mask)
{
    MRP_PROF_SCOPE_HOT("llc.victim");
    return mdpp_ ? mdpp_->victimWayIn(info, set, mask)
                 : srrip_->victimWayIn(info, set, mask);
}

void
MpppbPolicy::onFill(const cache::AccessInfo& info, std::uint32_t set,
                    std::uint32_t way)
{
    MRP_PROF_SCOPE_HOT("llc.place");
    if (info.type == cache::AccessType::Writeback) {
        // Dirty data evicted from above is installed at a distant but
        // not immediate-victim position.
        place(set, way, mdpp_ ? 12u : (srrip_ ? srrip_->maxRrpv() - 1 : 0u));
        return;
    }
    place(set, way, placementFor(lastConfidence_));
}

} // namespace mrp::core
