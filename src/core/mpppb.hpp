/**
 * @file
 * Multiperspective Placement, Promotion, and Bypass (paper §3.6-3.7).
 *
 * On a miss the confidence is thresholded: above τ0 the fill is
 * bypassed; otherwise the block is placed at position π1/π2/π3 chosen
 * by τ1/τ2/τ3, or at the MRU position below τ3. On a hit, confidence
 * above τ4 suppresses promotion, leaving the block at its current
 * recency position (this is how a block "remembers" it was predicted
 * dead without a per-block state bit).
 *
 * Two default replacement substrates are supported, as in the paper:
 * static MDPP (tree-PLRU, 16 positions — single-thread) and SRRIP
 * (2-bit RRPVs, 4 positions — multi-core).
 */

#ifndef MRP_CORE_MPPPB_HPP
#define MRP_CORE_MPPPB_HPP

#include <array>
#include <memory>

#include "cache/llc_policy.hpp"
#include "core/predictor.hpp"
#include "policy/srrip.hpp"
#include "policy/tree_plru.hpp"

namespace mrp::core {

/** Which default replacement policy MPPPB runs over. */
enum class Substrate : std::uint8_t {
    Mdpp,  //!< tree-PLRU positions 0..15 (single-thread default)
    Srrip, //!< 2-bit RRPV positions 0..3 (multi-core default)
};

/** Thresholds and placement positions (§3.6, tuned per §5.5). */
struct MpppbThresholds
{
    int tauBypass;              //!< τ0
    std::array<int, 3> tau;     //!< τ1 > τ2 > τ3
    std::array<std::uint32_t, 3> pi; //!< π1, π2, π3 (π1 least favorable)
    int tauNoPromote;           //!< τ4
};

/** Full MPPPB configuration. */
struct MpppbConfig
{
    MultiperspectiveConfig predictor;
    Substrate substrate = Substrate::Mdpp;
    MpppbThresholds thresholds{};
    bool bypassEnabled = true;
    /**
     * Extension beyond the paper (its conclusion calls for exploring
     * further optimizations): adapt the bypass decision with set
     * dueling — one group of leader sets always honors τ0, another
     * never bypasses, and follower sets go with whichever group
     * misses less. Protects workloads whose bypass predictions are
     * systematically wrong.
     */
    bool dynamicBypass = false;
    unsigned duelingPeriod = 64; //!< one leader pair per this many sets
    unsigned pselBits = 10;
    policy::MdppConfig mdpp{};
    policy::SrripConfig srrip{};
};

/** Paper-default single-thread configuration (Table 1(a) features). */
MpppbConfig singleThreadMpppbConfig();

/** Paper-default multi-core configuration (Table 2 features). */
MpppbConfig multiCoreMpppbConfig();

/** The MPPPB LLC policy. */
class MpppbPolicy : public cache::LlcPolicy
{
  public:
    MpppbPolicy(const cache::CacheGeometry& geom, unsigned cores,
                const MpppbConfig& cfg);

    std::string name() const override { return "MPPPB"; }
    void onHit(const cache::AccessInfo& info, std::uint32_t set,
               std::uint32_t way) override;
    void onMiss(const cache::AccessInfo& info, std::uint32_t set) override;
    bool shouldBypass(const cache::AccessInfo& info,
                      std::uint32_t set) override;
    std::uint32_t victimWay(const cache::AccessInfo& info,
                            std::uint32_t set) override;
    std::uint32_t victimWayIn(const cache::AccessInfo& info,
                              std::uint32_t set,
                              cache::WayMask mask) override;
    void onFill(const cache::AccessInfo& info, std::uint32_t set,
                std::uint32_t way) override;
    void attachTelemetry(telemetry::MetricsRegistry& registry) override;

    MultiperspectivePredictor& predictor() { return predictor_; }
    const MpppbConfig& config() const { return cfg_; }

    /** Current dueling verdict (always true without dynamicBypass). */
    bool bypassFavored() const;

  private:
    enum class SetRole : std::uint8_t {
        Follower,
        BypassLeader,
        NoBypassLeader,
    };

    /** Decision counters fed once telemetry is attached. */
    struct Telemetry
    {
        telemetry::Counter* placePi1 = nullptr;
        telemetry::Counter* placePi2 = nullptr;
        telemetry::Counter* placePi3 = nullptr;
        telemetry::Counter* placeMru = nullptr;
        telemetry::Counter* promotions = nullptr;
        telemetry::Counter* promotionsSuppressed = nullptr;
        telemetry::Counter* bypassSuppressed = nullptr;
    };

    /** Map a confidence to a placement position (§3.6). */
    std::uint32_t placementFor(int confidence) const;
    void place(std::uint32_t set, std::uint32_t way, std::uint32_t pos);
    SetRole roleOf(std::uint32_t set) const;

    MpppbConfig cfg_;
    MultiperspectivePredictor predictor_;
    std::unique_ptr<policy::MdppPolicy> mdpp_;
    std::unique_ptr<policy::SrripPolicy> srrip_;
    std::uint32_t mruPos_;
    int lastConfidence_ = 0;
    int psel_ = 0;
    int pselMax_ = 0;
    std::unique_ptr<Telemetry> tel_; //!< null until attachTelemetry
};

} // namespace mrp::core

#endif // MRP_CORE_MPPPB_HPP
