#include "core/predictor.hpp"

#include <algorithm>

#include "prof/profiler.hpp"
#include "util/logging.hpp"

namespace mrp::core {

MultiperspectivePredictor::MultiperspectivePredictor(
    const cache::CacheGeometry& llc_geom, unsigned cores,
    const MultiperspectiveConfig& cfg)
    : cfg_(cfg), weightMin_(-(1 << (cfg.weightBits - 1))),
      weightMax_((1 << (cfg.weightBits - 1)) - 1),
      sampling_(llc_geom.sets(),
                std::min(cfg.sampledSetsPerCore * cores,
                         llc_geom.sets())),
      samplerSets_(sampling_.sampledSets()),
      lastMiss_(llc_geom.sets(), 0), lastBlock_(llc_geom.sets(), ~Addr{0})
{
    fatalIf(cfg.features.empty(), "predictor needs at least one feature");
    fatalIf(cfg.features.size() > kMaxFeatures,
            "too many features for the sampler entry layout");
    fatalIf(cfg.samplerAssoc == 0 ||
                cfg.samplerAssoc > kMaxFeatureAssoc,
            "sampler associativity out of range");
    for (const auto& f : cfg.features)
        fatalIf(f.assoc > cfg.samplerAssoc,
                "feature associativity exceeds the sampler's: " +
                    f.toString());
    for (auto& s : samplerSets_)
        s.resize(cfg.samplerAssoc);
    tables_.reserve(cfg.features.size());
    for (const auto& f : cfg.features)
        tables_.emplace_back(f.tableSize(), 0);
}

std::size_t
MultiperspectivePredictor::totalWeights() const
{
    std::size_t n = 0;
    for (const auto& t : tables_)
        n += t.size();
    return n;
}

double
MultiperspectivePredictor::meanAbsWeight(std::size_t feature) const
{
    const auto& t = tables_[feature];
    std::uint64_t sum = 0;
    for (const std::int8_t w : t)
        sum += static_cast<std::uint64_t>(w < 0 ? -w : w);
    return t.empty() ? 0.0
                     : static_cast<double>(sum) /
                           static_cast<double>(t.size());
}

namespace {

/** Sorted, deduplicated histogram bounds spanning [lo, hi]. */
std::vector<std::int64_t>
symmetricBounds(int lo, int hi)
{
    std::vector<std::int64_t> b;
    for (const int v : {lo, lo / 2, lo / 4, lo / 8, -1, 0, hi / 8,
                        hi / 4, hi / 2, hi})
        b.push_back(v);
    std::sort(b.begin(), b.end());
    b.erase(std::unique(b.begin(), b.end()), b.end());
    return b;
}

/** Two-digit feature tag for stable metric-name sorting. */
std::string
featureTag(std::size_t f)
{
    return f < 10 ? "0" + std::to_string(f) : std::to_string(f);
}

} // namespace

void
MultiperspectivePredictor::attachTelemetry(
    telemetry::MetricsRegistry& registry)
{
    tel_ = std::make_unique<Telemetry>();
    const auto weight_bounds = symmetricBounds(weightMin_, weightMax_);
    for (std::size_t f = 0; f < cfg_.features.size(); ++f) {
        const std::string base = "predictor.feature." + featureTag(f);
        tel_->featureWeight.push_back(
            &registry.histogram(base + ".weight", weight_bounds));
        registry.gaugeFn(base + ".mean_abs_weight",
                         [this, f] { return meanAbsWeight(f); });
    }
    const auto conf_bounds =
        symmetricBounds(minConfidence(), maxConfidence());
    tel_->confidenceHit =
        &registry.histogram("predictor.confidence.hit", conf_bounds);
    tel_->confidenceMiss =
        &registry.histogram("predictor.confidence.miss", conf_bounds);
    registry.gaugeFn("predictor.training_events", [this] {
        return static_cast<double>(trainingEvents_);
    });
}

void
MultiperspectivePredictor::computeIndices(const FeatureInput& in,
                                          IndexVec& out) const
{
    for (std::size_t f = 0; f < cfg_.features.size(); ++f)
        out[f] = static_cast<std::uint8_t>(
            featureIndex(cfg_.features[f], in));
}

int
MultiperspectivePredictor::sumOf(const IndexVec& idx) const
{
    int sum = 0;
    for (std::size_t f = 0; f < cfg_.features.size(); ++f)
        sum += tables_[f][idx[f]];
    return std::clamp(sum, -cfg_.confidenceClamp - 1,
                      cfg_.confidenceClamp);
}

void
MultiperspectivePredictor::bump(unsigned feature, std::uint8_t index,
                                bool dead)
{
    std::int8_t& w = tables_[feature][index];
    if (dead) {
        if (w < weightMax_)
            ++w;
    } else {
        if (w > weightMin_)
            --w;
    }
}

void
MultiperspectivePredictor::samplerAccess(const cache::AccessInfo& info,
                                         std::uint32_t set,
                                         const IndexVec& idx,
                                         int confidence)
{
    MRP_PROF_SCOPE_HOT("llc.sampler");
    auto& sset = samplerSets_[sampling_.samplerSetOf(set)];
    const std::uint16_t tag = policy::SetSampling::partialTag(info.addr);
    const int theta = cfg_.trainingThreshold;
    const std::size_t nfeat = cfg_.features.size();

    std::size_t pos = sset.size();
    for (std::size_t i = 0; i < sset.size(); ++i) {
        if (sset[i].valid && sset[i].tag == tag) {
            pos = i;
            break;
        }
    }

    if (pos < sset.size()) {
        // ---- Reuse at LRU position pos. ----
        SamplerEntry entry = sset[pos];
        // Train "live" only in tables whose associativity would still
        // have held the block (p < A); gate on the stored prediction
        // per the perceptron rule.
        {
            MRP_PROF_SCOPE_HOT("llc.train");
            if (entry.confidence > -theta) {
                for (std::size_t f = 0; f < nfeat; ++f)
                    if (pos < cfg_.features[f].assoc)
                        bump(static_cast<unsigned>(f), entry.indices[f],
                             /*dead=*/false);
            }
            ++trainingEvents_;
            // The promotion demotes positions 0..pos-1 by one; a block
            // arriving exactly at a feature's A is dead for that
            // feature.
            for (std::size_t q = 0; q < pos; ++q) {
                const SamplerEntry& demoted = sset[q];
                if (!demoted.valid || demoted.confidence >= theta)
                    continue;
                const std::size_t newpos = q + 1;
                for (std::size_t f = 0; f < nfeat; ++f)
                    if (newpos == cfg_.features[f].assoc)
                        bump(static_cast<unsigned>(f),
                             demoted.indices[f],
                             /*dead=*/true);
            }
        }
        // Refresh the entry and move it to MRU.
        entry.confidence = static_cast<std::int16_t>(confidence);
        entry.indices = idx;
        sset.erase(sset.begin() + static_cast<long>(pos));
        sset.insert(sset.begin(), entry);
    } else {
        // ---- Placement: everyone shifts down one position. ----
        std::size_t valid_count = 0;
        while (valid_count < sset.size() && sset[valid_count].valid)
            ++valid_count;
        {
            MRP_PROF_SCOPE_HOT("llc.train");
            for (std::size_t q = 0; q < valid_count; ++q) {
                const SamplerEntry& demoted = sset[q];
                if (demoted.confidence >= theta)
                    continue;
                const std::size_t newpos = q + 1;
                for (std::size_t f = 0; f < nfeat; ++f)
                    if (newpos == cfg_.features[f].assoc)
                        bump(static_cast<unsigned>(f),
                             demoted.indices[f],
                             /*dead=*/true);
            }
            ++trainingEvents_;
        }
        if (valid_count == sset.size())
            sset.pop_back(); // true eviction of the LRU entry
        SamplerEntry entry;
        entry.valid = true;
        entry.tag = tag;
        entry.confidence = static_cast<std::int16_t>(confidence);
        entry.indices = idx;
        sset.insert(sset.begin(), entry);
    }
}

int
MultiperspectivePredictor::observe(const cache::AccessInfo& info,
                                   std::uint32_t set, bool hit)
{
    if (info.type == cache::AccessType::Writeback)
        return 0;

    const Addr blk = blockAddr(info.addr);
    FeatureInput in;
    in.pc = info.pc;
    in.addr = info.addr;
    in.ctx = info.ctx;
    in.isInsert = !hit;
    in.lastMiss = lastMiss_[set] != 0;
    in.isBurst = lastBlock_[set] == blk;

    IndexVec idx{};
    computeIndices(in, idx);
    const int confidence = sumOf(idx);

    if (tel_) {
        for (std::size_t f = 0; f < cfg_.features.size(); ++f)
            tel_->featureWeight[f]->record(tables_[f][idx[f]]);
        (hit ? tel_->confidenceHit : tel_->confidenceMiss)
            ->record(confidence);
    }

    if (sampling_.sampled(set))
        samplerAccess(info, set, idx, confidence);

    lastMiss_[set] = hit ? 0 : 1;
    lastBlock_[set] = blk;
    return confidence;
}

} // namespace mrp::core
