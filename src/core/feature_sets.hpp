/**
 * @file
 * The published feature sets: Table 1(a) and 1(b) (single-thread,
 * cross-validated) and Table 2 (multi-programmed).
 */

#ifndef MRP_CORE_FEATURE_SETS_HPP
#define MRP_CORE_FEATURE_SETS_HPP

#include <vector>

#include "core/feature.hpp"

namespace mrp::core {

/** Table 1(a): first cross-validated single-thread feature set. */
std::vector<FeatureSpec> featureSetTable1A();

/**
 * Table 1(b): second cross-validated single-thread feature set (the
 * one whose index-vector size the paper uses for its area estimate).
 */
std::vector<FeatureSpec> featureSetTable1B();

/**
 * Table 2: the multi-programmed feature set. The paper's
 * "address(9,9,14,5,1)" carries five parameters — one more than
 * address takes — and is read as pc(9,9,14,5,1) (see DESIGN.md).
 */
std::vector<FeatureSpec> featureSetTable2();

/**
 * A feature set developed *on this infrastructure* with the paper's
 * §5 methodology (examples/feature_search: 60 random sets seeded with
 * the published tables, then 120 hill-climbing proposals, scored by
 * average MPKI on the 10 training workloads). Demonstrates that the
 * search machinery reproduces the paper's workflow end to end; the
 * published Table 1(a) remains the default configuration.
 */
std::vector<FeatureSpec> featureSetLocal();

} // namespace mrp::core

#endif // MRP_CORE_FEATURE_SETS_HPP
