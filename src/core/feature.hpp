/**
 * @file
 * The seven parameterized feature types of multiperspective reuse
 * prediction (paper §3.2).
 *
 * Every feature carries an associativity parameter A — the LRU stack
 * position beyond which a block counts as dead *for that feature's
 * table* — and a Boolean X that exclusive-ORs the feature bits with
 * the current PC. pc/address/offset features additionally select a bit
 * range B..E of their value; pc selects the W-th most recent memory
 * access instruction.
 */

#ifndef MRP_CORE_FEATURE_HPP
#define MRP_CORE_FEATURE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "cache/access.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace mrp::core {

/** The seven feature types. */
enum class FeatureKind : std::uint8_t {
    Pc,       //!< pc(A,B,E,W,X): bits of the W-th most recent PC
    Address,  //!< address(A,B,E,X): bits of the physical address
    Bias,     //!< bias(A,X): the constant 0 (a global/PC counter)
    Burst,    //!< burst(A,X): access is to the set's MRU block
    Insert,   //!< insert(A,X): access is an insertion (missed)
    LastMiss, //!< lastmiss(A,X): previous access to this set missed
    Offset,   //!< offset(A,B,E,X): bits of the in-block byte offset
};

/** Largest associativity a feature may simulate (sampler is 18-way). */
inline constexpr unsigned kMaxFeatureAssoc = 18;

/** One fully parameterized feature. */
struct FeatureSpec
{
    FeatureKind kind = FeatureKind::Bias;
    unsigned assoc = kMaxFeatureAssoc; //!< A in 1..18
    unsigned begin = 0;                //!< B (pc/address/offset)
    unsigned end = 0;                  //!< E
    unsigned depth = 0;                //!< W (pc only)
    bool xorPc = false;                //!< X

    /** Number of weights in this feature's table (1, 2, <=64, 256). */
    std::uint32_t tableSize() const;

    /** Paper-style text form, e.g.\ "pc(10,1,53,10,0)". */
    std::string toString() const;

    /** Parse the paper-style text form; throws FatalError on errors. */
    static FeatureSpec parse(const std::string& text);

    /** Draw a uniformly random valid feature (search, §5.1). */
    static FeatureSpec random(Rng& rng);

    /** Return a copy with one parameter slightly perturbed (§5.1). */
    FeatureSpec perturbed(Rng& rng) const;

    bool operator==(const FeatureSpec&) const = default;
};

/** Everything a feature may look at when forming its index. */
struct FeatureInput
{
    Pc pc = 0;
    Addr addr = 0;
    const cache::CoreContext* ctx = nullptr;
    bool isInsert = false; //!< this access missed (block being placed)
    bool lastMiss = false; //!< previous access to this set missed
    bool isBurst = false;  //!< this access is to the set's MRU block
};

/** Compute the feature's table index for one access. */
std::uint32_t featureIndex(const FeatureSpec& spec,
                           const FeatureInput& in);

/** Render a whole feature set, one feature per line. */
std::string formatFeatureSet(const std::vector<FeatureSpec>& set);

/** Copy of @p set with every associativity forced to @p assoc. */
std::vector<FeatureSpec>
withUniformAssociativity(const std::vector<FeatureSpec>& set,
                         unsigned assoc);

/** Copy of @p set with element @p idx removed. */
std::vector<FeatureSpec> without(const std::vector<FeatureSpec>& set,
                                 std::size_t idx);

} // namespace mrp::core

#endif // MRP_CORE_FEATURE_HPP
