#include "core/feature.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/bitfield.hpp"
#include "util/logging.hpp"

namespace mrp::core {

namespace {

const char*
kindName(FeatureKind k)
{
    switch (k) {
      case FeatureKind::Pc:
        return "pc";
      case FeatureKind::Address:
        return "address";
      case FeatureKind::Bias:
        return "bias";
      case FeatureKind::Burst:
        return "burst";
      case FeatureKind::Insert:
        return "insert";
      case FeatureKind::LastMiss:
        return "lastmiss";
      case FeatureKind::Offset:
        return "offset";
    }
    return "?";
}

/** Number of B..E-style bit parameters a kind takes. */
bool
hasBitRange(FeatureKind k)
{
    return k == FeatureKind::Pc || k == FeatureKind::Address ||
           k == FeatureKind::Offset;
}

} // namespace

std::uint32_t
FeatureSpec::tableSize() const
{
    // Paper §3.4: PC and address features, and any feature XORed with
    // the PC, use 8-bit indices (256 weights); offset uses up to 64;
    // single-bit features use 2; bias uses 1.
    if (xorPc || kind == FeatureKind::Pc || kind == FeatureKind::Address)
        return 256;
    switch (kind) {
      case FeatureKind::Offset: {
          const unsigned lo = std::min(begin, end);
          const unsigned hi = std::max(begin, end);
          const unsigned width = std::min(hi - lo + 1, 6u);
          return 1u << width;
      }
      case FeatureKind::Bias:
        return 1;
      default:
        return 2;
    }
}

std::string
FeatureSpec::toString() const
{
    std::ostringstream os;
    os << kindName(kind) << '(' << assoc;
    if (hasBitRange(kind))
        os << ',' << begin << ',' << end;
    if (kind == FeatureKind::Pc)
        os << ',' << depth;
    os << ',' << (xorPc ? 1 : 0) << ')';
    return os.str();
}

FeatureSpec
FeatureSpec::parse(const std::string& text)
{
    const auto open = text.find('(');
    const auto close = text.rfind(')');
    fatalIf(open == std::string::npos || close == std::string::npos ||
                close < open,
            "malformed feature: " + text);
    const std::string name = text.substr(0, open);

    FeatureSpec f;
    if (name == "pc")
        f.kind = FeatureKind::Pc;
    else if (name == "address")
        f.kind = FeatureKind::Address;
    else if (name == "bias")
        f.kind = FeatureKind::Bias;
    else if (name == "burst")
        f.kind = FeatureKind::Burst;
    else if (name == "insert")
        f.kind = FeatureKind::Insert;
    else if (name == "lastmiss")
        f.kind = FeatureKind::LastMiss;
    else if (name == "offset")
        f.kind = FeatureKind::Offset;
    else
        fatal("unknown feature kind: " + name);

    std::vector<unsigned> args;
    std::istringstream is(text.substr(open + 1, close - open - 1));
    std::string tok;
    while (std::getline(is, tok, ','))
        args.push_back(static_cast<unsigned>(std::stoul(tok)));

    const std::size_t expected =
        f.kind == FeatureKind::Pc ? 5 : (hasBitRange(f.kind) ? 4 : 2);
    fatalIf(args.size() != expected,
            "wrong parameter count in feature: " + text);

    std::size_t i = 0;
    f.assoc = args[i++];
    if (hasBitRange(f.kind)) {
        f.begin = args[i++];
        f.end = args[i++];
    }
    if (f.kind == FeatureKind::Pc)
        f.depth = args[i++];
    f.xorPc = args[i++] != 0;
    fatalIf(f.assoc == 0 || f.assoc > kMaxFeatureAssoc,
            "feature associativity out of range: " + text);
    return f;
}

std::uint32_t
featureIndex(const FeatureSpec& spec, const FeatureInput& in)
{
    std::uint64_t value = 0;
    switch (spec.kind) {
      case FeatureKind::Pc: {
          Pc pc = in.pc;
          if (spec.depth > 0) {
              if (in.ctx)
                  pc = in.ctx->pcHistory.recent(spec.depth - 1);
              // Without a context (writeback paths), fall back to the
              // access PC; those accesses are not predicted anyway.
          }
          value = bits(pc, spec.begin, spec.end);
          break;
      }
      case FeatureKind::Address:
        value = bits(in.addr, spec.begin, spec.end);
        break;
      case FeatureKind::Bias:
        value = 0;
        break;
      case FeatureKind::Burst:
        value = in.isBurst ? 1 : 0;
        break;
      case FeatureKind::Insert:
        value = in.isInsert ? 1 : 0;
        break;
      case FeatureKind::LastMiss:
        value = in.lastMiss ? 1 : 0;
        break;
      case FeatureKind::Offset:
        value = bits(blockOffset(in.addr), spec.begin, spec.end);
        break;
    }

    const std::uint32_t size = spec.tableSize();
    if (spec.xorPc) {
        // Distribute the feature across the weights by the current PC
        // (shifted to drop alignment zeros).
        const std::uint64_t mixed =
            foldXor(value, 8) ^ foldXor(in.pc >> 2, 8);
        return static_cast<std::uint32_t>(mixed & (size - 1));
    }
    const unsigned width = log2Ceil(size);
    return static_cast<std::uint32_t>(foldXor(value, width) &
                                      (size - 1));
}

FeatureSpec
FeatureSpec::random(Rng& rng)
{
    FeatureSpec f;
    f.kind = static_cast<FeatureKind>(rng.below(7));
    f.assoc = static_cast<unsigned>(rng.range(1, kMaxFeatureAssoc));
    f.xorPc = rng.chance(0.5);
    switch (f.kind) {
      case FeatureKind::Pc: {
          const unsigned b = static_cast<unsigned>(rng.below(32));
          const unsigned e =
              b + static_cast<unsigned>(rng.range(0, 31));
          f.begin = b;
          f.end = std::min(e, 63u);
          f.depth = static_cast<unsigned>(rng.below(
              cache::CoreContext::kPcHistoryDepth));
          break;
      }
      case FeatureKind::Address: {
          const unsigned b = static_cast<unsigned>(rng.range(6, 30));
          f.begin = b;
          f.end = std::min(
              b + static_cast<unsigned>(rng.range(0, 24)), 40u);
          break;
      }
      case FeatureKind::Offset: {
          f.begin = static_cast<unsigned>(rng.below(6));
          f.end = std::min(
              f.begin + static_cast<unsigned>(rng.range(0, 5)), 7u);
          break;
      }
      default:
        break;
    }
    return f;
}

FeatureSpec
FeatureSpec::perturbed(Rng& rng) const
{
    FeatureSpec f = *this;
    // Nudge one randomly chosen parameter, as the hill climber does.
    switch (rng.below(4)) {
      case 0: {
          const int delta = rng.chance(0.5) ? 1 : -1;
          const int a = static_cast<int>(f.assoc) + delta;
          f.assoc = static_cast<unsigned>(std::clamp(
              a, 1, static_cast<int>(kMaxFeatureAssoc)));
          break;
      }
      case 1:
        f.xorPc = !f.xorPc;
        break;
      case 2:
        if (f.kind == FeatureKind::Pc)
            f.depth = static_cast<unsigned>(rng.below(
                cache::CoreContext::kPcHistoryDepth));
        else
            f.xorPc = !f.xorPc;
        break;
      default: {
          const int delta = rng.chance(0.5) ? 1 : -1;
          const int b = static_cast<int>(f.begin) + delta;
          f.begin = static_cast<unsigned>(std::clamp(b, 0, 63));
          if (f.end < f.begin)
              std::swap(f.begin, f.end);
          break;
      }
    }
    return f;
}

std::string
formatFeatureSet(const std::vector<FeatureSpec>& set)
{
    std::string out;
    for (const auto& f : set) {
        out += f.toString();
        out += '\n';
    }
    return out;
}

std::vector<FeatureSpec>
withUniformAssociativity(const std::vector<FeatureSpec>& set,
                         unsigned assoc)
{
    fatalIf(assoc == 0 || assoc > kMaxFeatureAssoc,
            "uniform associativity out of range");
    std::vector<FeatureSpec> out = set;
    for (auto& f : out)
        f.assoc = assoc;
    return out;
}

std::vector<FeatureSpec>
without(const std::vector<FeatureSpec>& set, std::size_t idx)
{
    fatalIf(idx >= set.size(), "feature index out of range");
    std::vector<FeatureSpec> out = set;
    out.erase(out.begin() + static_cast<long>(idx));
    return out;
}

} // namespace mrp::core
