#include "core/feature_sets.hpp"

namespace mrp::core {

namespace {

std::vector<FeatureSpec>
parseAll(const std::vector<const char*>& texts)
{
    std::vector<FeatureSpec> out;
    out.reserve(texts.size());
    for (const char* t : texts)
        out.push_back(FeatureSpec::parse(t));
    return out;
}

} // namespace

std::vector<FeatureSpec>
featureSetTable1A()
{
    return parseAll({
        "bias(16,0)",
        "burst(6,0)",
        "insert(16,0)",
        "insert(16,1)",
        "insert(17,1)",
        "insert(8,1)",
        "lastmiss(9,0)",
        "offset(10,0,6,1)",
        "offset(15,1,6,1)",
        "pc(10,1,53,10,0)",
        "pc(16,3,11,16,1)",
        "pc(16,8,16,5,0)",
        "pc(17,6,20,0,1)",
        "pc(17,6,20,0,1)",
        "pc(17,6,20,14,1)",
        "pc(7,14,43,11,0)",
    });
}

std::vector<FeatureSpec>
featureSetTable1B()
{
    return parseAll({
        "address(11,8,19,0)",
        "bias(6,1)",
        "insert(15,0)",
        "insert(16,1)",
        "insert(6,1)",
        "offset(15,1,6,1)",
        "offset(15,3,7,0)",
        "pc(11,2,24,4,1)",
        "pc(15,14,32,6,0)",
        "pc(15,5,28,0,1)",
        "pc(16,0,16,8,1)",
        "pc(17,6,20,0,1)",
        "pc(6,12,14,10,1)",
        "pc(7,1,24,11,0)",
        "pc(7,14,43,11,0)",
        "pc(8,1,61,11,0)",
    });
}

std::vector<FeatureSpec>
featureSetTable2()
{
    return parseAll({
        "bias(6,0)",
        "pc(9,9,14,5,1)", // printed as address(9,9,14,5,1) in the paper
        "address(9,12,29,0)",
        "address(13,21,29,0)",
        "address(14,17,25,0)",
        "lastmiss(6,0)",
        "lastmiss(18,0)",
        "offset(13,0,4,0)",
        "offset(14,0,6,0)",
        "offset(16,0,1,0)",
        "pc(6,13,31,4,0)",
        "pc(9,11,7,16,0)", // B>E as printed; bit ranges are normalized
        "pc(13,16,24,17,0)",
        "pc(16,2,10,2,0)",
        "pc(16,4,46,9,0)",
        "pc(17,0,13,5,0)",
    });
}

std::vector<FeatureSpec>
featureSetLocal()
{
    return parseAll({
        "pc(17,27,27,7,1)",
        "address(18,14,38,1)",
        "offset(16,2,4,1)",
        "burst(3,1)",
        "pc(6,10,23,14,1)",
        "insert(16,1)",
        "pc(3,13,13,11,0)",
        "lastmiss(3,1)",
        "offset(13,0,3,0)",
        "bias(5,0)",
        "bias(14,1)",
        "pc(16,18,28,4,1)",
        "offset(2,4,7,1)",
        "offset(16,1,4,1)",
        "pc(6,10,23,14,1)", // duplicated by the climber, as in Table 1(a)
        "lastmiss(4,1)",
    });
}

} // namespace mrp::core
