/**
 * @file
 * The multiperspective reuse predictor (paper §3).
 *
 * A hashed-perceptron organization: each of up to 16 parameterized
 * features indexes its own table of 6-bit weights; the selected
 * weights are summed into a 9-bit confidence (positive = predicted
 * dead). Training uses an 18-way true-LRU sampler of partial tags.
 * Unlike prior work, each feature has its own associativity A: a hit
 * at LRU position p trains "live" only in tables with p < A, and a
 * block demoted exactly to position A is trained "dead" in that
 * feature's table — so one access can increment some tables, leave
 * some alone, and decrement others (§3.1, §3.8).
 */

#ifndef MRP_CORE_PREDICTOR_HPP
#define MRP_CORE_PREDICTOR_HPP

#include <array>
#include <memory>
#include <vector>

#include "cache/geometry.hpp"
#include "core/feature.hpp"
#include "policy/reuse_predictor.hpp"
#include "policy/sampling.hpp"
#include "telemetry/metrics.hpp"

namespace mrp::core {

/** Predictor sizing and training parameters. */
struct MultiperspectiveConfig
{
    std::vector<FeatureSpec> features; //!< typically 16 (§5)
    std::uint32_t sampledSetsPerCore = 64;
    std::uint32_t samplerAssoc = 18;
    unsigned weightBits = 6;   //!< weights in [-32, +31]
    int confidenceClamp = 255; //!< 9-bit confidence (§3.3)
    int trainingThreshold = 70; //!< perceptron retraining margin
};

/** Largest feature count the sampler entries are sized for. */
inline constexpr std::size_t kMaxFeatures = 24;

/** The predictor; usable standalone (ROC) or inside MpppbPolicy. */
class MultiperspectivePredictor : public policy::ReusePredictor
{
  public:
    MultiperspectivePredictor(const cache::CacheGeometry& llc_geom,
                              unsigned cores,
                              const MultiperspectiveConfig& cfg);

    std::string name() const override { return "Multiperspective"; }
    int observe(const cache::AccessInfo& info, std::uint32_t set,
                bool hit) override;
    int minConfidence() const override { return -cfg_.confidenceClamp - 1; }
    int maxConfidence() const override { return cfg_.confidenceClamp; }

    const MultiperspectiveConfig& config() const { return cfg_; }

    /** Total weights across all tables (hardware-budget reporting). */
    std::size_t totalWeights() const;

    /** Sampler training events so far (diagnostics). */
    std::uint64_t trainingEvents() const { return trainingEvents_; }

    /** Mean |weight| over one feature's table (saturation probe). */
    double meanAbsWeight(std::size_t feature) const;

    /**
     * Register per-feature weight histograms, hit/miss confidence
     * histograms, and mean-|weight| probes with @p registry. The
     * registered gauge callbacks reference this predictor, so it must
     * outlive every snapshot taken from @p registry.
     */
    void attachTelemetry(telemetry::MetricsRegistry& registry);

  private:
    using IndexVec = std::array<std::uint8_t, kMaxFeatures>;

    struct SamplerEntry
    {
        bool valid = false;
        std::uint16_t tag = 0;
        std::int16_t confidence = 0;
        IndexVec indices{};
    };

    /** Histograms fed on every observe() once telemetry is attached. */
    struct Telemetry
    {
        std::vector<telemetry::Histogram*> featureWeight;
        telemetry::Histogram* confidenceHit = nullptr;
        telemetry::Histogram* confidenceMiss = nullptr;
    };

    void computeIndices(const FeatureInput& in, IndexVec& out) const;
    int sumOf(const IndexVec& idx) const;
    void bump(unsigned feature, std::uint8_t index, bool dead);
    void samplerAccess(const cache::AccessInfo& info, std::uint32_t set,
                       const IndexVec& idx, int confidence);

    MultiperspectiveConfig cfg_;
    int weightMin_;
    int weightMax_;
    policy::SetSampling sampling_;
    std::vector<std::vector<SamplerEntry>> samplerSets_; // MRU-first
    std::vector<std::vector<std::int8_t>> tables_;
    // Per-LLC-set feature state.
    std::vector<std::uint8_t> lastMiss_;
    std::vector<Addr> lastBlock_;
    std::uint64_t trainingEvents_ = 0;
    std::unique_ptr<Telemetry> tel_; //!< null until attachTelemetry
};

} // namespace mrp::core

#endif // MRP_CORE_PREDICTOR_HPP
