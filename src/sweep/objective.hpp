/**
 * @file
 * Fitness objectives for configuration studies.
 *
 * An Objective turns a decoded MpppbConfig into the RunRequests that
 * measure it (the Study executes them through the ExperimentRunner)
 * and folds the results into a scalar fitness (higher is better).
 * CorpusEvaluator is the shared workload-corpus evaluation path: it
 * holds the corpus as TraceSpec values (budget rungs are derived specs
 * via withInstructions, cached per budget — nothing is materialized;
 * every run streams its own source) and runs reference policies; both
 * the sweep objectives here and the legacy search::FeatureSetEvaluator
 * shim are built on it, so there is exactly one way a candidate gets
 * simulated.
 */

#ifndef MRP_SWEEP_OBJECTIVE_HPP
#define MRP_SWEEP_OBJECTIVE_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runner/experiment_runner.hpp"
#include "sweep/search_space.hpp"
#include "trace/spec.hpp"
#include "trace/trace.hpp"

namespace mrp::sweep {

/** Scalar outcome of one candidate. */
struct Score
{
    double fitness = 0.0; //!< higher is better
    double mpki = 0.0;    //!< corpus aggregate MPKI (reporting)
};

class Objective
{
  public:
    virtual ~Objective() = default;
    virtual std::string name() const = 0;
    /**
     * The runs measuring @p cfg at @p budget_insts trace length
     * (0 = the objective's full length). Returned traces are borrowed
     * from the objective, which must outlive the batch.
     */
    virtual std::vector<runner::RunRequest>
    requests(const core::MpppbConfig& cfg, InstCount budget_insts) = 0;
    /** Fold the (all-successful) results, in request order. */
    virtual Score
    score(const std::vector<const runner::RunResult*>& results) = 0;
};

/** Corpus definition shared by objectives and the search shim. */
struct CorpusConfig
{
    std::vector<unsigned> workloads; //!< suite indices (training set)
    /**
     * Explicit corpus specs; when non-empty they ARE the corpus and
     * `workloads` is ignored. This is how streaming families (Zipf,
     * block-I/O, phase mixes, trace files) enter a sweep. Every spec
     * must be resizable for budget rungs (no File/Borrowed kinds)
     * unless the study never shortens budgets.
     */
    std::vector<trace::TraceSpec> corpus;
    InstCount fullInstructions = 400000;
    sim::SingleCoreConfig sim{};
    unsigned jobs = 0; //!< runner workers for the reference sweeps
    /** Delivery knobs forwarded to every run (never affect scores). */
    trace::TraceSpec::OpenOptions openOptions;
};

/**
 * Holds the corpus specs (budget rungs cached per instruction count)
 * and evaluates policies over them through the ExperimentRunner. Not
 * thread-safe; the Study drives it from one thread and parallelism
 * happens inside the runner (each worker opens its own stream).
 */
class CorpusEvaluator
{
  public:
    explicit CorpusEvaluator(const CorpusConfig& cfg);

    const CorpusConfig& config() const { return cfg_; }
    std::size_t workloadCount() const { return fullCorpus_.size(); }

    /** Corpus specs at @p budget_insts (0 = fullInstructions);
     * derived via withInstructions on first use, stable thereafter. */
    const std::vector<trace::TraceSpec>& specs(InstCount budget_insts);

    /** Per-workload MPKI of MPPPB under @p cfg. */
    std::vector<double> mpppbMpkis(const core::MpppbConfig& cfg,
                                   InstCount budget_insts = 0);

    /** Per-workload MPKI of a registry policy ("LRU", "MIN", ...). */
    std::vector<double> policyMpkis(const std::string& name,
                                    InstCount budget_insts = 0);

  private:
    std::vector<double> run(const runner::PolicySpec& spec,
                            InstCount budget_insts);

    CorpusConfig cfg_;
    std::vector<trace::TraceSpec> fullCorpus_;
    std::map<InstCount, std::vector<trace::TraceSpec>> specCache_;
    runner::ExperimentRunner pool_;
};

/**
 * The study objective of the paper's §5 search: aggregate LLC demand
 * MPKI over the training corpus, negated so higher fitness is better.
 * Geomean (the default) weighs every workload's relative improvement
 * equally; Mean reproduces the Fig. 3 arithmetic average.
 */
class CorpusMpkiObjective : public Objective
{
  public:
    enum class Aggregate { Geomean, Mean };

    CorpusMpkiObjective(std::shared_ptr<CorpusEvaluator> evaluator,
                        Aggregate aggregate = Aggregate::Geomean);

    std::string name() const override;
    std::vector<runner::RunRequest>
    requests(const core::MpppbConfig& cfg,
             InstCount budget_insts) override;
    Score score(
        const std::vector<const runner::RunResult*>& results) override;

    CorpusEvaluator& evaluator() { return *evaluator_; }

  private:
    std::shared_ptr<CorpusEvaluator> evaluator_;
    Aggregate aggregate_;
};

/** Floor applied to per-workload MPKIs before the geomean, so a
 * cache-resident workload's ~0 MPKI cannot collapse the aggregate. */
inline constexpr double kGeomeanMpkiFloor = 0.01;

} // namespace mrp::sweep

#endif // MRP_SWEEP_OBJECTIVE_HPP
