/**
 * @file
 * Declarative search space over MPPPB configurations (paper §5).
 *
 * A SearchSpace names every tunable of the predictor — per-feature
 * enable/kind/associativity/bit-range/depth/xor, optionally the five
 * placement/bypass thresholds and the sampler density — and gives each
 * a bounded integer gene. A configuration is then a flat Genome
 * (std::vector<int>) that every search strategy can draw, cross over,
 * and mutate without knowing what the genes mean.
 *
 * Genomes are *canonical*: clamp() maps any integer vector into the
 * space (bounds, begin<=end, don't-care parameters zeroed for kinds
 * that ignore them, thresholds sorted descending, at least one feature
 * enabled), and two genomes are equal iff they decode to the same
 * configuration. That makes genomeKey() a sound fitness-cache key: a
 * duplicate candidate can never re-simulate under a different name.
 */

#ifndef MRP_SWEEP_SEARCH_SPACE_HPP
#define MRP_SWEEP_SEARCH_SPACE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/mpppb.hpp"
#include "util/json_reader.hpp"
#include "util/rng.hpp"

namespace mrp::sweep {

/** Flat integer genome; gene meaning is defined by the SearchSpace. */
using Genome = std::vector<int>;

/** Name and inclusive bounds of one gene. */
struct GeneSpec
{
    std::string name;
    int min = 0;
    int max = 0;
};

/** Genes per feature slot: enabled, kind, assoc, begin, end, depth,
 * xorPc. */
inline constexpr std::size_t kGenesPerSlot = 7;

struct SearchSpace
{
    /** Feature slots in the genome; the paper settles on 16 (§5). */
    unsigned featureSlots = 16;
    /** Also search τ0/τ1/τ2/τ3/τ4 (placement/bypass thresholds). */
    bool searchThresholds = false;
    /** Also search the sampler density (sampledSetsPerCore). */
    bool searchSampler = false;
    /** Candidate sampler densities when searchSampler is set. */
    std::vector<std::uint32_t> samplerSets = {16, 32, 64, 128};
    /** Template for everything the genome does not cover (substrate,
     * weight bits, un-searched thresholds, placement positions). */
    core::MpppbConfig base = core::singleThreadMpppbConfig();

    /** Gene descriptors, in genome order. */
    std::vector<GeneSpec> genes() const;

    std::size_t genomeSize() const;

    /** Map any integer vector (of genomeSize()) into the space; every
     * decodable genome is a fixed point. Throws on size mismatch. */
    Genome clamp(Genome g) const;

    /** Canonical genome of @p cfg; throws FatalError if @p cfg is not
     * representable in this space (validated round-trip). */
    Genome encode(const core::MpppbConfig& cfg) const;

    /** Like encode(), but parameters outside the space are clamped to
     * the nearest representable configuration instead of rejected —
     * for seeding a study with externally-drawn configurations (e.g.
     * the paper's §5.1 random feature sets). */
    Genome encodeClamped(const core::MpppbConfig& cfg) const;

    /** Configuration named by canonical genome @p g. */
    core::MpppbConfig decode(const Genome& g) const;

    /** Uniform random canonical genome. */
    Genome randomGenome(Rng& rng) const;

    /** Predictor weight-storage cost of @p g in bits (Σ enabled
     * feature tableSize × weightBits); the hardware-budget axis of
     * the study's Pareto front. */
    std::uint64_t predictorBits(const Genome& g) const;

    /** Stable text key of @p g (gene values comma-joined); the
     * fitness-cache / journal identity of a candidate. */
    std::string genomeKey(const Genome& g) const;

    /** @p g as a JSON array. */
    std::string genomeJson(const Genome& g) const;

    /** Parse a genomeJson() array back (validated size + clamp). */
    Genome genomeFromJson(const json::Value& v) const;

    /** One-line JSON description of the space itself (report header /
     * study fingerprint). */
    std::string spaceJson() const;
};

} // namespace mrp::sweep

#endif // MRP_SWEEP_SEARCH_SPACE_HPP
