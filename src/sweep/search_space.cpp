#include "sweep/search_space.hpp"

#include <algorithm>

#include "cache/access.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::sweep {

namespace {

// Per-slot gene offsets.
enum : std::size_t {
    kEnabled = 0,
    kKind = 1,
    kAssoc = 2,
    kBegin = 3,
    kEnd = 4,
    kDepth = 5,
    kXorPc = 6,
};

constexpr int kKindCount = 7; //!< FeatureKind has seven values
constexpr int kTauMin = -256; //!< 9-bit confidence range (§3.3)
constexpr int kTauMax = 255;

int
depthMax()
{
    return static_cast<int>(cache::CoreContext::kPcHistoryDepth) - 1;
}

const char*
substrateName(core::Substrate s)
{
    return s == core::Substrate::Mdpp ? "mdpp" : "srrip";
}

} // namespace

std::vector<GeneSpec>
SearchSpace::genes() const
{
    std::vector<GeneSpec> out;
    out.reserve(genomeSize());
    for (unsigned s = 0; s < featureSlots; ++s) {
        const std::string p = "f" + std::to_string(s) + ".";
        out.push_back({p + "enabled", 0, 1});
        out.push_back({p + "kind", 0, kKindCount - 1});
        out.push_back({p + "assoc", 1,
                       static_cast<int>(core::kMaxFeatureAssoc)});
        out.push_back({p + "begin", 0, 63});
        out.push_back({p + "end", 0, 63});
        out.push_back({p + "depth", 0, depthMax()});
        out.push_back({p + "xorpc", 0, 1});
    }
    if (searchThresholds) {
        out.push_back({"tau.bypass", kTauMin, kTauMax});
        out.push_back({"tau.1", kTauMin, kTauMax});
        out.push_back({"tau.2", kTauMin, kTauMax});
        out.push_back({"tau.3", kTauMin, kTauMax});
        out.push_back({"tau.nopromote", kTauMin, kTauMax});
    }
    if (searchSampler) {
        fatalIf(samplerSets.empty(), "searchSampler with no sampler "
                                     "set choices");
        out.push_back({"sampler", 0,
                       static_cast<int>(samplerSets.size()) - 1});
    }
    return out;
}

std::size_t
SearchSpace::genomeSize() const
{
    return featureSlots * kGenesPerSlot +
           (searchThresholds ? 5u : 0u) + (searchSampler ? 1u : 0u);
}

Genome
SearchSpace::clamp(Genome g) const
{
    fatalIf(g.size() != genomeSize(),
            "genome size mismatch: got " + std::to_string(g.size()) +
                ", space has " + std::to_string(genomeSize()));
    const auto specs = genes();
    for (std::size_t i = 0; i < g.size(); ++i)
        g[i] = std::clamp(g[i], specs[i].min, specs[i].max);

    bool any_enabled = false;
    for (unsigned s = 0; s < featureSlots; ++s) {
        int* slot = g.data() + s * kGenesPerSlot;
        if (!slot[kEnabled]) {
            // Disabled slots are fully canonical (all genes at their
            // minimum) so genomes differing only in dormant genes are
            // the same candidate.
            slot[kKind] = 0;
            slot[kAssoc] = 1;
            slot[kBegin] = slot[kEnd] = slot[kDepth] = 0;
            slot[kXorPc] = 0;
            continue;
        }
        any_enabled = true;
        if (slot[kEnd] < slot[kBegin])
            std::swap(slot[kBegin], slot[kEnd]);
        // Zero the parameters the kind ignores, for the same
        // canonicality reason.
        const auto kind = static_cast<core::FeatureKind>(slot[kKind]);
        switch (kind) {
          case core::FeatureKind::Pc:
            break;
          case core::FeatureKind::Address:
            slot[kDepth] = 0;
            break;
          case core::FeatureKind::Offset:
            // In-block byte offset: 6 value bits; FeatureSpec caps the
            // selected width at 6, so positions past bit 7 are dead.
            slot[kDepth] = 0;
            slot[kBegin] = std::min(slot[kBegin], 7);
            slot[kEnd] = std::min(slot[kEnd], 7);
            break;
          default: // bias / burst / insert / lastmiss: value-less
            slot[kBegin] = slot[kEnd] = slot[kDepth] = 0;
            break;
        }
    }
    if (!any_enabled)
        g[kEnabled] = 1; // slot 0, canonical pc(1,0,0,0,0)

    if (searchThresholds) {
        // τ1 >= τ2 >= τ3 (the placement ladder of §3.6).
        int* tau = g.data() + featureSlots * kGenesPerSlot + 1;
        std::sort(tau, tau + 3, std::greater<int>());
    }
    return g;
}

Genome
SearchSpace::encodeClamped(const core::MpppbConfig& cfg) const
{
    const auto& feats = cfg.predictor.features;
    fatalIf(feats.empty(), "encode: configuration has no features");
    fatalIf(feats.size() > featureSlots,
            "encode: " + std::to_string(feats.size()) +
                " features exceed " + std::to_string(featureSlots) +
                " slots");
    Genome g(genomeSize(), 0);
    for (std::size_t s = 0; s < feats.size(); ++s) {
        int* slot = g.data() + s * kGenesPerSlot;
        slot[kEnabled] = 1;
        slot[kKind] = static_cast<int>(feats[s].kind);
        slot[kAssoc] = static_cast<int>(feats[s].assoc);
        slot[kBegin] = static_cast<int>(feats[s].begin);
        slot[kEnd] = static_cast<int>(feats[s].end);
        slot[kDepth] = static_cast<int>(feats[s].depth);
        slot[kXorPc] = feats[s].xorPc ? 1 : 0;
    }
    std::size_t pos = featureSlots * kGenesPerSlot;
    if (searchThresholds) {
        g[pos++] = cfg.thresholds.tauBypass;
        g[pos++] = cfg.thresholds.tau[0];
        g[pos++] = cfg.thresholds.tau[1];
        g[pos++] = cfg.thresholds.tau[2];
        g[pos++] = cfg.thresholds.tauNoPromote;
    }
    if (searchSampler) {
        const auto it =
            std::find(samplerSets.begin(), samplerSets.end(),
                      cfg.predictor.sampledSetsPerCore);
        fatalIf(it == samplerSets.end(),
                "encode: sampledSetsPerCore " +
                    std::to_string(cfg.predictor.sampledSetsPerCore) +
                    " not among the space's sampler choices");
        g[pos++] = static_cast<int>(it - samplerSets.begin());
    }
    return clamp(g);
}

Genome
SearchSpace::encode(const core::MpppbConfig& cfg) const
{
    const auto& feats = cfg.predictor.features;
    const Genome g = encodeClamped(cfg);

    // Validated encode: the canonical genome must decode back to the
    // exact configuration, or the configuration lies outside the space
    // (e.g. a parameter beyond a gene's bounds).
    const auto back = decode(g);
    fatalIf(back.predictor.features != feats,
            "encode: feature set not representable in this space");
    if (searchThresholds) {
        const bool same =
            back.thresholds.tauBypass == cfg.thresholds.tauBypass &&
            back.thresholds.tau == cfg.thresholds.tau &&
            back.thresholds.tauNoPromote ==
                cfg.thresholds.tauNoPromote;
        fatalIf(!same,
                "encode: thresholds not representable in this space");
    }
    return g;
}

core::MpppbConfig
SearchSpace::decode(const Genome& g) const
{
    fatalIf(g.size() != genomeSize(), "decode: genome size mismatch");
    core::MpppbConfig cfg = base;
    cfg.predictor.features.clear();
    for (unsigned s = 0; s < featureSlots; ++s) {
        const int* slot = g.data() + s * kGenesPerSlot;
        if (!slot[kEnabled])
            continue;
        core::FeatureSpec f;
        f.kind = static_cast<core::FeatureKind>(slot[kKind]);
        f.assoc = static_cast<unsigned>(slot[kAssoc]);
        f.begin = static_cast<unsigned>(slot[kBegin]);
        f.end = static_cast<unsigned>(slot[kEnd]);
        f.depth = static_cast<unsigned>(slot[kDepth]);
        f.xorPc = slot[kXorPc] != 0;
        cfg.predictor.features.push_back(f);
    }
    fatalIf(cfg.predictor.features.empty(),
            "decode: genome enables no features (not canonical)");
    std::size_t pos = featureSlots * kGenesPerSlot;
    if (searchThresholds) {
        cfg.thresholds.tauBypass = g[pos++];
        cfg.thresholds.tau[0] = g[pos++];
        cfg.thresholds.tau[1] = g[pos++];
        cfg.thresholds.tau[2] = g[pos++];
        cfg.thresholds.tauNoPromote = g[pos++];
    }
    if (searchSampler)
        cfg.predictor.sampledSetsPerCore =
            samplerSets[static_cast<std::size_t>(g[pos++])];
    return cfg;
}

Genome
SearchSpace::randomGenome(Rng& rng) const
{
    const auto specs = genes();
    Genome g(specs.size(), 0);
    for (std::size_t i = 0; i < specs.size(); ++i)
        g[i] = static_cast<int>(specs[i].min +
                                static_cast<int>(rng.below(
                                    static_cast<std::uint64_t>(
                                        specs[i].max - specs[i].min +
                                        1))));
    return clamp(std::move(g));
}

std::uint64_t
SearchSpace::predictorBits(const Genome& g) const
{
    const auto cfg = decode(g);
    std::uint64_t bits = 0;
    for (const auto& f : cfg.predictor.features)
        bits += static_cast<std::uint64_t>(f.tableSize()) *
                cfg.predictor.weightBits;
    return bits;
}

std::string
SearchSpace::genomeKey(const Genome& g) const
{
    fatalIf(g.size() != genomeSize(),
            "genomeKey: genome size mismatch");
    std::string out;
    for (std::size_t i = 0; i < g.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(g[i]);
    }
    return out;
}

std::string
SearchSpace::genomeJson(const Genome& g) const
{
    std::string out = "[";
    for (std::size_t i = 0; i < g.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(g[i]);
    }
    return out + "]";
}

Genome
SearchSpace::genomeFromJson(const json::Value& v) const
{
    fatalIf(!v.isArray(), ErrorCode::CorruptInput,
            "genome: expected a JSON array");
    fatalIf(v.array.size() != genomeSize(), ErrorCode::CorruptInput,
            "genome: array has " + std::to_string(v.array.size()) +
                " genes, space has " + std::to_string(genomeSize()));
    Genome g;
    g.reserve(v.array.size());
    for (const auto& e : v.array) {
        fatalIf(!e.isNumber(), ErrorCode::CorruptInput,
                "genome: non-numeric gene");
        g.push_back(static_cast<int>(e.number));
    }
    return clamp(std::move(g));
}

std::string
SearchSpace::spaceJson() const
{
    std::string out = "{";
    out += json::key("featureSlots") + std::to_string(featureSlots);
    out += ", " + json::key("searchThresholds") +
           (searchThresholds ? "true" : "false");
    out += ", " + json::key("searchSampler") +
           (searchSampler ? "true" : "false");
    out += ", " + json::key("samplerSets") + "[";
    for (std::size_t i = 0; i < samplerSets.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(samplerSets[i]);
    }
    out += "], " + json::key("substrate") +
           json::str(substrateName(base.substrate));
    out += ", " + json::key("weightBits") +
           std::to_string(base.predictor.weightBits);
    out += ", " + json::key("genomeSize") +
           std::to_string(genomeSize());
    out += "}";
    return out;
}

} // namespace mrp::sweep
