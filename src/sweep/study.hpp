/**
 * @file
 * A Study drives one Strategy against one Objective: each generation's
 * candidates fan out as a RunRequest batch on the ExperimentRunner,
 * fitnesses flow back through tell(), and everything is recorded for a
 * deterministic JSON report.
 *
 * Determinism & crash safety:
 *  - A fitness cache keyed by canonical genome (genomeKey@budget)
 *    guarantees each unique candidate simulates exactly once per
 *    study, no matter how often a strategy re-proposes it.
 *  - With StudyConfig::journalPath set, every evaluated candidate is
 *    appended to a PR-2 checkpoint journal (one line per candidate,
 *    fitness in the `ipc` field, genomeKey@budget in `label`, the
 *    study fingerprint in `benchmark` so a foreign journal is
 *    rejected), and the in-flight generation's raw runs stream into a
 *    second journal at journalPath + ".runs". A killed study resumed
 *    with StudyConfig::resume replays the strategy against the
 *    journaled fitnesses — completed generations cost zero
 *    simulations, and a partially-simulated generation restores its
 *    finished runs by label — and produces a byte-identical report at
 *    any --jobs.
 *  - The report contains no wall-clock fields; candidate ids, per-
 *    generation stats, the best candidate, and the {MPKI, predictor
 *    bits} Pareto front are all functions of (space, strategy seed,
 *    objective) alone.
 */

#ifndef MRP_SWEEP_STUDY_HPP
#define MRP_SWEEP_STUDY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "runner/executor.hpp"
#include "sweep/objective.hpp"
#include "sweep/strategy.hpp"

namespace mrp::sweep {

struct StudyConfig
{
    std::string name = "study";
    /** Strategy/report seed; also stamped into every run's
     * DriverConfig::seed for provenance. */
    std::uint64_t seed = 0;
    /** Runner worker threads (0 = hardware concurrency). Ignored when
     * `executor` is set. */
    unsigned jobs = 0;
    /**
     * Execution vehicle for each generation's batch (non-owning; must
     * outlive the study). Null = an internal in-process
     * ExperimentRunner with `jobs` threads. The deterministic report
     * is byte-identical for every executor — threads, the queue
     * broker at any worker count, or a mix across resumes.
     */
    const runner::Executor* executor = nullptr;
    /** Candidate journal path; empty = no durability. The raw-run
     * journal lives at journalPath + ".runs". */
    std::string journalPath;
    /** Load the journals before running (crash resume). */
    bool resume = false;
    /** Stop after this many generations even if the strategy has
     * more (test hook for mid-study kills); 0 = run to completion. */
    unsigned maxGenerations = 0;
};

/** One evaluated candidate, in id (= ask) order. */
struct CandidateOutcome
{
    std::size_t id = 0;
    unsigned generation = 0;
    Candidate candidate;
    /** True iff an earlier id in this study evaluated the same
     * genome@budget (a fitness-cache hit; process-independent). */
    bool cached = false;
    bool ok = false;
    std::string error;
    double fitness = kFailedFitness;
    double mpki = 0.0;
    std::uint64_t predictorBits = 0;
    InstCount instructions = 0;
    std::uint64_t llcDemandAccesses = 0;
    std::uint64_t llcDemandMisses = 0;
};

struct GenerationStats
{
    unsigned generation = 0;
    std::size_t evaluations = 0; //!< candidates asked
    std::size_t simulations = 0; //!< unique genomes (cache misses)
    std::size_t cacheHits = 0;
    double bestFitness = kFailedFitness;
    double meanFitness = 0.0; //!< over successful candidates
};

struct StudyResult
{
    std::vector<CandidateOutcome> candidates;
    std::vector<GenerationStats> generations;
    bool hasBest = false;
    std::size_t bestId = 0; //!< highest fitness, ties to lowest id
};

class Study
{
  public:
    Study(const SearchSpace& space, Strategy& strategy,
          Objective& objective, const StudyConfig& cfg);

    StudyResult run();

    /** CRC-32 identity of (space, strategy, objective, seed); stamped
     * into journal entries so mismatched journals are rejected with
     * ErrorCode::Config. */
    std::string fingerprint() const;

    /** Label of one raw run: "<genomeKey>@<budget>#<workload>" — how
     * a partially-simulated generation's runs are matched on resume
     * (by label, never by batch index, which shifts as earlier
     * candidates become cache hits). */
    static std::string runLabel(const SearchSpace& space,
                                const Genome& genome,
                                InstCount budget_insts,
                                std::size_t request_idx);

    /** Deterministic study report (see file comment for the schema
     * guarantees). */
    std::string reportJson(const StudyResult& result) const;

  private:
    struct CachedScore
    {
        bool ok = false;
        std::string error;
        double fitness = kFailedFitness;
        double mpki = 0.0;
        InstCount instructions = 0;
        std::uint64_t llcDemandAccesses = 0;
        std::uint64_t llcDemandMisses = 0;
    };

    const SearchSpace& space_;
    Strategy& strategy_;
    Objective& objective_;
    StudyConfig cfg_;
};

} // namespace mrp::sweep

#endif // MRP_SWEEP_STUDY_HPP
