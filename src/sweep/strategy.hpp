/**
 * @file
 * Pluggable search strategies over a SearchSpace.
 *
 * A Strategy is an ask/tell loop: ask() proposes the next batch of
 * candidates (one generation), the Study evaluates them, and tell()
 * feeds the fitnesses back; an empty ask() ends the study. Strategies
 * are strictly deterministic — all randomness comes from the portable
 * Rng seeded at construction, and tell() is always called with results
 * in ask order — so replaying a strategy against cached fitnesses
 * reproduces the identical candidate sequence (the basis of crash-safe
 * resume).
 *
 * Four strategies, in increasing sophistication:
 *  - ListStrategy: an explicit candidate list, one generation.
 *  - GridStrategy: cross product of per-gene value axes over a base
 *    genome (the engine behind the figure benches' enumerations).
 *  - RandomStrategy: uniform random sampling (paper §5.1's seeding).
 *  - HalvingStrategy: successive halving — rungs of short-trace
 *    evaluations promoting the top 1/eta to longer traces.
 *  - GeneticStrategy: tournament selection, uniform crossover,
 *    per-gene mutation, elitism (monotone non-decreasing best).
 */

#ifndef MRP_SWEEP_STRATEGY_HPP
#define MRP_SWEEP_STRATEGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/search_space.hpp"
#include "util/types.hpp"

namespace mrp::sweep {

/** One proposed configuration: a genome and the evaluation budget.
 * budgetInsts 0 = the objective's full trace length; a nonzero value
 * asks for shorter traces (successive halving's cheap rungs). */
struct Candidate
{
    Genome genome;
    InstCount budgetInsts = 0;
};

/**
 * Budget sentinel: a rung budget with this bit set asks the objective
 * to evaluate the candidate under SHARDS spatial sampling (the MRC
 * engine's cheap low rung) instead of merely shortening the trace.
 * The Study treats budgets opaquely — a sampled and a full evaluation
 * of the same genome occupy distinct fitness-cache keys for free —
 * and only sampling-aware objectives (mrc::SampledRungObjective)
 * interpret the bit; plain objectives must never see it. Far above
 * any real instruction budget (< 2^53 for exact JSON round-trips).
 */
inline constexpr InstCount kSampledBudgetFlag = InstCount{1} << 62;

/** Outcome of one candidate, as reported back to the strategy. */
struct Evaluated
{
    Candidate candidate;
    double fitness = 0.0; //!< higher is better; kFailedFitness if !ok
    double mpki = 0.0;
    bool ok = true;
};

/** Fitness assigned to failed candidates, so selection can still rank
 * them (always last). Exactly representable, round-trips via JSON. */
inline constexpr double kFailedFitness = -1e18;

class Strategy
{
  public:
    virtual ~Strategy() = default;
    virtual std::string name() const = 0;
    /** Next generation of candidates; empty = the study is done. */
    virtual std::vector<Candidate> ask() = 0;
    /** Results for the last ask(), in ask order. */
    virtual void tell(const std::vector<Evaluated>& results) = 0;
};

/** Evaluate an explicit list of candidates (one generation). */
class ListStrategy : public Strategy
{
  public:
    explicit ListStrategy(std::vector<Candidate> candidates);

    std::string name() const override { return "list"; }
    std::vector<Candidate> ask() override;
    void tell(const std::vector<Evaluated>& results) override;

  private:
    std::vector<Candidate> candidates_;
    bool asked_ = false;
};

/** One axis of a grid: the gene index to vary and its values. */
struct GridAxis
{
    std::size_t gene = 0;
    std::vector<int> values;
};

/**
 * Full cross product of the axes applied to a base genome, evaluated
 * as one generation (genomes are clamped, so combinations that
 * canonicalize to the same configuration hit the fitness cache).
 */
class GridStrategy : public Strategy
{
  public:
    GridStrategy(const SearchSpace& space, Genome base,
                 std::vector<GridAxis> axes);

    std::string name() const override { return "grid"; }
    std::vector<Candidate> ask() override;
    void tell(const std::vector<Evaluated>& results) override;

  private:
    std::vector<Candidate> candidates_;
    bool asked_ = false;
};

/** Uniform random sampling: generations × population draws. */
class RandomStrategy : public Strategy
{
  public:
    RandomStrategy(const SearchSpace& space, unsigned generations,
                   unsigned population, std::uint64_t seed);

    std::string name() const override { return "random"; }
    std::vector<Candidate> ask() override;
    void tell(const std::vector<Evaluated>& results) override;

  private:
    const SearchSpace& space_;
    unsigned generations_;
    unsigned population_;
    unsigned generation_ = 0;
    Rng rng_;
};

/**
 * Successive halving: rung r evaluates its survivors at budget
 * fullInstructions / eta^(rungs-1-r) (the last rung at the full
 * length, budget 0), then promotes the top ceil(n/eta) to the next
 * rung. Spends most simulation time on the most promising genomes.
 */
class HalvingStrategy : public Strategy
{
  public:
    struct Config
    {
        unsigned initial = 16;  //!< rung-0 population
        unsigned eta = 2;       //!< promotion factor
        unsigned rungs = 3;     //!< budget ladder length
        InstCount fullInstructions = 0; //!< objective's full length
        /**
         * Nonzero = rung 0 runs under SHARDS sampling at rate
         * 2^-mrcRateLog2: its budgets carry kSampledBudgetFlag, so a
         * sampling-aware objective (mrc::SampledRungObjective) streams
         * sampled traces through a rate-scaled hierarchy — an
         * order-of-magnitude cheaper first cut with near-identical
         * ranking. Requires such an objective; must be in [0, 24).
         */
        unsigned mrcRateLog2 = 0;
    };

    HalvingStrategy(const SearchSpace& space, const Config& cfg,
                    std::uint64_t seed);

    std::string name() const override { return "halving"; }
    std::vector<Candidate> ask() override;
    void tell(const std::vector<Evaluated>& results) override;

  private:
    InstCount budgetForRung(unsigned rung) const;

    const SearchSpace& space_;
    Config cfg_;
    unsigned rung_ = 0;
    std::vector<Genome> survivors_; //!< promoted into the next rung
    Rng rng_;
};

/**
 * Genetic search: tournament selection over the previous generation,
 * uniform crossover, per-gene mutation, and elitism (the top `elites`
 * genomes re-enter unchanged, which both preserves the incumbent and
 * makes the per-generation best fitness monotone non-decreasing —
 * elites re-evaluate as fitness-cache hits, not fresh simulations).
 */
class GeneticStrategy : public Strategy
{
  public:
    struct Config
    {
        unsigned generations = 5;
        unsigned population = 16;
        unsigned tournament = 3;     //!< selection pressure
        double crossoverRate = 0.9;  //!< else clone parent A
        double mutationRate = 0.08;  //!< per gene
        unsigned elites = 2;
        /** Initial genomes (e.g. the encoded paper default); the rest
         * of generation 0 is filled with random draws. */
        std::vector<Genome> seeds;
    };

    GeneticStrategy(const SearchSpace& space, const Config& cfg,
                    std::uint64_t seed);

    std::string name() const override { return "genetic"; }
    std::vector<Candidate> ask() override;
    void tell(const std::vector<Evaluated>& results) override;

  private:
    std::size_t tournamentPick();
    Genome breed();

    const SearchSpace& space_;
    Config cfg_;
    unsigned generation_ = 0;
    std::vector<Evaluated> parents_; //!< last generation, ask order
    Rng rng_;
};

} // namespace mrp::sweep

#endif // MRP_SWEEP_STRATEGY_HPP
