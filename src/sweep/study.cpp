#include "sweep/study.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "prof/profiler.hpp"
#include "runner/checkpoint.hpp"
#include "runner/experiment_runner.hpp"
#include "util/crc32.hpp"
#include "util/journal.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"
#include "util/math_util.hpp"

namespace mrp::sweep {

namespace {

bool
fileExists(const std::string& path)
{
    std::ifstream f(path);
    return static_cast<bool>(f);
}

std::string
hex8(std::uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

std::string
candidateKey(const SearchSpace& space, const Candidate& c)
{
    return space.genomeKey(c.genome) + "@" +
           std::to_string(c.budgetInsts);
}

} // namespace

Study::Study(const SearchSpace& space, Strategy& strategy,
             Objective& objective, const StudyConfig& cfg)
    : space_(space), strategy_(strategy), objective_(objective),
      cfg_(cfg)
{
    fatalIf(cfg_.resume && cfg_.journalPath.empty(),
            ErrorCode::Config, "study resume requires a journal path");
}

std::string
Study::fingerprint() const
{
    // The queue schema version is part of the identity: a journal
    // written before the work-queue era (or after an incompatible
    // schema bump) fingerprints differently, so resume refuses it
    // with a typed Config error instead of silently misreading it.
    const std::string text =
        space_.spaceJson() + "|" + strategy_.name() + "|" +
        objective_.name() + "|" + std::to_string(cfg_.seed) +
        "|qschema" + std::to_string(journal::kQueueSchemaVersion);
    return hex8(Crc32::of(text.data(), text.size()));
}

std::string
Study::runLabel(const SearchSpace& space, const Genome& genome,
                InstCount budget_insts, std::size_t request_idx)
{
    return space.genomeKey(genome) + "@" +
           std::to_string(budget_insts) + "#" +
           std::to_string(request_idx);
}

StudyResult
Study::run()
{
    StudyResult result;
    const std::string bench_id = "sweep:" + fingerprint();
    const std::string raw_path =
        cfg_.journalPath.empty() ? "" : cfg_.journalPath + ".runs";

    // Fitness cache: canonical genome@budget -> outcome. Seeded from
    // the candidate journal on resume; grows as generations complete.
    std::unordered_map<std::string, CachedScore> cache;
    // Completed raw runs of a generation the crash interrupted,
    // matched by label (index-independent).
    std::unordered_map<std::string, runner::RunResult> raw_restored;
    if (cfg_.resume) {
        if (fileExists(cfg_.journalPath)) {
            for (const auto& r :
                 runner::loadJournal(cfg_.journalPath)) {
                fatalIf(r.benchmark != bench_id, ErrorCode::Config,
                        "study journal " + cfg_.journalPath +
                            " belongs to a different study (entry "
                            "tagged " +
                            r.benchmark + ", this study is " +
                            bench_id + ")");
                CachedScore cs;
                cs.ok = r.ok();
                cs.error = r.error;
                cs.fitness = cs.ok ? r.ipc : kFailedFitness;
                cs.mpki = r.mpki;
                cs.instructions = r.instructions;
                cs.llcDemandAccesses = r.llcDemandAccesses;
                cs.llcDemandMisses = r.llcDemandMisses;
                cache[r.label] = cs;
            }
        }
        if (!raw_path.empty() && fileExists(raw_path))
            for (const auto& r : runner::loadJournal(raw_path))
                raw_restored[r.label] = r;
    }

    std::unique_ptr<runner::CheckpointJournal> journal;
    if (!cfg_.journalPath.empty())
        journal = std::make_unique<runner::CheckpointJournal>(
            cfg_.journalPath);

    const runner::ExperimentRunner pool(
        cfg_.executor ? 1 : cfg_.jobs);
    const runner::Executor& exec =
        cfg_.executor ? *cfg_.executor
                      : static_cast<const runner::Executor&>(pool);
    // Keys proposed by an earlier candidate id; drives the `cached`
    // flag, which therefore survives kill/resume unchanged.
    std::unordered_set<std::string> seen;
    unsigned generation = 0;

    while (true) {
        if (cfg_.maxGenerations != 0 &&
            generation >= cfg_.maxGenerations)
            break;
        MRP_PROF_SCOPE("sweep.generation");
        std::vector<Candidate> cands;
        {
            MRP_PROF_SCOPE("sweep.ask");
            cands = strategy_.ask();
        }
        if (cands.empty())
            break;

        // Pass 1: assign ids, classify against the fitness cache, and
        // collect the runs of candidates that genuinely need to
        // simulate (first study-wide occurrence of their genome).
        struct Pending
        {
            std::size_t outcome = 0; //!< index into outs
            std::size_t first = 0;   //!< first request index
            std::size_t count = 0;
        };
        std::vector<CandidateOutcome> outs(cands.size());
        std::vector<runner::RunRequest> requests;
        std::vector<Pending> pending;
        std::unordered_set<std::string> pending_keys;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            auto& o = outs[i];
            o.id = result.candidates.size() + i;
            o.generation = generation;
            o.candidate = cands[i];
            o.predictorBits = space_.predictorBits(cands[i].genome);
            const std::string key = candidateKey(space_, cands[i]);
            o.cached = seen.count(key) > 0;
            seen.insert(key);
            if (cache.count(key) > 0 || pending_keys.count(key) > 0)
                continue; // outcome resolved after the batch
            pending_keys.insert(key);
            auto reqs = objective_.requests(
                space_.decode(cands[i].genome), cands[i].budgetInsts);
            fatalIf(reqs.empty(), "objective produced no runs");
            const std::size_t first = requests.size();
            for (std::size_t r = 0; r < reqs.size(); ++r) {
                reqs[r].label = runLabel(space_, cands[i].genome,
                                         cands[i].budgetInsts, r);
                std::visit([&](auto& c) { c.seed = cfg_.seed; },
                           reqs[r].config);
                requests.push_back(std::move(reqs[r]));
            }
            pending.push_back({i, first, requests.size() - first});
        }

        // Pass 2: execute. Runs already in the raw journal (the
        // interrupted generation's completed work) restore by label;
        // the rest fan out on the runner, streaming completions into
        // the raw journal so a second crash also resumes mid-batch.
        std::vector<runner::RunResult> finals(requests.size());
        {
            std::vector<runner::RunRequest> to_run;
            std::vector<std::size_t> slot;
            for (std::size_t r = 0; r < requests.size(); ++r) {
                const auto it = raw_restored.find(requests[r].label);
                if (it != raw_restored.end())
                    finals[r] = it->second;
                else {
                    to_run.push_back(requests[r]);
                    slot.push_back(r);
                }
            }
            if (!to_run.empty()) {
                runner::RunnerOptions ropts;
                ropts.journalPath = raw_path;
                MRP_PROF_SCOPE("sweep.simulate");
                const auto set = exec.run(to_run, ropts);
                for (std::size_t j = 0; j < set.results.size(); ++j)
                    finals[slot[j]] = set.results[j];
            }
        }

        // Pass 3: score the fresh candidates, journal them, and fill
        // every outcome from the cache.
        for (const auto& p : pending) {
            const auto& o = outs[p.outcome];
            const std::string key = candidateKey(space_, o.candidate);
            CachedScore cs;
            ErrorCode ec = ErrorCode::None;
            std::vector<const runner::RunResult*> rs;
            rs.reserve(p.count);
            for (std::size_t r = p.first; r < p.first + p.count; ++r) {
                const auto& rr = finals[r];
                if (!rr.ok() && cs.error.empty()) {
                    cs.error = rr.error;
                    ec = rr.errorCode;
                }
                cs.instructions += rr.instructions;
                cs.llcDemandAccesses += rr.llcDemandAccesses;
                cs.llcDemandMisses += rr.llcDemandMisses;
                rs.push_back(&rr);
            }
            if (cs.error.empty()) {
                const Score score = objective_.score(rs);
                cs.ok = true;
                cs.fitness = score.fitness;
                cs.mpki = score.mpki;
            }
            cache[key] = cs;
            if (journal) {
                runner::RunResult jr;
                jr.index = o.id;
                jr.benchmark = bench_id;
                jr.policy = "MPPPB";
                jr.label = key;
                jr.ipc = cs.ok ? cs.fitness : 0.0;
                jr.mpki = cs.mpki;
                jr.instructions = cs.instructions;
                jr.llcDemandAccesses = cs.llcDemandAccesses;
                jr.llcDemandMisses = cs.llcDemandMisses;
                jr.seed = cfg_.seed;
                if (!cs.ok) {
                    jr.error = cs.error;
                    jr.errorCode = ec;
                }
                journal->append(jr);
            }
        }
        for (auto& o : outs) {
            const auto& cs =
                cache.at(candidateKey(space_, o.candidate));
            o.ok = cs.ok;
            o.error = cs.error;
            o.fitness = cs.fitness;
            o.mpki = cs.mpki;
            o.instructions = cs.instructions;
            o.llcDemandAccesses = cs.llcDemandAccesses;
            o.llcDemandMisses = cs.llcDemandMisses;
        }
        // The generation is fully summarized in the candidate journal
        // now; drop the raw runs so the next crash window starts
        // clean (stale labels could never match anyway — a journaled
        // candidate is never re-requested).
        if (!raw_path.empty())
            std::remove(raw_path.c_str());

        GenerationStats gs;
        gs.generation = generation;
        gs.evaluations = outs.size();
        std::vector<double> fits;
        for (const auto& o : outs) {
            if (o.cached)
                ++gs.cacheHits;
            else
                ++gs.simulations;
            if (o.ok)
                fits.push_back(o.fitness);
        }
        if (!fits.empty()) {
            gs.bestFitness = *std::max_element(fits.begin(),
                                               fits.end());
            gs.meanFitness = mean(fits);
        }
        result.generations.push_back(gs);

        std::vector<Evaluated> evaluated;
        evaluated.reserve(outs.size());
        for (const auto& o : outs)
            evaluated.push_back(
                {o.candidate, o.fitness, o.mpki, o.ok});
        for (auto& o : outs)
            result.candidates.push_back(std::move(o));
        {
            MRP_PROF_SCOPE("sweep.tell");
            strategy_.tell(evaluated);
        }
        ++generation;
    }

    for (const auto& o : result.candidates)
        if (o.ok &&
            (!result.hasBest ||
             o.fitness > result.candidates[result.bestId].fitness)) {
            result.hasBest = true;
            result.bestId = o.id;
        }
    return result;
}

std::string
Study::reportJson(const StudyResult& result) const
{
    using json::formatDouble;
    std::string out = "{\n";
    out += "  \"study\": {" + json::key("name") + json::str(cfg_.name);
    out += ", " + json::key("strategy") + json::str(strategy_.name());
    out +=
        ", " + json::key("objective") + json::str(objective_.name());
    out += ", " + json::key("seed") + std::to_string(cfg_.seed);
    out += ", " + json::key("fingerprint") + json::str(fingerprint());
    out += ", " + json::key("space") + space_.spaceJson() + "},\n";

    out += "  \"generations\": [\n";
    for (std::size_t i = 0; i < result.generations.size(); ++i) {
        const auto& g = result.generations[i];
        out += "    {" + json::key("generation") +
               std::to_string(g.generation);
        out += ", " + json::key("evaluations") +
               std::to_string(g.evaluations);
        out += ", " + json::key("simulations") +
               std::to_string(g.simulations);
        out += ", " + json::key("cacheHits") +
               std::to_string(g.cacheHits);
        out += ", " + json::key("bestFitness") +
               formatDouble(g.bestFitness);
        out += ", " + json::key("meanFitness") +
               formatDouble(g.meanFitness) + "}";
        if (i + 1 < result.generations.size())
            out += ",";
        out += "\n";
    }
    out += "  ],\n";

    if (result.hasBest) {
        const auto& b = result.candidates[result.bestId];
        const auto cfg = space_.decode(b.candidate.genome);
        out += "  \"best\": {" + json::key("id") +
               std::to_string(b.id);
        out += ", " + json::key("fitness") + formatDouble(b.fitness);
        out += ", " + json::key("mpki") + formatDouble(b.mpki);
        out += ", " + json::key("predictorBits") +
               std::to_string(b.predictorBits);
        out += ", " + json::key("genome") +
               space_.genomeJson(b.candidate.genome);
        out += ", " + json::key("features") + "[";
        for (std::size_t f = 0; f < cfg.predictor.features.size();
             ++f) {
            if (f)
                out += ", ";
            out += json::str(cfg.predictor.features[f].toString());
        }
        out += "], " + json::key("thresholds") + "{" +
               json::key("tauBypass") +
               std::to_string(cfg.thresholds.tauBypass);
        out += ", " + json::key("tau") + "[" +
               std::to_string(cfg.thresholds.tau[0]) + ", " +
               std::to_string(cfg.thresholds.tau[1]) + ", " +
               std::to_string(cfg.thresholds.tau[2]) + "]";
        out += ", " + json::key("tauNoPromote") +
               std::to_string(cfg.thresholds.tauNoPromote) + "}";
        out += ", " + json::key("sampledSetsPerCore") +
               std::to_string(cfg.predictor.sampledSetsPerCore) +
               "},\n";
    }

    // Pareto front over {corpus MPKI, predictor bits}: successful
    // full-budget candidates, first occurrence of each genome, sorted
    // by MPKI then bits then id, keeping the strict-bits staircase.
    struct Point
    {
        double mpki;
        std::uint64_t bits;
        std::size_t id;
    };
    std::vector<Point> pts;
    for (const auto& o : result.candidates)
        if (o.ok && !o.cached && o.candidate.budgetInsts == 0)
            pts.push_back({o.mpki, o.predictorBits, o.id});
    std::sort(pts.begin(), pts.end(),
              [](const Point& a, const Point& b) {
                  if (a.mpki != b.mpki)
                      return a.mpki < b.mpki;
                  if (a.bits != b.bits)
                      return a.bits < b.bits;
                  return a.id < b.id;
              });
    out += "  \"pareto\": [\n";
    std::uint64_t bits_bar = 0;
    bool first_pt = true;
    for (const auto& p : pts) {
        if (!first_pt && p.bits >= bits_bar)
            continue;
        if (!first_pt)
            out += ",\n";
        first_pt = false;
        bits_bar = p.bits;
        out += "    {" + json::key("id") + std::to_string(p.id) +
               ", " + json::key("mpki") + formatDouble(p.mpki) +
               ", " + json::key("predictorBits") +
               std::to_string(p.bits) + "}";
    }
    if (!first_pt)
        out += "\n";
    out += "  ],\n";

    out += "  \"candidates\": [\n";
    for (std::size_t i = 0; i < result.candidates.size(); ++i) {
        const auto& o = result.candidates[i];
        out += "    {" + json::key("id") + std::to_string(o.id);
        out += ", " + json::key("generation") +
               std::to_string(o.generation);
        out += ", " + json::key("budget") +
               std::to_string(o.candidate.budgetInsts &
                              ~kSampledBudgetFlag);
        out += ", " + json::key("sampled") +
               ((o.candidate.budgetInsts & kSampledBudgetFlag) != 0
                    ? "true"
                    : "false");
        out += ", " + json::key("cached") +
               (o.cached ? "true" : "false");
        if (o.ok) {
            out += ", " + json::key("fitness") +
                   formatDouble(o.fitness);
            out += ", " + json::key("mpki") + formatDouble(o.mpki);
        } else {
            out += ", " + json::key("error") + json::str(o.error);
        }
        out += ", " + json::key("predictorBits") +
               std::to_string(o.predictorBits);
        out += ", " + json::key("genome") +
               space_.genomeJson(o.candidate.genome) + "}";
        if (i + 1 < result.candidates.size())
            out += ",";
        out += "\n";
    }
    out += "  ],\n";

    std::size_t evals = 0, sims = 0, hits = 0;
    for (const auto& g : result.generations) {
        evals += g.evaluations;
        sims += g.simulations;
        hits += g.cacheHits;
    }
    out += "  \"totals\": {" + json::key("evaluations") +
           std::to_string(evals);
    out += ", " + json::key("simulations") + std::to_string(sims);
    out += ", " + json::key("cacheHits") + std::to_string(hits) +
           "}\n}\n";
    return out;
}

} // namespace mrp::sweep
