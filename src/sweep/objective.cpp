#include "sweep/objective.hpp"

#include <algorithm>

#include "trace/workloads.hpp"
#include "util/logging.hpp"
#include "util/math_util.hpp"

namespace mrp::sweep {

CorpusEvaluator::CorpusEvaluator(const CorpusConfig& cfg)
    : cfg_(cfg), pool_(cfg.jobs)
{
    fatalIf(cfg_.workloads.empty(),
            "corpus evaluator needs training workloads");
    fatalIf(cfg_.fullInstructions == 0,
            "corpus evaluator needs a trace length");
}

const std::vector<trace::Trace>&
CorpusEvaluator::traces(InstCount budget_insts)
{
    const InstCount insts =
        budget_insts == 0 ? cfg_.fullInstructions : budget_insts;
    auto it = traceCache_.find(insts);
    if (it == traceCache_.end()) {
        std::vector<trace::Trace> ts;
        ts.reserve(cfg_.workloads.size());
        for (const unsigned w : cfg_.workloads)
            ts.push_back(trace::makeSuiteTrace(w, insts));
        it = traceCache_.emplace(insts, std::move(ts)).first;
    }
    return it->second;
}

std::vector<double>
CorpusEvaluator::run(const runner::PolicySpec& spec,
                     InstCount budget_insts)
{
    const auto& ts = traces(budget_insts);
    std::vector<runner::RunRequest> batch;
    batch.reserve(ts.size());
    for (const auto& t : ts)
        batch.push_back(
            runner::RunRequest::singleCore(t, spec, cfg_.sim));
    const auto set = pool_.run(batch);
    std::vector<double> out;
    out.reserve(set.results.size());
    for (const auto& r : set.results) {
        fatalIf(!r.ok(), r.errorCode, "corpus run failed: " + r.error);
        out.push_back(r.mpki);
    }
    return out;
}

std::vector<double>
CorpusEvaluator::mpppbMpkis(const core::MpppbConfig& cfg,
                            InstCount budget_insts)
{
    return run(runner::PolicySpec::custom("MPPPB",
                                          sim::makeMpppbFactory(cfg)),
               budget_insts);
}

std::vector<double>
CorpusEvaluator::policyMpkis(const std::string& name,
                             InstCount budget_insts)
{
    return run(runner::PolicySpec::byName(name), budget_insts);
}

CorpusMpkiObjective::CorpusMpkiObjective(
    std::shared_ptr<CorpusEvaluator> evaluator, Aggregate aggregate)
    : evaluator_(std::move(evaluator)), aggregate_(aggregate)
{
    fatalIf(!evaluator_, "CorpusMpkiObjective needs an evaluator");
}

std::string
CorpusMpkiObjective::name() const
{
    return aggregate_ == Aggregate::Geomean ? "corpus-mpki-geomean"
                                            : "corpus-mpki-mean";
}

std::vector<runner::RunRequest>
CorpusMpkiObjective::requests(const core::MpppbConfig& cfg,
                              InstCount budget_insts)
{
    const auto& ts = evaluator_->traces(budget_insts);
    const auto factory = sim::makeMpppbFactory(cfg);
    std::vector<runner::RunRequest> out;
    out.reserve(ts.size());
    for (const auto& t : ts)
        out.push_back(runner::RunRequest::singleCore(
            t, runner::PolicySpec::custom("MPPPB", factory),
            evaluator_->config().sim));
    return out;
}

Score
CorpusMpkiObjective::score(
    const std::vector<const runner::RunResult*>& results)
{
    fatalIf(results.empty(), "scoring an empty result set");
    std::vector<double> mpkis;
    mpkis.reserve(results.size());
    for (const auto* r : results)
        mpkis.push_back(aggregate_ == Aggregate::Geomean
                            ? std::max(r->mpki, kGeomeanMpkiFloor)
                            : r->mpki);
    const double agg = aggregate_ == Aggregate::Geomean
                           ? geomean(mpkis)
                           : mean(mpkis);
    return {-agg, agg};
}

} // namespace mrp::sweep
