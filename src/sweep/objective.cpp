#include "sweep/objective.hpp"

#include <algorithm>

#include "cache/geometry.hpp"
#include "trace/workloads.hpp"
#include "util/logging.hpp"
#include "util/math_util.hpp"

namespace mrp::sweep {

CorpusEvaluator::CorpusEvaluator(const CorpusConfig& cfg)
    : cfg_(cfg), pool_(cfg.jobs)
{
    fatalIf(cfg_.workloads.empty() && cfg_.corpus.empty(),
            "corpus evaluator needs training workloads");
    fatalIf(cfg_.fullInstructions == 0,
            "corpus evaluator needs a trace length");
    // Validate the hierarchy geometry up front with a typed error:
    // every candidate run shares it, so a bad --llc-kb would otherwise
    // abort deep inside the first simulation's cache constructor.
    const auto& h = cfg_.sim.hierarchy;
    const struct
    {
        const char* level;
        Addr bytes;
        std::uint32_t ways;
    } levels[] = {{"L1", h.l1Bytes, h.l1Ways},
                  {"L2", h.l2Bytes, h.l2Ways},
                  {"LLC", h.llcBytes, h.llcWays}};
    for (const auto& l : levels) {
        const std::string why =
            cache::CacheGeometry::describeInvalid(l.bytes, l.ways);
        fatalIf(!why.empty(), ErrorCode::Config,
                std::string("corpus ") + l.level + " geometry: " + why);
    }
    if (!cfg_.corpus.empty()) {
        fullCorpus_ = cfg_.corpus;
    } else {
        fullCorpus_.reserve(cfg_.workloads.size());
        for (const unsigned w : cfg_.workloads)
            fullCorpus_.push_back(
                trace::TraceSpec::suite(w, cfg_.fullInstructions));
    }
}

const std::vector<trace::TraceSpec>&
CorpusEvaluator::specs(InstCount budget_insts)
{
    const InstCount insts =
        budget_insts == 0 ? cfg_.fullInstructions : budget_insts;
    auto it = specCache_.find(insts);
    if (it == specCache_.end()) {
        // Budget rungs regenerate each workload at the shorter length
        // (withInstructions), matching how generators define identity;
        // a prefix cut of the full-length stream would measure a
        // different workload.
        std::vector<trace::TraceSpec> ts;
        ts.reserve(fullCorpus_.size());
        for (const auto& spec : fullCorpus_)
            ts.push_back(spec.instructions() == insts
                             ? spec
                             : spec.withInstructions(insts));
        it = specCache_.emplace(insts, std::move(ts)).first;
    }
    return it->second;
}

std::vector<double>
CorpusEvaluator::run(const runner::PolicySpec& spec,
                     InstCount budget_insts)
{
    const auto& ts = specs(budget_insts);
    std::vector<runner::RunRequest> batch;
    batch.reserve(ts.size());
    for (const auto& t : ts) {
        batch.push_back(
            runner::RunRequest::singleCore(t, spec, cfg_.sim));
        batch.back().openOptions = cfg_.openOptions;
    }
    const auto set = pool_.run(batch);
    std::vector<double> out;
    out.reserve(set.results.size());
    for (const auto& r : set.results) {
        fatalIf(!r.ok(), r.errorCode, "corpus run failed: " + r.error);
        out.push_back(r.mpki);
    }
    return out;
}

std::vector<double>
CorpusEvaluator::mpppbMpkis(const core::MpppbConfig& cfg,
                            InstCount budget_insts)
{
    return run(runner::PolicySpec::mpppb(cfg), budget_insts);
}

std::vector<double>
CorpusEvaluator::policyMpkis(const std::string& name,
                             InstCount budget_insts)
{
    return run(runner::PolicySpec::byName(name), budget_insts);
}

CorpusMpkiObjective::CorpusMpkiObjective(
    std::shared_ptr<CorpusEvaluator> evaluator, Aggregate aggregate)
    : evaluator_(std::move(evaluator)), aggregate_(aggregate)
{
    fatalIf(!evaluator_, "CorpusMpkiObjective needs an evaluator");
}

std::string
CorpusMpkiObjective::name() const
{
    return aggregate_ == Aggregate::Geomean ? "corpus-mpki-geomean"
                                            : "corpus-mpki-mean";
}

std::vector<runner::RunRequest>
CorpusMpkiObjective::requests(const core::MpppbConfig& cfg,
                              InstCount budget_insts)
{
    const auto& ts = evaluator_->specs(budget_insts);
    // Carried as data (not a factory closure) so the requests can
    // cross a process boundary to queue workers unchanged.
    const auto spec = runner::PolicySpec::mpppb(cfg);
    std::vector<runner::RunRequest> out;
    out.reserve(ts.size());
    for (const auto& t : ts) {
        out.push_back(runner::RunRequest::singleCore(
            t, spec, evaluator_->config().sim));
        out.back().openOptions = evaluator_->config().openOptions;
    }
    return out;
}

Score
CorpusMpkiObjective::score(
    const std::vector<const runner::RunResult*>& results)
{
    fatalIf(results.empty(), "scoring an empty result set");
    std::vector<double> mpkis;
    mpkis.reserve(results.size());
    for (const auto* r : results)
        mpkis.push_back(aggregate_ == Aggregate::Geomean
                            ? std::max(r->mpki, kGeomeanMpkiFloor)
                            : r->mpki);
    const double agg = aggregate_ == Aggregate::Geomean
                           ? geomean(mpkis)
                           : mean(mpkis);
    return {-agg, agg};
}

} // namespace mrp::sweep
