#include "sweep/strategy.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace mrp::sweep {

namespace {

/** Indices of @p results sorted by fitness descending, ties by ask
 * order (stable), so selection is identical on every replay. */
std::vector<std::size_t>
rankByFitness(const std::vector<Evaluated>& results)
{
    std::vector<std::size_t> order(results.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return results[a].fitness >
                                results[b].fitness;
                     });
    return order;
}

} // namespace

// ---------------------------------------------------------------- list

ListStrategy::ListStrategy(std::vector<Candidate> candidates)
    : candidates_(std::move(candidates))
{
    fatalIf(candidates_.empty(), "ListStrategy with no candidates");
}

std::vector<Candidate>
ListStrategy::ask()
{
    if (asked_)
        return {};
    asked_ = true;
    return candidates_;
}

void
ListStrategy::tell(const std::vector<Evaluated>& results)
{
    (void)results;
}

// ---------------------------------------------------------------- grid

GridStrategy::GridStrategy(const SearchSpace& space, Genome base,
                           std::vector<GridAxis> axes)
{
    base = space.clamp(std::move(base));
    fatalIf(axes.empty(), "GridStrategy with no axes");
    for (const auto& a : axes) {
        fatalIf(a.gene >= space.genomeSize(),
                "grid axis gene index out of range");
        fatalIf(a.values.empty(), "grid axis with no values");
    }
    // Odometer enumeration of the cross product, first axis fastest.
    std::vector<std::size_t> pos(axes.size(), 0);
    while (true) {
        Genome g = base;
        for (std::size_t a = 0; a < axes.size(); ++a)
            g[axes[a].gene] = axes[a].values[pos[a]];
        candidates_.push_back({space.clamp(std::move(g)), 0});
        std::size_t a = 0;
        for (; a < axes.size(); ++a) {
            if (++pos[a] < axes[a].values.size())
                break;
            pos[a] = 0;
        }
        if (a == axes.size())
            break;
    }
}

std::vector<Candidate>
GridStrategy::ask()
{
    if (asked_)
        return {};
    asked_ = true;
    return candidates_;
}

void
GridStrategy::tell(const std::vector<Evaluated>& results)
{
    (void)results;
}

// -------------------------------------------------------------- random

RandomStrategy::RandomStrategy(const SearchSpace& space,
                               unsigned generations,
                               unsigned population, std::uint64_t seed)
    : space_(space), generations_(generations),
      population_(population), rng_(seed)
{
    fatalIf(generations_ == 0 || population_ == 0,
            "RandomStrategy needs generations and population > 0");
}

std::vector<Candidate>
RandomStrategy::ask()
{
    if (generation_ >= generations_)
        return {};
    ++generation_;
    std::vector<Candidate> out;
    out.reserve(population_);
    for (unsigned i = 0; i < population_; ++i)
        out.push_back({space_.randomGenome(rng_), 0});
    return out;
}

void
RandomStrategy::tell(const std::vector<Evaluated>& results)
{
    (void)results;
}

// ------------------------------------------------------------- halving

HalvingStrategy::HalvingStrategy(const SearchSpace& space,
                                 const Config& cfg, std::uint64_t seed)
    : space_(space), cfg_(cfg), rng_(seed)
{
    fatalIf(cfg_.initial == 0, "HalvingStrategy needs candidates");
    fatalIf(cfg_.eta < 2, "HalvingStrategy eta must be >= 2");
    fatalIf(cfg_.rungs == 0, "HalvingStrategy needs rungs");
    fatalIf(cfg_.rungs > 1 && cfg_.fullInstructions == 0,
            "HalvingStrategy needs fullInstructions to derive the "
            "short-rung budgets");
    fatalIf(cfg_.mrcRateLog2 >= 24,
            "HalvingStrategy sampled-rung rate log2 must be < 24");
}

InstCount
HalvingStrategy::budgetForRung(unsigned rung) const
{
    if (rung + 1 >= cfg_.rungs)
        return 0; // final rung: the objective's full trace length
    InstCount divisor = 1;
    for (unsigned i = rung + 1; i < cfg_.rungs; ++i)
        divisor *= cfg_.eta;
    return std::max<InstCount>(cfg_.fullInstructions / divisor, 1);
}

std::vector<Candidate>
HalvingStrategy::ask()
{
    if (rung_ >= cfg_.rungs)
        return {};
    std::vector<Candidate> out;
    if (rung_ == 0) {
        // With a sampled rung configured, rung 0 keeps its budget but
        // flags it: the objective evaluates under SHARDS sampling.
        const InstCount flag =
            cfg_.mrcRateLog2 > 0 ? kSampledBudgetFlag : 0;
        out.reserve(cfg_.initial);
        for (unsigned i = 0; i < cfg_.initial; ++i)
            out.push_back({space_.randomGenome(rng_),
                           budgetForRung(0) | flag});
    } else {
        out.reserve(survivors_.size());
        for (const auto& g : survivors_)
            out.push_back({g, budgetForRung(rung_)});
    }
    return out;
}

void
HalvingStrategy::tell(const std::vector<Evaluated>& results)
{
    const auto order = rankByFitness(results);
    const std::size_t keep = std::max<std::size_t>(
        1, (results.size() + cfg_.eta - 1) / cfg_.eta);
    survivors_.clear();
    for (std::size_t i = 0; i < std::min(keep, order.size()); ++i)
        survivors_.push_back(results[order[i]].candidate.genome);
    ++rung_;
}

// ------------------------------------------------------------- genetic

GeneticStrategy::GeneticStrategy(const SearchSpace& space,
                                 const Config& cfg, std::uint64_t seed)
    : space_(space), cfg_(cfg), rng_(seed)
{
    fatalIf(cfg_.generations == 0 || cfg_.population == 0,
            "GeneticStrategy needs generations and population > 0");
    fatalIf(cfg_.tournament == 0, "tournament size must be > 0");
    fatalIf(cfg_.elites >= cfg_.population,
            "elites must leave room for offspring");
}

std::size_t
GeneticStrategy::tournamentPick()
{
    std::size_t best = rng_.below(parents_.size());
    for (unsigned i = 1; i < cfg_.tournament; ++i) {
        const std::size_t c = rng_.below(parents_.size());
        if (parents_[c].fitness > parents_[best].fitness)
            best = c;
    }
    return best;
}

Genome
GeneticStrategy::breed()
{
    const Genome& a = parents_[tournamentPick()].candidate.genome;
    const Genome& b = parents_[tournamentPick()].candidate.genome;
    Genome child = a;
    if (rng_.chance(cfg_.crossoverRate)) {
        for (std::size_t i = 0; i < child.size(); ++i)
            if (rng_.chance(0.5))
                child[i] = b[i];
    }
    const auto specs = space_.genes();
    for (std::size_t i = 0; i < child.size(); ++i)
        if (rng_.chance(cfg_.mutationRate))
            child[i] = static_cast<int>(
                specs[i].min +
                static_cast<int>(rng_.below(static_cast<std::uint64_t>(
                    specs[i].max - specs[i].min + 1))));
    return space_.clamp(std::move(child));
}

std::vector<Candidate>
GeneticStrategy::ask()
{
    if (generation_ >= cfg_.generations)
        return {};
    std::vector<Candidate> out;
    out.reserve(cfg_.population);
    if (generation_ == 0) {
        for (const auto& s : cfg_.seeds) {
            if (out.size() >= cfg_.population)
                break;
            out.push_back({space_.clamp(s), 0});
        }
        while (out.size() < cfg_.population)
            out.push_back({space_.randomGenome(rng_), 0});
    } else {
        const auto order = rankByFitness(parents_);
        for (unsigned e = 0;
             e < cfg_.elites && e < order.size(); ++e)
            out.push_back(parents_[order[e]].candidate);
        while (out.size() < cfg_.population)
            out.push_back({breed(), 0});
    }
    ++generation_;
    return out;
}

void
GeneticStrategy::tell(const std::vector<Evaluated>& results)
{
    parents_ = results;
}

} // namespace mrp::sweep
