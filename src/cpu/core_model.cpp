#include "cpu/core_model.hpp"

#include <algorithm>

#include "prof/profiler.hpp"
#include "util/logging.hpp"

namespace mrp::cpu {

CoreModel::CoreModel(CoreId core, cache::Hierarchy& hierarchy,
                     trace::TraceSource& source, bool loop,
                     const CoreModelConfig& cfg)
    : core_(core), hier_(hierarchy), source_(&source), loop_(loop),
      cfg_(cfg), retireRing_(cfg.windowSize, 0), mshrRing_(cfg.mshrs, 0)
{
    fatalIf(cfg.mshrs == 0, "need at least one MSHR");
    fatalIf(cfg.windowSize == 0, "window size must be positive");
    fatalIf(cfg.fetchWidth == 0 || cfg.retireWidth == 0,
            "core width must be positive");
    chunk_ = source_->nextChunk();
    fatalIf(chunk_.empty(), "cannot execute an empty trace");
}

void
CoreModel::advanceChunk()
{
    chunkIdx_ = 0;
    chunk_ = source_->nextChunk();
    if (!chunk_.empty())
        return;
    if (!loop_) {
        exhausted_ = true;
        return;
    }
    source_->reset();
    chunk_ = source_->nextChunk();
    panicIf(chunk_.empty(),
            "trace source became empty on looped replay");
}

Cycle
CoreModel::peekEnter() const
{
    // Window constraint: instruction i waits for instruction i-W to
    // retire. The ring holds the retire time of exactly that slot;
    // ringIdx_ tracks retired_ % W incrementally because the modulo
    // (an integer divide, twice per instruction) dominated the
    // timing-model bookkeeping cost in profile runs.
    const Cycle window_free = retireRing_[ringIdx_];
    Cycle e = std::max(lastEnter_, window_free);
    if (e == lastEnter_ && entersThisCycle_ >= cfg_.fetchWidth)
        e += 1;
    return e;
}

Cycle
CoreModel::nextEnterCycle() const
{
    return peekEnter();
}

Cycle
CoreModel::takeEnterSlot()
{
    const Cycle e = peekEnter();
    if (e == lastEnter_) {
        ++entersThisCycle_;
    } else {
        lastEnter_ = e;
        entersThisCycle_ = 1;
    }
    return e;
}

void
CoreModel::retireOne(Cycle enter, Cycle completion)
{
    Cycle r = std::max(completion, lastRetire_);
    if (r == lastRetire_ && retiresThisCycle_ >= cfg_.retireWidth)
        r += 1;
    if (r == lastRetire_) {
        ++retiresThisCycle_;
    } else {
        lastRetire_ = r;
        retiresThisCycle_ = 1;
    }
    retireRing_[ringIdx_] = r;
    if (++ringIdx_ == retireRing_.size())
        ringIdx_ = 0;
    ++retired_;
    (void)enter;
}

void
CoreModel::step()
{
    panicIf(finished(), "step() on a finished core");
    // Copy by value before advancing: fetching the next chunk
    // invalidates the span this record lives in.
    const trace::Record rec = chunk_[chunkIdx_];
    if (++chunkIdx_ >= chunk_.size())
        advanceChunk();

    if (!rec.isMem()) {
        // A run of single-cycle instructions — the simulator's hottest
        // loop by instruction count. Same arithmetic as
        // takeEnterSlot()+retireOne(), but on locals: the per-
        // iteration ring store would otherwise force the compiler to
        // reload every member field each time around.
        Cycle last_enter = lastEnter_;
        unsigned enters = entersThisCycle_;
        Cycle last_retire = lastRetire_;
        unsigned retires = retiresThisCycle_;
        std::size_t ring_idx = ringIdx_;
        const std::size_t ring_size = retireRing_.size();
        Cycle* const ring = retireRing_.data();
        const unsigned fetch_w = cfg_.fetchWidth;
        const unsigned retire_w = cfg_.retireWidth;
        for (std::uint32_t k = 0; k < rec.count(); ++k) {
            Cycle e = std::max(last_enter, ring[ring_idx]);
            if (e == last_enter && enters >= fetch_w)
                e += 1;
            if (e == last_enter) {
                ++enters;
            } else {
                last_enter = e;
                enters = 1;
            }
            Cycle r = std::max(e + 1, last_retire);
            if (r == last_retire && retires >= retire_w)
                r += 1;
            if (r == last_retire) {
                ++retires;
            } else {
                last_retire = r;
                retires = 1;
            }
            ring[ring_idx] = r;
            if (++ring_idx == ring_size)
                ring_idx = 0;
        }
        lastEnter_ = last_enter;
        entersThisCycle_ = enters;
        lastRetire_ = last_retire;
        retiresThisCycle_ = retires;
        ringIdx_ = ring_idx;
        retired_ += rec.count();
        return;
    }

    // Everything from here to retirement is the cost of servicing one
    // memory access: enter-slot arbitration, the hierarchy walk (with
    // the policy work nested below it), and MSHR/retire accounting.
    // This is the measured window's cost-model boundary — BENCH
    // coverage is computed from the llc.* phases directly under
    // "measure", this scope chief among them.
    MRP_PROF_SCOPE_HOT("llc.service");
    const Cycle e = takeEnterSlot();
    const bool is_write = rec.op() == trace::Op::Store;
    const Cycle lat =
        hier_.access(core_, rec.pc(), rec.addr(), is_write, &ctx_);
    ctx_.notePc(rec.pc());

    Cycle completion;
    if (is_write) {
        // Stores drain through a write buffer and do not hold up
        // retirement; their cache effects are functional only.
        completion = e + 1;
    } else {
        Cycle issue = e;
        if (rec.dependsOnPrevLoad())
            issue = std::max(issue, lastLoadCompletion_);
        if (lat >= cfg_.dramThreshold) {
            // A DRAM miss needs a free MSHR: it cannot issue before
            // the (mshrs)-th previous DRAM miss has completed.
            issue = std::max(issue, mshrRing_[mshrIdx_]);
            mshrRing_[mshrIdx_] = issue + lat;
            if (++mshrIdx_ == mshrRing_.size())
                mshrIdx_ = 0;
        }
        completion = issue + lat;
        lastLoadCompletion_ = completion;
        loadLatencyTotal_ += lat;
        ++loadCount_;
    }
    retireOne(e, completion);
}

} // namespace mrp::cpu
