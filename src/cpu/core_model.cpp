#include "cpu/core_model.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mrp::cpu {

CoreModel::CoreModel(CoreId core, cache::Hierarchy& hierarchy,
                     const trace::Trace& trace, bool loop,
                     const CoreModelConfig& cfg)
    : core_(core), hier_(hierarchy), trace_(trace), loop_(loop), cfg_(cfg),
      retireRing_(cfg.windowSize, 0), mshrRing_(cfg.mshrs, 0)
{
    fatalIf(cfg.mshrs == 0, "need at least one MSHR");
    fatalIf(cfg.windowSize == 0, "window size must be positive");
    fatalIf(cfg.fetchWidth == 0 || cfg.retireWidth == 0,
            "core width must be positive");
    fatalIf(trace.records().empty(), "cannot execute an empty trace");
}

bool
CoreModel::finished() const
{
    return !loop_ && recordIdx_ >= trace_.records().size();
}

Cycle
CoreModel::peekEnter() const
{
    // Window constraint: instruction i waits for instruction i-W to
    // retire. The ring holds the retire time of exactly that slot.
    const Cycle window_free =
        retireRing_[retired_ % retireRing_.size()];
    Cycle e = std::max(lastEnter_, window_free);
    if (e == lastEnter_ && entersThisCycle_ >= cfg_.fetchWidth)
        e += 1;
    return e;
}

Cycle
CoreModel::nextEnterCycle() const
{
    return peekEnter();
}

Cycle
CoreModel::takeEnterSlot()
{
    const Cycle e = peekEnter();
    if (e == lastEnter_) {
        ++entersThisCycle_;
    } else {
        lastEnter_ = e;
        entersThisCycle_ = 1;
    }
    return e;
}

void
CoreModel::retireOne(Cycle enter, Cycle completion)
{
    Cycle r = std::max(completion, lastRetire_);
    if (r == lastRetire_ && retiresThisCycle_ >= cfg_.retireWidth)
        r += 1;
    if (r == lastRetire_) {
        ++retiresThisCycle_;
    } else {
        lastRetire_ = r;
        retiresThisCycle_ = 1;
    }
    retireRing_[retired_ % retireRing_.size()] = r;
    ++retired_;
    (void)enter;
}

void
CoreModel::step()
{
    panicIf(finished(), "step() on a finished core");
    const auto& records = trace_.records();
    const trace::Record& rec = records[recordIdx_];
    ++recordIdx_;
    if (loop_ && recordIdx_ >= records.size())
        recordIdx_ = 0;

    if (!rec.isMem()) {
        // A run of single-cycle instructions.
        for (std::uint32_t k = 0; k < rec.count(); ++k) {
            const Cycle e = takeEnterSlot();
            retireOne(e, e + 1);
        }
        return;
    }

    const Cycle e = takeEnterSlot();
    const bool is_write = rec.op() == trace::Op::Store;
    const Cycle lat =
        hier_.access(core_, rec.pc(), rec.addr(), is_write, &ctx_);
    ctx_.notePc(rec.pc());

    Cycle completion;
    if (is_write) {
        // Stores drain through a write buffer and do not hold up
        // retirement; their cache effects are functional only.
        completion = e + 1;
    } else {
        Cycle issue = e;
        if (rec.dependsOnPrevLoad())
            issue = std::max(issue, lastLoadCompletion_);
        if (lat >= cfg_.dramThreshold) {
            // A DRAM miss needs a free MSHR: it cannot issue before
            // the (mshrs)-th previous DRAM miss has completed.
            const std::size_t slot = dramMissCount_ % mshrRing_.size();
            issue = std::max(issue, mshrRing_[slot]);
            mshrRing_[slot] = issue + lat;
            ++dramMissCount_;
        }
        completion = issue + lat;
        lastLoadCompletion_ = completion;
        loadLatencyTotal_ += lat;
        ++loadCount_;
    }
    retireOne(e, completion);
}

} // namespace mrp::cpu
