/**
 * @file
 * Out-of-order core timing model.
 *
 * Approximates the paper's 4-wide, 8-stage, 128-entry-window core: an
 * instruction enters the window when fetch bandwidth allows and the
 * instruction 128 positions earlier has retired; loads complete after
 * their memory latency (overlapping freely unless data-dependent);
 * retirement is in order at 4 per cycle. This reproduces the property
 * that converts MPKI into speedup: independent misses overlap up to
 * the window limit, dependent misses serialize.
 *
 * The model is also the multi-core interleaving engine: cores expose
 * the cycle at which their next instruction enters the window, and the
 * driver steps whichever core is earliest, producing a deterministic,
 * timing-ordered interleaving of LLC accesses.
 */

#ifndef MRP_CPU_CORE_MODEL_HPP
#define MRP_CPU_CORE_MODEL_HPP

#include <memory>
#include <span>
#include <vector>

#include "cache/hierarchy.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace mrp::cpu {

/** Core width/window parameters (defaults follow the paper §4.1). */
struct CoreModelConfig
{
    unsigned fetchWidth = 4;
    unsigned retireWidth = 4;
    unsigned windowSize = 128;
    /**
     * Maximum concurrently outstanding long-latency (DRAM) misses; a
     * load whose latency reaches dramThreshold occupies an MSHR. This
     * bounds memory-level parallelism the way real miss buffers do.
     */
    unsigned mshrs = 16;
    Cycle dramThreshold = 200;
};

/** One core executing one trace against a shared hierarchy. */
class CoreModel
{
  public:
    /**
     * Execute @p source, pulling records chunk by chunk — the core
     * never needs the whole trace in memory. The source must outlive
     * the model and is consumed exclusively by it (reset on looping).
     *
     * @param loop restart the trace at its end (FIESTA-style region
     *        replay); when false, finished() becomes true at the end
     */
    CoreModel(CoreId core, cache::Hierarchy& hierarchy,
              trace::TraceSource& source, bool loop,
              const CoreModelConfig& cfg = CoreModelConfig{});

    /** True when a non-looping trace is exhausted. */
    bool finished() const { return exhausted_; }

    /**
     * Cycle at which the next instruction would enter the window
     * (the multi-core driver steps the earliest core first).
     */
    Cycle nextEnterCycle() const;

    /** Process the next trace record (all instructions it covers). */
    void step();

    /** Instructions retired so far. */
    InstCount retired() const { return retired_; }

    /** Retire-time of the newest retired instruction. */
    Cycle cycle() const { return lastRetire_; }

    /** The predictor-visible per-core context. */
    cache::CoreContext& context() { return ctx_; }

    /** Total load latency accumulated (for average-latency reporting). */
    Cycle loadLatencyTotal() const { return loadLatencyTotal_; }
    InstCount loadCount() const { return loadCount_; }

  private:
    /** Advance one instruction with completion time = enter + lat. */
    void retireOne(Cycle enter, Cycle completion);

    /** Enter cycle for the next instruction, without mutating state. */
    Cycle peekEnter() const;

    /** Consume fetch bandwidth and return the actual enter cycle. */
    Cycle takeEnterSlot();

    /** Pull the next chunk (looping or exhausting at end of stream);
     * called eagerly so finished() stays accurate between steps. */
    void advanceChunk();

    CoreId core_;
    cache::Hierarchy& hier_;
    trace::TraceSource* source_;
    bool loop_;
    CoreModelConfig cfg_;

    std::span<const trace::Record> chunk_;
    std::size_t chunkIdx_ = 0;
    bool exhausted_ = false;
    cache::CoreContext ctx_;

    std::vector<Cycle> retireRing_; //!< retire times of last W instrs
    std::size_t ringIdx_ = 0;       //!< == retired_ % retireRing_.size()
    InstCount retired_ = 0;

    Cycle lastEnter_ = 0;
    unsigned entersThisCycle_ = 0;
    Cycle lastRetire_ = 0;
    unsigned retiresThisCycle_ = 0;
    Cycle lastLoadCompletion_ = 0;
    std::vector<Cycle> mshrRing_; //!< completion times of DRAM misses
    std::size_t mshrIdx_ = 0;     //!< next MSHR slot, round-robin

    Cycle loadLatencyTotal_ = 0;
    InstCount loadCount_ = 0;
};

} // namespace mrp::cpu

#endif // MRP_CPU_CORE_MODEL_HPP
