/**
 * @file
 * Receiver-operating-characteristic accumulation for reuse predictors.
 *
 * A reuse predictor emits an integer confidence per access (higher =
 * more likely dead). After the access's outcome is known (the block was
 * reused before eviction, or it was evicted untouched), the pair
 * (confidence, dead) is recorded here. Sweeping a classification
 * threshold over the observed confidence range yields the ROC curve of
 * Figures 1 and 8 of the paper.
 */

#ifndef MRP_STATS_ROC_HPP
#define MRP_STATS_ROC_HPP

#include <cstdint>
#include <vector>

namespace mrp::stats {

/** One point of an ROC curve. */
struct RocPoint
{
    int threshold;            //!< classify dead when confidence > threshold
    double falsePositiveRate; //!< live blocks mispredicted dead
    double truePositiveRate;  //!< dead blocks correctly predicted
};

/**
 * Histogram-based ROC accumulator over a bounded integer confidence
 * range. Memory is O(range), adding a sample is O(1), and the full
 * curve is produced in O(range).
 */
class RocAccumulator
{
  public:
    /** Accept confidences in [minConf, maxConf]; others are clamped. */
    RocAccumulator(int min_conf, int max_conf);

    /** Record one resolved prediction. */
    void add(int confidence, bool dead);

    /** Number of recorded dead outcomes. */
    std::uint64_t deadCount() const { return deadTotal_; }

    /** Number of recorded live outcomes. */
    std::uint64_t liveCount() const { return liveTotal_; }

    /**
     * Produce the ROC curve, one point per distinct threshold, ordered
     * from the most permissive threshold (everything classified dead,
     * FPR=TPR=1) to the most restrictive (FPR=TPR=0).
     */
    std::vector<RocPoint> curve() const;

    /**
     * Linearly interpolated TPR at a given FPR, for comparing curves at
     * the paper's bypass-relevant operating region (FPR 25%..31%).
     */
    double tprAtFpr(double fpr) const;

  private:
    int minConf_;
    int maxConf_;
    std::vector<std::uint64_t> deadHist_;
    std::vector<std::uint64_t> liveHist_;
    std::uint64_t deadTotal_ = 0;
    std::uint64_t liveTotal_ = 0;
};

} // namespace mrp::stats

#endif // MRP_STATS_ROC_HPP
