#include "stats/roc.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace mrp::stats {

RocAccumulator::RocAccumulator(int min_conf, int max_conf)
    : minConf_(min_conf), maxConf_(max_conf),
      deadHist_(static_cast<std::size_t>(max_conf - min_conf) + 1, 0),
      liveHist_(static_cast<std::size_t>(max_conf - min_conf) + 1, 0)
{
    fatalIf(min_conf >= max_conf, "RocAccumulator: empty confidence range");
}

void
RocAccumulator::add(int confidence, bool dead)
{
    const int c = std::clamp(confidence, minConf_, maxConf_);
    const auto bin = static_cast<std::size_t>(c - minConf_);
    if (dead) {
        ++deadHist_[bin];
        ++deadTotal_;
    } else {
        ++liveHist_[bin];
        ++liveTotal_;
    }
}

std::vector<RocPoint>
RocAccumulator::curve() const
{
    std::vector<RocPoint> out;
    if (deadTotal_ == 0 || liveTotal_ == 0)
        return out;

    // Classify dead when confidence > t. Walking t upward from below
    // minConf_, the counts of samples above t shrink monotonically.
    std::uint64_t dead_above = deadTotal_;
    std::uint64_t live_above = liveTotal_;
    out.push_back({minConf_ - 1, 1.0, 1.0});
    for (std::size_t bin = 0; bin < deadHist_.size(); ++bin) {
        dead_above -= deadHist_[bin];
        live_above -= liveHist_[bin];
        out.push_back({
            minConf_ + static_cast<int>(bin),
            static_cast<double>(live_above) /
                static_cast<double>(liveTotal_),
            static_cast<double>(dead_above) /
                static_cast<double>(deadTotal_),
        });
    }
    return out;
}

double
RocAccumulator::tprAtFpr(double fpr) const
{
    const auto pts = curve();
    if (pts.empty())
        return 0.0;
    // Points run from (1,1) down to (0,0) in FPR; find the bracketing
    // pair and interpolate.
    for (std::size_t i = 1; i < pts.size(); ++i) {
        const auto& hi = pts[i - 1];
        const auto& lo = pts[i];
        if (lo.falsePositiveRate <= fpr && fpr <= hi.falsePositiveRate) {
            const double span =
                hi.falsePositiveRate - lo.falsePositiveRate;
            if (span <= 0.0)
                return lo.truePositiveRate;
            const double w = (fpr - lo.falsePositiveRate) / span;
            return lo.truePositiveRate +
                   w * (hi.truePositiveRate - lo.truePositiveRate);
        }
    }
    return pts.back().truePositiveRate;
}

} // namespace mrp::stats
