/**
 * @file
 * Per-cache-level event counters.
 */

#ifndef MRP_STATS_LEVEL_STATS_HPP
#define MRP_STATS_LEVEL_STATS_HPP

#include <cstdint>

namespace mrp::stats {

/**
 * Counters kept by each cache level. "Demand" accesses are the loads
 * and stores issued by the core; prefetches and writebacks are counted
 * separately so that MPKI is computed over demand misses only.
 */
struct LevelStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t prefetchAccesses = 0;
    std::uint64_t prefetchHits = 0;
    std::uint64_t prefetchMisses = 0;
    std::uint64_t writebackAccesses = 0;
    std::uint64_t writebackHits = 0;
    std::uint64_t writebackMisses = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    /** Zero all counters (used at the end of the warmup phase). */
    void reset() { *this = LevelStats{}; }

    std::uint64_t
    totalAccesses() const
    {
        return demandAccesses + prefetchAccesses + writebackAccesses;
    }

    std::uint64_t
    totalMisses() const
    {
        return demandMisses + prefetchMisses + writebackMisses;
    }

    /**
     * Self-consistency: demand and writeback accesses split exactly
     * into hits and misses, prefetch hits/misses never exceed prefetch
     * accesses (the private levels count prefetch fills without a
     * lookup, so their split can be empty), dirty evictions are a
     * subset of evictions, and bypasses only ever happen on misses. A
     * false return means a counting bug somewhere in the cache model,
     * not a property of the workload.
     */
    bool
    consistent() const
    {
        return demandAccesses == demandHits + demandMisses &&
               prefetchHits + prefetchMisses <= prefetchAccesses &&
               writebackAccesses == writebackHits + writebackMisses &&
               dirtyEvictions <= evictions && bypasses <= totalMisses();
    }
};

} // namespace mrp::stats

#endif // MRP_STATS_LEVEL_STATS_HPP
