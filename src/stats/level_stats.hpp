/**
 * @file
 * Per-cache-level event counters.
 */

#ifndef MRP_STATS_LEVEL_STATS_HPP
#define MRP_STATS_LEVEL_STATS_HPP

#include <cstdint>

namespace mrp::stats {

/**
 * Counters kept by each cache level. "Demand" accesses are the loads
 * and stores issued by the core; prefetches and writebacks are counted
 * separately so that MPKI is computed over demand misses only.
 */
struct LevelStats
{
    std::uint64_t demandAccesses = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t prefetchAccesses = 0;
    std::uint64_t prefetchHits = 0;
    std::uint64_t prefetchMisses = 0;
    std::uint64_t writebackAccesses = 0;
    std::uint64_t writebackHits = 0;
    std::uint64_t writebackMisses = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirtyEvictions = 0;

    /** Zero all counters (used at the end of the warmup phase). */
    void reset() { *this = LevelStats{}; }

    std::uint64_t
    totalAccesses() const
    {
        return demandAccesses + prefetchAccesses + writebackAccesses;
    }

    std::uint64_t
    totalMisses() const
    {
        return demandMisses + prefetchMisses + writebackMisses;
    }
};

} // namespace mrp::stats

#endif // MRP_STATS_LEVEL_STATS_HPP
