/**
 * @file
 * Shared reuse-distance accounting primitives.
 *
 * Two consumers need the same bookkeeping over a stream of block
 * touches: the telemetry ReuseDistanceTracker (temporal distances into
 * the registry's power-of-two Histogram) and the miss-ratio-curve
 * engine in src/mrc (stack distances with SHARDS rate-corrected
 * weights). The pieces they share live here:
 *
 *  - ReuseDistanceCounter: the last-access map + access clock that
 *    turns a key stream into temporal distances, with the invariant
 *    `reuse observations + cold observations == accesses observed`
 *    that the telemetry integration test reconciles against
 *    LevelStats.
 *  - Log2Histogram: a floor-log2 bucketed histogram with double
 *    weights whose bucket boundaries are exactly the powers of two, so
 *    "total weight strictly below 2^m" — the query a miss-ratio curve
 *    evaluates at every power-of-two cache size — is an exact prefix
 *    sum, and SHARDS corrections can add fractional weight.
 *
 * (The registry Histogram in telemetry/metrics.hpp is upper-INCLUSIVE
 * per bucket — bounds[i-1] < v <= bounds[i] — which cannot answer the
 * strict "below 2^m" prefix query; that is why the MRC engine needs
 * this second bucketing rather than reusing the registry type.)
 */

#ifndef MRP_STATS_REUSE_HISTOGRAM_HPP
#define MRP_STATS_REUSE_HISTOGRAM_HPP

#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mrp::stats {

/**
 * Temporal reuse-distance counter: for each observed key, the number
 * of other observations between consecutive observations of that key.
 * Every observe() is either a reuse (finite distance) or the first
 * touch of its key (kCold), so
 * `accesses() == coldAccesses() + reuse observations` always holds.
 */
class ReuseDistanceCounter
{
  public:
    /** Returned for the first touch of a key. */
    static constexpr std::uint64_t kCold = ~0ull;

    /** Observe one access; kCold on first touch, else the count of
     * observations since the previous access to @p key. */
    std::uint64_t
    observe(std::uint64_t key)
    {
        ++clock_;
        const auto [it, inserted] = lastAccess_.try_emplace(key, clock_);
        if (inserted) {
            ++cold_;
            return kCold;
        }
        const std::uint64_t d = clock_ - it->second - 1;
        it->second = clock_;
        return d;
    }

    std::uint64_t accesses() const { return clock_; }
    std::uint64_t coldAccesses() const { return cold_; }
    /** Distinct keys seen (the working-set size so far). */
    std::size_t uniqueKeys() const { return lastAccess_.size(); }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> lastAccess_;
    std::uint64_t clock_ = 0;
    std::uint64_t cold_ = 0;
};

/**
 * Floor-log2 histogram over unsigned values with double weights.
 * Bucket 0 holds value 0; bucket k >= 1 holds values in
 * [2^(k-1), 2^k), clamped into the last bucket above 2^maxExp.
 */
class Log2Histogram
{
  public:
    /** Buckets cover values up to 2^maxExp (larger values clamp). */
    explicit Log2Histogram(unsigned max_exp = 48)
        : buckets_(static_cast<std::size_t>(max_exp) + 2, 0.0)
    {
    }

    std::size_t
    bucketOf(std::uint64_t value) const
    {
        if (value == 0)
            return 0;
        const auto b = static_cast<std::size_t>(std::bit_width(value));
        return b < buckets_.size() ? b : buckets_.size() - 1;
    }

    void
    record(std::uint64_t value, double weight = 1.0)
    {
        buckets_[bucketOf(value)] += weight;
        total_ += weight;
    }

    /** Add weight directly to the value-0 bucket — the SHARDS_adj
     * expected-minus-actual correction path (may be negative). */
    void
    addToFirstBucket(double weight)
    {
        buckets_[0] += weight;
        total_ += weight;
    }

    /** Total weight of values strictly below 2^m (exact: the bucket
     * boundaries are the powers of two). */
    double
    weightBelowPow2(unsigned m) const
    {
        double w = 0.0;
        const std::size_t end =
            std::min<std::size_t>(m + 1, buckets_.size());
        for (std::size_t i = 0; i < end; ++i)
            w += buckets_[i];
        return w;
    }

    double total() const { return total_; }
    std::size_t bucketCount() const { return buckets_.size(); }
    double bucketWeight(std::size_t i) const { return buckets_[i]; }

  private:
    std::vector<double> buckets_;
    double total_ = 0.0;
};

} // namespace mrp::stats

#endif // MRP_STATS_REUSE_HISTOGRAM_HPP
