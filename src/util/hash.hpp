/**
 * @file
 * Small, fast, deterministic hash functions used for table indexing.
 */

#ifndef MRP_UTIL_HASH_HPP
#define MRP_UTIL_HASH_HPP

#include <cstdint>

namespace mrp {

/**
 * Finalizer-style 64-bit mixer (splitmix64 finalizer). Good avalanche,
 * cheap, deterministic across platforms.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/**
 * Hash a value into [0, tableSize). @p tableSize need not be a power of
 * two; a multiplicative scheme is used to spread entropy.
 */
constexpr std::uint32_t
hashToIndex(std::uint64_t value, std::uint32_t table_size)
{
    if (table_size <= 1)
        return 0;
    return static_cast<std::uint32_t>(mix64(value) % table_size);
}

/**
 * SHARDS spatial-sampling hash domain: block keys hash into
 * [0, kShardsModulus) and a key is sampled iff its hash is below the
 * sampler's threshold T, giving sampling rate T / kShardsModulus.
 * Lowering T always selects a SUBSET of the previously sampled keys —
 * the property the fixed-size (SHARDS_adj) variant relies on — and
 * every consumer (the MRC samplers, trace::TraceSpec::sampled) uses
 * THIS hash so a block's sampled-or-not fate is global and
 * deterministic.
 */
inline constexpr std::uint64_t kShardsModulus = 1ull << 24;

/** Hash of a block key in the SHARDS sampling domain. */
constexpr std::uint64_t
shardsHash(std::uint64_t block_key)
{
    return mix64(block_key) & (kShardsModulus - 1);
}

/** True iff @p block_key is sampled at rate 2^-rate_log2. */
constexpr bool
shardsKeep(std::uint64_t block_key, unsigned rate_log2)
{
    return shardsHash(block_key) < (kShardsModulus >> rate_log2);
}

/**
 * The i-th of a family of independent hash functions, used by the
 * skewed tables of SDBP.
 */
constexpr std::uint64_t
skewedHash(std::uint64_t value, unsigned i)
{
    return mix64(value + 0x100000001b3ull * (i + 1));
}

} // namespace mrp

#endif // MRP_UTIL_HASH_HPP
