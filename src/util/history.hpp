/**
 * @file
 * A fixed-capacity most-recent-first history buffer, used for the
 * per-core history of recent memory-access PCs.
 */

#ifndef MRP_UTIL_HISTORY_HPP
#define MRP_UTIL_HISTORY_HPP

#include <cstddef>
#include <vector>

#include "util/logging.hpp"

namespace mrp {

/**
 * Ring buffer exposing its contents most-recent-first: recent(0) is the
 * last pushed element, recent(1) the one before, etc. Slots that have
 * never been written read as the default value.
 */
template <typename T>
class History
{
  public:
    explicit History(std::size_t capacity, T fill = T{})
        : buf_(capacity, fill), head_(0)
    {
        panicIf(capacity == 0, "History capacity must be nonzero");
    }

    /** Push a new most-recent element, evicting the oldest. */
    void
    push(const T& v)
    {
        head_ = (head_ + 1) % buf_.size();
        buf_[head_] = v;
    }

    /** The i-th most recent element; recent(0) is the newest. */
    const T&
    recent(std::size_t i) const
    {
        panicIf(i >= buf_.size(), "History::recent out of range");
        return buf_[(head_ + buf_.size() - i) % buf_.size()];
    }

    std::size_t capacity() const { return buf_.size(); }

  private:
    std::vector<T> buf_;
    std::size_t head_;
};

} // namespace mrp

#endif // MRP_UTIL_HISTORY_HPP
