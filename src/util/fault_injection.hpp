/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * Production code marks *sites* — named points where the outside world
 * can fail — with the check*() calls below. Tests arm a site with a
 * Spec describing what should go wrong and when; unarmed sites cost a
 * single relaxed atomic load. Everything is reproducible: firing is
 * driven by per-site hit counters and byte corruption by the library's
 * own xoroshiro generator seeded from the Spec, so a failing case
 * replays identically.
 *
 * Site names in this repo follow "<module>.<operation>[.<detail>]",
 * e.g. "trace_io.read.alloc" or "runner.execute".
 */

#ifndef MRP_UTIL_FAULT_INJECTION_HPP
#define MRP_UTIL_FAULT_INJECTION_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace mrp::fault {

/** What an armed site does when it fires. */
enum class Kind {
    IoError,     //!< checkIo throws FatalError(ErrorCode::Io)
    CorruptByte, //!< checkCorrupt flips a deterministic bit in a buffer
    AllocFail,   //!< checkAlloc throws std::bad_alloc
    Stall,       //!< checkStall sleeps, simulating a wedged worker
};

/** When and how an armed site fires. */
struct Spec
{
    Kind kind = Kind::IoError;
    /** 1-based hit index at which the fault starts firing; hits before
     * it pass through (e.g. 3 = fail the third visit). */
    std::uint64_t firstHit = 1;
    /** How many hits fire once started; -1 = every hit from firstHit
     * on. With the default (1), a retry after the failure succeeds —
     * the shape of a transient fault. */
    std::int64_t maxFires = 1;
    /** Seed for CorruptByte position/bit selection. */
    std::uint64_t seed = 1;
    /** Sleep duration for Stall fires. */
    unsigned stallMillis = 50;
};

/** Arm @p site with @p spec, resetting its hit/fire counters. */
void arm(const std::string& site, const Spec& spec);

/**
 * Arm a site from a CLI flag value:
 *
 *   SITE:KIND[:FIRSTHIT[:MAXFIRES[:STALLMS]]]
 *
 * with KIND one of io|stall|alloc|corrupt, e.g.
 * "queue.journal.write:io:2:1". This is how faults reach worker
 * processes: the broker forwards --fault flags it was given, so a
 * chaos run arms the same sites on every side of the pipe. Throws
 * FatalError(ErrorCode::Config) on a malformed spec.
 */
void armFromSpec(const std::string& spec);

/** Disarm @p site (no-op if not armed); counters are kept so tests can
 * still read hits()/fires() afterwards. */
void disarm(const std::string& site);

/** Disarm every site and drop all counters. */
void disarmAll();

/** True if any site is armed (the production fast-path check). */
bool anyArmed();

/** Times @p site was visited since it was last armed. */
std::uint64_t hits(const std::string& site);

/** Times @p site actually fired since it was last armed. */
std::uint64_t fires(const std::string& site);

/**
 * Site checkpoints. Each is a no-op unless @p site is armed with the
 * matching Kind and the hit falls in the firing window.
 */

/** Throws FatalError(ErrorCode::Io, "injected I/O failure: " + what). */
void checkIo(const std::string& site, const std::string& what);

/** Throws std::bad_alloc, as a real allocation failure would. */
void checkAlloc(const std::string& site);

/** Sleeps for the armed Spec's stallMillis. */
void checkStall(const std::string& site);

/** Flips one deterministically-chosen bit in [data, data+size). */
void checkCorrupt(const std::string& site, void* data,
                  std::size_t size);

/** RAII armer: arms in the constructor, disarms in the destructor. */
class Scoped
{
  public:
    Scoped(std::string site, const Spec& spec);
    ~Scoped();
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

  private:
    std::string site_;
};

} // namespace mrp::fault

#endif // MRP_UTIL_FAULT_INJECTION_HPP
