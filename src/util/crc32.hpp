/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
 * guarding the v2 trace footer and checkpoint-journal lines. Table is
 * generated at compile time; the implementation is self-contained so
 * checksums are bit-identical across platforms.
 */

#ifndef MRP_UTIL_CRC32_HPP
#define MRP_UTIL_CRC32_HPP

#include <array>
#include <cstddef>
#include <cstdint>

namespace mrp {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    makeCrc32Table();

} // namespace detail

/** Incremental CRC-32 accumulator. */
class Crc32
{
  public:
    /** Fold @p size bytes at @p data into the running checksum. */
    void
    update(const void* data, std::size_t size)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        std::uint32_t c = state_;
        for (std::size_t i = 0; i < size; ++i)
            c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
        state_ = c;
    }

    /** Final checksum of everything updated so far. */
    std::uint32_t value() const { return ~state_; }

    /** One-shot checksum of a buffer. */
    static std::uint32_t
    of(const void* data, std::size_t size)
    {
        Crc32 crc;
        crc.update(data, size);
        return crc.value();
    }

  private:
    std::uint32_t state_ = 0xFFFFFFFFu;
};

} // namespace mrp

#endif // MRP_UTIL_CRC32_HPP
