/**
 * @file
 * CRC-framed append-only JSONL journaling — the shared durability
 * substrate of the runner checkpoint journal and the queue work log.
 *
 * Every line is the CRC-32 of its JSON body in fixed hex followed by
 * the body:
 *
 *   <crc32-hex8> {"type": "...", ...}\n
 *
 * Appends are one write(2) plus an fsync, so a crash can tear at most
 * the final line. Scanning tolerates exactly that: an unparsable
 * *final* chunk is dropped as a torn tail, while an unparsable
 * interior line is real corruption and raises
 * FatalError(ErrorCode::CorruptInput). AppendFile heals a torn tail
 * by truncating to the valid prefix before appending.
 *
 * Fault-injection sites (per AppendFile, from its site prefix):
 *   "<prefix>.open"   IoError — fail opening the file
 *   "<prefix>.write"  IoError — fail an append
 */

#ifndef MRP_UTIL_JOURNAL_HPP
#define MRP_UTIL_JOURNAL_HPP

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace mrp::journal {

/**
 * Version of the queue/journal record schema. Bumped whenever the
 * shape of queue records or the journal fingerprinting contract
 * changes incompatibly. Folded into Study::fingerprint() and written
 * into every work-queue header record, so a broker refuses (typed
 * ErrorCode::Config) journals written under a different schema — a
 * pre-queue checkpoint journal can never be silently misread as a
 * queue log.
 *
 * v2: span-context propagation on the wire — JOB lines carry the
 * study trace id and the lease span id, HB/RESULT lines echo the
 * span id, and workers may ship an OBS telemetry line per job.
 */
inline constexpr unsigned kQueueSchemaVersion = 2;

/** Frame one JSON body as a journal line (checksum + body + \n). */
std::string frameLine(const std::string& json);

/** Verify and strip the checksum frame; std::nullopt if the line is
 * malformed or fails its checksum. Trailing CR/LF are tolerated. */
std::optional<std::string> unframeLine(const std::string& line);

struct Scan
{
    /** JSON bodies of every valid line, in file order. */
    std::vector<std::string> lines;
    /** Byte length of the valid line prefix (everything before a
     * torn or missing tail). */
    std::uint64_t validBytes = 0;
};

/**
 * Walk @p content line by line. An unparsable *final* chunk is a torn
 * tail and is excluded from validBytes; an unparsable interior line
 * means corruption and throws FatalError(ErrorCode::CorruptInput)
 * naming @p path and the line number.
 */
Scan scanContent(const std::string& content, const std::string& path);

/** Read a whole file; throws FatalError(ErrorCode::Io) on failure. */
std::string readWholeFile(const std::string& path);

bool fileExists(const std::string& path);

/**
 * Append-only fsync'd journal writer. Thread-safe. Opening an
 * existing file first heals any torn tail (truncates to the valid
 * line prefix) so appends never concatenate onto a partial line.
 */
class AppendFile
{
  public:
    /** @param site_prefix names the fault-injection sites (see file
     * comment); e.g. "runner.journal" or "queue.journal". */
    AppendFile(const std::string& path,
               const std::string& site_prefix);
    ~AppendFile();
    AppendFile(const AppendFile&) = delete;
    AppendFile& operator=(const AppendFile&) = delete;

    /** Frame @p json and append it with one write(2) + fsync. */
    void append(const std::string& json);

    const std::string& path() const { return path_; }

  private:
    std::mutex mutex_;
    std::string path_;
    std::string sitePrefix_;
    int fd_ = -1;
};

} // namespace mrp::journal

#endif // MRP_UTIL_JOURNAL_HPP
