/**
 * @file
 * Small numeric helpers: geometric/arithmetic means over containers.
 */

#ifndef MRP_UTIL_MATH_UTIL_HPP
#define MRP_UTIL_MATH_UTIL_HPP

#include <cmath>
#include <vector>

#include "util/logging.hpp"

namespace mrp {

/** Geometric mean of a sequence of positive values. */
inline double
geomean(const std::vector<double>& xs)
{
    fatalIf(xs.empty(), "geomean of empty sequence");
    double acc = 0.0;
    for (double x : xs) {
        fatalIf(x <= 0.0, "geomean requires positive values");
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Arithmetic mean. */
inline double
mean(const std::vector<double>& xs)
{
    fatalIf(xs.empty(), "mean of empty sequence");
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

} // namespace mrp

#endif // MRP_UTIL_MATH_UTIL_HPP
