#include "util/subprocess.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::proc {

std::string
ExitStatus::toString() const
{
    if (exited)
        return "exit " + std::to_string(exitCode);
    if (signaled)
        return "signal " + std::to_string(signal) +
               (signal == SIGKILL ? " (SIGKILL)" : "");
    return "unknown";
}

namespace {

void
closeIfOpen(int& fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    fatalIf(flags < 0 ||
                ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0,
            ErrorCode::Io,
            std::string("fcntl(O_NONBLOCK) failed: ") +
                std::strerror(errno));
}

} // namespace

Child
Child::spawn(const std::string& path,
             const std::vector<std::string>& args)
{
    fault::checkIo("subprocess.spawn", "spawning " + path);
    fault::checkStall("subprocess.spawn");

    int to_child[2];   // parent writes [1] -> child stdin [0]
    int from_child[2]; // child stdout [1] -> parent reads [0]
    fatalIf(::pipe(to_child) != 0, ErrorCode::Io,
            std::string("pipe failed: ") + std::strerror(errno));
    if (::pipe(from_child) != 0) {
        const int err = errno;
        ::close(to_child[0]);
        ::close(to_child[1]);
        fatalIf(true, ErrorCode::Io,
                std::string("pipe failed: ") + std::strerror(err));
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int err = errno;
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        fatalIf(true, ErrorCode::Io,
                std::string("fork failed: ") + std::strerror(err));
    }

    if (pid == 0) {
        // Child: wire the pipes onto stdin/stdout and exec. On any
        // failure _exit(127) — the parent sees EOF + exit 127.
        ::close(to_child[1]);
        ::close(from_child[0]);
        if (::dup2(to_child[0], STDIN_FILENO) < 0 ||
            ::dup2(from_child[1], STDOUT_FILENO) < 0)
            ::_exit(127);
        ::close(to_child[0]);
        ::close(from_child[1]);
        std::vector<char*> argv;
        argv.push_back(const_cast<char*>(path.c_str()));
        for (const auto& a : args)
            argv.push_back(const_cast<char*>(a.c_str()));
        argv.push_back(nullptr);
        ::execv(path.c_str(), argv.data());
        ::_exit(127);
    }

    // Parent.
    ::close(to_child[0]);
    ::close(from_child[1]);
    // SIGPIPE on a dead worker must surface as EPIPE from write(2),
    // not kill the broker.
    ::signal(SIGPIPE, SIG_IGN);
    setNonBlocking(from_child[0]);

    Child c;
    c.pid_ = pid;
    c.inFd_ = to_child[1];
    c.outFd_ = from_child[0];
    return c;
}

Child::~Child()
{
    if (pid_ > 0 && !reaped_) {
        ::kill(pid_, SIGKILL);
        int raw = 0;
        while (::waitpid(pid_, &raw, 0) < 0 && errno == EINTR)
            ;
    }
    closeIfOpen(inFd_);
    closeIfOpen(outFd_);
}

Child::Child(Child&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      inFd_(std::exchange(other.inFd_, -1)),
      outFd_(std::exchange(other.outFd_, -1)),
      eof_(std::exchange(other.eof_, false)),
      buffer_(std::move(other.buffer_)),
      reaped_(std::move(other.reaped_))
{
}

Child&
Child::operator=(Child&& other) noexcept
{
    if (this != &other) {
        if (pid_ > 0 && !reaped_) {
            ::kill(pid_, SIGKILL);
            int raw = 0;
            while (::waitpid(pid_, &raw, 0) < 0 && errno == EINTR)
                ;
        }
        closeIfOpen(inFd_);
        closeIfOpen(outFd_);
        pid_ = std::exchange(other.pid_, -1);
        inFd_ = std::exchange(other.inFd_, -1);
        outFd_ = std::exchange(other.outFd_, -1);
        eof_ = std::exchange(other.eof_, false);
        buffer_ = std::move(other.buffer_);
        reaped_ = std::move(other.reaped_);
    }
    return *this;
}

void
Child::writeLine(const std::string& line)
{
    fault::checkIo("subprocess.write",
                   "writing to pid " + std::to_string(pid_));
    fatalIf(inFd_ < 0, ErrorCode::Io,
            "write to closed stdin of pid " + std::to_string(pid_));
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::write(inFd_, framed.data() + off,
                                  framed.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n <= 0, ErrorCode::Io,
                "write to worker pid " + std::to_string(pid_) +
                    " failed: " + std::strerror(errno));
        off += static_cast<std::size_t>(n);
    }
}

std::vector<std::string>
Child::drainLines()
{
    fault::checkIo("subprocess.read",
                   "reading from pid " + std::to_string(pid_));
    std::vector<std::string> lines;
    char chunk[4096];
    while (outFd_ >= 0 && !eof_) {
        const ssize_t n = ::read(outFd_, chunk, sizeof(chunk));
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            eof_ = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        fatalIf(true, ErrorCode::Io,
                "read from worker pid " + std::to_string(pid_) +
                    " failed: " + std::strerror(errno));
    }
    std::size_t start = 0;
    for (;;) {
        const std::size_t nl = buffer_.find('\n', start);
        if (nl == std::string::npos)
            break;
        lines.push_back(buffer_.substr(start, nl - start));
        start = nl + 1;
    }
    buffer_.erase(0, start);
    if (eof_ && !buffer_.empty()) {
        lines.push_back(std::move(buffer_));
        buffer_.clear();
    }
    return lines;
}

void
Child::kill(int sig) const
{
    if (pid_ > 0 && !reaped_)
        ::kill(pid_, sig);
}

std::optional<ExitStatus>
Child::tryReap()
{
    if (reaped_)
        return reaped_;
    if (pid_ <= 0)
        return std::nullopt;
    fault::checkIo("subprocess.reap",
                   "reaping pid " + std::to_string(pid_));
    int raw = 0;
    const pid_t r = ::waitpid(pid_, &raw, WNOHANG);
    if (r == 0)
        return std::nullopt;
    if (r < 0) {
        if (errno == EINTR)
            return std::nullopt;
        fatalIf(true, ErrorCode::Io,
                "waitpid(" + std::to_string(pid_) +
                    ") failed: " + std::strerror(errno));
    }
    reaped_ = decode(raw);
    return reaped_;
}

ExitStatus
Child::waitReap()
{
    if (reaped_)
        return *reaped_;
    fatalIf(pid_ <= 0, ErrorCode::Internal,
            "waitReap on invalid child");
    fault::checkIo("subprocess.reap",
                   "reaping pid " + std::to_string(pid_));
    int raw = 0;
    while (::waitpid(pid_, &raw, 0) < 0) {
        fatalIf(errno != EINTR, ErrorCode::Io,
                "waitpid(" + std::to_string(pid_) +
                    ") failed: " + std::strerror(errno));
    }
    reaped_ = decode(raw);
    return *reaped_;
}

void
Child::closeStdin()
{
    closeIfOpen(inFd_);
}

ExitStatus
Child::decode(int raw_status)
{
    ExitStatus st;
    if (WIFEXITED(raw_status)) {
        st.exited = true;
        st.exitCode = WEXITSTATUS(raw_status);
    } else if (WIFSIGNALED(raw_status)) {
        st.signaled = true;
        st.signal = WTERMSIG(raw_status);
    }
    return st;
}

} // namespace mrp::proc
