/**
 * @file
 * Fundamental type aliases shared across the library.
 */

#ifndef MRP_UTIL_TYPES_HPP
#define MRP_UTIL_TYPES_HPP

#include <cstdint>

namespace mrp {

/** A physical (or simulated-physical) byte address. */
using Addr = std::uint64_t;

/** A program counter value. */
using Pc = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** An instruction count. */
using InstCount = std::uint64_t;

/** Identifier of a core in a multi-core simulation. */
using CoreId = std::uint32_t;

/** Log2 of the cache block size used throughout the library (64 B). */
inline constexpr unsigned kBlockShift = 6;

/** Cache block size in bytes. */
inline constexpr unsigned kBlockBytes = 1u << kBlockShift;

/** Strip the block offset from an address, yielding the block address. */
constexpr Addr
blockAddr(Addr a)
{
    return a >> kBlockShift;
}

/** Extract the within-block byte offset of an address. */
constexpr unsigned
blockOffset(Addr a)
{
    return static_cast<unsigned>(a & (kBlockBytes - 1));
}

} // namespace mrp

#endif // MRP_UTIL_TYPES_HPP
