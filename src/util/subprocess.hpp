/**
 * @file
 * Pipe/exec subprocess supervision for the broker/worker protocol.
 *
 * A Child is one spawned process with a pipe to its stdin and from
 * its stdout (stderr passes through to the parent's). The parent
 * writes whole lines and drains whole lines; reads are non-blocking
 * and buffered, so the broker can multiplex many workers with
 * poll(2) on stdoutFd(). Death is observed two ways: EOF on the
 * stdout pipe (eof()) and waitpid (tryReap()/waitReap()) — a worker
 * killed with SIGKILL produces both. None of this is on any
 * simulation path; robustness, not speed, is the design bar.
 *
 * Fault-injection sites:
 *   "subprocess.spawn"  IoError — fail pipe/fork
 *   "subprocess.write"  IoError — fail a line write (worker gone)
 *   "subprocess.read"   IoError — fail a drain
 *   "subprocess.reap"   IoError — fail a waitpid
 */

#ifndef MRP_UTIL_SUBPROCESS_HPP
#define MRP_UTIL_SUBPROCESS_HPP

#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace mrp::proc {

/** Exit disposition of a reaped child. */
struct ExitStatus
{
    bool exited = false;   //!< normal exit (code below)
    int exitCode = 0;
    bool signaled = false; //!< killed by a signal (signal below)
    int signal = 0;

    /** Human-readable form, e.g. "exit 0" / "signal 9 (SIGKILL)". */
    std::string toString() const;
};

/**
 * One supervised child process. Movable, not copyable; the
 * destructor closes the pipes and, if the child was never reaped,
 * SIGKILLs and reaps it (a Child never outlives its supervisor).
 */
class Child
{
  public:
    /** Spawn @p path with @p args (argv[1..]); throws
     * FatalError(ErrorCode::Io) on pipe/fork/exec-setup failure. An
     * exec failure surfaces as instant EOF + exit code 127. */
    static Child spawn(const std::string& path,
                       const std::vector<std::string>& args);

    Child() = default;
    ~Child();
    Child(Child&& other) noexcept;
    Child& operator=(Child&& other) noexcept;
    Child(const Child&) = delete;
    Child& operator=(const Child&) = delete;

    pid_t pid() const { return pid_; }
    bool valid() const { return pid_ > 0; }

    /** Pollable fd of the child's stdout (non-blocking). */
    int stdoutFd() const { return outFd_; }

    /** Write one line (newline appended) to the child's stdin;
     * throws FatalError(ErrorCode::Io) if the pipe is broken. */
    void writeLine(const std::string& line);

    /**
     * Drain whatever the child has written: returns every complete
     * line currently available (without newlines). Never blocks.
     * After the child closes its end, the final drain returns any
     * buffered partial line and eof() turns true.
     */
    std::vector<std::string> drainLines();

    /** True once the stdout pipe has reached EOF. */
    bool eof() const { return eof_; }

    /** Send @p sig (default SIGKILL); no-op once reaped. */
    void kill(int sig) const;

    /** Non-blocking reap; the status is remembered (later calls
     * return it again). */
    std::optional<ExitStatus> tryReap();

    /** Blocking reap. */
    ExitStatus waitReap();

    /** Close the child's stdin (EOF is the polite shutdown nudge). */
    void closeStdin();

  private:
    ExitStatus decode(int raw_status);

    pid_t pid_ = -1;
    int inFd_ = -1;  //!< parent writes -> child stdin
    int outFd_ = -1; //!< parent reads <- child stdout
    bool eof_ = false;
    std::string buffer_; //!< partial-line carry between drains
    std::optional<ExitStatus> reaped_;
};

} // namespace mrp::proc

#endif // MRP_UTIL_SUBPROCESS_HPP
