#include "util/journal.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "util/crc32.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::journal {

namespace {

std::string
hex8(std::uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

} // namespace

std::string
frameLine(const std::string& json)
{
    return hex8(Crc32::of(json.data(), json.size())) + " " + json +
           "\n";
}

std::optional<std::string>
unframeLine(const std::string& line)
{
    std::string body = line;
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == '\r'))
        body.pop_back();
    if (body.size() < 10 || body[8] != ' ')
        return std::nullopt;
    std::uint32_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        const char h = body[static_cast<std::size_t>(i)];
        stored <<= 4;
        if (h >= '0' && h <= '9')
            stored |= static_cast<std::uint32_t>(h - '0');
        else if (h >= 'a' && h <= 'f')
            stored |= static_cast<std::uint32_t>(h - 'a' + 10);
        else
            return std::nullopt;
    }
    std::string json = body.substr(9);
    if (Crc32::of(json.data(), json.size()) != stored)
        return std::nullopt;
    return json;
}

Scan
scanContent(const std::string& content, const std::string& path)
{
    Scan scan;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < content.size()) {
        ++line_no;
        const std::size_t nl = content.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::size_t len =
            (complete ? nl : content.size()) - pos;
        auto json = unframeLine(content.substr(pos, len));
        const std::size_t next = complete ? nl + 1 : content.size();
        if (!json) {
            fatalIf(next < content.size(), ErrorCode::CorruptInput,
                    "corrupt journal " + path + ": line " +
                        std::to_string(line_no) +
                        " fails checksum but is not the final line");
            return scan; // torn tail: drop it
        }
        scan.lines.push_back(std::move(*json));
        scan.validBytes = next;
        pos = next;
    }
    return scan;
}

std::string
readWholeFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, ErrorCode::Io, "cannot open journal: " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    fatalIf(is.bad(), ErrorCode::Io,
            "read failed on journal: " + path);
    return ss.str();
}

bool
fileExists(const std::string& path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

AppendFile::AppendFile(const std::string& path,
                       const std::string& site_prefix)
    : path_(path), sitePrefix_(site_prefix)
{
    fault::checkIo(sitePrefix_ + ".open",
                   "opening journal " + path_);
    // Heal a torn tail left by a crash: truncate to the valid line
    // prefix so new appends never concatenate onto a partial line.
    if (fileExists(path_)) {
        const std::string content = readWholeFile(path_);
        const auto scan = scanContent(content, path_);
        if (scan.validBytes < content.size())
            fatalIf(::truncate(path_.c_str(),
                               static_cast<off_t>(scan.validBytes)) !=
                        0,
                    ErrorCode::Io,
                    "cannot truncate torn journal tail: " + path_ +
                        ": " + std::strerror(errno));
    }
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    fatalIf(fd_ < 0, ErrorCode::Io,
            "cannot open journal for append: " + path_ + ": " +
                std::strerror(errno));
}

AppendFile::~AppendFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
AppendFile::append(const std::string& json)
{
    const std::string line = frameLine(json);
    std::lock_guard<std::mutex> lock(mutex_);
    fault::checkIo(sitePrefix_ + ".write",
                   "appending to journal " + path_);
    // One write(2) per line: a crash tears at most the final line,
    // which the scanner and the constructor's truncation tolerate.
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n <= 0, ErrorCode::Io,
                "journal write failed: " + path_ + ": " +
                    std::strerror(errno));
        off += static_cast<std::size_t>(n);
    }
    fatalIf(::fsync(fd_) != 0, ErrorCode::Io,
            "journal fsync failed: " + path_ + ": " +
                std::strerror(errno));
}

} // namespace mrp::journal
