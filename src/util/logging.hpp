/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for internal
 * invariant violations, fatal() for user/configuration errors.
 */

#ifndef MRP_UTIL_LOGGING_HPP
#define MRP_UTIL_LOGGING_HPP

#include <stdexcept>
#include <string>

namespace mrp {

/** Thrown when the library itself detects an internal inconsistency. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error("panic: " + msg) {}
};

/** Thrown when a caller supplies an invalid configuration or argument. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error("fatal: " + msg) {}
};

/** Report an internal bug; never returns. */
[[noreturn]] inline void
panic(const std::string& msg)
{
    throw PanicError(msg);
}

/** Report a user error (bad configuration, bad argument); never returns. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

/** Panic unless a condition holds. */
inline void
panicIf(bool cond, const std::string& msg)
{
    if (cond)
        panic(msg);
}

/** Fatal error unless a condition holds. */
inline void
fatalIf(bool cond, const std::string& msg)
{
    if (cond)
        fatal(msg);
}

} // namespace mrp

#endif // MRP_UTIL_LOGGING_HPP
