/**
 * @file
 * Error-reporting helpers in the gem5 tradition: panic() for internal
 * invariant violations, fatal() for user/configuration errors.
 *
 * Both exception types carry a machine-readable ErrorCode so callers
 * that capture failures as data (the experiment runner's RunResult,
 * the JSON reports) can distinguish corrupt input from configuration
 * mistakes from internal bugs without parsing message strings.
 */

#ifndef MRP_UTIL_LOGGING_HPP
#define MRP_UTIL_LOGGING_HPP

#include <stdexcept>
#include <string>
#include <string_view>

namespace mrp {

/**
 * Machine-readable failure classification, carried by FatalError /
 * PanicError and surfaced in RunResult::errorCode and the batch
 * reports. Io / Timeout / Resource failures are considered transient
 * (retryable by the runner); the rest are permanent.
 */
enum class ErrorCode {
    None = 0,     //!< no error (successful run)
    Config,       //!< invalid configuration or argument (caller bug)
    CorruptInput, //!< malformed or corrupt input data (trace, journal)
    Io,           //!< I/O failure: open, read, write, fsync
    Resource,     //!< allocation failure or resource exhaustion
    Timeout,      //!< per-run watchdog deadline exceeded
    Internal,     //!< library invariant violation (our bug)
};

/** Stable snake_case name of a code, as emitted in reports. */
constexpr const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::None: return "none";
    case ErrorCode::Config: return "config";
    case ErrorCode::CorruptInput: return "corrupt_input";
    case ErrorCode::Io: return "io";
    case ErrorCode::Resource: return "resource";
    case ErrorCode::Timeout: return "timeout";
    case ErrorCode::Internal: return "internal";
    }
    return "internal";
}

/** Inverse of errorCodeName(); unknown names map to Internal. */
constexpr ErrorCode
errorCodeFromName(std::string_view name)
{
    if (name == "none")
        return ErrorCode::None;
    if (name == "config")
        return ErrorCode::Config;
    if (name == "corrupt_input")
        return ErrorCode::CorruptInput;
    if (name == "io")
        return ErrorCode::Io;
    if (name == "resource")
        return ErrorCode::Resource;
    if (name == "timeout")
        return ErrorCode::Timeout;
    return ErrorCode::Internal;
}

/** True for failures worth retrying (transient by nature). */
constexpr bool
isRetryable(ErrorCode code)
{
    return code == ErrorCode::Io || code == ErrorCode::Timeout ||
           code == ErrorCode::Resource;
}

/** Thrown when the library itself detects an internal inconsistency. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error("panic: " + msg) {}

    /** Internal invariant violations are always ErrorCode::Internal. */
    ErrorCode code() const { return ErrorCode::Internal; }
};

/** Thrown when a caller supplies an invalid configuration or argument,
 * or an operation on external state (files, traces) fails. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : FatalError(ErrorCode::Config, msg) {}

    FatalError(ErrorCode code, const std::string& msg)
        : std::runtime_error("fatal: " + msg), code_(code) {}

    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/** Report an internal bug; never returns. */
[[noreturn]] inline void
panic(const std::string& msg)
{
    throw PanicError(msg);
}

/** Report a user error (bad configuration, bad argument); never returns. */
[[noreturn]] inline void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

/** Report a classified failure; never returns. */
[[noreturn]] inline void
fatal(ErrorCode code, const std::string& msg)
{
    throw FatalError(code, msg);
}

/** Panic unless a condition holds. */
inline void
panicIf(bool cond, const std::string& msg)
{
    if (cond)
        panic(msg);
}

/** Fatal error unless a condition holds. */
inline void
fatalIf(bool cond, const std::string& msg)
{
    if (cond)
        fatal(msg);
}

/** Classified fatal error unless a condition holds. */
inline void
fatalIf(bool cond, ErrorCode code, const std::string& msg)
{
    if (cond)
        fatal(code, msg);
}

} // namespace mrp

#endif // MRP_UTIL_LOGGING_HPP
