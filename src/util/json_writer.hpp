/**
 * @file
 * Shared JSON-emission helpers.
 *
 * The runner's report writer and checkpoint journal each grew their
 * own copy of double formatting and string escaping; the telemetry
 * exporters would have been a third. This header is now the single
 * definition. Every emitter that wants byte-stable output (reports,
 * journals, metrics, trace events) must come through here.
 */

#ifndef MRP_UTIL_JSON_WRITER_HPP
#define MRP_UTIL_JSON_WRITER_HPP

#include <cstdio>
#include <string>

namespace mrp::json {

/**
 * Shortest round-trip decimal form of a double ("%.17g" trimmed via
 * re-parse), so serialized values re-parse to the exact same bits —
 * compact yet bit-faithful, and therefore byte-identical whenever the
 * underlying doubles are.
 */
inline std::string
formatDouble(double v)
{
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

/** JSON string-body escaping (quotes, backslash, control chars). */
inline std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** `"key"` with escaping and the trailing `: `, for object members. */
inline std::string
key(const std::string& name)
{
    return "\"" + escape(name) + "\": ";
}

/** Quoted, escaped string value. */
inline std::string
str(const std::string& value)
{
    return "\"" + escape(value) + "\"";
}

} // namespace mrp::json

#endif // MRP_UTIL_JSON_WRITER_HPP
