/**
 * @file
 * Bit-extraction and bit-folding helpers used by the feature machinery.
 */

#ifndef MRP_UTIL_BITFIELD_HPP
#define MRP_UTIL_BITFIELD_HPP

#include <cstdint>

namespace mrp {

/**
 * Extract bits lo..hi (inclusive, 0-based from LSB) of a value.
 *
 * Bits beyond position 63 read as zero. If lo > hi the arguments are
 * swapped, matching the paper's tolerance for reversed B/E parameters.
 */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned lo, unsigned hi)
{
    if (lo > hi) {
        unsigned t = lo;
        lo = hi;
        hi = t;
    }
    if (lo > 63)
        return 0;
    if (hi > 63)
        hi = 63;
    const unsigned width = hi - lo + 1;
    const std::uint64_t mask =
        width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
    return (value >> lo) & mask;
}

/**
 * Fold a value down to @p width bits by xor-reducing successive
 * width-sized chunks. Folding to width 0 yields 0.
 */
constexpr std::uint64_t
foldXor(std::uint64_t value, unsigned width)
{
    if (width == 0)
        return 0;
    if (width >= 64)
        return value;
    const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
    std::uint64_t out = 0;
    while (value != 0) {
        out ^= value & mask;
        value >>= width;
    }
    return out;
}

/** Number of bits needed to represent values 0..n-1; log2Ceil(1) == 0. */
constexpr unsigned
log2Ceil(std::uint64_t n)
{
    unsigned w = 0;
    std::uint64_t cap = 1;
    while (cap < n) {
        cap <<= 1;
        ++w;
    }
    return w;
}

/** True if n is a power of two (n > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

} // namespace mrp

#endif // MRP_UTIL_BITFIELD_HPP
