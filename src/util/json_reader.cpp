#include "util/json_reader.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace mrp::json {

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    bool
    parse(Value* out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    std::size_t pos() const { return pos_; }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Value* out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{': return parseObject(out);
        case '[': return parseArray(out);
        case '"':
            out->type = Value::Type::String;
            return parseString(&out->string);
        case 't':
            out->type = Value::Type::Bool;
            out->boolean = true;
            return literal("true");
        case 'f':
            out->type = Value::Type::Bool;
            out->boolean = false;
            return literal("false");
        case 'n':
            out->type = Value::Type::Null;
            return literal("null");
        default: return parseNumber(out);
        }
    }

    bool
    parseObject(Value* out)
    {
        out->type = Value::Type::Object;
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            Value v;
            if (!parseValue(&v))
                return false;
            out->members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseArray(Value* out)
    {
        out->type = Value::Type::Array;
        if (!consume('['))
            return false;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            Value v;
            if (!parseValue(&v))
                return false;
            out->array.push_back(std::move(v));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseString(std::string* out)
    {
        if (!consume('"'))
            return false;
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': *out += '"'; break;
            case '\\': *out += '\\'; break;
            case '/': *out += '/'; break;
            case 'n': *out += '\n'; break;
            case 'r': *out += '\r'; break;
            case 't': *out += '\t'; break;
            case 'b': *out += '\b'; break;
            case 'f': *out += '\f'; break;
            case 'u': {
                if (text_.size() - pos_ < 4)
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Our writers only emit \u00XX control escapes; pass
                // anything in the BMP through as UTF-8.
                if (code < 0x80) {
                    *out += static_cast<char>(code);
                } else if (code < 0x800) {
                    *out += static_cast<char>(0xC0 | (code >> 6));
                    *out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    *out += static_cast<char>(0xE0 | (code >> 12));
                    *out += static_cast<char>(0x80 |
                                              ((code >> 6) & 0x3F));
                    *out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: return false;
            }
        }
        return consume('"');
    }

    bool
    parseNumber(Value* out)
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (text_[pos_] == '+' || text_[pos_] == '-' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' ||
                (text_[pos_] >= '0' && text_[pos_] <= '9')))
            ++pos_;
        if (pos_ == start)
            return false;
        const std::string tok(text_.substr(start, pos_ - start));
        char* rest = nullptr;
        out->type = Value::Type::Number;
        out->number = std::strtod(tok.c_str(), &rest);
        return rest != nullptr && *rest == '\0';
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

const char*
typeName(Value::Type t)
{
    switch (t) {
    case Value::Type::Null: return "null";
    case Value::Type::Bool: return "bool";
    case Value::Type::Number: return "number";
    case Value::Type::String: return "string";
    case Value::Type::Array: return "array";
    case Value::Type::Object: return "object";
    }
    return "?";
}

} // namespace

const Value*
Value::get(std::string_view key) const
{
    for (const auto& [k, v] : members)
        if (k == key)
            return &v;
    return nullptr;
}

const Value&
Value::require(std::string_view key, Type t,
               const std::string& what) const
{
    const Value* v = get(key);
    fatalIf(v == nullptr, ErrorCode::CorruptInput,
            what + ": missing required member \"" + std::string(key) +
                "\"");
    fatalIf(v->type != t, ErrorCode::CorruptInput,
            what + ": member \"" + std::string(key) + "\" is not a " +
                typeName(t));
    return *v;
}

Value
parseJson(std::string_view text, const std::string& what)
{
    Parser p(text);
    Value out;
    fatalIf(!p.parse(&out), ErrorCode::CorruptInput,
            what + ": malformed JSON near byte " +
                std::to_string(p.pos()));
    return out;
}

bool
tryParseJson(std::string_view text, Value* out)
{
    *out = Value{};
    return Parser(text).parse(out);
}

} // namespace mrp::json
