/**
 * @file
 * Saturating counters: an unsigned n-bit up/down counter and a signed
 * n-bit weight as used by perceptron-style predictors.
 */

#ifndef MRP_UTIL_SAT_COUNTER_HPP
#define MRP_UTIL_SAT_COUNTER_HPP

#include <cstdint>

#include "util/logging.hpp"

namespace mrp {

/**
 * An unsigned saturating counter of a configurable bit width
 * (e.g.\ the 2-bit counters of SDBP prediction tables).
 */
class SatCounter
{
  public:
    /** Construct an @p nbits-wide counter with initial @p value. */
    explicit SatCounter(unsigned nbits = 2, std::uint32_t value = 0)
        : maxValue_((1u << nbits) - 1), value_(value)
    {
        panicIf(nbits == 0 || nbits > 31, "SatCounter width out of range");
        panicIf(value > maxValue_, "SatCounter initial value too large");
    }

    /** Current counter value. */
    std::uint32_t value() const { return value_; }

    /** Largest representable value. */
    std::uint32_t maxValue() const { return maxValue_; }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < maxValue_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** True if the counter is in the upper half of its range. */
    bool isSet() const { return value_ > maxValue_ / 2; }

    /** Reset to a specific value (clamped to the representable range). */
    void set(std::uint32_t v) { value_ = v > maxValue_ ? maxValue_ : v; }

  private:
    std::uint32_t maxValue_;
    std::uint32_t value_;
};

/**
 * A signed saturating weight of a configurable bit width; an n-bit
 * weight ranges over [-2^(n-1), 2^(n-1) - 1], e.g.\ [-32, +31] for the
 * paper's 6-bit weights.
 */
class SignedWeight
{
  public:
    explicit SignedWeight(unsigned nbits = 6, int value = 0)
        : minValue_(-(1 << (nbits - 1))),
          maxValue_((1 << (nbits - 1)) - 1),
          value_(value)
    {
        panicIf(nbits < 2 || nbits > 31, "SignedWeight width out of range");
        panicIf(value < minValue_ || value > maxValue_,
                "SignedWeight initial value out of range");
    }

    int value() const { return value_; }
    int minValue() const { return minValue_; }
    int maxValue() const { return maxValue_; }

    /** Increment, saturating at the positive limit. */
    void
    increment()
    {
        if (value_ < maxValue_)
            ++value_;
    }

    /** Decrement, saturating at the negative limit. */
    void
    decrement()
    {
        if (value_ > minValue_)
            --value_;
    }

    /** Set, clamping to the representable range. */
    void
    set(int v)
    {
        value_ = v < minValue_ ? minValue_ : (v > maxValue_ ? maxValue_ : v);
    }

  private:
    int minValue_;
    int maxValue_;
    int value_;
};

} // namespace mrp

#endif // MRP_UTIL_SAT_COUNTER_HPP
