/**
 * @file
 * Minimal generic JSON parser — the read-side counterpart of
 * json_writer.hpp.
 *
 * The checkpoint journal carries its own schema-locked line parser;
 * this one is for documents whose shape is only known at runtime
 * (BENCH_*.json benchmark artifacts, progress JSONL lines in tests).
 * It parses strict JSON into a Value tree; numbers are doubles
 * (sufficient for every artifact we read: counts fit in 2^53).
 */

#ifndef MRP_UTIL_JSON_READER_HPP
#define MRP_UTIL_JSON_READER_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mrp::json {

class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Members in document order (duplicate keys: first wins in get()). */
    std::vector<std::pair<std::string, Value>> members;

    bool isNull() const { return type == Type::Null; }
    bool isBool() const { return type == Type::Bool; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isArray() const { return type == Type::Array; }
    bool isObject() const { return type == Type::Object; }

    /** Object member by key, or null pointer. */
    const Value* get(std::string_view key) const;

    /** Member that must exist and have the given type; throws
     * FatalError(CorruptInput) otherwise. @p what names the document
     * for the error message. */
    const Value& require(std::string_view key, Type type,
                         const std::string& what) const;

    std::uint64_t asU64() const { return static_cast<std::uint64_t>(number); }
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage not). Throws FatalError(ErrorCode::CorruptInput)
 * with @p what and a byte offset on malformed input.
 */
Value parseJson(std::string_view text, const std::string& what);

/** As parseJson but returns false instead of throwing. */
bool tryParseJson(std::string_view text, Value* out);

} // namespace mrp::json

#endif // MRP_UTIL_JSON_READER_HPP
