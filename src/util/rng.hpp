/**
 * @file
 * Deterministic pseudo-random number generation (xoroshiro128++).
 *
 * The standard library engines are not guaranteed bit-identical across
 * implementations; experiment reproducibility requires a self-contained
 * generator.
 */

#ifndef MRP_UTIL_RNG_HPP
#define MRP_UTIL_RNG_HPP

#include <cstdint>

#include "util/hash.hpp"
#include "util/logging.hpp"

namespace mrp {

/** xoroshiro128++ generator: small state, high quality, fully portable. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 1)
    {
        s0_ = mix64(seed);
        s1_ = mix64(s0_ ^ 0xdeadbeefcafef00dull);
        if (s0_ == 0 && s1_ == 0)
            s1_ = 1;
    }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t t0 = s0_;
        std::uint64_t t1 = s1_;
        const std::uint64_t result = rotl(t0 + t1, 17) + t0;
        t1 ^= t0;
        s0_ = rotl(t0, 49) ^ t1 ^ (t1 << 21);
        s1_ = rotl(t1, 28);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        panicIf(bound == 0, "Rng::below(0)");
        // Rejection-free threshold method would be overkill; modulo bias
        // is negligible for the bounds used here (all << 2^64).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        panicIf(lo > hi, "Rng::range with lo > hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s0_;
    std::uint64_t s1_;
};

} // namespace mrp

#endif // MRP_UTIL_RNG_HPP
