#include "util/fault_injection.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <vector>
#include <new>
#include <thread>
#include <unordered_map>

#include "util/hash.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace mrp::fault {

namespace {

struct SiteState
{
    Spec spec;
    bool armed = false;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
};

// The registry is deliberately simple: one mutex guarding a map. Sites
// sit on I/O and batch-dispatch paths, not in simulation inner loops,
// and the unarmed fast path never takes the lock.
std::mutex g_mutex;
std::unordered_map<std::string, SiteState> g_sites;
std::atomic<int> g_armed_count{0};

/**
 * Count a visit to @p site and decide whether it fires. Returns the
 * armed Spec by value when it does, so the caller can act after the
 * lock is released (stalls must not sleep holding the registry lock).
 */
bool
visit(const std::string& site, Kind kind, Spec* fired)
{
    if (g_armed_count.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    if (it == g_sites.end() || !it->second.armed ||
        it->second.spec.kind != kind)
        return false;
    SiteState& s = it->second;
    ++s.hits;
    if (s.hits < s.spec.firstHit)
        return false;
    if (s.spec.maxFires >= 0 &&
        s.fires >= static_cast<std::uint64_t>(s.spec.maxFires))
        return false;
    ++s.fires;
    *fired = s.spec;
    return true;
}

} // namespace

void
arm(const std::string& site, const Spec& spec)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    SiteState& s = g_sites[site];
    if (!s.armed)
        g_armed_count.fetch_add(1, std::memory_order_relaxed);
    s.spec = spec;
    s.armed = true;
    s.hits = 0;
    s.fires = 0;
}

void
armFromSpec(const std::string& spec_text)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= spec_text.size()) {
        const auto colon = spec_text.find(':', pos);
        if (colon == std::string::npos) {
            parts.push_back(spec_text.substr(pos));
            break;
        }
        parts.push_back(spec_text.substr(pos, colon - pos));
        pos = colon + 1;
    }
    fatalIf(parts.size() < 2 || parts.size() > 5 ||
                parts[0].empty(),
            ErrorCode::Config,
            "fault spec \"" + spec_text +
                "\" is not SITE:KIND[:FIRSTHIT[:MAXFIRES"
                "[:STALLMS]]]");
    Spec spec;
    if (parts[1] == "io")
        spec.kind = Kind::IoError;
    else if (parts[1] == "stall")
        spec.kind = Kind::Stall;
    else if (parts[1] == "alloc")
        spec.kind = Kind::AllocFail;
    else if (parts[1] == "corrupt")
        spec.kind = Kind::CorruptByte;
    else
        fatal(ErrorCode::Config,
              "fault spec \"" + spec_text +
                  "\": kind must be io|stall|alloc|corrupt");
    if (parts.size() > 2)
        spec.firstHit = std::strtoull(parts[2].c_str(), nullptr, 10);
    if (parts.size() > 3)
        spec.maxFires = std::strtoll(parts[3].c_str(), nullptr, 10);
    if (parts.size() > 4)
        spec.stallMillis = static_cast<unsigned>(
            std::strtoul(parts[4].c_str(), nullptr, 10));
    arm(parts[0], spec);
}

void
disarm(const std::string& site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    if (it != g_sites.end() && it->second.armed) {
        it->second.armed = false;
        g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
}

void
disarmAll()
{
    std::lock_guard<std::mutex> lock(g_mutex);
    for (auto& [site, state] : g_sites)
        if (state.armed)
            g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    g_sites.clear();
}

bool
anyArmed()
{
    return g_armed_count.load(std::memory_order_relaxed) != 0;
}

std::uint64_t
hits(const std::string& site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.hits;
}

std::uint64_t
fires(const std::string& site)
{
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_sites.find(site);
    return it == g_sites.end() ? 0 : it->second.fires;
}

void
checkIo(const std::string& site, const std::string& what)
{
    Spec spec;
    if (visit(site, Kind::IoError, &spec))
        fatal(ErrorCode::Io,
              "injected I/O failure: " + what + " [" + site + "]");
}

void
checkAlloc(const std::string& site)
{
    Spec spec;
    if (visit(site, Kind::AllocFail, &spec))
        throw std::bad_alloc();
}

void
checkStall(const std::string& site)
{
    Spec spec;
    if (visit(site, Kind::Stall, &spec))
        std::this_thread::sleep_for(
            std::chrono::milliseconds(spec.stallMillis));
}

void
checkCorrupt(const std::string& site, void* data, std::size_t size)
{
    Spec spec;
    if (!visit(site, Kind::CorruptByte, &spec) || size == 0)
        return;
    // Seed with the fire ordinal so repeated fires of one armed site
    // corrupt different (but replayable) positions.
    Rng rng(spec.seed ^ mix64(fires(site)));
    const std::size_t pos =
        static_cast<std::size_t>(rng.below(size));
    const unsigned bit = static_cast<unsigned>(rng.below(8));
    static_cast<unsigned char*>(data)[pos] ^=
        static_cast<unsigned char>(1u << bit);
}

Scoped::Scoped(std::string site, const Spec& spec)
    : site_(std::move(site))
{
    arm(site_, spec);
}

Scoped::~Scoped()
{
    disarm(site_);
}

} // namespace mrp::fault
