#include "runner/report.hpp"

#include <cstdio>
#include <fstream>

#include "prof/export.hpp"
#include "telemetry/export.hpp"
#include "util/logging.hpp"

namespace mrp::runner {

namespace {

using json::formatDouble;

std::string
escapeCsv(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
appendRunJson(std::string& out, const RunResult& r,
              const ReportOptions& opts)
{
    out += "    {\"index\": " + std::to_string(r.index);
    out += ", \"benchmark\": \"" + detail::jsonEscape(r.benchmark) + "\"";
    out += ", \"policy\": \"" + detail::jsonEscape(r.policy) + "\"";
    out += ", \"label\": \"" + detail::jsonEscape(r.label) + "\"";
    out += std::string(", \"mode\": ") +
           (r.multiCore ? "\"multi\"" : "\"single\"");
    out += ", \"ipc\": " + formatDouble(r.ipc);
    out += ", \"mpki\": " + formatDouble(r.mpki);
    out += ", \"instructions\": " + std::to_string(r.instructions);
    out += ", \"llcDemandAccesses\": " +
           std::to_string(r.llcDemandAccesses);
    out += ", \"llcDemandMisses\": " +
           std::to_string(r.llcDemandMisses);
    out += ", \"llcBypasses\": " + std::to_string(r.llcBypasses);
    // Seed provenance: emitted only when a non-default seed was set,
    // so pre-seed reports stay byte-identical.
    if (r.seed != 0)
        out += ", \"seed\": " + std::to_string(r.seed);
    if (r.multiCore) {
        out += ", \"coreIpc\": [";
        for (std::size_t c = 0; c < r.coreIpc.size(); ++c) {
            if (c)
                out += ", ";
            out += formatDouble(r.coreIpc[c]);
        }
        out += "]";
    }
    // Tenancy outcome: emitted only for tenant-configured runs, so
    // non-tenant reports stay byte-identical to earlier artifacts.
    if (!r.tenants.empty()) {
        out += ", \"tenants\": [";
        for (std::size_t t = 0; t < r.tenants.size(); ++t) {
            const auto& o = r.tenants[t];
            if (t)
                out += ", ";
            out += "{\"ways\": " + std::to_string(o.waysInitial);
            out += ", \"waysFinal\": " + std::to_string(o.waysFinal);
            out += ", \"demandMisses\": " +
                   std::to_string(o.demandMisses);
            out += ", \"instructions\": " +
                   std::to_string(o.instructions);
            out += ", \"mpki\": " + formatDouble(o.mpki);
            if (o.sloMpki > 0.0)
                out += ", \"sloMpki\": " + formatDouble(o.sloMpki);
            out += "}";
        }
        out += "]";
        out += ", \"qosResizes\": " +
               std::to_string(r.qosSchedule.size());
        if (!r.qosSchedule.empty()) {
            out += ", \"qosSchedule\": [";
            for (std::size_t i = 0; i < r.qosSchedule.size(); ++i) {
                const auto& q = r.qosSchedule[i];
                if (i)
                    out += ", ";
                out += "[" + std::to_string(q.epoch) + ", " +
                       std::to_string(q.from) + ", " +
                       std::to_string(q.to) + "]";
            }
            out += "]";
        }
    }
    if (r.telemetry)
        out += ", \"metrics\": " +
               telemetry::metricsJson(*r.telemetry, "    ");
    if (!r.ok()) {
        out += ", \"error\": \"" + detail::jsonEscape(r.error) + "\"";
        out += std::string(", \"errorCode\": \"") +
               errorCodeName(r.errorCode) + "\"";
    }
    if (opts.timing) {
        out += ", \"wallSeconds\": " + formatDouble(r.wallSeconds);
        out += ", \"instsPerSecond\": " +
               formatDouble(r.instsPerSecond);
        // Host-resource split from the profiler when one was attached
        // (RunnerOptions::profile); absent otherwise so timing-off and
        // profile-off reports stay byte-stable across PRs.
        if (r.profile) {
            out += ", \"userSeconds\": " +
                   formatDouble(r.profile->userSeconds);
            out += ", \"sysSeconds\": " +
                   formatDouble(r.profile->sysSeconds);
            out += ", \"maxRssKb\": " +
                   std::to_string(r.profile->maxRssKb);
            out += ", \"accessesPerSecond\": " +
                   formatDouble(r.profile->accessesPerSecond);
        }
    }
    out += "}";
}

} // namespace

std::string
toJson(const RunSet& set, const ReportOptions& opts)
{
    std::string out = "{\n";
    if (opts.timing) {
        out += "  \"jobs\": " + std::to_string(set.jobs) + ",\n";
        out += "  \"wallSeconds\": " + formatDouble(set.wallSeconds) +
               ",\n";
    }
    out += "  \"runs\": [\n";
    for (std::size_t i = 0; i < set.results.size(); ++i) {
        appendRunJson(out, set.results[i], opts);
        if (i + 1 < set.results.size())
            out += ",";
        out += "\n";
    }
    out += "  ],\n  \"summary\": [\n";
    const auto summaries = set.policySummaries();
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const auto& s = summaries[i];
        out += "    {\"policy\": \"" + detail::jsonEscape(s.policy) + "\"";
        out += ", \"runs\": " + std::to_string(s.runs);
        out += ", \"geomeanIpc\": " + formatDouble(s.geomeanIpc);
        out += ", \"meanMpki\": " + formatDouble(s.meanMpki) + "}";
        if (i + 1 < summaries.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
toCsv(const RunSet& set, const ReportOptions& opts)
{
    std::string out =
        "index,benchmark,policy,label,mode,ipc,mpki,instructions,"
        "llc_demand_accesses,llc_demand_misses,llc_bypasses,error,"
        "error_code";
    bool any_profile = false;
    bool any_seed = false;
    bool any_tenant = false;
    for (const auto& r : set.results) {
        any_profile = any_profile || r.profile != nullptr;
        any_seed = any_seed || r.seed != 0;
        any_tenant = any_tenant || !r.tenants.empty();
    }
    // The seed column appears only when some run was re-seeded, so
    // default-seeded CSV output is byte-identical to pre-seed output.
    if (any_seed)
        out += ",seed";
    // Tenancy columns follow the same omit-when-absent discipline.
    if (any_tenant)
        out += ",tenant_ways_final,tenant_mpki,qos_resizes";
    if (opts.timing) {
        out += ",wall_seconds,insts_per_second";
        if (any_profile)
            out += ",user_seconds,sys_seconds,accesses_per_second";
    }
    out += "\n";
    for (const auto& r : set.results) {
        out += std::to_string(r.index);
        out += "," + escapeCsv(r.benchmark);
        out += "," + escapeCsv(r.policy);
        out += "," + escapeCsv(r.label);
        out += std::string(",") + (r.multiCore ? "multi" : "single");
        out += "," + formatDouble(r.ipc);
        out += "," + formatDouble(r.mpki);
        out += "," + std::to_string(r.instructions);
        out += "," + std::to_string(r.llcDemandAccesses);
        out += "," + std::to_string(r.llcDemandMisses);
        out += "," + std::to_string(r.llcBypasses);
        out += "," + escapeCsv(r.error);
        out += std::string(",") +
               (r.ok() ? "" : errorCodeName(r.errorCode));
        if (any_seed)
            out += "," + std::to_string(r.seed);
        if (any_tenant) {
            std::string ways, mpki;
            for (std::size_t t = 0; t < r.tenants.size(); ++t) {
                if (t) {
                    ways += ";";
                    mpki += ";";
                }
                ways += std::to_string(r.tenants[t].waysFinal);
                mpki += formatDouble(r.tenants[t].mpki);
            }
            out += "," + ways;
            out += "," + mpki;
            out += "," + (r.tenants.empty()
                              ? std::string()
                              : std::to_string(r.qosSchedule.size()));
        }
        if (opts.timing) {
            out += "," + formatDouble(r.wallSeconds);
            out += "," + formatDouble(r.instsPerSecond);
            if (any_profile) {
                if (r.profile) {
                    out += "," + formatDouble(r.profile->userSeconds);
                    out += "," + formatDouble(r.profile->sysSeconds);
                    out += "," +
                           formatDouble(r.profile->accessesPerSecond);
                } else {
                    out += ",,,";
                }
            }
        }
        out += "\n";
    }
    bool any_telemetry = false;
    for (const auto& r : set.results)
        any_telemetry = any_telemetry || r.telemetry != nullptr;
    if (any_telemetry) {
        out += "\n# metrics\nindex,metric,value\n";
        for (const auto& r : set.results) {
            if (!r.telemetry)
                continue;
            for (const auto& row :
                 telemetry::metricsCsvRows(*r.telemetry))
                out += std::to_string(r.index) + "," + row + "\n";
        }
    }
    return out;
}

std::string
toMetricsJson(const RunSet& set)
{
    std::string out = "{\n  \"runs\": [\n";
    bool first = true;
    for (const auto& r : set.results) {
        if (!r.telemetry)
            continue;
        if (!first)
            out += ",\n";
        first = false;
        out += "    {\"index\": " + std::to_string(r.index);
        out += ", \"benchmark\": \"" + json::escape(r.benchmark) + "\"";
        out += ", \"policy\": \"" + json::escape(r.policy) + "\"";
        out += ", \"label\": \"" + json::escape(r.label) + "\"";
        out += ", \"metrics\": " +
               telemetry::metricsJson(*r.telemetry, "    ") + "}";
    }
    if (!first)
        out += "\n";
    out += "  ]\n}\n";
    return out;
}

std::string
toTraceJson(const RunSet& set)
{
    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    for (const auto& r : set.results) {
        if (!r.telemetry)
            continue;
        if (!first)
            out += ",\n";
        first = false;
        out += telemetry::traceEvents(
            *r.telemetry, static_cast<unsigned>(r.index),
            r.benchmark + "/" + r.policy);
    }
    // Profiled runs contribute their phase tree as a second process
    // family (pid 10000+index) so the host-time flame sits next to the
    // simulated-time telemetry in the same viewer document.
    for (const auto& r : set.results) {
        if (!r.profile)
            continue;
        prof::BenchRun br;
        br.label = r.label;
        br.benchmark = r.benchmark;
        br.policy = r.policy;
        br.profile = *r.profile;
        std::vector<std::string> events;
        prof::appendTraceEvents(
            br, static_cast<int>(10000 + r.index), &events);
        for (const auto& e : events) {
            if (!first)
                out += ",\n";
            first = false;
            out += e;
        }
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream f(path, std::ios::binary);
    fatalIf(!f, "cannot open for writing: " + path);
    f << content;
    f.flush();
    fatalIf(!f, "write failed: " + path);
}

} // namespace mrp::runner
