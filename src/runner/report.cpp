#include "runner/report.hpp"

#include <cstdio>
#include <fstream>

#include "util/logging.hpp"

namespace mrp::runner {

namespace detail {

/**
 * Shortest round-trip decimal form of a double ("%.17g" trimmed via
 * re-parse), so reports are compact yet bit-faithful — and therefore
 * byte-identical whenever the underlying doubles are.
 */
std::string
formatDouble(double v)
{
    char buf[64];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace detail

namespace {

using detail::formatDouble;

std::string
escapeCsv(const std::string& s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
appendRunJson(std::string& out, const RunResult& r,
              const ReportOptions& opts)
{
    out += "    {\"index\": " + std::to_string(r.index);
    out += ", \"benchmark\": \"" + detail::jsonEscape(r.benchmark) + "\"";
    out += ", \"policy\": \"" + detail::jsonEscape(r.policy) + "\"";
    out += ", \"label\": \"" + detail::jsonEscape(r.label) + "\"";
    out += std::string(", \"mode\": ") +
           (r.multiCore ? "\"multi\"" : "\"single\"");
    out += ", \"ipc\": " + formatDouble(r.ipc);
    out += ", \"mpki\": " + formatDouble(r.mpki);
    out += ", \"instructions\": " + std::to_string(r.instructions);
    out += ", \"llcDemandAccesses\": " +
           std::to_string(r.llcDemandAccesses);
    out += ", \"llcDemandMisses\": " +
           std::to_string(r.llcDemandMisses);
    out += ", \"llcBypasses\": " + std::to_string(r.llcBypasses);
    if (r.multiCore) {
        out += ", \"coreIpc\": [";
        for (std::size_t c = 0; c < r.coreIpc.size(); ++c) {
            if (c)
                out += ", ";
            out += formatDouble(r.coreIpc[c]);
        }
        out += "]";
    }
    if (!r.ok()) {
        out += ", \"error\": \"" + detail::jsonEscape(r.error) + "\"";
        out += std::string(", \"errorCode\": \"") +
               errorCodeName(r.errorCode) + "\"";
    }
    if (opts.timing) {
        out += ", \"wallSeconds\": " + formatDouble(r.wallSeconds);
        out += ", \"instsPerSecond\": " +
               formatDouble(r.instsPerSecond);
    }
    out += "}";
}

} // namespace

std::string
toJson(const RunSet& set, const ReportOptions& opts)
{
    std::string out = "{\n";
    if (opts.timing) {
        out += "  \"jobs\": " + std::to_string(set.jobs) + ",\n";
        out += "  \"wallSeconds\": " + formatDouble(set.wallSeconds) +
               ",\n";
    }
    out += "  \"runs\": [\n";
    for (std::size_t i = 0; i < set.results.size(); ++i) {
        appendRunJson(out, set.results[i], opts);
        if (i + 1 < set.results.size())
            out += ",";
        out += "\n";
    }
    out += "  ],\n  \"summary\": [\n";
    const auto summaries = set.policySummaries();
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        const auto& s = summaries[i];
        out += "    {\"policy\": \"" + detail::jsonEscape(s.policy) + "\"";
        out += ", \"runs\": " + std::to_string(s.runs);
        out += ", \"geomeanIpc\": " + formatDouble(s.geomeanIpc);
        out += ", \"meanMpki\": " + formatDouble(s.meanMpki) + "}";
        if (i + 1 < summaries.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n}\n";
    return out;
}

std::string
toCsv(const RunSet& set, const ReportOptions& opts)
{
    std::string out =
        "index,benchmark,policy,label,mode,ipc,mpki,instructions,"
        "llc_demand_accesses,llc_demand_misses,llc_bypasses,error,"
        "error_code";
    if (opts.timing)
        out += ",wall_seconds,insts_per_second";
    out += "\n";
    for (const auto& r : set.results) {
        out += std::to_string(r.index);
        out += "," + escapeCsv(r.benchmark);
        out += "," + escapeCsv(r.policy);
        out += "," + escapeCsv(r.label);
        out += std::string(",") + (r.multiCore ? "multi" : "single");
        out += "," + formatDouble(r.ipc);
        out += "," + formatDouble(r.mpki);
        out += "," + std::to_string(r.instructions);
        out += "," + std::to_string(r.llcDemandAccesses);
        out += "," + std::to_string(r.llcDemandMisses);
        out += "," + std::to_string(r.llcBypasses);
        out += "," + escapeCsv(r.error);
        out += std::string(",") +
               (r.ok() ? "" : errorCodeName(r.errorCode));
        if (opts.timing) {
            out += "," + formatDouble(r.wallSeconds);
            out += "," + formatDouble(r.instsPerSecond);
        }
        out += "\n";
    }
    return out;
}

void
writeFile(const std::string& path, const std::string& content)
{
    std::ofstream f(path, std::ios::binary);
    fatalIf(!f, "cannot open for writing: " + path);
    f << content;
    f.flush();
    fatalIf(!f, "write failed: " + path);
}

} // namespace mrp::runner
