#include "runner/scenarios.hpp"

#include "util/logging.hpp"

namespace mrp::runner {

namespace {

RunRequest
mixRequest(std::vector<trace::TraceSpec> mix,
           const ScenarioConfig& cfg,
           const tenant::TenancyConfig& tenancy,
           const std::string& label)
{
    sim::MultiCoreConfig mc = cfg.sim;
    mc.tenancy = tenancy;
    auto r = RunRequest::multiCore(std::move(mix), cfg.policy, mc);
    r.label = label;
    return r;
}

} // namespace

std::vector<RunRequest>
noisyNeighborBatch(const trace::TraceSpec& victim,
                   const trace::TraceSpec& aggressor,
                   const std::vector<unsigned>& victimWays,
                   const ScenarioConfig& cfg)
{
    const std::uint32_t llc_ways = cfg.sim.hierarchy.llcWays;
    std::vector<RunRequest> batch;

    // The interference measurement: same mix, no partition.
    batch.push_back(mixRequest({victim, aggressor}, cfg, {},
                               "shared"));

    for (const unsigned v : victimWays) {
        fatalIf(v == 0 || v >= llc_ways, ErrorCode::Config,
                "victim ways " + std::to_string(v) +
                    " must leave the aggressor >= 1 of " +
                    std::to_string(llc_ways) + " LLC ways");
        tenant::TenancyConfig t;
        t.tenants.resize(2);
        t.tenants[0].ways = v;
        t.tenants[1].ways = llc_ways - v;
        const std::string split = std::to_string(v) + "/" +
                                  std::to_string(llc_ways - v);
        batch.push_back(mixRequest({victim, aggressor}, cfg, t,
                                   "part:" + split));
    }

    if (cfg.qos) {
        fatalIf(victimWays.empty(), ErrorCode::Config,
                "QoS scenario needs at least one --victim-ways split "
                "as its starting partition");
        const unsigned v = victimWays.back();
        tenant::TenancyConfig t;
        t.tenants.resize(2);
        t.tenants[0].ways = v;
        t.tenants[0].sloMpki = cfg.victimSloMpki;
        t.tenants[1].ways = llc_ways - v;
        t.qos.enabled = true;
        batch.push_back(mixRequest(
            {victim, aggressor}, cfg, t,
            "qos:" + std::to_string(v) + "/" +
                std::to_string(llc_ways - v)));
    }
    return batch;
}

std::vector<RunRequest>
mixCampaign(const std::vector<std::vector<trace::TraceSpec>>& mixes,
            const tenant::TenancyConfig& tenancy,
            const ScenarioConfig& cfg)
{
    fatalIf(mixes.empty(), ErrorCode::Config,
            "mix campaign needs at least one mix");
    std::vector<RunRequest> batch;
    for (const auto& mix : mixes) {
        fatalIf(mix.size() < 2, ErrorCode::Config,
                "every campaign mix needs >= 2 workloads");
        fatalIf(tenancy.configured() &&
                    tenancy.tenants.size() != mix.size(),
                ErrorCode::Config,
                "tenancy arity " +
                    std::to_string(tenancy.tenants.size()) +
                    " does not match mix arity " +
                    std::to_string(mix.size()));
        std::string label;
        for (const auto& s : mix) {
            if (!label.empty())
                label += "+";
            label += s.displayName();
        }
        batch.push_back(mixRequest(mix, cfg, tenancy, label));
    }
    return batch;
}

} // namespace mrp::runner
