#include "runner/experiment_runner.hpp"

#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <thread>
#include <utility>

#include "prof/profiler.hpp"
#include "runner/checkpoint.hpp"
#include "sim/policies.hpp"
#include "util/fault_injection.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::runner {

namespace {

/**
 * One worker's queue of request indices. Owners pop from the front,
 * thieves steal from the back, so a stolen task is the one the owner
 * would have reached last — the classic work-stealing discipline,
 * which keeps steals rare when the initial round-robin split is
 * already balanced.
 */
class StealQueue
{
  public:
    void
    push(std::size_t idx)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(idx);
    }

    std::optional<std::size_t>
    popFront()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return std::nullopt;
        const std::size_t idx = tasks_.front();
        tasks_.pop_front();
        return idx;
    }

    std::optional<std::size_t>
    stealBack()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return std::nullopt;
        const std::size_t idx = tasks_.back();
        tasks_.pop_back();
        return idx;
    }

  private:
    std::mutex mutex_;
    std::deque<std::size_t> tasks_;
};

/**
 * Serialized emitter of live progress events (see the RunnerOptions
 * field docs). Every event is rendered into one complete line and
 * written with a single fwrite under the mutex, so lines from
 * concurrent workers never interleave; streams are flushed per line
 * but never fsync'd.
 */
class ProgressSink
{
  public:
    ProgressSink(bool to_stderr, const std::string& jsonl_path)
        : stderr_(to_stderr)
    {
        if (!jsonl_path.empty()) {
            file_ = std::fopen(jsonl_path.c_str(), "w");
            fatalIf(file_ == nullptr, ErrorCode::Io,
                    "cannot open progress file for writing: " +
                        jsonl_path);
        }
    }

    ~ProgressSink()
    {
        if (file_)
            std::fclose(file_);
    }

    ProgressSink(const ProgressSink&) = delete;
    ProgressSink& operator=(const ProgressSink&) = delete;

    void
    batchStart(std::size_t total, std::size_t skipped)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        total_ = total;
        emitJson("{\"event\": \"batch_start\", \"total\": " +
                 std::to_string(total) +
                 ", \"skipped\": " + std::to_string(skipped) + "}");
        if (skipped > 0)
            emitHuman("[0/" + std::to_string(total) + "] resumed, " +
                      std::to_string(skipped) + " run(s) skipped");
    }

    void
    runSkipped(std::size_t index, const std::string& label)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        emitJson("{\"event\": \"run_skipped\", \"index\": " +
                 std::to_string(index) +
                 ", \"label\": " + json::str(label) + "}");
    }

    void
    runStart(std::size_t index, const std::string& label)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++running_;
        emitJson("{\"event\": \"run_start\", \"index\": " +
                 std::to_string(index) +
                 ", \"label\": " + json::str(label) + "}");
        emitHuman(position() + " start " + label + status());
    }

    void
    runRetry(std::size_t index, const std::string& label,
             unsigned next_attempt, ErrorCode code)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        emitJson("{\"event\": \"run_retry\", \"index\": " +
                 std::to_string(index) +
                 ", \"label\": " + json::str(label) +
                 ", \"attempt\": " + std::to_string(next_attempt) +
                 ", \"errorCode\": " +
                 json::str(errorCodeName(code)) + "}");
        emitHuman(position() + " retry #" +
                  std::to_string(next_attempt) + " " + label + " (" +
                  errorCodeName(code) + ")");
    }

    void
    runEnd(const RunResult& r)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (running_ > 0)
            --running_;
        r.ok() ? ++completed_ : ++failed_;
        const char* status = r.ok() ? "ok" : "failed";
        std::string line =
            "{\"event\": \"run_end\", \"index\": " +
            std::to_string(r.index) +
            ", \"label\": " + json::str(r.label) +
            ", \"status\": \"" + status + "\"";
        if (!r.ok())
            line += ", \"errorCode\": " +
                    json::str(errorCodeName(r.errorCode));
        line += ", \"wallSeconds\": " +
                json::formatDouble(r.wallSeconds) +
                ", \"attempts\": " + std::to_string(r.attempts) +
                ", \"completed\": " + std::to_string(completed_) +
                ", \"failed\": " + std::to_string(failed_) +
                ", \"running\": " + std::to_string(running_) +
                ", \"total\": " + std::to_string(total_);
        const double eta = etaSeconds();
        if (eta >= 0.0)
            line += ", \"etaSeconds\": " + json::formatDouble(eta);
        line += "}";
        emitJson(line);

        std::string human = position() + " " + status + " " + r.label;
        char buf[64];
        std::snprintf(buf, sizeof(buf), " (%.1fs", r.wallSeconds);
        human += buf;
        if (r.attempts > 1)
            human += ", " + std::to_string(r.attempts) + " attempts";
        if (eta >= 0.0) {
            std::snprintf(buf, sizeof(buf), ", eta %.0fs", eta);
            human += buf;
        }
        human += ")" + status2();
        emitHuman(human);
    }

    void
    batchEnd(double wall_seconds)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        emitJson("{\"event\": \"batch_end\", \"completed\": " +
                 std::to_string(completed_) +
                 ", \"failed\": " + std::to_string(failed_) +
                 ", \"total\": " + std::to_string(total_) +
                 ", \"wallSeconds\": " +
                 json::formatDouble(wall_seconds) + "}");
        char buf[64];
        std::snprintf(buf, sizeof(buf), " done in %.1fs",
                      wall_seconds);
        emitHuman("[" + std::to_string(completed_ + failed_) + "/" +
                  std::to_string(total_) + "]" + buf +
                  (failed_ > 0
                       ? ", " + std::to_string(failed_) + " failed"
                       : ""));
    }

  private:
    // All helpers assume mutex_ is held.

    std::string
    position() const
    {
        return "[" + std::to_string(completed_ + failed_) + "/" +
               std::to_string(total_) + "]";
    }

    std::string
    status() const
    {
        return running_ > 1
                   ? " (+" + std::to_string(running_ - 1) + " running)"
                   : "";
    }

    std::string
    status2() const
    {
        return running_ > 0
                   ? ", " + std::to_string(running_) + " running"
                   : "";
    }

    /** Elapsed/completed extrapolation; negative = not estimable. */
    double
    etaSeconds() const
    {
        const std::size_t done = completed_ + failed_;
        if (done == 0 || total_ <= done)
            return total_ <= done ? 0.0 : -1.0;
        const double elapsed = since_.seconds();
        return elapsed / static_cast<double>(done) *
               static_cast<double>(total_ - done);
    }

    void
    emitJson(const std::string& line)
    {
        if (!file_)
            return;
        const std::string full = line + "\n";
        std::fwrite(full.data(), 1, full.size(), file_);
        std::fflush(file_); // flushed, never fsync'd
    }

    void
    emitHuman(const std::string& line)
    {
        if (!stderr_)
            return;
        const std::string full = "mrp: " + line + "\n";
        std::fwrite(full.data(), 1, full.size(), stderr);
        std::fflush(stderr);
    }

    std::mutex mutex_;
    bool stderr_ = false;
    std::FILE* file_ = nullptr;
    std::size_t total_ = 0;
    std::size_t completed_ = 0;
    std::size_t failed_ = 0;
    std::size_t running_ = 0;
    prof::Stopwatch since_;
};

void
validate(const RunRequest& req, std::size_t idx)
{
    if (req.isMultiCore())
        fatalIf(req.sources.size() < 2,
                "request " + std::to_string(idx) + ": " +
                    std::to_string(req.sources.size()) +
                    " source(s) for a multi-core config (need >= 2)");
    else
        fatalIf(req.sources.size() != 1,
                "request " + std::to_string(idx) + ": " +
                    std::to_string(req.sources.size()) +
                    " source(s) for a single-core config (need 1)");
    fatalIf(req.policy.name.empty(),
            "request " + std::to_string(idx) + ": empty policy name");
}

std::string
mixName(const std::vector<trace::TraceSpec>& sources)
{
    std::string out;
    for (const auto& s : sources) {
        if (!out.empty())
            out += "+";
        out += s.displayName();
    }
    return out;
}

/** True when `name` alone decides the policy (no factory override and
 * no MPPPB configuration payload). */
bool
byNameOnly(const PolicySpec& p)
{
    return !p.factory && !p.mpppbConfig;
}

sim::PolicyFactory
resolveFactory(const PolicySpec& p)
{
    if (p.factory)
        return p.factory;
    if (p.mpppbConfig)
        return sim::makeMpppbFactory(*p.mpppbConfig);
    return sim::PolicyRegistry::make(p.name);
}

void
executeInto(const RunRequest& req, RunResult& out)
{
    // Resilience-test sites: a stall simulates a wedged worker (the
    // watchdog's prey), an I/O fault a transient failure (retry bait).
    fault::checkStall("runner.execute.stall");
    fault::checkIo("runner.execute", "executing request");

    // Open one fresh source per spec per attempt: workers never share
    // stream cursors, so any --jobs value replays the same per-run
    // record sequences and the batch outcome stays bit-identical.
    if (req.isMultiCore()) {
        const auto& cfg = std::get<sim::MultiCoreConfig>(req.config);
        fatalIf(req.policy.name == "MIN" && byNameOnly(req.policy),
                "MIN needs a single-core request (two-pass oracle)");
        const auto factory = resolveFactory(req.policy);
        const std::size_t n = req.sources.size();
        std::vector<std::unique_ptr<trace::TraceSource>> opened(n);
        std::vector<trace::TraceSource*> mix(n, nullptr);
        for (std::size_t c = 0; c < n; ++c) {
            opened[c] = req.sources[c].open(req.openOptions);
            mix[c] = opened[c].get();
        }
        const auto r = sim::runMultiCore(
            std::span<trace::TraceSource* const>(mix), factory, cfg);
        out.policy = req.policy.name;
        out.ipc = 0.0;
        out.instructions = 0;
        out.coreIpc.assign(r.ipc.begin(), r.ipc.end());
        for (std::size_t c = 0; c < n; ++c) {
            out.ipc += r.ipc[c];
            out.instructions += r.instructions[c];
        }
        out.llcDemandMisses = r.llcDemandMisses;
        out.mpki = r.mpki;
        out.tenants = r.tenants;
        out.qosSchedule = r.qosSchedule;
        out.telemetry = r.telemetry;
        return;
    }

    const auto& cfg = std::get<sim::SingleCoreConfig>(req.config);
    const auto source = req.sources[0].open(req.openOptions);
    sim::SingleCoreResult r;
    if (req.policy.name == "MIN" && byNameOnly(req.policy)) {
        r = sim::runSingleCoreMin(*source, cfg);
    } else {
        r = sim::runSingleCore(*source, resolveFactory(req.policy),
                               cfg);
    }
    out.policy = r.policy;
    out.ipc = r.ipc;
    out.mpki = r.mpki;
    out.instructions = r.instructions;
    out.llcDemandAccesses = r.llcDemandAccesses;
    out.llcDemandMisses = r.llcDemandMisses;
    out.llcBypasses = r.llcBypasses;
    out.telemetry = r.telemetry;
}

/** Identity fields of a result, shared by success and failure paths. */
void
stampIdentity(const RunRequest& req, std::size_t index, RunResult& out)
{
    out.index = index;
    out.benchmark = mixName(req.sources);
    out.policy = req.policy.name;
    out.label = req.label.empty() ? out.benchmark : req.label;
    out.multiCore = req.isMultiCore();
    out.seed = std::visit(
        [](const auto& cfg) { return cfg.seed; }, req.config);
}

/** One attempt, all failures captured as typed error data. */
RunResult
attemptOne(const RunRequest& request, std::size_t index, bool profile)
{
    RunResult out;
    stampIdentity(request, index, out);
    const prof::Stopwatch watch;

    // One profiler per attempt, attached to this worker thread only —
    // the runner parallelizes across runs, so per-thread attachment is
    // exactly per-run attribution.
    std::unique_ptr<prof::Profiler> profiler;
    if (profile)
        profiler = std::make_unique<prof::Profiler>();
    {
        std::optional<prof::Attach> attach;
        if (profiler)
            attach.emplace(*profiler);
        try {
            executeInto(request, out);
        } catch (const PanicError& e) {
            out = RunResult{};
            stampIdentity(request, index, out);
            out.error = e.what();
            out.errorCode = ErrorCode::Internal;
        } catch (const FatalError& e) {
            out = RunResult{};
            stampIdentity(request, index, out);
            out.error = e.what();
            out.errorCode = e.code();
        } catch (const std::bad_alloc&) {
            out = RunResult{};
            stampIdentity(request, index, out);
            out.error = "out of memory executing request";
            out.errorCode = ErrorCode::Resource;
        } catch (const std::exception& e) {
            out = RunResult{};
            stampIdentity(request, index, out);
            out.error = e.what();
            out.errorCode = ErrorCode::Internal;
        }
    }
    if (profiler) {
        auto report = std::make_shared<prof::ProfileReport>(
            profiler->finish());
        report->setThroughput(out.instructions, out.llcDemandAccesses);
        out.profile = std::move(report);
    }
    out.wallSeconds = watch.seconds();
    if (out.wallSeconds > 0.0 && out.instructions > 0)
        out.instsPerSecond =
            static_cast<double>(out.instructions) / out.wallSeconds;
    return out;
}

/** runOne with retry/watchdog plus optional progress reporting. */
RunResult
runOneImpl(const RunRequest& request, std::size_t index,
           const RunnerOptions& options, ProgressSink* sink)
{
    RunResult out;
    for (unsigned attempt = 0;; ++attempt) {
        out = attemptOne(request, index, options.profile);
        out.attempts = attempt + 1;
        if (out.ok() && options.timeoutSeconds > 0.0 &&
            out.wallSeconds > options.timeoutSeconds) {
            // Cooperative watchdog: the run finished but blew its
            // deadline; discard its metrics and classify as a
            // (retryable) timeout.
            const double wall = out.wallSeconds;
            const unsigned attempts = out.attempts;
            out = RunResult{};
            stampIdentity(request, index, out);
            out.error = "run exceeded watchdog timeout (" +
                        std::to_string(wall) + "s > " +
                        std::to_string(options.timeoutSeconds) +
                        "s limit)";
            out.errorCode = ErrorCode::Timeout;
            out.wallSeconds = wall;
            out.attempts = attempts;
        }
        if (out.ok() || !isRetryable(out.errorCode) ||
            attempt >= options.maxRetries)
            return out;
        if (sink)
            sink->runRetry(index, out.label, attempt + 2,
                           out.errorCode);
        // Deterministic exponential backoff: base * 2^attempt.
        const double delay =
            options.retryBackoffSeconds *
            static_cast<double>(1ull << std::min(attempt, 20u));
        if (delay > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
    }
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0)
        jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

RunResult
ExperimentRunner::runOne(const RunRequest& request, std::size_t index)
{
    validate(request, index);
    return attemptOne(request, index, /*profile=*/false);
}

RunResult
ExperimentRunner::runOne(const RunRequest& request, std::size_t index,
                         const RunnerOptions& options)
{
    validate(request, index);
    return runOneImpl(request, index, options, /*sink=*/nullptr);
}

RunSet
ExperimentRunner::run(const std::vector<RunRequest>& batch) const
{
    return run(batch, RunnerOptions{});
}

RunSet
ExperimentRunner::run(const std::vector<RunRequest>& batch,
                      const RunnerOptions& options) const
{
    for (std::size_t i = 0; i < batch.size(); ++i)
        validate(batch[i], i);

    RunSet set;
    set.results.resize(batch.size());
    std::vector<char> completed(batch.size(), 0);

    std::unique_ptr<ProgressSink> sink;
    if (options.progressStderr || !options.progressJsonlPath.empty())
        sink = std::make_unique<ProgressSink>(
            options.progressStderr, options.progressJsonlPath);

    // Resume: restore journaled results and skip their indices.
    if (!options.resumePath.empty()) {
        auto loaded = loadJournal(options.resumePath);
        for (auto& r : loaded) {
            fatalIf(r.index >= batch.size(), ErrorCode::Config,
                    "resume journal " + options.resumePath +
                        " entry index " + std::to_string(r.index) +
                        " is out of range for this batch of " +
                        std::to_string(batch.size()));
            const auto& req = batch[r.index];
            const std::string bench = mixName(req.sources);
            const std::string label =
                req.label.empty() ? bench : req.label;
            fatalIf(r.benchmark != bench ||
                        r.policy != req.policy.name ||
                        r.label != label ||
                        r.multiCore != req.isMultiCore(),
                    ErrorCode::Config,
                    "resume journal " + options.resumePath +
                        " does not match this batch at index " +
                        std::to_string(r.index) + " (journal has " +
                        r.benchmark + "/" + r.policy +
                        ", batch wants " + bench + "/" +
                        req.policy.name + ")");
            const std::size_t idx = r.index;
            set.results[idx] = std::move(r);
            completed[idx] = 1;
        }
    }

    // Open the journal after resume so healing a torn tail cannot
    // race the load when both point at the same file.
    std::unique_ptr<CheckpointJournal> journal;
    if (!options.journalPath.empty())
        journal =
            std::make_unique<CheckpointJournal>(options.journalPath);

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < batch.size(); ++i)
        if (!completed[i])
            pending.push_back(i);

    if (sink) {
        sink->batchStart(batch.size(), batch.size() - pending.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            if (completed[i])
                sink->runSkipped(i, set.results[i].label);
    }

    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(1, pending.size())));
    set.jobs = workers;
    const prof::Stopwatch batch_watch;

    // A journal-append failure must not escape a worker thread (that
    // would terminate the process); record the first one and raise it
    // after the batch drains.
    std::mutex journal_err_mutex;
    std::string journal_err;
    ErrorCode journal_err_code = ErrorCode::Io;
    const auto complete = [&](std::size_t idx, RunResult r) {
        if (journal) {
            try {
                journal->append(r); // thread-safe; fsync'd per line
            } catch (const FatalError& e) {
                std::lock_guard<std::mutex> lock(journal_err_mutex);
                if (journal_err.empty()) {
                    journal_err = e.what();
                    journal_err_code = e.code();
                }
            }
        }
        if (sink)
            sink->runEnd(r);
        set.results[idx] = std::move(r);
    };

    const auto execute = [&](std::size_t idx) {
        if (sink) {
            const auto& req = batch[idx];
            sink->runStart(idx, req.label.empty()
                                    ? mixName(req.sources)
                                    : req.label);
        }
        return runOneImpl(batch[idx], idx, options, sink.get());
    };

    const auto finish = [&]() {
        set.wallSeconds = batch_watch.seconds();
        // Single-threaded again here, so plain counter adds are safe.
        if (options.metrics) {
            std::uint64_t done = 0, failed = 0, retries = 0;
            for (const std::size_t i : pending) {
                const RunResult& r = set.results[i];
                r.ok() ? ++done : ++failed;
                if (r.attempts > 1)
                    retries += r.attempts - 1;
            }
            options.metrics->counter("runner.completed").add(done);
            options.metrics->counter("runner.failed").add(failed);
            options.metrics->counter("runner.retries").add(retries);
            options.metrics->counter("runner.skipped")
                .add(batch.size() - pending.size());
        }
        if (sink)
            sink->batchEnd(set.wallSeconds);
        fatalIf(!journal_err.empty(), journal_err_code,
                "checkpoint journaling failed: " + journal_err);
    };

    if (workers <= 1 || pending.size() <= 1) {
        for (const std::size_t i : pending)
            complete(i, execute(i));
        finish();
        return set;
    }

    // Round-robin split across per-worker queues; idle workers steal.
    std::vector<StealQueue> queues(workers);
    for (std::size_t k = 0; k < pending.size(); ++k)
        queues[k % workers].push(pending[k]);

    const auto worker = [&](unsigned me) {
        for (;;) {
            std::optional<std::size_t> task = queues[me].popFront();
            for (unsigned off = 1; !task && off < workers; ++off)
                task = queues[(me + off) % workers].stealBack();
            if (!task)
                return;
            complete(*task, execute(*task));
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(worker, w);
    for (auto& t : threads)
        t.join();

    finish();
    return set;
}

} // namespace mrp::runner
