#include "runner/experiment_runner.hpp"

#include <chrono>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <optional>
#include <thread>
#include <utility>

#include "runner/checkpoint.hpp"
#include "sim/policies.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::runner {

namespace {

/**
 * One worker's queue of request indices. Owners pop from the front,
 * thieves steal from the back, so a stolen task is the one the owner
 * would have reached last — the classic work-stealing discipline,
 * which keeps steals rare when the initial round-robin split is
 * already balanced.
 */
class StealQueue
{
  public:
    void
    push(std::size_t idx)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(idx);
    }

    std::optional<std::size_t>
    popFront()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return std::nullopt;
        const std::size_t idx = tasks_.front();
        tasks_.pop_front();
        return idx;
    }

    std::optional<std::size_t>
    stealBack()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return std::nullopt;
        const std::size_t idx = tasks_.back();
        tasks_.pop_back();
        return idx;
    }

  private:
    std::mutex mutex_;
    std::deque<std::size_t> tasks_;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
validate(const RunRequest& req, std::size_t idx)
{
    const std::size_t expect = req.isMultiCore() ? 4 : 1;
    fatalIf(req.traces.size() != expect,
            "request " + std::to_string(idx) + ": " +
                std::to_string(req.traces.size()) + " trace(s) for a " +
                (req.isMultiCore() ? "multi-core" : "single-core") +
                " config (need " + std::to_string(expect) + ")");
    for (const auto* t : req.traces)
        fatalIf(t == nullptr,
                "request " + std::to_string(idx) + ": null trace");
    fatalIf(req.policy.name.empty(),
            "request " + std::to_string(idx) + ": empty policy name");
}

std::string
mixName(const std::vector<const trace::Trace*>& traces)
{
    std::string out;
    for (const auto* t : traces) {
        if (!out.empty())
            out += "+";
        out += t->name();
    }
    return out;
}

void
executeInto(const RunRequest& req, RunResult& out)
{
    // Resilience-test sites: a stall simulates a wedged worker (the
    // watchdog's prey), an I/O fault a transient failure (retry bait).
    fault::checkStall("runner.execute.stall");
    fault::checkIo("runner.execute", "executing request");

    if (req.isMultiCore()) {
        const auto& cfg = std::get<sim::MultiCoreConfig>(req.config);
        fatalIf(req.policy.name == "MIN" && !req.policy.factory,
                "MIN needs a single-core request (two-pass oracle)");
        const auto factory =
            req.policy.factory
                ? req.policy.factory
                : sim::PolicyRegistry::make(req.policy.name);
        const std::array<const trace::Trace*, 4> mix = {
            req.traces[0], req.traces[1], req.traces[2], req.traces[3]};
        const auto r = sim::runMultiCore(mix, factory, cfg);
        out.policy = req.policy.name;
        out.ipc = 0.0;
        out.instructions = 0;
        out.coreIpc.assign(r.ipc.begin(), r.ipc.end());
        for (unsigned c = 0; c < 4; ++c) {
            out.ipc += r.ipc[c];
            out.instructions += r.instructions[c];
        }
        out.llcDemandMisses = r.llcDemandMisses;
        out.mpki = r.mpki;
        out.telemetry = r.telemetry;
        return;
    }

    const auto& cfg = std::get<sim::SingleCoreConfig>(req.config);
    sim::SingleCoreResult r;
    if (req.policy.name == "MIN" && !req.policy.factory) {
        r = sim::runSingleCoreMin(*req.traces[0], cfg);
    } else {
        const auto factory =
            req.policy.factory
                ? req.policy.factory
                : sim::PolicyRegistry::make(req.policy.name);
        r = sim::runSingleCore(*req.traces[0], factory, cfg);
    }
    out.policy = r.policy;
    out.ipc = r.ipc;
    out.mpki = r.mpki;
    out.instructions = r.instructions;
    out.llcDemandAccesses = r.llcDemandAccesses;
    out.llcDemandMisses = r.llcDemandMisses;
    out.llcBypasses = r.llcBypasses;
    out.telemetry = r.telemetry;
}

/** Identity fields of a result, shared by success and failure paths. */
void
stampIdentity(const RunRequest& req, std::size_t index, RunResult& out)
{
    out.index = index;
    out.benchmark = mixName(req.traces);
    out.policy = req.policy.name;
    out.label = req.label.empty() ? out.benchmark : req.label;
    out.multiCore = req.isMultiCore();
}

/** One attempt, all failures captured as typed error data. */
RunResult
attemptOne(const RunRequest& request, std::size_t index)
{
    RunResult out;
    stampIdentity(request, index, out);
    const auto start = std::chrono::steady_clock::now();
    try {
        executeInto(request, out);
    } catch (const PanicError& e) {
        out = RunResult{};
        stampIdentity(request, index, out);
        out.error = e.what();
        out.errorCode = ErrorCode::Internal;
    } catch (const FatalError& e) {
        out = RunResult{};
        stampIdentity(request, index, out);
        out.error = e.what();
        out.errorCode = e.code();
    } catch (const std::bad_alloc&) {
        out = RunResult{};
        stampIdentity(request, index, out);
        out.error = "out of memory executing request";
        out.errorCode = ErrorCode::Resource;
    } catch (const std::exception& e) {
        out = RunResult{};
        stampIdentity(request, index, out);
        out.error = e.what();
        out.errorCode = ErrorCode::Internal;
    }
    out.wallSeconds = secondsSince(start);
    if (out.wallSeconds > 0.0 && out.instructions > 0)
        out.instsPerSecond =
            static_cast<double>(out.instructions) / out.wallSeconds;
    return out;
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0)
        jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

RunResult
ExperimentRunner::runOne(const RunRequest& request, std::size_t index)
{
    validate(request, index);
    return attemptOne(request, index);
}

RunResult
ExperimentRunner::runOne(const RunRequest& request, std::size_t index,
                         const RunnerOptions& options)
{
    validate(request, index);
    RunResult out;
    for (unsigned attempt = 0;; ++attempt) {
        out = attemptOne(request, index);
        out.attempts = attempt + 1;
        if (out.ok() && options.timeoutSeconds > 0.0 &&
            out.wallSeconds > options.timeoutSeconds) {
            // Cooperative watchdog: the run finished but blew its
            // deadline; discard its metrics and classify as a
            // (retryable) timeout.
            const double wall = out.wallSeconds;
            const unsigned attempts = out.attempts;
            out = RunResult{};
            stampIdentity(request, index, out);
            out.error = "run exceeded watchdog timeout (" +
                        std::to_string(wall) + "s > " +
                        std::to_string(options.timeoutSeconds) +
                        "s limit)";
            out.errorCode = ErrorCode::Timeout;
            out.wallSeconds = wall;
            out.attempts = attempts;
        }
        if (out.ok() || !isRetryable(out.errorCode) ||
            attempt >= options.maxRetries)
            return out;
        // Deterministic exponential backoff: base * 2^attempt.
        const double delay =
            options.retryBackoffSeconds *
            static_cast<double>(1ull << std::min(attempt, 20u));
        if (delay > 0.0)
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay));
    }
}

RunSet
ExperimentRunner::run(const std::vector<RunRequest>& batch) const
{
    return run(batch, RunnerOptions{});
}

RunSet
ExperimentRunner::run(const std::vector<RunRequest>& batch,
                      const RunnerOptions& options) const
{
    for (std::size_t i = 0; i < batch.size(); ++i)
        validate(batch[i], i);

    RunSet set;
    set.results.resize(batch.size());
    std::vector<char> completed(batch.size(), 0);

    // Resume: restore journaled results and skip their indices.
    if (!options.resumePath.empty()) {
        auto loaded = loadJournal(options.resumePath);
        for (auto& r : loaded) {
            fatalIf(r.index >= batch.size(), ErrorCode::Config,
                    "resume journal " + options.resumePath +
                        " entry index " + std::to_string(r.index) +
                        " is out of range for this batch of " +
                        std::to_string(batch.size()));
            const auto& req = batch[r.index];
            const std::string bench = mixName(req.traces);
            const std::string label =
                req.label.empty() ? bench : req.label;
            fatalIf(r.benchmark != bench ||
                        r.policy != req.policy.name ||
                        r.label != label ||
                        r.multiCore != req.isMultiCore(),
                    ErrorCode::Config,
                    "resume journal " + options.resumePath +
                        " does not match this batch at index " +
                        std::to_string(r.index) + " (journal has " +
                        r.benchmark + "/" + r.policy +
                        ", batch wants " + bench + "/" +
                        req.policy.name + ")");
            const std::size_t idx = r.index;
            set.results[idx] = std::move(r);
            completed[idx] = 1;
        }
    }

    // Open the journal after resume so healing a torn tail cannot
    // race the load when both point at the same file.
    std::unique_ptr<CheckpointJournal> journal;
    if (!options.journalPath.empty())
        journal =
            std::make_unique<CheckpointJournal>(options.journalPath);

    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < batch.size(); ++i)
        if (!completed[i])
            pending.push_back(i);

    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(1, pending.size())));
    set.jobs = workers;
    const auto start = std::chrono::steady_clock::now();

    // A journal-append failure must not escape a worker thread (that
    // would terminate the process); record the first one and raise it
    // after the batch drains.
    std::mutex journal_err_mutex;
    std::string journal_err;
    ErrorCode journal_err_code = ErrorCode::Io;
    const auto complete = [&](std::size_t idx, RunResult r) {
        if (journal) {
            try {
                journal->append(r); // thread-safe; fsync'd per line
            } catch (const FatalError& e) {
                std::lock_guard<std::mutex> lock(journal_err_mutex);
                if (journal_err.empty()) {
                    journal_err = e.what();
                    journal_err_code = e.code();
                }
            }
        }
        set.results[idx] = std::move(r);
    };

    const auto finish = [&]() {
        set.wallSeconds = secondsSince(start);
        fatalIf(!journal_err.empty(), journal_err_code,
                "checkpoint journaling failed: " + journal_err);
    };

    if (workers <= 1 || pending.size() <= 1) {
        for (const std::size_t i : pending)
            complete(i, runOne(batch[i], i, options));
        finish();
        return set;
    }

    // Round-robin split across per-worker queues; idle workers steal.
    std::vector<StealQueue> queues(workers);
    for (std::size_t k = 0; k < pending.size(); ++k)
        queues[k % workers].push(pending[k]);

    const auto worker = [&](unsigned me) {
        for (;;) {
            std::optional<std::size_t> task = queues[me].popFront();
            for (unsigned off = 1; !task && off < workers; ++off)
                task = queues[(me + off) % workers].stealBack();
            if (!task)
                return;
            complete(*task, runOne(batch[*task], *task, options));
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(worker, w);
    for (auto& t : threads)
        t.join();

    finish();
    return set;
}

} // namespace mrp::runner
