#include "runner/experiment_runner.hpp"

#include <chrono>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "sim/policies.hpp"
#include "util/logging.hpp"

namespace mrp::runner {

namespace {

/**
 * One worker's queue of request indices. Owners pop from the front,
 * thieves steal from the back, so a stolen task is the one the owner
 * would have reached last — the classic work-stealing discipline,
 * which keeps steals rare when the initial round-robin split is
 * already balanced.
 */
class StealQueue
{
  public:
    void
    push(std::size_t idx)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(idx);
    }

    std::optional<std::size_t>
    popFront()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return std::nullopt;
        const std::size_t idx = tasks_.front();
        tasks_.pop_front();
        return idx;
    }

    std::optional<std::size_t>
    stealBack()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return std::nullopt;
        const std::size_t idx = tasks_.back();
        tasks_.pop_back();
        return idx;
    }

  private:
    std::mutex mutex_;
    std::deque<std::size_t> tasks_;
};

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
validate(const RunRequest& req, std::size_t idx)
{
    const std::size_t expect = req.isMultiCore() ? 4 : 1;
    fatalIf(req.traces.size() != expect,
            "request " + std::to_string(idx) + ": " +
                std::to_string(req.traces.size()) + " trace(s) for a " +
                (req.isMultiCore() ? "multi-core" : "single-core") +
                " config (need " + std::to_string(expect) + ")");
    for (const auto* t : req.traces)
        fatalIf(t == nullptr,
                "request " + std::to_string(idx) + ": null trace");
    fatalIf(req.policy.name.empty(),
            "request " + std::to_string(idx) + ": empty policy name");
}

std::string
mixName(const std::vector<const trace::Trace*>& traces)
{
    std::string out;
    for (const auto* t : traces) {
        if (!out.empty())
            out += "+";
        out += t->name();
    }
    return out;
}

void
executeInto(const RunRequest& req, RunResult& out)
{
    if (req.isMultiCore()) {
        const auto& cfg = std::get<sim::MultiCoreConfig>(req.config);
        fatalIf(req.policy.name == "MIN" && !req.policy.factory,
                "MIN needs a single-core request (two-pass oracle)");
        const auto factory =
            req.policy.factory
                ? req.policy.factory
                : sim::PolicyRegistry::make(req.policy.name);
        const std::array<const trace::Trace*, 4> mix = {
            req.traces[0], req.traces[1], req.traces[2], req.traces[3]};
        const auto r = sim::runMultiCore(mix, factory, cfg);
        out.policy = req.policy.name;
        out.ipc = 0.0;
        out.instructions = 0;
        out.coreIpc.assign(r.ipc.begin(), r.ipc.end());
        for (unsigned c = 0; c < 4; ++c) {
            out.ipc += r.ipc[c];
            out.instructions += r.instructions[c];
        }
        out.llcDemandMisses = r.llcDemandMisses;
        out.mpki = r.mpki;
        return;
    }

    const auto& cfg = std::get<sim::SingleCoreConfig>(req.config);
    sim::SingleCoreResult r;
    if (req.policy.name == "MIN" && !req.policy.factory) {
        r = sim::runSingleCoreMin(*req.traces[0], cfg);
    } else {
        const auto factory =
            req.policy.factory
                ? req.policy.factory
                : sim::PolicyRegistry::make(req.policy.name);
        r = sim::runSingleCore(*req.traces[0], factory, cfg);
    }
    out.policy = r.policy;
    out.ipc = r.ipc;
    out.mpki = r.mpki;
    out.instructions = r.instructions;
    out.llcDemandAccesses = r.llcDemandAccesses;
    out.llcDemandMisses = r.llcDemandMisses;
    out.llcBypasses = r.llcBypasses;
}

} // namespace

ExperimentRunner::ExperimentRunner(unsigned jobs) : jobs_(jobs)
{
    if (jobs_ == 0)
        jobs_ = std::max(1u, std::thread::hardware_concurrency());
}

RunResult
ExperimentRunner::runOne(const RunRequest& request, std::size_t index)
{
    validate(request, index);
    RunResult out;
    out.index = index;
    out.benchmark = mixName(request.traces);
    out.policy = request.policy.name;
    out.label =
        request.label.empty() ? out.benchmark : request.label;
    out.multiCore = request.isMultiCore();
    const auto start = std::chrono::steady_clock::now();
    try {
        executeInto(request, out);
    } catch (const std::exception& e) {
        out = RunResult{};
        out.index = index;
        out.benchmark = mixName(request.traces);
        out.policy = request.policy.name;
        out.label = request.label.empty() ? out.benchmark
                                          : request.label;
        out.multiCore = request.isMultiCore();
        out.error = e.what();
    }
    out.wallSeconds = secondsSince(start);
    if (out.wallSeconds > 0.0 && out.instructions > 0)
        out.instsPerSecond =
            static_cast<double>(out.instructions) / out.wallSeconds;
    return out;
}

RunSet
ExperimentRunner::run(const std::vector<RunRequest>& batch) const
{
    for (std::size_t i = 0; i < batch.size(); ++i)
        validate(batch[i], i);

    RunSet set;
    set.results.resize(batch.size());
    const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
        jobs_, std::max<std::size_t>(1, batch.size())));
    set.jobs = workers;
    const auto start = std::chrono::steady_clock::now();

    if (workers <= 1 || batch.size() <= 1) {
        for (std::size_t i = 0; i < batch.size(); ++i)
            set.results[i] = runOne(batch[i], i);
        set.wallSeconds = secondsSince(start);
        return set;
    }

    // Round-robin split across per-worker queues; idle workers steal.
    std::vector<StealQueue> queues(workers);
    for (std::size_t i = 0; i < batch.size(); ++i)
        queues[i % workers].push(i);

    const auto worker = [&](unsigned me) {
        for (;;) {
            std::optional<std::size_t> task = queues[me].popFront();
            for (unsigned off = 1; !task && off < workers; ++off)
                task = queues[(me + off) % workers].stealBack();
            if (!task)
                return;
            set.results[*task] = runOne(batch[*task], *task);
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads.emplace_back(worker, w);
    for (auto& t : threads)
        t.join();

    set.wallSeconds = secondsSince(start);
    return set;
}

} // namespace mrp::runner
