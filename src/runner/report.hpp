/**
 * @file
 * JSON and CSV serialization of a RunSet.
 *
 * Reports are deterministic by default: runs appear in request-index
 * order and the wall-clock/throughput fields are omitted, so the same
 * batch produces byte-identical output regardless of worker count.
 * Opt into the timing fields (ReportOptions::timing) for profiling
 * output that is *not* expected to be reproducible.
 *
 * JSON schema (timing fields marked †):
 *   {
 *     "jobs"†: N, "wallSeconds"†: S,
 *     "runs": [
 *       { "index": I, "benchmark": "...", "policy": "...",
 *         "label": "...", "mode": "single"|"multi",
 *         "ipc": X, "mpki": X, "instructions": N,
 *         "llcDemandAccesses": N, "llcDemandMisses": N,
 *         "llcBypasses": N,
 *         "seed": N,                  // re-seeded runs only (see
 *                                     // DriverConfig::seed)
 *         "coreIpc": [X, ...],        // multi-core runs only
 *         "metrics": { ... },         // telemetry-enabled runs only
 *                                     // (see telemetry/export.hpp)
 *         "error": "...",             // failed runs only
 *         "errorCode": "...",         // failed runs only (see
 *                                     // mrp::errorCodeName)
 *         "wallSeconds"†: S, "instsPerSecond"†: X }, ... ],
 *     "summary": [
 *       { "policy": "...", "runs": N,
 *         "geomeanIpc": X, "meanMpki": X }, ... ]
 *   }
 *
 * CSV columns:
 *   index,benchmark,policy,label,mode,ipc,mpki,instructions,
 *   llc_demand_accesses,llc_demand_misses,llc_bypasses,error,
 *   error_code[,seed][,wall_seconds,insts_per_second]†
 * (the seed column appears only when at least one run carries a
 * non-default DriverConfig::seed)
 * When at least one run carries telemetry, a second section follows
 * the table, separated by a blank line:
 *   # metrics
 *   index,metric,value
 *   <one flattened metric per row, in run-index then name order>
 *
 * Both the embedded "metrics" objects and the standalone exports below
 * are deterministic, so the byte-identity guarantee is unchanged.
 */

#ifndef MRP_RUNNER_REPORT_HPP
#define MRP_RUNNER_REPORT_HPP

#include <string>

#include "runner/run_request.hpp"
#include "util/json_writer.hpp"

namespace mrp::runner {

struct ReportOptions
{
    /** Include the nondeterministic wall-clock/throughput fields. */
    bool timing = false;
};

/** Serialize @p set as JSON (UTF-8, trailing newline). */
std::string toJson(const RunSet& set, const ReportOptions& opts = {});

/** Serialize @p set as CSV (header row, trailing newline). */
std::string toCsv(const RunSet& set, const ReportOptions& opts = {});

/**
 * Standalone metrics document (--metrics): one entry per
 * telemetry-enabled run, identified by index/benchmark/policy/label,
 * with the same "metrics" object embedded in toJson.
 */
std::string toMetricsJson(const RunSet& set);

/**
 * Combined Chrome trace_event document (--trace-out) loadable in
 * Perfetto / chrome://tracing: each telemetry-enabled run becomes one
 * process (pid = run index, named "benchmark/policy"), each
 * instrumented component one named thread, each epoch one complete
 * event whose args carry per-epoch counter deltas.
 */
std::string toTraceJson(const RunSet& set);

/** Write @p content to @p path; throws FatalError on I/O failure. */
void writeFile(const std::string& path, const std::string& content);

namespace detail {

// Compatibility aliases: the emission helpers formerly defined here
// moved to the shared util/json_writer.hpp so the checkpoint journal
// and the telemetry exporters use the same byte-stable primitives.

inline std::string
formatDouble(double v)
{
    return json::formatDouble(v);
}

inline std::string
jsonEscape(const std::string& s)
{
    return json::escape(s);
}

} // namespace detail

} // namespace mrp::runner

#endif // MRP_RUNNER_REPORT_HPP
