/**
 * @file
 * JSON and CSV serialization of a RunSet.
 *
 * Reports are deterministic by default: runs appear in request-index
 * order and the wall-clock/throughput fields are omitted, so the same
 * batch produces byte-identical output regardless of worker count.
 * Opt into the timing fields (ReportOptions::timing) for profiling
 * output that is *not* expected to be reproducible.
 *
 * JSON schema (timing fields marked †):
 *   {
 *     "jobs"†: N, "wallSeconds"†: S,
 *     "runs": [
 *       { "index": I, "benchmark": "...", "policy": "...",
 *         "label": "...", "mode": "single"|"multi",
 *         "ipc": X, "mpki": X, "instructions": N,
 *         "llcDemandAccesses": N, "llcDemandMisses": N,
 *         "llcBypasses": N,
 *         "coreIpc": [X, ...],        // multi-core runs only
 *         "error": "...",             // failed runs only
 *         "errorCode": "...",         // failed runs only (see
 *                                     // mrp::errorCodeName)
 *         "wallSeconds"†: S, "instsPerSecond"†: X }, ... ],
 *     "summary": [
 *       { "policy": "...", "runs": N,
 *         "geomeanIpc": X, "meanMpki": X }, ... ]
 *   }
 *
 * CSV columns:
 *   index,benchmark,policy,label,mode,ipc,mpki,instructions,
 *   llc_demand_accesses,llc_demand_misses,llc_bypasses,error,
 *   error_code[,wall_seconds,insts_per_second]†
 */

#ifndef MRP_RUNNER_REPORT_HPP
#define MRP_RUNNER_REPORT_HPP

#include <string>

#include "runner/run_request.hpp"

namespace mrp::runner {

struct ReportOptions
{
    /** Include the nondeterministic wall-clock/throughput fields. */
    bool timing = false;
};

/** Serialize @p set as JSON (UTF-8, trailing newline). */
std::string toJson(const RunSet& set, const ReportOptions& opts = {});

/** Serialize @p set as CSV (header row, trailing newline). */
std::string toCsv(const RunSet& set, const ReportOptions& opts = {});

/** Write @p content to @p path; throws FatalError on I/O failure. */
void writeFile(const std::string& path, const std::string& content);

namespace detail {

/**
 * Shortest round-trip decimal form of a double, so serialized values
 * re-parse to the exact same bits — the property that makes reports
 * (and checkpoint-journal round trips) byte-identical.
 */
std::string formatDouble(double v);

/** JSON string-body escaping (quotes, backslash, control chars). */
std::string jsonEscape(const std::string& s);

} // namespace detail

} // namespace mrp::runner

#endif // MRP_RUNNER_REPORT_HPP
