/**
 * @file
 * Executor: the one-method seam between "what to run" and "how it
 * runs". A batch of RunRequests goes in; a RunSet keyed by request
 * index comes out, byte-identical regardless of the executor behind
 * the seam — the in-process work-stealing thread pool
 * (runner::ExperimentRunner) or the multi-process lease broker
 * (queue::Broker). Study and the CLIs program against this interface
 * so a sweep can move from threads to processes without touching its
 * caching, journaling, or report logic.
 */

#ifndef MRP_RUNNER_EXECUTOR_HPP
#define MRP_RUNNER_EXECUTOR_HPP

#include <vector>

#include "runner/run_request.hpp"

namespace mrp::runner {

struct RunnerOptions;

class Executor
{
  public:
    virtual ~Executor() = default;

    /**
     * Execute every request and return results in request order.
     * Implementations must honor the durability options (journal,
     * resume, retries) with identical semantics: the deterministic
     * fields of the RunSet depend only on the batch, never on the
     * execution vehicle.
     */
    virtual RunSet run(const std::vector<RunRequest>& batch,
                       const RunnerOptions& options) const = 0;
};

} // namespace mrp::runner

#endif // MRP_RUNNER_EXECUTOR_HPP
