/**
 * @file
 * Crash-safe checkpoint journal for experiment batches.
 *
 * The journal is append-only JSONL: one line per completed RunResult,
 * written with a single write(2) and fsync'd, so a crash can lose at
 * most a partially-written final line. Each line is prefixed with the
 * CRC-32 of its JSON body:
 *
 *   <crc32-hex8> {"index": 3, "benchmark": "...", ...}\n
 *
 * The loader verifies every line's checksum; an invalid *final* line
 * is the expected signature of a torn write and is silently dropped,
 * while an invalid interior line means real corruption and raises
 * FatalError(ErrorCode::CorruptInput).
 *
 * Journal lines carry exactly the deterministic fields of RunResult
 * (doubles in shortest round-trip form), so a resumed batch's reports
 * are byte-identical to an uninterrupted run's.
 *
 * Fault-injection sites:
 *   "runner.journal.open"   IoError — fail opening the journal
 *   "runner.journal.write"  IoError — fail an append
 */

#ifndef MRP_RUNNER_CHECKPOINT_HPP
#define MRP_RUNNER_CHECKPOINT_HPP

#include <optional>
#include <string>
#include <vector>

#include "runner/run_request.hpp"
#include "util/journal.hpp"

namespace mrp::runner {

/**
 * Append-only, fsync'd journal writer. Thread-safe: workers append
 * results as they complete, in completion order (the index field, not
 * line order, keys each entry). A thin RunResult-typed veneer over
 * journal::AppendFile.
 */
class CheckpointJournal
{
  public:
    /** Opens (creating or appending to) @p path; throws
     * FatalError(ErrorCode::Io) on failure. */
    explicit CheckpointJournal(const std::string& path);
    CheckpointJournal(const CheckpointJournal&) = delete;
    CheckpointJournal& operator=(const CheckpointJournal&) = delete;

    /** Serialize, append, and fsync one completed result. */
    void append(const RunResult& result);

    const std::string& path() const { return file_.path(); }

  private:
    journal::AppendFile file_;
};

/**
 * Parse a journal into results. Tolerates a torn final line; throws
 * FatalError(ErrorCode::CorruptInput) for interior corruption and
 * FatalError(ErrorCode::Io) if @p path cannot be read. Entries appear
 * in file order; duplicate indices (possible when a journal is resumed
 * more than once) keep the last occurrence.
 */
std::vector<RunResult> loadJournal(const std::string& path);

/** One journal line (checksum prefix + JSON + newline); exposed for
 * tests that construct torn or corrupt journals. */
std::string journalLine(const RunResult& result);

/** Parse one line; std::nullopt if the checksum or JSON is invalid. */
std::optional<RunResult> parseJournalLine(const std::string& line);

/** JSON body of one result (what journalLine frames with a checksum).
 * Deterministic fields only — the queue wire protocol reuses this
 * exact form, so a worker's RESULT payload and a journal entry are
 * the same bytes. */
std::string resultJson(const RunResult& result);

/** Parse a resultJson body; std::nullopt on schema mismatch. */
std::optional<RunResult> resultFromJson(const std::string& json);

} // namespace mrp::runner

#endif // MRP_RUNNER_CHECKPOINT_HPP
