/**
 * @file
 * Multi-tenant campaign builders: declarative generators for the
 * shared-cache RunRequest batches the paper-style QoS studies run —
 * a victim workload co-scheduled with an aggressor at several
 * partition splits (the noisy-neighbor sweep), and a cross product
 * of workload mixes under one tenancy configuration (the mix
 * campaign).
 *
 * Like every figure in this repo, a campaign is data, not loops in a
 * bench: the builders emit plain RunRequests, so one batch runs
 * in-process, across threads, or on the distributed queue unchanged,
 * and its report is byte-identical at any --jobs.
 */

#ifndef MRP_RUNNER_SCENARIOS_HPP
#define MRP_RUNNER_SCENARIOS_HPP

#include <vector>

#include "runner/run_request.hpp"
#include "tenant/config.hpp"
#include "trace/spec.hpp"

namespace mrp::runner {

/** Shared-cache scenario knobs applied to every emitted request. */
struct ScenarioConfig
{
    sim::MultiCoreConfig sim;
    PolicySpec policy = PolicySpec::byName("LRU");
    /** SLO ceiling for tenant 0 (the victim); <= 0 = no SLO. */
    double victimSloMpki = 0.0;
    /** Enable the QoS controller on the SLO'd runs. */
    bool qos = false;
};

/**
 * Noisy-neighbor sweep: victim + aggressor sharing the LLC.
 *
 * Emits, in order:
 *  - one unpartitioned baseline (the interference measurement),
 *  - one fixed-partition run per entry of @p victimWays (labelled
 *    "part:V/A"), isolating the victim at V of the LLC's ways,
 *  - when cfg.qos is set, one QoS run starting from the LAST
 *    victimWays split with cfg.victimSloMpki as tenant 0's ceiling
 *    (labelled "qos:V/A").
 *
 * Each way count must leave the aggressor at least one way. Throws
 * FatalError(Config) on an invalid split.
 */
std::vector<RunRequest>
noisyNeighborBatch(const trace::TraceSpec& victim,
                   const trace::TraceSpec& aggressor,
                   const std::vector<unsigned>& victimWays,
                   const ScenarioConfig& cfg);

/**
 * Mix campaign: every mix of @p mixes (each a full tenant list — one
 * spec per core) under one tenancy configuration. tenancy.tenants
 * must match the arity of every mix; an empty tenancy runs the mixes
 * unpartitioned. Labels are the mix names.
 */
std::vector<RunRequest>
mixCampaign(const std::vector<std::vector<trace::TraceSpec>>& mixes,
            const tenant::TenancyConfig& tenancy,
            const ScenarioConfig& cfg);

} // namespace mrp::runner

#endif // MRP_RUNNER_SCENARIOS_HPP
