/**
 * @file
 * The declarative experiment-batch vocabulary of the parallel runner:
 * a RunRequest names one (trace, policy, driver config) cell, a
 * RunResult is its measured outcome plus execution metrics, and a
 * RunSet is the deterministic, index-ordered collection a batch
 * produces.
 *
 * Every paper figure is a cross product of workloads and policies;
 * expressing the product as data (instead of nested loops in each
 * bench) is what lets one engine execute any figure in parallel.
 */

#ifndef MRP_RUNNER_RUN_REQUEST_HPP
#define MRP_RUNNER_RUN_REQUEST_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/mpppb.hpp"
#include "sim/multi_core.hpp"
#include "sim/single_core.hpp"
#include "trace/spec.hpp"
#include "trace/trace.hpp"
#include "util/logging.hpp"
#include "util/types.hpp"

namespace mrp::prof {
struct ProfileReport;
}

namespace mrp::runner {

/**
 * Policy selection for one run: a registry name, optionally overridden
 * by an explicit factory (for configurations that have no registered
 * name, e.g. leave-one-feature-out MPPPB variants) or by an MPPPB
 * configuration carried as data. The name "MIN" with no factory
 * selects the two-pass Belady oracle, which is valid for single-core
 * requests only.
 *
 * The data-payload form exists for the distributed queue: a factory
 * is a closure and cannot cross a process boundary, while an
 * MpppbConfig serializes (see queue/wire.hpp) and is resolved to a
 * factory at execution time — in this process or a worker — so sweep
 * candidates run identically everywhere.
 */
struct PolicySpec
{
    std::string name;          //!< display / report name
    sim::PolicyFactory factory; //!< empty => resolve name via registry
    /** When set (and no factory), the run builds an MPPPB policy from
     * this configuration instead of resolving `name`. */
    std::shared_ptr<const core::MpppbConfig> mpppbConfig;

    static PolicySpec
    byName(std::string name)
    {
        return {std::move(name), {}, nullptr};
    }

    static PolicySpec
    custom(std::string name, sim::PolicyFactory factory)
    {
        return {std::move(name), std::move(factory), nullptr};
    }

    /** Serializable MPPPB-by-configuration spec (name "MPPPB"). */
    static PolicySpec
    mpppb(const core::MpppbConfig& cfg)
    {
        return {"MPPPB", {},
                std::make_shared<const core::MpppbConfig>(cfg)};
    }
};

/**
 * One experiment cell. Workloads are named by TraceSpec values, so a
 * request never holds trace bytes: each execution attempt opens its
 * own fresh TraceSource (worker threads share nothing), and the
 * checkpoint/report identity of a run — benchmark name, instruction
 * count — comes from the spec, independent of how the records are
 * delivered. Borrowed specs alone reference caller-owned traces, which
 * must outlive the batch.
 */
struct RunRequest
{
    /** 1 spec => single-core run; >= 2 specs => multi-core mix run. */
    std::vector<trace::TraceSpec> sources;
    PolicySpec policy;
    /** Driver configuration matching the source count. */
    std::variant<sim::SingleCoreConfig, sim::MultiCoreConfig> config;
    /** Optional report label; defaults to the benchmark/mix name. */
    std::string label;
    /**
     * Delivery knobs forwarded to every TraceSpec::open() of this
     * request (file read mode, decode-ahead, chunk size). Purely an
     * execution concern: results are byte-identical under every
     * setting.
     */
    trace::TraceSpec::OpenOptions openOptions;

    static RunRequest
    singleCore(trace::TraceSpec spec, PolicySpec policy,
               sim::SingleCoreConfig cfg = {})
    {
        RunRequest r;
        r.sources.push_back(std::move(spec));
        r.policy = std::move(policy);
        r.config = cfg;
        return r;
    }

    static RunRequest
    multiCore(std::array<trace::TraceSpec, 4> mix, PolicySpec policy,
              sim::MultiCoreConfig cfg = {})
    {
        RunRequest r;
        r.sources.assign(std::make_move_iterator(mix.begin()),
                         std::make_move_iterator(mix.end()));
        r.policy = std::move(policy);
        r.config = std::move(cfg);
        return r;
    }

    /** N-core mix (>= 2 sources); tenancy configs size to the mix. */
    static RunRequest
    multiCore(std::vector<trace::TraceSpec> mix, PolicySpec policy,
              sim::MultiCoreConfig cfg = {})
    {
        RunRequest r;
        r.sources = std::move(mix);
        r.policy = std::move(policy);
        r.config = std::move(cfg);
        return r;
    }

    bool
    isMultiCore() const
    {
        return std::holds_alternative<sim::MultiCoreConfig>(config);
    }
};

/**
 * Measured outcome of one request, keyed by its index in the batch so
 * result ordering is independent of worker completion order. A failed
 * run (unknown policy, driver error) carries the message in `error`
 * and zeroed metrics instead of aborting the batch.
 */
struct RunResult
{
    std::size_t index = 0;
    std::string benchmark; //!< trace name, or "a+b+c+d" for a mix
    std::string policy;
    std::string label;
    std::string error; //!< empty on success
    /** Classification of `error`; None on success. */
    ErrorCode errorCode = ErrorCode::None;
    bool multiCore = false;
    /** Experiment seed copied from the request's DriverConfig;
     * recorded in reports and the checkpoint journal when nonzero
     * (0 = default seeding, omitted for byte-compat with pre-seed
     * artifacts). */
    std::uint64_t seed = 0;

    double ipc = 0.0;
    double mpki = 0.0;
    InstCount instructions = 0; //!< measured (post-warmup)
    std::uint64_t llcDemandAccesses = 0;
    std::uint64_t llcDemandMisses = 0;
    std::uint64_t llcBypasses = 0;
    std::vector<double> coreIpc; //!< per-core IPCs (multi-core only)
    /**
     * Tenancy outcome, present iff the request configured tenants
     * (empty vectors otherwise, and the report/journal fields are
     * omitted for byte-compat with non-tenant artifacts). All values
     * are simulated outcomes, so they survive checkpoint/resume.
     */
    std::vector<sim::TenantOutcome> tenants;
    std::vector<tenant::QosResize> qosSchedule;
    /**
     * Present iff the request's config enabled telemetry. Excluded
     * from the checkpoint journal, so runs restored by --resume carry
     * no metrics (like wallSeconds, telemetry is a per-execution
     * artifact, not part of the simulated outcome).
     */
    std::shared_ptr<const telemetry::RunTelemetry> telemetry;
    /**
     * Present iff RunnerOptions::profile was set: the run's phase tree
     * and host-resource capture (see prof/profiler.hpp). Like
     * telemetry, a per-execution artifact — excluded from the
     * checkpoint journal and from deterministic reports.
     */
    std::shared_ptr<const prof::ProfileReport> profile;

    /** Wall-clock execution metrics; excluded from deterministic
     * reports (they vary run to run). */
    double wallSeconds = 0.0;
    double instsPerSecond = 0.0; //!< simulated instructions / second
    /** Execution attempts consumed (1 = no retries); excluded from
     * reports and the checkpoint journal. */
    unsigned attempts = 1;

    bool ok() const { return error.empty(); }
};

/** Per-policy aggregate over the successful runs of a batch. */
struct PolicySummary
{
    std::string policy;
    unsigned runs = 0;
    double geomeanIpc = 0.0;
    double meanMpki = 0.0;
};

/**
 * Outcome of one batch: results in request-index order plus batch-wide
 * execution metrics.
 */
struct RunSet
{
    std::vector<RunResult> results; //!< results[i] answers request i
    unsigned jobs = 1;              //!< worker threads used
    double wallSeconds = 0.0;       //!< whole-batch wall clock

    /**
     * Per-policy geomean IPC and mean MPKI over successful runs, in
     * order of first appearance in the batch. Runs with non-positive
     * IPC (errors) are skipped.
     */
    std::vector<PolicySummary> policySummaries() const;

    /**
     * IPC of the result at @p index divided by the IPC of the
     * same-benchmark run under @p baseline_policy; throws FatalError
     * if no such baseline run exists in the batch.
     */
    double speedupOver(std::size_t index,
                       const std::string& baseline_policy) const;
};

} // namespace mrp::runner

#endif // MRP_RUNNER_RUN_REQUEST_HPP
