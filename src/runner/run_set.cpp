#include "runner/run_request.hpp"

#include "util/logging.hpp"
#include "util/math_util.hpp"

namespace mrp::runner {

std::vector<PolicySummary>
RunSet::policySummaries() const
{
    std::vector<std::string> order;
    for (const auto& r : results) {
        bool seen = false;
        for (const auto& p : order)
            seen = seen || p == r.policy;
        if (!seen)
            order.push_back(r.policy);
    }

    std::vector<PolicySummary> out;
    out.reserve(order.size());
    for (const auto& policy : order) {
        std::vector<double> ipcs;
        std::vector<double> mpkis;
        for (const auto& r : results) {
            if (r.policy != policy || !r.ok() || r.ipc <= 0.0)
                continue;
            ipcs.push_back(r.ipc);
            mpkis.push_back(r.mpki);
        }
        PolicySummary s;
        s.policy = policy;
        s.runs = static_cast<unsigned>(ipcs.size());
        if (!ipcs.empty()) {
            s.geomeanIpc = geomean(ipcs);
            s.meanMpki = mean(mpkis);
        }
        out.push_back(std::move(s));
    }
    return out;
}

double
RunSet::speedupOver(std::size_t index,
                    const std::string& baseline_policy) const
{
    fatalIf(index >= results.size(), "speedupOver: index out of range");
    const RunResult& r = results[index];
    for (const auto& base : results) {
        if (base.policy != baseline_policy ||
            base.benchmark != r.benchmark || !base.ok())
            continue;
        fatalIf(base.ipc <= 0.0,
                "speedupOver: baseline IPC is non-positive");
        return r.ipc / base.ipc;
    }
    fatal("speedupOver: no successful " + baseline_policy +
          " run for benchmark " + r.benchmark + " in the batch");
}

} // namespace mrp::runner
