#include "runner/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "runner/report.hpp"
#include "util/crc32.hpp"
#include "util/json_writer.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace mrp::runner {

namespace {

std::string
hex8(std::uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", v);
    return buf;
}

std::string
journalJson(const RunResult& r)
{
    std::string out = "{\"index\": " + std::to_string(r.index);
    out += ", \"benchmark\": \"" + json::escape(r.benchmark) +
           "\"";
    out += ", \"policy\": \"" + json::escape(r.policy) + "\"";
    out += ", \"label\": \"" + json::escape(r.label) + "\"";
    out += std::string(", \"mode\": ") +
           (r.multiCore ? "\"multi\"" : "\"single\"");
    out += ", \"ipc\": " + json::formatDouble(r.ipc);
    out += ", \"mpki\": " + json::formatDouble(r.mpki);
    out += ", \"instructions\": " + std::to_string(r.instructions);
    out += ", \"llcDemandAccesses\": " +
           std::to_string(r.llcDemandAccesses);
    out += ", \"llcDemandMisses\": " +
           std::to_string(r.llcDemandMisses);
    out += ", \"llcBypasses\": " + std::to_string(r.llcBypasses);
    if (r.seed != 0)
        out += ", \"seed\": " + std::to_string(r.seed);
    if (r.multiCore) {
        out += ", \"coreIpc\": [";
        for (std::size_t c = 0; c < r.coreIpc.size(); ++c) {
            if (c)
                out += ", ";
            out += json::formatDouble(r.coreIpc[c]);
        }
        out += "]";
    }
    if (!r.ok()) {
        out += ", \"error\": \"" + json::escape(r.error) + "\"";
        out += std::string(", \"errorCode\": \"") +
               errorCodeName(r.errorCode) + "\"";
    }
    out += "}";
    return out;
}

/**
 * Minimal parser for the flat JSON objects this module itself emits:
 * string / integer / double values plus one array of doubles. Any
 * deviation makes the whole line invalid — the CRC prefix already
 * guarantees integrity, so this layer only guards schema drift.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    bool
    parse(RunResult& out)
    {
        skipWs();
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return atEnd();
        for (;;) {
            std::string key;
            if (!parseString(&key) || !skipWsAnd(':'))
                return false;
            skipWs();
            if (!dispatch(key, out))
                return false;
            skipWs();
            if (consume('}'))
                return atEnd();
            if (!consume(','))
                return false;
            skipWs();
        }
    }

  private:
    bool
    atEnd()
    {
        skipWs();
        return p_ == end_;
    }

    void
    skipWs()
    {
        while (p_ != end_ &&
               (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' ||
                *p_ == '\n'))
            ++p_;
    }

    bool
    consume(char c)
    {
        if (p_ != end_ && *p_ == c) {
            ++p_;
            return true;
        }
        return false;
    }

    bool
    skipWsAnd(char c)
    {
        skipWs();
        return consume(c);
    }

    bool
    parseString(std::string* out)
    {
        if (!consume('"'))
            return false;
        out->clear();
        while (p_ != end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (p_ == end_)
                return false;
            const char esc = *p_++;
            switch (esc) {
            case '"': *out += '"'; break;
            case '\\': *out += '\\'; break;
            case '/': *out += '/'; break;
            case 'n': *out += '\n'; break;
            case 'r': *out += '\r'; break;
            case 't': *out += '\t'; break;
            case 'b': *out += '\b'; break;
            case 'f': *out += '\f'; break;
            case 'u': {
                if (end_ - p_ < 4)
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = *p_++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // The writer only emits \u00XX control escapes.
                if (code > 0x7F)
                    return false;
                *out += static_cast<char>(code);
                break;
            }
            default: return false;
            }
        }
        return consume('"');
    }

    bool
    parseNumberToken(std::string* out)
    {
        out->clear();
        while (p_ != end_ &&
               (std::strchr("+-.eE", *p_) != nullptr ||
                (*p_ >= '0' && *p_ <= '9')))
            *out += *p_++;
        return !out->empty();
    }

    bool
    parseU64(std::uint64_t* out)
    {
        std::string tok;
        if (!parseNumberToken(&tok))
            return false;
        errno = 0;
        char* rest = nullptr;
        *out = std::strtoull(tok.c_str(), &rest, 10);
        return errno == 0 && rest != nullptr && *rest == '\0';
    }

    bool
    parseDouble(double* out)
    {
        std::string tok;
        if (!parseNumberToken(&tok))
            return false;
        char* rest = nullptr;
        *out = std::strtod(tok.c_str(), &rest);
        return rest != nullptr && *rest == '\0';
    }

    bool
    parseDoubleArray(std::vector<double>* out)
    {
        if (!consume('['))
            return false;
        out->clear();
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            double v = 0.0;
            skipWs();
            if (!parseDouble(&v))
                return false;
            out->push_back(v);
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    dispatch(const std::string& key, RunResult& out)
    {
        if (key == "index") {
            std::uint64_t v = 0;
            if (!parseU64(&v))
                return false;
            out.index = static_cast<std::size_t>(v);
            return true;
        }
        if (key == "benchmark")
            return parseString(&out.benchmark);
        if (key == "policy")
            return parseString(&out.policy);
        if (key == "label")
            return parseString(&out.label);
        if (key == "error")
            return parseString(&out.error);
        if (key == "errorCode") {
            std::string name;
            if (!parseString(&name))
                return false;
            out.errorCode = errorCodeFromName(name);
            return true;
        }
        if (key == "mode") {
            std::string mode;
            if (!parseString(&mode))
                return false;
            if (mode != "single" && mode != "multi")
                return false;
            out.multiCore = mode == "multi";
            return true;
        }
        if (key == "ipc")
            return parseDouble(&out.ipc);
        if (key == "mpki")
            return parseDouble(&out.mpki);
        if (key == "instructions")
            return parseU64(&out.instructions);
        if (key == "llcDemandAccesses")
            return parseU64(&out.llcDemandAccesses);
        if (key == "llcDemandMisses")
            return parseU64(&out.llcDemandMisses);
        if (key == "llcBypasses")
            return parseU64(&out.llcBypasses);
        if (key == "seed")
            return parseU64(&out.seed);
        if (key == "coreIpc")
            return parseDoubleArray(&out.coreIpc);
        // Unknown key: tolerate forward-compatible additions if the
        // value is one of the shapes we know how to skip.
        std::string str;
        double num = 0.0;
        std::vector<double> arr;
        if (p_ != end_ && *p_ == '"')
            return parseString(&str);
        if (p_ != end_ && *p_ == '[')
            return parseDoubleArray(&arr);
        return parseDouble(&num);
    }

    const char* p_;
    const char* end_;
};

struct ScanResult
{
    std::vector<RunResult> entries;
    /** Byte length of the valid line prefix (everything before a torn
     * or missing tail). */
    std::uint64_t validBytes = 0;
};

/**
 * Walk @p content line by line. An unparsable *final* chunk is a torn
 * tail and is excluded from validBytes; an unparsable interior line is
 * corruption and throws.
 */
ScanResult
scanJournal(const std::string& content, const std::string& path)
{
    ScanResult scan;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < content.size()) {
        ++line_no;
        const std::size_t nl = content.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::size_t len =
            (complete ? nl : content.size()) - pos;
        auto parsed = parseJournalLine(content.substr(pos, len));
        const std::size_t next = complete ? nl + 1 : content.size();
        if (!parsed) {
            fatalIf(next < content.size(), ErrorCode::CorruptInput,
                    "corrupt checkpoint journal " + path + ": line " +
                        std::to_string(line_no) +
                        " fails checksum/parse but is not the final "
                        "line");
            return scan; // torn tail: drop it
        }
        scan.entries.push_back(std::move(*parsed));
        scan.validBytes = next;
        pos = next;
    }
    return scan;
}

std::string
readWholeFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, ErrorCode::Io,
            "cannot open checkpoint journal: " + path);
    std::ostringstream ss;
    ss << is.rdbuf();
    fatalIf(is.bad(), ErrorCode::Io,
            "read failed on checkpoint journal: " + path);
    return ss.str();
}

bool
fileExists(const std::string& path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

} // namespace

std::string
journalLine(const RunResult& result)
{
    const std::string json = journalJson(result);
    return hex8(Crc32::of(json.data(), json.size())) + " " + json +
           "\n";
}

std::optional<RunResult>
parseJournalLine(const std::string& line)
{
    std::string body = line;
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == '\r'))
        body.pop_back();
    if (body.size() < 10 || body[8] != ' ')
        return std::nullopt;
    std::uint32_t stored = 0;
    for (int i = 0; i < 8; ++i) {
        const char h = body[static_cast<std::size_t>(i)];
        stored <<= 4;
        if (h >= '0' && h <= '9')
            stored |= static_cast<std::uint32_t>(h - '0');
        else if (h >= 'a' && h <= 'f')
            stored |= static_cast<std::uint32_t>(h - 'a' + 10);
        else
            return std::nullopt;
    }
    const std::string json = body.substr(9);
    if (Crc32::of(json.data(), json.size()) != stored)
        return std::nullopt;
    RunResult r;
    if (!JsonParser(json).parse(r))
        return std::nullopt;
    return r;
}

std::vector<RunResult>
loadJournal(const std::string& path)
{
    return scanJournal(readWholeFile(path), path).entries;
}

CheckpointJournal::CheckpointJournal(const std::string& path)
    : path_(path)
{
    fault::checkIo("runner.journal.open", "opening journal " + path);
    // Heal a torn tail left by a crash: truncate to the valid line
    // prefix so new appends never concatenate onto a partial line.
    if (fileExists(path_)) {
        const std::string content = readWholeFile(path_);
        const auto scan = scanJournal(content, path_);
        if (scan.validBytes < content.size())
            fatalIf(::truncate(path_.c_str(),
                               static_cast<off_t>(scan.validBytes)) !=
                        0,
                    ErrorCode::Io,
                    "cannot truncate torn journal tail: " + path_ +
                        ": " + std::strerror(errno));
    }
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    fatalIf(fd_ < 0, ErrorCode::Io,
            "cannot open journal for append: " + path_ + ": " +
                std::strerror(errno));
}

CheckpointJournal::~CheckpointJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
CheckpointJournal::append(const RunResult& result)
{
    const std::string line = journalLine(result);
    std::lock_guard<std::mutex> lock(mutex_);
    fault::checkIo("runner.journal.write",
                   "appending to journal " + path_);
    // One write(2) per line: a crash tears at most the final line,
    // which the loader and the constructor's truncation both tolerate.
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n =
            ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0 && errno == EINTR)
            continue;
        fatalIf(n <= 0, ErrorCode::Io,
                "journal write failed: " + path_ + ": " +
                    std::strerror(errno));
        off += static_cast<std::size_t>(n);
    }
    fatalIf(::fsync(fd_) != 0, ErrorCode::Io,
            "journal fsync failed: " + path_ + ": " +
                std::strerror(errno));
}

} // namespace mrp::runner
