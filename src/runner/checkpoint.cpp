#include "runner/checkpoint.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "runner/report.hpp"
#include "util/json_writer.hpp"
#include "util/logging.hpp"

namespace mrp::runner {

namespace {

/**
 * Minimal parser for the flat JSON objects this module itself emits:
 * string / integer / double values plus one array of doubles. Any
 * deviation makes the whole line invalid — the CRC prefix already
 * guarantees integrity, so this layer only guards schema drift.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text)
        : p_(text.data()), end_(text.data() + text.size())
    {
    }

    bool
    parse(RunResult& out)
    {
        skipWs();
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return atEnd();
        for (;;) {
            std::string key;
            if (!parseString(&key) || !skipWsAnd(':'))
                return false;
            skipWs();
            if (!dispatch(key, out))
                return false;
            skipWs();
            if (consume('}'))
                return atEnd();
            if (!consume(','))
                return false;
            skipWs();
        }
    }

  private:
    bool
    atEnd()
    {
        skipWs();
        return p_ == end_;
    }

    void
    skipWs()
    {
        while (p_ != end_ &&
               (*p_ == ' ' || *p_ == '\t' || *p_ == '\r' ||
                *p_ == '\n'))
            ++p_;
    }

    bool
    consume(char c)
    {
        if (p_ != end_ && *p_ == c) {
            ++p_;
            return true;
        }
        return false;
    }

    bool
    skipWsAnd(char c)
    {
        skipWs();
        return consume(c);
    }

    bool
    parseString(std::string* out)
    {
        if (!consume('"'))
            return false;
        out->clear();
        while (p_ != end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (p_ == end_)
                return false;
            const char esc = *p_++;
            switch (esc) {
            case '"': *out += '"'; break;
            case '\\': *out += '\\'; break;
            case '/': *out += '/'; break;
            case 'n': *out += '\n'; break;
            case 'r': *out += '\r'; break;
            case 't': *out += '\t'; break;
            case 'b': *out += '\b'; break;
            case 'f': *out += '\f'; break;
            case 'u': {
                if (end_ - p_ < 4)
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = *p_++;
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // The writer only emits \u00XX control escapes.
                if (code > 0x7F)
                    return false;
                *out += static_cast<char>(code);
                break;
            }
            default: return false;
            }
        }
        return consume('"');
    }

    bool
    parseNumberToken(std::string* out)
    {
        out->clear();
        while (p_ != end_ &&
               (std::strchr("+-.eE", *p_) != nullptr ||
                (*p_ >= '0' && *p_ <= '9')))
            *out += *p_++;
        return !out->empty();
    }

    bool
    parseU64(std::uint64_t* out)
    {
        std::string tok;
        if (!parseNumberToken(&tok))
            return false;
        errno = 0;
        char* rest = nullptr;
        *out = std::strtoull(tok.c_str(), &rest, 10);
        return errno == 0 && rest != nullptr && *rest == '\0';
    }

    bool
    parseDouble(double* out)
    {
        std::string tok;
        if (!parseNumberToken(&tok))
            return false;
        char* rest = nullptr;
        *out = std::strtod(tok.c_str(), &rest);
        return rest != nullptr && *rest == '\0';
    }

    bool
    parseDoubleArray(std::vector<double>* out)
    {
        if (!consume('['))
            return false;
        out->clear();
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            double v = 0.0;
            skipWs();
            if (!parseDouble(&v))
                return false;
            out->push_back(v);
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    dispatch(const std::string& key, RunResult& out)
    {
        if (key == "index") {
            std::uint64_t v = 0;
            if (!parseU64(&v))
                return false;
            out.index = static_cast<std::size_t>(v);
            return true;
        }
        if (key == "benchmark")
            return parseString(&out.benchmark);
        if (key == "policy")
            return parseString(&out.policy);
        if (key == "label")
            return parseString(&out.label);
        if (key == "error")
            return parseString(&out.error);
        if (key == "errorCode") {
            std::string name;
            if (!parseString(&name))
                return false;
            out.errorCode = errorCodeFromName(name);
            return true;
        }
        if (key == "mode") {
            std::string mode;
            if (!parseString(&mode))
                return false;
            if (mode != "single" && mode != "multi")
                return false;
            out.multiCore = mode == "multi";
            return true;
        }
        if (key == "ipc")
            return parseDouble(&out.ipc);
        if (key == "mpki")
            return parseDouble(&out.mpki);
        if (key == "instructions")
            return parseU64(&out.instructions);
        if (key == "llcDemandAccesses")
            return parseU64(&out.llcDemandAccesses);
        if (key == "llcDemandMisses")
            return parseU64(&out.llcDemandMisses);
        if (key == "llcBypasses")
            return parseU64(&out.llcBypasses);
        if (key == "seed")
            return parseU64(&out.seed);
        if (key == "coreIpc")
            return parseDoubleArray(&out.coreIpc);
        // Tenancy outcome, serialized as parallel flat arrays (the
        // only aggregate shape this parser supports).
        if (key == "tenantWaysInitial" || key == "tenantWaysFinal" ||
            key == "tenantDemandMisses" ||
            key == "tenantInstructions" || key == "tenantMpki" ||
            key == "tenantSloMpki") {
            std::vector<double> arr;
            if (!parseDoubleArray(&arr))
                return false;
            if (out.tenants.size() < arr.size())
                out.tenants.resize(arr.size());
            for (std::size_t t = 0; t < arr.size(); ++t) {
                auto& o = out.tenants[t];
                if (key == "tenantWaysInitial")
                    o.waysInitial = static_cast<std::uint32_t>(arr[t]);
                else if (key == "tenantWaysFinal")
                    o.waysFinal = static_cast<std::uint32_t>(arr[t]);
                else if (key == "tenantDemandMisses")
                    o.demandMisses = static_cast<std::uint64_t>(arr[t]);
                else if (key == "tenantInstructions")
                    o.instructions = static_cast<InstCount>(arr[t]);
                else if (key == "tenantMpki")
                    o.mpki = arr[t];
                else
                    o.sloMpki = arr[t];
            }
            return true;
        }
        if (key == "qosEpochs" || key == "qosFrom" || key == "qosTo") {
            std::vector<double> arr;
            if (!parseDoubleArray(&arr))
                return false;
            if (out.qosSchedule.size() < arr.size())
                out.qosSchedule.resize(arr.size());
            for (std::size_t i = 0; i < arr.size(); ++i) {
                auto& q = out.qosSchedule[i];
                if (key == "qosEpochs")
                    q.epoch = static_cast<std::uint64_t>(arr[i]);
                else if (key == "qosFrom")
                    q.from = static_cast<unsigned>(arr[i]);
                else
                    q.to = static_cast<unsigned>(arr[i]);
            }
            return true;
        }
        // Unknown key: tolerate forward-compatible additions if the
        // value is one of the shapes we know how to skip.
        std::string str;
        double num = 0.0;
        std::vector<double> arr;
        if (p_ != end_ && *p_ == '"')
            return parseString(&str);
        if (p_ != end_ && *p_ == '[')
            return parseDoubleArray(&arr);
        return parseDouble(&num);
    }

    const char* p_;
    const char* end_;
};

} // namespace

std::string
resultJson(const RunResult& r)
{
    std::string out = "{\"index\": " + std::to_string(r.index);
    out += ", \"benchmark\": \"" + json::escape(r.benchmark) +
           "\"";
    out += ", \"policy\": \"" + json::escape(r.policy) + "\"";
    out += ", \"label\": \"" + json::escape(r.label) + "\"";
    out += std::string(", \"mode\": ") +
           (r.multiCore ? "\"multi\"" : "\"single\"");
    out += ", \"ipc\": " + json::formatDouble(r.ipc);
    out += ", \"mpki\": " + json::formatDouble(r.mpki);
    out += ", \"instructions\": " + std::to_string(r.instructions);
    out += ", \"llcDemandAccesses\": " +
           std::to_string(r.llcDemandAccesses);
    out += ", \"llcDemandMisses\": " +
           std::to_string(r.llcDemandMisses);
    out += ", \"llcBypasses\": " + std::to_string(r.llcBypasses);
    if (r.seed != 0)
        out += ", \"seed\": " + std::to_string(r.seed);
    if (r.multiCore) {
        out += ", \"coreIpc\": [";
        for (std::size_t c = 0; c < r.coreIpc.size(); ++c) {
            if (c)
                out += ", ";
            out += json::formatDouble(r.coreIpc[c]);
        }
        out += "]";
    }
    // Tenancy fields, omitted entirely for non-tenant runs (byte-compat
    // with pre-tenant journals) and flattened to parallel numeric
    // arrays — the only aggregate shape the journal parser accepts.
    if (!r.tenants.empty()) {
        const auto numArray = [&out, &r](const std::string& key,
                                         auto&& get) {
            out += ", \"" + key + "\": [";
            for (std::size_t t = 0; t < r.tenants.size(); ++t) {
                if (t)
                    out += ", ";
                out += get(r.tenants[t]);
            }
            out += "]";
        };
        numArray("tenantWaysInitial", [](const auto& o) {
            return std::to_string(o.waysInitial);
        });
        numArray("tenantWaysFinal", [](const auto& o) {
            return std::to_string(o.waysFinal);
        });
        numArray("tenantDemandMisses", [](const auto& o) {
            return std::to_string(o.demandMisses);
        });
        numArray("tenantInstructions", [](const auto& o) {
            return std::to_string(o.instructions);
        });
        numArray("tenantMpki", [](const auto& o) {
            return json::formatDouble(o.mpki);
        });
        numArray("tenantSloMpki", [](const auto& o) {
            return json::formatDouble(o.sloMpki);
        });
        if (!r.qosSchedule.empty()) {
            const auto qosArray = [&out, &r](const std::string& key,
                                             auto&& get) {
                out += ", \"" + key + "\": [";
                for (std::size_t i = 0; i < r.qosSchedule.size(); ++i) {
                    if (i)
                        out += ", ";
                    out += get(r.qosSchedule[i]);
                }
                out += "]";
            };
            qosArray("qosEpochs", [](const auto& q) {
                return std::to_string(q.epoch);
            });
            qosArray("qosFrom", [](const auto& q) {
                return std::to_string(q.from);
            });
            qosArray("qosTo", [](const auto& q) {
                return std::to_string(q.to);
            });
        }
    }
    if (!r.ok()) {
        out += ", \"error\": \"" + json::escape(r.error) + "\"";
        out += std::string(", \"errorCode\": \"") +
               errorCodeName(r.errorCode) + "\"";
    }
    out += "}";
    return out;
}

std::optional<RunResult>
resultFromJson(const std::string& json)
{
    RunResult r;
    if (!JsonParser(json).parse(r))
        return std::nullopt;
    return r;
}

std::string
journalLine(const RunResult& result)
{
    return journal::frameLine(resultJson(result));
}

std::optional<RunResult>
parseJournalLine(const std::string& line)
{
    const auto json = journal::unframeLine(line);
    if (!json)
        return std::nullopt;
    return resultFromJson(*json);
}

std::vector<RunResult>
loadJournal(const std::string& path)
{
    const std::string content = journal::readWholeFile(path);
    // Scan with the RunResult-aware line parser rather than the
    // generic frame scanner, so a line whose checksum is intact but
    // whose schema has drifted is still classified (torn tail if
    // final, CorruptInput otherwise) exactly as before.
    std::vector<RunResult> entries;
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos < content.size()) {
        ++line_no;
        const std::size_t nl = content.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::size_t len =
            (complete ? nl : content.size()) - pos;
        auto parsed = parseJournalLine(content.substr(pos, len));
        const std::size_t next = complete ? nl + 1 : content.size();
        if (!parsed) {
            fatalIf(next < content.size(), ErrorCode::CorruptInput,
                    "corrupt checkpoint journal " + path + ": line " +
                        std::to_string(line_no) +
                        " fails checksum/parse but is not the final "
                        "line");
            return entries; // torn tail: drop it
        }
        entries.push_back(std::move(*parsed));
        pos = next;
    }
    return entries;
}

CheckpointJournal::CheckpointJournal(const std::string& path)
    : file_(path, "runner.journal")
{
}

void
CheckpointJournal::append(const RunResult& result)
{
    file_.append(resultJson(result));
}

} // namespace mrp::runner
