/**
 * @file
 * Work-stealing parallel executor for experiment batches.
 *
 * Every (trace, policy) cell of a paper figure is independent: each
 * run builds its own hierarchy, policy, and core models, and traces
 * are immutable, so cells parallelize with no shared mutable state.
 * The runner executes a batch of RunRequests across worker threads and
 * returns results keyed by request index, so the outcome is
 * bit-identical for any worker count (only the wall-clock metrics
 * differ).
 *
 * RunnerOptions adds the durability layer for long sweeps: an
 * append-only checkpoint journal of completed results (see
 * checkpoint.hpp), resume from such a journal (completed indices are
 * not re-executed, and the final reports are byte-identical to an
 * uninterrupted run), a per-run watchdog deadline, and bounded
 * retry-with-exponential-backoff for transient failures.
 */

#ifndef MRP_RUNNER_EXPERIMENT_RUNNER_HPP
#define MRP_RUNNER_EXPERIMENT_RUNNER_HPP

#include <vector>

#include "runner/executor.hpp"
#include "runner/run_request.hpp"
#include "telemetry/metrics.hpp"

namespace mrp::runner {

/** Durability knobs for a batch; default-constructed = PR-1 behavior
 * (no journal, no deadline, no retries). */
struct RunnerOptions
{
    /** Append each completed result to this JSONL journal (fsync'd);
     * empty = no journaling. */
    std::string journalPath;
    /**
     * Load this journal before executing and skip every request index
     * it already covers (failed results are final too: rerun them
     * with a fresh journal if that is not wanted). Entries must match
     * the batch — same benchmark, policy, label, and mode at each
     * index — or the batch aborts with ErrorCode::Config. Empty =
     * cold start.
     */
    std::string resumePath;
    /**
     * Per-run watchdog deadline in seconds; 0 = unlimited. The check
     * is cooperative: a run that finishes past the deadline is
     * reported as ErrorCode::Timeout with its metrics discarded (the
     * watchdog cannot preempt a wedged simulation kernel, but it
     * keeps a stalled run from contaminating the batch and makes the
     * stall retryable).
     */
    double timeoutSeconds = 0.0;
    /** Extra attempts for runs failing with a retryable code (io,
     * timeout, resource — see mrp::isRetryable). 0 = no retries. */
    unsigned maxRetries = 0;
    /** Base of the deterministic exponential retry backoff: attempt k
     * sleeps backoff * 2^k seconds before re-executing. */
    double retryBackoffSeconds = 0.01;

    /**
     * Attach a per-run Profiler (prof/profiler.hpp) to each worker for
     * the duration of each run and store the resulting ProfileReport
     * in RunResult::profile. Off by default: detached runs produce
     * reports byte-identical to a build without profiling.
     */
    bool profile = false;

    /**
     * Live batch progress. Opt-in and deliberately excluded from the
     * deterministic report surface: progress output is wall-clock
     * flavored (ETA, retry state) and varies run to run.
     * `progressStderr` emits one human-readable line per event to
     * stderr; `progressJsonlPath` appends one JSON object per event
     * ("batch_start", "run_start", "run_retry", "run_end",
     * "run_skipped", "batch_end") to the given file. Lines are written
     * with a single fwrite under a lock (never interleaved) and
     * flushed but NOT fsync'd — progress is a liveness signal, not a
     * durability record (that is the checkpoint journal's job).
     * Runs restored from RunnerOptions::resumePath are reported as
     * "run_skipped": they were not executed, so they have no timing
     * and do not count toward the ETA estimate.
     */
    bool progressStderr = false;
    std::string progressJsonlPath;

    /**
     * Optional metrics sink. When set, the batch records
     * runner.completed / runner.failed / runner.skipped (resume
     * prefill) / runner.retries counters — observation-only, never
     * part of the deterministic report surface. The queue broker
     * records the same counters for its batches, so a broker
     * --metrics-out covers runner.* and queue.* alike.
     */
    telemetry::MetricsRegistry* metrics = nullptr;
};

class ExperimentRunner : public Executor
{
  public:
    /**
     * @param jobs worker-thread count; 0 picks the hardware
     *        concurrency (at least 1).
     */
    explicit ExperimentRunner(unsigned jobs = 0);

    /** Resolved worker count. */
    unsigned jobs() const { return jobs_; }

    /**
     * Execute every request and return results in request order.
     * Malformed requests (wrong trace count, null trace) throw
     * FatalError before any thread starts; runtime failures of an
     * individual run (unknown policy name, driver error) are captured
     * in that run's RunResult::error / errorCode and do not abort the
     * batch.
     */
    RunSet run(const std::vector<RunRequest>& batch) const;

    /** As above with the durability options (journal, resume,
     * watchdog, retries). */
    RunSet run(const std::vector<RunRequest>& batch,
               const RunnerOptions& options) const override;

    /** Execute one request in the calling thread (index 0). */
    static RunResult runOne(const RunRequest& request,
                            std::size_t index = 0);

    /** Execute one request honoring the watchdog/retry options (the
     * journal/resume fields are ignored at this granularity). */
    static RunResult runOne(const RunRequest& request,
                            std::size_t index,
                            const RunnerOptions& options);

  private:
    unsigned jobs_;
};

} // namespace mrp::runner

#endif // MRP_RUNNER_EXPERIMENT_RUNNER_HPP
