/**
 * @file
 * Work-stealing parallel executor for experiment batches.
 *
 * Every (trace, policy) cell of a paper figure is independent: each
 * run builds its own hierarchy, policy, and core models, and traces
 * are immutable, so cells parallelize with no shared mutable state.
 * The runner executes a batch of RunRequests across worker threads and
 * returns results keyed by request index, so the outcome is
 * bit-identical for any worker count (only the wall-clock metrics
 * differ).
 */

#ifndef MRP_RUNNER_EXPERIMENT_RUNNER_HPP
#define MRP_RUNNER_EXPERIMENT_RUNNER_HPP

#include <vector>

#include "runner/run_request.hpp"

namespace mrp::runner {

class ExperimentRunner
{
  public:
    /**
     * @param jobs worker-thread count; 0 picks the hardware
     *        concurrency (at least 1).
     */
    explicit ExperimentRunner(unsigned jobs = 0);

    /** Resolved worker count. */
    unsigned jobs() const { return jobs_; }

    /**
     * Execute every request and return results in request order.
     * Malformed requests (wrong trace count, null trace) throw
     * FatalError before any thread starts; runtime failures of an
     * individual run (unknown policy name, driver error) are captured
     * in that run's RunResult::error and do not abort the batch.
     */
    RunSet run(const std::vector<RunRequest>& batch) const;

    /** Execute one request in the calling thread (index 0). */
    static RunResult runOne(const RunRequest& request,
                            std::size_t index = 0);

  private:
    unsigned jobs_;
};

} // namespace mrp::runner

#endif // MRP_RUNNER_EXPERIMENT_RUNNER_HPP
