/**
 * @file
 * Stream prefetcher modeled on the paper's description (§4.1): a
 * stream begins on an L1 miss, waits for at most two misses to decide
 * its direction, then generates prefetch requests; 16 streams are
 * tracked with LRU replacement.
 */

#ifndef MRP_PREFETCH_STREAM_PREFETCHER_HPP
#define MRP_PREFETCH_STREAM_PREFETCHER_HPP

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace mrp::prefetch {

/** Tuning knobs of the stream prefetcher. */
struct StreamPrefetcherConfig
{
    unsigned streams = 16;  //!< concurrently tracked streams
    unsigned degree = 2;    //!< prefetches issued per triggering miss
    unsigned distance = 4;  //!< how far ahead of the miss to run
    unsigned window = 16;   //!< miss-to-stream matching window (blocks)
};

/** One-core stream prefetcher. */
class StreamPrefetcher
{
  public:
    explicit StreamPrefetcher(
        const StreamPrefetcherConfig& cfg = StreamPrefetcherConfig{});

    /**
     * Observe a demand L1 miss to @p addr and append the block-aligned
     * byte addresses to prefetch to @p out.
     */
    void onL1Miss(Addr addr, std::vector<Addr>& out);

    /** Total prefetch addresses generated. */
    std::uint64_t issued() const { return issued_; }

    /** Drop all stream state (e.g.\ between runs). */
    void reset();

    /**
     * Start accuracy/coverage tracking (telemetry). Recently issued
     * prefetches are remembered in a small direct-mapped filter; a
     * demand hit on a filtered block counts as useful, a demand miss
     * on one as late. Tracking counters cover only the period after
     * this call, so attach it at the start of the measurement window.
     */
    void enableTracking();

    bool trackingEnabled() const { return tracking_; }

    /** Demand L1 *hit* on @p addr (only called while tracking). */
    void observeDemandHit(Addr addr);

    /** Prefetches issued since tracking was enabled. */
    std::uint64_t trackedIssued() const
    {
        return issued_ - issuedAtEnable_;
    }
    /** Tracked prefetches later hit by demand. */
    std::uint64_t useful() const { return useful_; }
    /** Tracked prefetches demand-missed before (or despite) arrival. */
    std::uint64_t late() const { return late_; }
    /** Demand L1 misses observed while tracking. */
    std::uint64_t demandMisses() const { return demandMisses_; }

    /** useful / issued over the tracked period (0 when nothing issued). */
    double accuracy() const;
    /** useful / (useful + demand misses): fraction of would-be misses
     * the prefetcher hid. */
    double coverage() const;

  private:
    struct Stream
    {
        bool valid = false;
        Addr startBlock = 0;  //!< block that allocated the stream
        Addr lastBlock = 0;   //!< most recent miss matched to it
        Addr head = 0;        //!< next block to prefetch
        int direction = 0;    //!< 0 until confirmed, else +1/-1
        std::uint64_t lastUse = 0;
    };

    /** Direct-mapped recently-prefetched filter (block addresses). */
    static constexpr std::size_t kFilterSlots = 4096;
    static constexpr Addr kNoBlock = ~Addr{0};

    StreamPrefetcherConfig cfg_;
    std::vector<Stream> streams_;
    std::uint64_t useClock_ = 0;
    std::uint64_t issued_ = 0;
    bool tracking_ = false;
    std::vector<Addr> filter_; //!< empty until enableTracking
    std::uint64_t issuedAtEnable_ = 0;
    std::uint64_t useful_ = 0;
    std::uint64_t late_ = 0;
    std::uint64_t demandMisses_ = 0;
};

} // namespace mrp::prefetch

#endif // MRP_PREFETCH_STREAM_PREFETCHER_HPP
