#include "prefetch/stream_prefetcher.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace mrp::prefetch {

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherConfig& cfg)
    : cfg_(cfg), streams_(cfg.streams)
{
    fatalIf(cfg.streams == 0, "prefetcher needs at least one stream");
}

void
StreamPrefetcher::reset()
{
    for (auto& s : streams_)
        s = Stream{};
    useClock_ = 0;
}

void
StreamPrefetcher::onL1Miss(Addr addr, std::vector<Addr>& out)
{
    const Addr blk = blockAddr(addr);
    ++useClock_;

    // Try to match an existing stream within the window.
    Stream* match = nullptr;
    for (auto& s : streams_) {
        if (!s.valid)
            continue;
        const Addr ref = s.lastBlock;
        const Addr delta = blk > ref ? blk - ref : ref - blk;
        if (delta != 0 && delta <= cfg_.window) {
            match = &s;
            break;
        }
    }

    if (!match) {
        // Allocate a stream (LRU replacement among the 16 entries).
        Stream* lru = &streams_[0];
        for (auto& s : streams_) {
            if (!s.valid) {
                lru = &s;
                break;
            }
            if (s.lastUse < lru->lastUse)
                lru = &s;
        }
        *lru = Stream{};
        lru->valid = true;
        lru->startBlock = blk;
        lru->lastBlock = blk;
        lru->head = blk;
        lru->lastUse = useClock_;
        return;
    }

    match->lastUse = useClock_;
    if (match->direction == 0) {
        // Second miss decides the direction (paper: at most two misses).
        match->direction = blk > match->lastBlock ? +1 : -1;
        match->head = blk;
    }
    match->lastBlock = blk;

    // Keep the prefetch head ahead of the miss in the stream direction.
    const int dir = match->direction;
    const auto ahead_of = [dir](Addr a, Addr b) {
        return dir > 0 ? a > b : a < b;
    };
    if (!ahead_of(match->head, blk))
        match->head = blk;

    const Addr limit = dir > 0 ? blk + cfg_.distance : blk - cfg_.distance;
    unsigned emitted = 0;
    while (emitted < cfg_.degree && ahead_of(limit, match->head)) {
        match->head = dir > 0 ? match->head + 1 : match->head - 1;
        out.push_back(match->head << kBlockShift);
        ++issued_;
        ++emitted;
    }
}

} // namespace mrp::prefetch
