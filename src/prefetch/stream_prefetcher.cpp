#include "prefetch/stream_prefetcher.hpp"

#include <cstdlib>

#include "prof/profiler.hpp"
#include "util/logging.hpp"

namespace mrp::prefetch {

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherConfig& cfg)
    : cfg_(cfg), streams_(cfg.streams)
{
    fatalIf(cfg.streams == 0, "prefetcher needs at least one stream");
}

void
StreamPrefetcher::reset()
{
    for (auto& s : streams_)
        s = Stream{};
    useClock_ = 0;
    if (tracking_)
        enableTracking(); // restart the tracked period cleanly
}

void
StreamPrefetcher::enableTracking()
{
    tracking_ = true;
    filter_.assign(kFilterSlots, kNoBlock);
    issuedAtEnable_ = issued_;
    useful_ = 0;
    late_ = 0;
    demandMisses_ = 0;
}

void
StreamPrefetcher::observeDemandHit(Addr addr)
{
    if (!tracking_)
        return;
    const Addr blk = blockAddr(addr);
    Addr& slot = filter_[blk & (kFilterSlots - 1)];
    if (slot == blk) {
        ++useful_;
        slot = kNoBlock;
    }
}

double
StreamPrefetcher::accuracy() const
{
    const std::uint64_t n = trackedIssued();
    return n == 0 ? 0.0
                  : static_cast<double>(useful_) /
                        static_cast<double>(n);
}

double
StreamPrefetcher::coverage() const
{
    const std::uint64_t covered_plus_missed = useful_ + demandMisses_;
    return covered_plus_missed == 0
               ? 0.0
               : static_cast<double>(useful_) /
                     static_cast<double>(covered_plus_missed);
}

void
StreamPrefetcher::onL1Miss(Addr addr, std::vector<Addr>& out)
{
    MRP_PROF_SCOPE_HOT("prefetch.train");
    const Addr blk = blockAddr(addr);
    ++useClock_;

    if (tracking_) {
        ++demandMisses_;
        Addr& slot = filter_[blk & (kFilterSlots - 1)];
        if (slot == blk) {
            ++late_;
            slot = kNoBlock;
        }
    }

    // Try to match an existing stream within the window.
    Stream* match = nullptr;
    for (auto& s : streams_) {
        if (!s.valid)
            continue;
        const Addr ref = s.lastBlock;
        const Addr delta = blk > ref ? blk - ref : ref - blk;
        if (delta != 0 && delta <= cfg_.window) {
            match = &s;
            break;
        }
    }

    if (!match) {
        // Allocate a stream (LRU replacement among the 16 entries).
        Stream* lru = &streams_[0];
        for (auto& s : streams_) {
            if (!s.valid) {
                lru = &s;
                break;
            }
            if (s.lastUse < lru->lastUse)
                lru = &s;
        }
        *lru = Stream{};
        lru->valid = true;
        lru->startBlock = blk;
        lru->lastBlock = blk;
        lru->head = blk;
        lru->lastUse = useClock_;
        return;
    }

    match->lastUse = useClock_;
    if (match->direction == 0) {
        // Second miss decides the direction (paper: at most two misses).
        match->direction = blk > match->lastBlock ? +1 : -1;
        match->head = blk;
    }
    match->lastBlock = blk;

    // Keep the prefetch head ahead of the miss in the stream direction.
    const int dir = match->direction;
    const auto ahead_of = [dir](Addr a, Addr b) {
        return dir > 0 ? a > b : a < b;
    };
    if (!ahead_of(match->head, blk))
        match->head = blk;

    const Addr limit = dir > 0 ? blk + cfg_.distance : blk - cfg_.distance;
    unsigned emitted = 0;
    while (emitted < cfg_.degree && ahead_of(limit, match->head)) {
        match->head = dir > 0 ? match->head + 1 : match->head - 1;
        out.push_back(match->head << kBlockShift);
        ++issued_;
        ++emitted;
        if (tracking_)
            filter_[match->head & (kFilterSlots - 1)] = match->head;
    }
}

} // namespace mrp::prefetch
