#include "queue/work_queue.hpp"

#include <unistd.h>

#include "util/json_reader.hpp"
#include "util/json_writer.hpp"

namespace mrp::queue {

namespace {

std::string
headerJson(const std::string& fingerprint)
{
    return "{" + json::key("type") + json::str("header") + ", " +
           json::key("schema") +
           std::to_string(journal::kQueueSchemaVersion) + ", " +
           json::key("fingerprint") + json::str(fingerprint) + "}";
}

} // namespace

WorkQueue::WorkQueue(const std::string& path,
                     const std::string& fingerprint)
{
    bool fresh = true;
    std::vector<std::string> lines;
    if (journal::fileExists(path)) {
        const auto scan =
            journal::scanContent(journal::readWholeFile(path), path);
        if (!scan.lines.empty()) {
            const std::string what =
                "queue journal " + path + " header";
            const auto v = json::parseJson(scan.lines[0], what);
            const auto* type = v.get("type");
            fatalIf(!v.isObject() || type == nullptr ||
                        !type->isString() ||
                        type->string != "header",
                    ErrorCode::Config,
                    "queue file " + path +
                        " has no header record and is not a queue "
                        "journal (a pre-queue checkpoint journal?); "
                        "refusing to reuse it — delete or move the "
                        "file to proceed");
            const unsigned schema = static_cast<unsigned>(
                v.require("schema", json::Value::Type::Number, what)
                    .asU64());
            fatalIf(
                schema != journal::kQueueSchemaVersion,
                ErrorCode::Config,
                "queue file " + path + " was written under schema v" +
                    std::to_string(schema) +
                    " but this broker speaks v" +
                    std::to_string(journal::kQueueSchemaVersion) +
                    "; refusing to misread it");
            const std::string& fp =
                v.require("fingerprint", json::Value::Type::String,
                          what)
                    .string;
            // A different batch's scratch queue: restart fresh (the
            // study journal, which must never be clobbered, refuses
            // on mismatch instead — see Study::run).
            if (fp == fingerprint) {
                fresh = false;
                lines = scan.lines;
            }
        }
    }
    if (fresh && journal::fileExists(path))
        fatalIf(::truncate(path.c_str(), 0) != 0, ErrorCode::Io,
                "failed to truncate stale queue file " + path);
    file_ =
        std::make_unique<journal::AppendFile>(path, "queue.journal");
    if (fresh)
        file_->append(headerJson(fingerprint));
    else
        replay(lines);
}

void
WorkQueue::replay(const std::vector<std::string>& lines)
{
    const std::string what = "queue journal " + file_->path();
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const auto v = json::parseJson(lines[i], what);
        const std::string& type =
            v.require("type", json::Value::Type::String, what)
                .string;
        if (type == "header")
            fatal(ErrorCode::CorruptInput,
                  what + ": duplicate header record at line " +
                      std::to_string(i + 1));
        const std::uint64_t id =
            v.require("id", json::Value::Type::Number, what).asU64();
        if (type == "enqueue") {
            fatalIf(jobs_.count(id) != 0, ErrorCode::CorruptInput,
                    what + ": job " + std::to_string(id) +
                        " enqueued twice");
            QueueJob j;
            j.id = id;
            j.requestJson =
                v.require("request", json::Value::Type::String, what)
                    .string;
            jobs_.emplace(id, std::move(j));
            continue;
        }
        auto it = jobs_.find(id);
        fatalIf(it == jobs_.end(), ErrorCode::CorruptInput,
                what + ": " + type + " record for unknown job " +
                    std::to_string(id));
        QueueJob& j = it->second;
        if (type == "lease") {
            j.state = JobState::Leased;
            j.attempts = static_cast<unsigned>(
                v.require("attempt", json::Value::Type::Number, what)
                    .asU64());
        } else if (type == "requeue") {
            j.state = JobState::Pending;
        } else if (type == "complete") {
            j.state = JobState::Done;
            j.resultJson =
                v.require("result", json::Value::Type::String, what)
                    .string;
        } else {
            fatal(ErrorCode::CorruptInput,
                  what + ": unknown record type \"" + type + "\"");
        }
    }
    // A job still Leased at end-of-journal was in flight when the
    // broker died; its lease dies with the broker.
    for (auto& [id, j] : jobs_)
        if (j.state == JobState::Leased)
            j.state = JobState::Pending;
}

void
WorkQueue::ensureEnqueued(std::uint64_t id,
                          const std::string& request_json)
{
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
        fatalIf(it->second.requestJson != request_json,
                ErrorCode::Config,
                "queue journal " + file_->path() + " job " +
                    std::to_string(id) +
                    " does not match the batch being enqueued "
                    "(same fingerprint, different request — "
                    "delete the queue file)");
        return;
    }
    file_->append("{" + json::key("type") + json::str("enqueue") +
                  ", " + json::key("id") + std::to_string(id) +
                  ", " + json::key("request") +
                  json::str(request_json) + "}");
    QueueJob j;
    j.id = id;
    j.requestJson = request_json;
    jobs_.emplace(id, std::move(j));
}

unsigned
WorkQueue::lease(std::uint64_t id)
{
    QueueJob& j = mutableJob(id);
    fatalIf(j.state != JobState::Pending, ErrorCode::Internal,
            "leasing job " + std::to_string(id) +
                " which is not pending");
    ++j.attempts;
    file_->append("{" + json::key("type") + json::str("lease") +
                  ", " + json::key("id") + std::to_string(id) +
                  ", " + json::key("attempt") +
                  std::to_string(j.attempts) + "}");
    j.state = JobState::Leased;
    return j.attempts;
}

void
WorkQueue::requeue(std::uint64_t id, const std::string& reason,
                   ErrorCode code)
{
    QueueJob& j = mutableJob(id);
    fatalIf(j.state != JobState::Leased, ErrorCode::Internal,
            "requeueing job " + std::to_string(id) +
                " which is not leased");
    file_->append("{" + json::key("type") + json::str("requeue") +
                  ", " + json::key("id") + std::to_string(id) +
                  ", " + json::key("reason") + json::str(reason) +
                  ", " + json::key("code") + json::str(
                      errorCodeName(code)) + "}");
    j.state = JobState::Pending;
}

void
WorkQueue::complete(std::uint64_t id,
                    const std::string& result_json)
{
    QueueJob& j = mutableJob(id);
    fatalIf(j.state == JobState::Done, ErrorCode::Internal,
            "completing job " + std::to_string(id) + " twice");
    file_->append("{" + json::key("type") + json::str("complete") +
                  ", " + json::key("id") + std::to_string(id) +
                  ", " + json::key("result") +
                  json::str(result_json) + "}");
    j.state = JobState::Done;
    j.resultJson = result_json;
}

const QueueJob&
WorkQueue::job(std::uint64_t id) const
{
    const auto it = jobs_.find(id);
    fatalIf(it == jobs_.end(), ErrorCode::Internal,
            "unknown queue job " + std::to_string(id));
    return it->second;
}

QueueJob&
WorkQueue::mutableJob(std::uint64_t id)
{
    const auto it = jobs_.find(id);
    fatalIf(it == jobs_.end(), ErrorCode::Internal,
            "unknown queue job " + std::to_string(id));
    return it->second;
}

std::vector<std::uint64_t>
WorkQueue::pendingIds() const
{
    std::vector<std::uint64_t> out;
    for (const auto& [id, j] : jobs_)
        if (j.state == JobState::Pending)
            out.push_back(id);
    return out;
}

std::size_t
WorkQueue::doneCount() const
{
    std::size_t n = 0;
    for (const auto& [id, j] : jobs_)
        if (j.state == JobState::Done)
            ++n;
    return n;
}

bool
WorkQueue::allDone() const
{
    return doneCount() == jobs_.size();
}

} // namespace mrp::queue
